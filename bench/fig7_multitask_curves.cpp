// Figure 7 — per-metric validation curves for the Table 1 runs.
//
// The paper plots, per target, the validation trajectory across training
// for the pretrained and from-scratch configurations. Shape: for the
// three metrics where pretraining wins, the scratch model "generally
// struggles to learn throughout training" while the pretrained model
// starts (and stays) at a better level; the Carolina E_form panel shows
// a loss spike before recovering.
#include <cstdio>

#include "multitask_common.hpp"

int main() {
  using namespace matsci;
  bench::print_header(
      "Figure 7 — per-metric validation curves, multi-task multi-dataset");
  obs::BenchReporter reporter = bench::make_reporter("fig7_multitask_curves");

  bench::MultiTaskRunConfig cfg;
  std::printf("\nRunning from-scratch configuration...\n");
  const auto scratch = bench::run_multitask_experiment(false, cfg);
  std::printf("Running pretrained configuration...\n");
  const auto pretrained = bench::run_multitask_experiment(true, cfg);

  for (const std::string& key : bench::table1_metrics()) {
    std::printf("\n--- %s (lower is better) ---\n", key.c_str());
    std::printf("%8s %16s %16s\n", "epoch", "pretrained", "scratch");
    const auto& pc = pretrained.curves.at(key);
    const auto& sc = scratch.curves.at(key);
    for (std::size_t e = 0; e < pc.size(); ++e) {
      std::printf("%8zu %16.4f %16.4f\n", e, pc[e], sc[e]);
    }
    reporter.add(obs::JsonRecord()
                     .set("record", "curve_endpoints")
                     .set("metric", key)
                     .set("pretrained_first", pc.front())
                     .set("pretrained_final", pc.back())
                     .set("scratch_first", sc.front())
                     .set("scratch_final", sc.back()));
  }

  // Spike detection on the CMD E_form panel (the paper's callout).
  const auto& cmd_curve = scratch.curves.at("cmd/eform/mae");
  double worst_jump = 0.0;
  for (std::size_t e = 1; e < cmd_curve.size(); ++e) {
    worst_jump = std::max(worst_jump, cmd_curve[e] / cmd_curve[e - 1]);
  }
  std::printf(
      "\nCMD E_form (scratch): worst epoch-over-epoch jump x%.2f\n"
      "(paper: the E_form CMD panel spikes to abnormal levels before\n"
      "recovering).\n",
      worst_jump);
  reporter.add(obs::JsonRecord()
                   .set("record", "cmd_eform_spike")
                   .set("worst_epoch_jump", worst_jump));
  return 0;
}
