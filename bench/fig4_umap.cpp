// Figure 4 — UMAP dataset cartography with the pretrained encoder.
//
// The paper embeds 10k structures from each supported dataset with the
// symmetry-pretrained E(n)-GNN and projects with UMAP (n_neighbors 200,
// min_dist 0.05). Qualitative claims to verify quantitatively:
//   (a) datasets share structural motifs (no dataset is pure outlier —
//       moderate silhouette, nonzero cross-dataset neighbor overlap);
//   (b) the two OCP releases overlap heavily with each other;
//   (c) Materials Project spans the broadest region (largest spread);
//   (d) LiPS — one composition's MD trajectory — forms a tight,
//       clearly isolated cluster (the calibration anchor).
#include <cstdio>
#include <fstream>

#include "bench_common.hpp"
#include "core/ops.hpp"
#include "embed/cluster_metrics.hpp"
#include "embed/umap.hpp"
#include "materials/carolina.hpp"
#include "materials/lips.hpp"
#include "materials/materials_project.hpp"
#include "materials/ocp.hpp"

namespace {

using namespace matsci;

constexpr std::int64_t kPerDataset = 160;  // paper uses 10k; scaled down

core::Tensor embed_dataset(const models::EGNN& encoder,
                           const data::StructureDataset& ds,
                           std::int64_t count) {
  data::DataLoaderOptions lo;
  lo.batch_size = 16;
  lo.shuffle = false;
  lo.collate.radius.cutoff = 5.0;
  data::DataLoader loader(ds, lo);
  core::NoGradGuard no_grad;
  std::vector<core::Tensor> parts;
  std::int64_t seen = 0;
  for (std::int64_t b = 0; b < loader.num_batches() && seen < count; ++b) {
    parts.push_back(encoder.encode(loader.batch(b)));
    seen += parts.back().size(0);
  }
  core::Tensor all = core::concat_rows(parts);
  return all.size(0) > count ? core::slice_rows(all, 0, count).detach()
                             : all.detach();
}

}  // namespace

int main() {
  bench::print_header(
      "Figure 4 — UMAP of dataset embeddings from the pretrained encoder");
  obs::BenchReporter reporter = bench::make_reporter("fig4_umap");

  std::printf("\nPretraining encoder on synthetic point groups...\n");
  auto encoder = bench::pretrain_symmetry_encoder(
      /*dataset_size=*/640, /*epochs=*/4, /*seed=*/17);

  const std::vector<std::string> names = {"MaterialsProject", "Carolina",
                                          "LiPS", "OC20", "OC22"};
  std::vector<core::Tensor> blocks;
  {
    materials::MaterialsProjectDataset mp(kPerDataset, 1);
    materials::CarolinaMaterialsDataset cmd(kPerDataset, 2);
    materials::LiPSDataset lips(kPerDataset, 3);
    materials::OCPDataset oc20(kPerDataset, 4, materials::OCPFlavor::kOC20);
    materials::OCPDataset oc22(kPerDataset, 5, materials::OCPFlavor::kOC22);
    std::printf("Embedding %lld structures per dataset...\n",
                static_cast<long long>(kPerDataset));
    blocks.push_back(embed_dataset(*encoder, mp, kPerDataset));
    blocks.push_back(embed_dataset(*encoder, cmd, kPerDataset));
    blocks.push_back(embed_dataset(*encoder, lips, kPerDataset));
    blocks.push_back(embed_dataset(*encoder, oc20, kPerDataset));
    blocks.push_back(embed_dataset(*encoder, oc22, kPerDataset));
  }
  core::Tensor high = core::concat_rows(blocks).detach();
  std::vector<std::int64_t> labels;
  for (std::int64_t d = 0; d < 5; ++d) {
    for (std::int64_t i = 0; i < kPerDataset; ++i) labels.push_back(d);
  }

  std::printf("Running UMAP (n_neighbors=30, min_dist=0.05)...\n");
  embed::UMAPOptions uopts;
  uopts.n_neighbors = 30;  // paper: 200 at 10k/dataset; scaled with N
  uopts.min_dist = 0.05;
  uopts.n_epochs = 150;
  uopts.seed = 9;
  const embed::UMAPResult result = embed::umap(high, uopts);
  std::printf("Fitted low-dim curve: a=%.3f b=%.3f; kNN preservation %.3f\n",
              result.fitted_a, result.fitted_b,
              embed::knn_preservation(high, result.embedding, 15));

  // Per-dataset cluster statistics: spread ("variety of structures") is
  // measured in the raw embedding space — the UMAP layout equalizes
  // local densities, so 2-D spread is not a variety measure — while
  // isolation/overlap are read off the 2-D layout the paper shows.
  const auto stats = embed::cluster_stats(result.embedding, labels);
  const auto high_stats = embed::cluster_stats(high, labels);
  const auto dist = embed::centroid_distances(stats);
  std::printf("\n%-18s %8s %16s %12s %12s\n", "dataset", "count",
              "spread(high-d)", "spread(2d)", "isolation");
  for (std::size_t d = 0; d < stats.size(); ++d) {
    std::printf("%-18s %8lld %16.3f %12.3f %12.3f\n",
                names[d].c_str(),
                static_cast<long long>(stats[d].count),
                high_stats[d].mean_radius, stats[d].mean_radius,
                embed::isolation_score(stats, static_cast<std::int64_t>(d)));
  }

  std::printf("\nCentroid distance matrix:\n%-18s", "");
  for (const auto& n : names) std::printf(" %10s", n.substr(0, 10).c_str());
  std::printf("\n");
  for (std::size_t a = 0; a < names.size(); ++a) {
    std::printf("%-18s", names[a].c_str());
    for (std::size_t b = 0; b < names.size(); ++b) {
      std::printf(" %10.3f", dist[a][b]);
    }
    std::printf("\n");
  }

  const double oc_overlap =
      embed::neighbor_overlap(result.embedding, labels, 3, 4, 15);
  const double mp_cmd_overlap =
      embed::neighbor_overlap(result.embedding, labels, 0, 1, 15);
  const double lips_mp_overlap =
      embed::neighbor_overlap(result.embedding, labels, 2, 0, 15);
  const double silhouette =
      embed::silhouette_score(result.embedding, labels);

  std::printf("\nOverlap fractions (15-NN):\n");
  std::printf("  OC20 points with an OC22 neighbor:       %.3f\n", oc_overlap);
  std::printf("  MP points with a Carolina neighbor:      %.3f\n",
              mp_cmd_overlap);
  std::printf("  LiPS points with an MP neighbor:         %.3f\n",
              lips_mp_overlap);
  std::printf("  mean silhouette over datasets:           %.3f\n", silhouette);

  for (std::size_t d = 0; d < stats.size(); ++d) {
    reporter.add(obs::JsonRecord()
                     .set("record", "cluster")
                     .set("dataset", names[d])
                     .set("count", stats[d].count)
                     .set("spread_high_d", high_stats[d].mean_radius)
                     .set("spread_2d", stats[d].mean_radius)
                     .set("isolation",
                          embed::isolation_score(
                              stats, static_cast<std::int64_t>(d))));
  }
  reporter.add(obs::JsonRecord()
                   .set("record", "overlap")
                   .set("oc20_oc22", oc_overlap)
                   .set("mp_carolina", mp_cmd_overlap)
                   .set("lips_mp", lips_mp_overlap)
                   .set("silhouette", silhouette));

  // CSV for external plotting of the actual Fig. 4 scatter.
  const char* csv_path = "fig4_umap.csv";
  std::ofstream csv(csv_path);
  csv << "x,y,dataset\n";
  for (std::int64_t i = 0; i < result.embedding.size(0); ++i) {
    csv << result.embedding.at(i, 0) << "," << result.embedding.at(i, 1)
        << "," << names[static_cast<std::size_t>(labels[static_cast<std::size_t>(i)])]
        << "\n";
  }
  std::printf("\nScatter written to %s\n", csv_path);

  // Quantified shape checks vs the paper's three observations.
  const bool lips_isolated =
      embed::isolation_score(stats, 2) > 1.0 && lips_mp_overlap < 0.05;
  const bool ocp_overlaps =
      oc_overlap > lips_mp_overlap && dist[3][4] < dist[3][0];
  std::size_t bulk_broadest = 0;  // among the bulk-crystal datasets
  if (high_stats[1].mean_radius > high_stats[bulk_broadest].mean_radius) {
    bulk_broadest = 1;
  }
  if (high_stats[2].mean_radius > high_stats[bulk_broadest].mean_radius) {
    bulk_broadest = 2;
  }
  std::printf(
      "\nShape check vs paper:\n"
      "  [%c] LiPS forms a clearly isolated cluster (isolation > 1, no\n"
      "      cross-dataset neighbors) — the paper's calibration anchor.\n"
      "  [%c] OC20/OC22 overlap far more with each other than with\n"
      "      anything else.\n"
      "  [%c] Materials Project has the broadest high-dim spread among\n"
      "      the bulk-crystal datasets (MP / Carolina / LiPS).\n",
      lips_isolated ? 'x' : ' ', ocp_overlaps ? 'x' : ' ',
      bulk_broadest == 0 ? 'x' : ' ');
  return 0;
}
