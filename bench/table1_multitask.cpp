// Table 1 — multi-task, multi-dataset training: pretrained vs scratch.
//
// Paper's Table 1 (validation metrics after joint training on Materials
// Project {band gap, ζ, E_form, stability} + Carolina {E_form}):
//
//   Configuration   gap(eV)  ζ(eV)  E_form(MP)  stability  E_form(CMD)
//   Pretrained        1.27    0.76     0.83        0.42        0.14
//   From scratch      4.80    3.86     3.54        0.40        0.10
//
// Shape to reproduce: the pretrained encoder wins decisively on the
// three MP regression targets, while stability BCE and CMD formation
// energy stay comparable (scratch slightly ahead).
#include <cstdio>

#include "multitask_common.hpp"

int main() {
  using namespace matsci;
  bench::print_header(
      "Table 1 — multi-task multi-dataset: pretrained vs from scratch");
  obs::BenchReporter reporter = bench::make_reporter("table1_multitask");

  bench::MultiTaskRunConfig cfg;
  std::printf("\nRunning from-scratch configuration...\n");
  const auto scratch = bench::run_multitask_experiment(false, cfg);
  std::printf("Running pretrained configuration...\n");
  const auto pretrained = bench::run_multitask_experiment(true, cfg);

  const std::vector<std::string> headers = {
      "Band gap (eV)", "zeta (eV)", "E_form MP (eV/atom)", "Stability (BCE)",
      "E_form CMD (eV/atom)"};
  std::printf("\n%-14s", "Configuration");
  for (const auto& h : headers) std::printf(" %20s", h.c_str());
  std::printf("\n%-14s", "Pretrained");
  for (const std::string& key : bench::table1_metrics()) {
    std::printf(" %20.4f", pretrained.final_metrics.at(key));
  }
  std::printf("\n%-14s", "From scratch");
  for (const std::string& key : bench::table1_metrics()) {
    std::printf(" %20.4f", scratch.final_metrics.at(key));
  }
  std::printf("\n");

  int pretrained_wins = 0;
  std::printf("\nPer-metric winner:\n");
  for (std::size_t i = 0; i < headers.size(); ++i) {
    const std::string& key = bench::table1_metrics()[i];
    const double p = pretrained.final_metrics.at(key);
    const double s = scratch.final_metrics.at(key);
    const bool pre = p < s;
    if (pre) ++pretrained_wins;
    std::printf("  %-22s %s (pretrained %.4f vs scratch %.4f)\n",
                headers[i].c_str(), pre ? "pretrained" : "scratch", p, s);
    reporter.add(obs::JsonRecord()
                     .set("record", "table1_row")
                     .set("metric", key)
                     .set("pretrained", p)
                     .set("scratch", s)
                     .set("pretrained_wins", pre));
  }
  std::printf(
      "\nPaper shape: pretrained wins 3 of 5 (the MP regression targets),\n"
      "with stability and CMD E_form comparable or slightly favoring\n"
      "scratch. Measured: pretrained wins %d of 5.\n",
      pretrained_wins);
  return 0;
}
