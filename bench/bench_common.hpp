#pragma once

/// Shared scaffolding for the figure/table regeneration binaries.
///
/// Scale note (DESIGN.md §2): the paper trained hidden-256 E(n)-GNNs on
/// 2M synthetic samples across 32 Xeon nodes; these benches regenerate
/// each figure's *shape* at laptop scale — smaller widths, datasets of
/// 10²–10³ samples — so a full run of every bench finishes in minutes.

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>

#include "data/dataloader.hpp"
#include "data/tagged.hpp"
#include "models/egnn.hpp"
#include "optim/adam.hpp"
#include "obs/obs.hpp"
#include "sym/synthetic_dataset.hpp"
#include "tasks/classification.hpp"
#include "train/trainer.hpp"

namespace matsci::bench {

/// Directory the BENCH_*.json / TRACE_*.json artifacts land in —
/// $MATSCI_BENCH_DIR or the working directory.
inline std::string bench_out_dir() {
  const char* dir = std::getenv("MATSCI_BENCH_DIR");
  return (dir != nullptr && dir[0] != '\0') ? dir : ".";
}

/// The one way bench binaries emit structured results: records echo to
/// stdout as JSON lines and land in BENCH_<name>.json alongside a
/// registry snapshot and a Chrome trace (see obs/export.hpp).
inline obs::BenchReporter make_reporter(const std::string& name) {
  return obs::BenchReporter(name, bench_out_dir());
}

/// Encoder sized for bench runs (same architecture family as the paper's
/// hidden-256/pos-64/3-layer model, narrower).
inline models::EGNNConfig bench_encoder_config(std::int64_t hidden = 32,
                                               std::int64_t layers = 3) {
  models::EGNNConfig cfg;
  cfg.hidden_dim = hidden;
  cfg.pos_hidden = hidden / 2;
  cfg.num_layers = layers;
  return cfg;
}

inline models::OutputHeadConfig bench_head_config(std::int64_t hidden = 32,
                                                  std::int64_t blocks = 2) {
  models::OutputHeadConfig cfg;
  cfg.hidden_dim = hidden;
  cfg.num_blocks = blocks;
  cfg.dropout = 0.0f;
  return cfg;
}

/// Synthetic point-group options trimmed for bench throughput.
inline sym::SyntheticPointGroupOptions bench_sym_options() {
  sym::SyntheticPointGroupOptions opts;
  opts.max_points = 20;
  return opts;
}

/// Pretrain an encoder on the symmetry task for `epochs` and return it
/// (the paper's §5.2 model, miniaturized). Deterministic in `seed`.
inline std::shared_ptr<models::EGNN> pretrain_symmetry_encoder(
    std::int64_t dataset_size, std::int64_t epochs, std::uint64_t seed,
    models::EGNNConfig ecfg = bench_encoder_config(), bool verbose = false) {
  sym::SyntheticPointGroupDataset ds(dataset_size, seed ^ 0x5157ull,
                                     bench_sym_options());
  data::DataLoaderOptions lo;
  lo.batch_size = 32;
  lo.seed = seed;
  lo.collate.representation = data::Representation::kPointCloud;
  data::DataLoader loader(ds, lo);

  core::RngEngine rng(seed);
  auto encoder = std::make_shared<models::EGNN>(ecfg, rng);
  tasks::ClassificationTask task(encoder, "point_group",
                                 sym::num_point_groups(),
                                 bench_head_config(ecfg.hidden_dim), rng);
  optim::Adam opt = optim::make_adamw(task.parameters(), 3e-3);
  train::TrainerOptions topts;
  topts.max_epochs = epochs;
  topts.verbose = verbose;
  train::Trainer(topts).fit(task, loader, nullptr, opt);
  return encoder;
}

inline void print_header(const std::string& title) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("================================================================\n");
}

}  // namespace matsci::bench
