// Kernel microbenchmarks (google-benchmark): the primitive operations
// underneath the training pipeline — dense matmul, the DGL-style
// gather/segment message-passing kernels, radius-graph construction,
// and a full EGNN forward — so performance regressions in the substrate
// are visible independent of end-to-end training noise.
#include <benchmark/benchmark.h>

#include "core/graph_ops.hpp"
#include "core/ops.hpp"
#include "data/collate.hpp"
#include "graph/radius_graph.hpp"
#include "models/egnn.hpp"
#include "sym/synthetic_dataset.hpp"

namespace {

using namespace matsci;

void BM_Matmul(benchmark::State& state) {
  const std::int64_t n = state.range(0);
  core::RngEngine rng(1);
  core::Tensor a = core::Tensor::randn({n, n}, rng);
  core::Tensor b = core::Tensor::randn({n, n}, rng);
  core::NoGradGuard no_grad;
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::matmul(a, b));
  }
  state.SetItemsProcessed(state.iterations() * 2 * n * n * n);
}
BENCHMARK(BM_Matmul)->Arg(32)->Arg(64)->Arg(128)->Arg(256);

void BM_GatherRows(benchmark::State& state) {
  const std::int64_t n = state.range(0);
  core::RngEngine rng(2);
  core::Tensor x = core::Tensor::randn({n, 64}, rng);
  std::vector<std::int64_t> idx(static_cast<std::size_t>(4 * n));
  for (auto& i : idx) i = rng.next_int(n);
  core::NoGradGuard no_grad;
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::gather_rows(x, idx));
  }
  state.SetItemsProcessed(state.iterations() * 4 * n * 64);
}
BENCHMARK(BM_GatherRows)->Arg(256)->Arg(1024)->Arg(4096);

void BM_SegmentSum(benchmark::State& state) {
  const std::int64_t rows = state.range(0);
  const std::int64_t segments = rows / 8;
  core::RngEngine rng(3);
  core::Tensor x = core::Tensor::randn({rows, 64}, rng);
  std::vector<std::int64_t> seg(static_cast<std::size_t>(rows));
  for (auto& s : seg) s = rng.next_int(segments);
  core::NoGradGuard no_grad;
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::segment_sum(x, seg, segments));
  }
  state.SetItemsProcessed(state.iterations() * rows * 64);
}
BENCHMARK(BM_SegmentSum)->Arg(1024)->Arg(8192);

void BM_RadiusGraph(benchmark::State& state) {
  const std::int64_t n = state.range(0);
  core::RngEngine rng(4);
  std::vector<core::Vec3> pts;
  for (std::int64_t i = 0; i < n; ++i) {
    pts.push_back({rng.uniform(0, 12), rng.uniform(0, 12), rng.uniform(0, 12)});
  }
  graph::RadiusGraphOptions opts;
  opts.cutoff = 4.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(graph::build_radius_graph(pts, opts));
  }
  state.SetItemsProcessed(state.iterations() * n * n);
}
BENCHMARK(BM_RadiusGraph)->Arg(32)->Arg(128)->Arg(512);

void BM_RadiusGraphPeriodic(benchmark::State& state) {
  const std::int64_t n = state.range(0);
  core::RngEngine rng(5);
  std::vector<core::Vec3> pts;
  for (std::int64_t i = 0; i < n; ++i) {
    pts.push_back({rng.uniform(0, 12), rng.uniform(0, 12), rng.uniform(0, 12)});
  }
  const core::Mat3 cell =
      core::mat3_rows({12, 0, 0}, {0, 12, 0}, {0, 0, 12});
  graph::RadiusGraphOptions opts;
  opts.cutoff = 4.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(graph::build_radius_graph(pts, opts, cell));
  }
  state.SetItemsProcessed(state.iterations() * n * n);
}
BENCHMARK(BM_RadiusGraphPeriodic)->Arg(32)->Arg(128);

void BM_EgnnForward(benchmark::State& state) {
  const std::int64_t hidden = state.range(0);
  core::RngEngine rng(6);
  models::EGNNConfig cfg;
  cfg.hidden_dim = hidden;
  cfg.pos_hidden = hidden / 4;
  cfg.num_layers = 3;
  models::EGNN encoder(cfg, rng);

  sym::SyntheticPointGroupDataset ds(16, 7);
  std::vector<data::StructureSample> samples;
  for (std::int64_t i = 0; i < 16; ++i) samples.push_back(ds.get(i));
  data::CollateOptions copts;
  copts.representation = data::Representation::kPointCloud;
  const data::Batch batch = data::collate(samples, copts);

  core::NoGradGuard no_grad;
  for (auto _ : state) {
    benchmark::DoNotOptimize(encoder.encode(batch));
  }
  state.SetItemsProcessed(state.iterations() * batch.num_nodes());
}
BENCHMARK(BM_EgnnForward)->Arg(32)->Arg(64)->Arg(128);

void BM_EgnnTrainStep(benchmark::State& state) {
  core::RngEngine rng(8);
  models::EGNNConfig cfg;
  cfg.hidden_dim = 64;
  cfg.pos_hidden = 16;
  cfg.num_layers = 3;
  models::EGNN encoder(cfg, rng);

  sym::SyntheticPointGroupDataset ds(16, 9);
  std::vector<data::StructureSample> samples;
  for (std::int64_t i = 0; i < 16; ++i) samples.push_back(ds.get(i));
  data::CollateOptions copts;
  copts.representation = data::Representation::kPointCloud;
  const data::Batch batch = data::collate(samples, copts);

  for (auto _ : state) {
    encoder.zero_grad();
    core::Tensor loss = core::mean(core::square(encoder.encode(batch)));
    loss.backward();
    benchmark::DoNotOptimize(loss.item());
  }
  state.SetItemsProcessed(state.iterations() * batch.num_nodes());
}
BENCHMARK(BM_EgnnTrainStep);

}  // namespace

BENCHMARK_MAIN();
