// Kernel microbenchmarks (google-benchmark): the primitive operations
// underneath the training pipeline — dense matmul, the DGL-style
// gather/segment message-passing kernels, radius-graph construction,
// and a full EGNN forward — so performance regressions in the substrate
// are visible independent of end-to-end training noise.
//
// The custom main() additionally sweeps {scalar, best-SIMD} kernel
// backends x {1, 2, 4, max} pool threads on the large matmul /
// elementwise / reduction / segment_sum / gather shapes and emits one
// JSON line per (kernel, backend, threads) point in the same
// log-scraping style as bench_serving. Each line carries
// `speedup_vs_1t` (thread scaling within a backend) and
// `speedup_vs_scalar` (SIMD win at the same thread count), so both the
// parallel runtime and the vector kernels are tracked release over
// release. `--sweep-only` skips the google-benchmark suite;
// `--no-sweep` skips the sweep.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "core/backend/backend.hpp"
#include "core/graph_ops.hpp"
#include "core/ops.hpp"
#include "core/parallel/thread_pool.hpp"
#include "data/collate.hpp"
#include "graph/radius_graph.hpp"
#include "materials/lips.hpp"
#include "materials/md.hpp"
#include "models/egnn.hpp"
#include "sym/synthetic_dataset.hpp"

namespace {

using namespace matsci;

void BM_Matmul(benchmark::State& state) {
  const std::int64_t n = state.range(0);
  core::RngEngine rng(1);
  core::Tensor a = core::Tensor::randn({n, n}, rng);
  core::Tensor b = core::Tensor::randn({n, n}, rng);
  core::NoGradGuard no_grad;
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::matmul(a, b));
  }
  state.SetItemsProcessed(state.iterations() * 2 * n * n * n);
}
BENCHMARK(BM_Matmul)->Arg(32)->Arg(64)->Arg(128)->Arg(256);

void BM_GatherRows(benchmark::State& state) {
  const std::int64_t n = state.range(0);
  core::RngEngine rng(2);
  core::Tensor x = core::Tensor::randn({n, 64}, rng);
  std::vector<std::int64_t> idx(static_cast<std::size_t>(4 * n));
  for (auto& i : idx) i = rng.next_int(n);
  core::NoGradGuard no_grad;
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::gather_rows(x, idx));
  }
  state.SetItemsProcessed(state.iterations() * 4 * n * 64);
}
BENCHMARK(BM_GatherRows)->Arg(256)->Arg(1024)->Arg(4096);

void BM_SegmentSum(benchmark::State& state) {
  const std::int64_t rows = state.range(0);
  const std::int64_t segments = rows / 8;
  core::RngEngine rng(3);
  core::Tensor x = core::Tensor::randn({rows, 64}, rng);
  std::vector<std::int64_t> seg(static_cast<std::size_t>(rows));
  for (auto& s : seg) s = rng.next_int(segments);
  core::NoGradGuard no_grad;
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::segment_sum(x, seg, segments));
  }
  state.SetItemsProcessed(state.iterations() * rows * 64);
}
BENCHMARK(BM_SegmentSum)->Arg(1024)->Arg(8192);

void BM_RadiusGraph(benchmark::State& state) {
  const std::int64_t n = state.range(0);
  core::RngEngine rng(4);
  std::vector<core::Vec3> pts;
  for (std::int64_t i = 0; i < n; ++i) {
    pts.push_back({rng.uniform(0, 12), rng.uniform(0, 12), rng.uniform(0, 12)});
  }
  graph::RadiusGraphOptions opts;
  opts.cutoff = 4.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(graph::build_radius_graph(pts, opts));
  }
  state.SetItemsProcessed(state.iterations() * n * n);
}
BENCHMARK(BM_RadiusGraph)->Arg(32)->Arg(128)->Arg(512);

void BM_RadiusGraphPeriodic(benchmark::State& state) {
  const std::int64_t n = state.range(0);
  core::RngEngine rng(5);
  std::vector<core::Vec3> pts;
  for (std::int64_t i = 0; i < n; ++i) {
    pts.push_back({rng.uniform(0, 12), rng.uniform(0, 12), rng.uniform(0, 12)});
  }
  const core::Mat3 cell =
      core::mat3_rows({12, 0, 0}, {0, 12, 0}, {0, 0, 12});
  graph::RadiusGraphOptions opts;
  opts.cutoff = 4.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(graph::build_radius_graph(pts, opts, cell));
  }
  state.SetItemsProcessed(state.iterations() * n * n);
}
BENCHMARK(BM_RadiusGraphPeriodic)->Arg(32)->Arg(128);

// LJ energy/forces on an n x n x n LiPS supercell with the neighbor
// list rebuilt every iteration (atom 0 is bounced past the skin/2
// displacement threshold, the MD steady state for a diffusing system):
// cell-list binning vs the O(N^2) candidate scan. The cell path's win
// grows with atom count; both paths produce bit-identical energies
// (tested in test_md).
void lj_provider_loop(benchmark::State& state,
                      const materials::NeighborListOptions& nlopts) {
  const std::int64_t n = state.range(0);
  materials::Structure sc =
      materials::LiPSDataset::initial_structure().supercell(n, n, n);
  materials::LJForceProvider provider(4.0, nlopts);
  std::vector<core::Vec3> forces;
  const double bounce = 1.5 * (nlopts.skin / 2.0) / (6.2 * n);
  double sign = 1.0;
  for (auto _ : state) {
    sc.frac[0].x += sign * bounce;
    sign = -sign;
    benchmark::DoNotOptimize(provider.energy_and_forces(sc, forces));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(sc.num_atoms()));
}

void BM_LJCellList(benchmark::State& state) {
  lj_provider_loop(state, {});
}
BENCHMARK(BM_LJCellList)->Arg(2)->Arg(3)->Arg(4);

void BM_LJPairScan(benchmark::State& state) {
  materials::NeighborListOptions opts;
  opts.disable_cells = true;
  lj_provider_loop(state, opts);
}
BENCHMARK(BM_LJPairScan)->Arg(2)->Arg(3)->Arg(4);

void BM_EgnnForward(benchmark::State& state) {
  const std::int64_t hidden = state.range(0);
  core::RngEngine rng(6);
  models::EGNNConfig cfg;
  cfg.hidden_dim = hidden;
  cfg.pos_hidden = hidden / 4;
  cfg.num_layers = 3;
  models::EGNN encoder(cfg, rng);

  sym::SyntheticPointGroupDataset ds(16, 7);
  std::vector<data::StructureSample> samples;
  for (std::int64_t i = 0; i < 16; ++i) samples.push_back(ds.get(i));
  data::CollateOptions copts;
  copts.representation = data::Representation::kPointCloud;
  const data::Batch batch = data::collate(samples, copts);

  core::NoGradGuard no_grad;
  for (auto _ : state) {
    benchmark::DoNotOptimize(encoder.encode(batch));
  }
  state.SetItemsProcessed(state.iterations() * batch.num_nodes());
}
BENCHMARK(BM_EgnnForward)->Arg(32)->Arg(64)->Arg(128);

void BM_EgnnTrainStep(benchmark::State& state) {
  core::RngEngine rng(8);
  models::EGNNConfig cfg;
  cfg.hidden_dim = 64;
  cfg.pos_hidden = 16;
  cfg.num_layers = 3;
  models::EGNN encoder(cfg, rng);

  sym::SyntheticPointGroupDataset ds(16, 9);
  std::vector<data::StructureSample> samples;
  for (std::int64_t i = 0; i < 16; ++i) samples.push_back(ds.get(i));
  data::CollateOptions copts;
  copts.representation = data::Representation::kPointCloud;
  const data::Batch batch = data::collate(samples, copts);

  for (auto _ : state) {
    encoder.zero_grad();
    core::Tensor loss = core::mean(core::square(encoder.encode(batch)));
    loss.backward();
    benchmark::DoNotOptimize(loss.item());
  }
  state.SetItemsProcessed(state.iterations() * batch.num_nodes());
}
BENCHMARK(BM_EgnnTrainStep);

// --- thread-count scaling sweep ---------------------------------------------

/// Best-of-3 wall time per call, microseconds. One untimed warm-up call
/// absorbs first-touch allocation; best-of filters scheduler noise.
template <typename Fn>
double time_us_per_call(Fn&& fn, int reps) {
  fn();
  double best = 1e300;
  for (int round = 0; round < 3; ++round) {
    const auto t0 = std::chrono::steady_clock::now();
    for (int r = 0; r < reps; ++r) fn();
    const auto t1 = std::chrono::steady_clock::now();
    best = std::min(
        best, std::chrono::duration<double, std::micro>(t1 - t0).count() / reps);
  }
  return best;
}

struct SweepKernel {
  const char* name;
  std::int64_t size;  ///< problem-size knob, reported in the JSON line
  double (*run)(std::int64_t size);
};

double sweep_matmul(std::int64_t n) {
  core::RngEngine rng(41);
  core::Tensor a = core::Tensor::randn({n, n}, rng);
  core::Tensor b = core::Tensor::randn({n, n}, rng);
  core::NoGradGuard no_grad;
  return time_us_per_call(
      [&] { benchmark::DoNotOptimize(core::matmul(a, b)); }, 5);
}

double sweep_segment_sum(std::int64_t rows) {
  const std::int64_t segments = rows / 8;
  core::RngEngine rng(42);
  core::Tensor x = core::Tensor::randn({rows, 64}, rng);
  std::vector<std::int64_t> seg(static_cast<std::size_t>(rows));
  for (auto& s : seg) s = rng.next_int(segments);
  core::NoGradGuard no_grad;
  return time_us_per_call(
      [&] { benchmark::DoNotOptimize(core::segment_sum(x, seg, segments)); },
      20);
}

double sweep_gather(std::int64_t n) {
  core::RngEngine rng(43);
  core::Tensor x = core::Tensor::randn({n, 64}, rng);
  std::vector<std::int64_t> idx(static_cast<std::size_t>(4 * n));
  for (auto& i : idx) i = rng.next_int(n);
  core::NoGradGuard no_grad;
  return time_us_per_call(
      [&] { benchmark::DoNotOptimize(core::gather_rows(x, idx)); }, 20);
}

double sweep_elementwise(std::int64_t n) {
  // mul + add + silu over a flat [n] tensor: the fused shape of one
  // message-MLP activation, dominated by the binary/unary kernels.
  core::RngEngine rng(44);
  core::Tensor a = core::Tensor::randn({n, 1}, rng);
  core::Tensor b = core::Tensor::randn({n, 1}, rng);
  core::NoGradGuard no_grad;
  return time_us_per_call(
      [&] { benchmark::DoNotOptimize(core::silu(core::add(core::mul(a, b), a))); },
      10);
}

double sweep_reduce(std::int64_t n) {
  core::RngEngine rng(45);
  core::Tensor x = core::Tensor::randn({n, 1}, rng);
  core::NoGradGuard no_grad;
  return time_us_per_call(
      [&] { benchmark::DoNotOptimize(core::sum(x)); }, 10);
}

/// Sweep {scalar, best-SIMD} backends x {1, 2, 4, max} pool threads
/// (deduplicated, ascending) and report per-call time plus two
/// speedups: over the same backend at 1 thread, and over the scalar
/// backend at the same thread count. Within a backend the kernels are
/// bit-deterministic across the sweep, so those points differ only in
/// wall time.
void run_thread_sweep(obs::BenchReporter& reporter) {
  namespace par = core::parallel;
  namespace bk = core::backend;
  const std::int64_t saved = par::num_threads();
  const bk::Backend saved_backend = bk::active_backend();
  const std::int64_t max_threads = par::ThreadPool::default_size();
  std::vector<std::int64_t> counts = {1, 2, 4, max_threads};
  std::sort(counts.begin(), counts.end());
  counts.erase(std::unique(counts.begin(), counts.end()), counts.end());

  std::vector<bk::Backend> backends = {bk::Backend::kScalar};
  if (bk::best_supported() != bk::Backend::kScalar) {
    backends.push_back(bk::best_supported());
  }

  const SweepKernel kernels[] = {
      {"matmul", 256, sweep_matmul},
      {"elementwise", 1 << 20, sweep_elementwise},
      {"reduce_sum", 1 << 20, sweep_reduce},
      {"segment_sum", 8192, sweep_segment_sum},
      {"gather_rows", 4096, sweep_gather},
  };

  std::printf("kernel sweep: {scalar,%s} x threads {1,2,4,max=%lld}\n",
              bk::backend_name(backends.back()),
              static_cast<long long>(max_threads));
  for (const SweepKernel& k : kernels) {
    // scalar_us[i] = scalar-backend time at counts[i], the denominator
    // for speedup_vs_scalar at matching thread counts.
    std::vector<double> scalar_us(counts.size(), 0.0);
    for (const bk::Backend backend : backends) {
      bk::set_backend(backend);
      double base_us = 0.0;
      for (std::size_t ci = 0; ci < counts.size(); ++ci) {
        const std::int64_t t = counts[ci];
        par::set_num_threads(t);
        const double us = k.run(k.size);
        if (t == 1) base_us = us;
        if (backend == bk::Backend::kScalar) scalar_us[ci] = us;
        reporter.add(obs::JsonRecord()
                         .set("kernel", k.name)
                         .set("backend", bk::backend_name(backend))
                         .set("size", k.size)
                         .set("threads", t)
                         .set("us_per_call", us)
                         .set("speedup_vs_1t",
                              base_us > 0.0 ? base_us / us : 0.0)
                         .set("speedup_vs_scalar",
                              scalar_us[ci] > 0.0 ? scalar_us[ci] / us : 0.0));
      }
    }
  }
  bk::set_backend(saved_backend);
  par::set_num_threads(saved);
}

}  // namespace

int main(int argc, char** argv) {
  bool sweep = true, suite = true;
  std::vector<char*> bench_args;
  for (int i = 0; i < argc; ++i) {
    if (std::strcmp(argv[i], "--sweep-only") == 0) {
      suite = false;
    } else if (std::strcmp(argv[i], "--no-sweep") == 0) {
      sweep = false;
    } else {
      bench_args.push_back(argv[i]);
    }
  }
  obs::BenchReporter reporter = bench::make_reporter("kernels");
  if (sweep) run_thread_sweep(reporter);
  // Write artifacts and disarm tracing before the google-benchmark
  // suite: an armed span costs two clock reads, which would distort the
  // microsecond-scale kernel timings below.
  reporter.finish();
  obs::Tracer::global().set_enabled(false);
  if (suite) {
    int bench_argc = static_cast<int>(bench_args.size());
    benchmark::Initialize(&bench_argc, bench_args.data());
    if (benchmark::ReportUnrecognizedArguments(bench_argc,
                                               bench_args.data())) {
      return 1;
    }
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
  }
  return 0;
}
