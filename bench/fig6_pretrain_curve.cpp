// Figure 6 — pretraining learning curve with the LR schedule trace.
//
// The paper's appendix shows the final pretrained model's training
// curve: cross-entropy with early spikes that die out as the scheduled
// learning rate — linear warmup to η_base·N over 5 epochs, then
// exponential decay with γ = 0.8 — comes down, after which learning
// plateaus. We emulate N = 32 workers (B_eff = N·B via accumulation)
// with η_base = 1e-5 scaled by N, the paper's chosen recipe.
#include <cstdio>

#include "bench_common.hpp"
#include "optim/lr_scheduler.hpp"
#include "train/logging.hpp"

int main() {
  using namespace matsci;
  bench::print_header(
      "Figure 6 — symmetry pretraining curve + learning-rate trace");
  // The MetricsLogger below forwards its train_ce/val_ce/lr series to
  // the obs registry, so they land in BENCH_fig6_pretrain_curve.json as
  // series records without extra plumbing.
  obs::BenchReporter reporter = bench::make_reporter("fig6_pretrain_curve");

  constexpr std::int64_t kWorkers = 32;   // paper: 512
  constexpr std::int64_t kBatch = 2;      // per-rank batch (paper: 32)
  constexpr std::int64_t kEpochs = 14;
  constexpr std::int64_t kWarmupEpochs = 5;
  constexpr double kBaseLr = 1e-4;

  sym::SyntheticPointGroupDataset train_ds(kWorkers * kBatch * 12, 31,
                                           bench::bench_sym_options());
  sym::SyntheticPointGroupDataset val_ds(96, 77, bench::bench_sym_options());
  data::DataLoaderOptions lo;
  lo.batch_size = kBatch;
  lo.seed = 5;
  lo.collate.representation = data::Representation::kPointCloud;
  data::DataLoader train_loader(train_ds, lo);
  data::DataLoaderOptions vo = lo;
  vo.batch_size = 48;
  vo.shuffle = false;
  data::DataLoader val_loader(val_ds, vo);

  core::RngEngine rng(13);
  auto encoder = std::make_shared<models::EGNN>(
      bench::bench_encoder_config(24, 2), rng);
  tasks::ClassificationTask task(encoder, "point_group",
                                 sym::num_point_groups(),
                                 bench::bench_head_config(24, 1), rng);
  optim::AdamOptions ao;
  ao.lr = optim::scale_lr_for_world_size(kBaseLr, kWorkers);
  ao.decoupled_weight_decay = true;
  optim::Adam opt(task.parameters(), ao);
  optim::WarmupExponential sched(
      opt, optim::scale_lr_for_world_size(kBaseLr, kWorkers), kWarmupEpochs,
      0.8);

  train::TrainerOptions topts;
  topts.max_epochs = kEpochs;
  topts.accumulate_batches = kWorkers;
  train::MetricsLogger logger;
  train::Trainer trainer(topts);
  const train::FitResult result = trainer.fit(
      task, train_loader, &val_loader, opt, &sched,
      [&logger](const train::EpochStats& stats) {
        logger.log(stats.epoch, "train_ce", stats.train.at("ce"));
        logger.log(stats.epoch, "val_ce", stats.val.at("ce"));
        logger.log(stats.epoch, "lr", stats.lr);
      });
  (void)result;

  std::printf("\n%s\n",
              logger.format_table({"train_ce", "val_ce", "lr"}, "epoch")
                  .c_str());

  // Verify the schedule shape numerically.
  const auto lr_series = logger.series("lr");
  bool warmup_monotone = true;
  for (std::size_t e = 1; e < static_cast<std::size_t>(kWarmupEpochs); ++e) {
    if (lr_series[e].second <= lr_series[e - 1].second) {
      warmup_monotone = false;
    }
  }
  const double decay_ratio =
      lr_series[static_cast<std::size_t>(kWarmupEpochs) + 1].second /
      lr_series[static_cast<std::size_t>(kWarmupEpochs)].second;
  std::printf(
      "Schedule check: warmup monotone ramp = %s; post-warmup decay ratio "
      "= %.3f (target gamma 0.8)\n",
      warmup_monotone ? "yes" : "NO", decay_ratio);

  const auto ce = logger.series("train_ce");
  const auto vce = logger.series("val_ce");
  // Count upward excursions of validation CE around the lr peak vs in
  // the decayed tail — the paper's "optimizer stabilizes as the rate is
  // decreased" observation.
  int early_bumps = 0, late_bumps = 0;
  for (std::size_t e = 1; e < vce.size(); ++e) {
    const bool bump = vce[e].second > vce[e - 1].second;
    if (e <= static_cast<std::size_t>(kWarmupEpochs) + 3) {
      early_bumps += bump;
    } else {
      late_bumps += bump;
    }
  }
  std::printf(
      "Learning-curve check: CE start %.3f -> end %.3f; validation\n"
      "upward excursions: %d around the warmup/lr-peak window vs %d in\n"
      "the decayed tail. Paper shape: instability while the rate is high\n"
      "(early spikes), stabilization + gradual plateau as the\n"
      "exponential decay brings it down.\n",
      ce.front().second, ce.back().second, early_bumps, late_bumps);

  reporter.add(obs::JsonRecord()
                   .set("record", "pretrain_curve")
                   .set("warmup_monotone", warmup_monotone)
                   .set("decay_ratio", decay_ratio)
                   .set("train_ce_start", ce.front().second)
                   .set("train_ce_end", ce.back().second)
                   .set("early_bumps", early_bumps)
                   .set("late_bumps", late_bumps));
  return 0;
}
