// Open-loop overload bench for the serving frontend. The existing
// bench_serving is closed-loop: clients wait for each answer before
// sending the next request, so offered load can never exceed service
// capacity and queueing collapse is structurally invisible. This
// harness is open-loop: a generator thread submits on a fixed arrival
// schedule regardless of completions, driving the frontend at
// multiples of measured capacity (default 1x, 2x, 10x) and reporting
// what overload actually does: p50/p99 of served requests, shed rate
// (admission + queue-full + deadline drops), cache hit rate, and the
// maximum observed queue depth (bounded by construction — that is the
// point).
//
// At the highest multiplier the run also hot-swaps the model to
// version 2 mid-load and verifies zero in-flight requests are lost and
// every served answer stays bit-exact vs a single-structure forward.
//
// The run doubles as the telemetry-plane acceptance harness: an
// embedded TelemetryServer is started before the schedulers, the main
// thread scrapes /metrics repeatedly DURING each overload window
// (every scrape must stay validator-clean with bounded latency while
// registry shards mutate under load), and after the gather a
// cache-cold probe request's trace id must appear in spans for every
// stage from admission through forward (end-to-end continuity).
//
// Usage: bench_serve_openloop [duration_s] [multiplier...]
//   defaults: 2.0 s per configuration at 1x, 2x, 10x capacity.
//
// raw-threads-ok: the open-loop generator must tick on a wall-clock
// schedule independent of the pool; running it on the shared pool
// would let the serve dispatch jobs it feeds starve it into a
// closed loop.
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <future>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "core/parallel/thread_pool.hpp"
#include "materials/materials_project.hpp"
#include "models/egnn.hpp"
#include "obs/obs.hpp"
#include "serve/serve.hpp"
#include "tasks/regression.hpp"

namespace {

using namespace matsci;
using Clock = std::chrono::steady_clock;

constexpr const char* kModel = "band_gap_model";
constexpr const char* kTarget = "band_gap";
constexpr std::int64_t kWorkers = 2;
constexpr std::int64_t kQueueCapacity = 256;

std::shared_ptr<tasks::ScalarRegressionTask> make_bench_task() {
  core::RngEngine rng(7);
  auto encoder = std::make_shared<models::EGNN>(bench::bench_encoder_config(), rng);
  return std::make_shared<tasks::ScalarRegressionTask>(
      encoder, kTarget, bench::bench_head_config(), rng,
      data::TargetStats{2.0f, 1.5f});
}

std::shared_ptr<serve::InferenceSession> make_session(
    const std::shared_ptr<tasks::ScalarRegressionTask>& task) {
  serve::InferenceSessionOptions sopts;
  sopts.collate.radius.cutoff = 4.5;
  return std::make_shared<serve::InferenceSession>(task, sopts);
}

serve::SchedulerOptions scheduler_options() {
  serve::SchedulerOptions opts;
  opts.max_batch_size = 32;
  opts.max_wait_us = 2000;
  opts.num_workers = kWorkers;
  opts.queue_capacity = kQueueCapacity;
  return opts;
}

/// Sustained capacity estimate (structures/s): time saturated
/// full-batch forwards and scale by the worker count.
double measure_capacity(const serve::InferenceSession& session,
                        const std::vector<data::StructureSample>& pool) {
  std::vector<data::StructureSample> batch(pool.begin(), pool.begin() + 32);
  session.predict(batch, kTarget);  // warm-up (first-touch allocations)
  const auto t0 = Clock::now();
  constexpr int kReps = 6;
  for (int r = 0; r < kReps; ++r) session.predict(batch, kTarget);
  const double s = std::chrono::duration<double>(Clock::now() - t0).count();
  return static_cast<double>(kReps * batch.size()) / s *
         static_cast<double>(kWorkers);
}

struct OpenLoopResult {
  double multiplier = 0.0;
  double offered_rps = 0.0;
  std::int64_t offered = 0;
  std::int64_t served = 0;
  std::int64_t cache_hits = 0;
  std::int64_t shed_admission = 0;
  std::int64_t shed_dispatch = 0;  ///< queue-side deadline drops
  std::int64_t lost = 0;           ///< non-shed failures — must stay 0
  std::int64_t mismatches = 0;     ///< bit-exactness violations — must stay 0
  std::int64_t max_queue_depth = 0;
  std::int64_t hot_swaps = 0;
  double p50_us = 0.0, p99_us = 0.0;
  double achieved_rps = 0.0;
  /// /metrics scrapes issued mid-overload from the main thread.
  std::int64_t scrapes = 0;
  std::int64_t scrapes_valid = 0;  ///< validator-clean scrapes
  double scrape_mean_us = 0.0;
  double scrape_max_us = 0.0;
  /// 1 when the last served request's trace id shows up in spans for
  /// admission, queue wait, and forward (vacuously 1 with obs off).
  std::int64_t trace_continuity_ok = 1;

  double shed_rate() const {
    return offered == 0
               ? 0.0
               : static_cast<double>(shed_admission + shed_dispatch) /
                     static_cast<double>(offered);
  }
  double cache_hit_rate() const {
    return offered == 0 ? 0.0
                        : static_cast<double>(cache_hits) /
                              static_cast<double>(offered);
  }
};

double percentile(std::vector<double>& v, double q) {
  if (v.empty()) return 0.0;
  std::sort(v.begin(), v.end());
  const double rank = q * static_cast<double>(v.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, v.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return v[lo] + (v[hi] - v[lo]) * frac;
}

OpenLoopResult run_open_loop(
    const std::shared_ptr<tasks::ScalarRegressionTask>& task,
    const std::vector<data::StructureSample>& pool,
    const data::StructureSample& probe, const std::vector<float>& reference,
    double capacity_rps, double multiplier, double duration_s, bool hot_swap,
    obs::http::TelemetryServer* telemetry) {
  serve::frontend::FrontendOptions fopts;
  fopts.cache.capacity = 1024;
  serve::frontend::ServeFrontend frontend(fopts);
  frontend.deploy(kModel, 1, make_session(task), scheduler_options());

  OpenLoopResult r;
  r.multiplier = multiplier;
  r.offered_rps = capacity_rps * multiplier;
  const auto interval = std::chrono::nanoseconds(
      static_cast<std::int64_t>(1e9 / r.offered_rps));

  struct Tracked {
    std::size_t pool_index;
    std::future<serve::PredictResult> future;
  };
  std::vector<Tracked> inflight;
  inflight.reserve(static_cast<std::size_t>(r.offered_rps * duration_s) + 16);

  // raw-threads-ok (see file header): the generator must not run on the
  // pool that serves the requests it emits.
  std::thread generator([&] {
    std::uint64_t lcg = 0x9e3779b97f4a7c15ull;
    const auto start = Clock::now();
    auto next = start;
    const auto end = start + std::chrono::duration_cast<Clock::duration>(
                                 std::chrono::duration<double>(duration_s));
    while (Clock::now() < end) {
      std::this_thread::sleep_until(next);
      next += interval;
      lcg = lcg * 6364136223846793005ull + 1442695040888963407ull;
      // Zipf-ish mix: 70% of arrivals hit 8 hot structures (cacheable),
      // the rest spread over the whole pool.
      const bool hot = (lcg >> 33) % 10 < 7;
      const std::size_t idx =
          hot ? (lcg >> 40) % 8 : (lcg >> 40) % pool.size();
      serve::frontend::FrontendRequestOptions ropts;
      const std::uint64_t cls = (lcg >> 20) % 10;
      ropts.priority = cls == 0 ? serve::Priority::kInteractive
                       : cls < 7 ? serve::Priority::kStandard
                                 : serve::Priority::kBatch;
      ropts.deadline_us = 500'000;  // 500 ms dispatch SLO
      serve::frontend::SubmitOutcome outcome =
          frontend.submit(kModel, pool[idx], kTarget, ropts);
      ++r.offered;
      r.max_queue_depth = std::max(
          r.max_queue_depth,
          frontend.registry().resolve(kModel)->scheduler().queue_depth());
      if (outcome.status == serve::frontend::SubmitStatus::kCacheHit) {
        ++r.cache_hits;
        inflight.push_back({idx, std::move(outcome.future)});
      } else if (outcome.status ==
                 serve::frontend::SubmitStatus::kAccepted) {
        inflight.push_back({idx, std::move(outcome.future)});
      } else {
        ++r.shed_admission;
      }
    }
  });

  // Main thread rides the window as the scrape client: /metrics is
  // pulled several times per configuration WHILE the generator drives
  // overload and the registry shards mutate — every scrape must come
  // back validator-clean with bounded latency. The hot-swap (highest
  // multiplier only) still fires at half-time: v2 starts taking new
  // traffic while v1 drains its queue; nothing in flight may be lost
  // and answers stay bit-exact.
  {
    const auto window_start = Clock::now();
    const auto window_end =
        window_start + std::chrono::duration_cast<Clock::duration>(
                           std::chrono::duration<double>(duration_s));
    const auto half_time =
        window_start + std::chrono::duration_cast<Clock::duration>(
                           std::chrono::duration<double>(duration_s / 2));
    const auto scrape_interval =
        std::chrono::duration_cast<Clock::duration>(
            std::chrono::duration<double>(duration_s / 8));
    auto next_scrape = window_start + scrape_interval;
    bool swapped = false;
    double scrape_total_us = 0.0;
    while (Clock::now() < window_end) {
      auto wake = window_end;
      if (telemetry != nullptr) wake = std::min(wake, next_scrape);
      if (hot_swap && !swapped) wake = std::min(wake, half_time);
      std::this_thread::sleep_until(wake);
      if (hot_swap && !swapped && Clock::now() >= half_time) {
        frontend.deploy(kModel, 2, make_session(task),
                        scheduler_options());
        swapped = true;
        ++r.hot_swaps;
      }
      if (telemetry != nullptr && Clock::now() >= next_scrape) {
        const obs::StopWatch watch;
        const obs::http::HttpResponse resp =
            obs::http::http_get("127.0.0.1", telemetry->port(), "/metrics");
        const double us = watch.elapsed_us();
        ++r.scrapes;
        scrape_total_us += us;
        r.scrape_max_us = std::max(r.scrape_max_us, us);
        std::string error;
        if (resp.status == 200 &&
            obs::validate_prometheus_text(resp.body, &error)) {
          ++r.scrapes_valid;
        } else {
          std::fprintf(stderr,
                       "scrape failed at %gx: status=%d %s\n", multiplier,
                       resp.status,
                       resp.status == 200 ? error.c_str()
                                          : resp.body.c_str());
        }
        next_scrape += scrape_interval;
      }
    }
    if (r.scrapes > 0) {
      r.scrape_mean_us = scrape_total_us / static_cast<double>(r.scrapes);
    }
  }
  generator.join();

  std::vector<double> latencies;
  latencies.reserve(inflight.size());
  for (Tracked& t : inflight) {
    try {
      serve::PredictResult res = t.future.get();
      ++r.served;
      if (res.batch_size > 0) latencies.push_back(res.latency_us);
      if (res.prediction.value != reference[t.pool_index]) ++r.mismatches;
    } catch (const serve::ShedError&) {
      ++r.shed_dispatch;  // deadline expired while queued
    } catch (...) {
      ++r.lost;
    }
  }
  r.p50_us = percentile(latencies, 0.50);
  r.p99_us = percentile(latencies, 0.99);
  r.achieved_rps = static_cast<double>(r.served) / duration_s;

  // End-to-end continuity: submit one cache-cold probe after the
  // gather and require spans for every stage — admission (submitting
  // thread), queue wait and forward (pool dispatch jobs) — under its
  // trace id. Probing after the window keeps the check immune to ring
  // wrap: under overload the warm response cache serves hundreds of
  // thousands of hits whose cache-stage spans overwrite every earlier
  // span, so no mid-window request's full span set survives. Vacuous
  // with obs off (compiled_in() is false, no ids are minted).
  if (obs::http::TelemetryServer::compiled_in()) {
    r.trace_continuity_ok = 0;
    serve::frontend::FrontendRequestOptions popts;
    popts.deadline_us = 500'000;
    serve::frontend::SubmitOutcome probe_out =
        frontend.submit(kModel, probe, kTarget, popts);
    if (probe_out.status == serve::frontend::SubmitStatus::kAccepted &&
        probe_out.trace.valid()) {
      (void)probe_out.future.get();
      const std::uint64_t probe_trace = probe_out.trace.trace_id();
      bool admission = false, queue_wait = false, forward = false;
      for (const obs::TraceEvent& e : obs::Tracer::global().collect()) {
        if (e.trace_id != probe_trace || e.name == nullptr) continue;
        const std::string_view name(e.name);
        admission = admission || name == "serve/stage/admission";
        queue_wait = queue_wait || name == "serve/stage/queue_wait";
        forward = forward || name == "serve/stage/forward";
      }
      r.trace_continuity_ok = admission && queue_wait && forward ? 1 : 0;
    }
  }
  return r;
}

/// Mean of one stage histogram over this run only (after minus before:
/// the registry is process-global and accumulates across multipliers).
double stage_mean_us(const obs::MetricsRegistry::Snapshot& before,
                     const obs::MetricsRegistry::Snapshot& after,
                     const std::string& name) {
  const auto it = after.histograms.find(name);
  if (it == after.histograms.end()) return 0.0;
  double sum = it->second.sum;
  std::int64_t count = it->second.count;
  const auto bit = before.histograms.find(name);
  if (bit != before.histograms.end()) {
    sum -= bit->second.sum;
    count -= bit->second.count;
  }
  return count <= 0 ? 0.0 : sum / static_cast<double>(count);
}

}  // namespace

int main(int argc, char** argv) {
  const double duration_s = argc > 1 ? std::atof(argv[1]) : 2.0;
  std::vector<double> multipliers;
  for (int i = 2; i < argc; ++i) multipliers.push_back(std::atof(argv[i]));
  if (multipliers.empty()) multipliers = {1.0, 2.0, 10.0};
  if (duration_s <= 0.0) {
    std::fprintf(stderr,
                 "usage: bench_serve_openloop [duration_s > 0] "
                 "[multiplier...]\n");
    return 2;
  }

  // The telemetry dispatcher and every scheduler dispatch job pin one
  // pool slot each for their lifetime, and both deployed versions'
  // dispatch jobs coexist during the hot-swap drain (1 + 2*kWorkers);
  // leave headroom for compute even on single-core machines.
  if (core::parallel::num_threads() < 6) core::parallel::set_num_threads(6);

  obs::BenchReporter reporter = bench::make_reporter("serve_openloop");

  // Telemetry plane up BEFORE any scheduler deploys (the dispatcher
  // needs a pool slot — see http_server.hpp). Ephemeral port; the main
  // thread scrapes it mid-overload inside run_open_loop.
  obs::http::TelemetryServer telemetry;
  const bool telemetry_up = telemetry.start();
  if (obs::http::TelemetryServer::compiled_in() && !telemetry_up) {
    std::fprintf(stderr, "FAIL: telemetry server did not start: %s\n",
                 telemetry.last_error().c_str());
    return 1;
  }
  if (telemetry_up) {
    std::printf("telemetry server on 127.0.0.1:%d\n", telemetry.port());
  }

  auto task = make_bench_task();
  auto session = make_session(task);
  materials::MaterialsProjectDataset dataset(64, 17);
  std::vector<data::StructureSample> pool;
  for (std::int64_t i = 0; i < dataset.size(); ++i) {
    pool.push_back(dataset.get(i));
  }
  // Cache-cold structure for the post-window trace-continuity probe
  // (never submitted by the generator, so it always misses the
  // response cache and rides the full pipeline).
  materials::MaterialsProjectDataset probe_dataset(1, 9001);
  const data::StructureSample probe = probe_dataset.get(0);
  // Bit-exactness references: one single-structure forward each.
  std::vector<float> reference;
  reference.reserve(pool.size());
  for (const auto& s : pool) {
    reference.push_back(session->predict({s}, kTarget)[0].value);
  }

  const double capacity_rps = measure_capacity(*session, pool);
  std::printf("open-loop serving bench: capacity ~%.0f structs/s "
              "(%lld workers, queue capacity %lld), %.1f s per "
              "configuration\n\n",
              capacity_rps, static_cast<long long>(kWorkers),
              static_cast<long long>(kQueueCapacity), duration_s);
  std::printf("%6s %12s %10s %10s %10s %10s %10s %9s %9s\n", "mult",
              "offered/s", "served/s", "p50_ms", "p99_ms", "shed_rate",
              "cache_hit", "max_depth", "lost");

  int failures = 0;
  for (std::size_t i = 0; i < multipliers.size(); ++i) {
    const double mult = multipliers[i];
    // Hot-swap at the highest (overload) multiplier.
    const bool hot_swap = i + 1 == multipliers.size() && mult > 1.0;
    const obs::MetricsRegistry::Snapshot before =
        obs::MetricsRegistry::global().snapshot();
    const OpenLoopResult r =
        run_open_loop(task, pool, probe, reference, capacity_rps, mult,
                      duration_s, hot_swap,
                      telemetry_up ? &telemetry : nullptr);
    const obs::MetricsRegistry::Snapshot after =
        obs::MetricsRegistry::global().snapshot();
    std::printf("%6.1f %12.0f %10.0f %10.2f %10.2f %10.3f %10.3f %9lld "
                "%9lld\n",
                r.multiplier, r.offered_rps, r.achieved_rps,
                r.p50_us / 1000.0, r.p99_us / 1000.0, r.shed_rate(),
                r.cache_hit_rate(),
                static_cast<long long>(r.max_queue_depth),
                static_cast<long long>(r.lost));
    if (r.lost != 0 || r.mismatches != 0) {
      std::fprintf(stderr,
                   "FAIL at %gx: lost=%lld mismatches=%lld (must be 0)\n",
                   mult, static_cast<long long>(r.lost),
                   static_cast<long long>(r.mismatches));
      ++failures;
    }
    if (r.max_queue_depth > kQueueCapacity) {
      std::fprintf(stderr, "FAIL at %gx: queue depth %lld exceeded bound\n",
                   mult, static_cast<long long>(r.max_queue_depth));
      ++failures;
    }
    if (telemetry_up) {
      std::printf("       telemetry: %lld/%lld scrapes validator-clean, "
                  "mean %.0f us, max %.0f us, trace continuity %s\n",
                  static_cast<long long>(r.scrapes_valid),
                  static_cast<long long>(r.scrapes), r.scrape_mean_us,
                  r.scrape_max_us,
                  r.trace_continuity_ok != 0 ? "ok" : "BROKEN");
      if (r.scrapes == 0 || r.scrapes_valid != r.scrapes) {
        std::fprintf(stderr,
                     "FAIL at %gx: %lld/%lld mid-overload scrapes "
                     "validator-clean (all must be)\n",
                     mult, static_cast<long long>(r.scrapes_valid),
                     static_cast<long long>(r.scrapes));
        ++failures;
      }
      if (r.trace_continuity_ok == 0) {
        std::fprintf(stderr,
                     "FAIL at %gx: last served request's trace id missing "
                     "from admission/queue_wait/forward spans\n",
                     mult);
        ++failures;
      }
    }
    reporter.add(obs::JsonRecord()
                     .set("closed_loop", false)
                     .set("multiplier", r.multiplier)
                     .set("duration_s", duration_s)
                     .set("capacity_structs_per_s", capacity_rps)
                     .set("offered_rps", r.offered_rps)
                     .set("achieved_rps", r.achieved_rps)
                     .set("offered", r.offered)
                     .set("served", r.served)
                     .set("p50_us", r.p50_us)
                     .set("p99_us", r.p99_us)
                     .set("shed_rate", r.shed_rate())
                     .set("shed_admission", r.shed_admission)
                     .set("shed_dispatch", r.shed_dispatch)
                     .set("cache_hit_rate", r.cache_hit_rate())
                     .set("max_queue_depth", r.max_queue_depth)
                     .set("queue_capacity", kQueueCapacity)
                     .set("hot_swaps", r.hot_swaps)
                     .set("lost", r.lost)
                     .set("mismatches", r.mismatches)
                     .set("scrapes", r.scrapes)
                     .set("scrapes_valid", r.scrapes_valid)
                     .set("scrape_mean_us", r.scrape_mean_us)
                     .set("scrape_max_us", r.scrape_max_us)
                     .set("trace_continuity_ok", r.trace_continuity_ok)
                     .set("stage_queue_wait_mean_us",
                          stage_mean_us(before, after,
                                        "serve.stage.queue_wait_us"))
                     .set("stage_batch_assembly_mean_us",
                          stage_mean_us(before, after,
                                        "serve.stage.batch_assembly_us"))
                     .set("stage_forward_mean_us",
                          stage_mean_us(before, after,
                                        "serve.stage.forward_us"))
                     .set("stage_cache_mean_us",
                          stage_mean_us(before, after,
                                        "serve.stage.cache_us"))
                     .set("stage_shed_mean_us",
                          stage_mean_us(before, after,
                                        "serve.stage.shed_us")));
  }

  std::printf("\nshed traffic is the overload-survival signal: bounded "
              "queue + admission control turn excess offered load into "
              "fast rejections with retry-after instead of unbounded "
              "queue growth.\n");
  telemetry.stop();
  reporter.finish();
  return failures == 0 ? 0 : 1;
}
