// Figure 2 — pretraining throughput vs number of DDP workers.
//
// The paper measures aggregate samples/s for the symmetry pretraining
// task from 16 to 512 ranks (1–32 Sapphire Rapids nodes, 16 ranks/node)
// and finds linear scaling: gradient-allreduce time is negligible next
// to per-rank compute. Reproduction strategy (DESIGN.md §2):
//   1. run *real* thread-backed DDP for small worlds to validate the
//      synchronous-training semantics end to end;
//   2. measure true single-rank compute time per step;
//   3. compose it with the α-β ring-allreduce model of the HDR200
//      cluster to regenerate the 16→512-rank curve and epoch times for
//      the paper's 2M-sample dataset.
#include <chrono>
#include <cstdio>

#include "bench_common.hpp"
#include "comm/perf_model.hpp"
#include "optim/sgd.hpp"
#include "train/ddp.hpp"

namespace {

using namespace matsci;

constexpr std::int64_t kBatchPerRank = 32;
constexpr std::int64_t kPaperDatasetSize = 2'000'000;

/// One rank's full training context for the DDP validation runs.
train::RankContext make_rank_context(
    const sym::SyntheticPointGroupDataset& ds, std::int64_t rank,
    std::int64_t world) {
  train::RankContext ctx;
  core::RngEngine rng(7);
  auto encoder = std::make_shared<models::EGNN>(
      bench::bench_encoder_config(), rng);
  auto task = std::make_unique<tasks::ClassificationTask>(
      encoder, "point_group", sym::num_point_groups(),
      bench::bench_head_config(), rng);
  data::DataLoaderOptions lo;
  lo.batch_size = kBatchPerRank;
  lo.seed = 3;
  lo.rank = rank;
  lo.world_size = world;
  lo.collate.representation = data::Representation::kPointCloud;
  ctx.train_loader = std::make_unique<data::DataLoader>(ds, lo);
  ctx.optimizer = std::make_unique<optim::SGD>(
      task->parameters(), optim::SGDOptions{.lr = 1e-3});
  ctx.task = std::move(task);
  return ctx;
}

}  // namespace

int main() {
  bench::print_header(
      "Figure 2 — DDP throughput scaling (symmetry pretraining)");
  obs::BenchReporter reporter = bench::make_reporter("fig2_scaleout");

  // --- Part 1: functional thread-DDP validation at small worlds -------
  std::printf(
      "\n[1] Thread-backed DDP validation (real collectives; single\n"
      "    physical core, so aggregate wall-clock throughput is flat —\n"
      "    this validates semantics, not speedup):\n\n");
  std::printf("%8s %12s %14s %16s\n", "ranks", "steps", "samples", "train CE");
  sym::SyntheticPointGroupDataset ds(512, 11, bench::bench_sym_options());
  for (const std::int64_t world : {1, 2, 4}) {
    train::DDPTrainer ddp;
    train::DDPOptions opts;
    opts.world_size = world;
    opts.max_epochs = 1;
    const train::DDPResult result = ddp.fit(
        [&ds](std::int64_t rank, std::int64_t ws) {
          return make_rank_context(ds, rank, ws);
        },
        opts);
    std::printf("%8lld %12lld %14.0f %16.4f\n",
                static_cast<long long>(world),
                static_cast<long long>(result.total_steps),
                result.total_samples,
                result.epochs.back().train.at("ce"));
    reporter.add(obs::JsonRecord()
                     .set("record", "ddp_validation")
                     .set("world_size", world)
                     .set("steps", result.total_steps)
                     .set("samples", result.total_samples)
                     .set("train_ce", result.epochs.back().train.at("ce")));
  }

  // The thread-DDP runs above fed the obs registry: compare measured
  // in-process allreduce latency/bytes with what the α-β model predicts
  // for the same buffer on the paper's HDR200 fabric at world=4.
  {
    const obs::HistogramSnapshot allreduce =
        obs::MetricsRegistry::global().histogram("ddp.allreduce_us")
            .snapshot();
    const std::int64_t bytes =
        obs::MetricsRegistry::global().counter("comm.allreduce.bytes")
            .value();
    const std::int64_t calls =
        obs::MetricsRegistry::global().counter("comm.allreduce.calls")
            .value();
    const double per_call_bytes =
        calls > 0 ? static_cast<double>(bytes) / static_cast<double>(calls)
                  : 0.0;
    comm::PerfModel hdr200;
    const double modeled_us =
        hdr200.allreduce_seconds(4, static_cast<std::int64_t>(per_call_bytes))
        * 1e6;
    std::printf(
        "\n    allreduce: %lld calls, %.2f MiB per rank-buffer, measured\n"
        "    mean %.1f us in-process vs %.1f us α-β-modeled (HDR200, w=4)\n",
        static_cast<long long>(calls),
        per_call_bytes / (1024.0 * 1024.0), allreduce.mean(), modeled_us);
    reporter.add(obs::JsonRecord()
                     .set("record", "allreduce_vs_model")
                     .set("calls", calls)
                     .set("bytes_per_call", per_call_bytes)
                     .set("measured_mean_us", allreduce.mean())
                     .set("measured_p95_us", allreduce.percentile(0.95))
                     .set("modeled_hdr200_w4_us", modeled_us));
  }

  // --- Part 2: measure single-rank compute time per step --------------
  core::RngEngine rng(5);
  auto encoder = std::make_shared<models::EGNN>(
      bench::bench_encoder_config(), rng);
  tasks::ClassificationTask task(encoder, "point_group",
                                 sym::num_point_groups(),
                                 bench::bench_head_config(), rng);
  optim::SGD opt(task.parameters(), {.lr = 1e-3});
  data::DataLoaderOptions lo;
  lo.batch_size = kBatchPerRank;
  lo.collate.representation = data::Representation::kPointCloud;
  data::DataLoader loader(ds, lo);

  // Warmup + timed steps (forward + backward + optimizer).
  const std::int64_t timed_steps = 8;
  for (std::int64_t b = 0; b < 2; ++b) {
    opt.zero_grad();
    task.step(loader.batch(b)).loss.backward();
    opt.step();
  }
  const auto t0 = std::chrono::steady_clock::now();
  for (std::int64_t b = 0; b < timed_steps; ++b) {
    opt.zero_grad();
    task.step(loader.batch(b)).loss.backward();
    opt.step();
  }
  const double compute_per_step =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count() /
      static_cast<double>(timed_steps);
  const std::int64_t grad_bytes = task.num_parameters() * 4;
  std::printf(
      "\n[2] Measured single-rank compute: %.4f s/step (B=%lld, %lld\n"
      "    parameters -> %.2f MiB gradient bucket)\n",
      compute_per_step, static_cast<long long>(kBatchPerRank),
      static_cast<long long>(task.num_parameters()),
      static_cast<double>(grad_bytes) / (1024.0 * 1024.0));
  reporter.add(obs::JsonRecord()
                   .set("record", "single_rank_compute")
                   .set("batch_per_rank", kBatchPerRank)
                   .set("compute_s_per_step", compute_per_step)
                   .set("parameters", task.num_parameters())
                   .set("gradient_bytes", grad_bytes));

  // --- Part 3: α-β-modeled scale-out curve (the Fig. 2 series) --------
  comm::PerfModel model;
  std::printf(
      "\n[3] Modeled scale-out on the paper's cluster (16 ranks/node,\n"
      "    HDR200 inter-node; dataset = %lld samples as in Fig. 2):\n\n",
      static_cast<long long>(kPaperDatasetSize));
  std::printf("%8s %8s %16s %18s %14s\n", "ranks", "nodes", "samples/s",
              "epoch time (s)", "efficiency");
  const double t1 = model.throughput(1, kBatchPerRank, compute_per_step, 0);
  for (const std::int64_t ranks : {16, 32, 64, 128, 256, 512}) {
    const double tput =
        model.throughput(ranks, kBatchPerRank, compute_per_step, grad_bytes);
    const double epoch = model.epoch_seconds(
        ranks, kBatchPerRank, compute_per_step, grad_bytes,
        kPaperDatasetSize);
    std::printf("%8lld %8lld %16.0f %18.1f %13.1f%%\n",
                static_cast<long long>(ranks),
                static_cast<long long>((ranks + 15) / 16), tput, epoch,
                100.0 * tput / (static_cast<double>(ranks) * t1));
    reporter.add(obs::JsonRecord()
                     .set("record", "modeled_scaleout")
                     .set("ranks", ranks)
                     .set("nodes", (ranks + 15) / 16)
                     .set("samples_per_s", tput)
                     .set("epoch_s", epoch)
                     .set("efficiency",
                          tput / (static_cast<double>(ranks) * t1)));
  }
  std::printf(
      "\nShape check vs paper: throughput grows linearly in worker count\n"
      "(efficiency stays >90%%), and epoch time falls to minutes — the\n"
      "communication overhead of per-step gradient averaging is\n"
      "negligible against per-rank compute.\n");
  reporter.finish();
  return 0;
}
