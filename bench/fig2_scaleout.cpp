// Figure 2 — pretraining throughput vs number of DDP workers.
//
// The paper measures aggregate samples/s for the symmetry pretraining
// task from 16 to 512 ranks (1–32 Sapphire Rapids nodes, 16 ranks/node)
// and finds linear scaling: gradient-allreduce time is negligible next
// to per-rank compute. Reproduction strategy (DESIGN.md §2):
//   1. run *real* thread-backed DDP for small worlds to validate the
//      synchronous-training semantics end to end;
//   2. measure true single-rank compute time per step;
//   3. compose it with the α-β ring-allreduce model of the HDR200
//      cluster to regenerate the 16→512-rank curve and epoch times for
//      the paper's 2M-sample dataset.
// The comm/coll subsystem adds a fourth part: overlapped, compressed
// DDP on band-gap regression — measured overlap fraction (how much of
// the bucket in-flight time hides under backward) and per-compressor
// measured-vs-predicted wire bytes, fed back into the α-β model via
// compressed_allreduce_seconds.
#include <chrono>
#include <cstdio>

#include "bench_common.hpp"
#include "comm/coll/compressor.hpp"
#include "comm/perf_model.hpp"
#include "materials/materials_project.hpp"
#include "optim/sgd.hpp"
#include "tasks/regression.hpp"
#include "train/ddp.hpp"

namespace {

using namespace matsci;

constexpr std::int64_t kBatchPerRank = 32;
constexpr std::int64_t kPaperDatasetSize = 2'000'000;

/// One rank's full training context for the DDP validation runs.
train::RankContext make_rank_context(
    const sym::SyntheticPointGroupDataset& ds, std::int64_t rank,
    std::int64_t world) {
  train::RankContext ctx;
  core::RngEngine rng(7);
  auto encoder = std::make_shared<models::EGNN>(
      bench::bench_encoder_config(), rng);
  auto task = std::make_unique<tasks::ClassificationTask>(
      encoder, "point_group", sym::num_point_groups(),
      bench::bench_head_config(), rng);
  data::DataLoaderOptions lo;
  lo.batch_size = kBatchPerRank;
  lo.seed = 3;
  lo.rank = rank;
  lo.world_size = world;
  lo.collate.representation = data::Representation::kPointCloud;
  ctx.train_loader = std::make_unique<data::DataLoader>(ds, lo);
  ctx.optimizer = std::make_unique<optim::SGD>(
      task->parameters(), optim::SGDOptions{.lr = 1e-3});
  ctx.task = std::move(task);
  return ctx;
}

}  // namespace

int main() {
  bench::print_header(
      "Figure 2 — DDP throughput scaling (symmetry pretraining)");
  obs::BenchReporter reporter = bench::make_reporter("fig2_scaleout");

  // --- Part 1: functional thread-DDP validation at small worlds -------
  std::printf(
      "\n[1] Thread-backed DDP validation (real collectives; single\n"
      "    physical core, so aggregate wall-clock throughput is flat —\n"
      "    this validates semantics, not speedup):\n\n");
  std::printf("%8s %12s %14s %16s\n", "ranks", "steps", "samples", "train CE");
  sym::SyntheticPointGroupDataset ds(512, 11, bench::bench_sym_options());
  for (const std::int64_t world : {1, 2, 4}) {
    train::DDPTrainer ddp;
    train::DDPOptions opts;
    opts.world_size = world;
    opts.max_epochs = 1;
    const train::DDPResult result = ddp.fit(
        [&ds](std::int64_t rank, std::int64_t ws) {
          return make_rank_context(ds, rank, ws);
        },
        opts);
    std::printf("%8lld %12lld %14.0f %16.4f\n",
                static_cast<long long>(world),
                static_cast<long long>(result.total_steps),
                result.total_samples,
                result.epochs.back().train.at("ce"));
    reporter.add(obs::JsonRecord()
                     .set("record", "ddp_validation")
                     .set("world_size", world)
                     .set("steps", result.total_steps)
                     .set("samples", result.total_samples)
                     .set("train_ce", result.epochs.back().train.at("ce")));
  }

  // The thread-DDP runs above fed the obs registry: compare measured
  // in-process allreduce latency/bytes with what the α-β model predicts
  // for the same buffer on the paper's HDR200 fabric at world=4.
  {
    const obs::HistogramSnapshot allreduce =
        obs::MetricsRegistry::global().histogram("ddp.allreduce_us")
            .snapshot();
    const std::int64_t bytes =
        obs::MetricsRegistry::global().counter("comm.allreduce.bytes")
            .value();
    const std::int64_t calls =
        obs::MetricsRegistry::global().counter("comm.allreduce.calls")
            .value();
    const double per_call_bytes =
        calls > 0 ? static_cast<double>(bytes) / static_cast<double>(calls)
                  : 0.0;
    comm::PerfModel hdr200;
    const double modeled_us =
        hdr200.allreduce_seconds(4, static_cast<std::int64_t>(per_call_bytes))
        * 1e6;
    std::printf(
        "\n    allreduce: %lld calls, %.2f MiB per rank-buffer, measured\n"
        "    mean %.1f us in-process vs %.1f us α-β-modeled (HDR200, w=4)\n",
        static_cast<long long>(calls),
        per_call_bytes / (1024.0 * 1024.0), allreduce.mean(), modeled_us);
    reporter.add(obs::JsonRecord()
                     .set("record", "allreduce_vs_model")
                     .set("calls", calls)
                     .set("bytes_per_call", per_call_bytes)
                     .set("measured_mean_us", allreduce.mean())
                     .set("measured_p95_us", allreduce.percentile(0.95))
                     .set("modeled_hdr200_w4_us", modeled_us));
  }

  // --- Part 2: measure single-rank compute time per step --------------
  core::RngEngine rng(5);
  auto encoder = std::make_shared<models::EGNN>(
      bench::bench_encoder_config(), rng);
  tasks::ClassificationTask task(encoder, "point_group",
                                 sym::num_point_groups(),
                                 bench::bench_head_config(), rng);
  optim::SGD opt(task.parameters(), {.lr = 1e-3});
  data::DataLoaderOptions lo;
  lo.batch_size = kBatchPerRank;
  lo.collate.representation = data::Representation::kPointCloud;
  data::DataLoader loader(ds, lo);

  // Warmup + timed steps (forward + backward + optimizer).
  const std::int64_t timed_steps = 8;
  for (std::int64_t b = 0; b < 2; ++b) {
    opt.zero_grad();
    task.step(loader.batch(b)).loss.backward();
    opt.step();
  }
  const auto t0 = std::chrono::steady_clock::now();
  for (std::int64_t b = 0; b < timed_steps; ++b) {
    opt.zero_grad();
    task.step(loader.batch(b)).loss.backward();
    opt.step();
  }
  const double compute_per_step =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count() /
      static_cast<double>(timed_steps);
  const std::int64_t grad_bytes = task.num_parameters() * 4;
  std::printf(
      "\n[2] Measured single-rank compute: %.4f s/step (B=%lld, %lld\n"
      "    parameters -> %.2f MiB gradient bucket)\n",
      compute_per_step, static_cast<long long>(kBatchPerRank),
      static_cast<long long>(task.num_parameters()),
      static_cast<double>(grad_bytes) / (1024.0 * 1024.0));
  reporter.add(obs::JsonRecord()
                   .set("record", "single_rank_compute")
                   .set("batch_per_rank", kBatchPerRank)
                   .set("compute_s_per_step", compute_per_step)
                   .set("parameters", task.num_parameters())
                   .set("gradient_bytes", grad_bytes));

  // --- Part 3: α-β-modeled scale-out curve (the Fig. 2 series) --------
  comm::PerfModel model;
  std::printf(
      "\n[3] Modeled scale-out on the paper's cluster (16 ranks/node,\n"
      "    HDR200 inter-node; dataset = %lld samples as in Fig. 2):\n\n",
      static_cast<long long>(kPaperDatasetSize));
  std::printf("%8s %8s %16s %18s %14s\n", "ranks", "nodes", "samples/s",
              "epoch time (s)", "efficiency");
  const double t1 = model.throughput(1, kBatchPerRank, compute_per_step, 0);
  for (const std::int64_t ranks : {16, 32, 64, 128, 256, 512}) {
    const double tput =
        model.throughput(ranks, kBatchPerRank, compute_per_step, grad_bytes);
    const double epoch = model.epoch_seconds(
        ranks, kBatchPerRank, compute_per_step, grad_bytes,
        kPaperDatasetSize);
    std::printf("%8lld %8lld %16.0f %18.1f %13.1f%%\n",
                static_cast<long long>(ranks),
                static_cast<long long>((ranks + 15) / 16), tput, epoch,
                100.0 * tput / (static_cast<double>(ranks) * t1));
    reporter.add(obs::JsonRecord()
                     .set("record", "modeled_scaleout")
                     .set("ranks", ranks)
                     .set("nodes", (ranks + 15) / 16)
                     .set("samples_per_s", tput)
                     .set("epoch_s", epoch)
                     .set("efficiency",
                          tput / (static_cast<double>(ranks) * t1)));
  }
  std::printf(
      "\nShape check vs paper: throughput grows linearly in worker count\n"
      "(efficiency stays >90%%), and epoch time falls to minutes — the\n"
      "communication overhead of per-step gradient averaging is\n"
      "negligible against per-rank compute.\n");

  // --- Part 4: overlapped + compressed DDP (comm/coll) ----------------
  // Band-gap regression at world=2 per compressor: the bucketed engine
  // posts each bucket's allreduce as backward finalizes its last grad,
  // so part of the reduction hides under compute (overlap fraction),
  // and lossy compressors shrink the simulated wire bytes by a ratio
  // the α-β model can predict.
  std::printf(
      "\n[4] Overlapped, compressed DDP (band-gap regression, world=2):\n\n");
  std::printf("%10s %12s %12s %10s %10s %10s %12s\n", "compressor",
              "grad MiB", "wire MiB", "meas r", "pred r", "overlap",
              "final loss");
  {
    materials::MaterialsProjectDataset mp(96, 41);
    const data::TargetStats stats = data::compute_target_stats(mp, "band_gap");
    const double topk_fraction = 0.05;
    double identity_loss = 0.0;
    for (const comm::coll::CompressorKind kind :
         {comm::coll::CompressorKind::kIdentity,
          comm::coll::CompressorKind::kInt8,
          comm::coll::CompressorKind::kTopK}) {
      train::DDPTrainer ddp;
      train::DDPOptions opts;
      opts.world_size = 2;
      opts.max_epochs = 2;
      opts.grad_clip = 1.0;
      opts.coll.compressor = kind;
      opts.coll.topk_fraction = topk_fraction;
      const train::DDPResult result = ddp.fit(
          [&mp, &stats](std::int64_t rank, std::int64_t world) {
            train::RankContext ctx;
            core::RngEngine rng(23);
            auto encoder = std::make_shared<models::EGNN>(
                bench::bench_encoder_config(), rng);
            auto task = std::make_unique<tasks::ScalarRegressionTask>(
                encoder, "band_gap", bench::bench_head_config(), rng, stats);
            data::DataLoaderOptions lo;
            lo.batch_size = 16;
            lo.seed = 3;
            lo.shuffle = false;
            lo.rank = rank;
            lo.world_size = world;
            lo.collate.radius.cutoff = 4.5;
            ctx.train_loader = std::make_unique<data::DataLoader>(mp, lo);
            ctx.optimizer = std::make_unique<optim::SGD>(
                task->parameters(), optim::SGDOptions{.lr = 1e-3});
            ctx.task = std::move(task);
            return ctx;
          },
          opts);

      const double measured_ratio =
          result.comm_bytes > 0
              ? static_cast<double>(result.comm_compressed_bytes) /
                    static_cast<double>(result.comm_bytes)
              : 1.0;
      // Wire-format ratios: int8 ships one byte per element plus a
      // per-bucket fp32 scale (≈1/4); top-k ships (value, index) pairs
      // for k = n·frac elements (≈2·frac).
      double predicted_ratio = 1.0;
      if (kind == comm::coll::CompressorKind::kInt8) {
        predicted_ratio = 0.25;
      } else if (kind == comm::coll::CompressorKind::kTopK) {
        predicted_ratio = 2.0 * topk_fraction;
      }
      const double final_loss = result.epochs.back().train.at("loss");
      if (kind == comm::coll::CompressorKind::kIdentity) {
        identity_loss = final_loss;
      }
      std::printf("%10s %12.3f %12.3f %10.3f %10.3f %9.1f%% %12.4f\n",
                  comm::coll::to_string(kind).c_str(),
                  static_cast<double>(result.comm_bytes) / (1024.0 * 1024.0),
                  static_cast<double>(result.comm_compressed_bytes) /
                      (1024.0 * 1024.0),
                  measured_ratio, predicted_ratio,
                  100.0 * result.mean_overlap_fraction, final_loss);
      reporter.add(obs::JsonRecord()
                       .set("record", "ddp_compression")
                       .set("compressor", comm::coll::to_string(kind))
                       .set("grad_bytes", result.comm_bytes)
                       .set("wire_bytes", result.comm_compressed_bytes)
                       .set("measured_ratio", measured_ratio)
                       .set("predicted_ratio", predicted_ratio)
                       .set("overlap_fraction", result.mean_overlap_fraction)
                       .set("final_loss", final_loss)
                       .set("identity_loss", identity_loss));
    }

    // Feed the measured per-step gradient volume through the compressed
    // α-β model: what each compressor buys on the paper's fabric.
    std::printf(
        "\n    modeled HDR200 allreduce at w=16 for a %.2f MiB bucket:\n",
        static_cast<double>(grad_bytes) / (1024.0 * 1024.0));
    for (const auto& [name, ratio] :
         {std::pair<const char*, double>{"identity", 1.0},
          {"int8", 0.25},
          {"topk", 2.0 * topk_fraction}}) {
      const double us =
          model.compressed_allreduce_seconds(16, grad_bytes, ratio) * 1e6;
      std::printf("%14s  ratio %.3f -> %8.1f us\n", name, ratio, us);
      reporter.add(obs::JsonRecord()
                       .set("record", "modeled_compressed_allreduce")
                       .set("compressor", name)
                       .set("ratio", ratio)
                       .set("ranks", 16)
                       .set("bytes", grad_bytes)
                       .set("modeled_us", us));
    }
  }
  reporter.finish();
  return 0;
}
