// Ablation — hyperparameter sweep over the throughput/convergence knobs.
//
// §5.2 closes with: "this kind of optimization is conventionally
// offloaded to hyperparameter optimization ... further work is required
// to assess a more principled approach". This bench runs that HPO with
// the toolkit's tune module: a grid over (base lr, emulated worker
// count) for the symmetry pretraining task, scoring final validation CE,
// plus a log-uniform random search over lr alone — mapping out exactly
// the stability window the paper found by hand (N = 256 at low lr).
#include <cstdio>

#include "bench_common.hpp"
#include "optim/lr_scheduler.hpp"
#include "tune/search.hpp"

namespace {

using namespace matsci;

/// Final validation CE after a short fixed-step pretraining run at the
/// given (lr_base, workers) — the HPO objective.
double pretraining_objective(double lr_base, std::int64_t workers) {
  const std::int64_t steps = 10;
  sym::SyntheticPointGroupDataset train_ds(steps * workers * 2, 31,
                                           bench::bench_sym_options());
  sym::SyntheticPointGroupDataset val_ds(64, 77, bench::bench_sym_options());
  data::DataLoaderOptions lo;
  lo.batch_size = 2;
  lo.seed = 5;
  lo.collate.representation = data::Representation::kPointCloud;
  data::DataLoader train_loader(train_ds, lo);
  data::DataLoaderOptions vo = lo;
  vo.batch_size = 32;
  vo.shuffle = false;
  data::DataLoader val_loader(val_ds, vo);

  core::RngEngine rng(13);
  auto encoder = std::make_shared<models::EGNN>(
      bench::bench_encoder_config(24, 2), rng);
  tasks::ClassificationTask task(encoder, "point_group",
                                 sym::num_point_groups(),
                                 bench::bench_head_config(24, 1), rng);
  optim::AdamOptions ao;
  ao.lr = optim::scale_lr_for_world_size(lr_base, workers);
  ao.decoupled_weight_decay = true;
  optim::Adam opt(task.parameters(), ao);
  train::TrainerOptions topts;
  topts.max_epochs = 1;
  topts.accumulate_batches = workers;
  const train::FitResult result =
      train::Trainer(topts).fit(task, train_loader, &val_loader, opt);
  const double ce = result.epochs.back().val.at("ce");
  return std::isfinite(ce) ? ce : 1e6;  // diverged runs rank last
}

}  // namespace

int main() {
  using namespace matsci;
  bench::print_header(
      "Ablation — HPO over (base lr, worker count) for pretraining");
  obs::BenchReporter reporter = bench::make_reporter("ablation_hpo");

  std::printf("\n[1] Grid search (objective: final validation CE after a\n"
              "    fixed 10-step budget; lr scaled by N per Goyal):\n\n");
  const auto grid = tune::cartesian_grid({
      {"lr_base", {1e-5, 1e-4, 1e-3}},
      {"workers", {8, 32, 128}},
  });
  const auto results = tune::grid_search(grid, [](const tune::ParamSet& p) {
    return pretraining_objective(
        p.at("lr_base"), static_cast<std::int64_t>(p.at("workers")));
  });
  std::printf("%s", tune::format_results(results).c_str());
  const auto& best = tune::best_trial(results);
  std::printf("\nbest: lr_base=%.0e, workers=%lld (CE %.4f)\n",
              best.params.at("lr_base"),
              static_cast<long long>(best.params.at("workers")),
              best.objective);
  reporter.add(obs::JsonRecord()
                   .set("record", "grid_search_best")
                   .set("lr_base", best.params.at("lr_base"))
                   .set("workers",
                        static_cast<std::int64_t>(best.params.at("workers")))
                   .set("final_ce", best.objective)
                   .set("trials", static_cast<std::int64_t>(results.size())));

  std::printf("\n[2] Log-uniform random search over the *effective* lr at\n"
              "    fixed N=32 (8 trials):\n\n");
  const auto random_results = tune::random_search(
      {{"lr_base", {1e-6, 1e-2, /*log_scale=*/true}}}, 8, /*seed=*/7,
      [](const tune::ParamSet& p) {
        return pretraining_objective(p.at("lr_base"), 32);
      });
  std::printf("%s", tune::format_results(random_results).c_str());
  const auto& rbest = tune::best_trial(random_results);
  std::printf("\nbest: lr_base=%.2e (CE %.4f)\n", rbest.params.at("lr_base"),
              rbest.objective);
  reporter.add(obs::JsonRecord()
                   .set("record", "random_search_best")
                   .set("lr_base", rbest.params.at("lr_base"))
                   .set("final_ce", rbest.objective)
                   .set("trials",
                        static_cast<std::int64_t>(random_results.size())));

  std::printf(
      "\nReading: the sweep exposes the same landscape §5.2 describes —\n"
      "large N with a high base rate lands in the unstable corner, the\n"
      "best cells sit at moderate effective rates, and the search\n"
      "automates the balance the paper picked manually (N = 256).\n");
  return 0;
}
