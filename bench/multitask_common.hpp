#pragma once

/// Shared driver for the paper's multi-task, multi-dataset experiment
/// (Table 1 final metrics, Figure 7 per-epoch curves): joint training of
/// band gap + Fermi energy + formation energy + stability on (simulated)
/// Materials Project together with formation energy on (simulated)
/// Carolina, from either a pretrained or a randomly initialized encoder.

#include <map>
#include <memory>
#include <vector>

#include "bench_common.hpp"
#include "data/joint_loader.hpp"
#include "materials/carolina.hpp"
#include "materials/materials_project.hpp"
#include "tasks/multitask.hpp"

namespace matsci::bench {

struct MultiTaskRunConfig {
  std::int64_t mp_size = 256;
  std::int64_t cmd_size = 256;
  std::int64_t epochs = 8;
  std::int64_t batch_size = 16;
  /// Equal rates isolate the initialization effect; the paper's η/10
  /// fine-tuning rule undertrains at this bench's miniature scale (see
  /// the fig5 protocol note and EXPERIMENTS.md).
  double lr_scratch = 3e-3;
  double lr_pretrained = 3e-3;
  std::int64_t pretrain_samples = 1280;
  std::int64_t pretrain_epochs = 8;
};

/// The five Table-1 column keys, in the paper's order.
inline const std::vector<std::string>& table1_metrics() {
  static const std::vector<std::string> keys = {
      "mp/band_gap/mae", "mp/efermi/mae", "mp/eform/mae", "mp/stability/bce",
      "cmd/eform/mae"};
  return keys;
}

struct MultiTaskRunResult {
  /// Per-epoch validation metric values, keyed by metric name.
  std::map<std::string, std::vector<double>> curves;
  /// Final-epoch validation metrics (the Table 1 row).
  std::map<std::string, double> final_metrics;
};

inline MultiTaskRunResult run_multitask_experiment(
    bool pretrained, const MultiTaskRunConfig& cfg) {
  constexpr std::int64_t kMP = 0, kCMD = 1;
  auto mp = std::make_shared<data::TaggedDataset>(
      std::make_shared<materials::MaterialsProjectDataset>(cfg.mp_size, 41),
      kMP);
  auto cmd = std::make_shared<data::TaggedDataset>(
      std::make_shared<materials::CarolinaMaterialsDataset>(cfg.cmd_size, 42),
      kCMD);
  auto [mp_train, mp_val] = data::train_val_split(*mp, 0.2, 7);
  auto [cmd_train, cmd_val] = data::train_val_split(*cmd, 0.2, 8);

  core::RngEngine rng(61);
  std::shared_ptr<models::EGNN> encoder;
  if (pretrained) {
    encoder = pretrain_symmetry_encoder(cfg.pretrain_samples,
                                        cfg.pretrain_epochs, 17);
  } else {
    encoder = std::make_shared<models::EGNN>(bench_encoder_config(), rng);
  }

  // Multi-task heads use 6 blocks in the paper; 2 here (scaled).
  tasks::MultiTaskModule task(encoder, bench_head_config(32, 2), 71);
  task.add_regression(kMP, "band_gap",
                      data::compute_target_stats(mp_train, "band_gap"),
                      "mp/band_gap");
  task.add_regression(kMP, "efermi",
                      data::compute_target_stats(mp_train, "efermi"),
                      "mp/efermi");
  task.add_regression(kMP, "formation_energy",
                      data::compute_target_stats(mp_train, "formation_energy"),
                      "mp/eform");
  task.add_binary_classification(kMP, "stability", "mp/stability");
  task.add_regression(
      kCMD, "formation_energy",
      data::compute_target_stats(cmd_train, "formation_energy"), "cmd/eform");

  data::DataLoaderOptions lo;
  lo.batch_size = cfg.batch_size;
  lo.seed = 3;
  lo.collate.radius.cutoff = 4.5;
  data::DataLoader mp_loader(mp_train, lo), cmd_loader(cmd_train, lo);
  data::DataLoaderOptions vo = lo;
  vo.shuffle = false;
  data::DataLoader mp_val_loader(mp_val, vo), cmd_val_loader(cmd_val, vo);

  optim::Adam opt = optim::make_adamw(
      task.parameters(), pretrained ? cfg.lr_pretrained : cfg.lr_scratch,
      1e-4);

  // The toolkit's joint scheduler: round-robin across datasets.
  data::JointDataLoader joint({&mp_loader, &cmd_loader},
                              data::SchedulePolicy::kRoundRobin);

  MultiTaskRunResult result;
  for (std::int64_t epoch = 0; epoch < cfg.epochs; ++epoch) {
    task.train(true);
    joint.set_epoch(epoch);
    for (std::int64_t b = 0; b < joint.num_batches(); ++b) {
      opt.zero_grad();
      task.step(joint.batch(b)).loss.backward();
      opt.step();
    }
    // Validation over both datasets.
    tasks::MetricAccumulator acc;
    {
      core::NoGradGuard no_grad;
      task.train(false);
      for (data::DataLoader* loader : {&mp_val_loader, &cmd_val_loader}) {
        for (std::int64_t b = 0; b < loader->num_batches(); ++b) {
          acc.add(task.step(loader->batch(b)));
        }
      }
    }
    for (const std::string& key : table1_metrics()) {
      result.curves[key].push_back(acc.mean(key));
    }
  }
  for (const std::string& key : table1_metrics()) {
    result.final_metrics[key] = result.curves[key].back();
  }
  return result;
}

}  // namespace matsci::bench
