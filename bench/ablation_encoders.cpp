// Ablation — encoder architecture comparison.
//
// The paper fixes one architecture (E(n)-GNN, §4.2) but motivates the
// toolkit as architecture-pluggable, naming SchNet-class invariant GNNs
// and dense point-cloud attention (geometric-algebra networks) as the
// alternatives (§2.1/§2.2). This ablation runs all three encoders the
// toolkit implements through the same two workloads:
//   (a) Materials Project band-gap regression (radius graphs),
//   (b) symmetry-group classification (complete point clouds),
// reporting parameters, wall time, and attained validation metrics.
#include <chrono>
#include <cstdio>
#include <functional>

#include "bench_common.hpp"
#include "materials/materials_project.hpp"
#include "models/attention.hpp"
#include "models/schnet.hpp"
#include "sym/detect.hpp"
#include "tasks/regression.hpp"

namespace {

using namespace matsci;

using EncoderFactory =
    std::function<std::shared_ptr<models::Encoder>(core::RngEngine&)>;

struct EncoderSpec {
  const char* name;
  EncoderFactory make;
};

std::vector<EncoderSpec> encoder_specs() {
  return {
      {"E(n)-GNN", [](core::RngEngine& rng) -> std::shared_ptr<models::Encoder> {
         models::EGNNConfig cfg;
         cfg.hidden_dim = 32;
         cfg.pos_hidden = 16;
         cfg.num_layers = 3;
         return std::make_shared<models::EGNN>(cfg, rng);
       }},
      {"SchNet", [](core::RngEngine& rng) -> std::shared_ptr<models::Encoder> {
         models::SchNetConfig cfg;
         cfg.hidden_dim = 32;
         cfg.num_interactions = 3;
         cfg.num_rbf = 24;
         return std::make_shared<models::SchNet>(cfg, rng);
       }},
      {"PointCloudAttention",
       [](core::RngEngine& rng) -> std::shared_ptr<models::Encoder> {
         models::PointCloudAttentionConfig cfg;
         cfg.hidden_dim = 32;
         cfg.num_layers = 2;
         cfg.num_rbf = 16;
         return std::make_shared<models::PointCloudAttentionEncoder>(cfg,
                                                                     rng);
       }},
  };
}

}  // namespace

int main() {
  bench::print_header("Ablation — encoder architectures on both workloads");
  obs::BenchReporter reporter = bench::make_reporter("ablation_encoders");

  // --- (a) band-gap regression ----------------------------------------
  std::printf("\n[a] Materials Project band gap (radius graph, 8 epochs):\n");
  std::printf("%-22s %12s %12s %12s\n", "encoder", "params", "wall s",
              "val MAE");
  materials::MaterialsProjectDataset mp(256, 41);
  auto [mp_train, mp_val] = data::train_val_split(mp, 0.2, 7);
  const data::TargetStats stats =
      data::compute_target_stats(mp_train, "band_gap");
  for (const EncoderSpec& spec : encoder_specs()) {
    core::RngEngine rng(23);
    auto encoder = spec.make(rng);
    tasks::ScalarRegressionTask task(encoder, "band_gap",
                                     bench::bench_head_config(), rng, stats);
    data::DataLoaderOptions lo;
    lo.batch_size = 16;
    lo.seed = 3;
    lo.collate.radius.cutoff = 4.5;
    data::DataLoader train_loader(mp_train, lo);
    data::DataLoaderOptions vo = lo;
    vo.shuffle = false;
    data::DataLoader val_loader(mp_val, vo);
    optim::Adam opt = optim::make_adamw(task.parameters(), 3e-3, 1e-4);
    train::TrainerOptions topts;
    topts.max_epochs = 8;
    const auto t0 = std::chrono::steady_clock::now();
    const train::FitResult fit =
        train::Trainer(topts).fit(task, train_loader, &val_loader, opt);
    const double wall =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    std::printf("%-22s %12lld %12.2f %12.4f\n", spec.name,
                static_cast<long long>(task.num_parameters()), wall,
                fit.epochs.back().val.at("mae"));
    reporter.add(obs::JsonRecord()
                     .set("record", "bandgap_encoder")
                     .set("encoder", spec.name)
                     .set("params", task.num_parameters())
                     .set("wall_s", wall)
                     .set("val_mae", fit.epochs.back().val.at("mae")));
  }

  // --- (b) symmetry-group classification ------------------------------
  std::printf("\n[b] Point-group classification (complete point cloud, "
              "6 epochs):\n");
  std::printf("%-22s %12s %12s %12s %12s\n", "encoder", "params", "wall s",
              "val CE", "val acc");
  sym::SyntheticPointGroupDataset sym_ds(320, 41, bench::bench_sym_options());
  auto [sym_train, sym_val] = data::train_val_split(sym_ds, 0.2, 2);
  for (const EncoderSpec& spec : encoder_specs()) {
    core::RngEngine rng(55);
    auto encoder = spec.make(rng);
    tasks::ClassificationTask task(encoder, "point_group",
                                   sym::num_point_groups(),
                                   bench::bench_head_config(), rng);
    data::DataLoaderOptions lo;
    lo.batch_size = 32;
    lo.seed = 5;
    lo.collate.representation = data::Representation::kPointCloud;
    data::DataLoader train_loader(sym_train, lo);
    data::DataLoaderOptions vo = lo;
    vo.shuffle = false;
    data::DataLoader val_loader(sym_val, vo);
    optim::Adam opt = optim::make_adamw(task.parameters(), 3e-3);
    train::TrainerOptions topts;
    topts.max_epochs = 6;
    const auto t0 = std::chrono::steady_clock::now();
    const train::FitResult fit =
        train::Trainer(topts).fit(task, train_loader, &val_loader, opt);
    const double wall =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    std::printf("%-22s %12lld %12.2f %12.4f %12.4f\n", spec.name,
                static_cast<long long>(task.num_parameters()), wall,
                fit.epochs.back().val.at("ce"),
                fit.epochs.back().val.at("accuracy"));
    reporter.add(obs::JsonRecord()
                     .set("record", "symmetry_encoder")
                     .set("encoder", spec.name)
                     .set("params", task.num_parameters())
                     .set("wall_s", wall)
                     .set("val_ce", fit.epochs.back().val.at("ce"))
                     .set("val_acc", fit.epochs.back().val.at("accuracy")));
  }

  // --- (c) classical baseline on the symmetry task --------------------
  // The exact group-theoretic detector (principal-axis alignment + set
  // invariance test) on the same validation clouds: the non-learned
  // reference point. Its failure mode — frame alignment under jitter and
  // rotation — is the argument for learned invariant encoders.
  std::printf("\n[c] Classical point-group detector on the same validation "
              "set:\n");
  std::int64_t correct = 0;
  const std::int64_t n_val = sym_val.size();
  const auto t0 = std::chrono::steady_clock::now();
  for (std::int64_t i = 0; i < n_val; ++i) {
    const data::StructureSample s = sym_val.get(i);
    sym::DetectionOptions dopts;
    dopts.tolerance = 0.08;  // ~3 sigma of the generator jitter
    const sym::DetectionResult det = sym::detect_point_group(s.positions,
                                                             dopts);
    if (det.label == s.class_targets.at("point_group")) ++correct;
  }
  const double det_wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  std::printf("%-22s %12s %12.2f %12s %12.4f\n", "exact detector", "-",
              det_wall, "-",
              static_cast<double>(correct) / static_cast<double>(n_val));
  reporter.add(obs::JsonRecord()
                   .set("record", "symmetry_encoder")
                   .set("encoder", "exact detector")
                   .set("wall_s", det_wall)
                   .set("val_acc", static_cast<double>(correct) /
                                       static_cast<double>(n_val)));

  std::printf(
      "\nReading: the equivariant encoder's coordinate refinement and the\n"
      "attention encoder's dense mixing trade compute for accuracy in\n"
      "different places; all three plug into identical tasks/loaders —\n"
      "the modularity claim of the toolkit's Fig. 1. The classical\n"
      "detector shows where learning pays: it is exact on clean\n"
      "axis-aligned clouds but degrades under the dataset's jitter and\n"
      "random orientations, while learned invariant encoders are\n"
      "unaffected by the frame.\n");
  return 0;
}
