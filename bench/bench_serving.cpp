// Serving bench — latency vs micro-batch size. Drives the BatchScheduler
// with a closed-loop multi-client load at max_batch_size in {1, 8, 32}
// and emits one JSON line per configuration with throughput (structs/s)
// and p50/p95/p99 latency. Batch size 1 disables coalescing, so the gap
// to 8/32 is the micro-batching gain: one fused forward over G graphs
// amortizes per-op dispatch and allocation overhead that G separate
// forwards pay in full.
//
// The client count must be able to fill the largest micro-batch — a
// closed-loop generator never has more requests in flight than clients,
// so undersized fleets leave big batches waiting out the flush window.
//
// Usage: bench_serving [clients] [requests_per_client]
//   defaults: 32 clients x 40 requests per configuration.
//
// Records carry `closed_loop: true` so trajectory aggregation can
// separate this harness from the open-loop overload harness
// (bench_serve_openloop, `closed_loop: false`): closed-loop latency is
// only meaningful at offered loads the server can sustain.
//
// raw-threads-ok: the closed-loop clients block on scheduler futures;
// running them on the shared pool would starve the serve dispatch jobs
// they are waiting for.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <future>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "materials/materials_project.hpp"
#include "models/egnn.hpp"
#include "serve/serve.hpp"
#include "tasks/regression.hpp"

namespace {

using namespace matsci;

struct BenchResult {
  std::int64_t max_batch_size = 0;
  double throughput = 0.0;
  serve::LatencySummary latency;
  double mean_batch = 0.0;
};

std::shared_ptr<serve::InferenceSession> make_session() {
  models::EGNNConfig ecfg;
  ecfg.hidden_dim = 32;
  ecfg.pos_hidden = 16;
  ecfg.num_layers = 3;
  models::OutputHeadConfig hcfg;
  hcfg.hidden_dim = 32;
  hcfg.num_blocks = 2;
  hcfg.dropout = 0.0f;
  core::RngEngine rng(7);
  auto encoder = std::make_shared<models::EGNN>(ecfg, rng);
  auto task = std::make_shared<tasks::ScalarRegressionTask>(
      encoder, "band_gap", hcfg, rng, data::TargetStats{2.0f, 1.5f});
  serve::InferenceSessionOptions sopts;
  sopts.collate.radius.cutoff = 4.5;
  return std::make_shared<serve::InferenceSession>(task, sopts);
}

BenchResult run_config(const std::shared_ptr<serve::InferenceSession>& session,
                       const std::vector<data::StructureSample>& pool,
                       std::int64_t max_batch_size, int clients,
                       int per_client) {
  serve::SchedulerOptions opts;
  opts.max_batch_size = max_batch_size;
  opts.max_wait_us = max_batch_size == 1 ? 0 : 1000;
  // Fixed worker count across configurations so the only variable is
  // how aggressively requests coalesce.
  opts.num_workers = 2;
  serve::BatchScheduler scheduler(session, opts);

  const auto t0 = std::chrono::steady_clock::now();
  std::vector<std::thread> threads;
  for (int c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      for (int i = 0; i < per_client; ++i) {
        const std::size_t idx = static_cast<std::size_t>(
            (c * per_client + i) % pool.size());
        scheduler.submit(pool[idx], "band_gap").get();
      }
    });
  }
  for (auto& t : threads) t.join();
  const double wall_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  scheduler.shutdown();

  BenchResult r;
  r.max_batch_size = max_batch_size;
  r.throughput = static_cast<double>(clients) * per_client / wall_s;
  r.latency = scheduler.stats().latency_summary();
  r.mean_batch = scheduler.stats().mean_batch_size();
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  const int clients = argc > 1 ? std::atoi(argv[1]) : 32;
  const int per_client = argc > 2 ? std::atoi(argv[2]) : 40;
  if (clients < 1 || per_client < 1) {
    std::fprintf(stderr,
                 "usage: bench_serving [clients >= 1] [requests_per_client "
                 ">= 1]\n");
    return 2;
  }

  obs::BenchReporter reporter = bench::make_reporter("serving");

  auto session = make_session();
  materials::MaterialsProjectDataset dataset(64, 17);
  std::vector<data::StructureSample> pool;
  for (std::int64_t i = 0; i < dataset.size(); ++i) {
    pool.push_back(dataset.get(i));
  }
  // Warm-up pass so first-touch allocation noise stays out of config 1.
  session->predict({pool[0], pool[1]}, "band_gap");

  std::printf("serving bench: %d closed-loop clients x %d requests per "
              "configuration, 2 workers\n\n",
              clients, per_client);
  std::printf("%6s %14s %12s %10s %10s %10s\n", "batch", "structs/s",
              "mean_batch", "p50_ms", "p95_ms", "p99_ms");

  std::vector<BenchResult> results;
  for (const std::int64_t b : {1, 8, 32}) {
    results.push_back(run_config(session, pool, b, clients, per_client));
    const BenchResult& r = results.back();
    std::printf("%6lld %14.0f %12.2f %10.2f %10.2f %10.2f\n",
                static_cast<long long>(r.max_batch_size), r.throughput,
                r.mean_batch, r.latency.p50_us / 1000.0,
                r.latency.p95_us / 1000.0, r.latency.p99_us / 1000.0);
  }

  // One JSON line per configuration, echoed to stdout by the reporter
  // (log-scraping friendly) and persisted to BENCH_serving.json.
  std::printf("\n");
  for (const BenchResult& r : results) {
    reporter.add(obs::JsonRecord()
                     .set("closed_loop", true)
                     .set("max_batch_size", r.max_batch_size)
                     .set("clients", clients)
                     .set("requests", clients * per_client)
                     .set("throughput_structs_per_s", r.throughput)
                     .set("mean_batch_size", r.mean_batch)
                     .set("p50_us", r.latency.p50_us)
                     .set("p95_us", r.latency.p95_us)
                     .set("p99_us", r.latency.p99_us));
  }

  std::printf("\nmicro-batching throughput gain over batch size 1: ");
  for (std::size_t i = 1; i < results.size(); ++i) {
    std::printf("%sbatch %lld: %.2fx", i > 1 ? ", " : "",
                static_cast<long long>(results[i].max_batch_size),
                results[i].throughput / results.front().throughput);
  }
  std::printf("\n");
  reporter.finish();
  return 0;
}
