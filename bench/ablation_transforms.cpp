// Ablation — the transform chain as an inductive-bias knob (Fig. 1).
//
// The paper's pipeline inserts a chain of transformations between
// dataset and task "to freely convert between representations, and/or
// modified to introduce inductive biases". This ablation measures what
// the stock transforms actually buy on the two workloads:
//   (a) coordinate-jitter augmentation on band-gap regression — a
//       denoising bias that should regularize small-data training;
//   (b) random-rotation augmentation on symmetry classification — a
//       no-op *in expectation* for an E(3)-invariant encoder, which the
//       numbers should confirm (invariance makes augmentation free);
//   (c) supercell expansion at train time — same chemistry, larger
//       graphs: tests size-extensivity of the sum readout.
#include <cmath>
#include <cstdio>
#include <memory>

#include "bench_common.hpp"
#include "materials/materials_project.hpp"
#include "tasks/regression.hpp"

namespace {

using namespace matsci;

double bandgap_val_mae(std::shared_ptr<const data::TransformChain> transforms,
                       const char* label) {
  materials::MaterialsProjectDataset ds(192, 41);
  auto [train_ds, val_ds] = data::train_val_split(ds, 0.25, 7);
  const data::TargetStats stats =
      data::compute_target_stats(train_ds, "band_gap");

  data::DataLoaderOptions lo;
  lo.batch_size = 16;
  lo.seed = 3;
  lo.collate.radius.cutoff = 4.5;
  lo.transforms = std::move(transforms);  // train-time only
  data::DataLoader train_loader(train_ds, lo);
  data::DataLoaderOptions vo = lo;
  vo.transforms = nullptr;  // validation always on clean data
  vo.shuffle = false;
  data::DataLoader val_loader(val_ds, vo);

  core::RngEngine rng(23);
  auto encoder =
      std::make_shared<models::EGNN>(bench::bench_encoder_config(), rng);
  tasks::ScalarRegressionTask task(encoder, "band_gap",
                                   bench::bench_head_config(), rng, stats);
  optim::Adam opt = optim::make_adamw(task.parameters(), 3e-3, 1e-4);
  train::TrainerOptions topts;
  topts.max_epochs = 10;
  const train::FitResult fit =
      train::Trainer(topts).fit(task, train_loader, &val_loader, opt);
  const double mae = fit.epochs.back().val.at("mae");
  std::printf("%-34s %12.4f\n", label, mae);
  return mae;
}

double symmetry_val_acc(std::shared_ptr<const data::TransformChain> transforms,
                        const char* label) {
  sym::SyntheticPointGroupDataset ds(320, 41, bench::bench_sym_options());
  auto [train_ds, val_ds] = data::train_val_split(ds, 0.2, 2);
  data::DataLoaderOptions lo;
  lo.batch_size = 32;
  lo.seed = 5;
  lo.collate.representation = data::Representation::kPointCloud;
  lo.transforms = std::move(transforms);
  data::DataLoader train_loader(train_ds, lo);
  data::DataLoaderOptions vo = lo;
  vo.transforms = nullptr;
  vo.shuffle = false;
  data::DataLoader val_loader(val_ds, vo);

  core::RngEngine rng(55);
  auto encoder =
      std::make_shared<models::EGNN>(bench::bench_encoder_config(), rng);
  tasks::ClassificationTask task(encoder, "point_group",
                                 sym::num_point_groups(),
                                 bench::bench_head_config(), rng);
  optim::Adam opt = optim::make_adamw(task.parameters(), 3e-3);
  train::TrainerOptions topts;
  topts.max_epochs = 6;
  const train::FitResult fit =
      train::Trainer(topts).fit(task, train_loader, &val_loader, opt);
  const double acc = fit.epochs.back().val.at("accuracy");
  std::printf("%-34s %12.4f\n", label, acc);
  return acc;
}

std::shared_ptr<const data::TransformChain> chain_of(
    std::vector<std::shared_ptr<const data::Transform>> ts) {
  return std::make_shared<const data::TransformChain>(std::move(ts));
}

}  // namespace

int main() {
  using namespace matsci;
  bench::print_header(
      "Ablation — transform-chain inductive biases (paper Fig. 1)");
  obs::BenchReporter reporter = bench::make_reporter("ablation_transforms");
  const auto record_mae = [&reporter](const char* label, double mae) {
    reporter.add(obs::JsonRecord()
                     .set("record", "bandgap_transform")
                     .set("transforms", label)
                     .set("val_mae", mae));
    return mae;
  };
  const auto record_acc = [&reporter](const char* label, double acc) {
    reporter.add(obs::JsonRecord()
                     .set("record", "symmetry_transform")
                     .set("transforms", label)
                     .set("val_acc", acc));
    return acc;
  };

  std::printf("\n[a] Band-gap regression (val MAE, lower is better):\n");
  std::printf("%-34s %12s\n", "train-time transforms", "val MAE");
  const double plain = record_mae("none", bandgap_val_mae(nullptr, "none"));
  const double jitter = record_mae(
      "jitter sigma=0.03",
      bandgap_val_mae(
          chain_of({std::make_shared<data::CoordinateJitter>(0.03)}),
          "jitter sigma=0.03"));
  record_mae("jitter sigma=0.15 (too strong)",
             bandgap_val_mae(
                 chain_of({std::make_shared<data::CoordinateJitter>(0.15)}),
                 "jitter sigma=0.15 (too strong)"));
  record_mae(
      "2x1x1 supercell",
      bandgap_val_mae(
          chain_of({std::make_shared<data::SupercellTransform>(2, 1, 1)}),
          "2x1x1 supercell"));

  std::printf("\n[b] Symmetry classification (val accuracy, higher is "
              "better):\n");
  std::printf("%-34s %12s\n", "train-time transforms", "val acc");
  const double sym_plain =
      record_acc("none", symmetry_val_acc(nullptr, "none"));
  const double sym_rot = record_acc(
      "random rotation",
      symmetry_val_acc(chain_of({std::make_shared<data::RandomRotation>()}),
                       "random rotation"));
  record_acc(
      "center + jitter sigma=0.02",
      symmetry_val_acc(
          chain_of({std::make_shared<data::CenterPositions>(),
                    std::make_shared<data::CoordinateJitter>(0.02)}),
          "center + jitter sigma=0.02"));

  std::printf(
      "\nReading: mild jitter acts as a regularizer on small-data\n"
      "regression (none %.3f vs jitter %.3f MAE) while strong jitter\n"
      "destroys the geometric signal; random rotation changes symmetry\n"
      "accuracy by only %.3f — the E(3)-invariant encoder already sees\n"
      "all orientations as one, so the augmentation is free, exactly the\n"
      "argument for invariant architectures over augmentation.\n",
      plain, jitter, std::abs(sym_rot - sym_plain));
  return 0;
}
