// Ablation — graph vs point-cloud representation (§2.1).
//
// The paper motivates point clouds as a way to bypass imposed graph
// structure: radius graphs need construction work and sparse kernels but
// keep edge counts linear-ish in atoms; complete point clouds avoid
// construction and use dense compute but scale O(n²) in edges. This
// ablation quantifies the trade-off on identical structures: edge
// counts, per-step wall time, and attained validation MAE.
#include <chrono>
#include <cstdio>

#include "bench_common.hpp"
#include "materials/lips.hpp"
#include "materials/materials_project.hpp"
#include "tasks/regression.hpp"

namespace {

using namespace matsci;

struct ReprResult {
  double mean_edges = 0.0;
  double seconds_per_step = 0.0;
  double final_mae = 0.0;
};

ReprResult run(data::Representation repr, double cutoff) {
  materials::MaterialsProjectDataset ds(192, 41);
  auto [train_ds, val_ds] = data::train_val_split(ds, 0.2, 7);
  const data::TargetStats stats =
      data::compute_target_stats(train_ds, "band_gap");

  data::DataLoaderOptions lo;
  lo.batch_size = 16;
  lo.seed = 3;
  lo.collate.representation = repr;
  lo.collate.radius.cutoff = cutoff;
  data::DataLoader train_loader(train_ds, lo);
  data::DataLoaderOptions vo = lo;
  vo.shuffle = false;
  data::DataLoader val_loader(val_ds, vo);

  ReprResult result;
  std::int64_t batches = 0;
  for (std::int64_t b = 0; b < train_loader.num_batches(); ++b) {
    const data::Batch batch = train_loader.batch(b);
    result.mean_edges += static_cast<double>(batch.topology.num_edges()) /
                         static_cast<double>(batch.num_graphs());
    ++batches;
  }
  result.mean_edges /= static_cast<double>(batches);

  core::RngEngine rng(23);
  auto encoder = std::make_shared<models::EGNN>(
      bench::bench_encoder_config(), rng);
  tasks::ScalarRegressionTask task(encoder, "band_gap",
                                   bench::bench_head_config(), rng, stats);
  optim::Adam opt = optim::make_adamw(task.parameters(), 3e-3, 1e-4);

  train::TrainerOptions topts;
  topts.max_epochs = 6;
  const auto t0 = std::chrono::steady_clock::now();
  const train::FitResult fit =
      train::Trainer(topts).fit(task, train_loader, &val_loader, opt);
  const double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  result.seconds_per_step = wall / static_cast<double>(fit.total_steps);
  result.final_mae = fit.epochs.back().val.at("mae");
  return result;
}

}  // namespace

int main() {
  using namespace matsci;
  bench::print_header(
      "Ablation — radius-graph vs point-cloud representation trade-off\n"
      "(Materials Project band-gap regression, identical structures)");
  obs::BenchReporter reporter = bench::make_reporter("ablation_repr");

  struct Row {
    const char* name;
    data::Representation repr;
    double cutoff;
  };
  const std::vector<Row> rows = {
      {"radius graph r=3.5", data::Representation::kRadiusGraph, 3.5},
      {"radius graph r=5.0", data::Representation::kRadiusGraph, 5.0},
      {"point cloud (complete)", data::Representation::kPointCloud, 0.0},
  };

  std::printf("\n%-26s %14s %16s %12s\n", "representation", "edges/graph",
              "sec/step", "val MAE");
  for (const Row& row : rows) {
    const ReprResult r = run(row.repr, row.cutoff > 0 ? row.cutoff : 5.0);
    std::printf("%-26s %14.1f %16.5f %12.4f\n", row.name, r.mean_edges,
                r.seconds_per_step, r.final_mae);
    reporter.add(obs::JsonRecord()
                     .set("record", "representation")
                     .set("representation", row.name)
                     .set("edges_per_graph", r.mean_edges)
                     .set("s_per_step", r.seconds_per_step)
                     .set("val_mae", r.final_mae));
  }

  // Structure-size scaling: radius graphs grow ~linearly in atoms at
  // fixed density; complete point clouds grow quadratically. Measured on
  // LiPS supercells (12 -> 96 atoms) with an EGNN forward pass.
  std::printf("\nStructure-size scaling (LiPS supercells, EGNN forward):\n");
  std::printf("%8s %16s %16s %14s %14s\n", "atoms", "radius edges",
              "complete edges", "radius s", "complete s");
  core::RngEngine rng(31);
  models::EGNN encoder(bench::bench_encoder_config(), rng);
  for (const std::int64_t mult : {1, 2, 4, 8}) {
    materials::Structure cell =
        materials::LiPSDataset::initial_structure().supercell(mult, 1, 1);
    data::StructureSample sample = cell.to_sample();
    sample.scalar_targets["y"] = 0.0f;

    double secs[2] = {0.0, 0.0};
    std::int64_t edges[2] = {0, 0};
    const data::Representation reprs[2] = {
        data::Representation::kRadiusGraph,
        data::Representation::kPointCloud};
    for (int r = 0; r < 2; ++r) {
      data::CollateOptions copts;
      copts.representation = reprs[r];
      copts.radius.cutoff = 4.0;
      const data::Batch batch = data::collate({sample}, copts);
      edges[r] = batch.topology.num_edges();
      core::NoGradGuard no_grad;
      encoder.encode(batch);  // warmup
      const auto t0 = std::chrono::steady_clock::now();
      for (int it = 0; it < 3; ++it) encoder.encode(batch);
      secs[r] = std::chrono::duration<double>(
                    std::chrono::steady_clock::now() - t0)
                    .count() /
                3.0;
    }
    std::printf("%8lld %16lld %16lld %14.5f %14.5f\n",
                static_cast<long long>(cell.num_atoms()),
                static_cast<long long>(edges[0]),
                static_cast<long long>(edges[1]), secs[0], secs[1]);
    reporter.add(obs::JsonRecord()
                     .set("record", "size_scaling")
                     .set("atoms", cell.num_atoms())
                     .set("radius_edges", edges[0])
                     .set("complete_edges", edges[1])
                     .set("radius_s", secs[0])
                     .set("complete_s", secs[1]));
  }

  std::printf(
      "\nReading: the complete point cloud avoids imposing structure\n"
      "(§2.1) at O(n²) edge cost, which the size-scaling table makes\n"
      "explicit; radius graphs stay near-linear at fixed density. On\n"
      "small molecules the two nearly coincide — the regime where the\n"
      "paper argues dense point-cloud attention is competitive.\n");
  return 0;
}
