// Figure 3 — early training dynamics vs number of DDP workers.
//
// The paper fixes the optimizer-step budget and sweeps the worker count
// N (effective batch B_eff = N·B, learning rate scaled by N per Goyal et
// al.). Two regimes: η_base = 1e-3 stagnates at every scale; η_base =
// 1e-5 converges, but with validation-loss spikes that grow with N and,
// at N = 512, a spike the run never recovers from (attributed to Adam's
// large-batch instability, Molybog et al.).
//
// Emulation: synchronous DDP over N ranks is mathematically gradient
// averaging over N shard batches, so we reproduce B_eff = N·B with
// sequential gradient accumulation (Trainer::accumulate_batches = N) —
// identical update trajectories without N threads (DESIGN.md §2).
#include <cstdio>
#include <string>

#include "bench_common.hpp"
#include "optim/lr_scheduler.hpp"

namespace {

using namespace matsci;

constexpr std::int64_t kBasePerRankBatch = 2;  // paper uses 32; scaled down
constexpr std::int64_t kOptimizerSteps = 20;

void run_regime(obs::BenchReporter& reporter, const char* label,
                double base_lr,
                const std::vector<std::int64_t>& worker_counts) {
  std::printf("\n--- Regime: %s (eta_base = %.0e, lr = eta_base * N) ---\n",
              label, base_lr);
  std::printf("%6s", "step");
  for (const std::int64_t n : worker_counts) {
    std::printf("      N=%-5lld", static_cast<long long>(n));
  }
  std::printf("\n");

  std::vector<std::vector<double>> curves;
  for (const std::int64_t n : worker_counts) {
    const std::int64_t dataset_size =
        kOptimizerSteps * n * kBasePerRankBatch;
    sym::SyntheticPointGroupDataset train_ds(dataset_size, 31,
                                             bench::bench_sym_options());
    sym::SyntheticPointGroupDataset val_ds(96, 77, bench::bench_sym_options());

    data::DataLoaderOptions lo;
    lo.batch_size = kBasePerRankBatch;
    lo.seed = 5;
    lo.collate.representation = data::Representation::kPointCloud;
    data::DataLoader train_loader(train_ds, lo);
    data::DataLoaderOptions vo = lo;
    vo.batch_size = 48;
    vo.shuffle = false;
    data::DataLoader val_loader(val_ds, vo);

    core::RngEngine rng(13);
    auto encoder = std::make_shared<models::EGNN>(
        bench::bench_encoder_config(24, 2), rng);
    tasks::ClassificationTask task(encoder, "point_group",
                                   sym::num_point_groups(),
                                   bench::bench_head_config(24, 1), rng);
    optim::AdamOptions ao;
    ao.lr = optim::scale_lr_for_world_size(base_lr, n);
    ao.decoupled_weight_decay = true;
    optim::Adam opt(task.parameters(), ao);

    train::TrainerOptions topts;
    topts.max_epochs = 1;
    topts.accumulate_batches = n;  // emulated world size
    topts.validate_every_steps = 1;
    topts.step_val_max_batches = 2;
    const train::FitResult result =
        train::Trainer(topts).fit(task, train_loader, &val_loader, opt);

    std::vector<double> curve;
    for (const auto& [step, metrics] : result.step_validation) {
      curve.push_back(metrics.at("ce"));
    }
    curves.push_back(std::move(curve));
  }

  std::size_t max_len = 0;
  for (const auto& c : curves) max_len = std::max(max_len, c.size());
  for (std::size_t s = 0; s < max_len; ++s) {
    std::printf("%6zu", s + 1);
    for (const auto& c : curves) {
      if (s < c.size()) {
        std::printf(" %12.4f", c[s]);
      } else {
        std::printf(" %12s", "-");
      }
    }
    std::printf("\n");
  }

  // Spike statistics: count upward excursions > 3% between consecutive
  // validation checks (the paper's full-blown non-recovering spikes only
  // appear after hundreds of steps at production scale; within this
  // bench's budget, the precursors are smaller upward excursions whose
  // frequency grows with N), and the final error.
  std::printf("%6s", "spike#");
  for (const auto& c : curves) {
    int spikes = 0;
    for (std::size_t s = 1; s < c.size(); ++s) {
      if (c[s] > 1.03 * c[s - 1]) ++spikes;
    }
    std::printf(" %12d", spikes);
  }
  std::printf("\n%6s", "final");
  for (const auto& c : curves) std::printf(" %12.4f", c.back());
  std::printf("\n");

  for (std::size_t i = 0; i < curves.size(); ++i) {
    const std::vector<double>& c = curves[i];
    int spikes = 0;
    for (std::size_t s = 1; s < c.size(); ++s) {
      if (c[s] > 1.03 * c[s - 1]) ++spikes;
    }
    reporter.add(obs::JsonRecord()
                     .set("record", "dynamics")
                     .set("regime", label)
                     .set("base_lr", base_lr)
                     .set("workers", worker_counts[i])
                     .set("spikes", spikes)
                     .set("final_ce", c.back()));
  }
}

// Health-on mode: the same training loop with the PR's HealthMonitor
// active (log-and-continue). Reports the per-step overhead of the
// monitor — per-layer grad norms, rolling-window detection, flight
// recorder — which must stay < 5% of a (deliberately small-model,
// monitor-unfriendly) step. Min-of-repeats on both sides to shed
// scheduler noise.
void run_health_overhead(obs::BenchReporter& reporter) {
  constexpr int kRepeats = 3;
  constexpr std::int64_t kSteps = 200;

  std::printf("\n--- Health monitor overhead (N = 1, %lld steps) ---\n",
              static_cast<long long>(kSteps));

  const auto run_once = [](bool health_on, std::int64_t* anomalies) {
    sym::SyntheticPointGroupDataset train_ds(kSteps * kBasePerRankBatch, 31,
                                             bench::bench_sym_options());
    data::DataLoaderOptions lo;
    lo.batch_size = kBasePerRankBatch;
    lo.seed = 5;
    lo.collate.representation = data::Representation::kPointCloud;
    data::DataLoader train_loader(train_ds, lo);

    core::RngEngine rng(13);
    auto encoder = std::make_shared<models::EGNN>(
        bench::bench_encoder_config(24, 2), rng);
    tasks::ClassificationTask task(encoder, "point_group",
                                   sym::num_point_groups(),
                                   bench::bench_head_config(24, 1), rng);
    optim::AdamOptions ao;
    ao.lr = 1e-4;
    ao.decoupled_weight_decay = true;
    optim::Adam opt(task.parameters(), ao);

    train::TrainerOptions topts;
    topts.max_epochs = 1;
    topts.health.enabled = health_on;
    topts.health.record_metrics = false;  // isolate the monitor itself
    const obs::StopWatch watch;
    const train::FitResult result =
        train::Trainer(topts).fit(task, train_loader, nullptr, opt);
    if (anomalies != nullptr) {
      *anomalies = static_cast<std::int64_t>(result.anomalies.size());
    }
    return watch.elapsed_us();
  };

  double off_us = 1e300;
  double on_us = 1e300;
  std::int64_t anomalies = 0;
  for (int r = 0; r < kRepeats; ++r) {
    off_us = std::min(off_us, run_once(false, nullptr));
    on_us = std::min(on_us, run_once(true, &anomalies));
  }

  const double overhead_pct = 100.0 * (on_us - off_us) / off_us;
  std::printf("health off: %8.1f us/step\n", off_us / kSteps);
  std::printf("health on:  %8.1f us/step   anomalies flagged: %lld\n",
              on_us / kSteps, static_cast<long long>(anomalies));
  std::printf("overhead:   %+7.2f %%  (acceptance: < 5%%)\n", overhead_pct);

  reporter.add(obs::JsonRecord()
                   .set("record", "health_overhead")
                   .set("steps", kSteps)
                   .set("off_us_per_step", off_us / kSteps)
                   .set("on_us_per_step", on_us / kSteps)
                   .set("overhead_pct", overhead_pct)
                   .set("anomalies", anomalies));
}

}  // namespace

int main() {
  bench::print_header(
      "Figure 3 — validation error vs optimizer step for worker counts N\n"
      "(B_eff = N*B emulated via gradient accumulation; cross-entropy of\n"
      "the symmetry pretraining task, fixed step budget)");

  obs::BenchReporter reporter = bench::make_reporter("fig3_dynamics");
  run_regime(reporter, "high base lr (stagnation expected)", 1e-3,
             {8, 32, 128, 256});
  // The low-rate regime needs the largest emulated worlds to reach the
  // instability window (paper: the N = 512 run spikes and never
  // recovers; scaled lr there is 512e-5 ≈ 5e-3).
  run_regime(reporter, "low base lr (convergence + spikes at large N)", 1e-5,
             {8, 32, 128, 512});
  run_health_overhead(reporter);

  std::printf(
      "\nShape check vs paper: at the high base rate, every scale\n"
      "stagnates or outright diverges (instability severity grows with\n"
      "N). At the low rate, all scales converge, larger N converging\n"
      "faster per step (Goyal scaling working as intended), with upward\n"
      "excursions concentrated at the largest N. The paper's\n"
      "non-recovering N=512 spike at step ~550 sits beyond this bench's\n"
      "step budget; see ablation_adam for the per-step instability\n"
      "probes of the underlying mechanism.\n");
  return 0;
}
