// MD at scale — ML-potential dynamics through the serving stack.
//
// The paper positions the toolkit's pipelines as the substrate for
// foundation-model workflows on materials; the canonical downstream
// consumer is molecular dynamics driven by a learned potential, where
// inference throughput — not training — is the bottleneck. This bench
// measures the two contracts of src/sim (DESIGN.md §13):
//
//   md_scale         N concurrent LiPS trajectories advanced in
//                    lockstep waves (TrajectoryScheduler +
//                    ServedForceBackend) vs one-at-a-time submission of
//                    the same trajectories through the same deployed
//                    ensemble. Waves let the serve tier coalesce the
//                    per-step force evaluations into micro-batches, so
//                    the pool parallelizes across the whole wave
//                    instead of idling behind single 12-atom graphs.
//                    Acceptance: >= 3x frames/s over one-at-a-time.
//
//   active_learning  The uncertainty-gated loop: committee-disagreement
//                    frames are labeled by the LJ oracle, every member
//                    is fine-tuned on the buffered labels, and the new
//                    versions are hot-swapped into the registry from
//                    inside a wave's in-flight window. Acceptance: the
//                    ensemble's force MAE on the gated frames drops
//                    after the cycle, with zero in-flight request loss.
#include <cmath>
#include <cstdio>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "bench_common.hpp"
#include "obs/obs.hpp"
#include "core/parallel/thread_pool.hpp"
#include "materials/lips.hpp"
#include "materials/property_oracle.hpp"
#include "nn/serialize.hpp"
#include "serve/frontend/frontend.hpp"
#include "sim/sim.hpp"
#include "tasks/energy_force.hpp"

namespace {

using namespace matsci;
using serve::frontend::ServeFrontend;

constexpr double kCollateCutoff = 4.5;
constexpr std::int64_t kNumTraj = 16;
constexpr std::int64_t kSteps = 10;

std::shared_ptr<tasks::EnergyForceTask> make_potential_task(
    std::uint64_t seed) {
  core::RngEngine rng(seed);
  auto encoder =
      std::make_shared<models::EGNN>(bench::bench_encoder_config(16, 2), rng);
  return std::make_shared<tasks::EnergyForceTask>(
      encoder, "energy", bench::bench_head_config(16, 2), rng,
      data::TargetStats{0.0f, 1.0f});
}

std::shared_ptr<serve::InferenceSession> make_session(
    const std::shared_ptr<tasks::Task>& task) {
  serve::InferenceSessionOptions opts;
  opts.collate.radius.cutoff = kCollateCutoff;
  return std::make_shared<serve::InferenceSession>(task, opts);
}

serve::SchedulerOptions wave_scheduler_options() {
  serve::SchedulerOptions opts;
  // Batch size matches the trajectory-wave width: a full wave flushes
  // the micro-batch immediately, while one-at-a-time submission leaves
  // every request waiting out the coalescing window (pop_batch flushes
  // early only when the batch is full) — the batching economics the
  // md_scale record quantifies.
  opts.max_batch_size = kNumTraj;
  opts.max_wait_us = 1500;
  opts.num_workers = 1;
  return opts;
}

materials::MDOptions bench_md_options(std::int64_t steps) {
  materials::MDOptions opts;
  opts.timestep = 0.25;
  opts.temperature = 50.0;
  opts.steps = steps;
  opts.snapshot_every = steps;
  opts.thermostat_every = 0;
  return opts;
}

std::vector<std::shared_ptr<materials::MDSimulator>> make_trajectories(
    std::int64_t n, std::int64_t steps, std::uint64_t seed0) {
  std::vector<std::shared_ptr<materials::MDSimulator>> trajs;
  for (std::int64_t t = 0; t < n; ++t) {
    trajs.push_back(std::make_shared<materials::MDSimulator>(
        materials::LiPSDataset::initial_structure(), bench_md_options(steps),
        seed0 + static_cast<std::uint64_t>(t)));
  }
  return trajs;
}

struct ScaleResult {
  double frames_per_s = 0.0;
  double mean_batch_occupancy = 0.0;
  std::int64_t frames = 0;
  /// 1 when the last MD wave's trace id appears both in the "sim/wave"
  /// span and in at least one "serve/stage/forward" span — the
  /// sim-tier half of the telemetry plane's end-to-end continuity
  /// acceptance (vacuously 1 with obs off).
  std::int64_t trace_continuity_ok = 1;
};

/// Run the full trajectory set once at the given wave size (1 =
/// one-at-a-time baseline, 0 = whole live set per wave).
ScaleResult run_at_wave_size(ServeFrontend& fe,
                             const std::vector<std::string>& members,
                             std::int64_t wave_size) {
  sim::ServedPotentialOptions popts;
  popts.members = members;
  auto backend = std::make_shared<sim::ServedForceBackend>(fe, popts);
  auto trajs = make_trajectories(kNumTraj, kSteps, 500);
  sim::TrajectorySchedulerOptions sopts;
  sopts.wave_size = wave_size;
  sim::TrajectoryScheduler scheduler(trajs, backend, sopts);

  ScaleResult out;
  double occupancy_sum = 0.0;
  std::int64_t occupancy_n = 0;
  scheduler.set_frame_hook([&](std::int64_t, std::int64_t,
                               const materials::Structure&,
                               const sim::ForceEval& ev) {
    occupancy_sum += ev.mean_batch_size;
    ++occupancy_n;
  });
  const obs::StopWatch watch;
  out.frames = scheduler.run();
  const double elapsed_s = watch.elapsed_us() / 1e6;
  out.frames_per_s = static_cast<double>(out.frames) / elapsed_s;
  out.mean_batch_occupancy =
      occupancy_n == 0 ? 0.0 : occupancy_sum / static_cast<double>(occupancy_n);

  // Sim-tier trace continuity: every wave mints one TraceContext whose
  // member force requests are its children, so the last wave's trace id
  // (fresh enough to survive ring wrap) must show up both in the wave
  // span and in the serve tier's forward-stage spans.
  const std::uint64_t wave_trace = backend->last_wave_trace_id();
  if (obs::http::TelemetryServer::compiled_in() && wave_trace != 0) {
    bool wave_span = false, forward_span = false;
    for (const obs::TraceEvent& e : obs::Tracer::global().collect()) {
      if (e.trace_id != wave_trace || e.name == nullptr) continue;
      const std::string_view name(e.name);
      wave_span = wave_span || name == "sim/wave";
      forward_span = forward_span || name == "serve/stage/forward";
    }
    out.trace_continuity_ok = wave_span && forward_span ? 1 : 0;
  }
  return out;
}

void run_md_scale(obs::BenchReporter& reporter) {
  std::printf("\n--- md_scale: %lld trajectories x %lld steps, "
              "2-member committee ---\n",
              static_cast<long long>(kNumTraj),
              static_cast<long long>(kSteps));

  ServeFrontend fe;
  std::vector<std::string> members;
  for (std::uint64_t m = 0; m < 2; ++m) {
    const std::string name = "pot/" + std::to_string(m);
    fe.deploy(name, 1, make_session(make_potential_task(31 + m)),
              wave_scheduler_options());
    members.push_back(name);
  }

  // Min-of-repeats on both modes to shed scheduler noise; one warmup
  // pass populates pools and code paths.
  (void)run_at_wave_size(fe, members, 0);
  ScaleResult seq;
  ScaleResult wave;
  seq.frames_per_s = 0.0;
  for (int r = 0; r < 2; ++r) {
    const ScaleResult s = run_at_wave_size(fe, members, 1);
    if (s.frames_per_s > seq.frames_per_s) seq = s;
    const ScaleResult w = run_at_wave_size(fe, members, 0);
    if (w.frames_per_s > wave.frames_per_s) wave = w;
  }

  const double speedup = wave.frames_per_s / seq.frames_per_s;
  std::printf("%-14s %12s %12s\n", "mode", "frames/s", "occupancy");
  std::printf("%-14s %12.1f %12.2f\n", "one-at-a-time", seq.frames_per_s,
              seq.mean_batch_occupancy);
  std::printf("%-14s %12.1f %12.2f\n", "wave", wave.frames_per_s,
              wave.mean_batch_occupancy);
  std::printf("speedup: %.2fx  (acceptance: >= 3x)\n", speedup);
  if (obs::http::TelemetryServer::compiled_in()) {
    std::printf("wave trace continuity (sim/wave -> serve/stage/forward): "
                "%s\n",
                wave.trace_continuity_ok != 0 ? "ok" : "BROKEN");
  }

  reporter.add(obs::JsonRecord()
                   .set("record", "md_scale")
                   .set("mode", "sequential")
                   .set("trajectories", kNumTraj)
                   .set("steps", kSteps)
                   .set("frames_per_s", seq.frames_per_s)
                   .set("mean_batch_occupancy", seq.mean_batch_occupancy)
                   .set("speedup_vs_sequential", 1.0));
  reporter.add(obs::JsonRecord()
                   .set("record", "md_scale")
                   .set("mode", "wave")
                   .set("trajectories", kNumTraj)
                   .set("steps", kSteps)
                   .set("frames_per_s", wave.frames_per_s)
                   .set("mean_batch_occupancy", wave.mean_batch_occupancy)
                   .set("speedup_vs_sequential", speedup)
                   .set("wave_trace_continuity_ok",
                        wave.trace_continuity_ok));
}

void run_active_learning(obs::BenchReporter& reporter) {
  constexpr std::int64_t kAlTraj = 4;
  constexpr std::int64_t kAlSteps = 10;
  std::printf("\n--- active_learning: %lld trajectories x %lld steps, "
              "gate -> label -> fine-tune -> hot-swap ---\n",
              static_cast<long long>(kAlTraj),
              static_cast<long long>(kAlSteps));

  ServeFrontend fe;
  std::vector<sim::EnsembleMemberSpec> members;
  for (std::uint64_t m = 0; m < 2; ++m) {
    sim::EnsembleMemberSpec spec;
    spec.name = "pot/" + std::to_string(m);
    const std::uint64_t seed = 41 + m;
    spec.task = make_potential_task(seed);
    spec.make_serving_task = [seed]() { return make_potential_task(seed); };
    auto serving = make_potential_task(seed);
    nn::load_into_module(*serving, nn::state_dict(*spec.task));
    fe.deploy(spec.name, 1, make_session(serving), wave_scheduler_options());
    members.push_back(std::move(spec));
  }

  materials::PropertyOracle oracle(5);
  sim::ActiveLearningOptions alo;
  alo.gate.force_std_threshold = 0.01;
  alo.min_labels = 12;
  alo.max_finetunes = 1;
  alo.finetune_epochs = 12;
  alo.batch_size = 4;
  alo.learning_rate = 3e-3;
  alo.collate.radius.cutoff = kCollateCutoff;
  alo.scheduler = wave_scheduler_options();
  sim::ActiveLearningLoop loop(fe, members, oracle, alo);

  sim::ServedPotentialOptions popts;
  popts.members = {"pot/0", "pot/1"};
  auto backend = std::make_shared<sim::ServedForceBackend>(fe, popts);
  auto trajs = make_trajectories(kAlTraj, kAlSteps, 700);
  sim::TrajectorySchedulerOptions sopts;
  sopts.wave_size = 2;
  sim::TrajectoryScheduler scheduler(trajs, backend, sopts);

  // Gated frames observed before the fine-tune, with their oracle truth:
  // the pre/post force-MAE comparison runs over exactly this set.
  struct GatedFrame {
    materials::Structure structure;
    std::vector<core::Vec3> truth_forces;
  };
  std::vector<GatedFrame> gated;
  double mae_pre_sum = 0.0;
  std::int64_t mae_pre_n = 0;
  scheduler.set_frame_hook([&](std::int64_t traj, std::int64_t step,
                               const materials::Structure& s,
                               const sim::ForceEval& ev) {
    const bool pre_finetune = loop.finetunes() == 0;
    const std::int64_t labels_before = loop.labels();
    loop.observe_frame(traj, step, s, ev);
    if (pre_finetune && loop.labels() > labels_before) {
      GatedFrame frame;
      frame.structure = s;
      oracle.energy_and_forces(s, frame.truth_forces, alo.label_cutoff);
      for (std::size_t i = 0; i < frame.truth_forces.size(); ++i) {
        mae_pre_sum += std::fabs(ev.forces[i].x - frame.truth_forces[i].x) +
                       std::fabs(ev.forces[i].y - frame.truth_forces[i].y) +
                       std::fabs(ev.forces[i].z - frame.truth_forces[i].z);
        mae_pre_n += 3;
      }
      gated.push_back(std::move(frame));
    }
  });
  scheduler.set_mid_wave_hook(loop.mid_wave_hook());

  const std::int64_t frames = scheduler.run();
  const bool zero_loss = frames == kAlTraj * kAlSteps;
  const double mae_pre =
      mae_pre_n == 0 ? 0.0 : mae_pre_sum / static_cast<double>(mae_pre_n);

  // Post-swap ensemble (now serving the fine-tuned versions) on the
  // same gated frames.
  sim::MLPotential pot(fe, popts);
  double mae_post_sum = 0.0;
  std::int64_t mae_post_n = 0;
  for (const GatedFrame& frame : gated) {
    std::vector<core::Vec3> pred;
    pot.energy_and_forces(frame.structure, pred);
    for (std::size_t i = 0; i < pred.size(); ++i) {
      mae_post_sum += std::fabs(pred[i].x - frame.truth_forces[i].x) +
                      std::fabs(pred[i].y - frame.truth_forces[i].y) +
                      std::fabs(pred[i].z - frame.truth_forces[i].z);
      mae_post_n += 3;
    }
  }
  const double mae_post =
      mae_post_n == 0 ? 0.0 : mae_post_sum / static_cast<double>(mae_post_n);

  std::printf("frames advanced:      %lld / %lld  (zero loss: %s)\n",
              static_cast<long long>(frames),
              static_cast<long long>(kAlTraj * kAlSteps),
              zero_loss ? "yes" : "NO");
  std::printf("gated frame fraction: %.3f  (%lld labels, %lld fine-tunes)\n",
              loop.gate().gate_rate(), static_cast<long long>(loop.labels()),
              static_cast<long long>(loop.finetunes()));
  std::printf("registry versions:    pot/0 v%llu, pot/1 v%llu  (%lld swaps)\n",
              static_cast<unsigned long long>(
                  fe.registry().active_version("pot/0")),
              static_cast<unsigned long long>(
                  fe.registry().active_version("pot/1")),
              static_cast<long long>(fe.registry().swaps()));
  std::printf("force MAE on gated frames: %.4f -> %.4f eV/A  "
              "(acceptance: post < pre)\n",
              mae_pre, mae_post);

  reporter.add(obs::JsonRecord()
                   .set("record", "active_learning")
                   .set("trajectories", kAlTraj)
                   .set("steps", kAlSteps)
                   .set("frames", frames)
                   .set("zero_loss", zero_loss)
                   .set("gated_frame_fraction", loop.gate().gate_rate())
                   .set("labels", loop.labels())
                   .set("finetunes", loop.finetunes())
                   .set("swaps", fe.registry().swaps())
                   .set("force_mae_pre", mae_pre)
                   .set("force_mae_post", mae_post));
}

}  // namespace

int main() {
  bench::print_header(
      "MD at scale — ML-potential dynamics through the serving stack\n"
      "(lockstep trajectory waves vs one-at-a-time; uncertainty-gated\n"
      "active learning with mid-wave hot-swap)");

  // Each deployed ensemble member pins one pool slot for its
  // long-running dispatch job; leave headroom for compute even on
  // single-core machines.
  if (core::parallel::num_threads() < 4) core::parallel::set_num_threads(4);

  obs::BenchReporter reporter = bench::make_reporter("fig4_mdscale");
  run_md_scale(reporter);
  run_active_learning(reporter);
  return 0;
}
