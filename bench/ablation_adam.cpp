// Ablation — the Adam large-batch instability mechanism (§5.2).
//
// The paper attributes the Fig. 3 spikes to the Molybog et al. analysis:
// with large effective batches, per-coordinate gradients decay toward
// the ε used in Adam's denominator, update steps become time-correlated
// (non-Markovian), and a sudden gradient produces an outsized update.
// This ablation instruments exactly those quantities with the
// AdamInstabilityProbe across effective batch sizes, and contrasts Adam
// against SGD (no ε mechanism) at the same scaled learning rates.
#include <cmath>
#include <cstdio>

#include "bench_common.hpp"
#include "optim/diagnostics.hpp"
#include "optim/lr_scheduler.hpp"
#include "optim/sgd.hpp"

namespace {

using namespace matsci;

struct ProbeSummary {
  double final_ce = 0.0;
  double mean_autocorr = 0.0;
  double mean_eps_floor = 0.0;
  double max_update = 0.0;
  int spikes = 0;
};

ProbeSummary run_config(std::int64_t workers, bool use_adam, double eps,
                        double base_lr) {
  const std::int64_t steps = 16;
  sym::SyntheticPointGroupDataset train_ds(steps * workers * 2, 31,
                                           bench::bench_sym_options());
  data::DataLoaderOptions lo;
  lo.batch_size = 2;
  lo.seed = 5;
  lo.collate.representation = data::Representation::kPointCloud;
  data::DataLoader loader(train_ds, lo);

  core::RngEngine rng(13);
  auto encoder = std::make_shared<models::EGNN>(
      bench::bench_encoder_config(24, 2), rng);
  tasks::ClassificationTask task(encoder, "point_group",
                                 sym::num_point_groups(),
                                 bench::bench_head_config(24, 1), rng);

  const double lr = optim::scale_lr_for_world_size(base_lr, workers);
  std::unique_ptr<optim::Optimizer> opt;
  std::unique_ptr<optim::AdamInstabilityProbe> probe;
  if (use_adam) {
    optim::AdamOptions ao;
    ao.lr = lr;
    ao.eps = eps;
    ao.decoupled_weight_decay = true;
    auto adam = std::make_unique<optim::Adam>(task.parameters(), ao);
    probe = std::make_unique<optim::AdamInstabilityProbe>(*adam);
    opt = std::move(adam);
  } else {
    opt = std::make_unique<optim::SGD>(
        task.parameters(), optim::SGDOptions{.lr = lr, .momentum = 0.9});
  }

  ProbeSummary summary;
  double prev_loss = 0.0;
  std::int64_t accumulated = 0;
  opt->zero_grad();
  double running = 0.0;
  std::int64_t step_count = 0;
  for (std::int64_t b = 0; b < loader.num_batches(); ++b) {
    const tasks::TaskOutput out = task.step(loader.batch(b));
    out.loss.backward();
    running += out.metrics.at("ce");
    ++accumulated;
    if (accumulated < workers) continue;
    // Average the accumulated (emulated per-rank) gradients.
    for (core::Tensor p : opt->params()) {
      for (float& g : p.grad_span()) g /= static_cast<float>(workers);
    }
    if (probe) {
      const optim::AdamStepStats stats = probe->observe();
      summary.mean_autocorr += stats.grad_autocorrelation;
      summary.mean_eps_floor += stats.frac_at_eps_floor;
      summary.max_update = std::max(summary.max_update,
                                    stats.max_update_magnitude);
    }
    opt->step();
    opt->zero_grad();
    const double loss = running / static_cast<double>(workers);
    if (step_count > 0 && loss > 1.3 * prev_loss) ++summary.spikes;
    prev_loss = loss;
    summary.final_ce = loss;
    running = 0.0;
    accumulated = 0;
    ++step_count;
  }
  if (probe && step_count > 0) {
    summary.mean_autocorr /= static_cast<double>(step_count);
    summary.mean_eps_floor /= static_cast<double>(step_count);
  }
  return summary;
}

}  // namespace

int main() {
  using namespace matsci;
  bench::print_header(
      "Ablation — Adam instability probes across effective batch sizes");
  obs::BenchReporter reporter = bench::make_reporter("ablation_adam");

  std::printf(
      "\n[1] Adam (eps = 1e-8), lr = 1e-4 * N, grad autocorrelation &\n"
      "    eps-floor occupancy vs emulated worker count:\n\n");
  std::printf("%8s %12s %14s %14s %14s %8s\n", "N", "final CE", "autocorr",
              "eps-floor", "max|update|", "spikes");
  for (const std::int64_t n : {4, 16, 64, 128}) {
    const ProbeSummary s = run_config(n, /*use_adam=*/true, 1e-8, 1e-4);
    std::printf("%8lld %12.4f %14.4f %14.4f %14.4e %8d\n",
                static_cast<long long>(n), s.final_ce, s.mean_autocorr,
                s.mean_eps_floor, s.max_update, s.spikes);
    reporter.add(obs::JsonRecord()
                     .set("record", "adam_probe")
                     .set("workers", n)
                     .set("final_ce", s.final_ce)
                     .set("autocorr", s.mean_autocorr)
                     .set("eps_floor", s.mean_eps_floor)
                     .set("max_update", s.max_update)
                     .set("spikes", s.spikes));
  }

  std::printf(
      "\n[2] eps sweep at N = 64 (larger eps floors more coordinates and\n"
      "    damps the per-step update magnitude):\n\n");
  std::printf("%12s %12s %14s %14s\n", "eps", "final CE", "eps-floor",
              "max|update|");
  for (const double eps : {1e-10, 1e-8, 1e-5, 1e-3}) {
    const ProbeSummary s = run_config(64, true, eps, 1e-4);
    std::printf("%12.0e %12.4f %14.4f %14.4e\n", eps, s.final_ce,
                s.mean_eps_floor, s.max_update);
    reporter.add(obs::JsonRecord()
                     .set("record", "eps_sweep")
                     .set("eps", eps)
                     .set("final_ce", s.final_ce)
                     .set("eps_floor", s.mean_eps_floor)
                     .set("max_update", s.max_update));
  }

  std::printf(
      "\n[3] Optimizer contrast at matched scaled lr (SGD lacks the\n"
      "    eps-denominator mechanism entirely):\n\n");
  auto print_ce = [](double v) {
    if (std::isfinite(v)) {
      std::printf(" %16.4f", v);
    } else {
      std::printf(" %16s", "diverged");
    }
  };
  std::printf("%8s %17s %17s\n", "N", "Adam final CE", "SGD final CE");
  for (const std::int64_t n : {16, 128}) {
    const ProbeSummary a = run_config(n, true, 1e-8, 1e-4);
    const ProbeSummary s = run_config(n, false, 0.0, 1e-4);
    std::printf("%8lld", static_cast<long long>(n));
    print_ce(a.final_ce);
    print_ce(s.final_ce);
    std::printf("\n");
    reporter.add(obs::JsonRecord()
                     .set("record", "optimizer_contrast")
                     .set("workers", n)
                     .set("adam_final_ce", a.final_ce)
                     .set("sgd_final_ce", s.final_ce));
  }

  std::printf(
      "\nReading: Adam's signature property — per-coordinate updates of\n"
      "magnitude ~lr regardless of gradient scale — makes max|update|\n"
      "grow linearly with N under the Goyal lr-scaling rule (visible in\n"
      "[1]), which is exactly the knob that pushes large-N runs over the\n"
      "instability threshold in Fig. 3. The eps-floor fraction tracks\n"
      "the share of coordinates whose second moment has decayed to the\n"
      "denominator floor (the Molybog et al. precursor), and the eps\n"
      "sweep in [2] shows the floor damping updates as eps grows. SGD at\n"
      "the same scaled rates ([3]) simply diverges at large N — the\n"
      "instability is a large-batch/lr phenomenon, with Adam's\n"
      "normalization setting the specific threshold.\n");
  return 0;
}
