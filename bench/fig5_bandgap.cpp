// Figure 5 — band-gap fine-tuning: pretrained vs from-scratch.
//
// The paper's simplest downstream case: single-target band-gap
// regression on Materials Project, comparing an encoder initialized from
// symmetry pretraining against random initialization. Paper shape: the
// pretrained run converges to lower error *early*, then settles into a
// local minimum; the scratch run is slower initially but ends at the
// better model.
//
// Protocol note: the paper fine-tunes at η/10 (§4.2). At this bench's
// miniature scale that rule slows the pretrained run so much that the
// comparison measures the learning rate, not the initialization, so the
// main experiment holds η equal for both runs to isolate the effect of
// pretraining; the η/10 variant is reported as a sensitivity footnote.
#include <cstdio>

#include "bench_common.hpp"
#include "materials/materials_project.hpp"
#include "tasks/regression.hpp"

namespace {

using namespace matsci;

std::vector<std::pair<std::int64_t, double>> run(
    bool pretrained, double lr, const data::StructureDataset& train_ds,
    const data::StructureDataset& val_ds, const data::TargetStats& stats) {
  data::DataLoaderOptions lo;
  lo.batch_size = 16;
  lo.seed = 3;
  lo.collate.radius.cutoff = 4.5;
  data::DataLoader train_loader(train_ds, lo);
  data::DataLoaderOptions vo = lo;
  vo.shuffle = false;
  data::DataLoader val_loader(val_ds, vo);

  core::RngEngine rng(23);
  std::shared_ptr<models::EGNN> encoder;
  if (pretrained) {
    encoder = bench::pretrain_symmetry_encoder(1280, 8, 17);
  } else {
    encoder =
        std::make_shared<models::EGNN>(bench::bench_encoder_config(), rng);
  }
  tasks::ScalarRegressionTask task(encoder, "band_gap",
                                   bench::bench_head_config(), rng, stats);
  optim::Adam opt = optim::make_adamw(task.parameters(), lr, 1e-4);
  train::TrainerOptions topts;
  topts.max_epochs = 20;
  topts.validate_every_steps = 8;
  topts.step_val_max_batches = 4;
  const train::FitResult result =
      train::Trainer(topts).fit(task, train_loader, &val_loader, opt);

  std::vector<std::pair<std::int64_t, double>> curve;
  for (const auto& [step, metrics] : result.step_validation) {
    curve.emplace_back(step, metrics.at("mae"));
  }
  return curve;
}

}  // namespace

int main() {
  bench::print_header(
      "Figure 5 — Materials Project band-gap validation curves:\n"
      "pretrained encoder vs random initialization");
  obs::BenchReporter reporter = bench::make_reporter("fig5_bandgap");

  materials::MaterialsProjectDataset ds(320, 41);
  auto [train_ds, val_ds] = data::train_val_split(ds, 0.2, 7);
  const data::TargetStats stats =
      data::compute_target_stats(train_ds, "band_gap");
  std::printf("\nband_gap: mean %.3f eV, std %.3f eV, %lld train / %lld val\n",
              stats.mean, stats.stddev,
              static_cast<long long>(train_ds.size()),
              static_cast<long long>(val_ds.size()));

  constexpr double kLr = 3e-3;
  std::printf("\nTraining from-scratch model (lr %.0e)...\n", kLr);
  const auto scratch = run(false, kLr, train_ds, val_ds, stats);
  std::printf("Training pretrained model (symmetry pretraining, lr %.0e)...\n",
              kLr);
  const auto pretrained = run(true, kLr, train_ds, val_ds, stats);

  std::printf("\n%8s %18s %18s\n", "step", "pretrained MAE", "scratch MAE");
  const std::size_t rows = std::min(pretrained.size(), scratch.size());
  for (std::size_t i = 0; i < rows; ++i) {
    std::printf("%8lld %18.4f %18.4f\n",
                static_cast<long long>(pretrained[i].first),
                pretrained[i].second, scratch[i].second);
  }

  const std::size_t early = std::max<std::size_t>(1, rows / 4);
  double early_pre = 0.0, early_scr = 0.0;
  for (std::size_t i = 0; i < early; ++i) {
    early_pre += pretrained[i].second;
    early_scr += scratch[i].second;
  }
  const double final_pre = pretrained[rows - 1].second;
  const double final_scr = scratch[rows - 1].second;
  std::printf("\nEarly-phase mean MAE (first quarter): pretrained %.4f vs "
              "scratch %.4f -> %s leads early\n",
              early_pre / static_cast<double>(early),
              early_scr / static_cast<double>(early),
              early_pre < early_scr ? "pretrained" : "scratch");
  std::printf("Final MAE: pretrained %.4f vs scratch %.4f -> %s wins at end\n",
              final_pre, final_scr,
              final_pre < final_scr ? "pretrained" : "scratch");

  std::printf("\nSensitivity: paper's eta/10 fine-tuning rule...\n");
  const auto slow = run(true, kLr / 10.0, train_ds, val_ds, stats);
  std::printf(
      "  pretrained @ eta/10 final MAE %.4f (the rule trades early speed\n"
      "  for stability; at this scale it simply undertrains).\n",
      slow.back().second);

  reporter.add(obs::JsonRecord()
                   .set("record", "bandgap_curves")
                   .set("early_mean_mae_pretrained",
                        early_pre / static_cast<double>(early))
                   .set("early_mean_mae_scratch",
                        early_scr / static_cast<double>(early))
                   .set("final_mae_pretrained", final_pre)
                   .set("final_mae_scratch", final_scr)
                   .set("final_mae_pretrained_lr_div10", slow.back().second));

  std::printf(
      "\nPaper shape: pretrained converges to lower error early (useful\n"
      "with early stopping under a fixed budget) but plateaus; training\n"
      "from random initialization is slower yet ends at the better\n"
      "model.\n");
  return 0;
}
