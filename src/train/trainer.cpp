#include "train/trainer.hpp"

#include <chrono>
#include <limits>
#include <cstdio>

#include "core/macros.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace matsci::train {

namespace {

/// Step-phase telemetry shared by Trainer and DDPTrainer ranks: the
/// paper's forward / backward / optimizer decomposition (the allreduce
/// phase is recorded by comm::Communicator itself).
struct TrainMetrics {
  obs::Counter& steps;
  obs::Counter& epochs;
  obs::Counter& samples;
  obs::Histogram& forward_us;
  obs::Histogram& backward_us;
  obs::Histogram& optimizer_us;

  static TrainMetrics& get() {
    static TrainMetrics* m = new TrainMetrics{
        obs::MetricsRegistry::global().counter("train.steps"),
        obs::MetricsRegistry::global().counter("train.epochs"),
        obs::MetricsRegistry::global().counter("train.samples"),
        obs::MetricsRegistry::global().histogram("train.forward_us"),
        obs::MetricsRegistry::global().histogram("train.backward_us"),
        obs::MetricsRegistry::global().histogram("train.optimizer_us"),
    };
    return *m;
  }
};

}  // namespace

Trainer::Trainer(TrainerOptions opts) : opts_(opts) {
  MATSCI_CHECK(opts.max_epochs >= 1, "max_epochs must be >= 1");
  MATSCI_CHECK(opts.accumulate_batches >= 1,
               "accumulate_batches must be >= 1");
}

std::map<std::string, double> Trainer::evaluate(const tasks::Task& task,
                                                data::DataLoader& loader,
                                                std::int64_t max_batches) {
  core::NoGradGuard no_grad;
  const bool was_training = task.is_training();
  const_cast<tasks::Task&>(task).train(false);

  tasks::MetricAccumulator acc;
  const std::int64_t n = loader.num_batches();
  const std::int64_t limit =
      max_batches > 0 ? std::min(max_batches, n) : n;
  for (std::int64_t b = 0; b < limit; ++b) {
    acc.add(task.step(loader.batch(b)));
  }
  const_cast<tasks::Task&>(task).train(was_training);
  return acc.means();
}

FitResult Trainer::fit(tasks::Task& task, data::DataLoader& train_loader,
                       data::DataLoader* val_loader, optim::Optimizer& opt,
                       optim::LRScheduler* scheduler,
                       const EpochCallback& on_epoch,
                       const AnomalyCallback& on_anomaly) {
  MATSCI_CHECK(opts_.early_stopping_patience == 0 || val_loader != nullptr,
               "early stopping requires a validation loader");
  FitResult result;
  const auto t0 = std::chrono::steady_clock::now();
  double best_metric = std::numeric_limits<double>::infinity();
  std::int64_t epochs_without_improvement = 0;

  std::optional<obs::health::HealthMonitor> monitor;
  if (opts_.health.enabled) {
    monitor.emplace(opts_.health, task, opt);
  }

  for (std::int64_t epoch = 0; epoch < opts_.max_epochs; ++epoch) {
    task.train(true);
    train_loader.set_epoch(epoch);
    tasks::MetricAccumulator train_acc;

    const std::int64_t num_batches = train_loader.num_batches();
    std::int64_t accumulated = 0;
    double flush_loss = 0.0;  ///< sum of microbatch losses since last flush
    opt.zero_grad();

    TrainMetrics& metrics = TrainMetrics::get();
    MATSCI_TRACE_SCOPE("train/epoch");
    for (std::int64_t b = 0; b < num_batches; ++b) {
      data::Batch batch = train_loader.batch(b);
      tasks::TaskOutput out;
      {
        MATSCI_TRACE_SCOPE("train/forward");
        const obs::StopWatch watch;
        out = task.step(batch);
        metrics.forward_us.observe(watch.elapsed_us());
      }
      {
        MATSCI_TRACE_SCOPE("train/backward");
        const obs::StopWatch watch;
        out.loss.backward();
        metrics.backward_us.observe(watch.elapsed_us());
      }
      train_acc.add(out);
      result.total_samples += static_cast<double>(batch.num_graphs());
      metrics.samples.add(batch.num_graphs());
      ++accumulated;
      if (monitor) flush_loss += static_cast<double>(out.loss.item());

      const bool flush =
          accumulated == opts_.accumulate_batches || b + 1 == num_batches;
      if (!flush) continue;

      if (accumulated > 1) {
        // Average, matching synchronous-DDP gradient semantics.
        const float inv = 1.0f / static_cast<float>(accumulated);
        for (core::Tensor p : opt.params()) {  // cheap handle copy
          if (!p.has_grad()) continue;
          for (float& g : p.grad_span()) g *= inv;
        }
      }

      // Health probe on the averaged, pre-clip gradients: spikes must be
      // measured before clip_grad_norm rescales them away.
      bool skip_step = false;
      // Health steps count *attempted* flushes: a skipped step still
      // advances the index, so consecutive anomalies get distinct steps.
      const std::int64_t health_step =
          result.total_steps + result.skipped_steps + 1;
      if (monitor) {
        MATSCI_TRACE_SCOPE("train/health");
        const double step_loss =
            flush_loss / static_cast<double>(accumulated);
        const std::vector<obs::health::Anomaly> anomalies =
            monitor->on_step(health_step, step_loss);
        if (!anomalies.empty()) {
          for (const obs::health::Anomaly& a : anomalies) {
            result.anomalies.push_back(a);
            if (on_anomaly) on_anomaly(a);
          }
          if (opts_.health.policy == obs::health::AnomalyPolicy::kAbort) {
            const std::string bundle = monitor->dump_bundle("abort", anomalies);
            MATSCI_CHECK(false,
                         "health abort at step "
                             << health_step << " ("
                             << obs::health::to_string(anomalies.front().type)
                             << "); flight bundle: " << bundle);
          }
          if (opts_.health.dump_on_anomaly) {
            monitor->dump_bundle("anomaly", anomalies);
          }
          skip_step =
              opts_.health.policy == obs::health::AnomalyPolicy::kSkipStep;
        }
      }
      flush_loss = 0.0;
      accumulated = 0;

      if (skip_step) {
        opt.zero_grad();
        ++result.skipped_steps;
        continue;
      }

      {
        MATSCI_TRACE_SCOPE("train/optimizer");
        const obs::StopWatch watch;
        if (opts_.grad_clip > 0.0) {
          opt.clip_grad_norm(opts_.grad_clip);
        }
        opt.step();
        opt.zero_grad();
        metrics.optimizer_us.observe(watch.elapsed_us());
      }
      ++result.total_steps;
      metrics.steps.add(1);

      if (opts_.validate_every_steps > 0 && val_loader != nullptr &&
          result.total_steps % opts_.validate_every_steps == 0) {
        result.step_validation.emplace_back(
            result.total_steps,
            evaluate(task, *val_loader, opts_.step_val_max_batches));
      }
    }

    EpochStats stats;
    stats.epoch = epoch;
    stats.lr = opt.lr();
    stats.train = train_acc.means();
    if (val_loader != nullptr) {
      stats.val = evaluate(task, *val_loader);
    }
    if (scheduler != nullptr) {
      scheduler->epoch_step();
    }
    if (opts_.verbose) {
      std::printf("epoch %3lld  lr %.3e  train_loss %.5f",
                  static_cast<long long>(epoch), stats.lr,
                  stats.train.count("loss") ? stats.train.at("loss") : 0.0);
      if (stats.val.count("loss")) {
        std::printf("  val_loss %.5f", stats.val.at("loss"));
      }
      std::printf("\n");
    }
    if (on_epoch) on_epoch(stats);
    result.epochs.push_back(std::move(stats));
    metrics.epochs.add(1);

    if (opts_.early_stopping_patience > 0) {
      const std::map<std::string, double>& val_metrics =
          result.epochs.back().val;
      auto it = val_metrics.find(opts_.early_stopping_metric);
      MATSCI_CHECK(it != val_metrics.end(),
                   "early stopping metric '" << opts_.early_stopping_metric
                                             << "' not in validation metrics");
      if (it->second < best_metric) {
        best_metric = it->second;
        epochs_without_improvement = 0;
      } else if (++epochs_without_improvement >=
                 opts_.early_stopping_patience) {
        if (opts_.verbose) {
          std::printf("early stopping at epoch %lld (no %s improvement "
                      "for %lld epochs)\n",
                      static_cast<long long>(epoch),
                      opts_.early_stopping_metric.c_str(),
                      static_cast<long long>(opts_.early_stopping_patience));
        }
        break;
      }
    }
  }

  result.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  return result;
}

}  // namespace matsci::train
