#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

namespace matsci::train {

/// Step/epoch-keyed metric recorder with CSV export — the toolkit's
/// stand-in for a Lightning logger. Each record is (step, {key: value});
/// keys may vary between records (sparse columns are written empty).
///
/// Every log() call is also forwarded to the process-wide obs registry
/// as the Series "<prefix><key>" (default prefix "train."), so the
/// Prometheus and BENCH_*.json exporters see exactly the series the CSV
/// holds; the CSV format itself is unchanged. set_obs_prefix("")
/// disables forwarding.
class MetricsLogger {
 public:
  void log(std::int64_t step, const std::string& key, double value);
  void log(std::int64_t step, const std::map<std::string, double>& values);

  /// Prefix for the obs::Series names this logger forwards to; empty
  /// disables obs forwarding entirely.
  void set_obs_prefix(std::string prefix) { obs_prefix_ = std::move(prefix); }
  const std::string& obs_prefix() const { return obs_prefix_; }

  std::size_t num_records() const { return records_.size(); }

  /// All (step, value) points for one key, in insertion order.
  std::vector<std::pair<std::int64_t, double>> series(
      const std::string& key) const;

  /// Last logged value for a key (throws if absent).
  double last(const std::string& key) const;

  /// Write all records as CSV (sorted united header).
  void write_csv(const std::string& path) const;

  /// Render a fixed-width text table of selected keys, one row per step
  /// that has at least one of them — used by benches to print the same
  /// series the paper plots.
  std::string format_table(const std::vector<std::string>& keys,
                           const std::string& step_label = "step") const;

 private:
  struct Record {
    std::int64_t step;
    std::map<std::string, double> values;
  };
  std::vector<Record> records_;
  std::string obs_prefix_ = "train.";
};

}  // namespace matsci::train
