#pragma once

#include <functional>
#include <optional>

#include "data/dataloader.hpp"
#include "obs/health.hpp"
#include "optim/lr_scheduler.hpp"
#include "optim/optimizer.hpp"
#include "tasks/task.hpp"
#include "train/logging.hpp"

namespace matsci::train {

struct TrainerOptions {
  std::int64_t max_epochs = 10;
  double grad_clip = 0.0;  ///< global-norm clip; 0 disables
  /// Run a (possibly truncated) validation pass every N optimizer steps
  /// and record it in the step-validation series (Figs. 3/5/7 need
  /// step-resolution curves). 0 disables.
  std::int64_t validate_every_steps = 0;
  std::int64_t step_val_max_batches = 4;  ///< truncation for step validation
  /// Gradient accumulation: average gradients over this many consecutive
  /// batches before each optimizer step — the sequential-equivalent of
  /// B_eff = N·B synchronous DDP, used to emulate large worker counts.
  std::int64_t accumulate_batches = 1;
  /// Early stopping: end training when `early_stopping_metric` (a key in
  /// the validation metrics) has not improved for this many consecutive
  /// epochs. 0 disables. Requires a validation loader.
  std::int64_t early_stopping_patience = 0;
  std::string early_stopping_metric = "loss";
  bool verbose = false;  ///< print one line per epoch
  /// Training health monitoring (obs/health.hpp): per-step gradient /
  /// loss anomaly detection with a configurable response policy.
  /// Disabled by default (health.enabled == false costs nothing).
  obs::health::HealthOptions health;
};

struct EpochStats {
  std::int64_t epoch = 0;
  double lr = 0.0;
  std::map<std::string, double> train;  ///< epoch-mean training metrics
  std::map<std::string, double> val;    ///< full validation metrics
};

struct FitResult {
  std::vector<EpochStats> epochs;
  /// (optimizer step, metric map) from periodic step validation.
  std::vector<std::pair<std::int64_t, std::map<std::string, double>>>
      step_validation;
  std::int64_t total_steps = 0;
  double total_samples = 0.0;
  double wall_seconds = 0.0;
  /// Every anomaly the health monitor flagged (empty when disabled).
  std::vector<obs::health::Anomaly> anomalies;
  /// Optimizer steps suppressed by AnomalyPolicy::kSkipStep.
  std::int64_t skipped_steps = 0;
  double samples_per_second() const {
    return wall_seconds > 0.0 ? total_samples / wall_seconds : 0.0;
  }
};

/// Single-process training loop (the Lightning-Trainer analogue):
/// epoch loop -> batch loop -> backward -> (clip) -> optimizer step,
/// epoch-end scheduler step and validation. Deterministic given task,
/// loaders, and optimizer state.
class Trainer {
 public:
  explicit Trainer(TrainerOptions opts = {});

  using EpochCallback = std::function<void(const EpochStats&)>;
  /// Invoked once per flagged anomaly, before the policy response
  /// (so an abort's callback still runs). Same-thread, synchronous.
  using AnomalyCallback = std::function<void(const obs::health::Anomaly&)>;

  FitResult fit(tasks::Task& task, data::DataLoader& train_loader,
                data::DataLoader* val_loader, optim::Optimizer& opt,
                optim::LRScheduler* scheduler = nullptr,
                const EpochCallback& on_epoch = {},
                const AnomalyCallback& on_anomaly = {});

  /// Full evaluation pass (eval mode, no grads); returns metric means.
  static std::map<std::string, double> evaluate(
      const tasks::Task& task, data::DataLoader& loader,
      std::int64_t max_batches = 0);

  const TrainerOptions& options() const { return opts_; }

 private:
  TrainerOptions opts_;
};

}  // namespace matsci::train
