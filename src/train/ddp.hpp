#pragma once

#include <memory>
#include <string>

#include "comm/coll/compressor.hpp"
#include "comm/communicator.hpp"
#include "train/trainer.hpp"

namespace matsci::train {

/// Everything one DDP rank needs. Built by a user factory per rank;
/// parameters are broadcast from rank 0 before training, so factories
/// need not produce bit-identical initializations.
struct RankContext {
  std::unique_ptr<tasks::Task> task;
  std::unique_ptr<optim::Optimizer> optimizer;
  std::unique_ptr<optim::LRScheduler> scheduler;  ///< optional
  std::unique_ptr<data::DataLoader> train_loader;
  std::unique_ptr<data::DataLoader> val_loader;  ///< used on rank 0 only
};

struct DDPOptions {
  std::int64_t world_size = 2;
  std::int64_t max_epochs = 1;
  double grad_clip = 0.0;
  bool verbose = false;
  /// Per-rank health monitoring. Local detection runs on post-allreduce
  /// gradients and the allreduced mean loss; per-rank grad norms are
  /// additionally reduced (min/mean/max + non-finite rank count) so the
  /// policy decision is identical on every rank — no rank is ever left
  /// waiting at a collective (lockstep invariant, obs/health.hpp).
  obs::health::HealthOptions health;
  /// Rank-0 anomaly callback (same semantics as Trainer's).
  Trainer::AnomalyCallback on_anomaly;
  /// Bucketed overlapped allreduce (comm/coll): gradients stream out in
  /// reverse-registration-order buckets as backward finalizes them,
  /// each bucket reducing on the shared pool while backward continues.
  /// Identity compression is bit-identical to the monolithic path; set
  /// false to fall back to one flat post-backward allreduce.
  bool use_buckets = true;
  /// Bucket sizing + compressor selection (identity / int8 / top-k with
  /// error feedback) for the bucketed path.
  comm::coll::CollOptions coll;
  /// Elastic recovery (DESIGN.md §12): when a rank dies mid-training,
  /// survivors rebuild a resized group, re-invoke the factory with
  /// their new (rank, world), resume from the last checkpoint in
  /// `checkpoint_dir`, and continue. Requires `checkpoint_dir`.
  bool elastic = false;
  std::string checkpoint_dir;
  /// Fault-injection hook installed on the initial group (tests /
  /// chaos drills); rebuilt survivor groups do not inherit it.
  comm::ProcessGroup::FaultHook fault_hook;
};

struct DDPResult {
  std::vector<EpochStats> epochs;  ///< rank-0 validation, mean train loss
  std::int64_t total_steps = 0;
  double total_samples = 0.0;  ///< across all ranks
  double wall_seconds = 0.0;
  /// Anomalies flagged on rank 0 (cross-rank stats are identical on all
  /// ranks, so rank 0's view is the global view).
  std::vector<obs::health::Anomaly> anomalies;
  /// Lockstep-skipped optimizer steps (counted once, not per rank).
  std::int64_t skipped_steps = 0;
  /// Elastic recovery accounting.
  std::int64_t recoveries = 0;             ///< group rebuilds performed
  std::vector<std::int64_t> lost_ranks;    ///< original-group numbering
  std::int64_t final_world = 0;            ///< world size at completion
  /// Bucketed-path communication accounting (rank-0 view, summed over
  /// incarnations; zero when use_buckets is false).
  std::int64_t comm_bytes = 0;             ///< fp32 payload posted
  std::int64_t comm_compressed_bytes = 0;  ///< simulated wire bytes
  double mean_overlap_fraction = 0.0;      ///< mean over steps
  double samples_per_second() const {
    return wall_seconds > 0.0 ? total_samples / wall_seconds : 0.0;
  }
};

/// Thread-backed synchronous data-parallel trainer (paper §4.2): each
/// rank owns a model replica and a disjoint data shard; gradients are
/// averaged with an allreduce every step, so all replicas stay identical.
/// Functionally equivalent to torch DDP over MPI ranks.
class DDPTrainer {
 public:
  using Factory =
      std::function<RankContext(std::int64_t rank, std::int64_t world_size)>;

  DDPResult fit(const Factory& factory, const DDPOptions& opts);
};

/// Flatten all parameter gradients into one contiguous buffer (the DDP
/// "bucket"), and scatter it back. Exposed for tests.
std::vector<float> flatten_grads(const std::vector<core::Tensor>& params);
void unflatten_grads(const std::vector<float>& flat,
                     std::vector<core::Tensor>& params);

}  // namespace matsci::train
