#pragma once

#include <memory>

#include "comm/communicator.hpp"
#include "train/trainer.hpp"

namespace matsci::train {

/// Everything one DDP rank needs. Built by a user factory per rank;
/// parameters are broadcast from rank 0 before training, so factories
/// need not produce bit-identical initializations.
struct RankContext {
  std::unique_ptr<tasks::Task> task;
  std::unique_ptr<optim::Optimizer> optimizer;
  std::unique_ptr<optim::LRScheduler> scheduler;  ///< optional
  std::unique_ptr<data::DataLoader> train_loader;
  std::unique_ptr<data::DataLoader> val_loader;  ///< used on rank 0 only
};

struct DDPOptions {
  std::int64_t world_size = 2;
  std::int64_t max_epochs = 1;
  double grad_clip = 0.0;
  bool verbose = false;
  /// Per-rank health monitoring. Local detection runs on post-allreduce
  /// gradients and the allreduced mean loss; per-rank grad norms are
  /// additionally reduced (min/mean/max + non-finite rank count) so the
  /// policy decision is identical on every rank — no rank is ever left
  /// waiting at a collective (lockstep invariant, obs/health.hpp).
  obs::health::HealthOptions health;
  /// Rank-0 anomaly callback (same semantics as Trainer's).
  Trainer::AnomalyCallback on_anomaly;
};

struct DDPResult {
  std::vector<EpochStats> epochs;  ///< rank-0 validation, mean train loss
  std::int64_t total_steps = 0;
  double total_samples = 0.0;  ///< across all ranks
  double wall_seconds = 0.0;
  /// Anomalies flagged on rank 0 (cross-rank stats are identical on all
  /// ranks, so rank 0's view is the global view).
  std::vector<obs::health::Anomaly> anomalies;
  /// Lockstep-skipped optimizer steps (counted once, not per rank).
  std::int64_t skipped_steps = 0;
  double samples_per_second() const {
    return wall_seconds > 0.0 ? total_samples / wall_seconds : 0.0;
  }
};

/// Thread-backed synchronous data-parallel trainer (paper §4.2): each
/// rank owns a model replica and a disjoint data shard; gradients are
/// averaged with an allreduce every step, so all replicas stay identical.
/// Functionally equivalent to torch DDP over MPI ranks.
class DDPTrainer {
 public:
  using Factory =
      std::function<RankContext(std::int64_t rank, std::int64_t world_size)>;

  DDPResult fit(const Factory& factory, const DDPOptions& opts);
};

/// Flatten all parameter gradients into one contiguous buffer (the DDP
/// "bucket"), and scatter it back. Exposed for tests.
std::vector<float> flatten_grads(const std::vector<core::Tensor>& params);
void unflatten_grads(const std::vector<float>& flat,
                     std::vector<core::Tensor>& params);

}  // namespace matsci::train
