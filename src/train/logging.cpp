#include "train/logging.hpp"

#include <fstream>
#include <iomanip>
#include <set>
#include <sstream>

#include "core/macros.hpp"
#include "obs/metrics.hpp"

namespace matsci::train {

void MetricsLogger::log(std::int64_t step, const std::string& key,
                        double value) {
  if (!obs_prefix_.empty()) {
    obs::MetricsRegistry::global().series(obs_prefix_ + key)
        .record(step, value);
  }
  if (!records_.empty() && records_.back().step == step) {
    records_.back().values[key] = value;
    return;
  }
  records_.push_back({step, {{key, value}}});
}

void MetricsLogger::log(std::int64_t step,
                        const std::map<std::string, double>& values) {
  for (const auto& [key, value] : values) {
    log(step, key, value);
  }
}

std::vector<std::pair<std::int64_t, double>> MetricsLogger::series(
    const std::string& key) const {
  std::vector<std::pair<std::int64_t, double>> out;
  for (const Record& r : records_) {
    auto it = r.values.find(key);
    if (it != r.values.end()) {
      out.emplace_back(r.step, it->second);
    }
  }
  return out;
}

double MetricsLogger::last(const std::string& key) const {
  for (auto it = records_.rbegin(); it != records_.rend(); ++it) {
    auto v = it->values.find(key);
    if (v != it->values.end()) return v->second;
  }
  MATSCI_CHECK(false, "no records for metric '" << key << "'");
  return 0.0;  // unreachable
}

void MetricsLogger::write_csv(const std::string& path) const {
  std::ofstream os(path);
  MATSCI_CHECK(os.is_open(), "cannot open '" << path << "' for writing");
  std::set<std::string> keys;
  for (const Record& r : records_) {
    for (const auto& [k, _] : r.values) keys.insert(k);
  }
  os << "step";
  for (const std::string& k : keys) os << "," << k;
  os << "\n";
  for (const Record& r : records_) {
    os << r.step;
    for (const std::string& k : keys) {
      os << ",";
      auto it = r.values.find(k);
      if (it != r.values.end()) os << it->second;
    }
    os << "\n";
  }
}

std::string MetricsLogger::format_table(const std::vector<std::string>& keys,
                                        const std::string& step_label) const {
  std::ostringstream os;
  os << std::setw(10) << step_label;
  for (const std::string& k : keys) os << std::setw(18) << k;
  os << "\n";
  for (const Record& r : records_) {
    bool any = false;
    for (const std::string& k : keys) {
      if (r.values.count(k)) {
        any = true;
        break;
      }
    }
    if (!any) continue;
    os << std::setw(10) << r.step;
    for (const std::string& k : keys) {
      auto it = r.values.find(k);
      if (it != r.values.end()) {
        os << std::setw(18) << std::fixed << std::setprecision(5)
           << it->second;
      } else {
        os << std::setw(18) << "-";
      }
    }
    os << "\n";
  }
  return os.str();
}

}  // namespace matsci::train
