#include "train/checkpoint.hpp"

#include "core/macros.hpp"

namespace matsci::train {

namespace {
constexpr const char* kOptimPrefix = "__optim__/";
constexpr const char* kEpochKey = "__meta__/epoch";
}  // namespace

void save_training_checkpoint(const std::string& path,
                              const nn::Module& model,
                              const optim::Optimizer& opt,
                              std::int64_t epoch) {
  nn::StateDict combined = nn::state_dict(model);
  for (const auto& [key, values] : opt.export_state()) {
    // Optimizer buffers may be empty before the first step; store a
    // zero-length marker row so import can distinguish "unset" cleanly.
    combined[std::string(kOptimPrefix) + key] = core::Tensor::from_vector(
        values, {static_cast<std::int64_t>(values.size())});
  }
  combined[kEpochKey] = core::Tensor::scalar(static_cast<float>(epoch));
  nn::save_state_dict(combined, path);
}

TrainingCheckpoint load_training_checkpoint(const std::string& path) {
  const nn::StateDict combined = nn::load_state_dict_file(path);
  TrainingCheckpoint ckpt;
  const std::string optim_prefix = kOptimPrefix;
  for (const auto& [key, tensor] : combined) {
    if (key == kEpochKey) {
      ckpt.epoch = static_cast<std::int64_t>(tensor.item());
    } else if (key.rfind(optim_prefix, 0) == 0) {
      const float* p = tensor.data();
      ckpt.optimizer[key.substr(optim_prefix.size())] =
          std::vector<float>(p, p + tensor.numel());
    } else {
      ckpt.model[key] = tensor;
    }
  }
  MATSCI_CHECK(combined.count(kEpochKey),
               "not a training checkpoint (no epoch record): " << path);
  return ckpt;
}

nn::StateDict load_model_state(const std::string& path) {
  nn::StateDict combined = nn::load_state_dict_file(path);
  nn::StateDict model;
  for (auto& [key, tensor] : combined) {
    if (key.rfind(kOptimPrefix, 0) == 0 || key.rfind("__meta__/", 0) == 0) {
      continue;
    }
    model[key] = tensor;
  }
  return model;
}

std::int64_t resume_training(const std::string& path, nn::Module& model,
                             optim::Optimizer& opt) {
  const TrainingCheckpoint ckpt = load_training_checkpoint(path);
  nn::load_into_module(model, ckpt.model, /*strict=*/true);
  opt.import_state(ckpt.optimizer);
  return ckpt.epoch;
}

}  // namespace matsci::train
