#pragma once

#include <cstdint>
#include <string>

#include "nn/serialize.hpp"
#include "optim/optimizer.hpp"

namespace matsci::train {

/// A full training snapshot: model parameters, optimizer buffers, and
/// loop position — enough to resume training bit-exactly (the Lightning
/// "resume_from_checkpoint" workflow). Stored in the same binary
/// container as plain model checkpoints; optimizer entries live under a
/// reserved "__optim__/" prefix and loop metadata under "__meta__/".
struct TrainingCheckpoint {
  nn::StateDict model;
  optim::OptimizerState optimizer;
  std::int64_t epoch = 0;
};

void save_training_checkpoint(const std::string& path, const nn::Module& model,
                              const optim::Optimizer& opt,
                              std::int64_t epoch);

TrainingCheckpoint load_training_checkpoint(const std::string& path);

/// Model-only view of any checkpoint file: accepts both plain state
/// dicts (e.g. a pretrained encoder) and full training checkpoints, in
/// which case the reserved "__optim__/" and "__meta__/" entries are
/// stripped. This is the path the serving subsystem loads through — a
/// server never needs optimizer buffers.
nn::StateDict load_model_state(const std::string& path);

/// Restore model + optimizer in place; returns the stored epoch.
std::int64_t resume_training(const std::string& path, nn::Module& model,
                             optim::Optimizer& opt);

}  // namespace matsci::train
