#include "train/ddp.hpp"

#include <chrono>
#include <cstdio>
#include <mutex>

#include "core/macros.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace matsci::train {

std::vector<float> flatten_grads(const std::vector<core::Tensor>& params) {
  std::vector<float> flat;
  for (core::Tensor p : params) {
    auto g = p.grad_span();  // materializes zeros when absent
    flat.insert(flat.end(), g.begin(), g.end());
  }
  return flat;
}

void unflatten_grads(const std::vector<float>& flat,
                     std::vector<core::Tensor>& params) {
  std::size_t off = 0;
  for (core::Tensor& p : params) {
    auto g = p.grad_span();
    MATSCI_CHECK(off + g.size() <= flat.size(),
                 "unflatten_grads: buffer too small");
    std::copy(flat.begin() + static_cast<std::ptrdiff_t>(off),
              flat.begin() + static_cast<std::ptrdiff_t>(off + g.size()),
              g.begin());
    off += g.size();
  }
  MATSCI_CHECK(off == flat.size(), "unflatten_grads: buffer size mismatch");
}

DDPResult DDPTrainer::fit(const Factory& factory, const DDPOptions& opts) {
  MATSCI_CHECK(opts.world_size >= 1, "world_size must be >= 1");
  MATSCI_CHECK(opts.max_epochs >= 1, "max_epochs must be >= 1");

  DDPResult result;
  std::mutex result_mu;
  const auto t0 = std::chrono::steady_clock::now();

  comm::run_ranks(opts.world_size, [&](comm::Communicator& comm) {
    const std::int64_t rank = comm.rank();
    RankContext ctx = factory(rank, comm.world_size());
    MATSCI_CHECK(ctx.task && ctx.optimizer && ctx.train_loader,
                 "rank factory must provide task, optimizer, train loader");

    // Synchronize initial parameters: rank 0 is the source of truth.
    auto params = ctx.task->parameters();
    for (core::Tensor& p : params) {
      comm.broadcast(p.span(), /*root=*/0);
    }

    double local_samples = 0.0;
    std::int64_t local_steps = 0;

    for (std::int64_t epoch = 0; epoch < opts.max_epochs; ++epoch) {
      ctx.task->train(true);
      ctx.train_loader->set_epoch(epoch);

      // Lockstep batch count: every rank runs the minimum shard length.
      const double nb_min = -comm.allreduce_scalar_max(
          -static_cast<double>(ctx.train_loader->num_batches()));
      const std::int64_t num_batches = static_cast<std::int64_t>(nb_min);

      tasks::MetricAccumulator train_acc;
      obs::Histogram& allreduce_us =
          obs::MetricsRegistry::global().histogram("ddp.allreduce_us");
      for (std::int64_t b = 0; b < num_batches; ++b) {
        data::Batch batch = ctx.train_loader->batch(b);
        ctx.optimizer->zero_grad();
        tasks::TaskOutput out;
        {
          MATSCI_TRACE_SCOPE("ddp/forward");
          out = ctx.task->step(batch);
        }
        {
          MATSCI_TRACE_SCOPE("ddp/backward");
          out.loss.backward();
        }
        train_acc.add(out);
        local_samples += static_cast<double>(batch.num_graphs());

        {
          // The defining DDP collective: average gradients across
          // ranks. The ddp-level histogram includes flatten/unflatten
          // staging; comm.allreduce_us (inside) is the bare collective.
          MATSCI_TRACE_SCOPE("ddp/allreduce");
          const obs::StopWatch watch;
          std::vector<float> flat = flatten_grads(params);
          comm.allreduce_mean(flat);
          unflatten_grads(flat, params);
          allreduce_us.observe(watch.elapsed_us());
        }

        {
          MATSCI_TRACE_SCOPE("ddp/optimizer");
          if (opts.grad_clip > 0.0) {
            ctx.optimizer->clip_grad_norm(opts.grad_clip);
          }
          ctx.optimizer->step();
        }
        ++local_steps;
      }

      // Mean training loss across ranks for the epoch record.
      const double loss_mean =
          comm.allreduce_scalar_sum(
              train_acc.has("loss") ? train_acc.mean("loss") : 0.0) /
          static_cast<double>(comm.world_size());

      if (rank == 0) {
        EpochStats stats;
        stats.epoch = epoch;
        stats.lr = ctx.optimizer->lr();
        stats.train = train_acc.means();
        stats.train["loss"] = loss_mean;
        if (ctx.val_loader) {
          stats.val = Trainer::evaluate(*ctx.task, *ctx.val_loader);
        }
        if (opts.verbose) {
          std::printf("[ddp %lld ranks] epoch %3lld  train_loss %.5f\n",
                      static_cast<long long>(comm.world_size()),
                      static_cast<long long>(epoch), loss_mean);
        }
        std::lock_guard<std::mutex> lock(result_mu);
        result.epochs.push_back(std::move(stats));
      }
      if (ctx.scheduler) {
        ctx.scheduler->epoch_step();
      }
      comm.barrier();
    }

    const double all_samples = comm.allreduce_scalar_sum(local_samples);
    if (rank == 0) {
      std::lock_guard<std::mutex> lock(result_mu);
      result.total_samples = all_samples;
      result.total_steps = local_steps;
    }
  });

  result.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  return result;
}

}  // namespace matsci::train
