#include "train/ddp.hpp"

#include <chrono>
#include <cmath>
#include <cstdio>
#include <mutex>
#include <optional>
#include <string>

#include "comm/coll/bucket_allreduce.hpp"
#include "core/autograd.hpp"
#include "core/macros.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "train/checkpoint.hpp"

namespace matsci::train {

std::vector<float> flatten_grads(const std::vector<core::Tensor>& params) {
  std::vector<float> flat;
  for (core::Tensor p : params) {
    auto g = p.grad_span();  // materializes zeros when absent
    flat.insert(flat.end(), g.begin(), g.end());
  }
  return flat;
}

void unflatten_grads(const std::vector<float>& flat,
                     std::vector<core::Tensor>& params) {
  std::size_t off = 0;
  for (core::Tensor& p : params) {
    auto g = p.grad_span();
    MATSCI_CHECK(off + g.size() <= flat.size(),
                 "unflatten_grads: buffer too small");
    std::copy(flat.begin() + static_cast<std::ptrdiff_t>(off),
              flat.begin() + static_cast<std::ptrdiff_t>(off + g.size()),
              g.begin());
    off += g.size();
  }
  MATSCI_CHECK(off == flat.size(), "unflatten_grads: buffer size mismatch");
}

namespace {

std::string checkpoint_path(const DDPOptions& opts) {
  return opts.checkpoint_dir + "/ddp_checkpoint.bin";
}

/// Everything the per-rank closure shares with the caller.
struct Shared {
  DDPResult& result;
  std::mutex& result_mu;
  const DDPOptions& opts;
  const DDPTrainer::Factory& factory;
};

/// Run one group incarnation end-to-end: build this rank's context
/// (resuming model/optimizer from the last checkpoint when this is a
/// post-recovery incarnation), then train the remaining epochs. Throws
/// RankFailedError when a peer dies; the elastic loop in fit() catches
/// it, rebuilds the group, and calls back in with incarnation + 1.
void train_incarnation(comm::Communicator& comm, std::int64_t incarnation,
                       const Shared& sh) {
  const DDPOptions& opts = sh.opts;
  const std::int64_t rank = comm.rank();
  RankContext ctx = sh.factory(rank, comm.world_size());
  MATSCI_CHECK(ctx.task && ctx.optimizer && ctx.train_loader,
               "rank factory must provide task, optimizer, train loader");

  std::int64_t epoch_start = 0;
  if (incarnation > 0) {
    // Survivors restart from the last consistent snapshot: any
    // in-memory divergence between ranks that noticed the failure at
    // different steps is erased here.
    epoch_start =
        resume_training(checkpoint_path(opts), *ctx.task, *ctx.optimizer);
    if (ctx.scheduler) {
      for (std::int64_t e = 0; e < epoch_start; ++e) {
        ctx.scheduler->epoch_step();
      }
    }
  }

  // Synchronize initial parameters: rank 0 is the source of truth.
  auto params = ctx.task->parameters();
  for (core::Tensor& p : params) {
    comm.broadcast(p.span(), /*root=*/0);
  }

  if (opts.elastic) {
    // Guarantee a checkpoint exists before any step can fail, and keep
    // readers (resume happens strictly before this barrier on later
    // incarnations) away from the writer.
    if (incarnation == 0 && rank == 0) {
      save_training_checkpoint(checkpoint_path(opts), *ctx.task,
                               *ctx.optimizer, /*epoch=*/0);
    }
    comm.barrier();
  }

  std::optional<obs::health::HealthMonitor> monitor;
  if (opts.health.enabled) {
    obs::health::HealthOptions hopts = opts.health;
    // One crash-dump recorder per process; rank 0 owns it.
    hopts.arm_crash_handler = opts.health.arm_crash_handler && rank == 0;
    monitor.emplace(hopts, *ctx.task, *ctx.optimizer);
    monitor->set_rank(rank);
  }

  std::optional<comm::coll::BucketAllreduce> engine;
  if (opts.use_buckets) {
    engine.emplace(comm, params, opts.coll);
  }

  double local_samples = 0.0;
  std::int64_t local_steps = 0;      // applied optimizer steps
  std::int64_t attempted_steps = 0;  // batches seen; advances on skip too

  for (std::int64_t epoch = epoch_start; epoch < opts.max_epochs; ++epoch) {
    ctx.task->train(true);
    ctx.train_loader->set_epoch(epoch);

    // Lockstep batch count: every rank runs the minimum shard length.
    const double nb_min = -comm.allreduce_scalar_max(
        -static_cast<double>(ctx.train_loader->num_batches()));
    const std::int64_t num_batches = static_cast<std::int64_t>(nb_min);

    tasks::MetricAccumulator train_acc;
    obs::Histogram& allreduce_us =
        obs::MetricsRegistry::global().histogram("ddp.allreduce_us");
    for (std::int64_t b = 0; b < num_batches; ++b) {
      data::Batch batch = ctx.train_loader->batch(b);
      ++attempted_steps;
      ctx.optimizer->zero_grad();
      tasks::TaskOutput out;
      {
        MATSCI_TRACE_SCOPE("ddp/forward");
        out = ctx.task->step(batch);
      }
      if (engine) {
        // Overlapped path: arm the engine, then run backward with the
        // readiness hook installed — buckets post their allreduce from
        // inside the backward walk as their last gradient finalizes.
        engine->begin_step();
        core::GradReadyHookGuard hook_guard(engine->hook());
        MATSCI_TRACE_SCOPE("ddp/backward");
        out.loss.backward();
      } else {
        MATSCI_TRACE_SCOPE("ddp/backward");
        out.loss.backward();
      }
      train_acc.add(out);
      local_samples += static_cast<double>(batch.num_graphs());

      // Pre-allreduce local gradient norm: param .grad buffers still
      // hold local gradients here — the bucketed engine averages in its
      // flat staging buffers and only scatters back in finish_step —
      // and after averaging every rank is identical, so per-rank
      // divergence is only visible now.
      double local_gn = 0.0;
      bool local_nonfinite = false;
      if (monitor) {
        local_gn = ctx.optimizer->grad_norm();
        local_nonfinite = !std::isfinite(local_gn);
      }

      {
        // The defining DDP collective: average gradients across ranks.
        // For the bucketed path this histogram records only the
        // *exposed* tail (most reduction time hides under backward);
        // the monolithic path stages flatten/allreduce/unflatten here.
        MATSCI_TRACE_SCOPE("ddp/allreduce");
        const obs::StopWatch watch;
        if (engine) {
          engine->finish_step();
        } else {
          std::vector<float> flat = flatten_grads(params);
          comm.allreduce_mean(flat);
          unflatten_grads(flat, params);
        }
        allreduce_us.observe(watch.elapsed_us());
      }

      // Health: every detector input below comes out of a collective
      // (or the already-allreduced gradients), so the anomaly set and
      // therefore the skip/abort decision is identical on all ranks.
      bool skip_step = false;
      if (monitor) {
        MATSCI_TRACE_SCOPE("ddp/health");
        const double loss_mean =
            comm.allreduce_scalar_sum(static_cast<double>(out.loss.item())) /
            static_cast<double>(comm.world_size());
        std::vector<obs::health::Anomaly> step_anomalies =
            monitor->on_step(attempted_steps, loss_mean);

        obs::health::CrossRankHealth cross;
        cross.reduced = true;
        cross.world_size = comm.world_size();
        const double finite_gn = local_nonfinite ? 0.0 : local_gn;
        cross.grad_norm_mean = comm.allreduce_scalar_sum(finite_gn) /
                               static_cast<double>(comm.world_size());
        cross.grad_norm_max = comm.allreduce_scalar_max(finite_gn);
        cross.grad_norm_min = comm.allreduce_scalar_min(finite_gn);
        cross.nonfinite_ranks = static_cast<std::int64_t>(
            comm.allreduce_scalar_sum(local_nonfinite ? 1.0 : 0.0) + 0.5);
        // Offending rank: a non-finite rank if any exists, else the
        // owner of the max norm (ties resolve to the highest rank;
        // identical on all ranks by allreduce). Scalar collectives
        // round through float, so the ownership test must compare in
        // float space or the owner misses its own maximum.
        const double nf_offender = comm.allreduce_scalar_max(
            local_nonfinite ? static_cast<double>(rank) : -1.0);
        const bool owns_max = static_cast<float>(finite_gn) >=
                              static_cast<float>(cross.grad_norm_max);
        const double max_offender = comm.allreduce_scalar_max(
            owns_max ? static_cast<double>(rank) : -1.0);
        const double offender =
            cross.nonfinite_ranks > 0 ? nf_offender : max_offender;
        const std::vector<obs::health::Anomaly> cross_anomalies =
            monitor->on_cross_rank(cross, static_cast<std::int64_t>(offender));
        step_anomalies.insert(step_anomalies.end(), cross_anomalies.begin(),
                              cross_anomalies.end());

        if (!step_anomalies.empty()) {
          if (rank == 0) {
            {
              std::lock_guard<std::mutex> lock(sh.result_mu);
              for (const obs::health::Anomaly& a : step_anomalies) {
                sh.result.anomalies.push_back(a);
              }
            }
            if (opts.on_anomaly) {
              for (const obs::health::Anomaly& a : step_anomalies) {
                opts.on_anomaly(a);
              }
            }
          }
          if (opts.health.policy == obs::health::AnomalyPolicy::kAbort) {
            std::string bundle;
            if (rank == 0) {
              bundle = monitor->dump_bundle("abort", step_anomalies);
            }
            MATSCI_CHECK(false,
                         "ddp health abort at step "
                             << attempted_steps << " on rank " << rank << " ("
                             << obs::health::to_string(
                                    step_anomalies.front().type)
                             << ")"
                             << (bundle.empty()
                                     ? std::string()
                                     : "; flight bundle: " + bundle));
          }
          if (opts.health.dump_on_anomaly && rank == 0) {
            monitor->dump_bundle("anomaly", step_anomalies);
          }
          skip_step =
              opts.health.policy == obs::health::AnomalyPolicy::kSkipStep;
        }
      }

      if (skip_step) {
        if (rank == 0) {
          std::lock_guard<std::mutex> lock(sh.result_mu);
          ++sh.result.skipped_steps;
        }
        continue;
      }

      {
        MATSCI_TRACE_SCOPE("ddp/optimizer");
        if (opts.grad_clip > 0.0) {
          ctx.optimizer->clip_grad_norm(opts.grad_clip);
        }
        ctx.optimizer->step();
      }
      ++local_steps;
    }

    // Mean training loss across ranks for the epoch record.
    const double loss_mean =
        comm.allreduce_scalar_sum(train_acc.has("loss")
                                      ? train_acc.mean("loss")
                                      : 0.0) /
        static_cast<double>(comm.world_size());

    if (rank == 0) {
      EpochStats stats;
      stats.epoch = epoch;
      stats.lr = ctx.optimizer->lr();
      stats.train = train_acc.means();
      stats.train["loss"] = loss_mean;
      if (ctx.val_loader) {
        stats.val = Trainer::evaluate(*ctx.task, *ctx.val_loader);
      }
      if (opts.verbose) {
        std::printf("[ddp %lld ranks] epoch %3lld  train_loss %.5f\n",
                    static_cast<long long>(comm.world_size()),
                    static_cast<long long>(epoch), loss_mean);
      }
      std::lock_guard<std::mutex> lock(sh.result_mu);
      sh.result.epochs.push_back(std::move(stats));
    }
    if (opts.elastic && rank == 0) {
      // Snapshot the completed epoch; the peers are still pre-barrier,
      // so nobody can be reading the file while it is written.
      save_training_checkpoint(checkpoint_path(opts), *ctx.task,
                               *ctx.optimizer, epoch + 1);
    }
    if (ctx.scheduler) {
      ctx.scheduler->epoch_step();
    }
    comm.barrier();
  }

  const double all_samples = comm.allreduce_scalar_sum(local_samples);
  if (rank == 0) {
    std::lock_guard<std::mutex> lock(sh.result_mu);
    sh.result.total_samples = all_samples;
    sh.result.total_steps = local_steps;
    sh.result.final_world = comm.world_size();
    if (engine) {
      sh.result.comm_bytes += engine->totals().bytes;
      sh.result.comm_compressed_bytes += engine->totals().compressed_bytes;
      sh.result.mean_overlap_fraction =
          engine->totals().mean_overlap_fraction();
    }
  }
}

}  // namespace

DDPResult DDPTrainer::fit(const Factory& factory, const DDPOptions& opts) {
  MATSCI_CHECK(opts.world_size >= 1, "world_size must be >= 1");
  MATSCI_CHECK(opts.max_epochs >= 1, "max_epochs must be >= 1");
  MATSCI_CHECK(!opts.elastic || !opts.checkpoint_dir.empty(),
               "elastic DDP requires checkpoint_dir");

  DDPResult result;
  std::mutex result_mu;
  const Shared sh{result, result_mu, opts, factory};
  const auto t0 = std::chrono::steady_clock::now();

  comm::RunRanksOptions ropts;
  ropts.fault_hook = opts.fault_hook;
  comm::run_ranks(
      opts.world_size,
      [&](comm::Communicator& boot) {
        comm::Communicator cur = boot;
        std::int64_t incarnation = 0;
        while (true) {
          try {
            train_incarnation(cur, incarnation, sh);
            break;
          } catch (const comm::RankFailedError&) {
            if (!opts.elastic) throw;
            // A peer died. All survivors funnel here (every collective
            // on the old group throws), agree on a resized group, and
            // retry from the last checkpoint.
            const std::vector<std::int64_t> dead =
                cur.group()->failed_ranks();
            const comm::ProcessGroup::Rebuilt rb =
                cur.group()->rebuild_survivors(cur.rank());
            cur = comm::Communicator(rb.group, rb.rank);
            ++incarnation;
            if (cur.rank() == 0) {
              obs::health::Anomaly a;
              a.type = obs::health::AnomalyType::kRankLost;
              a.rank = dead.empty() ? -1 : dead.front();
              a.value = static_cast<double>(dead.size());
              a.detail = "ddp rank lost; survivors rebuilt world=" +
                         std::to_string(cur.world_size()) +
                         " and resumed from checkpoint";
              {
                std::lock_guard<std::mutex> lock(result_mu);
                ++result.recoveries;
                for (std::int64_t r : dead) result.lost_ranks.push_back(r);
                result.anomalies.push_back(a);
              }
              if (opts.on_anomaly) opts.on_anomaly(a);
            }
          }
        }
      },
      ropts);

  result.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  if (result.final_world == 0) result.final_world = opts.world_size;
  return result;
}

}  // namespace matsci::train
