#include "nn/mlp.hpp"

#include "core/macros.hpp"
#include "core/ops.hpp"

namespace matsci::nn {

MLP::MLP(const std::vector<std::int64_t>& dims, Act act, core::RngEngine& rng,
         bool activate_last)
    : act_(act), activate_last_(activate_last) {
  MATSCI_CHECK(dims.size() >= 2, "MLP needs at least {in, out} dims");
  in_features_ = dims.front();
  out_features_ = dims.back();
  for (std::size_t i = 0; i + 1 < dims.size(); ++i) {
    auto layer = std::make_shared<Linear>(dims[i], dims[i + 1], rng);
    layers_.push_back(
        register_module("layer" + std::to_string(i), std::move(layer)));
  }
}

core::Tensor MLP::forward(const core::Tensor& x) const {
  core::Tensor h = x;
  for (std::size_t i = 0; i < layers_.size(); ++i) {
    h = layers_[i]->forward(h);
    if (i + 1 < layers_.size() || activate_last_) {
      h = apply_activation(act_, h);
    }
  }
  return h;
}

ResidualMLPBlock::ResidualMLPBlock(std::int64_t dim, Act act, float dropout_p,
                                   core::RngEngine& rng)
    : dim_(dim), act_(act) {
  linear_ = register_module("linear", std::make_shared<Linear>(dim, dim, rng));
  norm_ = register_module("norm", std::make_shared<RMSNorm>(dim));
  dropout_ = register_module("dropout",
                             std::make_shared<Dropout>(dropout_p, rng));
}

core::Tensor ResidualMLPBlock::forward(const core::Tensor& x) const {
  core::Tensor h = linear_->forward(x);
  h = apply_activation(act_, h);
  h = norm_->forward(h);
  h = dropout_->forward(h);
  return core::add(x, h);
}

}  // namespace matsci::nn
