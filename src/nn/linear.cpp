#include "nn/linear.hpp"

#include "core/macros.hpp"
#include "core/ops.hpp"
#include "nn/init.hpp"

namespace matsci::nn {

Linear::Linear(std::int64_t in_features, std::int64_t out_features,
               core::RngEngine& rng, bool bias)
    : in_features_(in_features), out_features_(out_features) {
  MATSCI_CHECK(in_features > 0 && out_features > 0,
               "Linear(" << in_features << ", " << out_features << ")");
  core::Tensor w = core::Tensor::empty({in_features, out_features});
  init::kaiming_uniform(w, in_features, rng);
  weight_ = register_parameter("weight", std::move(w));
  if (bias) {
    core::Tensor b = core::Tensor::empty({out_features});
    init::kaiming_uniform(b, in_features, rng);
    bias_ = register_parameter("bias", std::move(b));
  }
}

core::Tensor Linear::forward(const core::Tensor& x) const {
  MATSCI_CHECK(x.defined() && x.dim() == 2 && x.size(1) == in_features_,
               "Linear(" << in_features_ << " -> " << out_features_
                         << ") got input "
                         << core::shape_to_string(x.shape()));
  core::Tensor y = core::matmul(x, weight_);
  if (bias_.defined()) {
    y = core::add(y, bias_);
  }
  return y;
}

}  // namespace matsci::nn
