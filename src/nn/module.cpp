#include "nn/module.hpp"

#include "core/macros.hpp"

namespace matsci::nn {

core::Tensor Module::register_parameter(std::string name, core::Tensor tensor) {
  MATSCI_CHECK(tensor.defined(), "register_parameter('" << name
                                                        << "'): undefined tensor");
  for (const auto& [existing, _] : params_) {
    MATSCI_CHECK(existing != name,
                 "duplicate parameter name '" << name << "'");
  }
  tensor.set_requires_grad(true);
  params_.emplace_back(std::move(name), tensor);
  return params_.back().second;
}

void Module::collect(const std::string& prefix,
                     std::vector<std::pair<std::string, core::Tensor>>& out)
    const {
  for (const auto& [name, t] : params_) {
    out.emplace_back(prefix.empty() ? name : prefix + "." + name, t);
  }
  for (const auto& [name, child] : children_) {
    child->collect(prefix.empty() ? name : prefix + "." + name, out);
  }
}

std::vector<core::Tensor> Module::parameters() const {
  std::vector<std::pair<std::string, core::Tensor>> named;
  collect("", named);
  std::vector<core::Tensor> out;
  out.reserve(named.size());
  for (auto& [_, t] : named) out.push_back(t);
  return out;
}

std::vector<std::pair<std::string, core::Tensor>> Module::named_parameters()
    const {
  std::vector<std::pair<std::string, core::Tensor>> out;
  collect("", out);
  return out;
}

std::int64_t Module::num_parameters() const {
  std::int64_t total = 0;
  for (const core::Tensor& t : parameters()) total += t.numel();
  return total;
}

void Module::train(bool mode) {
  training_ = mode;
  for (auto& [_, child] : children_) child->train(mode);
}

void Module::zero_grad() {
  for (core::Tensor t : parameters()) t.zero_grad();
}

void Module::copy_parameters_from(const Module& other) {
  auto dst = named_parameters();
  auto src = other.named_parameters();
  MATSCI_CHECK(dst.size() == src.size(),
               "copy_parameters_from: parameter count mismatch "
                   << dst.size() << " vs " << src.size());
  for (std::size_t i = 0; i < dst.size(); ++i) {
    MATSCI_CHECK(dst[i].first == src[i].first,
                 "copy_parameters_from: name mismatch at index "
                     << i << ": '" << dst[i].first << "' vs '" << src[i].first
                     << "'");
    dst[i].second.copy_(src[i].second);
  }
}

}  // namespace matsci::nn
