#include "nn/norm.hpp"

#include "core/macros.hpp"
#include "core/ops.hpp"

namespace matsci::nn {

RMSNorm::RMSNorm(std::int64_t dim, float eps) : dim_(dim), eps_(eps) {
  MATSCI_CHECK(dim > 0, "RMSNorm dim must be positive");
  weight_ = register_parameter("weight", core::Tensor::ones({dim}));
}

core::Tensor RMSNorm::forward(const core::Tensor& x) const {
  MATSCI_CHECK(x.defined() && x.dim() == 2 && x.size(1) == dim_,
               "RMSNorm(" << dim_ << ") got "
                          << core::shape_to_string(x.shape()));
  core::Tensor ms = core::mean_dim(core::square(x), 1, /*keepdim=*/true);
  core::Tensor inv = core::rsqrt(core::add_scalar(ms, eps_));
  return core::mul(core::mul(x, inv), weight_);
}

LayerNorm::LayerNorm(std::int64_t dim, float eps) : dim_(dim), eps_(eps) {
  MATSCI_CHECK(dim > 0, "LayerNorm dim must be positive");
  weight_ = register_parameter("weight", core::Tensor::ones({dim}));
  bias_ = register_parameter("bias", core::Tensor::zeros({dim}));
}

core::Tensor LayerNorm::forward(const core::Tensor& x) const {
  MATSCI_CHECK(x.defined() && x.dim() == 2 && x.size(1) == dim_,
               "LayerNorm(" << dim_ << ") got "
                            << core::shape_to_string(x.shape()));
  core::Tensor mu = core::mean_dim(x, 1, /*keepdim=*/true);
  core::Tensor centered = core::sub(x, mu);
  core::Tensor var = core::mean_dim(core::square(centered), 1, true);
  core::Tensor inv = core::rsqrt(core::add_scalar(var, eps_));
  return core::add(core::mul(core::mul(centered, inv), weight_), bias_);
}

}  // namespace matsci::nn
