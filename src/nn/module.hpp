#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "core/tensor.hpp"

namespace matsci::nn {

/// Base class for neural network modules (the PyTorch `nn.Module`
/// analogue). A module owns named parameters and named child modules;
/// `parameters()` walks the tree in registration order, which is the
/// canonical ordering used by optimizers, DDP gradient buckets, and
/// checkpoint serialization.
///
/// Modules are non-copyable; replicate with `copy_parameters_from` onto a
/// freshly constructed instance (used by the thread-DDP trainer).
class Module {
 public:
  virtual ~Module() = default;
  Module(const Module&) = delete;
  Module& operator=(const Module&) = delete;

  /// All parameters of this module and its descendants, registration order.
  std::vector<core::Tensor> parameters() const;

  /// Dotted-path named parameters, e.g. "encoder.layers.0.weight".
  std::vector<std::pair<std::string, core::Tensor>> named_parameters() const;

  /// Total scalar parameter count.
  std::int64_t num_parameters() const;

  /// Set training / eval mode on the whole subtree: recurses into every
  /// registered child, so a Dropout nested arbitrarily deep (e.g. inside
  /// an output head's residual blocks) sees the flag flip.
  void train(bool mode = true);
  /// Eval mode for the whole subtree — stochastic layers (Dropout) become
  /// deterministic no-ops. Equivalent to train(false).
  void eval() { train(false); }
  bool is_training() const { return training_; }

  /// Zero all parameter gradients in the subtree.
  void zero_grad();

  /// Copy parameter *values* from a structurally identical module.
  void copy_parameters_from(const Module& other);

 protected:
  Module() = default;

  /// Register a leaf parameter; enables requires_grad and returns it.
  core::Tensor register_parameter(std::string name, core::Tensor tensor);

  /// Register a child module; returns the same pointer for member init.
  template <typename M>
  std::shared_ptr<M> register_module(std::string name, std::shared_ptr<M> m) {
    children_.emplace_back(std::move(name),
                           std::static_pointer_cast<Module>(m));
    return m;
  }

 private:
  void collect(const std::string& prefix,
               std::vector<std::pair<std::string, core::Tensor>>& out) const;

  std::vector<std::pair<std::string, core::Tensor>> params_;
  std::vector<std::pair<std::string, std::shared_ptr<Module>>> children_;
  bool training_ = true;
};

}  // namespace matsci::nn
