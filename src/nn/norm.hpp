#pragma once

#include "nn/module.hpp"

namespace matsci::nn {

/// Root-mean-square LayerNorm (Zhang & Sennrich 2019):
///   y = x / sqrt(mean(x², dim=1) + eps) * weight
/// The paper prefers RMSNorm over BatchNorm in output heads because
/// multi-task/multi-dataset batches are irregular.
class RMSNorm : public Module {
 public:
  explicit RMSNorm(std::int64_t dim, float eps = 1e-6f);
  core::Tensor forward(const core::Tensor& x) const;
  std::int64_t dim() const { return dim_; }

 private:
  std::int64_t dim_;
  float eps_;
  core::Tensor weight_;
};

/// Standard LayerNorm over the feature dimension of an [N, D] tensor.
class LayerNorm : public Module {
 public:
  explicit LayerNorm(std::int64_t dim, float eps = 1e-5f);
  core::Tensor forward(const core::Tensor& x) const;
  std::int64_t dim() const { return dim_; }

 private:
  std::int64_t dim_;
  float eps_;
  core::Tensor weight_;
  core::Tensor bias_;
};

}  // namespace matsci::nn
