#include "nn/activations.hpp"

#include "core/macros.hpp"
#include "core/ops.hpp"

namespace matsci::nn {

core::Tensor apply_activation(Act act, const core::Tensor& x) {
  switch (act) {
    case Act::kIdentity: return x;
    case Act::kReLU: return core::relu(x);
    case Act::kSiLU: return core::silu(x);
    case Act::kSELU: return core::selu(x);
    case Act::kGELU: return core::gelu(x);
    case Act::kTanh: return core::tanh(x);
    case Act::kSigmoid: return core::sigmoid(x);
    case Act::kSoftplus: return core::softplus(x);
  }
  MATSCI_CHECK(false, "unknown activation");
  return x;  // unreachable
}

Act parse_activation(const std::string& name) {
  if (name == "identity" || name == "none") return Act::kIdentity;
  if (name == "relu") return Act::kReLU;
  if (name == "silu" || name == "swish") return Act::kSiLU;
  if (name == "selu") return Act::kSELU;
  if (name == "gelu") return Act::kGELU;
  if (name == "tanh") return Act::kTanh;
  if (name == "sigmoid") return Act::kSigmoid;
  if (name == "softplus") return Act::kSoftplus;
  MATSCI_CHECK(false, "unknown activation name '" << name << "'");
  return Act::kIdentity;  // unreachable
}

std::string activation_name(Act act) {
  switch (act) {
    case Act::kIdentity: return "identity";
    case Act::kReLU: return "relu";
    case Act::kSiLU: return "silu";
    case Act::kSELU: return "selu";
    case Act::kGELU: return "gelu";
    case Act::kTanh: return "tanh";
    case Act::kSigmoid: return "sigmoid";
    case Act::kSoftplus: return "softplus";
  }
  return "unknown";
}

}  // namespace matsci::nn
