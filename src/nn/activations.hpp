#pragma once

#include <string>

#include "nn/module.hpp"

namespace matsci::nn {

/// Activation kinds supported across the toolkit. The paper uses SiLU
/// globally in the encoder and SELU inside output heads.
enum class Act { kIdentity, kReLU, kSiLU, kSELU, kGELU, kTanh, kSigmoid, kSoftplus };

/// Apply an activation functionally (differentiable).
core::Tensor apply_activation(Act act, const core::Tensor& x);

/// Parse "silu", "selu", "relu", ... (case-sensitive lowercase).
Act parse_activation(const std::string& name);
std::string activation_name(Act act);

/// Module wrapper for composing activations inside Sequential-like stacks.
class Activation : public Module {
 public:
  explicit Activation(Act act) : act_(act) {}
  core::Tensor forward(const core::Tensor& x) const {
    return apply_activation(act_, x);
  }
  Act kind() const { return act_; }

 private:
  Act act_;
};

}  // namespace matsci::nn
