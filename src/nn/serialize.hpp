#pragma once

#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>

#include "core/tensor.hpp"
#include "nn/module.hpp"

namespace matsci::nn {

/// A name → tensor snapshot, the unit of checkpointing. Tensors in the
/// dict are deep copies detached from any module.
using StateDict = std::map<std::string, core::Tensor>;

/// Snapshot all parameters of a module (values copied).
StateDict state_dict(const Module& m);

/// Write a state dict in the toolkit's binary checkpoint format
/// ("MSCK" magic, versioned, little-endian fp32 payloads).
void save_state_dict(const StateDict& sd, const std::string& path);
void write_state_dict(const StateDict& sd, std::ostream& os);

/// Read a checkpoint file back into a state dict.
StateDict load_state_dict_file(const std::string& path);
StateDict read_state_dict(std::istream& is);

struct LoadReport {
  std::int64_t loaded = 0;    ///< parameters copied
  std::int64_t missing = 0;   ///< module params absent from the dict
  std::int64_t skipped = 0;   ///< dict entries with no matching module param
};

/// Copy values from `sd` into matching parameters of `m` by name.
/// With strict = true, any missing/extra/shape-mismatched entry throws;
/// otherwise mismatches are skipped and tallied (used to fine-tune an
/// encoder while heads start fresh). `prefix` filters + strips a dotted
/// prefix from dict keys before matching, e.g. "encoder".
LoadReport load_into_module(Module& m, const StateDict& sd, bool strict = true,
                            const std::string& prefix = "");

}  // namespace matsci::nn
