#pragma once

#include "nn/module.hpp"

namespace matsci::nn {

/// Inverted dropout module. Holds its own forked RNG stream so that a
/// fixed construction seed gives reproducible masks; the mask sequence
/// advances only in training mode.
class Dropout : public Module {
 public:
  Dropout(float p, core::RngEngine& rng);
  core::Tensor forward(const core::Tensor& x) const;
  float p() const { return p_; }

 private:
  float p_;
  mutable core::RngEngine rng_;
};

}  // namespace matsci::nn
