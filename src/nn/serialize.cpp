#include "nn/serialize.hpp"

#include <fstream>

#include "core/macros.hpp"

namespace matsci::nn {

namespace {

constexpr char kMagic[4] = {'M', 'S', 'C', 'K'};
constexpr std::uint32_t kVersion = 1;

template <typename T>
void write_pod(std::ostream& os, const T& v) {
  os.write(reinterpret_cast<const char*>(&v), sizeof(T));
}

template <typename T>
T read_pod(std::istream& is) {
  T v{};
  is.read(reinterpret_cast<char*>(&v), sizeof(T));
  MATSCI_CHECK(static_cast<bool>(is), "checkpoint stream truncated");
  return v;
}

}  // namespace

StateDict state_dict(const Module& m) {
  StateDict sd;
  for (const auto& [name, t] : m.named_parameters()) {
    sd[name] = t.detach();
  }
  return sd;
}

void write_state_dict(const StateDict& sd, std::ostream& os) {
  os.write(kMagic, 4);
  write_pod(os, kVersion);
  write_pod(os, static_cast<std::uint64_t>(sd.size()));
  for (const auto& [name, t] : sd) {
    write_pod(os, static_cast<std::uint64_t>(name.size()));
    os.write(name.data(), static_cast<std::streamsize>(name.size()));
    const auto& shape = t.shape();
    write_pod(os, static_cast<std::uint32_t>(shape.size()));
    for (const std::int64_t d : shape) write_pod(os, d);
    os.write(reinterpret_cast<const char*>(t.data()),
             static_cast<std::streamsize>(t.numel() * sizeof(float)));
  }
  MATSCI_CHECK(static_cast<bool>(os), "failed writing checkpoint stream");
}

void save_state_dict(const StateDict& sd, const std::string& path) {
  std::ofstream os(path, std::ios::binary);
  MATSCI_CHECK(os.is_open(), "cannot open checkpoint for write: " << path);
  write_state_dict(sd, os);
}

StateDict read_state_dict(std::istream& is) {
  char magic[4] = {};
  is.read(magic, 4);
  MATSCI_CHECK(static_cast<bool>(is) && std::equal(magic, magic + 4, kMagic),
               "not a MatSci checkpoint (bad magic)");
  const auto version = read_pod<std::uint32_t>(is);
  MATSCI_CHECK(version == kVersion,
               "unsupported checkpoint version " << version);
  const auto count = read_pod<std::uint64_t>(is);
  StateDict sd;
  for (std::uint64_t i = 0; i < count; ++i) {
    const auto name_len = read_pod<std::uint64_t>(is);
    std::string name(name_len, '\0');
    is.read(name.data(), static_cast<std::streamsize>(name_len));
    const auto rank = read_pod<std::uint32_t>(is);
    core::Shape shape(rank);
    for (auto& d : shape) d = read_pod<std::int64_t>(is);
    const std::int64_t numel = core::shape_numel(shape);
    std::vector<float> data(static_cast<std::size_t>(numel));
    is.read(reinterpret_cast<char*>(data.data()),
            static_cast<std::streamsize>(data.size() * sizeof(float)));
    MATSCI_CHECK(static_cast<bool>(is),
                 "checkpoint truncated while reading '" << name << "'");
    sd[name] = core::Tensor::from_vector(std::move(data), std::move(shape));
  }
  return sd;
}

StateDict load_state_dict_file(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  MATSCI_CHECK(is.is_open(), "cannot open checkpoint: " << path);
  return read_state_dict(is);
}

LoadReport load_into_module(Module& m, const StateDict& sd, bool strict,
                            const std::string& prefix) {
  // Re-key the dict if a prefix filter is requested.
  StateDict filtered;
  const StateDict* src = &sd;
  if (!prefix.empty()) {
    const std::string dotted = prefix + ".";
    for (const auto& [name, t] : sd) {
      if (name.rfind(dotted, 0) == 0) {
        filtered[name.substr(dotted.size())] = t;
      }
    }
    src = &filtered;
  }

  LoadReport report;
  auto params = m.named_parameters();
  std::size_t matched_keys = 0;
  for (auto& [name, t] : params) {
    auto it = src->find(name);
    if (it == src->end()) {
      MATSCI_CHECK(!strict, "checkpoint missing parameter '" << name << "'");
      ++report.missing;
      continue;
    }
    const core::Tensor& loaded = it->second;
    if (!core::same_shape(loaded.shape(), t.shape())) {
      MATSCI_CHECK(!strict, "shape mismatch for '"
                                << name << "': checkpoint "
                                << core::shape_to_string(loaded.shape())
                                << " vs module "
                                << core::shape_to_string(t.shape()));
      ++report.skipped;
      continue;
    }
    t.copy_(loaded);
    ++report.loaded;
    ++matched_keys;
  }
  const std::int64_t extra =
      static_cast<std::int64_t>(src->size()) -
      static_cast<std::int64_t>(matched_keys);
  MATSCI_CHECK(!strict || extra == 0,
               "checkpoint has " << extra << " parameters with no match");
  report.skipped += extra;
  return report;
}

}  // namespace matsci::nn
