#pragma once

#include "core/random.hpp"
#include "core/tensor.hpp"

/// Parameter initialization schemes (fan-based, reproducible via explicit
/// RngEngine). These write in place into existing tensors.
namespace matsci::nn::init {

/// U(-1/sqrt(fan_in), 1/sqrt(fan_in)) — the PyTorch nn.Linear default.
void kaiming_uniform(core::Tensor& t, std::int64_t fan_in,
                     core::RngEngine& rng);

/// Glorot/Xavier uniform with gain 1.
void xavier_uniform(core::Tensor& t, std::int64_t fan_in, std::int64_t fan_out,
                    core::RngEngine& rng);

/// N(mean, stddev²).
void normal(core::Tensor& t, float mean, float stddev, core::RngEngine& rng);

void zeros(core::Tensor& t);
void constant(core::Tensor& t, float value);

}  // namespace matsci::nn::init
