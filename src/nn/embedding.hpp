#pragma once

#include <vector>

#include "nn/module.hpp"

namespace matsci::nn {

/// Learnable lookup table [num_embeddings, dim]. In the toolkit this maps
/// atomic numbers Z to initial node features (the paper's "atom
/// embeddings from learnable embedding tables").
class Embedding : public Module {
 public:
  Embedding(std::int64_t num_embeddings, std::int64_t dim,
            core::RngEngine& rng);

  /// Gather rows for integer ids (each in [0, num_embeddings)).
  core::Tensor forward(const std::vector<std::int64_t>& ids) const;

  std::int64_t num_embeddings() const { return num_embeddings_; }
  std::int64_t dim() const { return dim_; }
  core::Tensor table() const { return table_; }

 private:
  std::int64_t num_embeddings_;
  std::int64_t dim_;
  core::Tensor table_;
};

}  // namespace matsci::nn
