#include "nn/dropout.hpp"

#include "core/macros.hpp"
#include "core/ops.hpp"

namespace matsci::nn {

Dropout::Dropout(float p, core::RngEngine& rng)
    : p_(p), rng_(rng.fork(0x9D0Full)) {
  MATSCI_CHECK(p >= 0.0f && p < 1.0f, "Dropout p=" << p);
}

core::Tensor Dropout::forward(const core::Tensor& x) const {
  return core::dropout(x, p_, is_training(), rng_);
}

}  // namespace matsci::nn
