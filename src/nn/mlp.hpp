#pragma once

#include <memory>
#include <vector>

#include "nn/activations.hpp"
#include "nn/dropout.hpp"
#include "nn/linear.hpp"
#include "nn/norm.hpp"

namespace matsci::nn {

/// Plain multilayer perceptron: Linear -> act -> ... -> Linear, with the
/// activation applied between layers (and optionally after the last).
class MLP : public Module {
 public:
  /// `dims` holds layer widths, e.g. {in, hidden, out}; needs >= 2 entries.
  MLP(const std::vector<std::int64_t>& dims, Act act, core::RngEngine& rng,
      bool activate_last = false);

  core::Tensor forward(const core::Tensor& x) const;

  std::int64_t in_features() const { return in_features_; }
  std::int64_t out_features() const { return out_features_; }

 private:
  std::vector<std::shared_ptr<Linear>> layers_;
  Act act_;
  bool activate_last_;
  std::int64_t in_features_;
  std::int64_t out_features_;
};

/// The paper's output-head building block (Appendix A):
///   y = x + Dropout(Norm(act(Linear(x))))
/// with SELU activation and RMSNorm by default. Width-preserving.
class ResidualMLPBlock : public Module {
 public:
  ResidualMLPBlock(std::int64_t dim, Act act, float dropout_p,
                   core::RngEngine& rng);

  core::Tensor forward(const core::Tensor& x) const;
  std::int64_t dim() const { return dim_; }

 private:
  std::int64_t dim_;
  std::shared_ptr<Linear> linear_;
  Act act_;
  std::shared_ptr<RMSNorm> norm_;
  std::shared_ptr<Dropout> dropout_;
};

}  // namespace matsci::nn
