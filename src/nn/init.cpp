#include "nn/init.hpp"

#include <algorithm>
#include <cmath>

#include "core/macros.hpp"

namespace matsci::nn::init {

void kaiming_uniform(core::Tensor& t, std::int64_t fan_in,
                     core::RngEngine& rng) {
  MATSCI_CHECK(fan_in > 0, "kaiming_uniform: fan_in must be positive");
  const float bound = 1.0f / std::sqrt(static_cast<float>(fan_in));
  for (float& v : t.span()) {
    v = static_cast<float>(rng.uniform(-bound, bound));
  }
}

void xavier_uniform(core::Tensor& t, std::int64_t fan_in, std::int64_t fan_out,
                    core::RngEngine& rng) {
  MATSCI_CHECK(fan_in > 0 && fan_out > 0,
               "xavier_uniform: fans must be positive");
  const float bound =
      std::sqrt(6.0f / static_cast<float>(fan_in + fan_out));
  for (float& v : t.span()) {
    v = static_cast<float>(rng.uniform(-bound, bound));
  }
}

void normal(core::Tensor& t, float mean, float stddev, core::RngEngine& rng) {
  for (float& v : t.span()) {
    v = static_cast<float>(rng.normal(mean, stddev));
  }
}

void zeros(core::Tensor& t) { constant(t, 0.0f); }

void constant(core::Tensor& t, float value) {
  std::fill(t.span().begin(), t.span().end(), value);
}

}  // namespace matsci::nn::init
