#pragma once

#include "nn/module.hpp"

namespace matsci::nn {

/// Affine map y = x W + b with W stored [in_features, out_features]
/// (row-major, so forward needs no transpose).
class Linear : public Module {
 public:
  Linear(std::int64_t in_features, std::int64_t out_features,
         core::RngEngine& rng, bool bias = true);

  core::Tensor forward(const core::Tensor& x) const;

  std::int64_t in_features() const { return in_features_; }
  std::int64_t out_features() const { return out_features_; }
  core::Tensor weight() const { return weight_; }
  core::Tensor bias() const { return bias_; }

 private:
  std::int64_t in_features_;
  std::int64_t out_features_;
  core::Tensor weight_;
  core::Tensor bias_;  // undefined when bias = false
};

}  // namespace matsci::nn
