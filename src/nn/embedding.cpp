#include "nn/embedding.hpp"

#include "core/graph_ops.hpp"
#include "core/macros.hpp"
#include "nn/init.hpp"

namespace matsci::nn {

Embedding::Embedding(std::int64_t num_embeddings, std::int64_t dim,
                     core::RngEngine& rng)
    : num_embeddings_(num_embeddings), dim_(dim) {
  MATSCI_CHECK(num_embeddings > 0 && dim > 0,
               "Embedding(" << num_embeddings << ", " << dim << ")");
  core::Tensor t = core::Tensor::empty({num_embeddings, dim});
  init::normal(t, 0.0f, 1.0f, rng);
  table_ = register_parameter("weight", std::move(t));
}

core::Tensor Embedding::forward(const std::vector<std::int64_t>& ids) const {
  return core::gather_rows(table_, ids);
}

}  // namespace matsci::nn
