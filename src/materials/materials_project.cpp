#include "materials/materials_project.hpp"

#include "core/macros.hpp"
#include "materials/elements.hpp"

namespace matsci::materials {

const std::vector<std::int64_t>& MaterialsProjectDataset::palette() {
  // Broad chemistry: alkali/alkaline-earth, 3d/4d transition metals,
  // p-block anions — the diversity Fig. 4 credits Materials Project with.
  static const std::vector<std::int64_t> p = {
      1,  3,  4,  5,  6,  7,  8,  9,  11, 12, 13, 14, 15, 16, 17,
      19, 20, 22, 23, 24, 25, 26, 27, 28, 29, 30, 31, 32, 33, 34,
      35, 38, 39, 40, 41, 42, 47, 50, 51, 52, 53, 56, 74, 78, 79, 82};
  return p;
}

MaterialsProjectDataset::MaterialsProjectDataset(std::int64_t size,
                                                 std::uint64_t seed)
    // Fixed oracle seed shared by all dataset profiles: formation
    // energies must be mutually consistent for multi-dataset pooling.
    : size_(size), seed_(seed), oracle_(0x4D617453ull ^ 0x4D50ull) {
  MATSCI_CHECK(size >= 0, "dataset size must be non-negative");
  crystal_opts_.palette = palette();
  crystal_opts_.systems = {
      LatticeSystem::kCubic, LatticeSystem::kTetragonal,
      LatticeSystem::kOrthorhombic, LatticeSystem::kHexagonal,
      LatticeSystem::kTriclinic};
  crystal_opts_.min_species = 1;
  crystal_opts_.max_species = 4;
  crystal_opts_.min_seed_atoms = 1;
  crystal_opts_.max_seed_atoms = 4;
}

Structure MaterialsProjectDataset::structure_at(std::int64_t index) const {
  MATSCI_CHECK(index >= 0 && index < size_,
               "index " << index << " out of range [0, " << size_ << ")");
  core::RngEngine rng =
      core::RngEngine(seed_).fork(static_cast<std::uint64_t>(index));
  return random_crystal(rng, crystal_opts_);
}

data::StructureSample MaterialsProjectDataset::get(std::int64_t index) const {
  const Structure s = structure_at(index);
  data::StructureSample sample = s.to_sample();
  sample.scalar_targets["band_gap"] =
      static_cast<float>(oracle_.band_gap(s));
  sample.scalar_targets["efermi"] =
      static_cast<float>(oracle_.fermi_energy(s));
  sample.scalar_targets["formation_energy"] =
      static_cast<float>(oracle_.formation_energy(s));
  sample.class_targets["stability"] = oracle_.is_stable(s) ? 1 : 0;
  return sample;
}

}  // namespace matsci::materials
