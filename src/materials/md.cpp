#include "materials/md.hpp"

#include <cmath>

#include "core/macros.hpp"
#include "graph/radius_graph.hpp"
#include "materials/elements.hpp"

namespace matsci::materials {

namespace {
/// Boltzmann constant in eV/K and the velocity unit bridge:
/// with x in Å, t in fs, m in u: 1 u·Å²/fs² = 103.642696 eV.
constexpr double kBoltzmann = 8.617333e-5;
constexpr double kMassUnit = 103.642696;
}  // namespace

LJParams lj_parameters(std::int64_t z_i, std::int64_t z_j) {
  const ElementInfo& a = element(z_i);
  const ElementInfo& b = element(z_j);
  LJParams p;
  // Contact at the covalent-radius sum; σ = r_min / 2^(1/6).
  const double r_min = a.covalent_radius + b.covalent_radius;
  p.sigma = r_min / std::pow(2.0, 1.0 / 6.0);
  // Electronegativity contrast deepens the well (ionic-ish binding).
  p.epsilon =
      0.15 * (1.0 + 0.5 * std::fabs(a.electronegativity -
                                    b.electronegativity));
  return p;
}

double MDSimulator::energy_and_forces(const Structure& s, double cutoff,
                                      std::vector<core::Vec3>& forces) {
  const std::int64_t n = s.num_atoms();
  forces.assign(static_cast<std::size_t>(n), core::Vec3{});
  const auto cart = s.cartesian();
  const core::Mat3 inv = core::inverse3(s.lattice);
  const double cut2 = cutoff * cutoff;
  double energy = 0.0;

  for (std::int64_t i = 0; i < n; ++i) {
    for (std::int64_t j = i + 1; j < n; ++j) {
      const core::Vec3 d = graph::minimal_image_delta(
          cart[static_cast<std::size_t>(i)],
          cart[static_cast<std::size_t>(j)], s.lattice, inv);
      const double r2 = core::sq_norm(d);
      if (r2 > cut2 || r2 < 1e-12) continue;
      const LJParams p = lj_parameters(s.species[static_cast<std::size_t>(i)],
                                       s.species[static_cast<std::size_t>(j)]);
      const double sr2 = p.sigma * p.sigma / r2;
      const double sr6 = sr2 * sr2 * sr2;
      const double sr12 = sr6 * sr6;
      energy += 4.0 * p.epsilon * (sr12 - sr6);
      // f = -dU/dr · r̂; magnitude 24ε(2·sr12 - sr6)/r², along d (j - i).
      const double fmag = 24.0 * p.epsilon * (2.0 * sr12 - sr6) / r2;
      const core::Vec3 fij = d * fmag;  // force on j, reaction on i
      forces[static_cast<std::size_t>(j)] += fij;
      forces[static_cast<std::size_t>(i)] -= fij;
    }
  }
  return energy;
}

double LJForceProvider::energy_and_forces_over_pairs(
    const Structure& s, double cutoff, const std::vector<NeighborPair>& pairs,
    std::vector<core::Vec3>& forces) {
  const std::int64_t n = s.num_atoms();
  forces.assign(static_cast<std::size_t>(n), core::Vec3{});
  const auto cart = s.cartesian();
  const core::Mat3 inv = core::inverse3(s.lattice);
  const double cut2 = cutoff * cutoff;
  double energy = 0.0;

  // Per-pair arithmetic and (sorted) visit order match the scan above,
  // so the two paths produce bit-identical energies and forces.
  for (const NeighborPair& pr : pairs) {
    const std::size_t i = static_cast<std::size_t>(pr.i);
    const std::size_t j = static_cast<std::size_t>(pr.j);
    const core::Vec3 d =
        graph::minimal_image_delta(cart[i], cart[j], s.lattice, inv);
    const double r2 = core::sq_norm(d);
    if (r2 > cut2 || r2 < 1e-12) continue;
    const LJParams p = lj_parameters(s.species[i], s.species[j]);
    const double sr2 = p.sigma * p.sigma / r2;
    const double sr6 = sr2 * sr2 * sr2;
    const double sr12 = sr6 * sr6;
    energy += 4.0 * p.epsilon * (sr12 - sr6);
    const double fmag = 24.0 * p.epsilon * (2.0 * sr12 - sr6) / r2;
    const core::Vec3 fij = d * fmag;
    forces[j] += fij;
    forces[i] -= fij;
  }
  return energy;
}

LJForceProvider::LJForceProvider(double cutoff, NeighborListOptions nl)
    : cutoff_(cutoff), nlist_(cutoff, nl) {}

double LJForceProvider::energy_and_forces(const Structure& s,
                                          std::vector<core::Vec3>& forces) {
  nlist_.update(s);
  return energy_and_forces_over_pairs(s, cutoff_, nlist_.pairs(), forces);
}

MDSimulator::MDSimulator(Structure initial, MDOptions opts, std::uint64_t seed,
                         std::shared_ptr<ForceProvider> provider)
    : structure_(std::move(initial)),
      opts_(opts),
      seed_(seed),
      provider_(std::move(provider)) {
  structure_.validate();
  MATSCI_CHECK(opts.timestep > 0.0 && opts.steps >= 0 &&
                   opts.snapshot_every >= 1,
               "invalid MD options");
}

void MDSimulator::prepare() {
  if (prepared_) return;
  const std::int64_t n = structure_.num_atoms();
  core::RngEngine rng(seed_);

  // Maxwell-Boltzmann velocities (Å/fs).
  vel_.resize(static_cast<std::size_t>(n));
  mass_.resize(static_cast<std::size_t>(n));
  for (std::int64_t i = 0; i < n; ++i) {
    mass_[static_cast<std::size_t>(i)] =
        element(structure_.species[static_cast<std::size_t>(i)]).mass;
    const double sig = std::sqrt(kBoltzmann * opts_.temperature /
                                 (mass_[static_cast<std::size_t>(i)] *
                                  kMassUnit));
    vel_[static_cast<std::size_t>(i)] = {rng.normal(0.0, sig),
                                         rng.normal(0.0, sig),
                                         rng.normal(0.0, sig)};
  }
  // Remove center-of-mass drift.
  core::Vec3 p_total{};
  double m_total = 0.0;
  for (std::int64_t i = 0; i < n; ++i) {
    p_total += vel_[static_cast<std::size_t>(i)] *
               mass_[static_cast<std::size_t>(i)];
    m_total += mass_[static_cast<std::size_t>(i)];
  }
  for (std::int64_t i = 0; i < n; ++i) {
    vel_[static_cast<std::size_t>(i)] -= p_total * (1.0 / m_total);
  }
  prepared_ = true;
}

void MDSimulator::set_initial_forces(double potential_energy,
                                     std::vector<core::Vec3> forces) {
  MATSCI_CHECK(static_cast<std::int64_t>(forces.size()) ==
                   structure_.num_atoms(),
               "initial forces: wrong atom count");
  MATSCI_CHECK(!mid_step_, "set_initial_forces called mid-step");
  pot_ = potential_energy;
  forces_ = std::move(forces);
  have_forces_ = true;
}

double MDSimulator::kinetic_energy() const {
  double ke = 0.0;
  for (std::size_t i = 0; i < vel_.size(); ++i) {
    ke += 0.5 * mass_[i] * kMassUnit * core::sq_norm(vel_[i]);
  }
  return ke;
}

void MDSimulator::begin_step() {
  MATSCI_CHECK(prepared_ && have_forces_,
               "begin_step before prepare()/set_initial_forces()");
  MATSCI_CHECK(!mid_step_, "begin_step called twice without finish_step");
  MATSCI_CHECK(!done(), "trajectory already complete");
  const std::int64_t n = structure_.num_atoms();
  const double dt = opts_.timestep;
  auto cart = structure_.cartesian();
  // Velocity Verlet phase 1: half-kick, drift.
  for (std::int64_t i = 0; i < n; ++i) {
    const std::size_t u = static_cast<std::size_t>(i);
    const double inv_m = 1.0 / (mass_[u] * kMassUnit);
    vel_[u] += forces_[u] * (0.5 * dt * inv_m);
    cart[u] += vel_[u] * dt;
  }
  // Write positions back as wrapped fractional coordinates.
  const core::Mat3 inv_lat = core::inverse3(structure_.lattice);
  for (std::int64_t i = 0; i < n; ++i) {
    const std::size_t u = static_cast<std::size_t>(i);
    structure_.frac[u] = core::vecmat(cart[u], inv_lat);
  }
  structure_.wrap();
  mid_step_ = true;
}

void MDSimulator::finish_step(double potential_energy,
                              std::vector<core::Vec3> forces) {
  MATSCI_CHECK(mid_step_, "finish_step without begin_step");
  MATSCI_CHECK(static_cast<std::int64_t>(forces.size()) ==
                   structure_.num_atoms(),
               "finish_step: wrong atom count");
  const std::int64_t n = structure_.num_atoms();
  const double dt = opts_.timestep;
  pot_ = potential_energy;
  forces_ = std::move(forces);
  // Velocity Verlet phase 2: half-kick with the new forces.
  for (std::int64_t i = 0; i < n; ++i) {
    const std::size_t u = static_cast<std::size_t>(i);
    const double inv_m = 1.0 / (mass_[u] * kMassUnit);
    vel_[u] += forces_[u] * (0.5 * dt * inv_m);
  }

  const std::int64_t step = steps_done_;
  if (opts_.thermostat_every > 0 &&
      (step + 1) % opts_.thermostat_every == 0) {
    // Berendsen-style rescale to the target temperature.
    const double ke = kinetic_energy();
    const double t_now =
        2.0 * ke / (3.0 * static_cast<double>(n) * kBoltzmann);
    if (t_now > 1e-9) {
      const double scale = std::sqrt(opts_.temperature / t_now);
      for (core::Vec3& v : vel_) v = v * scale;
    }
  }

  if ((step + 1) % opts_.snapshot_every == 0) {
    MDSnapshot snap;
    snap.structure = structure_;
    snap.potential_energy = pot_;
    snap.kinetic_energy = kinetic_energy();
    snap.forces = forces_;
    traj_.push_back(std::move(snap));
  }
  mid_step_ = false;
  ++steps_done_;
}

std::vector<MDSnapshot> MDSimulator::run() {
  prepare();
  std::shared_ptr<ForceProvider> provider = provider_;
  if (provider == nullptr) {
    provider = std::make_shared<LJForceProvider>(opts_.cutoff);
  }
  std::vector<core::Vec3> forces;
  if (!have_forces_) {
    const double pot = provider->energy_and_forces(structure_, forces);
    set_initial_forces(pot, std::move(forces));
  }
  while (!done()) {
    begin_step();
    forces.clear();
    const double pot = provider->energy_and_forces(structure_, forces);
    finish_step(pot, std::move(forces));
  }
  return take_snapshots();
}

}  // namespace matsci::materials
