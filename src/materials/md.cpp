#include "materials/md.hpp"

#include <cmath>

#include "core/macros.hpp"
#include "graph/radius_graph.hpp"
#include "materials/elements.hpp"

namespace matsci::materials {

namespace {
/// Boltzmann constant in eV/K and the velocity unit bridge:
/// with x in Å, t in fs, m in u: 1 u·Å²/fs² = 103.642696 eV.
constexpr double kBoltzmann = 8.617333e-5;
constexpr double kMassUnit = 103.642696;
}  // namespace

LJParams lj_parameters(std::int64_t z_i, std::int64_t z_j) {
  const ElementInfo& a = element(z_i);
  const ElementInfo& b = element(z_j);
  LJParams p;
  // Contact at the covalent-radius sum; σ = r_min / 2^(1/6).
  const double r_min = a.covalent_radius + b.covalent_radius;
  p.sigma = r_min / std::pow(2.0, 1.0 / 6.0);
  // Electronegativity contrast deepens the well (ionic-ish binding).
  p.epsilon =
      0.15 * (1.0 + 0.5 * std::fabs(a.electronegativity -
                                    b.electronegativity));
  return p;
}

double MDSimulator::energy_and_forces(const Structure& s, double cutoff,
                                      std::vector<core::Vec3>& forces) {
  const std::int64_t n = s.num_atoms();
  forces.assign(static_cast<std::size_t>(n), core::Vec3{});
  const auto cart = s.cartesian();
  const core::Mat3 inv = core::inverse3(s.lattice);
  const double cut2 = cutoff * cutoff;
  double energy = 0.0;

  for (std::int64_t i = 0; i < n; ++i) {
    for (std::int64_t j = i + 1; j < n; ++j) {
      const core::Vec3 d = graph::minimal_image_delta(
          cart[static_cast<std::size_t>(i)],
          cart[static_cast<std::size_t>(j)], s.lattice, inv);
      const double r2 = core::sq_norm(d);
      if (r2 > cut2 || r2 < 1e-12) continue;
      const LJParams p = lj_parameters(s.species[static_cast<std::size_t>(i)],
                                       s.species[static_cast<std::size_t>(j)]);
      const double sr2 = p.sigma * p.sigma / r2;
      const double sr6 = sr2 * sr2 * sr2;
      const double sr12 = sr6 * sr6;
      energy += 4.0 * p.epsilon * (sr12 - sr6);
      // f = -dU/dr · r̂; magnitude 24ε(2·sr12 - sr6)/r², along d (j - i).
      const double fmag = 24.0 * p.epsilon * (2.0 * sr12 - sr6) / r2;
      const core::Vec3 fij = d * fmag;  // force on j, reaction on i
      forces[static_cast<std::size_t>(j)] += fij;
      forces[static_cast<std::size_t>(i)] -= fij;
    }
  }
  return energy;
}

MDSimulator::MDSimulator(Structure initial, MDOptions opts, std::uint64_t seed)
    : structure_(std::move(initial)), opts_(opts), seed_(seed) {
  structure_.validate();
  MATSCI_CHECK(opts.timestep > 0.0 && opts.steps >= 0 &&
                   opts.snapshot_every >= 1,
               "invalid MD options");
}

std::vector<MDSnapshot> MDSimulator::run() {
  const std::int64_t n = structure_.num_atoms();
  core::RngEngine rng(seed_);

  // Maxwell-Boltzmann velocities (Å/fs).
  std::vector<core::Vec3> vel(static_cast<std::size_t>(n));
  std::vector<double> mass(static_cast<std::size_t>(n));
  for (std::int64_t i = 0; i < n; ++i) {
    mass[static_cast<std::size_t>(i)] =
        element(structure_.species[static_cast<std::size_t>(i)]).mass;
    const double sig = std::sqrt(kBoltzmann * opts_.temperature /
                                 (mass[static_cast<std::size_t>(i)] *
                                  kMassUnit));
    vel[static_cast<std::size_t>(i)] = {rng.normal(0.0, sig),
                                        rng.normal(0.0, sig),
                                        rng.normal(0.0, sig)};
  }
  // Remove center-of-mass drift.
  core::Vec3 p_total{};
  double m_total = 0.0;
  for (std::int64_t i = 0; i < n; ++i) {
    p_total += vel[static_cast<std::size_t>(i)] *
               mass[static_cast<std::size_t>(i)];
    m_total += mass[static_cast<std::size_t>(i)];
  }
  for (std::int64_t i = 0; i < n; ++i) {
    vel[static_cast<std::size_t>(i)] -= p_total * (1.0 / m_total);
  }

  auto cart = structure_.cartesian();
  std::vector<core::Vec3> forces;
  double pot = energy_and_forces(structure_, opts_.cutoff, forces);
  const core::Mat3 inv_lat = core::inverse3(structure_.lattice);
  const double dt = opts_.timestep;

  auto kinetic = [&]() {
    double ke = 0.0;
    for (std::int64_t i = 0; i < n; ++i) {
      ke += 0.5 * mass[static_cast<std::size_t>(i)] * kMassUnit *
            core::sq_norm(vel[static_cast<std::size_t>(i)]);
    }
    return ke;
  };

  std::vector<MDSnapshot> traj;
  for (std::int64_t step = 0; step < opts_.steps; ++step) {
    // Velocity Verlet: half-kick, drift, recompute forces, half-kick.
    for (std::int64_t i = 0; i < n; ++i) {
      const double inv_m =
          1.0 / (mass[static_cast<std::size_t>(i)] * kMassUnit);
      vel[static_cast<std::size_t>(i)] +=
          forces[static_cast<std::size_t>(i)] * (0.5 * dt * inv_m);
      cart[static_cast<std::size_t>(i)] +=
          vel[static_cast<std::size_t>(i)] * dt;
    }
    // Write positions back as wrapped fractional coordinates.
    for (std::int64_t i = 0; i < n; ++i) {
      structure_.frac[static_cast<std::size_t>(i)] =
          core::vecmat(cart[static_cast<std::size_t>(i)], inv_lat);
    }
    structure_.wrap();
    cart = structure_.cartesian();

    pot = energy_and_forces(structure_, opts_.cutoff, forces);
    for (std::int64_t i = 0; i < n; ++i) {
      const double inv_m =
          1.0 / (mass[static_cast<std::size_t>(i)] * kMassUnit);
      vel[static_cast<std::size_t>(i)] +=
          forces[static_cast<std::size_t>(i)] * (0.5 * dt * inv_m);
    }

    if (opts_.thermostat_every > 0 &&
        (step + 1) % opts_.thermostat_every == 0) {
      // Berendsen-style rescale to the target temperature.
      const double ke = kinetic();
      const double t_now =
          2.0 * ke / (3.0 * static_cast<double>(n) * kBoltzmann);
      if (t_now > 1e-9) {
        const double scale = std::sqrt(opts_.temperature / t_now);
        for (core::Vec3& v : vel) v = v * scale;
      }
    }

    if ((step + 1) % opts_.snapshot_every == 0) {
      MDSnapshot snap;
      snap.structure = structure_;
      snap.potential_energy = pot;
      snap.kinetic_energy = kinetic();
      snap.forces = forces;
      traj.push_back(std::move(snap));
    }
  }
  return traj;
}

}  // namespace matsci::materials
