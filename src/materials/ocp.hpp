#pragma once

#include "data/sample.hpp"
#include "materials/property_oracle.hpp"

namespace matsci::materials {

/// Which Open Catalyst release a sample mimics. OC20 = metallic catalyst
/// slabs; OC22 = oxide electrocatalysts (oxygen mixed into the slab).
/// The two flavours overlap heavily in structure space — the second
/// qualitative observation of the paper's Fig. 4.
enum class OCPFlavor { kOC20, kOC22 };

/// Simulated Open Catalyst profile: an fcc(100)-like catalyst slab with
/// a small molecular adsorbate (H, O, OH, CO, N ...) placed above a
/// randomly chosen surface site. Periodic in-plane, vacuum along z.
/// Target: "adsorption_energy" (eV) from the shared PropertyOracle.
class OCPDataset : public data::StructureDataset {
 public:
  OCPDataset(std::int64_t size, std::uint64_t seed,
             OCPFlavor flavor = OCPFlavor::kOC20);

  std::int64_t size() const override { return size_; }
  data::StructureSample get(std::int64_t index) const override;
  std::string name() const override {
    return flavor_ == OCPFlavor::kOC20 ? "OC20" : "OC22";
  }

  /// Slab + adsorbate; `adsorbate_indices` receives the atom indices of
  /// the adsorbate within the returned structure.
  Structure structure_at(std::int64_t index,
                         std::vector<std::int64_t>& adsorbate_indices) const;

  static const std::vector<std::int64_t>& slab_palette(OCPFlavor flavor);

 private:
  std::int64_t size_;
  std::uint64_t seed_;
  OCPFlavor flavor_;
  PropertyOracle oracle_;
};

}  // namespace matsci::materials
