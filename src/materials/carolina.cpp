#include "materials/carolina.hpp"

#include "core/macros.hpp"

namespace matsci::materials {

const std::vector<std::int64_t>& CarolinaMaterialsDataset::palette() {
  // Ternary-oxide/chalcogenide-flavored palette, narrower than MP.
  static const std::vector<std::int64_t> p = {3,  8,  9,  11, 12, 13, 16,
                                              17, 19, 20, 22, 25, 26, 29,
                                              30, 34, 38, 50, 56};
  return p;
}

CarolinaMaterialsDataset::CarolinaMaterialsDataset(std::int64_t size,
                                                   std::uint64_t seed)
    : size_(size),
      seed_(seed),
      // Same oracle family and seed namespace as Materials Project so
      // formation energies are mutually consistent across datasets (a
      // prerequisite for multi-dataset pooling to help).
      oracle_(0x4D617453ull ^ 0x4D50ull) {
  MATSCI_CHECK(size >= 0, "dataset size must be non-negative");
  crystal_opts_.palette = palette();
  crystal_opts_.systems = {LatticeSystem::kCubic};
  crystal_opts_.min_species = 2;
  crystal_opts_.max_species = 3;
  crystal_opts_.min_seed_atoms = 1;
  crystal_opts_.max_seed_atoms = 3;
  crystal_opts_.min_cell = 4.0;
  crystal_opts_.max_cell = 7.5;
}

Structure CarolinaMaterialsDataset::structure_at(std::int64_t index) const {
  MATSCI_CHECK(index >= 0 && index < size_,
               "index " << index << " out of range [0, " << size_ << ")");
  core::RngEngine rng =
      core::RngEngine(seed_).fork(static_cast<std::uint64_t>(index) ^
                                  0xCA401Aull);
  return random_crystal(rng, crystal_opts_);
}

data::StructureSample CarolinaMaterialsDataset::get(std::int64_t index) const {
  const Structure s = structure_at(index);
  data::StructureSample sample = s.to_sample();
  sample.scalar_targets["formation_energy"] =
      static_cast<float>(oracle_.formation_energy(s));
  return sample;
}

}  // namespace matsci::materials
