#pragma once

#include "data/sample.hpp"
#include "materials/md.hpp"

namespace matsci::materials {

/// Simulated LiPS profile: molecular-dynamics snapshots of one fixed
/// Li-P-S superionic-conductor-like composition (the real dataset is an
/// MD trajectory of Li6.75P3S11 from Batzner et al. 2022). Because every
/// sample is the *same* material at different time steps, the dataset
/// forms the tight isolated cluster used to calibrate Fig. 4.
/// Targets: potential energy per atom ("energy").
class LiPSDataset : public data::StructureDataset {
 public:
  /// The trajectory is integrated once at construction (deterministic in
  /// `seed`); `size` caps the number of retained frames.
  LiPSDataset(std::int64_t size, std::uint64_t seed);

  std::int64_t size() const override {
    return static_cast<std::int64_t>(frames_.size());
  }
  data::StructureSample get(std::int64_t index) const override;
  std::string name() const override { return "LiPS"; }

  const MDSnapshot& frame(std::int64_t index) const;

  /// The fixed Li-P-S starting crystal (exposed for tests).
  static Structure initial_structure();

 private:
  std::vector<MDSnapshot> frames_;
};

}  // namespace matsci::materials
