#pragma once

#include <cstdint>
#include <vector>

#include "core/random.hpp"
#include "materials/structure.hpp"

namespace matsci::materials {

/// Lennard-Jones parameters per species pair, derived from covalent radii
/// (σ from the contact distance, ε scaled by electronegativity affinity).
struct LJParams {
  double sigma;    ///< Å
  double epsilon;  ///< eV
};

LJParams lj_parameters(std::int64_t z_i, std::int64_t z_j);

struct MDOptions {
  double timestep = 1.0;        ///< fs
  double temperature = 300.0;   ///< K, initial Maxwell-Boltzmann draw
  double cutoff = 6.0;          ///< Å for pair interactions
  std::int64_t steps = 200;
  std::int64_t snapshot_every = 10;
  /// Berendsen-style velocity rescale interval (0 = NVE).
  std::int64_t thermostat_every = 20;
};

/// One frame of a trajectory: positions plus energy/force labels — the
/// LiPS-style "time-dependent dynamics with energy/force labels" the
/// paper lists among its supported datasets.
struct MDSnapshot {
  Structure structure;
  double potential_energy = 0.0;          ///< eV
  double kinetic_energy = 0.0;            ///< eV
  std::vector<core::Vec3> forces;         ///< eV/Å per atom
};

/// Velocity-Verlet integrator with periodic minimal-image LJ forces.
/// Deterministic given (structure, options, seed).
class MDSimulator {
 public:
  MDSimulator(Structure initial, MDOptions opts, std::uint64_t seed);

  /// Run the trajectory and return the collected snapshots.
  std::vector<MDSnapshot> run();

  /// Potential energy and forces of a configuration (exposed for tests:
  /// force should equal -dE/dx within finite-difference tolerance).
  static double energy_and_forces(const Structure& s, double cutoff,
                                  std::vector<core::Vec3>& forces);

 private:
  Structure structure_;
  MDOptions opts_;
  std::uint64_t seed_;
};

}  // namespace matsci::materials
