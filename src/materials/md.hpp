#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "core/random.hpp"
#include "materials/neighbor_list.hpp"
#include "materials/structure.hpp"

namespace matsci::materials {

/// Lennard-Jones parameters per species pair, derived from covalent radii
/// (σ from the contact distance, ε scaled by electronegativity affinity).
struct LJParams {
  double sigma;    ///< Å
  double epsilon;  ///< eV
};

LJParams lj_parameters(std::int64_t z_i, std::int64_t z_j);

/// What drives the dynamics: anything that can turn a configuration into
/// a potential energy and per-atom forces. The hand-coded LJ surrogate
/// and the served ML potential (src/sim) both implement this, so an
/// MDSimulator can be pointed at either (ROADMAP item 4).
class ForceProvider {
 public:
  virtual ~ForceProvider() = default;
  /// Potential energy (eV) of `s`; fills `forces` (eV/Å, one per atom).
  virtual double energy_and_forces(const Structure& s,
                                   std::vector<core::Vec3>& forces) = 0;
};

/// The analytic LJ-mixture surrogate, accelerated by a reusable
/// cell-list NeighborList (rebuilt on the skin/2 displacement
/// threshold) and bit-exact against the O(N²) minimal-image scan.
class LJForceProvider : public ForceProvider {
 public:
  explicit LJForceProvider(double cutoff, NeighborListOptions nl = {});

  double energy_and_forces(const Structure& s,
                           std::vector<core::Vec3>& forces) override;

  const NeighborList& neighbor_list() const { return nlist_; }

  /// LJ energy/forces over an existing candidate pair list (pairs beyond
  /// `cutoff` are skipped exactly like the scan skips them).
  static double energy_and_forces_over_pairs(
      const Structure& s, double cutoff,
      const std::vector<NeighborPair>& pairs,
      std::vector<core::Vec3>& forces);

 private:
  double cutoff_;
  NeighborList nlist_;
};

struct MDOptions {
  double timestep = 1.0;        ///< fs
  double temperature = 300.0;   ///< K, initial Maxwell-Boltzmann draw
  double cutoff = 6.0;          ///< Å for pair interactions (LJ provider)
  std::int64_t steps = 200;
  std::int64_t snapshot_every = 10;
  /// Berendsen-style velocity rescale interval (0 = NVE).
  std::int64_t thermostat_every = 20;
};

/// One frame of a trajectory: positions plus energy/force labels — the
/// LiPS-style "time-dependent dynamics with energy/force labels" the
/// paper lists among its supported datasets.
struct MDSnapshot {
  Structure structure;
  double potential_energy = 0.0;          ///< eV
  double kinetic_energy = 0.0;            ///< eV
  std::vector<core::Vec3> forces;         ///< eV/Å per atom
};

/// Velocity-Verlet integrator over a pluggable ForceProvider (periodic
/// minimal-image LJ by default). Deterministic given (structure,
/// options, seed, provider).
///
/// Two driving modes share one integrator:
///   - run() evaluates forces through the provider and integrates the
///     whole trajectory (the seed behavior);
///   - the stepwise API (prepare / set_initial_forces / begin_step /
///     finish_step) hands force evaluation to an external driver —
///     sim::TrajectoryScheduler uses it to coalesce the force
///     evaluations of many concurrent trajectories into served
///     micro-batches. One step is: begin_step() applies the half-kick
///     and drift using the current forces and exposes the new
///     configuration via structure(); the driver evaluates it and
///     completes the step with finish_step(energy, forces).
class MDSimulator {
 public:
  MDSimulator(Structure initial, MDOptions opts, std::uint64_t seed,
              std::shared_ptr<ForceProvider> provider = nullptr);

  /// Run the trajectory and return the collected snapshots.
  std::vector<MDSnapshot> run();

  // -- Stepwise driving -------------------------------------------------
  /// Draw Maxwell-Boltzmann velocities and zero the COM momentum.
  /// Idempotent; implied by run().
  void prepare();
  /// Install the forces of the *initial* configuration (evaluated
  /// externally). Required once before the first begin_step().
  void set_initial_forces(double potential_energy,
                          std::vector<core::Vec3> forces);
  /// Half-kick + drift with the current forces; afterwards structure()
  /// is the configuration whose forces finish_step() expects.
  void begin_step();
  /// Complete the step: second half-kick with the freshly evaluated
  /// forces, thermostat, snapshot bookkeeping.
  void finish_step(double potential_energy, std::vector<core::Vec3> forces);

  bool done() const { return steps_done_ >= opts_.steps; }
  std::int64_t steps_done() const { return steps_done_; }
  const Structure& structure() const { return structure_; }
  const MDOptions& options() const { return opts_; }
  double potential_energy() const { return pot_; }
  double kinetic_energy() const;
  const std::vector<MDSnapshot>& snapshots() const { return traj_; }
  std::vector<MDSnapshot> take_snapshots() { return std::move(traj_); }

  /// Potential energy and forces of a configuration via the O(N²)
  /// minimal-image scan (exposed for tests: force should equal -dE/dx
  /// within finite-difference tolerance, and the cell-list path must be
  /// bit-exact against this).
  static double energy_and_forces(const Structure& s, double cutoff,
                                  std::vector<core::Vec3>& forces);

 private:
  Structure structure_;
  MDOptions opts_;
  std::uint64_t seed_;
  std::shared_ptr<ForceProvider> provider_;

  bool prepared_ = false;
  bool have_forces_ = false;
  bool mid_step_ = false;
  std::int64_t steps_done_ = 0;
  double pot_ = 0.0;
  std::vector<double> mass_;
  std::vector<core::Vec3> vel_;
  std::vector<core::Vec3> forces_;
  std::vector<MDSnapshot> traj_;
};

}  // namespace matsci::materials
