#pragma once

#include <cstdint>
#include <vector>

#include "core/random.hpp"
#include "core/vec3.hpp"
#include "data/sample.hpp"

namespace matsci::materials {

/// A periodic crystal: row-vector lattice + fractional coordinates +
/// atomic numbers. This is the substrate type behind every simulated
/// dataset profile (Materials Project / Carolina / LiPS / OCP).
struct Structure {
  core::Mat3 lattice = core::identity3();
  std::vector<core::Vec3> frac;         ///< fractional, wrapped to [0, 1)
  std::vector<std::int64_t> species;    ///< atomic numbers

  std::int64_t num_atoms() const {
    return static_cast<std::int64_t>(frac.size());
  }
  double volume() const;
  std::vector<core::Vec3> cartesian() const;

  /// Minimal-image cartesian distance between atoms i and j.
  double distance(std::int64_t i, std::int64_t j) const;

  /// Nearest-neighbor distance of atom i (minimal image; inf if alone).
  double nearest_neighbor_distance(std::int64_t i) const;

  /// Smallest interatomic distance in the cell (inf for < 2 atoms).
  double min_interatomic_distance() const;

  /// Replicate (nx, ny, nz) times into a supercell.
  Structure supercell(std::int64_t nx, std::int64_t ny, std::int64_t nz) const;

  /// Wrap all fractional coordinates into [0, 1).
  void wrap();

  /// Convert to the pipeline's exchange format (lattice carried along;
  /// targets left empty for the caller to fill).
  data::StructureSample to_sample() const;

  void validate() const;
};

/// Lattice constructors (lengths in Å, angles in radians).
core::Mat3 cubic_lattice(double a);
core::Mat3 tetragonal_lattice(double a, double c);
core::Mat3 orthorhombic_lattice(double a, double b, double c);
core::Mat3 hexagonal_lattice(double a, double c);
core::Mat3 triclinic_lattice(double a, double b, double c, double alpha,
                             double beta, double gamma);

/// Crystal families used by the random generator (biases per dataset).
enum class LatticeSystem {
  kCubic,
  kTetragonal,
  kOrthorhombic,
  kHexagonal,
  kTriclinic,
};

struct RandomCrystalOptions {
  std::vector<std::int64_t> palette;          ///< allowed atomic numbers
  std::vector<LatticeSystem> systems;         ///< allowed lattice families
  std::int64_t min_species = 1;
  std::int64_t max_species = 3;
  std::int64_t min_seed_atoms = 1;
  std::int64_t max_seed_atoms = 4;
  double min_cell = 3.5;                      ///< Å
  double max_cell = 9.0;
  double min_distance = 1.6;                  ///< Å hard-sphere rejection
  /// Replicate seed atoms with a random symmetric motif (inversion /
  /// face-center / body-center translations), mimicking Wyckoff orbits.
  bool symmetric_motifs = true;
  std::int64_t max_attempts = 64;
};

/// Generate a random — but physically plausible — crystal: random lattice
/// within the allowed families, random composition from the palette,
/// symmetric atom motifs, and hard-sphere distance rejection.
Structure random_crystal(core::RngEngine& rng,
                         const RandomCrystalOptions& opts);

}  // namespace matsci::materials
