#include "materials/lips.hpp"

#include "core/macros.hpp"
#include "materials/elements.hpp"

namespace matsci::materials {

Structure LiPSDataset::initial_structure() {
  // A compact Li-P-S cell (12 atoms): Li on a distorted simple-cubic
  // sublattice, P/S filling interstitial-like positions. Stoichiometry
  // Li6P2S4 — a stand-in for the Li6.75P3S11 of the real dataset.
  Structure s;
  s.lattice = cubic_lattice(6.2);
  const std::int64_t li = atomic_number("Li");
  const std::int64_t p = atomic_number("P");
  const std::int64_t su = atomic_number("S");
  const struct {
    double x, y, z;
    std::int64_t z_at;
  } sites[] = {
      {0.05, 0.10, 0.05, li}, {0.55, 0.05, 0.10, li}, {0.05, 0.55, 0.10, li},
      {0.55, 0.55, 0.05, li}, {0.10, 0.05, 0.55, li}, {0.55, 0.50, 0.55, li},
      {0.30, 0.30, 0.30, p},  {0.80, 0.80, 0.80, p},
      {0.30, 0.75, 0.75, su}, {0.75, 0.30, 0.75, su},
      {0.75, 0.75, 0.30, su}, {0.25, 0.25, 0.80, su},
  };
  for (const auto& site : sites) {
    s.frac.push_back({site.x, site.y, site.z});
    s.species.push_back(site.z_at);
  }
  s.validate();
  return s;
}

LiPSDataset::LiPSDataset(std::int64_t size, std::uint64_t seed) {
  MATSCI_CHECK(size >= 1, "LiPSDataset needs size >= 1");
  MDOptions opts;
  opts.timestep = 1.5;
  opts.temperature = 520.0;  // superionic regime: mobile Li
  opts.snapshot_every = 2;
  opts.steps = 2 * size;
  MDSimulator sim(initial_structure(), opts, seed);
  frames_ = sim.run();
  MATSCI_CHECK(static_cast<std::int64_t>(frames_.size()) >= size,
               "MD produced fewer frames than requested");
  frames_.resize(static_cast<std::size_t>(size));
}

const MDSnapshot& LiPSDataset::frame(std::int64_t index) const {
  MATSCI_CHECK(index >= 0 && index < size(), "frame index out of range");
  return frames_[static_cast<std::size_t>(index)];
}

data::StructureSample LiPSDataset::get(std::int64_t index) const {
  const MDSnapshot& f = frame(index);
  data::StructureSample sample = f.structure.to_sample();
  sample.scalar_targets["energy"] = static_cast<float>(
      f.potential_energy / static_cast<double>(f.structure.num_atoms()));
  sample.forces = f.forces;
  return sample;
}

}  // namespace matsci::materials
