#include "materials/property_oracle.hpp"

#include <algorithm>
#include <cmath>

#include "core/macros.hpp"
#include "graph/radius_graph.hpp"
#include "materials/elements.hpp"
#include "materials/md.hpp"

namespace matsci::materials {

namespace {
double sigmoid(double x) { return 1.0 / (1.0 + std::exp(-x)); }
}  // namespace

StructureFeatures compute_features(const Structure& s) {
  s.validate();
  StructureFeatures f;
  f.num_atoms = s.num_atoms();
  if (f.num_atoms == 0) return f;

  // Composition statistics.
  double sum_en = 0.0, sum_r = 0.0, sum_m = 0.0, sum_vol = 0.0;
  std::map<std::int64_t, std::int64_t> counts;
  for (const std::int64_t z : s.species) {
    const ElementInfo& e = element(z);
    sum_en += e.electronegativity;
    sum_r += e.covalent_radius;
    sum_m += e.mass;
    sum_vol += 4.0 / 3.0 * M_PI * std::pow(e.covalent_radius, 3);
    ++counts[z];
  }
  const double n = static_cast<double>(f.num_atoms);
  f.mean_electronegativity = sum_en / n;
  f.mean_covalent_radius = sum_r / n;
  f.mean_mass = sum_m / n;
  double var_en = 0.0;
  for (const std::int64_t z : s.species) {
    const double d = element(z).electronegativity - f.mean_electronegativity;
    var_en += d * d;
  }
  f.std_electronegativity = std::sqrt(var_en / n);
  for (const auto& [z, c] : counts) {
    const double p = static_cast<double>(c) / n;
    f.composition_entropy -= p * std::log(p);
  }

  // Geometry.
  const double v = s.volume();
  f.number_density = n / v;
  f.packing_fraction = std::min(sum_vol / v, 1.0);

  const core::Mat3 inv = core::inverse3(s.lattice);
  const auto cart = s.cartesian();
  double sum_nn = 0.0;
  std::int64_t coord_total = 0;
  for (std::int64_t i = 0; i < f.num_atoms; ++i) {
    double nn = 1e9;
    for (std::int64_t j = 0; j < f.num_atoms; ++j) {
      if (i == j) continue;
      const double d = core::norm(graph::minimal_image_delta(
          cart[static_cast<std::size_t>(i)],
          cart[static_cast<std::size_t>(j)], s.lattice, inv));
      nn = std::min(nn, d);
      const double bond =
          1.25 * (element(s.species[static_cast<std::size_t>(i)]).covalent_radius +
                  element(s.species[static_cast<std::size_t>(j)]).covalent_radius);
      if (d < bond) ++coord_total;
    }
    // Periodic images of the atom itself also coordinate it in small cells.
    const double self_image = std::min(
        {core::norm(s.lattice[0]), core::norm(s.lattice[1]),
         core::norm(s.lattice[2])});
    if (f.num_atoms == 1) nn = self_image;
    sum_nn += nn;
  }
  f.mean_nn_distance = sum_nn / n;
  f.mean_coordination = static_cast<double>(coord_total) / n;
  return f;
}

PropertyOracle::PropertyOracle(std::uint64_t seed, double noise_scale)
    : seed_(seed), noise_scale_(noise_scale) {
  MATSCI_CHECK(noise_scale >= 0.0, "noise_scale must be non-negative");
}

double PropertyOracle::structure_noise(const Structure& s,
                                       std::uint64_t salt) const {
  // Deterministic per-structure pseudo-noise: hash quantized coordinates
  // and species so identical structures always receive identical labels.
  std::uint64_t h = seed_ ^ (salt * 0x9E3779B97F4A7C15ull);
  auto mix_in = [&h](std::uint64_t v) {
    h ^= v + 0x9E3779B97F4A7C15ull + (h << 6) + (h >> 2);
  };
  for (std::size_t i = 0; i < s.frac.size(); ++i) {
    mix_in(static_cast<std::uint64_t>(s.species[i]));
    mix_in(static_cast<std::uint64_t>(
        std::llround(s.frac[i].x * 1e6) & 0xFFFFFFFF));
    mix_in(static_cast<std::uint64_t>(
        std::llround(s.frac[i].y * 1e6) & 0xFFFFFFFF));
    mix_in(static_cast<std::uint64_t>(
        std::llround(s.frac[i].z * 1e6) & 0xFFFFFFFF));
  }
  core::RngEngine rng(h);
  return rng.normal();
}

double PropertyOracle::band_gap(const Structure& s) const {
  const StructureFeatures f = compute_features(s);
  // Ionicity opens the gap; dense metallic packing closes it.
  const double ionicity =
      sigmoid(3.0 * (f.std_electronegativity - 0.45) +
              1.2 * (f.mean_electronegativity - 2.0));
  const double openness = std::max(0.0, 1.1 - f.packing_fraction);
  double gap = 5.0 * ionicity * openness;
  gap += noise_scale_ * structure_noise(s, 1);
  return std::max(0.0, gap);
}

double PropertyOracle::fermi_energy(const Structure& s) const {
  const StructureFeatures f = compute_features(s);
  double zeta = 1.6 * f.mean_electronegativity + 7.0 * f.packing_fraction -
                1.2 * f.composition_entropy - 2.0;
  zeta += noise_scale_ * structure_noise(s, 2);
  return zeta;
}

double PropertyOracle::formation_energy(const Structure& s) const {
  const StructureFeatures f = compute_features(s);
  // Ionic bonding and good coordination stabilize; stretched
  // nearest-neighbor distances destabilize.
  const double bond_strain =
      std::pow(f.mean_nn_distance / (2.0 * f.mean_covalent_radius) - 1.0, 2);
  double ef = -2.2 * f.std_electronegativity -
              0.9 * sigmoid(0.5 * (f.mean_coordination - 4.0)) +
              1.5 * bond_strain - 0.4 * f.composition_entropy + 0.3;
  ef += noise_scale_ * structure_noise(s, 3);
  return std::clamp(ef, -4.0, 2.0);
}

bool PropertyOracle::is_stable(const Structure& s) const {
  const StructureFeatures f = compute_features(s);
  // Hull-margin proxy: entropy (configurational) loosens the threshold.
  const double threshold = -0.6 - 0.25 * f.composition_entropy;
  return formation_energy(s) < threshold;
}

double PropertyOracle::adsorption_energy(
    const Structure& s, std::span<const std::int64_t> adsorbate) const {
  MATSCI_CHECK(!adsorbate.empty(), "adsorption_energy: empty adsorbate");
  const auto cart = s.cartesian();
  const core::Mat3 inv = core::inverse3(s.lattice);

  // Binding strength model: each adsorbate atom interacts with nearby
  // surface atoms through an electronegativity-difference Morse-like term.
  double energy = 0.0;
  for (const std::int64_t ai : adsorbate) {
    MATSCI_CHECK(ai >= 0 && ai < s.num_atoms(),
                 "adsorbate index " << ai << " out of range");
    const ElementInfo& ea = element(s.species[static_cast<std::size_t>(ai)]);
    for (std::int64_t j = 0; j < s.num_atoms(); ++j) {
      if (std::find(adsorbate.begin(), adsorbate.end(), j) !=
          adsorbate.end()) {
        continue;
      }
      const double d = core::norm(graph::minimal_image_delta(
          cart[static_cast<std::size_t>(ai)],
          cart[static_cast<std::size_t>(j)], s.lattice, inv));
      if (d > 6.0) continue;
      const ElementInfo& es = element(s.species[static_cast<std::size_t>(j)]);
      const double r0 = ea.covalent_radius + es.covalent_radius;
      const double x = std::exp(-(d - r0) / 0.8);
      const double depth =
          0.25 * (1.0 + std::fabs(ea.electronegativity -
                                  es.electronegativity));
      energy += depth * (x * x - 2.0 * x);
    }
  }
  energy += noise_scale_ * structure_noise(s, 4);
  return energy;
}

double PropertyOracle::energy_and_forces(const Structure& s,
                                         std::vector<core::Vec3>& forces,
                                         double cutoff) const {
  // Exact LJ-mixture labels (no pseudo-noise): the oracle is the same
  // surrogate that generated the LiPS training trajectory, so gated MD
  // frames get labels on the surface the potential is learning.
  return MDSimulator::energy_and_forces(s, cutoff, forces);
}

}  // namespace matsci::materials
