#pragma once

#include <cstdint>
#include <vector>

#include "core/vec3.hpp"
#include "materials/structure.hpp"

namespace matsci::materials {

struct NeighborListOptions {
  /// Verlet skin (Å): candidate pairs are collected out to
  /// cutoff + skin, so the list stays valid until some atom has moved
  /// more than skin/2 since the last build.
  double skin = 0.4;
  /// Force the O(N²) candidate scan even when the cell is large enough
  /// for binning (used by bit-exactness tests to pin the two paths
  /// against each other).
  bool disable_cells = false;
};

/// One candidate pair, i < j. Distances are *not* stored: consumers
/// recompute the minimal-image delta exactly like the brute-force scan,
/// which is what makes the cell-list path bit-exact against it.
struct NeighborPair {
  std::int32_t i = 0;
  std::int32_t j = 0;
};

/// Reusable cell-list neighbor search for periodic minimal-image pair
/// interactions (the MD hot path; DESIGN.md §13).
///
/// build() bins atoms into cells no smaller than cutoff + skin along
/// each lattice direction (perpendicular widths, so triclinic cells are
/// handled) and emits every i<j pair whose minimal-image distance is
/// below cutoff + skin, sorted lexicographically — the same order the
/// O(N²) scan visits pairs in, so any accumulation over the list is
/// bit-identical to the scan. When the cell is too small for ≥3 bins
/// per direction (binning would alias periodic images), build() falls
/// back to the full scan for candidates; correctness never depends on
/// the geometry.
///
/// update() is the steady-state entry point: it rebuilds only when the
/// structure's atom count or lattice changed, or when some atom has
/// drifted more than skin/2 (minimal image) from its position at the
/// last build — otherwise the cached list is still a superset of all
/// in-cutoff pairs and is reused as-is.
class NeighborList {
 public:
  explicit NeighborList(double cutoff, NeighborListOptions opts = {});

  /// Ensure the pair list covers `s`; returns true when a rebuild
  /// happened.
  bool update(const Structure& s);

  /// Unconditional rebuild.
  void build(const Structure& s);

  const std::vector<NeighborPair>& pairs() const { return pairs_; }
  double cutoff() const { return cutoff_; }
  std::int64_t rebuilds() const { return rebuilds_; }
  /// True when the last build used the O(N²) candidate scan instead of
  /// cell binning (cell too small, or disable_cells).
  bool used_fallback() const { return used_fallback_; }

 private:
  double cutoff_;
  NeighborListOptions opts_;
  std::vector<NeighborPair> pairs_;
  std::vector<core::Vec3> ref_cart_;  ///< positions at last build
  core::Mat3 ref_lattice_ = core::identity3();
  bool built_ = false;
  bool used_fallback_ = false;
  std::int64_t rebuilds_ = 0;
};

}  // namespace matsci::materials
