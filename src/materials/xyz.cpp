#include "materials/xyz.hpp"

#include <fstream>
#include <iomanip>
#include <sstream>

#include "core/macros.hpp"
#include "materials/elements.hpp"

namespace matsci::materials {

namespace {

/// Split a comment line into key=value tokens, honoring double quotes.
std::vector<std::pair<std::string, std::string>> parse_kv(
    const std::string& line) {
  std::vector<std::pair<std::string, std::string>> out;
  std::size_t i = 0;
  while (i < line.size()) {
    while (i < line.size() && std::isspace(static_cast<unsigned char>(line[i]))) ++i;
    if (i >= line.size()) break;
    const std::size_t eq = line.find('=', i);
    if (eq == std::string::npos) break;
    std::string key = line.substr(i, eq - i);
    std::string value;
    i = eq + 1;
    if (i < line.size() && line[i] == '"') {
      const std::size_t close = line.find('"', i + 1);
      MATSCI_CHECK(close != std::string::npos,
                   "xyz: unterminated quote in comment line");
      value = line.substr(i + 1, close - i - 1);
      i = close + 1;
    } else {
      std::size_t end = i;
      while (end < line.size() &&
             !std::isspace(static_cast<unsigned char>(line[end]))) {
        ++end;
      }
      value = line.substr(i, end - i);
      i = end;
    }
    out.emplace_back(std::move(key), std::move(value));
  }
  return out;
}

}  // namespace

void write_xyz(std::ostream& os, const data::StructureSample& sample) {
  MATSCI_CHECK(sample.species.size() == sample.positions.size(),
               "xyz: species/positions mismatch");
  os << sample.num_atoms() << "\n";
  os << std::setprecision(10);
  if (sample.lattice) {
    const core::Mat3& m = *sample.lattice;
    os << "Lattice=\"";
    for (int r = 0; r < 3; ++r) {
      for (int c = 0; c < 3; ++c) {
        os << m[r][c] << (r == 2 && c == 2 ? "" : " ");
      }
    }
    os << "\" ";
  }
  os << "Properties=species:S:1:pos:R:3";
  for (const auto& [key, value] : sample.scalar_targets) {
    os << " " << key << "=" << value;
  }
  for (const auto& [key, value] : sample.class_targets) {
    os << " " << key << "=" << value;
  }
  os << "\n";
  for (std::size_t a = 0; a < sample.positions.size(); ++a) {
    const std::int64_t z = sample.species[a];
    // Synthetic species id 0 is written as the placeholder "X".
    os << (z >= 1 && z <= kMaxZ ? element(z).symbol : "X") << " "
       << sample.positions[a].x << " " << sample.positions[a].y << " "
       << sample.positions[a].z << "\n";
  }
  MATSCI_CHECK(static_cast<bool>(os), "xyz: stream write failed");
}

void write_xyz_file(const std::string& path,
                    const std::vector<data::StructureSample>& samples) {
  std::ofstream os(path);
  MATSCI_CHECK(os.is_open(), "xyz: cannot open '" << path << "' for write");
  for (const data::StructureSample& s : samples) {
    write_xyz(os, s);
  }
}

bool read_xyz(std::istream& is, data::StructureSample& sample) {
  std::string count_line;
  // Skip blank separator lines between frames.
  do {
    if (!std::getline(is, count_line)) return false;
  } while (count_line.find_first_not_of(" \t\r") == std::string::npos);

  std::int64_t count = 0;
  try {
    count = std::stoll(count_line);
  } catch (const std::exception&) {
    MATSCI_CHECK(false, "xyz: bad atom-count line '" << count_line << "'");
  }
  MATSCI_CHECK(count >= 0, "xyz: negative atom count");

  std::string comment;
  MATSCI_CHECK(static_cast<bool>(std::getline(is, comment)),
               "xyz: truncated frame (missing comment line)");

  sample = data::StructureSample{};
  for (const auto& [key, value] : parse_kv(comment)) {
    if (key == "Lattice") {
      std::istringstream ls(value);
      core::Mat3 m;
      for (int r = 0; r < 3; ++r) {
        for (int c = 0; c < 3; ++c) {
          MATSCI_CHECK(static_cast<bool>(ls >> m[r][c]),
                       "xyz: malformed Lattice value");
        }
      }
      sample.lattice = m;
    } else if (key != "Properties") {
      // Heuristic: integer-looking values are class targets.
      try {
        std::size_t pos = 0;
        const float f = std::stof(value, &pos);
        if (pos == value.size()) {
          if (value.find('.') == std::string::npos &&
              value.find('e') == std::string::npos) {
            sample.class_targets[key] = std::stoll(value);
          } else {
            sample.scalar_targets[key] = f;
          }
        }
      } catch (const std::exception&) {
        // Non-numeric metadata is ignored (free-form comments).
      }
    }
  }

  for (std::int64_t a = 0; a < count; ++a) {
    std::string line;
    MATSCI_CHECK(static_cast<bool>(std::getline(is, line)),
                 "xyz: truncated frame (expected " << count << " atoms)");
    std::istringstream ls(line);
    std::string symbol;
    core::Vec3 pos;
    MATSCI_CHECK(static_cast<bool>(ls >> symbol >> pos.x >> pos.y >> pos.z),
                 "xyz: malformed atom line '" << line << "'");
    sample.species.push_back(symbol == "X" ? 0 : atomic_number(symbol));
    sample.positions.push_back(pos);
  }
  return true;
}

std::vector<data::StructureSample> read_xyz_file(const std::string& path) {
  std::ifstream is(path);
  MATSCI_CHECK(is.is_open(), "xyz: cannot open '" << path << "'");
  std::vector<data::StructureSample> samples;
  data::StructureSample sample;
  while (read_xyz(is, sample)) {
    samples.push_back(std::move(sample));
    sample = data::StructureSample{};
  }
  return samples;
}

void write_structure_xyz(std::ostream& os, const Structure& s) {
  write_xyz(os, s.to_sample());
}

}  // namespace matsci::materials
