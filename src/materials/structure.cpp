#include "materials/structure.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "core/macros.hpp"
#include "graph/radius_graph.hpp"

namespace matsci::materials {

double Structure::volume() const { return std::fabs(core::det3(lattice)); }

std::vector<core::Vec3> Structure::cartesian() const {
  std::vector<core::Vec3> cart;
  cart.reserve(frac.size());
  for (const core::Vec3& f : frac) {
    cart.push_back(core::vecmat(f, lattice));
  }
  return cart;
}

double Structure::distance(std::int64_t i, std::int64_t j) const {
  MATSCI_CHECK(i >= 0 && i < num_atoms() && j >= 0 && j < num_atoms(),
               "distance(" << i << ", " << j << ") out of range");
  const core::Mat3 inv = core::inverse3(lattice);
  const auto cart = cartesian();
  return core::norm(graph::minimal_image_delta(
      cart[static_cast<std::size_t>(i)], cart[static_cast<std::size_t>(j)],
      lattice, inv));
}

double Structure::nearest_neighbor_distance(std::int64_t i) const {
  double best = std::numeric_limits<double>::infinity();
  const core::Mat3 inv = core::inverse3(lattice);
  const auto cart = cartesian();
  for (std::int64_t j = 0; j < num_atoms(); ++j) {
    if (j == i) continue;
    const double d = core::norm(graph::minimal_image_delta(
        cart[static_cast<std::size_t>(i)], cart[static_cast<std::size_t>(j)],
        lattice, inv));
    best = std::min(best, d);
  }
  return best;
}

double Structure::min_interatomic_distance() const {
  double best = std::numeric_limits<double>::infinity();
  const core::Mat3 inv = core::inverse3(lattice);
  const auto cart = cartesian();
  for (std::int64_t i = 0; i < num_atoms(); ++i) {
    for (std::int64_t j = i + 1; j < num_atoms(); ++j) {
      const double d = core::norm(graph::minimal_image_delta(
          cart[static_cast<std::size_t>(i)], cart[static_cast<std::size_t>(j)],
          lattice, inv));
      best = std::min(best, d);
    }
  }
  return best;
}

Structure Structure::supercell(std::int64_t nx, std::int64_t ny,
                               std::int64_t nz) const {
  MATSCI_CHECK(nx >= 1 && ny >= 1 && nz >= 1,
               "supercell multipliers must be >= 1");
  Structure out;
  out.lattice[0] = lattice[0] * static_cast<double>(nx);
  out.lattice[1] = lattice[1] * static_cast<double>(ny);
  out.lattice[2] = lattice[2] * static_cast<double>(nz);
  for (std::int64_t ix = 0; ix < nx; ++ix) {
    for (std::int64_t iy = 0; iy < ny; ++iy) {
      for (std::int64_t iz = 0; iz < nz; ++iz) {
        for (std::size_t a = 0; a < frac.size(); ++a) {
          out.frac.push_back(
              {(frac[a].x + static_cast<double>(ix)) / static_cast<double>(nx),
               (frac[a].y + static_cast<double>(iy)) / static_cast<double>(ny),
               (frac[a].z + static_cast<double>(iz)) /
                   static_cast<double>(nz)});
          out.species.push_back(species[a]);
        }
      }
    }
  }
  return out;
}

void Structure::wrap() {
  for (core::Vec3& f : frac) {
    f.x -= std::floor(f.x);
    f.y -= std::floor(f.y);
    f.z -= std::floor(f.z);
  }
}

data::StructureSample Structure::to_sample() const {
  data::StructureSample s;
  s.species = species;
  s.positions = cartesian();
  s.lattice = lattice;
  return s;
}

void Structure::validate() const {
  MATSCI_CHECK(frac.size() == species.size(),
               "structure: " << frac.size() << " positions vs "
                             << species.size() << " species");
  MATSCI_CHECK(volume() > 1e-9, "structure: degenerate lattice");
}

core::Mat3 cubic_lattice(double a) { return orthorhombic_lattice(a, a, a); }

core::Mat3 tetragonal_lattice(double a, double c) {
  return orthorhombic_lattice(a, a, c);
}

core::Mat3 orthorhombic_lattice(double a, double b, double c) {
  MATSCI_CHECK(a > 0 && b > 0 && c > 0, "lattice lengths must be positive");
  return core::mat3_rows({a, 0.0, 0.0}, {0.0, b, 0.0}, {0.0, 0.0, c});
}

core::Mat3 hexagonal_lattice(double a, double c) {
  MATSCI_CHECK(a > 0 && c > 0, "lattice lengths must be positive");
  return core::mat3_rows({a, 0.0, 0.0},
                         {-0.5 * a, 0.5 * std::sqrt(3.0) * a, 0.0},
                         {0.0, 0.0, c});
}

core::Mat3 triclinic_lattice(double a, double b, double c, double alpha,
                             double beta, double gamma) {
  MATSCI_CHECK(a > 0 && b > 0 && c > 0, "lattice lengths must be positive");
  // Standard crystallographic construction: a along x, b in the xy plane.
  const double bx = b * std::cos(gamma);
  const double by = b * std::sin(gamma);
  const double cx = c * std::cos(beta);
  const double cy =
      c * (std::cos(alpha) - std::cos(beta) * std::cos(gamma)) /
      std::sin(gamma);
  const double cz2 = c * c - cx * cx - cy * cy;
  MATSCI_CHECK(cz2 > 1e-9, "triclinic angles are geometrically inconsistent");
  return core::mat3_rows({a, 0.0, 0.0}, {bx, by, 0.0},
                         {cx, cy, std::sqrt(cz2)});
}

namespace {

core::Mat3 random_lattice(core::RngEngine& rng, LatticeSystem system,
                          double lo, double hi) {
  switch (system) {
    case LatticeSystem::kCubic:
      return cubic_lattice(rng.uniform(lo, hi));
    case LatticeSystem::kTetragonal:
      return tetragonal_lattice(rng.uniform(lo, hi), rng.uniform(lo, hi));
    case LatticeSystem::kOrthorhombic:
      return orthorhombic_lattice(rng.uniform(lo, hi), rng.uniform(lo, hi),
                                  rng.uniform(lo, hi));
    case LatticeSystem::kHexagonal:
      return hexagonal_lattice(rng.uniform(lo, hi), rng.uniform(lo, hi));
    case LatticeSystem::kTriclinic: {
      // Angles kept within 75–105° so cells stay well-conditioned.
      const double d2r = M_PI / 180.0;
      return triclinic_lattice(
          rng.uniform(lo, hi), rng.uniform(lo, hi), rng.uniform(lo, hi),
          rng.uniform(75.0, 105.0) * d2r, rng.uniform(75.0, 105.0) * d2r,
          rng.uniform(75.0, 105.0) * d2r);
    }
  }
  MATSCI_CHECK(false, "unknown lattice system");
  return core::identity3();  // unreachable
}

/// Wyckoff-like fractional motifs: images of a seed position under a
/// small symmetric orbit.
std::vector<core::Vec3> motif_images(const core::Vec3& f, int motif) {
  switch (motif) {
    case 0:  // general position, orbit of 1
      return {f};
    case 1:  // inversion pair about the cell center
      return {f, {1.0 - f.x, 1.0 - f.y, 1.0 - f.z}};
    case 2:  // body-center translation pair
      return {f, {f.x + 0.5, f.y + 0.5, f.z + 0.5}};
    case 3:  // C-face pair
      return {f, {f.x + 0.5, f.y + 0.5, f.z}};
    default:  // fourfold: inversion + body center
      return {f,
              {1.0 - f.x, 1.0 - f.y, 1.0 - f.z},
              {f.x + 0.5, f.y + 0.5, f.z + 0.5},
              {0.5 - f.x, 0.5 - f.y, 0.5 - f.z}};
  }
}

}  // namespace

Structure random_crystal(core::RngEngine& rng,
                         const RandomCrystalOptions& opts) {
  MATSCI_CHECK(!opts.palette.empty(), "random_crystal: empty element palette");
  MATSCI_CHECK(!opts.systems.empty(), "random_crystal: no lattice systems");
  MATSCI_CHECK(opts.min_species >= 1 &&
                   opts.max_species >= opts.min_species,
               "random_crystal: bad species range");

  for (std::int64_t attempt = 0; attempt < opts.max_attempts; ++attempt) {
    Structure s;
    s.lattice = random_lattice(
        rng,
        opts.systems[static_cast<std::size_t>(
            rng.next_int(static_cast<std::int64_t>(opts.systems.size())))],
        opts.min_cell, opts.max_cell);

    // Composition: distinct species drawn from the palette.
    const std::int64_t ns = std::min<std::int64_t>(
        opts.min_species +
            rng.next_int(opts.max_species - opts.min_species + 1),
        static_cast<std::int64_t>(opts.palette.size()));
    const auto picks = rng.sample_without_replacement(
        static_cast<std::int64_t>(opts.palette.size()), ns);
    std::vector<std::int64_t> comp;
    for (const std::int64_t p : picks) {
      comp.push_back(opts.palette[static_cast<std::size_t>(p)]);
    }

    const std::int64_t seeds =
        opts.min_seed_atoms +
        rng.next_int(opts.max_seed_atoms - opts.min_seed_atoms + 1);
    for (std::int64_t k = 0; k < seeds; ++k) {
      const core::Vec3 f = {rng.uniform(), rng.uniform(), rng.uniform()};
      const std::int64_t z =
          comp[static_cast<std::size_t>(rng.next_int(ns))];
      const int motif =
          opts.symmetric_motifs ? static_cast<int>(rng.next_int(5)) : 0;
      for (const core::Vec3& image : motif_images(f, motif)) {
        s.frac.push_back(image);
        s.species.push_back(z);
      }
    }
    s.wrap();

    if (s.num_atoms() >= 1 &&
        (s.num_atoms() < 2 ||
         s.min_interatomic_distance() >= opts.min_distance)) {
      s.validate();
      return s;
    }
  }
  MATSCI_CHECK(false, "random_crystal: could not satisfy min_distance="
                          << opts.min_distance << " after "
                          << opts.max_attempts << " attempts");
  return {};  // unreachable
}

}  // namespace matsci::materials
