#include "materials/ocp.hpp"

#include <cmath>

#include "core/macros.hpp"
#include "materials/elements.hpp"

namespace matsci::materials {

namespace {

/// Small adsorbates: species + offsets (Å) relative to the anchor site.
struct Adsorbate {
  const char* name;
  std::vector<std::pair<std::int64_t, core::Vec3>> atoms;
};

const std::vector<Adsorbate>& adsorbate_catalog() {
  static const std::vector<Adsorbate> cat = {
      {"H", {{1, {0.0, 0.0, 0.0}}}},
      {"O", {{8, {0.0, 0.0, 0.0}}}},
      {"N", {{7, {0.0, 0.0, 0.0}}}},
      {"OH", {{8, {0.0, 0.0, 0.0}}, {1, {0.0, 0.6, 0.75}}}},
      {"CO", {{6, {0.0, 0.0, 0.0}}, {8, {0.0, 0.0, 1.15}}}},
      {"NH", {{7, {0.0, 0.0, 0.0}}, {1, {0.0, 0.65, 0.7}}}},
      {"H2O",
       {{8, {0.0, 0.0, 0.0}},
        {1, {0.76, 0.0, 0.59}},
        {1, {-0.76, 0.0, 0.59}}}},
  };
  return cat;
}

}  // namespace

const std::vector<std::int64_t>& OCPDataset::slab_palette(OCPFlavor flavor) {
  // OC20: transition-metal catalysts; OC22 adds oxide formers.
  static const std::vector<std::int64_t> oc20 = {13, 22, 23, 24, 25, 26, 27,
                                                 28, 29, 30, 42, 45, 46, 47,
                                                 74, 78, 79};
  static const std::vector<std::int64_t> oc22 = {22, 23, 24, 25, 26, 27, 28,
                                                 29, 40, 42, 74, 78};
  return flavor == OCPFlavor::kOC20 ? oc20 : oc22;
}

OCPDataset::OCPDataset(std::int64_t size, std::uint64_t seed, OCPFlavor flavor)
    : size_(size),
      seed_(seed),
      flavor_(flavor),
      oracle_(0x4D617453ull ^ 0x4D50ull) {
  MATSCI_CHECK(size >= 0, "dataset size must be non-negative");
}

Structure OCPDataset::structure_at(
    std::int64_t index, std::vector<std::int64_t>& adsorbate_indices) const {
  MATSCI_CHECK(index >= 0 && index < size_,
               "index " << index << " out of range [0, " << size_ << ")");
  core::RngEngine rng = core::RngEngine(seed_).fork(
      static_cast<std::uint64_t>(index) ^
      (flavor_ == OCPFlavor::kOC20 ? 0x0C20ull : 0x0C22ull));

  const auto& palette = slab_palette(flavor_);
  const std::int64_t metal =
      palette[static_cast<std::size_t>(rng.next_int(
          static_cast<std::int64_t>(palette.size())))];
  const double r_metal = element(metal).covalent_radius;
  const double a = 2.0 * r_metal * std::sqrt(2.0);  // fcc lattice constant

  // 2x2 in-plane cell, 3 atomic layers, ~12 Å vacuum above.
  const std::int64_t nx = 2, ny = 2, layers = 3;
  const double layer_gap = a / 2.0;
  const double slab_height = layer_gap * static_cast<double>(layers - 1);
  const double cell_z = slab_height + 12.0;

  Structure s;
  s.lattice = orthorhombic_lattice(a * nx / std::sqrt(2.0) * std::sqrt(2.0),
                                   a * ny / std::sqrt(2.0) * std::sqrt(2.0),
                                   cell_z);
  const double lx = s.lattice[0].x, ly = s.lattice[1].y;

  const std::int64_t oxygen = 8;
  for (std::int64_t l = 0; l < layers; ++l) {
    // fcc(100) stacking: alternate layers shift by half a site.
    const double shift = (l % 2 == 0) ? 0.0 : 0.5;
    for (std::int64_t i = 0; i < nx; ++i) {
      for (std::int64_t j = 0; j < ny; ++j) {
        const double fx = (static_cast<double>(i) + shift + 0.25) /
                          static_cast<double>(nx);
        const double fy = (static_cast<double>(j) + shift + 0.25) /
                          static_cast<double>(ny);
        const double fz =
            (1.0 + layer_gap * static_cast<double>(l)) / cell_z;
        s.frac.push_back({fx - std::floor(fx), fy - std::floor(fy), fz});
        // OC22: surface layer partially oxidized.
        const bool oxide_site = flavor_ == OCPFlavor::kOC22 &&
                                l == layers - 1 && rng.bernoulli(0.5);
        s.species.push_back(oxide_site ? oxygen : metal);
      }
    }
  }

  // Place the adsorbate above a random surface atom.
  const auto& ads_cat = adsorbate_catalog();
  const Adsorbate& ads = ads_cat[static_cast<std::size_t>(rng.next_int(
      static_cast<std::int64_t>(ads_cat.size())))];
  const std::int64_t anchor =
      (layers - 1) * nx * ny + rng.next_int(nx * ny);
  const core::Vec3 anchor_cart =
      core::vecmat(s.frac[static_cast<std::size_t>(anchor)], s.lattice);
  const double height =
      r_metal + 0.9 + rng.uniform(-0.15, 0.35);  // relaxed-ish standoff

  adsorbate_indices.clear();
  for (const auto& [z_at, offset] : ads.atoms) {
    core::Vec3 pos = anchor_cart + offset;
    pos.z += height;
    pos.x += rng.uniform(-0.2, 0.2);
    pos.y += rng.uniform(-0.2, 0.2);
    adsorbate_indices.push_back(s.num_atoms());
    s.frac.push_back({pos.x / lx, pos.y / ly, pos.z / cell_z});
    s.species.push_back(z_at);
  }
  s.wrap();
  s.validate();
  return s;
}

data::StructureSample OCPDataset::get(std::int64_t index) const {
  std::vector<std::int64_t> adsorbate;
  const Structure s = structure_at(index, adsorbate);
  data::StructureSample sample = s.to_sample();
  sample.scalar_targets["adsorption_energy"] =
      static_cast<float>(oracle_.adsorption_energy(s, adsorbate));
  return sample;
}

}  // namespace matsci::materials
