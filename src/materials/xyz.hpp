#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "data/sample.hpp"
#include "materials/structure.hpp"

namespace matsci::materials {

/// Extended-XYZ interchange (the de-facto format of ASE & friends):
///   line 1: atom count
///   line 2: key=value metadata; Lattice="ax ay az bx by bz cx cy cz"
///           when periodic, plus Properties=species:S:1:pos:R:3
///   lines 3+: symbol x y z
/// Scalar targets are carried as extra key=value pairs on line 2, so a
/// written sample round-trips with labels intact.
void write_xyz(std::ostream& os, const data::StructureSample& sample);
void write_xyz_file(const std::string& path,
                    const std::vector<data::StructureSample>& samples);

/// Read one frame (throws on malformed input, returns false cleanly on
/// EOF before the frame starts).
bool read_xyz(std::istream& is, data::StructureSample& sample);
std::vector<data::StructureSample> read_xyz_file(const std::string& path);

/// Convenience: periodic Structure -> XYZ via its sample form.
void write_structure_xyz(std::ostream& os, const Structure& s);

}  // namespace matsci::materials
