#pragma once

#include "data/sample.hpp"
#include "materials/property_oracle.hpp"

namespace matsci::materials {

/// Simulated Materials Project profile: the broadest dataset — wide
/// element palette (s/p/d blocks), all five lattice families, and all
/// four targets the paper's multi-task experiment trains on (band gap,
/// Fermi energy ζ, formation energy, stability). Structures are
/// procedurally generated, labels come from the shared PropertyOracle.
class MaterialsProjectDataset : public data::StructureDataset {
 public:
  MaterialsProjectDataset(std::int64_t size, std::uint64_t seed);

  std::int64_t size() const override { return size_; }
  data::StructureSample get(std::int64_t index) const override;
  std::string name() const override { return "MaterialsProject"; }

  /// The underlying crystal (pre-labeling) — exposed for tests.
  Structure structure_at(std::int64_t index) const;

  static const std::vector<std::int64_t>& palette();

 private:
  std::int64_t size_;
  std::uint64_t seed_;
  PropertyOracle oracle_;
  RandomCrystalOptions crystal_opts_;
};

}  // namespace matsci::materials
