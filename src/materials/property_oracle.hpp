#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/vec3.hpp"
#include "materials/structure.hpp"

namespace matsci::materials {

/// Scalar descriptors of a structure — composition statistics and
/// geometry moments. These are the latent variables the property oracle
/// maps to labels; they are all recoverable from (Z, positions), so a
/// geometric GNN can in principle learn the oracle exactly.
struct StructureFeatures {
  double mean_electronegativity = 0.0;
  double std_electronegativity = 0.0;   ///< "ionicity" proxy
  double mean_covalent_radius = 0.0;
  double mean_mass = 0.0;
  double number_density = 0.0;          ///< atoms / Å³
  double packing_fraction = 0.0;        ///< Σ(4/3 π r³) / V
  double mean_nn_distance = 0.0;        ///< Å
  double composition_entropy = 0.0;     ///< Shannon entropy of species
  double mean_coordination = 0.0;       ///< neighbors within 1.25·(rᵢ+rⱼ)
  std::int64_t num_atoms = 0;
};

StructureFeatures compute_features(const Structure& s);

/// Deterministic surrogate of a DFT labeling pipeline. Substitutes for
/// the real Materials Project / Carolina labels (see DESIGN.md §2):
/// smooth nonlinear maps from structure descriptors to the four targets
/// the paper trains on, plus a small per-structure pseudo-noise drawn
/// from a hash of the structure so labels are reproducible.
class PropertyOracle {
 public:
  explicit PropertyOracle(std::uint64_t seed, double noise_scale = 0.05);

  /// Semiconductor band gap, eV ∈ [0, ~5]. Ionic, loosely packed
  /// structures gap; metallic compositions give 0.
  double band_gap(const Structure& s) const;

  /// Fermi level ζ, eV ∈ roughly [-2, 8].
  double fermi_energy(const Structure& s) const;

  /// Formation energy, eV/atom ∈ roughly [-4, 2]; more negative for
  /// ionic, well-coordinated crystals.
  double formation_energy(const Structure& s) const;

  /// Thermodynamic-stability label (hull-margin style: E_form below a
  /// composition-dependent threshold).
  bool is_stable(const Structure& s) const;

  /// Adsorption-energy-like target for OCP-style slab+adsorbate samples;
  /// `adsorbate` indexes the adsorbate atoms inside `s`.
  double adsorption_energy(const Structure& s,
                           std::span<const std::int64_t> adsorbate) const;

  /// Ground-truth potential energy (eV) and per-atom forces (eV/Å) for
  /// dynamics frames: the same LJ-mixture surrogate that labels the
  /// LiPS trajectory, so active-learning labels (src/sim) are consistent
  /// with the data the potential was pretrained on. Deterministic, no
  /// pseudo-noise: forces must stay the exact gradient of the energy.
  double energy_and_forces(const Structure& s,
                           std::vector<core::Vec3>& forces,
                           double cutoff = 6.0) const;

 private:
  double structure_noise(const Structure& s, std::uint64_t salt) const;

  std::uint64_t seed_;
  double noise_scale_;
};

}  // namespace matsci::materials
