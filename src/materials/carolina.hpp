#pragma once

#include "data/sample.hpp"
#include "materials/property_oracle.hpp"

namespace matsci::materials {

/// Simulated Carolina Materials Database profile. The real CMD was
/// produced by generative models biased toward cubic crystals (Zhao et
/// al. 2021), so this profile restricts to the cubic family, a narrower
/// ternary-friendly palette, and carries only the formation-energy
/// target — exactly the single CMD column of the paper's Table 1.
/// The narrower distribution is why CMD formation-energy MAEs come out
/// several times smaller than Materials Project ones (0.10–0.14 vs
/// 0.8–3.5 eV/atom in Table 1).
class CarolinaMaterialsDataset : public data::StructureDataset {
 public:
  CarolinaMaterialsDataset(std::int64_t size, std::uint64_t seed);

  std::int64_t size() const override { return size_; }
  data::StructureSample get(std::int64_t index) const override;
  std::string name() const override { return "CarolinaMaterials"; }

  Structure structure_at(std::int64_t index) const;

  static const std::vector<std::int64_t>& palette();

 private:
  std::int64_t size_;
  std::uint64_t seed_;
  PropertyOracle oracle_;
  RandomCrystalOptions crystal_opts_;
};

}  // namespace matsci::materials
