#pragma once

#include <cstdint>
#include <string>

namespace matsci::materials {

/// Per-element reference data used by the structure generators and the
/// property oracle. Values are tabulated for Z = 1..86 (approximate
/// Pauling electronegativities, covalent radii in Å, atomic masses in u);
/// indices outside the table throw.
struct ElementInfo {
  const char* symbol;
  double electronegativity;  ///< Pauling scale (0 where undefined, e.g. noble gases)
  double covalent_radius;    ///< Å
  double mass;               ///< u
};

constexpr std::int64_t kMaxZ = 86;

/// Lookup by atomic number (1-based). Throws for Z outside [1, kMaxZ].
const ElementInfo& element(std::int64_t z);

/// Atomic number from symbol ("Fe" -> 26). Throws if unknown.
std::int64_t atomic_number(const std::string& symbol);

}  // namespace matsci::materials
