#include "materials/neighbor_list.hpp"

#include <algorithm>
#include <cmath>

#include "core/macros.hpp"
#include "graph/radius_graph.hpp"

namespace matsci::materials {

namespace {

/// Perpendicular width of the cell along lattice direction d: the
/// distance between the two faces spanned by the other two vectors.
/// Bins must be at least `reach` wide in this metric or a bin's 27-cell
/// neighborhood misses minimal-image partners.
double perpendicular_width(const core::Mat3& lattice, int d) {
  const core::Vec3& a = lattice[(d + 1) % 3];
  const core::Vec3& b = lattice[(d + 2) % 3];
  const core::Vec3 n = core::cross(a, b);
  const double area = core::norm(n);
  MATSCI_CHECK(area > 1e-12, "degenerate lattice in neighbor list");
  return std::fabs(core::det3(lattice)) / area;
}

}  // namespace

NeighborList::NeighborList(double cutoff, NeighborListOptions opts)
    : cutoff_(cutoff), opts_(opts) {
  MATSCI_CHECK(cutoff > 0.0 && opts.skin >= 0.0,
               "neighbor list needs cutoff > 0 and skin >= 0");
}

bool NeighborList::update(const Structure& s) {
  const std::size_t n = static_cast<std::size_t>(s.num_atoms());
  bool stale = !built_ || ref_cart_.size() != n;
  if (!stale) {
    for (int r = 0; r < 3 && !stale; ++r) {
      for (int c = 0; c < 3 && !stale; ++c) {
        stale = s.lattice[r][c] != ref_lattice_[r][c];
      }
    }
  }
  if (!stale) {
    const auto cart = s.cartesian();
    const core::Mat3 inv = core::inverse3(s.lattice);
    const double limit2 = 0.25 * opts_.skin * opts_.skin;
    for (std::size_t i = 0; i < n; ++i) {
      const core::Vec3 d = graph::minimal_image_delta(ref_cart_[i], cart[i],
                                                      s.lattice, inv);
      if (core::sq_norm(d) > limit2) {
        stale = true;
        break;
      }
    }
  }
  if (stale) build(s);
  return stale;
}

void NeighborList::build(const Structure& s) {
  const std::int64_t n = s.num_atoms();
  const auto cart = s.cartesian();
  const core::Mat3 inv = core::inverse3(s.lattice);
  const double reach = cutoff_ + opts_.skin;
  const double reach2 = reach * reach;
  pairs_.clear();

  std::int64_t ncell[3];
  bool cells_ok = !opts_.disable_cells;
  for (int d = 0; d < 3; ++d) {
    ncell[d] = static_cast<std::int64_t>(
        std::floor(perpendicular_width(s.lattice, d) / reach));
    // Below 3 bins a bin's -1/0/+1 neighborhood aliases its own
    // periodic image and pairs would be double-counted.
    if (ncell[d] < 3) cells_ok = false;
  }

  if (!cells_ok) {
    used_fallback_ = true;
    for (std::int64_t i = 0; i < n; ++i) {
      for (std::int64_t j = i + 1; j < n; ++j) {
        const core::Vec3 d = graph::minimal_image_delta(
            cart[static_cast<std::size_t>(i)],
            cart[static_cast<std::size_t>(j)], s.lattice, inv);
        if (core::sq_norm(d) <= reach2) {
          pairs_.push_back({static_cast<std::int32_t>(i),
                            static_cast<std::int32_t>(j)});
        }
      }
    }
  } else {
    used_fallback_ = false;
    const std::int64_t total_cells = ncell[0] * ncell[1] * ncell[2];
    // Bin atoms by wrapped fractional coordinate.
    std::vector<std::int64_t> cell_of(static_cast<std::size_t>(n));
    std::vector<std::vector<std::int32_t>> bins(
        static_cast<std::size_t>(total_cells));
    for (std::int64_t i = 0; i < n; ++i) {
      const core::Vec3& f = s.frac[static_cast<std::size_t>(i)];
      std::int64_t c[3];
      for (int d = 0; d < 3; ++d) {
        double fw = f[d] - std::floor(f[d]);
        std::int64_t idx = static_cast<std::int64_t>(
            std::floor(fw * static_cast<double>(ncell[d])));
        if (idx < 0) idx = 0;
        if (idx >= ncell[d]) idx = ncell[d] - 1;
        c[d] = idx;
      }
      const std::int64_t flat = (c[0] * ncell[1] + c[1]) * ncell[2] + c[2];
      cell_of[static_cast<std::size_t>(i)] = flat;
      bins[static_cast<std::size_t>(flat)].push_back(
          static_cast<std::int32_t>(i));
    }

    // Half the 26 neighbor offsets + the home cell: every unordered
    // cell pair is visited exactly once (with ≥3 bins per direction no
    // offset wraps onto the home cell).
    static constexpr std::int64_t kHalfOffsets[13][3] = {
        {1, 0, 0},  {0, 1, 0},   {0, 0, 1},  {1, 1, 0},  {1, -1, 0},
        {1, 0, 1},  {1, 0, -1},  {0, 1, 1},  {0, 1, -1}, {1, 1, 1},
        {1, 1, -1}, {1, -1, 1},  {1, -1, -1}};

    auto emit = [&](std::int32_t a, std::int32_t b) {
      const std::int32_t i = std::min(a, b);
      const std::int32_t j = std::max(a, b);
      const core::Vec3 d = graph::minimal_image_delta(
          cart[static_cast<std::size_t>(i)],
          cart[static_cast<std::size_t>(j)], s.lattice, inv);
      if (core::sq_norm(d) <= reach2) pairs_.push_back({i, j});
    };

    for (std::int64_t cx = 0; cx < ncell[0]; ++cx) {
      for (std::int64_t cy = 0; cy < ncell[1]; ++cy) {
        for (std::int64_t cz = 0; cz < ncell[2]; ++cz) {
          const std::int64_t home = (cx * ncell[1] + cy) * ncell[2] + cz;
          const auto& atoms = bins[static_cast<std::size_t>(home)];
          for (std::size_t a = 0; a < atoms.size(); ++a) {
            for (std::size_t b = a + 1; b < atoms.size(); ++b) {
              emit(atoms[a], atoms[b]);
            }
          }
          for (const auto& off : kHalfOffsets) {
            const std::int64_t ox = (cx + off[0] + ncell[0]) % ncell[0];
            const std::int64_t oy = (cy + off[1] + ncell[1]) % ncell[1];
            const std::int64_t oz = (cz + off[2] + ncell[2]) % ncell[2];
            const std::int64_t other = (ox * ncell[1] + oy) * ncell[2] + oz;
            const auto& neigh = bins[static_cast<std::size_t>(other)];
            for (const std::int32_t a : atoms) {
              for (const std::int32_t b : neigh) emit(a, b);
            }
          }
        }
      }
    }
    // The scan visits pairs in lexicographic (i, j) order; matching it
    // makes every accumulation over the list bit-identical to the scan.
    std::sort(pairs_.begin(), pairs_.end(),
              [](const NeighborPair& a, const NeighborPair& b) {
                return a.i != b.i ? a.i < b.i : a.j < b.j;
              });
  }

  ref_cart_ = cart;
  ref_lattice_ = s.lattice;
  built_ = true;
  ++rebuilds_;
}

}  // namespace matsci::materials
