#include "models/schnet.hpp"

#include <cmath>

#include "core/graph_ops.hpp"
#include "core/macros.hpp"
#include "core/ops.hpp"

namespace matsci::models {

namespace {
/// Shifted softplus (SchNet's activation): ln(0.5 eˣ + 0.5).
core::Tensor ssp(const core::Tensor& x) {
  return core::add_scalar(core::softplus(x),
                          -static_cast<float>(std::log(2.0)));
}
}  // namespace

SchNetInteraction::SchNetInteraction(const SchNetConfig& cfg,
                                     core::RngEngine& rng) {
  const std::int64_t h = cfg.hidden_dim;
  filter1_ = register_module("filter1",
                             std::make_shared<nn::Linear>(cfg.num_rbf, h, rng));
  filter2_ = register_module("filter2", std::make_shared<nn::Linear>(h, h, rng));
  in_proj_ = register_module("in_proj",
                             std::make_shared<nn::Linear>(h, h, rng, false));
  out1_ = register_module("out1", std::make_shared<nn::Linear>(h, h, rng));
  out2_ = register_module("out2", std::make_shared<nn::Linear>(h, h, rng));
}

core::Tensor SchNetInteraction::forward(const core::Tensor& h,
                                        const core::Tensor& rbf,
                                        const graph::BatchedGraph& g) const {
  // Continuous filter from the distance expansion.
  core::Tensor w = ssp(filter1_->forward(rbf));
  w = ssp(filter2_->forward(w));                       // [E, H]
  core::Tensor x_j = core::gather_rows(in_proj_->forward(h), g.src);
  core::Tensor messages = core::mul(x_j, w);           // gated neighbors
  core::Tensor agg = core::segment_sum(messages, g.dst, g.num_nodes);
  core::Tensor update = out2_->forward(ssp(out1_->forward(agg)));
  return core::add(h, update);                         // residual
}

SchNet::SchNet(SchNetConfig cfg, core::RngEngine& rng) : cfg_(cfg) {
  MATSCI_CHECK(cfg.num_interactions >= 1, "SchNet needs >= 1 interaction");
  rbf_centers_ = core::linspace_centers(
      0.0f, static_cast<float>(cfg.rbf_cutoff), cfg.num_rbf);
  species_embedding_ = register_module(
      "species_embedding",
      std::make_shared<nn::Embedding>(cfg.max_species, cfg.hidden_dim, rng));
  for (std::int64_t l = 0; l < cfg.num_interactions; ++l) {
    interactions_.push_back(
        register_module("interaction" + std::to_string(l),
                        std::make_shared<SchNetInteraction>(cfg, rng)));
  }
}

core::Tensor SchNet::encode(const data::Batch& batch) const {
  MATSCI_CHECK(static_cast<std::int64_t>(batch.species.size()) ==
                   batch.topology.num_nodes,
               "batch species/topology mismatch");
  // Edge distances (invariant inputs; computed once, shared by blocks).
  core::Tensor x_i = core::gather_rows(batch.coords, batch.topology.dst);
  core::Tensor x_j = core::gather_rows(batch.coords, batch.topology.src);
  core::Tensor dist =
      core::sqrt(core::add_scalar(
          core::row_sq_norm(core::sub(x_i, x_j)), 1e-12f));
  core::Tensor rbf = core::gaussian_rbf(
      dist, rbf_centers_, static_cast<float>(cfg_.rbf_gamma));

  core::Tensor h = species_embedding_->forward(batch.species);
  for (const auto& block : interactions_) {
    h = block->forward(h, rbf, batch.topology);
  }
  return core::segment_sum(h, batch.topology.node_graph,
                           batch.topology.num_graphs);
}

}  // namespace matsci::models
