#pragma once

#include <memory>
#include <vector>

#include "models/encoder.hpp"
#include "nn/embedding.hpp"
#include "nn/mlp.hpp"

namespace matsci::models {

struct EGNNConfig {
  std::int64_t hidden_dim = 256;   ///< node/message width (paper App. A)
  std::int64_t pos_hidden = 64;    ///< positional-update MLP width
  std::int64_t num_layers = 3;     ///< three-hop receptive field
  std::int64_t max_species = 87;   ///< embedding-table rows (Z + synthetic 0)
  nn::Act activation = nn::Act::kSiLU;
  bool update_coords = true;       ///< Eq. 2 coordinate refinement
  bool residual = true;            ///< residual node updates across layers
};

/// One Equivariant Graph Convolutional Layer (Satorras et al. 2022,
/// Eqs. 1–2 as quoted in the paper's Appendix A):
///   m_ij   = φ_e(h_i, h_j, ‖x_i − x_j‖²)
///   x_i'   = x_i + C Σ_j (x_i − x_j) φ_x(m_ij)
///   h_i'   = h_i + φ_h(h_i, Σ_j m_ij)
/// All message function inputs are invariant (squared distances), and the
/// coordinate update is equivariant, so graph-level sum readouts are
/// E(3)-invariant.
class EGCL : public nn::Module {
 public:
  EGCL(const EGNNConfig& cfg, core::RngEngine& rng);

  struct NodeState {
    core::Tensor h;  ///< [N, hidden]
    core::Tensor x;  ///< [N, 3]
  };

  NodeState forward(const NodeState& in, const graph::BatchedGraph& g) const;

 private:
  EGNNConfig cfg_;
  std::shared_ptr<nn::MLP> edge_mlp_;   ///< φ_e
  std::shared_ptr<nn::MLP> coord_mlp_;  ///< φ_x
  std::shared_ptr<nn::MLP> node_mlp_;   ///< φ_h
};

/// Full encoder: species embedding table → stacked EGCLs → size-extensive
/// (sum) readout per graph.
class EGNN : public Encoder {
 public:
  EGNN(EGNNConfig cfg, core::RngEngine& rng);

  core::Tensor encode(const data::Batch& batch) const override;
  std::int64_t embedding_dim() const override { return cfg_.hidden_dim; }

  /// Per-node embeddings before pooling (for analysis / tests).
  core::Tensor node_embeddings(const data::Batch& batch) const;

  const EGNNConfig& config() const { return cfg_; }

 private:
  EGNNConfig cfg_;
  std::shared_ptr<nn::Embedding> species_embedding_;
  std::vector<std::shared_ptr<EGCL>> layers_;
};

}  // namespace matsci::models
