#include "models/egnn.hpp"

#include "core/graph_ops.hpp"
#include "core/macros.hpp"
#include "core/ops.hpp"

namespace matsci::models {

EGCL::EGCL(const EGNNConfig& cfg, core::RngEngine& rng) : cfg_(cfg) {
  const std::int64_t h = cfg.hidden_dim;
  // φ_e: (h_i, h_j, d²) -> message.
  edge_mlp_ = register_module(
      "edge_mlp",
      std::make_shared<nn::MLP>(std::vector<std::int64_t>{2 * h + 1, h, h},
                                cfg.activation, rng,
                                /*activate_last=*/true));
  // φ_x: message -> scalar coordinate gate (narrow per App. A: width 64).
  // Omitted entirely when this layer never refines coordinates, so no
  // parameter sits in the tree without receiving gradient.
  if (cfg.update_coords) {
    coord_mlp_ = register_module(
        "coord_mlp",
        std::make_shared<nn::MLP>(
            std::vector<std::int64_t>{h, cfg.pos_hidden, 1}, cfg.activation,
            rng));
  }
  // φ_h: (h_i, aggregated message) -> update.
  node_mlp_ = register_module(
      "node_mlp",
      std::make_shared<nn::MLP>(std::vector<std::int64_t>{2 * h, h, h},
                                cfg.activation, rng));
}

EGCL::NodeState EGCL::forward(const NodeState& in,
                              const graph::BatchedGraph& g) const {
  MATSCI_CHECK(in.h.size(0) == g.num_nodes && in.x.size(0) == g.num_nodes,
               "EGCL: state/topology node count mismatch");
  const std::int64_t n = g.num_nodes;

  // Edge-wise gathers: i = dst (receiver), j = src (sender).
  core::Tensor h_i = core::gather_rows(in.h, g.dst);
  core::Tensor h_j = core::gather_rows(in.h, g.src);
  core::Tensor x_i = core::gather_rows(in.x, g.dst);
  core::Tensor x_j = core::gather_rows(in.x, g.src);
  core::Tensor diff = core::sub(x_i, x_j);           // [E, 3]
  core::Tensor d2 = core::row_sq_norm(diff);         // [E, 1]

  core::Tensor m = edge_mlp_->forward(core::concat_cols({h_i, h_j, d2}));

  NodeState out;
  if (coord_mlp_ != nullptr) {
    // Eq. 2: mean-normalized sum keeps updates size-independent.
    core::Tensor gate = coord_mlp_->forward(m);      // [E, 1]
    core::Tensor weighted = core::mul(diff, gate);   // col-broadcast
    core::Tensor delta = core::segment_mean(weighted, g.dst, n);
    out.x = core::add(in.x, delta);
  } else {
    out.x = in.x;
  }

  core::Tensor agg = core::segment_sum(m, g.dst, n);  // [N, hidden]
  core::Tensor update =
      node_mlp_->forward(core::concat_cols({in.h, agg}));
  out.h = cfg_.residual ? core::add(in.h, update) : update;
  return out;
}

EGNN::EGNN(EGNNConfig cfg, core::RngEngine& rng) : cfg_(cfg) {
  MATSCI_CHECK(cfg.num_layers >= 1, "EGNN needs at least one layer");
  species_embedding_ = register_module(
      "species_embedding",
      std::make_shared<nn::Embedding>(cfg.max_species, cfg.hidden_dim, rng));
  for (std::int64_t l = 0; l < cfg.num_layers; ++l) {
    // The final layer's refined coordinates would never be read, so it
    // is built without a coordinate MLP.
    EGNNConfig layer_cfg = cfg;
    if (l + 1 == cfg.num_layers) layer_cfg.update_coords = false;
    layers_.push_back(register_module(
        "layer" + std::to_string(l), std::make_shared<EGCL>(layer_cfg, rng)));
  }
}

core::Tensor EGNN::node_embeddings(const data::Batch& batch) const {
  MATSCI_CHECK(static_cast<std::int64_t>(batch.species.size()) ==
                   batch.topology.num_nodes,
               "batch species/topology mismatch");
  for (const std::int64_t z : batch.species) {
    MATSCI_CHECK(z >= 0 && z < cfg_.max_species,
                 "species id " << z << " outside embedding table");
  }
  EGCL::NodeState state;
  state.h = species_embedding_->forward(batch.species);
  // Coordinates enter as constants; gradients flow to the coordinate
  // MLPs through the distance features, not into the data.
  state.x = batch.coords;
  for (const auto& layer : layers_) {
    state = layer->forward(state, batch.topology);
  }
  return state.h;
}

core::Tensor EGNN::encode(const data::Batch& batch) const {
  core::Tensor h = node_embeddings(batch);
  // Size-extensive readout (paper App. A): sum over nodes per graph.
  return core::segment_sum(h, batch.topology.node_graph,
                           batch.topology.num_graphs);
}

}  // namespace matsci::models
