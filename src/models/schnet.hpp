#pragma once

#include <memory>
#include <vector>

#include "models/encoder.hpp"
#include "nn/embedding.hpp"
#include "nn/linear.hpp"

namespace matsci::models {

struct SchNetConfig {
  std::int64_t hidden_dim = 64;
  std::int64_t num_interactions = 3;
  std::int64_t num_rbf = 32;       ///< Gaussian basis size
  double rbf_cutoff = 6.0;         ///< Å, last RBF center
  double rbf_gamma = 10.0;         ///< basis width (1/Å²)
  std::int64_t max_species = 87;
};

/// SchNet-style continuous-filter convolution (Schütt et al. 2017) —
/// the invariant-GNN baseline the paper cites alongside E(n)-GNN. Each
/// interaction block computes a distance-conditioned filter from a
/// Gaussian RBF expansion, gates the neighbor features with it, segment-
/// sums into the receiver, and applies an atom-wise residual update with
/// shifted-softplus activations. Readout: size-extensive sum pooling.
class SchNetInteraction : public nn::Module {
 public:
  SchNetInteraction(const SchNetConfig& cfg, core::RngEngine& rng);

  core::Tensor forward(const core::Tensor& h, const core::Tensor& rbf,
                       const graph::BatchedGraph& g) const;

 private:
  std::shared_ptr<nn::Linear> filter1_, filter2_;  ///< RBF -> filter
  std::shared_ptr<nn::Linear> in_proj_;            ///< pre-convolution
  std::shared_ptr<nn::Linear> out1_, out2_;        ///< atom-wise update
};

class SchNet : public Encoder {
 public:
  SchNet(SchNetConfig cfg, core::RngEngine& rng);

  core::Tensor encode(const data::Batch& batch) const override;
  std::int64_t embedding_dim() const override { return cfg_.hidden_dim; }
  const SchNetConfig& config() const { return cfg_; }

 private:
  SchNetConfig cfg_;
  std::vector<float> rbf_centers_;
  std::shared_ptr<nn::Embedding> species_embedding_;
  std::vector<std::shared_ptr<SchNetInteraction>> interactions_;
};

}  // namespace matsci::models
