#include "models/attention.hpp"

#include "core/graph_ops.hpp"
#include "core/macros.hpp"
#include "core/ops.hpp"

namespace matsci::models {

PointCloudAttentionLayer::PointCloudAttentionLayer(
    const PointCloudAttentionConfig& cfg, core::RngEngine& rng) {
  const std::int64_t h = cfg.hidden_dim;
  const std::int64_t edge_in = 2 * h + cfg.num_rbf;
  score_mlp_ = register_module(
      "score_mlp",
      std::make_shared<nn::MLP>(std::vector<std::int64_t>{edge_in, h, 1},
                                nn::Act::kSiLU, rng));
  value_mlp_ = register_module(
      "value_mlp",
      std::make_shared<nn::MLP>(
          std::vector<std::int64_t>{h + cfg.num_rbf, h, h}, nn::Act::kSiLU,
          rng));
  out_mlp_ = register_module(
      "out_mlp", std::make_shared<nn::MLP>(std::vector<std::int64_t>{h, h},
                                           nn::Act::kSiLU, rng));
  norm_ = register_module("norm", std::make_shared<nn::RMSNorm>(h));
}

core::Tensor PointCloudAttentionLayer::forward(
    const core::Tensor& h, const core::Tensor& rbf,
    const graph::BatchedGraph& g) const {
  core::Tensor h_i = core::gather_rows(h, g.dst);
  core::Tensor h_j = core::gather_rows(h, g.src);

  core::Tensor logits =
      score_mlp_->forward(core::concat_cols({h_i, h_j, rbf}));
  core::Tensor alpha =
      core::segment_softmax(logits, g.dst, g.num_nodes);  // [E, 1]

  core::Tensor values = value_mlp_->forward(core::concat_cols({h_j, rbf}));
  core::Tensor mixed = core::segment_sum(core::mul(values, alpha), g.dst,
                                         g.num_nodes);
  core::Tensor update = out_mlp_->forward(mixed);
  return norm_->forward(core::add(h, update));
}

PointCloudAttentionEncoder::PointCloudAttentionEncoder(
    PointCloudAttentionConfig cfg, core::RngEngine& rng)
    : cfg_(cfg) {
  MATSCI_CHECK(cfg.num_layers >= 1, "attention encoder needs >= 1 layer");
  rbf_centers_ = core::linspace_centers(
      0.0f, static_cast<float>(cfg.rbf_cutoff), cfg.num_rbf);
  species_embedding_ = register_module(
      "species_embedding",
      std::make_shared<nn::Embedding>(cfg.max_species, cfg.hidden_dim, rng));
  for (std::int64_t l = 0; l < cfg.num_layers; ++l) {
    layers_.push_back(register_module(
        "layer" + std::to_string(l),
        std::make_shared<PointCloudAttentionLayer>(cfg, rng)));
  }
}

core::Tensor PointCloudAttentionEncoder::encode(
    const data::Batch& batch) const {
  MATSCI_CHECK(static_cast<std::int64_t>(batch.species.size()) ==
                   batch.topology.num_nodes,
               "batch species/topology mismatch");
  core::Tensor x_i = core::gather_rows(batch.coords, batch.topology.dst);
  core::Tensor x_j = core::gather_rows(batch.coords, batch.topology.src);
  core::Tensor dist = core::sqrt(core::add_scalar(
      core::row_sq_norm(core::sub(x_i, x_j)), 1e-12f));
  core::Tensor rbf = core::gaussian_rbf(
      dist, rbf_centers_, static_cast<float>(cfg_.rbf_gamma));

  core::Tensor h = species_embedding_->forward(batch.species);
  for (const auto& layer : layers_) {
    h = layer->forward(h, rbf, batch.topology);
  }
  // Mean pooling: attention features are normalized, so a size-invariant
  // readout is the natural pairing (sum would re-introduce raw counts).
  return core::segment_mean(h, batch.topology.node_graph,
                            batch.topology.num_graphs);
}

}  // namespace matsci::models
