#pragma once

#include <memory>
#include <vector>

#include "models/encoder.hpp"
#include "nn/embedding.hpp"
#include "nn/mlp.hpp"
#include "nn/norm.hpp"

namespace matsci::models {

struct PointCloudAttentionConfig {
  std::int64_t hidden_dim = 64;
  std::int64_t num_layers = 2;
  std::int64_t num_rbf = 16;     ///< distance-feature basis per edge
  double rbf_cutoff = 8.0;
  double rbf_gamma = 4.0;
  std::int64_t max_species = 87;
};

/// Rotation-invariant attention over point clouds — a scalar-feature
/// simplification of the geometric-algebra attention networks the paper
/// positions as its dense, structure-free alternative to graphs (§2.1,
/// Spellings 2022; Brehmer et al. 2023). Per layer, every (receiver,
/// sender) pair scores an attention logit from the two node states and
/// the pairwise-distance expansion (all E(3) invariants), normalizes
/// with a segment softmax over each receiver's incoming edges, and mixes
/// value messages under those weights:
///   α_ij = softmax_j φ_a(h_i, h_j, rbf(d_ij))
///   h_i' = norm(h_i + φ_o(Σ_j α_ij · φ_v(h_j, rbf(d_ij))))
/// Meant to pair with the complete-graph (point cloud) representation;
/// works with any topology.
class PointCloudAttentionLayer : public nn::Module {
 public:
  PointCloudAttentionLayer(const PointCloudAttentionConfig& cfg,
                           core::RngEngine& rng);

  core::Tensor forward(const core::Tensor& h, const core::Tensor& rbf,
                       const graph::BatchedGraph& g) const;

 private:
  std::shared_ptr<nn::MLP> score_mlp_;  ///< φ_a -> scalar logit
  std::shared_ptr<nn::MLP> value_mlp_;  ///< φ_v -> message
  std::shared_ptr<nn::MLP> out_mlp_;    ///< φ_o
  std::shared_ptr<nn::RMSNorm> norm_;
};

class PointCloudAttentionEncoder : public Encoder {
 public:
  PointCloudAttentionEncoder(PointCloudAttentionConfig cfg,
                             core::RngEngine& rng);

  core::Tensor encode(const data::Batch& batch) const override;
  std::int64_t embedding_dim() const override { return cfg_.hidden_dim; }
  const PointCloudAttentionConfig& config() const { return cfg_; }

 private:
  PointCloudAttentionConfig cfg_;
  std::vector<float> rbf_centers_;
  std::shared_ptr<nn::Embedding> species_embedding_;
  std::vector<std::shared_ptr<PointCloudAttentionLayer>> layers_;
};

}  // namespace matsci::models
