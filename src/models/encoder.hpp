#pragma once

#include "data/batch.hpp"
#include "nn/module.hpp"

namespace matsci::models {

/// Encoder interface: maps a collated batch to one embedding row per
/// graph. Tasks hold an encoder plus output heads (Fig. 1 of the paper);
/// in multi-task training a single encoder instance is shared across
/// every task head.
class Encoder : public nn::Module {
 public:
  /// Graph-level embeddings [num_graphs, embedding_dim()].
  ///
  /// Concurrency contract (relied on by src/serve): encode() only reads
  /// parameters and allocates fresh intermediates, so concurrent calls
  /// from multiple threads are safe as long as (a) no thread mutates
  /// parameters at the same time and (b) callers that want forward-only
  /// execution install their own per-thread core::NoGradGuard — grad
  /// mode is thread-local and defaults to on.
  virtual core::Tensor encode(const data::Batch& batch) const = 0;
  virtual std::int64_t embedding_dim() const = 0;
};

}  // namespace matsci::models
