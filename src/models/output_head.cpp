#include "models/output_head.hpp"

#include "core/macros.hpp"

namespace matsci::models {

OutputHead::OutputHead(std::int64_t in_dim, OutputHeadConfig cfg,
                       core::RngEngine& rng)
    : cfg_(cfg) {
  MATSCI_CHECK(cfg.num_blocks >= 0 && cfg.out_dim >= 1 && cfg.hidden_dim >= 1,
               "bad OutputHeadConfig");
  if (in_dim != cfg.hidden_dim) {
    input_proj_ = register_module(
        "input_proj", std::make_shared<nn::Linear>(in_dim, cfg.hidden_dim, rng));
  }
  for (std::int64_t b = 0; b < cfg.num_blocks; ++b) {
    blocks_.push_back(register_module(
        "block" + std::to_string(b),
        std::make_shared<nn::ResidualMLPBlock>(cfg.hidden_dim, cfg.activation,
                                               cfg.dropout, rng)));
  }
  readout_ = register_module(
      "readout", std::make_shared<nn::Linear>(cfg.hidden_dim, cfg.out_dim, rng));
}

core::Tensor OutputHead::forward(const core::Tensor& embedding) const {
  core::Tensor h =
      input_proj_ ? input_proj_->forward(embedding) : embedding;
  for (const auto& block : blocks_) {
    h = block->forward(h);
  }
  return readout_->forward(h);
}

}  // namespace matsci::models
