#pragma once

#include <memory>
#include <vector>

#include "nn/mlp.hpp"

namespace matsci::models {

struct OutputHeadConfig {
  std::int64_t hidden_dim = 256;  ///< width inside the head (paper App. A)
  std::int64_t num_blocks = 3;    ///< 3 single-task, 6 multi-task (paper)
  std::int64_t out_dim = 1;       ///< 1 for regression, C for classification
  nn::Act activation = nn::Act::kSELU;
  float dropout = 0.2f;
};

/// Per-target prediction head (paper Appendix A): a projection into the
/// head width, a stack of residual MLP blocks
/// (Linear → SELU → RMSNorm → Dropout, residually added), and a final
/// linear readout. "Expressive enough to map onto targets, constrained
/// enough not to ignore the embedding."
class OutputHead : public nn::Module {
 public:
  OutputHead(std::int64_t in_dim, OutputHeadConfig cfg, core::RngEngine& rng);

  core::Tensor forward(const core::Tensor& embedding) const;

  const OutputHeadConfig& config() const { return cfg_; }

 private:
  OutputHeadConfig cfg_;
  std::shared_ptr<nn::Linear> input_proj_;  ///< null when in_dim == hidden
  std::vector<std::shared_ptr<nn::ResidualMLPBlock>> blocks_;
  std::shared_ptr<nn::Linear> readout_;
};

}  // namespace matsci::models
