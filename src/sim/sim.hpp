#pragma once

// ML-potential molecular dynamics at scale (DESIGN.md §13): an ensemble
// of served energy/force models drives many concurrent MD trajectories
// through the production inference stack, with an uncertainty-gated
// active-learning loop labeling, fine-tuning, and hot-swapping new
// model versions under live traffic.

#include "sim/active_learning.hpp"
#include "sim/force_backend.hpp"
#include "sim/label_buffer.hpp"
#include "sim/ml_potential.hpp"
#include "sim/trajectory_scheduler.hpp"
#include "sim/uncertainty.hpp"
