#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "materials/property_oracle.hpp"
#include "serve/frontend/frontend.hpp"
#include "sim/label_buffer.hpp"
#include "sim/uncertainty.hpp"
#include "tasks/energy_force.hpp"

namespace matsci::sim {

/// One ensemble member the loop fine-tunes and redeploys.
struct EnsembleMemberSpec {
  /// Registry name the member serves under.
  std::string name;
  /// The member's training copy: holds the current weights, is
  /// fine-tuned in place, and is snapshotted (state_dict) into a fresh
  /// instance for each deployment — the serving instance is never
  /// mutated while live.
  std::shared_ptr<tasks::EnergyForceTask> task;
  /// Factory for an architecture-identical instance to deploy (weights
  /// are copied in from `task`).
  std::function<std::shared_ptr<tasks::EnergyForceTask>()> make_serving_task;
};

struct ActiveLearningOptions {
  UncertaintyGateOptions gate;
  LabelBufferOptions buffer;
  /// Cutoff for the oracle's ground-truth labels (matches the LJ
  /// surrogate that generated the pretraining trajectory).
  double label_cutoff = 6.0;
  /// Fine-tune once the buffer has accumulated this many labels.
  std::int64_t min_labels = 8;
  /// Bound on fine-tune/hot-swap cycles (each cycle retrains every
  /// member and deploys a new version).
  std::int64_t max_finetunes = 1;
  std::int64_t finetune_epochs = 2;
  std::int64_t batch_size = 8;
  double learning_rate = 1e-3;
  std::uint64_t seed = 7;
  /// Collate options for fine-tuning and for the redeployed sessions —
  /// must match the members' original deployment so graphs are
  /// identical.
  data::CollateOptions collate;
  /// Scheduler options for redeployed versions.
  serve::SchedulerOptions scheduler;
};

/// The uncertainty-driven retraining loop (ROADMAP item 4): frames the
/// ensemble disagrees on are labeled by the oracle into a replay
/// LabelBuffer; once enough labels accumulate, every member is
/// fine-tuned via the existing Trainer and hot-swapped into the
/// registry as a new version — by design from inside a trajectory
/// wave's mid-flight window, so the swap exercises the registry's
/// drain-under-traffic guarantee (in-flight requests of the old version
/// are served, zero loss).
///
/// Wire-up: frame_hook() goes to TrajectoryScheduler::set_frame_hook,
/// mid_wave_hook() to set_mid_wave_hook. Gating marks a cycle pending;
/// the next wave's mid-flight window executes it. All decisions are
/// functions of frame order and ForceEvals only, so the loop is
/// deterministic across thread counts and wave sizes.
class ActiveLearningLoop {
 public:
  ActiveLearningLoop(serve::frontend::ServeFrontend& frontend,
                     std::vector<EnsembleMemberSpec> members,
                     const materials::PropertyOracle& oracle,
                     ActiveLearningOptions opts = {});

  /// Gate one advanced frame; label and buffer it when uncertain.
  void observe_frame(std::int64_t trajectory, std::int64_t step,
                     const materials::Structure& s, const ForceEval& ev);

  /// Run a pending fine-tune/hot-swap cycle (no-op otherwise).
  void maybe_finetune();

  /// Adapters for TrajectoryScheduler.
  std::function<void(std::int64_t, std::int64_t, const materials::Structure&,
                     const ForceEval&)>
  frame_hook();
  std::function<void()> mid_wave_hook();

  const UncertaintyGate& gate() const { return gate_; }
  const LabelBuffer& buffer() const { return buffer_; }
  std::int64_t labels() const { return buffer_.total_added(); }
  std::int64_t finetunes() const { return finetunes_; }
  bool pending() const { return pending_; }

 private:
  void finetune_and_swap();

  serve::frontend::ServeFrontend* frontend_;
  std::vector<EnsembleMemberSpec> members_;
  const materials::PropertyOracle* oracle_;
  ActiveLearningOptions opts_;
  UncertaintyGate gate_;
  LabelBuffer buffer_;
  bool pending_ = false;
  std::int64_t finetunes_ = 0;
};

}  // namespace matsci::sim
