#include "sim/trajectory_scheduler.hpp"

#include "core/macros.hpp"
#include "obs/metrics.hpp"

namespace matsci::sim {

TrajectoryScheduler::TrajectoryScheduler(
    std::vector<std::shared_ptr<materials::MDSimulator>> trajectories,
    std::shared_ptr<ForceBackend> backend, TrajectorySchedulerOptions opts)
    : trajectories_(std::move(trajectories)),
      backend_(std::move(backend)),
      opts_(opts) {
  MATSCI_CHECK(!trajectories_.empty(),
               "trajectory scheduler needs at least one trajectory");
  MATSCI_CHECK(backend_ != nullptr, "trajectory scheduler needs a backend");
  MATSCI_CHECK(opts.wave_size >= 0, "wave_size must be >= 0");
  for (const auto& t : trajectories_) {
    MATSCI_CHECK(t != nullptr, "null trajectory");
  }
}

void TrajectoryScheduler::seed_initial_forces() {
  // The initial configurations also go through the backend in waves, so
  // the first integration step uses exactly the forces the provider
  // would have produced in single-trajectory mode.
  std::vector<std::size_t> pending;
  for (std::size_t i = 0; i < trajectories_.size(); ++i) {
    trajectories_[i]->prepare();
    if (!trajectories_[i]->done()) pending.push_back(i);
  }
  const std::size_t chunk_cap =
      opts_.wave_size == 0 ? pending.size()
                           : static_cast<std::size_t>(opts_.wave_size);
  for (std::size_t begin = 0; begin < pending.size(); begin += chunk_cap) {
    const std::size_t end = std::min(begin + chunk_cap, pending.size());
    std::vector<const materials::Structure*> wave;
    wave.reserve(end - begin);
    for (std::size_t k = begin; k < end; ++k) {
      wave.push_back(&trajectories_[pending[k]]->structure());
    }
    std::vector<ForceEval> evals = backend_->evaluate(wave, mid_wave_hook_);
    for (std::size_t k = begin; k < end; ++k) {
      ForceEval& ev = evals[k - begin];
      trajectories_[pending[k]]->set_initial_forces(ev.energy,
                                                    std::move(ev.forces));
    }
  }
  seeded_ = true;
}

void TrajectoryScheduler::advance_chunk(const std::vector<std::size_t>& chunk) {
  std::vector<const materials::Structure*> wave;
  wave.reserve(chunk.size());
  for (const std::size_t id : chunk) {
    trajectories_[id]->begin_step();
    wave.push_back(&trajectories_[id]->structure());
  }
  std::vector<ForceEval> evals = backend_->evaluate(wave, mid_wave_hook_);
  for (std::size_t k = 0; k < chunk.size(); ++k) {
    const std::size_t id = chunk[k];
    const ForceEval& ev = evals[k];
    // Copy the forces in: `ev` stays intact for the frame hook.
    trajectories_[id]->finish_step(ev.energy, ev.forces);
    ++frames_;
    if (frame_hook_) {
      frame_hook_(static_cast<std::int64_t>(id),
                  trajectories_[id]->steps_done(),
                  trajectories_[id]->structure(), ev);
    }
  }
  obs::MetricsRegistry::global().counter("sim.frames").add(
      static_cast<std::int64_t>(chunk.size()));
}

bool TrajectoryScheduler::step_wave() {
  if (!seeded_) seed_initial_forces();
  std::vector<std::size_t> live;
  for (std::size_t i = 0; i < trajectories_.size(); ++i) {
    if (!trajectories_[i]->done()) live.push_back(i);
  }
  if (live.empty()) return false;
  ++waves_;
  obs::MetricsRegistry::global().counter("sim.waves").add(1);
  // Wave occupancy for the /statusz scrape: how many trajectories are
  // still running vs. the lockstep wave width they are advanced in.
  obs::MetricsRegistry::global().gauge("sim.wave.live").set(
      static_cast<double>(live.size()));
  obs::MetricsRegistry::global().gauge("sim.wave.size").set(
      static_cast<double>(opts_.wave_size == 0
                              ? live.size()
                              : static_cast<std::size_t>(opts_.wave_size)));

  const std::size_t chunk_cap =
      opts_.wave_size == 0 ? live.size()
                           : static_cast<std::size_t>(opts_.wave_size);
  for (std::size_t begin = 0; begin < live.size(); begin += chunk_cap) {
    const std::size_t end = std::min(begin + chunk_cap, live.size());
    advance_chunk(std::vector<std::size_t>(live.begin() + begin,
                                           live.begin() + end));
  }
  return true;
}

std::int64_t TrajectoryScheduler::run() {
  while (step_wave()) {
  }
  return frames_;
}

}  // namespace matsci::sim
