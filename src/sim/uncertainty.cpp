#include "sim/uncertainty.hpp"

#include "core/macros.hpp"
#include "obs/metrics.hpp"

namespace matsci::sim {

UncertaintyGate::UncertaintyGate(UncertaintyGateOptions opts) : opts_(opts) {
  MATSCI_CHECK(opts.force_std_threshold >= 0.0,
               "gate threshold must be non-negative");
}

bool UncertaintyGate::should_label(const ForceEval& ev) {
  ++seen_;
  obs::MetricsRegistry::global()
      .histogram("sim.force_std",
                 {0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0})
      .observe(ev.max_force_std);
  const bool gate = ev.max_force_std > opts_.force_std_threshold;
  if (gate) {
    ++gated_;
    obs::MetricsRegistry::global().counter("sim.gated_frames").add(1);
  }
  obs::MetricsRegistry::global().gauge("sim.gate_rate").set(gate_rate());
  return gate;
}

}  // namespace matsci::sim
