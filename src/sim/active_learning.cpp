#include "sim/active_learning.hpp"

#include "core/macros.hpp"
#include "data/dataloader.hpp"
#include "nn/serialize.hpp"
#include "obs/metrics.hpp"
#include "optim/adam.hpp"
#include "serve/session.hpp"
#include "train/trainer.hpp"

namespace matsci::sim {

ActiveLearningLoop::ActiveLearningLoop(
    serve::frontend::ServeFrontend& frontend,
    std::vector<EnsembleMemberSpec> members,
    const materials::PropertyOracle& oracle, ActiveLearningOptions opts)
    : frontend_(&frontend),
      members_(std::move(members)),
      oracle_(&oracle),
      opts_(std::move(opts)),
      gate_(opts_.gate),
      buffer_(opts_.buffer) {
  MATSCI_CHECK(!members_.empty(), "active learning needs ensemble members");
  for (const EnsembleMemberSpec& m : members_) {
    MATSCI_CHECK(m.task != nullptr && m.make_serving_task != nullptr,
                 "ensemble member '" << m.name
                                     << "' needs a task and a factory");
  }
  MATSCI_CHECK(opts_.min_labels >= 1, "min_labels must be >= 1");
}

void ActiveLearningLoop::observe_frame(std::int64_t /*trajectory*/,
                                       std::int64_t /*step*/,
                                       const materials::Structure& s,
                                       const ForceEval& ev) {
  if (!gate_.should_label(ev)) return;

  // Oracle round-trip: ground-truth energy/forces on the same surface
  // the pretraining labels came from.
  data::StructureSample sample = s.to_sample();
  std::vector<core::Vec3> true_forces;
  const double energy =
      oracle_->energy_and_forces(s, true_forces, opts_.label_cutoff);
  sample.scalar_targets["energy"] = static_cast<float>(
      energy / static_cast<double>(s.num_atoms()));
  sample.forces = std::move(true_forces);
  buffer_.add(std::move(sample));
  obs::MetricsRegistry::global().counter("sim.labels").add(1);

  if (buffer_.total_added() >= opts_.min_labels &&
      finetunes_ < opts_.max_finetunes) {
    pending_ = true;
  }
}

void ActiveLearningLoop::maybe_finetune() {
  if (!pending_ || finetunes_ >= opts_.max_finetunes) return;
  pending_ = false;
  finetune_and_swap();
}

void ActiveLearningLoop::finetune_and_swap() {
  ++finetunes_;
  obs::MetricsRegistry::global().counter("sim.finetunes").add(1);

  for (std::size_t m = 0; m < members_.size(); ++m) {
    EnsembleMemberSpec& member = members_[m];

    data::DataLoaderOptions lo;
    lo.batch_size = opts_.batch_size;
    lo.seed = opts_.seed + m;  // decorrelate member minibatch orders
    lo.collate = opts_.collate;
    data::DataLoader loader(buffer_, lo);

    optim::Adam opt =
        optim::make_adamw(member.task->parameters(), opts_.learning_rate);
    train::TrainerOptions topts;
    topts.max_epochs = opts_.finetune_epochs;
    train::Trainer(topts).fit(*member.task, loader, nullptr, opt);

    // Snapshot the fine-tuned weights into a fresh instance and publish
    // it as the next version. deploy() swaps atomically and drains the
    // old version — requests already in flight (the current wave's)
    // are served by it, new submissions land on the new version.
    const nn::StateDict sd = nn::state_dict(*member.task);
    std::shared_ptr<tasks::EnergyForceTask> serving =
        member.make_serving_task();
    nn::load_into_module(*serving, sd);
    serve::InferenceSessionOptions sopts;
    sopts.collate = opts_.collate;
    auto session = std::make_shared<serve::InferenceSession>(serving, sopts);
    const std::uint64_t next =
        frontend_->registry().active_version(member.name) + 1;
    frontend_->deploy(member.name, next, session, opts_.scheduler);
    obs::MetricsRegistry::global().counter("sim.swaps").add(1);
  }
}

std::function<void(std::int64_t, std::int64_t, const materials::Structure&,
                   const ForceEval&)>
ActiveLearningLoop::frame_hook() {
  return [this](std::int64_t traj, std::int64_t step,
                const materials::Structure& s, const ForceEval& ev) {
    observe_frame(traj, step, s, ev);
  };
}

std::function<void()> ActiveLearningLoop::mid_wave_hook() {
  return [this]() { maybe_finetune(); };
}

}  // namespace matsci::sim
