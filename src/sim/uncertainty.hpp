#pragma once

#include <cstdint>

#include "sim/force_backend.hpp"

namespace matsci::sim {

struct UncertaintyGateOptions {
  /// A frame whose max per-atom ensemble force std exceeds this (eV/Å)
  /// is routed to the oracle for a ground-truth label.
  double force_std_threshold = 0.05;
};

/// The active-learning gate: watches the committee disagreement of every
/// frame the scheduler advances and flags the frames the ensemble is
/// least sure about. Pure function of the ForceEval, so gating is
/// deterministic; the counters feed the sim.gate_rate gauge.
class UncertaintyGate {
 public:
  explicit UncertaintyGate(UncertaintyGateOptions opts = {});

  /// True when `ev` should be labeled. Updates seen/gated counts and
  /// the obs gauges.
  bool should_label(const ForceEval& ev);

  std::int64_t seen() const { return seen_; }
  std::int64_t gated() const { return gated_; }
  double gate_rate() const {
    return seen_ == 0 ? 0.0
                      : static_cast<double>(gated_) /
                            static_cast<double>(seen_);
  }
  const UncertaintyGateOptions& options() const { return opts_; }

 private:
  UncertaintyGateOptions opts_;
  std::int64_t seen_ = 0;
  std::int64_t gated_ = 0;
};

}  // namespace matsci::sim
