#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "materials/md.hpp"
#include "sim/force_backend.hpp"

namespace matsci::sim {

struct TrajectorySchedulerOptions {
  /// Trajectories handed to the backend per evaluate() call: the live
  /// set of each lockstep step is processed in chunks of this size, in
  /// trajectory-id order. 0 = the whole live set in one call.
  std::int64_t wave_size = 0;
};

/// Advances N concurrent MDSimulator trajectories in lockstep waves:
/// every live trajectory completes step k before any starts k+1, and
/// within a step the force evaluations of up to wave_size trajectories
/// are handed to the ForceBackend as one wave so the serve tier
/// coalesces them into micro-batches.
///
/// Determinism: trajectories are integrated by their own MDSimulators
/// (deterministic per (structure, options, seed)), force evaluations are
/// per-configuration and bit-exact whether batched or not (serve
/// contract), and waves are formed in trajectory-id order from state
/// that does not depend on timing — so the full multi-trajectory result
/// is bit-identical across thread counts and wave sizes.
class TrajectoryScheduler {
 public:
  /// Called once per advanced frame, after its wave has been gathered:
  /// (trajectory id, completed step count, configuration, evaluation).
  /// The active-learning loop gates frames here.
  using FrameHook = std::function<void(
      std::int64_t, std::int64_t, const materials::Structure&,
      const ForceEval&)>;

  TrajectoryScheduler(
      std::vector<std::shared_ptr<materials::MDSimulator>> trajectories,
      std::shared_ptr<ForceBackend> backend,
      TrajectorySchedulerOptions opts = {});

  void set_frame_hook(FrameHook hook) { frame_hook_ = std::move(hook); }
  /// Forwarded to ForceBackend::evaluate — runs with the wave's
  /// requests in flight (the hot-swap window).
  void set_mid_wave_hook(ForceBackend::MidWaveHook hook) {
    mid_wave_hook_ = std::move(hook);
  }

  /// Advance every live trajectory by one step (one lockstep wave over
  /// the live set). Returns false once all trajectories are done.
  bool step_wave();

  /// Drive all trajectories to completion; returns total frames
  /// advanced.
  std::int64_t run();

  std::int64_t frames_advanced() const { return frames_; }
  std::int64_t waves() const { return waves_; }
  const std::vector<std::shared_ptr<materials::MDSimulator>>& trajectories()
      const {
    return trajectories_;
  }

 private:
  /// Evaluate `live` (a subset of trajectory ids, already begun) in
  /// wave_size chunks and finish their steps.
  void advance_chunk(const std::vector<std::size_t>& chunk);
  void seed_initial_forces();

  std::vector<std::shared_ptr<materials::MDSimulator>> trajectories_;
  std::shared_ptr<ForceBackend> backend_;
  TrajectorySchedulerOptions opts_;
  FrameHook frame_hook_;
  ForceBackend::MidWaveHook mid_wave_hook_;
  bool seeded_ = false;
  std::int64_t frames_ = 0;
  std::int64_t waves_ = 0;
};

}  // namespace matsci::sim
