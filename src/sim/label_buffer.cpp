#include "sim/label_buffer.hpp"

#include "core/macros.hpp"

namespace matsci::sim {

LabelBuffer::LabelBuffer(LabelBufferOptions opts) : opts_(opts) {
  MATSCI_CHECK(opts.capacity >= 1, "label buffer capacity must be >= 1");
}

void LabelBuffer::add(data::StructureSample sample) {
  if (static_cast<std::int64_t>(ring_.size()) < opts_.capacity) {
    ring_.push_back(std::move(sample));
  } else {
    ring_[static_cast<std::size_t>(next_)] = std::move(sample);
    next_ = (next_ + 1) % opts_.capacity;
  }
  ++total_;
}

data::StructureSample LabelBuffer::get(std::int64_t index) const {
  MATSCI_CHECK(index >= 0 && index < size(),
               "label buffer index out of range");
  return ring_[static_cast<std::size_t>(index)];
}

}  // namespace matsci::sim
