#include "sim/ml_potential.hpp"

#include <chrono>
#include <cmath>
#include <thread>

#include "core/macros.hpp"
#include "obs/context.hpp"
#include "obs/metrics.hpp"

namespace matsci::sim {

namespace {

obs::Histogram& batch_occupancy_histogram() {
  return obs::MetricsRegistry::global().histogram(
      "sim.batch_occupancy",
      {1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0});
}

}  // namespace

ServedForceBackend::ServedForceBackend(serve::frontend::ServeFrontend& frontend,
                                       ServedPotentialOptions opts)
    : frontend_(&frontend), opts_(std::move(opts)) {
  MATSCI_CHECK(!opts_.members.empty(),
               "served force backend needs at least one ensemble member");
}

std::vector<ForceEval> ServedForceBackend::evaluate(
    const std::vector<const materials::Structure*>& wave,
    const MidWaveHook& mid) {
  const std::size_t num_traj = wave.size();
  const std::size_t num_members = opts_.members.size();
  std::vector<std::future<serve::PredictResult>> futures(num_traj *
                                                         num_members);
  std::vector<std::uint64_t> versions(num_traj * num_members, 0);

  serve::frontend::FrontendRequestOptions ropts;
  ropts.priority = opts_.priority;
  ropts.use_cache = opts_.use_cache;
  // One trace per wave: every member request is minted as a child of
  // the wave context, so the whole (trajectories × members) fan-out
  // shares one trace id from here through the serve forward spans.
  const obs::TraceContext wave_ctx = obs::TraceContext::mint();
  ropts.parent = wave_ctx;
  last_wave_trace_id_ = wave_ctx.trace_id();
  const std::uint64_t wave_start_ns = obs::span_clock_ns();

  // Submit everything before gathering anything: the serve schedulers
  // see the whole wave at once and coalesce it into micro-batches.
  for (std::size_t t = 0; t < num_traj; ++t) {
    const data::StructureSample sample = wave[t]->to_sample();
    for (std::size_t m = 0; m < num_members; ++m) {
      const std::size_t slot = t * num_members + m;
      for (std::int64_t attempt = 0;; ++attempt) {
        serve::frontend::SubmitOutcome outcome =
            frontend_->submit(opts_.members[m], sample, opts_.target, ropts);
        MATSCI_CHECK(outcome.status !=
                         serve::frontend::SubmitStatus::kNoSuchModel,
                     "ensemble member '" << opts_.members[m]
                                         << "' is not deployed");
        if (outcome.ok()) {
          futures[slot] = std::move(outcome.future);
          versions[slot] = outcome.version;
          break;
        }
        MATSCI_CHECK(attempt < opts_.max_retries,
                     "force request shed " << opts_.max_retries
                                           << " times in a row");
        ++resubmits_;
        const double backoff_us =
            std::min(outcome.retry_after_us, 1000.0);
        std::this_thread::sleep_for(std::chrono::microseconds(
            static_cast<std::int64_t>(std::max(backoff_us, 1.0))));
      }
    }
  }

  if (mid) mid();

  obs::Histogram& occupancy = batch_occupancy_histogram();
  obs::MetricsRegistry::global().counter("sim.requests").add(
      static_cast<std::int64_t>(num_traj * num_members));

  std::vector<ForceEval> out(num_traj);
  std::vector<serve::PredictResult> member_results(num_members);
  for (std::size_t t = 0; t < num_traj; ++t) {
    const std::size_t n =
        static_cast<std::size_t>(wave[t]->num_atoms());
    ForceEval& ev = out[t];
    ev.forces.assign(n, core::Vec3{});
    double batch_sum = 0.0;
    for (std::size_t m = 0; m < num_members; ++m) {
      const std::size_t slot = t * num_members + m;
      member_results[m] = futures[slot].get();
      const tasks::Prediction& p = member_results[m].prediction;
      MATSCI_CHECK(p.scores.size() == 3 * n,
                   "forces target returned " << p.scores.size()
                                             << " components for " << n
                                             << " atoms");
      ev.energy += static_cast<double>(p.value);
      for (std::size_t i = 0; i < n; ++i) {
        ev.forces[i] += core::Vec3{
            static_cast<double>(p.scores[3 * i + 0]),
            static_cast<double>(p.scores[3 * i + 1]),
            static_cast<double>(p.scores[3 * i + 2])};
      }
      ev.version = std::max(ev.version, versions[slot]);
      batch_sum += static_cast<double>(member_results[m].batch_size);
      occupancy.observe(static_cast<double>(member_results[m].batch_size));
    }
    const double inv_k = 1.0 / static_cast<double>(num_members);
    ev.energy *= inv_k;
    for (core::Vec3& f : ev.forces) f = f * inv_k;
    ev.mean_batch_size = batch_sum * inv_k;

    // Committee disagreement: per-atom standard deviation of the member
    // force vectors around the ensemble mean.
    double std_sum = 0.0;
    double std_max = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      double var = 0.0;
      for (std::size_t m = 0; m < num_members; ++m) {
        const tasks::Prediction& p = member_results[m].prediction;
        const core::Vec3 fm{static_cast<double>(p.scores[3 * i + 0]),
                            static_cast<double>(p.scores[3 * i + 1]),
                            static_cast<double>(p.scores[3 * i + 2])};
        var += core::sq_norm(fm - ev.forces[i]);
      }
      const double std_i = std::sqrt(var * inv_k);
      std_sum += std_i;
      std_max = std::max(std_max, std_i);
    }
    ev.mean_force_std = n > 0 ? std_sum / static_cast<double>(n) : 0.0;
    ev.max_force_std = std_max;
  }
  obs::record_span("sim/wave", wave_start_ns,
                   obs::span_clock_ns() - wave_start_ns, wave_ctx);
  return out;
}

MLPotential::MLPotential(serve::frontend::ServeFrontend& frontend,
                         ServedPotentialOptions opts)
    : backend_(std::make_shared<ServedForceBackend>(frontend,
                                                    std::move(opts))) {}

MLPotential::MLPotential(std::shared_ptr<ForceBackend> backend)
    : backend_(std::move(backend)) {
  MATSCI_CHECK(backend_ != nullptr, "MLPotential needs a backend");
}

double MLPotential::energy_and_forces(const materials::Structure& s,
                                      std::vector<core::Vec3>& forces) {
  const std::vector<const materials::Structure*> wave{&s};
  std::vector<ForceEval> evals = backend_->evaluate(wave);
  last_ = std::move(evals[0]);
  forces = last_.forces;
  return last_.energy;
}

}  // namespace matsci::sim
