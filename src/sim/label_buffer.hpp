#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "data/sample.hpp"

namespace matsci::sim {

struct LabelBufferOptions {
  /// Ring capacity: once full, new labels overwrite the oldest — the
  /// replay buffer tracks the most recent region of configuration
  /// space the dynamics has visited.
  std::int64_t capacity = 512;
};

/// Replay buffer of oracle-labeled frames, exposed as a
/// data::StructureDataset so the existing DataLoader/Trainer stack
/// fine-tunes from it directly (no bespoke training path).
class LabelBuffer : public data::StructureDataset {
 public:
  explicit LabelBuffer(LabelBufferOptions opts = {});

  /// Append one labeled sample (FIFO-evicting the oldest at capacity).
  void add(data::StructureSample sample);

  std::int64_t size() const override {
    return static_cast<std::int64_t>(ring_.size());
  }
  data::StructureSample get(std::int64_t index) const override;
  std::string name() const override { return "sim/label_buffer"; }

  /// Lifetime adds (>= size() once eviction starts).
  std::int64_t total_added() const { return total_; }

 private:
  LabelBufferOptions opts_;
  std::vector<data::StructureSample> ring_;
  std::int64_t next_ = 0;  ///< eviction cursor once at capacity
  std::int64_t total_ = 0;
};

}  // namespace matsci::sim
