#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "materials/md.hpp"
#include "materials/structure.hpp"

namespace matsci::sim {

/// One evaluated configuration: the ensemble-combined energy/forces plus
/// the disagreement statistics the uncertainty gate consumes.
struct ForceEval {
  double energy = 0.0;                ///< ensemble-mean total energy (eV)
  std::vector<core::Vec3> forces;     ///< ensemble-mean forces (eV/Å)
  /// Per-atom force standard deviation across ensemble members
  /// (√ of the member variance of the force vector, eV/Å): the max over
  /// atoms is the gate statistic, the mean a smoother monitor.
  double max_force_std = 0.0;
  double mean_force_std = 0.0;
  /// Highest model version that served this evaluation (tracks
  /// hot-swaps through the active-learning loop).
  std::uint64_t version = 0;
  /// Mean micro-batch size the member requests were served in (1 for
  /// local evaluation) — the wave-coalescing observability signal.
  double mean_batch_size = 1.0;
};

/// Batch force evaluator for the trajectory scheduler: turns a wave of
/// configurations into ForceEvals. The served implementation
/// (ServedForceBackend) submits every (configuration, ensemble member)
/// request up front so the serve tier can coalesce them into
/// micro-batches; `mid` — when provided — runs after all submissions
/// and before the first gather, which is exactly the window where a
/// model hot-swap exercises the registry's drain-under-traffic
/// guarantee (the active-learning loop fine-tunes there).
class ForceBackend {
 public:
  using MidWaveHook = std::function<void()>;

  virtual ~ForceBackend() = default;

  /// Evaluate every configuration in `wave` (pointers remain owned by
  /// the caller and must stay valid for the duration of the call).
  /// Results are index-aligned with `wave`.
  virtual std::vector<ForceEval> evaluate(
      const std::vector<const materials::Structure*>& wave,
      const MidWaveHook& mid = {}) = 0;
};

/// Synchronous in-process backend over any materials::ForceProvider
/// (typically the LJ surrogate): no batching, no uncertainty — the
/// baseline the served path is benchmarked against, and the cheap
/// stand-in for tests that don't need a model.
class LocalForceBackend : public ForceBackend {
 public:
  explicit LocalForceBackend(
      std::shared_ptr<materials::ForceProvider> provider);

  std::vector<ForceEval> evaluate(
      const std::vector<const materials::Structure*>& wave,
      const MidWaveHook& mid = {}) override;

 private:
  std::shared_ptr<materials::ForceProvider> provider_;
};

}  // namespace matsci::sim
