#include "sim/force_backend.hpp"

#include "core/macros.hpp"

namespace matsci::sim {

LocalForceBackend::LocalForceBackend(
    std::shared_ptr<materials::ForceProvider> provider)
    : provider_(std::move(provider)) {
  MATSCI_CHECK(provider_ != nullptr, "LocalForceBackend needs a provider");
}

std::vector<ForceEval> LocalForceBackend::evaluate(
    const std::vector<const materials::Structure*>& wave,
    const MidWaveHook& mid) {
  if (mid) mid();
  std::vector<ForceEval> out(wave.size());
  for (std::size_t t = 0; t < wave.size(); ++t) {
    out[t].energy = provider_->energy_and_forces(*wave[t], out[t].forces);
  }
  return out;
}

}  // namespace matsci::sim
