#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "serve/frontend/frontend.hpp"
#include "sim/force_backend.hpp"
#include "tasks/energy_force.hpp"

namespace matsci::sim {

struct ServedPotentialOptions {
  /// Registry names of the ensemble members (all deployed on the same
  /// ServeFrontend). Order is the combination order, so results are
  /// deterministic in the member list.
  std::vector<std::string> members;
  /// Serving target key; EnergyForceTask packs the total energy in
  /// Prediction.value and the 3·n force components in scores.
  std::string target = tasks::EnergyForceTask::kForcesTarget;
  serve::Priority priority = serve::Priority::kStandard;
  /// MD frames must bypass the response cache: sym::canonical quantizes
  /// coordinates on a 1e-4 Å grid, so consecutive perturbed frames
  /// collide onto one cache key and dynamics would be fed stale forces
  /// (regression-tested in test_serve_frontend).
  bool use_cache = false;
  /// Resubmit budget per request when admission sheds (unbounded queues
  /// never shed; this is a safety valve for capacity-bounded deploys).
  std::int64_t max_retries = 1000;
};

/// ForceBackend over a ServeFrontend: one request per (configuration,
/// ensemble member), all submitted before any gather so the serve tier
/// coalesces a trajectory wave into micro-batches. Member predictions
/// are combined in fixed member order — mean energy/forces drive the
/// dynamics (committee potential), the per-atom force spread feeds the
/// uncertainty gate.
class ServedForceBackend : public ForceBackend {
 public:
  ServedForceBackend(serve::frontend::ServeFrontend& frontend,
                     ServedPotentialOptions opts);

  std::vector<ForceEval> evaluate(
      const std::vector<const materials::Structure*>& wave,
      const MidWaveHook& mid = {}) override;

  /// Requests resubmitted after an admission shed.
  std::int64_t resubmits() const { return resubmits_; }
  /// Trace id of the most recent wave (0 before the first wave or under
  /// -DMATSCI_OBS=OFF). Every member request of that wave carried it,
  /// so it links the "sim/wave" span to the serve-stage spans in
  /// /tracez — the end-to-end continuity check in bench/fig4_mdscale.
  std::uint64_t last_wave_trace_id() const { return last_wave_trace_id_; }
  const ServedPotentialOptions& options() const { return opts_; }

 private:
  serve::frontend::ServeFrontend* frontend_;
  ServedPotentialOptions opts_;
  std::int64_t resubmits_ = 0;
  std::uint64_t last_wave_trace_id_ = 0;
};

/// The served ML potential as a drop-in materials::ForceProvider: an
/// MDSimulator pointed at one of these runs its dynamics through the
/// inference stack one configuration at a time (the sequential baseline
/// of bench/fig4_mdscale; TrajectoryScheduler + ServedForceBackend is
/// the batched path). Keeps the last ForceEval so callers can inspect
/// ensemble uncertainty alongside the ForceProvider contract.
class MLPotential : public materials::ForceProvider {
 public:
  MLPotential(serve::frontend::ServeFrontend& frontend,
              ServedPotentialOptions opts);
  explicit MLPotential(std::shared_ptr<ForceBackend> backend);

  double energy_and_forces(const materials::Structure& s,
                           std::vector<core::Vec3>& forces) override;

  const ForceEval& last_eval() const { return last_; }

 private:
  std::shared_ptr<ForceBackend> backend_;
  ForceEval last_;
};

}  // namespace matsci::sim
