#pragma once

// Umbrella header for the observability subsystem (DESIGN.md §10):
//   obs/metrics.hpp — MetricsRegistry: counters, gauges, fixed-bucket
//                     histograms, step-keyed series (sharded, lock-free
//                     emission paths)
//   obs/trace.hpp   — MATSCI_TRACE_SCOPE spans into per-thread rings
//   obs/context.hpp — TraceContext request-tracing ids (mint/child),
//                     record_span, and the in-flight request set
//   obs/export.hpp  — Chrome trace_event JSON, Prometheus text, and
//                     BENCH_*.json JSON-lines snapshots (BenchReporter)
//   obs/health.hpp  — training health monitor: per-layer gradient
//                     stats, anomaly detection (rolling median/MAD),
//                     flight-recorder post-mortem bundles
//   obs/http/http_server.hpp — embedded telemetry HTTP server
//                     (/metrics /healthz /statusz /tracez)

#include "obs/context.hpp"
#include "obs/export.hpp"
#include "obs/health.hpp"
#include "obs/http/http_server.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
