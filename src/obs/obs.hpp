#pragma once

// Umbrella header for the observability subsystem (DESIGN.md §10):
//   obs/metrics.hpp — MetricsRegistry: counters, gauges, fixed-bucket
//                     histograms, step-keyed series (sharded, lock-free
//                     emission paths)
//   obs/trace.hpp   — MATSCI_TRACE_SCOPE spans into per-thread rings
//   obs/export.hpp  — Chrome trace_event JSON, Prometheus text, and
//                     BENCH_*.json JSON-lines snapshots (BenchReporter)

#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
