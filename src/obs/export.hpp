#pragma once

// Exporters for the obs subsystem (DESIGN.md §10):
//   * Chrome trace_event JSON — load TRACE_*.json in chrome://tracing
//     or https://ui.perfetto.dev for a per-thread span timeline;
//   * Prometheus-style text exposition of a MetricsRegistry snapshot;
//   * JSON-lines snapshots (BENCH_*.json) — the single structured
//     format every bench/ binary emits: one flat JSON object per line,
//     a leading meta record, trailing registry-snapshot records.
// Plus a structural validator for the Chrome format (used by the
// `obs`-labeled round-trip ctest) built on a minimal strict JSON
// parser.

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace matsci::obs {

/// Render spans as a Chrome trace_event JSON document: one "X"
/// (complete) event per span, timestamps in microseconds relative to
/// the earliest span, pid fixed at 1, tid from the tracer. When
/// `dropped_events >= 0`, an "otherData" metadata object records how
/// many spans the per-thread rings overwrote (ring overflow used to be
/// silent in the export).
std::string chrome_trace_json(const std::vector<TraceEvent>& events,
                              std::int64_t dropped_events = -1);
void write_chrome_trace(const std::string& path,
                        const std::vector<TraceEvent>& events,
                        std::int64_t dropped_events = -1);

/// True iff `json` parses as strict JSON and has the Chrome trace
/// shape: root object, "traceEvents" array, every event an object with
/// string "name"/"ph", numeric "ts"/"pid"/"tid", and numeric "dur" on
/// "X" events. On failure, *error (if given) says what broke.
bool validate_chrome_trace_json(const std::string& json,
                                std::string* error = nullptr);

/// True iff `text` is one strict JSON value (any type).
bool validate_json(const std::string& text, std::string* error = nullptr);

/// Prometheus text exposition: counters, gauges, histograms (with
/// cumulative le-buckets including the mandatory `+Inf` bucket, _sum
/// and _count), and series (exposed as a gauge carrying the last
/// value). Names are sanitized to [a-zA-Z0-9_:] and prefixed
/// "matsci_"; label values and HELP strings are escaped per the text
/// exposition format. A histogram with a recorded exemplar emits it on
/// its `+Inf` bucket line in OpenMetrics style:
///   `... # {trace_id="<16-hex>"} <observed value>`.
std::string prometheus_text(const MetricsRegistry::Snapshot& snapshot);
void write_prometheus(const std::string& path,
                      const MetricsRegistry::Snapshot& snapshot);

/// Escaping rules from the Prometheus text exposition format: label
/// values escape backslash, double-quote, and newline; HELP text
/// escapes backslash and newline.
std::string prometheus_escape_label_value(const std::string& s);
std::string prometheus_escape_help(const std::string& s);

/// Structural validator for the text exposition format (the `obs`
/// round-trip test feeds prometheus_text back through this): every
/// non-comment line must parse as `name[{labels}] value` with an
/// optional OpenMetrics exemplar suffix (` # {labels} value`), label
/// values must be properly quoted/escaped, histogram bucket counts
/// must be cumulative (non-decreasing), and every histogram must end
/// its buckets with le="+Inf" equal to its `_count`. On failure,
/// *error (if given) says what broke.
bool validate_prometheus_text(const std::string& text,
                              std::string* error = nullptr);

/// Insertion-ordered flat JSON object builder for snapshot lines.
class JsonRecord {
 public:
  JsonRecord& set(const std::string& key, double value);
  JsonRecord& set(const std::string& key, std::int64_t value);
  JsonRecord& set(const std::string& key, int value) {
    return set(key, static_cast<std::int64_t>(value));
  }
  JsonRecord& set(const std::string& key, const std::string& value);
  JsonRecord& set(const std::string& key, const char* value) {
    return set(key, std::string(value));
  }
  JsonRecord& set(const std::string& key, bool value);
  /// Pre-serialized JSON value (arrays / nested objects).
  JsonRecord& set_raw(const std::string& key, const std::string& json);

  std::string str() const;  ///< {"k":v,...} in insertion order

 private:
  std::vector<std::pair<std::string, std::string>> fields_;
};

std::string json_escape(const std::string& s);
/// Compact numeric rendering ("%.10g"); inf/nan, which JSON lacks,
/// render as null.
std::string json_number(double v);

/// One bench run's structured output. Construction clears the tracer's
/// rings and enables tracing; add() appends a record and echoes the
/// JSON line to stdout (the log-scraping contract predating BENCH_*
/// files); finish() writes
///   BENCH_<name>.json  — meta line, every record, registry snapshot
///   TRACE_<name>.json  — Chrome trace of every span since construction
/// into `out_dir` and prints both paths.
class BenchReporter {
 public:
  explicit BenchReporter(std::string name, std::string out_dir = ".");

  /// Append one record. A "bench" field with the reporter's name is
  /// prepended if the record doesn't carry one.
  void add(const JsonRecord& record);

  /// Records added so far (excluding meta/snapshot lines).
  std::size_t num_records() const { return records_.size(); }

  std::string bench_json_path() const;
  std::string trace_json_path() const;

  /// Write both artifacts. Idempotent; also invoked by the destructor
  /// if never called explicitly.
  void finish();

  ~BenchReporter();
  BenchReporter(const BenchReporter&) = delete;
  BenchReporter& operator=(const BenchReporter&) = delete;

 private:
  std::string name_;
  std::string out_dir_;
  std::vector<std::string> records_;
  bool finished_ = false;
};

/// Registry snapshot as BENCH_*.json lines: one record per metric,
/// tagged {"record":"counter"|"gauge"|"histogram"|"series"}.
std::vector<JsonRecord> snapshot_records(
    const MetricsRegistry::Snapshot& snapshot);

}  // namespace matsci::obs
