#pragma once

// End-to-end request tracing (DESIGN.md §10): a TraceContext is the
// 64-bit identity a request carries from ServeFrontend admission
// through the RequestQueue, the BatchScheduler's micro-batch, the
// InferenceSession forward, and — for MD — the sim wave that submitted
// it. Three ids:
//   trace_id         — one per logical request tree (wave, request),
//                      shared by every span the request touches
//   span_id          — one per context, identifies this hop
//   parent_span_id   — the span that minted this context (0 = root)
// Contexts are minted from a process-wide counter hashed through a
// splitmix64 finalizer, so ids are unique, non-zero, and cheap (one
// relaxed fetch_add, no locks, no clock reads).
//
// Under -DMATSCI_OBS=OFF the struct is empty (zero-size via
// [[no_unique_address]] at embed sites), mint()/child() return the
// empty context, every accessor returns 0, record_span() is a no-op
// that evaluates nothing, and InflightSet compiles to stubs — the
// carrying structs in serve/ shrink back to their pre-tracing layout
// and no id-generation code runs.

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "obs/trace.hpp"

namespace matsci::obs {

#if defined(MATSCI_OBS_ENABLED)

struct TraceContext {
  std::uint64_t trace = 0;   ///< request-tree id, shared across hops
  std::uint64_t span = 0;    ///< this hop's id
  std::uint64_t parent = 0;  ///< span that minted this context (0 = root)

  /// Fresh root context: new trace id, new span id, no parent.
  static TraceContext mint();
  /// Child hop: same trace, fresh span, parent = this context's span.
  TraceContext child() const;

  bool valid() const { return trace != 0; }
  std::uint64_t trace_id() const { return trace; }
  std::uint64_t span_id() const { return span; }
  std::uint64_t parent_span_id() const { return parent; }
};

/// Record a completed span carrying `ctx`'s ids (no-op when the tracer
/// is disabled, like MATSCI_TRACE_SCOPE). `start_ns` must come from
/// Tracer::now_ns() / the steady clock epoch.
void record_span(const char* name, std::uint64_t start_ns,
                 std::uint64_t dur_ns, const TraceContext& ctx);
/// Same, with an explicit parent link (e.g. a member request's forward
/// span pointing at the batch span instead of its own submit parent).
void record_span(const char* name, std::uint64_t start_ns,
                 std::uint64_t dur_ns, const TraceContext& ctx,
                 std::uint64_t parent_span_id);

/// Steady-clock ns for span endpoints; 0 (no clock read) when obs is
/// compiled out.
inline std::uint64_t span_clock_ns() { return Tracer::now_ns(); }

#else  // !MATSCI_OBS_ENABLED

struct TraceContext {
  static TraceContext mint() { return {}; }
  TraceContext child() const { return {}; }
  bool valid() const { return false; }
  std::uint64_t trace_id() const { return 0; }
  std::uint64_t span_id() const { return 0; }
  std::uint64_t parent_span_id() const { return 0; }
};

inline void record_span(const char*, std::uint64_t, std::uint64_t,
                        const TraceContext&) {}
inline void record_span(const char*, std::uint64_t, std::uint64_t,
                        const TraceContext&, std::uint64_t) {}
inline std::uint64_t span_clock_ns() { return 0; }

#endif  // MATSCI_OBS_ENABLED

/// Fixed-width lowercase hex rendering of a trace/span id — the wire
/// form used by /tracez, exemplars, and flight-recorder bundles.
std::string trace_id_hex(std::uint64_t id);

/// Process-wide set of requests that were admitted but whose futures
/// have not resolved yet. The frontend inserts at accept, the scheduler
/// erases at fulfillment (and the queue erases at deadline drop), and
/// FlightRecorder::dump embeds a snapshot so a crash bundle names the
/// client requests that were in flight at abort time. Mutex-guarded
/// (admission is not a per-sample hot path) and bounded: beyond
/// kMaxTracked entries inserts are dropped — the bundle is a
/// best-effort post-mortem aid, not an accounting ledger.
class InflightSet {
 public:
  static constexpr std::size_t kMaxTracked = 4096;

  static InflightSet& global();

#if defined(MATSCI_OBS_ENABLED)
  void insert(const TraceContext& ctx);
  void erase(const TraceContext& ctx);
  std::vector<TraceContext> snapshot() const;
  std::size_t size() const;

 private:
  mutable std::mutex mu_;
  std::vector<TraceContext> entries_;
#else
  void insert(const TraceContext&) {}
  void erase(const TraceContext&) {}
  std::vector<TraceContext> snapshot() const { return {}; }
  std::size_t size() const { return 0; }
#endif
};

}  // namespace matsci::obs
