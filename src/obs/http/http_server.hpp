#pragma once

// Embedded telemetry plane (DESIGN.md §10): a minimal HTTP/1.1 server
// bound to loopback that exposes the live obs state of this process —
//
//   /metrics  Prometheus text exposition of MetricsRegistry::global()
//             (validator-clean, with histogram exemplars)
//   /healthz  liveness: 200 {"healthy":true,...} or 503, fed by an
//             application-registered health source (HealthMonitor +
//             anomaly state in the trainer; queue state in serve)
//   /statusz  JSON snapshot: uptime, the full registry, and every
//             registered application section (frontend admission/cache
//             stats, queue depths, sim wave occupancy, ...)
//   /tracez   the most recent spans drained from the per-thread trace
//             rings, with trace/span/parent ids in hex
//   /         plain-text index of the endpoints above
//
// Pool-friendly by construction: the dispatcher is ONE task submitted
// to core::parallel::ThreadPool::global() (no raw threads — the
// no-raw-threads lint applies to this directory), it multiplexes the
// listen socket against a wake pipe with poll(2), and connections are
// handled serially inline (scrape cadence is seconds; serving a scrape
// is microseconds). stop() reclaims the task with run_now_or_wait(),
// so shutdown cannot deadlock even when the pool is saturated: a
// dispatcher that never got a slot runs inline, sees the stop flag,
// and exits immediately.
//
// Pool-slot caveat: the dispatcher occupies one pool slot while
// running. BatchScheduler with default options occupies pool.size()
// slots with dispatch jobs, so START THE TELEMETRY SERVER BEFORE
// deploying schedulers (or give the schedulers explicit num_workers <
// pool size); otherwise the server's task may queue behind the
// scheduler jobs until shutdown. Tests and benches in this repo start
// the server first.
//
// Under -DMATSCI_OBS=OFF the class compiles to stubs — start() returns
// false, port() returns -1 — and the .cpp's socket implementation is
// preprocessed away entirely, so no socket code is linked.

#include <cstdint>
#include <functional>
#include <memory>
#include <string>

namespace matsci::obs::http {

/// What /healthz reports. `healthy == false` turns the response into
/// HTTP 503 so a Kubernetes-style prober fails over without parsing
/// the body.
struct HealthState {
  bool healthy = true;
  std::string detail = "ok";
  std::int64_t anomalies = 0;  ///< anomaly count from the health monitor
};

struct TelemetryServerOptions {
  /// Bind address. Loopback by default: this is an in-process scrape
  /// plane, not a public listener.
  std::string host = "127.0.0.1";
  /// TCP port; 0 picks an ephemeral port (read it back via port()).
  int port = 0;
  /// Most recent spans returned by /tracez (newest kept).
  std::int64_t tracez_limit = 512;
  /// Per-connection socket send/receive timeout.
  std::int64_t io_timeout_ms = 2000;
};

class TelemetryServer {
 public:
  explicit TelemetryServer(TelemetryServerOptions opts = {});
  ~TelemetryServer();
  TelemetryServer(const TelemetryServer&) = delete;
  TelemetryServer& operator=(const TelemetryServer&) = delete;

  /// Bind, listen, and submit the dispatcher to the shared pool.
  /// Returns false when the build has obs compiled out or the socket
  /// setup fails (see last_error()); throwing here would turn a
  /// missing telemetry port into an outage.
  bool start();

  /// Stop the dispatcher and close the socket. Idempotent; safe to
  /// call from any thread. Blocks until the dispatcher has exited.
  void stop();

  bool running() const;
  /// Actual bound port (after start() with port 0), -1 when not
  /// running.
  int port() const;
  const std::string& last_error() const;

  /// Install the /healthz source. Call before start() or accept that a
  /// scrape races the swap (guarded by a mutex either way).
  void set_health_source(std::function<HealthState()> source);

  /// Register a named /statusz section; `render` returns one JSON
  /// value (object/array/scalar) emitted under "sections".<name>.
  /// A throwing renderer degrades to null instead of failing the
  /// scrape.
  void add_statusz_section(const std::string& name,
                           std::function<std::string()> render);

  /// Requests served since start() (all endpoints).
  std::int64_t requests_served() const;

  /// True when the build carries the server (MATSCI_OBS=ON).
  static constexpr bool compiled_in() {
#if defined(MATSCI_OBS_ENABLED)
    return true;
#else
    return false;
#endif
  }

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

/// Minimal blocking HTTP/1.1 GET against a local telemetry server —
/// the test/bench scrape client. status == 0 means transport failure
/// (body carries the reason); otherwise the parsed status code with
/// the response body.
struct HttpResponse {
  int status = 0;
  std::string body;
};
HttpResponse http_get(const std::string& host, int port,
                      const std::string& path,
                      std::int64_t timeout_ms = 5000);

}  // namespace matsci::obs::http
