#include "obs/http/http_server.hpp"

#if defined(MATSCI_OBS_ENABLED)

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <mutex>
#include <utility>
#include <vector>

#include "core/parallel/thread_pool.hpp"
#include "obs/context.hpp"
#include "obs/export.hpp"
#include "obs/metrics.hpp"

namespace matsci::obs::http {

namespace {

/// Telemetry about the telemetry: scrape latency is the /metrics
/// handler's render+write time — the "bounded scrape under overload"
/// signal the openloop bench asserts on.
struct HttpMetrics {
  Counter& requests;
  Counter& errors;
  Histogram& scrape_us;

  static HttpMetrics& get() {
    static HttpMetrics* m = new HttpMetrics{
        MetricsRegistry::global().counter("obs.http.requests"),
        MetricsRegistry::global().counter("obs.http.errors"),
        MetricsRegistry::global().histogram("obs.http.scrape_us"),
    };
    return *m;
  }
};

void set_io_timeouts(int fd, std::int64_t timeout_ms) {
  timeval tv{};
  tv.tv_sec = timeout_ms / 1000;
  tv.tv_usec = (timeout_ms % 1000) * 1000;
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof tv);
  ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof tv);
}

bool send_all(int fd, const char* data, std::size_t len) {
  std::size_t sent = 0;
  while (sent < len) {
    const ssize_t n = ::send(fd, data + sent, len - sent, MSG_NOSIGNAL);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return false;
    }
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

const char* status_text(int status) {
  switch (status) {
    case 200: return "OK";
    case 404: return "Not Found";
    case 503: return "Service Unavailable";
    default: return "Internal Server Error";
  }
}

bool write_response(int fd, int status, const std::string& content_type,
                    const std::string& body) {
  std::string head = "HTTP/1.1 " + std::to_string(status) + " " +
                     status_text(status) +
                     "\r\nContent-Type: " + content_type +
                     "\r\nContent-Length: " + std::to_string(body.size()) +
                     "\r\nConnection: close\r\n\r\n";
  return send_all(fd, head.data(), head.size()) &&
         send_all(fd, body.data(), body.size());
}

}  // namespace

struct TelemetryServer::Impl {
  TelemetryServerOptions opts;
  std::atomic<bool> running{false};
  std::atomic<bool> stop_requested{false};
  std::atomic<int> port{-1};
  std::atomic<std::int64_t> requests{0};
  int listen_fd = -1;
  int wake_fds[2] = {-1, -1};
  std::chrono::steady_clock::time_point started_at;
  core::parallel::TaskHandle task;
  bool task_live = false;

  mutable std::mutex mu;  ///< guards health_source, sections, error
  std::function<HealthState()> health_source;
  std::vector<std::pair<std::string, std::function<std::string()>>> sections;
  std::string error;

  void set_error(const std::string& why) {
    std::lock_guard<std::mutex> lock(mu);
    error = why + " (errno " + std::to_string(errno) + ": " +
            std::strerror(errno) + ")";
  }

  void close_sockets() {
    if (listen_fd >= 0) ::close(listen_fd);
    listen_fd = -1;
    for (int& fd : wake_fds) {
      if (fd >= 0) ::close(fd);
      fd = -1;
    }
  }

  void serve_loop();
  void handle_connection(int fd);
  std::string render_statusz() const;
  std::string render_tracez() const;
  std::string render_healthz(int* status) const;
};

TelemetryServer::TelemetryServer(TelemetryServerOptions opts)
    : impl_(std::make_unique<Impl>()) {
  impl_->opts = std::move(opts);
}

TelemetryServer::~TelemetryServer() { stop(); }

bool TelemetryServer::start() {
  Impl& im = *impl_;
  if (im.running.load(std::memory_order_acquire)) return true;

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(im.opts.port));
  if (::inet_pton(AF_INET, im.opts.host.c_str(), &addr.sin_addr) != 1) {
    im.set_error("bad bind address '" + im.opts.host + "'");
    return false;
  }

  im.listen_fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (im.listen_fd < 0) {
    im.set_error("socket() failed");
    return false;
  }
  const int one = 1;
  ::setsockopt(im.listen_fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  if (::bind(im.listen_fd, reinterpret_cast<const sockaddr*>(&addr),
             sizeof addr) != 0 ||
      ::listen(im.listen_fd, 64) != 0) {
    im.set_error("bind/listen on " + im.opts.host + ":" +
                 std::to_string(im.opts.port) + " failed");
    im.close_sockets();
    return false;
  }
  // Non-blocking accept: poll() may report a connection that resets
  // before we get to it; accept must not wedge the dispatcher then.
  ::fcntl(im.listen_fd, F_SETFL, O_NONBLOCK);

  sockaddr_in bound{};
  socklen_t bound_len = sizeof bound;
  ::getsockname(im.listen_fd, reinterpret_cast<sockaddr*>(&bound),
                &bound_len);
  im.port.store(static_cast<int>(ntohs(bound.sin_port)),
                std::memory_order_release);

  if (::pipe(im.wake_fds) != 0) {
    im.set_error("wake pipe failed");
    im.close_sockets();
    return false;
  }

  im.started_at = std::chrono::steady_clock::now();
  im.stop_requested.store(false, std::memory_order_release);
  im.running.store(true, std::memory_order_release);
  Impl* impl = impl_.get();
  im.task =
      core::parallel::ThreadPool::global().submit([impl] {
        impl->serve_loop();
      });
  im.task_live = true;
  return true;
}

void TelemetryServer::stop() {
  Impl& im = *impl_;
  if (!im.task_live) return;
  im.stop_requested.store(true, std::memory_order_release);
  // Wake the poll(); if the dispatcher never got a pool slot,
  // run_now_or_wait() runs it inline and it exits on the stop flag.
  if (im.wake_fds[1] >= 0) {
    const char x = 'x';
    [[maybe_unused]] ssize_t n = ::write(im.wake_fds[1], &x, 1);
  }
  im.task.run_now_or_wait();
  im.task_live = false;
  im.running.store(false, std::memory_order_release);
  im.port.store(-1, std::memory_order_release);
  im.close_sockets();
}

bool TelemetryServer::running() const {
  return impl_->running.load(std::memory_order_acquire);
}

int TelemetryServer::port() const {
  return impl_->port.load(std::memory_order_acquire);
}

const std::string& TelemetryServer::last_error() const {
  std::lock_guard<std::mutex> lock(impl_->mu);
  return impl_->error;
}

void TelemetryServer::set_health_source(
    std::function<HealthState()> source) {
  std::lock_guard<std::mutex> lock(impl_->mu);
  impl_->health_source = std::move(source);
}

void TelemetryServer::add_statusz_section(
    const std::string& name, std::function<std::string()> render) {
  std::lock_guard<std::mutex> lock(impl_->mu);
  for (auto& [existing, fn] : impl_->sections) {
    if (existing == name) {
      fn = std::move(render);
      return;
    }
  }
  impl_->sections.emplace_back(name, std::move(render));
}

std::int64_t TelemetryServer::requests_served() const {
  return impl_->requests.load(std::memory_order_relaxed);
}

void TelemetryServer::Impl::serve_loop() {
  while (!stop_requested.load(std::memory_order_acquire)) {
    pollfd pfds[2];
    pfds[0] = {listen_fd, POLLIN, 0};
    pfds[1] = {wake_fds[0], POLLIN, 0};
    // Finite timeout as a belt-and-braces backstop for a lost wake.
    const int rc = ::poll(pfds, 2, 250);
    if (stop_requested.load(std::memory_order_acquire)) break;
    if (rc <= 0) continue;
    if ((pfds[1].revents & POLLIN) != 0) {
      char drain[64];
      while (::read(wake_fds[0], drain, sizeof drain) ==
             static_cast<ssize_t>(sizeof drain)) {
      }
      continue;
    }
    if ((pfds[0].revents & POLLIN) == 0) continue;
    const int fd = ::accept(listen_fd, nullptr, nullptr);
    if (fd < 0) continue;  // reset before accept / transient error
    set_io_timeouts(fd, opts.io_timeout_ms);
    handle_connection(fd);
    ::close(fd);
  }
}

std::string TelemetryServer::Impl::render_healthz(int* status) const {
  HealthState state;
  {
    std::lock_guard<std::mutex> lock(mu);
    if (health_source) {
      try {
        state = health_source();
      } catch (...) {
        state.healthy = false;
        state.detail = "health source threw";
      }
    }
  }
  *status = state.healthy ? 200 : 503;
  return JsonRecord()
             .set("record", "healthz")
             .set("healthy", state.healthy)
             .set("detail", state.detail)
             .set("anomalies", state.anomalies)
             .str() +
         "\n";
}

std::string TelemetryServer::Impl::render_statusz() const {
  const double uptime_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    started_at)
          .count();
  std::string metrics_json = "[";
  const std::vector<JsonRecord> records =
      snapshot_records(MetricsRegistry::global().snapshot());
  for (std::size_t i = 0; i < records.size(); ++i) {
    if (i > 0) metrics_json += ",";
    metrics_json += records[i].str();
  }
  metrics_json += "]";

  JsonRecord sections_obj;
  {
    std::lock_guard<std::mutex> lock(mu);
    for (const auto& [name, render] : sections) {
      std::string value = "null";
      try {
        value = render();
      } catch (...) {
        value = "null";
      }
      // A section that renders broken JSON degrades to null rather
      // than corrupting the whole scrape.
      if (!validate_json(value)) value = "null";
      sections_obj.set_raw(name, value);
    }
  }

  return JsonRecord()
             .set("record", "statusz")
             .set("schema", "matsci.statusz.v1")
             .set("uptime_s", uptime_s)
             .set("http_requests",
                  requests.load(std::memory_order_relaxed))
             .set("inflight_requests",
                  static_cast<std::int64_t>(InflightSet::global().size()))
             .set_raw("sections", sections_obj.str())
             .set_raw("metrics", metrics_json)
             .str() +
         "\n";
}

std::string TelemetryServer::Impl::render_tracez() const {
  Tracer& tracer = Tracer::global();
  std::vector<TraceEvent> events = tracer.collect();
  const std::size_t limit =
      opts.tracez_limit > 0 ? static_cast<std::size_t>(opts.tracez_limit)
                            : events.size();
  const std::size_t first =
      events.size() > limit ? events.size() - limit : 0;

  std::string spans = "[";
  for (std::size_t i = first; i < events.size(); ++i) {
    const TraceEvent& ev = events[i];
    if (i > first) spans += ",";
    JsonRecord rec;
    rec.set("name", ev.name != nullptr ? ev.name : "?")
        .set("ts_ns", static_cast<std::int64_t>(ev.start_ns))
        .set("dur_ns", static_cast<std::int64_t>(ev.dur_ns))
        .set("tid", static_cast<std::int64_t>(ev.tid));
    if (ev.trace_id != 0) {
      rec.set("trace_id", trace_id_hex(ev.trace_id))
          .set("span_id", trace_id_hex(ev.span_id))
          .set("parent_span_id", trace_id_hex(ev.parent_span_id));
    }
    spans += rec.str();
  }
  spans += "]";

  return JsonRecord()
             .set("record", "tracez")
             .set("enabled", tracer.enabled())
             .set("dropped", tracer.dropped())
             .set("returned",
                  static_cast<std::int64_t>(events.size() - first))
             .set("total_collected",
                  static_cast<std::int64_t>(events.size()))
             .set_raw("spans", spans)
             .str() +
         "\n";
}

void TelemetryServer::Impl::handle_connection(int fd) {
  HttpMetrics& metrics = HttpMetrics::get();
  std::string request;
  char buf[2048];
  while (request.size() < 8192 &&
         request.find("\r\n\r\n") == std::string::npos) {
    const ssize_t n = ::recv(fd, buf, sizeof buf, 0);
    if (n <= 0) break;
    request.append(buf, static_cast<std::size_t>(n));
  }
  // Request line: METHOD SP PATH SP VERSION
  const std::size_t m_end = request.find(' ');
  const std::size_t p_end =
      m_end == std::string::npos ? std::string::npos
                                 : request.find(' ', m_end + 1);
  if (p_end == std::string::npos) {
    metrics.errors.add(1);
    return;  // malformed/empty request; peer likely reset
  }
  std::string path = request.substr(m_end + 1, p_end - m_end - 1);
  const std::size_t query = path.find('?');
  if (query != std::string::npos) path = path.substr(0, query);

  requests.fetch_add(1, std::memory_order_relaxed);
  metrics.requests.add(1);

  bool ok = true;
  if (path == "/metrics") {
    StopWatch watch;
    const std::string body =
        prometheus_text(MetricsRegistry::global().snapshot());
    ok = write_response(fd, 200,
                        "text/plain; version=0.0.4; charset=utf-8", body);
    metrics.scrape_us.observe(watch.elapsed_us());
  } else if (path == "/healthz") {
    int status = 200;
    const std::string body = render_healthz(&status);
    ok = write_response(fd, status, "application/json", body);
  } else if (path == "/statusz") {
    ok = write_response(fd, 200, "application/json", render_statusz());
  } else if (path == "/tracez") {
    ok = write_response(fd, 200, "application/json", render_tracez());
  } else if (path == "/") {
    ok = write_response(fd, 200, "text/plain; charset=utf-8",
                        "matsci telemetry\n"
                        "  /metrics  Prometheus text exposition\n"
                        "  /healthz  liveness (200/503)\n"
                        "  /statusz  JSON process snapshot\n"
                        "  /tracez   recent spans with trace ids\n");
  } else {
    ok = write_response(fd, 404, "text/plain; charset=utf-8",
                        "404 not found\n");
  }
  if (!ok) metrics.errors.add(1);
}

HttpResponse http_get(const std::string& host, int port,
                      const std::string& path, std::int64_t timeout_ms) {
  HttpResponse resp;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    resp.body = "bad address";
    return resp;
  }
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    resp.body = "socket() failed";
    return resp;
  }
  set_io_timeouts(fd, timeout_ms);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                sizeof addr) != 0) {
    resp.body = "connect failed";
    ::close(fd);
    return resp;
  }
  const std::string request = "GET " + path + " HTTP/1.1\r\nHost: " + host +
                              "\r\nConnection: close\r\n\r\n";
  if (!send_all(fd, request.data(), request.size())) {
    resp.body = "send failed";
    ::close(fd);
    return resp;
  }
  std::string raw;
  char buf[4096];
  for (;;) {
    const ssize_t n = ::recv(fd, buf, sizeof buf, 0);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) break;
    raw.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);

  // "HTTP/1.1 <code> ..." then headers until the blank line.
  const std::size_t sp = raw.find(' ');
  if (sp == std::string::npos) {
    resp.body = "malformed response";
    return resp;
  }
  resp.status = std::atoi(raw.c_str() + sp + 1);
  const std::size_t body_at = raw.find("\r\n\r\n");
  if (body_at != std::string::npos) resp.body = raw.substr(body_at + 4);
  return resp;
}

}  // namespace matsci::obs::http

#else  // !MATSCI_OBS_ENABLED

// Compiled-out build: keep the symbols so callers link unchanged, but
// no socket headers, no pool task, no state beyond the error string.

namespace matsci::obs::http {

struct TelemetryServer::Impl {
  std::string error = "telemetry server compiled out (MATSCI_OBS=OFF)";
};

TelemetryServer::TelemetryServer(TelemetryServerOptions)
    : impl_(std::make_unique<Impl>()) {}
TelemetryServer::~TelemetryServer() = default;

bool TelemetryServer::start() { return false; }
void TelemetryServer::stop() {}
bool TelemetryServer::running() const { return false; }
int TelemetryServer::port() const { return -1; }
const std::string& TelemetryServer::last_error() const {
  return impl_->error;
}
void TelemetryServer::set_health_source(std::function<HealthState()>) {}
void TelemetryServer::add_statusz_section(const std::string&,
                                          std::function<std::string()>) {}
std::int64_t TelemetryServer::requests_served() const { return 0; }

HttpResponse http_get(const std::string&, int, const std::string&,
                      std::int64_t) {
  HttpResponse resp;
  resp.body = "telemetry server compiled out (MATSCI_OBS=OFF)";
  return resp;
}

}  // namespace matsci::obs::http

#endif  // MATSCI_OBS_ENABLED
