#pragma once

// Scoped tracing: MATSCI_TRACE_SCOPE("phase") records one complete-event
// span — steady-clock start, duration, thread id — into a per-thread
// ring buffer owned by the process-wide Tracer. Recording is disabled by
// default: a disarmed scope costs one relaxed atomic load and nothing
// else; an armed one costs two clock reads plus an uncontended
// per-thread mutex (contended only while an exporter drains the ring).
// Enable with Tracer::global().set_enabled(true) or MATSCI_TRACE=1 in
// the environment. Rings are bounded (kRingCapacity events per thread):
// when a ring wraps, the oldest spans are overwritten and counted in
// dropped().
//
// Building with -DMATSCI_OBS=OFF removes the macro's expansion entirely
// (no scope object, no atomic load, no clock reads); the Tracer type
// itself stays available so exporters and benches compile unchanged.

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <utility>
#include <vector>

namespace matsci::obs {

/// One completed span. `name` must point at storage that outlives the
/// tracer — string literals in practice, which is what the macro
/// produces.
struct TraceEvent {
  const char* name = nullptr;
  std::uint64_t start_ns = 0;  ///< steady clock, since its (process) epoch
  std::uint64_t dur_ns = 0;
  std::uint32_t tid = 0;  ///< dense tracer-assigned thread id, from 1
  /// Request-tracing ids (obs/context.hpp); 0 on spans recorded without
  /// a TraceContext (MATSCI_TRACE_SCOPE and the 3-arg record()).
  std::uint64_t trace_id = 0;
  std::uint64_t span_id = 0;
  std::uint64_t parent_span_id = 0;
};

class Tracer {
 public:
  /// Events retained per thread before the ring wraps.
  static constexpr std::size_t kRingCapacity = 1 << 14;

  static Tracer& global();

  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }
  void set_enabled(bool enabled) {
    enabled_.store(enabled, std::memory_order_relaxed);
  }

  /// Append one completed span to the calling thread's ring.
  void record(const char* name, std::uint64_t start_ns, std::uint64_t dur_ns);

  /// Same, carrying request-tracing ids (see obs/context.hpp —
  /// record_span() is the usual entry point).
  void record(const char* name, std::uint64_t start_ns, std::uint64_t dur_ns,
              std::uint64_t trace_id, std::uint64_t span_id,
              std::uint64_t parent_span_id);

  /// Merge every thread's ring, sorted by start time. Spans being
  /// recorded concurrently may or may not be included; the merge is
  /// complete once writers are quiescent.
  std::vector<TraceEvent> collect() const;

  /// Spans lost to ring wrap-around since the last clear().
  std::int64_t dropped() const;

  /// Per-thread wrap-around losses: (tracer tid, spans dropped) for
  /// every ring that has overflowed since the last clear(). Overflow
  /// used to be silent in exports; the Chrome exporter now embeds the
  /// total in trace metadata and BenchReporter surfaces it as the
  /// `obs.trace.dropped_events` gauge.
  std::vector<std::pair<std::uint32_t, std::int64_t>> dropped_by_thread()
      const;

  /// Empty every ring (registrations and thread ids persist).
  void clear();

  /// Monotonic nanoseconds (steady clock).
  static std::uint64_t now_ns();

 private:
  struct Ring {
    std::mutex mu;
    std::vector<TraceEvent> slots;
    std::size_t head = 0;       ///< next write position
    std::uint64_t total = 0;    ///< lifetime writes (>= retained count)
    std::uint32_t tid = 0;
  };

  Tracer();
  Ring& ring_for_this_thread();

  std::atomic<bool> enabled_{false};
  mutable std::mutex registry_mu_;
  /// Rings are created on a thread's first record() and never freed, so
  /// a cached thread-local pointer can't dangle (bounded by the number
  /// of distinct recording threads).
  std::vector<std::unique_ptr<Ring>> rings_;
  std::atomic<std::uint32_t> next_tid_{1};
};

/// RAII span: arms at construction if the tracer is enabled, records at
/// destruction. Use through MATSCI_TRACE_SCOPE.
class TraceScope {
 public:
  explicit TraceScope(const char* name) {
    if (Tracer::global().enabled()) {
      name_ = name;
      start_ns_ = Tracer::now_ns();
    }
  }
  ~TraceScope() {
    if (name_ != nullptr) {
      const std::uint64_t end_ns = Tracer::now_ns();
      Tracer::global().record(name_, start_ns_, end_ns - start_ns_);
    }
  }
  TraceScope(const TraceScope&) = delete;
  TraceScope& operator=(const TraceScope&) = delete;

 private:
  const char* name_ = nullptr;
  std::uint64_t start_ns_ = 0;
};

}  // namespace matsci::obs

#define MATSCI_OBS_CONCAT_IMPL(a, b) a##b
#define MATSCI_OBS_CONCAT(a, b) MATSCI_OBS_CONCAT_IMPL(a, b)

#if defined(MATSCI_OBS_ENABLED)
/// Trace the enclosing scope as a span named `name` (string literal).
#define MATSCI_TRACE_SCOPE(name)                                      \
  ::matsci::obs::TraceScope MATSCI_OBS_CONCAT(matsci_trace_scope_,    \
                                              __COUNTER__) {          \
    name                                                              \
  }
#else
#define MATSCI_TRACE_SCOPE(name) ((void)0)
#endif
