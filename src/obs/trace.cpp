#include "obs/trace.hpp"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <cstring>

namespace matsci::obs {

Tracer& Tracer::global() {
  // Leaked on purpose, same rationale as MetricsRegistry::global():
  // worker threads may finish spans during static destruction.
  static Tracer* tracer = new Tracer();
  return *tracer;
}

Tracer::Tracer() {
  if (const char* env = std::getenv("MATSCI_TRACE")) {
    if (std::strcmp(env, "0") != 0 && std::strcmp(env, "") != 0) {
      enabled_.store(true, std::memory_order_relaxed);
    }
  }
}

std::uint64_t Tracer::now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

Tracer::Ring& Tracer::ring_for_this_thread() {
  thread_local Ring* cached = nullptr;
  if (cached == nullptr) {
    auto ring = std::make_unique<Ring>();
    ring->slots.resize(kRingCapacity);
    ring->tid = next_tid_.fetch_add(1, std::memory_order_relaxed);
    cached = ring.get();
    std::lock_guard<std::mutex> lock(registry_mu_);
    rings_.push_back(std::move(ring));
  }
  return *cached;
}

void Tracer::record(const char* name, std::uint64_t start_ns,
                    std::uint64_t dur_ns) {
  record(name, start_ns, dur_ns, 0, 0, 0);
}

void Tracer::record(const char* name, std::uint64_t start_ns,
                    std::uint64_t dur_ns, std::uint64_t trace_id,
                    std::uint64_t span_id, std::uint64_t parent_span_id) {
  Ring& ring = ring_for_this_thread();
  std::lock_guard<std::mutex> lock(ring.mu);
  TraceEvent& ev = ring.slots[ring.head];
  ev.name = name;
  ev.start_ns = start_ns;
  ev.dur_ns = dur_ns;
  ev.tid = ring.tid;
  ev.trace_id = trace_id;
  ev.span_id = span_id;
  ev.parent_span_id = parent_span_id;
  ring.head = (ring.head + 1) % kRingCapacity;
  ++ring.total;
}

std::vector<TraceEvent> Tracer::collect() const {
  std::vector<TraceEvent> events;
  std::lock_guard<std::mutex> registry_lock(registry_mu_);
  for (const std::unique_ptr<Ring>& ring : rings_) {
    std::lock_guard<std::mutex> ring_lock(ring->mu);
    const std::size_t retained = static_cast<std::size_t>(
        std::min<std::uint64_t>(ring->total, kRingCapacity));
    // Oldest retained event: at slot `head` once wrapped, at 0 before.
    const std::size_t oldest =
        ring->total > kRingCapacity ? ring->head : 0;
    for (std::size_t i = 0; i < retained; ++i) {
      events.push_back(ring->slots[(oldest + i) % kRingCapacity]);
    }
  }
  std::sort(events.begin(), events.end(),
            [](const TraceEvent& a, const TraceEvent& b) {
              if (a.start_ns != b.start_ns) return a.start_ns < b.start_ns;
              return a.tid < b.tid;
            });
  return events;
}

std::int64_t Tracer::dropped() const {
  std::int64_t dropped = 0;
  std::lock_guard<std::mutex> registry_lock(registry_mu_);
  for (const std::unique_ptr<Ring>& ring : rings_) {
    std::lock_guard<std::mutex> ring_lock(ring->mu);
    if (ring->total > kRingCapacity) {
      dropped += static_cast<std::int64_t>(ring->total - kRingCapacity);
    }
  }
  return dropped;
}

std::vector<std::pair<std::uint32_t, std::int64_t>> Tracer::dropped_by_thread()
    const {
  std::vector<std::pair<std::uint32_t, std::int64_t>> out;
  std::lock_guard<std::mutex> registry_lock(registry_mu_);
  for (const std::unique_ptr<Ring>& ring : rings_) {
    std::lock_guard<std::mutex> ring_lock(ring->mu);
    if (ring->total > kRingCapacity) {
      out.emplace_back(ring->tid,
                       static_cast<std::int64_t>(ring->total - kRingCapacity));
    }
  }
  return out;
}

void Tracer::clear() {
  std::lock_guard<std::mutex> registry_lock(registry_mu_);
  for (const std::unique_ptr<Ring>& ring : rings_) {
    std::lock_guard<std::mutex> ring_lock(ring->mu);
    ring->head = 0;
    ring->total = 0;
  }
}

}  // namespace matsci::obs
