#include "obs/health.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <csignal>
#include <cstdlib>
#include <ctime>
#include <exception>
#include <fstream>

#include "core/macros.hpp"
#include "obs/context.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace matsci::obs::health {

const char* to_string(AnomalyType type) {
  switch (type) {
    case AnomalyType::kNonFiniteLoss: return "non_finite_loss";
    case AnomalyType::kNonFiniteGrad: return "non_finite_grad";
    case AnomalyType::kLossSpike: return "loss_spike";
    case AnomalyType::kGradNormSpike: return "grad_norm_spike";
    case AnomalyType::kEpsFloorDominance: return "eps_floor_dominance";
    case AnomalyType::kRankDivergence: return "rank_divergence";
    case AnomalyType::kRankLost: return "rank_lost";
  }
  return "unknown";
}

const char* to_string(AnomalyPolicy policy) {
  switch (policy) {
    case AnomalyPolicy::kLogAndContinue: return "log_and_continue";
    case AnomalyPolicy::kSkipStep: return "skip_step";
    case AnomalyPolicy::kAbort: return "abort";
  }
  return "unknown";
}

std::string resolve_flight_path(const std::string& path) {
  if (!path.empty()) return path;
  const char* dir = std::getenv("MATSCI_BENCH_DIR");
  const std::string base = (dir != nullptr && dir[0] != '\0') ? dir : ".";
  return base + "/flight_recorder.json";
}

// --- JSON rendering ----------------------------------------------------------

JsonRecord anomaly_record(const Anomaly& anomaly) {
  return JsonRecord()
      .set("type", to_string(anomaly.type))
      .set("step", anomaly.step)
      .set("rank", anomaly.rank)
      .set("value", anomaly.value)
      .set("threshold", anomaly.threshold)
      .set("detail", anomaly.detail);
}

JsonRecord snapshot_record(const HealthSnapshot& snap) {
  JsonRecord rec;
  rec.set("step", snap.step)
      .set("rank", snap.rank)
      .set("loss", snap.loss)
      .set("grad_norm", snap.grad_norm)
      .set("nonfinite_grads", snap.nonfinite_grads)
      .set("max_update_ratio", snap.max_update_ratio);
  if (snap.has_adam_stats) {
    rec.set("frac_at_eps_floor", snap.frac_at_eps_floor)
        .set("grad_autocorrelation", snap.grad_autocorrelation)
        .set("max_update_magnitude", snap.max_update_magnitude);
  }
  if (snap.cross_rank.reduced) {
    rec.set_raw("cross_rank",
                JsonRecord()
                    .set("world_size", snap.cross_rank.world_size)
                    .set("grad_norm_mean", snap.cross_rank.grad_norm_mean)
                    .set("grad_norm_min", snap.cross_rank.grad_norm_min)
                    .set("grad_norm_max", snap.cross_rank.grad_norm_max)
                    .set("nonfinite_ranks", snap.cross_rank.nonfinite_ranks)
                    .str());
  }
  std::string layers = "[";
  for (std::size_t i = 0; i < snap.layers.size(); ++i) {
    const LayerHealth& lh = snap.layers[i];
    if (i > 0) layers += ",";
    layers += JsonRecord()
                  .set("name", lh.name)
                  .set("grad_norm", lh.grad_norm)
                  .set("weight_norm", lh.weight_norm)
                  .set("update_ratio", lh.update_ratio)
                  .set("nonfinite", lh.nonfinite_grads)
                  .str();
  }
  layers += "]";
  rec.set_raw("layers", layers);
  return rec;
}

// --- RollingWindow -----------------------------------------------------------

RollingWindow::RollingWindow(std::size_t capacity)
    : ring_(std::max<std::size_t>(capacity, 1)) {}

void RollingWindow::push(double v) {
  ring_[head_] = v;
  head_ = (head_ + 1) % ring_.size();
  count_ = std::min(count_ + 1, ring_.size());
}

namespace {

double median_of(std::vector<double>& vals) {
  if (vals.empty()) return 0.0;
  const std::size_t mid = vals.size() / 2;
  std::nth_element(vals.begin(), vals.begin() + static_cast<std::ptrdiff_t>(mid),
                   vals.end());
  double m = vals[mid];
  if (vals.size() % 2 == 0) {
    // Lower median completes the pair: max of the left partition.
    const double lower =
        *std::max_element(vals.begin(),
                          vals.begin() + static_cast<std::ptrdiff_t>(mid));
    m = 0.5 * (m + lower);
  }
  return m;
}

}  // namespace

double RollingWindow::median() const {
  std::vector<double> vals(ring_.begin(),
                           ring_.begin() + static_cast<std::ptrdiff_t>(count_));
  return median_of(vals);
}

double RollingWindow::mad() const {
  if (count_ < 2) return 0.0;
  const double med = median();
  std::vector<double> dev;
  dev.reserve(count_);
  for (std::size_t i = 0; i < count_; ++i) {
    dev.push_back(std::fabs(ring_[i] - med));
  }
  return median_of(dev);
}

// --- AnomalyDetector ---------------------------------------------------------

AnomalyDetector::AnomalyDetector(HealthOptions opts)
    : opts_(std::move(opts)),
      loss_window_(static_cast<std::size_t>(std::max<std::int64_t>(
          opts_.window, 2))),
      grad_window_(static_cast<std::size_t>(std::max<std::int64_t>(
          opts_.window, 2))) {}

std::vector<Anomaly> AnomalyDetector::observe(const HealthSnapshot& snap) {
  std::vector<Anomaly> out;
  ++steps_seen_;

  auto flag = [&](AnomalyType type, double value, double threshold,
                  std::string detail) {
    out.push_back(Anomaly{type, snap.step, snap.rank, value, threshold,
                          std::move(detail)});
  };

  // Non-finite values fire immediately, warmup or not.
  if (!std::isfinite(snap.loss)) {
    flag(AnomalyType::kNonFiniteLoss, snap.loss, 0.0, "loss is non-finite");
  }
  if (snap.nonfinite_grads > 0 || !std::isfinite(snap.grad_norm)) {
    std::string where;
    for (const LayerHealth& lh : snap.layers) {
      if (lh.nonfinite_grads > 0) {
        where = " (first: " + lh.name + ")";
        break;
      }
    }
    flag(AnomalyType::kNonFiniteGrad,
         static_cast<double>(snap.nonfinite_grads), 0.0,
         "non-finite gradient entries" + where);
  }

  // Rolling median/MAD spike detection: test against the window first,
  // then absorb (the spike must not raise its own threshold).
  const bool armed = steps_seen_ > opts_.warmup_steps;
  auto spike_check = [&](RollingWindow& window, double value,
                         AnomalyType type, const char* what) {
    if (!std::isfinite(value)) return;  // kept out of the window entirely
    if (armed &&
        window.size() >= static_cast<std::size_t>(
                             std::max<std::int64_t>(opts_.warmup_steps, 2))) {
      const double med = window.median();
      const double scale =
          std::max(window.mad(), 0.01 * std::fabs(med) + 1e-12);
      const double threshold = med + opts_.spike_mads * scale;
      if (value > threshold && value > opts_.spike_min_ratio * med) {
        flag(type, value, threshold,
             std::string(what) + " spiked above rolling median " +
                 json_number(med));
      }
    }
    window.push(value);
  };
  spike_check(loss_window_, snap.loss, AnomalyType::kLossSpike, "loss");
  spike_check(grad_window_, snap.grad_norm, AnomalyType::kGradNormSpike,
              "gradient norm");

  // ε-floor dominance (paper §5.2): early steps always sit at the floor
  // (second moments start at zero), so this arms with the spike checks.
  if (snap.has_adam_stats && armed &&
      snap.frac_at_eps_floor > opts_.eps_floor_threshold) {
    flag(AnomalyType::kEpsFloorDominance, snap.frac_at_eps_floor,
         opts_.eps_floor_threshold,
         "Adam updates dominated by the eps floor");
  }
  return out;
}

std::vector<Anomaly> AnomalyDetector::observe_cross_rank(
    const CrossRankHealth& cross, std::int64_t step,
    std::int64_t offender_rank) {
  std::vector<Anomaly> out;
  if (!cross.reduced || cross.world_size <= 1) return out;
  if (cross.nonfinite_ranks > 0) {
    out.push_back(Anomaly{AnomalyType::kNonFiniteGrad, step, offender_rank,
                          static_cast<double>(cross.nonfinite_ranks), 0.0,
                          "rank-local gradients non-finite before allreduce"});
    // A poisoned norm makes the spread meaningless; don't double-flag.
    return out;
  }
  // Divergence shares the spike warmup: cold-start gradients are
  // dominated by whichever shard holds the odd structure, so first-step
  // spreads of 100x+ are normal and carry no signal.
  if (steps_seen_ <= opts_.warmup_steps) return out;
  // Spread is only meaningful when the gradients are non-trivial: an
  // all-zero replica (min == 0) at a cold start is not divergence.
  if (cross.grad_norm_max > 1e-12) {
    const double spread =
        cross.grad_norm_max / std::max(cross.grad_norm_min, 1e-30);
    if (std::isfinite(spread) && spread > opts_.rank_divergence_ratio) {
      out.push_back(Anomaly{
          AnomalyType::kRankDivergence, step, offender_rank, spread,
          opts_.rank_divergence_ratio,
          "per-rank grad-norm spread (max/min) " + json_number(spread) +
              ", mean " + json_number(cross.grad_norm_mean)});
    }
  }
  return out;
}

// --- FlightRecorder ----------------------------------------------------------

FlightRecorder::FlightRecorder(std::int64_t capacity)
    : capacity_(std::max<std::int64_t>(capacity, 1)) {
  ring_.resize(static_cast<std::size_t>(capacity_));
}

void FlightRecorder::record(const HealthSnapshot& snap) {
  std::lock_guard<std::mutex> lock(mu_);
  ring_[head_] = snap;
  head_ = (head_ + 1) % ring_.size();
  count_ = std::min(count_ + 1, ring_.size());
}

void FlightRecorder::amend_last(const HealthSnapshot& snap) {
  std::lock_guard<std::mutex> lock(mu_);
  if (count_ == 0) return;
  ring_[(head_ + ring_.size() - 1) % ring_.size()] = snap;
}

std::vector<HealthSnapshot> FlightRecorder::history() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<HealthSnapshot> out;
  out.reserve(count_);
  const std::size_t oldest =
      count_ == ring_.size() ? head_ : 0;
  for (std::size_t i = 0; i < count_; ++i) {
    out.push_back(ring_[(oldest + i) % ring_.size()]);
  }
  return out;
}

namespace {

std::string env_object() {
  JsonRecord env;
  for (const char* key : {"MATSCI_NUM_THREADS", "MATSCI_TRACE",
                          "MATSCI_BENCH_DIR"}) {
    const char* value = std::getenv(key);
    env.set(key, value != nullptr ? value : "");
  }
  return env.str();
}

std::string config_object(const HealthOptions& opts) {
  return JsonRecord()
      .set("window", opts.window)
      .set("warmup_steps", opts.warmup_steps)
      .set("spike_mads", opts.spike_mads)
      .set("spike_min_ratio", opts.spike_min_ratio)
      .set("eps_floor_threshold", opts.eps_floor_threshold)
      .set("rank_divergence_ratio", opts.rank_divergence_ratio)
      .set("policy", to_string(opts.policy))
      .set("flight_recorder_steps", opts.flight_recorder_steps)
      .str();
}

}  // namespace

std::string FlightRecorder::dump(const std::string& path,
                                 const std::string& reason,
                                 const std::vector<Anomaly>& anomalies,
                                 const HealthOptions* config) const {
  const std::string resolved = resolve_flight_path(path);

  JsonRecord bundle;
  bundle.set("record", "flight_recorder")
      .set("schema", "matsci.flight.v1")
      .set("emitted_unix_s", static_cast<std::int64_t>(std::time(nullptr)))
      .set("reason", reason);

  std::string anomalies_json = "[";
  for (std::size_t i = 0; i < anomalies.size(); ++i) {
    if (i > 0) anomalies_json += ",";
    anomalies_json += anomaly_record(anomalies[i]).str();
  }
  anomalies_json += "]";
  bundle.set_raw("anomalies", anomalies_json);

  if (config != nullptr) bundle.set_raw("config", config_object(*config));
  bundle.set_raw("env", env_object());

  std::string health_json = "[";
  const std::vector<HealthSnapshot> snaps = history();
  for (std::size_t i = 0; i < snaps.size(); ++i) {
    if (i > 0) health_json += ",";
    health_json += snapshot_record(snaps[i]).str();
  }
  health_json += "]";
  bundle.set_raw("health", health_json);

  std::string metrics_json = "[";
  const std::vector<JsonRecord> records =
      snapshot_records(MetricsRegistry::global().snapshot());
  for (std::size_t i = 0; i < records.size(); ++i) {
    if (i > 0) metrics_json += ",";
    metrics_json += records[i].str();
  }
  metrics_json += "]";
  bundle.set_raw("metrics", metrics_json);

  // Requests that were in flight in the serving stack when the bundle
  // was taken: the post-mortem names the exact trace ids that never
  // finished, so they can be pulled out of /tracez or client logs.
  std::string inflight_json = "[";
  const std::vector<TraceContext> inflight = InflightSet::global().snapshot();
  for (std::size_t i = 0; i < inflight.size(); ++i) {
    if (i > 0) inflight_json += ",";
    inflight_json += JsonRecord()
                         .set("trace_id", trace_id_hex(inflight[i].trace_id()))
                         .set("span_id", trace_id_hex(inflight[i].span_id()))
                         .str();
  }
  inflight_json += "]";
  bundle.set_raw("inflight", inflight_json);

  // Drain the trace rings into an embedded Chrome trace object so the
  // bundle alone reconstructs the timeline around the failure.
  std::string trace = chrome_trace_json(Tracer::global().collect(),
                                        Tracer::global().dropped());
  while (!trace.empty() && (trace.back() == '\n' || trace.back() == ' ')) {
    trace.pop_back();
  }
  bundle.set_raw("trace", trace);

  std::ofstream os(resolved);
  MATSCI_CHECK(os.is_open(),
               "flight recorder cannot open '" << resolved << "' for writing");
  os << bundle.str() << "\n";
  return resolved;
}

// --- crash handler -----------------------------------------------------------

namespace {

// Best-effort crash dumping: the armed recorder, its target path, and a
// copy of its config. Guarded by a mutex on the arm/disarm side; the
// handlers themselves read without locking (a crashed process cannot
// wait on its own mutexes) and serialize through g_crash_dumping.
std::mutex g_crash_mu;
FlightRecorder* g_armed_recorder = nullptr;
std::string* g_crash_path = nullptr;
HealthOptions* g_crash_config = nullptr;
bool g_have_crash_config = false;
std::terminate_handler g_prev_terminate = nullptr;
bool g_handlers_installed = false;
std::atomic<bool> g_crash_dumping{false};

constexpr int kCrashSignals[] = {SIGABRT, SIGSEGV, SIGFPE, SIGILL};

void crash_dump(const std::string& reason) {
  if (g_crash_dumping.exchange(true)) return;
  FlightRecorder* recorder = g_armed_recorder;
  if (recorder == nullptr) return;
  try {
    recorder->dump(*g_crash_path, reason, {},
                   g_have_crash_config ? g_crash_config : nullptr);
  } catch (...) {
    // Nothing sane to do while the process is already going down.
  }
}

[[noreturn]] void terminate_with_dump() {
  crash_dump("terminate");
  if (g_prev_terminate != nullptr) g_prev_terminate();
  std::abort();
}

void signal_with_dump(int sig) {
  crash_dump("signal:" + std::to_string(sig));
  std::signal(sig, SIG_DFL);
  std::raise(sig);
}

}  // namespace

void FlightRecorder::arm_crash_handler(const std::string& path,
                                       const HealthOptions* config) {
  std::lock_guard<std::mutex> lock(g_crash_mu);
  if (g_crash_path == nullptr) g_crash_path = new std::string();
  if (g_crash_config == nullptr) g_crash_config = new HealthOptions();
  *g_crash_path = resolve_flight_path(path);
  if (config != nullptr) {
    *g_crash_config = *config;
    g_have_crash_config = true;
  } else {
    g_have_crash_config = false;
  }
  g_armed_recorder = this;
  if (!g_handlers_installed) {
    g_handlers_installed = true;
    g_prev_terminate = std::set_terminate(terminate_with_dump);
    for (const int sig : kCrashSignals) {
      std::signal(sig, signal_with_dump);
    }
  }
}

void FlightRecorder::disarm_crash_handler() {
  std::lock_guard<std::mutex> lock(g_crash_mu);
  g_armed_recorder = nullptr;
  if (g_handlers_installed) {
    g_handlers_installed = false;
    std::set_terminate(g_prev_terminate);
    g_prev_terminate = nullptr;
    for (const int sig : kCrashSignals) {
      std::signal(sig, SIG_DFL);
    }
  }
}

FlightRecorder::~FlightRecorder() {
  std::unique_lock<std::mutex> lock(g_crash_mu);
  if (g_armed_recorder == this) {
    lock.unlock();
    disarm_crash_handler();
  }
}

// --- HealthMonitor -----------------------------------------------------------

namespace {

/// Registry handles the monitor emits through (resolved once; the
/// registry guarantees reference stability).
struct HealthMetrics {
  Series& loss;
  Series& grad_norm;
  Series& eps_floor;
  Series& update_ratio;
  Counter& steps;
  Counter& nonfinite;
  Counter& anomalies;
  Gauge& last_anomaly_step;

  static HealthMetrics& get() {
    static HealthMetrics* m = new HealthMetrics{
        MetricsRegistry::global().series("health.loss"),
        MetricsRegistry::global().series("health.grad_norm"),
        MetricsRegistry::global().series("health.frac_at_eps_floor"),
        MetricsRegistry::global().series("health.max_update_ratio"),
        MetricsRegistry::global().counter("health.steps"),
        MetricsRegistry::global().counter("health.nonfinite_grads"),
        MetricsRegistry::global().counter("health.anomalies"),
        MetricsRegistry::global().gauge("health.last_anomaly_step"),
    };
    return *m;
  }
};

}  // namespace

HealthMonitor::HealthMonitor(HealthOptions opts, const nn::Module& model,
                             const optim::Optimizer& opt)
    : opts_(std::move(opts)),
      model_(&model),
      opt_(&opt),
      detector_(opts_),
      recorder_(opts_.flight_recorder_steps) {
  named_ = model_->named_parameters();
  if (const auto* adam = dynamic_cast<const optim::Adam*>(opt_)) {
    probe_.emplace(*adam);
    probe_->set_history_limit(
        static_cast<std::size_t>(opts_.flight_recorder_steps));
  }
  if (opts_.arm_crash_handler) {
    recorder_.arm_crash_handler(opts_.flight_recorder_path, &opts_);
  }
}

std::vector<Anomaly> HealthMonitor::on_step(std::int64_t step, double loss) {
  MATSCI_TRACE_SCOPE("health/on_step");
  HealthSnapshot snap;
  snap.step = step;
  snap.rank = rank_;
  snap.loss = loss;

  const double lr = opt_->lr();
  double total_sq = 0.0;
  snap.layers.reserve(named_.size());
  for (const auto& [name, param] : named_) {
    LayerHealth lh;
    lh.name = name;
    double grad_sq = 0.0, weight_sq = 0.0;
    for (const float w : param.span()) {
      weight_sq += static_cast<double>(w) * w;
    }
    if (param.has_grad()) {
      for (const float g : param.impl()->grad) {
        if (!std::isfinite(g)) {
          ++lh.nonfinite_grads;
        } else {
          grad_sq += static_cast<double>(g) * g;
        }
      }
    }
    lh.grad_norm = std::sqrt(grad_sq);
    lh.weight_norm = std::sqrt(weight_sq);
    lh.update_ratio = lr * lh.grad_norm / (lh.weight_norm + 1e-12);
    total_sq += grad_sq;
    snap.nonfinite_grads += lh.nonfinite_grads;
    snap.max_update_ratio = std::max(snap.max_update_ratio, lh.update_ratio);
    snap.layers.push_back(std::move(lh));
  }
  snap.grad_norm = std::sqrt(total_sq);

  if (probe_) {
    const optim::AdamStepStats stats = probe_->observe();
    snap.has_adam_stats = true;
    snap.frac_at_eps_floor = stats.frac_at_eps_floor;
    snap.grad_autocorrelation = stats.grad_autocorrelation;
    snap.max_update_magnitude = stats.max_update_magnitude;
  }

  if (opts_.record_metrics && rank_ == 0) {
    HealthMetrics& metrics = HealthMetrics::get();
    metrics.steps.add(1);
    metrics.loss.record(step, snap.loss);
    metrics.grad_norm.record(step, snap.grad_norm);
    metrics.update_ratio.record(step, snap.max_update_ratio);
    if (snap.has_adam_stats) {
      metrics.eps_floor.record(step, snap.frac_at_eps_floor);
    }
    if (snap.nonfinite_grads > 0) {
      metrics.nonfinite.add(snap.nonfinite_grads);
    }
  }

  recorder_.record(snap);
  last_ = std::move(snap);

  std::vector<Anomaly> anomalies = detector_.observe(last_);
  if (opts_.record_metrics && rank_ == 0 && !anomalies.empty()) {
    HealthMetrics& metrics = HealthMetrics::get();
    metrics.anomalies.add(static_cast<std::int64_t>(anomalies.size()));
    metrics.last_anomaly_step.set(static_cast<double>(step));
  }
  return anomalies;
}

std::vector<Anomaly> HealthMonitor::on_cross_rank(
    const CrossRankHealth& cross, std::int64_t offender_rank) {
  last_.cross_rank = cross;
  recorder_.amend_last(last_);
  std::vector<Anomaly> anomalies =
      detector_.observe_cross_rank(cross, last_.step, offender_rank);
  if (opts_.record_metrics && rank_ == 0 && !anomalies.empty()) {
    HealthMetrics& metrics = HealthMetrics::get();
    metrics.anomalies.add(static_cast<std::int64_t>(anomalies.size()));
    metrics.last_anomaly_step.set(static_cast<double>(last_.step));
  }
  return anomalies;
}

std::string HealthMonitor::dump_bundle(
    const std::string& reason, const std::vector<Anomaly>& anomalies) const {
  return recorder_.dump(opts_.flight_recorder_path, reason, anomalies,
                        &opts_);
}

}  // namespace matsci::obs::health
