#pragma once

// Process-wide metrics: counters, gauges, fixed-bucket histograms, and
// step-keyed series, owned by a named registry and rendered by the
// exporters in obs/export.hpp. Write paths are built for hot-path use:
// counters and histograms stripe their state across kShards
// cache-line-padded shards indexed by a per-thread slot, so concurrent
// emission is a relaxed atomic RMW with no locks and (for up to kShards
// concurrent writers) no cache-line ping-pong; readers merge the shards
// on demand. Merged totals are exact once the writing threads have been
// joined or otherwise synchronized with the reader — the `obs`-labeled
// tests assert bit-stable counts under pool workers and serve clients
// hammering one registry.

#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <limits>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace matsci::obs {

/// Shard count for striped metric state. More concurrent writers than
/// shards simply share slots — still correct (every slot is atomic),
/// just with occasional cache-line sharing.
inline constexpr std::size_t kShards = 16;

namespace detail {

/// Stable per-thread shard slot in [0, kShards).
std::size_t thread_shard();

/// Relaxed fetch-add / fetch-min / fetch-max on atomic<double> via CAS
/// (floating-point fetch_add is C++20 but not universally lowered).
void atomic_add(std::atomic<double>& a, double v);
void atomic_min(std::atomic<double>& a, double v);
void atomic_max(std::atomic<double>& a, double v);

struct alignas(64) PaddedI64 {
  std::atomic<std::int64_t> v{0};
};

}  // namespace detail

/// Monotonic counter. add() is a relaxed fetch_add on the caller's
/// shard; value() sums all shards.
class Counter {
 public:
  void add(std::int64_t delta = 1) {
    shards_[detail::thread_shard()].v.fetch_add(delta,
                                                std::memory_order_relaxed);
  }
  std::int64_t value() const;
  void reset();

 private:
  std::array<detail::PaddedI64, kShards> shards_;
};

/// Last-write-wins scalar (queue depth, learning rate, ...).
class Gauge {
 public:
  void set(double v) { v_.store(v, std::memory_order_relaxed); }
  void add(double delta) { detail::atomic_add(v_, delta); }
  double value() const { return v_.load(std::memory_order_relaxed); }
  void reset() { set(0.0); }

 private:
  std::atomic<double> v_{0.0};
};

/// Merged view of a Histogram at one point in time.
struct HistogramSnapshot {
  /// Ascending bucket upper bounds; counts has one extra overflow
  /// bucket for values above the last bound.
  std::vector<double> bounds;
  std::vector<std::int64_t> counts;
  std::int64_t count = 0;
  double sum = 0.0;
  double min = 0.0;  ///< 0 when empty
  double max = 0.0;  ///< 0 when empty
  /// Most recent observation that carried a trace id (OpenMetrics-style
  /// exemplar): 0 when no traced observation has landed. Last-write-wins
  /// across shards; id and value are sampled independently (relaxed), so
  /// under concurrent traced writes they may belong to different
  /// observations — good enough for the "jump from this p99 to one
  /// culprit trace" workflow exemplars exist for.
  std::uint64_t exemplar_trace_id = 0;
  double exemplar_value = 0.0;

  double mean() const { return count == 0 ? 0.0 : sum / static_cast<double>(count); }

  /// Bucket-interpolated quantile, q in [0, 1]: rank q*count is located
  /// in the cumulative bucket counts and linearly interpolated inside
  /// its bucket, then clamped to the observed [min, max]. Exact for the
  /// extremes; elsewhere accurate to the bucket resolution.
  double percentile(double q) const;
};

/// Fixed-bucket histogram with sharded lock-free observation. Bucket
/// boundaries are fixed at construction so observe() is a binary search
/// plus three relaxed RMWs; there is no per-sample storage, so memory
/// and merge cost are independent of the observation count (unlike the
/// sort-the-samples percentile path this replaces in serve::ServerStats).
class Histogram {
 public:
  /// `upper_bounds` must be non-empty and strictly increasing. Values
  /// <= bounds[i] land in bucket i; values > bounds.back() land in the
  /// overflow bucket.
  explicit Histogram(std::vector<double> upper_bounds);

  /// Record one observation. A non-zero `exemplar_trace_id` additionally
  /// publishes (id, v) as the histogram's exemplar (two extra relaxed
  /// stores; passing 0 — the default — costs nothing).
  void observe(double v, std::uint64_t exemplar_trace_id = 0);
  HistogramSnapshot snapshot() const;
  void reset();

  const std::vector<double>& bounds() const { return bounds_; }

  /// 1-2-5 progression from 1 us to 1e7 us — the default for every
  /// latency-shaped metric in the toolkit.
  static std::vector<double> default_latency_bounds_us();

 private:
  struct alignas(64) ShardStats {
    std::atomic<double> sum{0.0};
    std::atomic<std::int64_t> count{0};
    std::atomic<double> min{std::numeric_limits<double>::infinity()};
    std::atomic<double> max{-std::numeric_limits<double>::infinity()};
  };

  std::vector<double> bounds_;
  std::size_t num_buckets_ = 0;  ///< bounds_.size() + 1 (overflow)
  /// kShards * num_buckets_ bucket counts, shard-major.
  std::unique_ptr<std::atomic<std::int64_t>[]> bucket_counts_;
  std::array<ShardStats, kShards> stats_;
  /// Last-write-wins exemplar (see HistogramSnapshot): written only by
  /// observes that carry a trace id, read by snapshot().
  std::atomic<std::uint64_t> exemplar_trace_id_{0};
  std::atomic<double> exemplar_value_{0.0};
};

/// Step-keyed sample sequence — the obs-side mirror of a training
/// curve. Appends under a mutex (per-epoch/per-step cadence, not a hot
/// path); exporters serialize the full series.
class Series {
 public:
  void record(std::int64_t step, double value);
  std::vector<std::pair<std::int64_t, double>> points() const;
  std::size_t size() const;
  /// Value of the most recent record (0 when empty) — what the
  /// Prometheus exporter reports for a series.
  double last_value() const;
  void reset();

 private:
  mutable std::mutex mu_;
  std::vector<std::pair<std::int64_t, double>> points_;
};

/// Process-wide name -> metric table. Lookup takes a mutex, so callers
/// on hot paths resolve once and keep the reference (references are
/// stable for the registry's lifetime; the global() instance is never
/// destroyed). Dotted lowercase names ("serve.queue_wait_us") are the
/// convention; exporters sanitize as needed.
class MetricsRegistry {
 public:
  static MetricsRegistry& global();

  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  /// First registration fixes the bucket bounds; later calls return the
  /// existing histogram regardless of `bounds`. Empty bounds select
  /// Histogram::default_latency_bounds_us().
  Histogram& histogram(const std::string& name,
                       std::vector<double> bounds = {});
  Series& series(const std::string& name);

  struct Snapshot {
    std::map<std::string, std::int64_t> counters;
    std::map<std::string, double> gauges;
    std::map<std::string, HistogramSnapshot> histograms;
    std::map<std::string, std::vector<std::pair<std::int64_t, double>>>
        series;
  };
  Snapshot snapshot() const;

  /// Zero every metric's value, keeping registrations (and therefore
  /// cached references) valid. Only meaningful while writers are
  /// quiescent; intended for tests and bench harness boundaries.
  void reset_values();

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
  std::map<std::string, std::unique_ptr<Series>> series_;
};

/// Steady-clock stopwatch for feeding duration histograms.
class StopWatch {
 public:
  StopWatch() : start_(std::chrono::steady_clock::now()) {}
  double elapsed_us() const {
    return std::chrono::duration<double, std::micro>(
               std::chrono::steady_clock::now() - start_)
        .count();
  }
  void restart() { start_ = std::chrono::steady_clock::now(); }

 private:
  std::chrono::steady_clock::time_point start_;
};

}  // namespace matsci::obs
