#pragma once

// Training health monitoring (DESIGN.md §10): the layer that turns the
// obs substrate from passive counters into active run supervision.
//
//   HealthMonitor   — per-step probe the Trainer/DDPTrainer invoke after
//                     backward and *before* gradient clipping: per-layer
//                     gradient norms, NaN/Inf counts, update-to-weight
//                     ratios, plus the AdamInstabilityProbe's ε-floor
//                     stats, recorded into the MetricsRegistry and fed to
//                     the anomaly detector and flight recorder.
//   AnomalyDetector — online spike detection with rolling median/MAD
//                     over the loss and gradient-norm series; also flags
//                     non-finite values, ε-floor dominance (the paper's
//                     §5.2 large-batch Adam divergence precursor), and
//                     cross-rank gradient-norm divergence in DDP runs.
//   FlightRecorder  — ring of the last N health snapshots that dumps a
//                     self-contained post-mortem JSON bundle (health
//                     history + drained trace spans + config/env +
//                     registry snapshot) on anomaly-triggered abort,
//                     std::terminate, or a fatal signal.
//
// DDP lockstep invariant: every policy decision is derived from values
// that are identical on all ranks (post-allreduce gradients, allreduced
// loss, allreduced cross-rank stats), so skip-step / abort fire on every
// rank in the same step and no rank is left waiting at a collective.

#include <cstdint>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "nn/module.hpp"
#include "obs/export.hpp"
#include "optim/diagnostics.hpp"
#include "optim/optimizer.hpp"

namespace matsci::obs::health {

enum class AnomalyType {
  kNonFiniteLoss,      ///< loss is NaN/Inf
  kNonFiniteGrad,      ///< any gradient entry (or the norm) is NaN/Inf
  kLossSpike,          ///< loss above rolling median + k·MAD
  kGradNormSpike,      ///< gradient norm above rolling median + k·MAD
  kEpsFloorDominance,  ///< frac_at_eps_floor above threshold (§5.2)
  kRankDivergence,     ///< one rank's grad norm far from the global mean
  kRankLost,           ///< a DDP rank died; survivors rebuilt the group
};
const char* to_string(AnomalyType type);

/// What the trainer does when the detector fires.
enum class AnomalyPolicy {
  kLogAndContinue,  ///< record, invoke callback, keep training
  kSkipStep,        ///< additionally zero grads and skip optimizer step
  kAbort,           ///< dump flight-recorder bundle and throw Error
};
const char* to_string(AnomalyPolicy policy);

struct Anomaly {
  AnomalyType type = AnomalyType::kLossSpike;
  std::int64_t step = 0;
  std::int64_t rank = 0;   ///< offending rank (0 in single-process runs)
  double value = 0.0;      ///< observed quantity
  double threshold = 0.0;  ///< limit it violated
  std::string detail;      ///< human-readable context
};

/// Per-parameter-tensor health (the module tree's registration names,
/// e.g. "encoder.layers.0.weight", are the layer granularity).
struct LayerHealth {
  std::string name;
  double grad_norm = 0.0;
  double weight_norm = 0.0;
  /// lr·‖g‖/‖w‖ — SGD-style update-to-weight proxy (Adam's true update
  /// magnitude is tracked separately via max_update_magnitude).
  double update_ratio = 0.0;
  std::int64_t nonfinite_grads = 0;  ///< NaN/Inf gradient entries
};

/// Cross-rank reduction of per-rank grad norms (DDP only; every field
/// comes out of a collective, so it is identical on all ranks).
struct CrossRankHealth {
  bool reduced = false;  ///< true once filled by the DDP trainer
  std::int64_t world_size = 1;
  double grad_norm_mean = 0.0;
  double grad_norm_min = 0.0;
  double grad_norm_max = 0.0;
  std::int64_t nonfinite_ranks = 0;  ///< ranks with any non-finite grad
};

/// One step's complete health record — the flight recorder's unit.
struct HealthSnapshot {
  std::int64_t step = 0;
  std::int64_t rank = 0;
  double loss = 0.0;
  double grad_norm = 0.0;  ///< global pre-clip L2 norm
  std::int64_t nonfinite_grads = 0;
  double max_update_ratio = 0.0;
  std::vector<LayerHealth> layers;
  /// AdamInstabilityProbe stats (valid when has_adam_stats).
  bool has_adam_stats = false;
  double frac_at_eps_floor = 0.0;
  double grad_autocorrelation = 0.0;
  double max_update_magnitude = 0.0;
  CrossRankHealth cross_rank;
};

/// Render one snapshot as a flat-ish JSON object (layers nested array).
JsonRecord snapshot_record(const HealthSnapshot& snap);
JsonRecord anomaly_record(const Anomaly& anomaly);

struct HealthOptions {
  bool enabled = false;
  /// Rolling median/MAD window length for the loss / grad-norm series.
  std::int64_t window = 32;
  /// Steps before spike, ε-floor, and rank-divergence detection arm
  /// (non-finite detection is always armed: step 1 NaNs must fire
  /// immediately). Cold-start gradients are noisy both over time and
  /// across shards, so all statistical checks wait out the warmup.
  std::int64_t warmup_steps = 8;
  /// Spike when value > median + spike_mads · max(MAD, 1% of median)
  /// AND value > spike_min_ratio · median (guards near-zero MAD).
  /// Healthy small-batch training routinely wanders 2–3x around its
  /// rolling median, so the ratio guard defaults to 4x; genuine blow-ups
  /// are orders of magnitude. Tighten per-run when loss is smooth.
  double spike_mads = 8.0;
  double spike_min_ratio = 4.0;
  /// ε-floor dominance when frac_at_eps_floor exceeds this.
  double eps_floor_threshold = 0.5;
  /// Rank divergence when grad_norm_max / grad_norm_min exceeds this.
  double rank_divergence_ratio = 8.0;
  AnomalyPolicy policy = AnomalyPolicy::kLogAndContinue;
  /// Health snapshots retained by the flight recorder.
  std::int64_t flight_recorder_steps = 64;
  /// Bundle path; "" resolves to "$MATSCI_BENCH_DIR/flight_recorder.json"
  /// (or ./flight_recorder.json).
  std::string flight_recorder_path;
  /// Also dump a bundle on every anomaly under kLogAndContinue /
  /// kSkipStep (kAbort always dumps).
  bool dump_on_anomaly = false;
  /// Install the process-wide std::terminate / fatal-signal dump hook
  /// for the monitor's lifetime (off by default: it is global state).
  bool arm_crash_handler = false;
  /// Mirror health series/counters into MetricsRegistry::global().
  bool record_metrics = true;
};

/// Default bundle location for `path == ""`.
std::string resolve_flight_path(const std::string& path);

/// Fixed-capacity rolling window with median / MAD (median absolute
/// deviation) summaries — robust location/scale for spike detection.
class RollingWindow {
 public:
  explicit RollingWindow(std::size_t capacity);
  void push(double v);
  std::size_t size() const { return count_; }
  double median() const;
  /// MAD: median(|x - median|). 0 for windows of size < 2.
  double mad() const;

 private:
  std::vector<double> ring_;
  std::size_t head_ = 0;
  std::size_t count_ = 0;
};

/// Online anomaly detection over a stream of health snapshots. Not
/// thread-safe: one detector per training loop (per rank in DDP).
class AnomalyDetector {
 public:
  explicit AnomalyDetector(HealthOptions opts);

  /// Examine one step. Order matters for spike detection: the snapshot
  /// is tested against the window *before* being absorbed into it.
  std::vector<Anomaly> observe(const HealthSnapshot& snap);

  /// DDP-only: examine allreduced cross-rank stats. `offender_rank` is
  /// the rank owning grad_norm_max (identical on all ranks).
  std::vector<Anomaly> observe_cross_rank(const CrossRankHealth& cross,
                                          std::int64_t step,
                                          std::int64_t offender_rank);

 private:
  HealthOptions opts_;
  RollingWindow loss_window_;
  RollingWindow grad_window_;
  std::int64_t steps_seen_ = 0;
};

/// Bounded ring of health snapshots plus the post-mortem bundle writer.
/// Thread-safe (the crash handler may fire from any thread).
class FlightRecorder {
 public:
  explicit FlightRecorder(std::int64_t capacity);
  ~FlightRecorder();
  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  void record(const HealthSnapshot& snap);
  /// Overwrite the most recent snapshot (DDP folds cross-rank stats
  /// into the step's record after the collectives complete).
  void amend_last(const HealthSnapshot& snap);
  /// Oldest-first retained snapshots.
  std::vector<HealthSnapshot> history() const;
  std::int64_t capacity() const { return capacity_; }

  /// Write the self-contained post-mortem bundle: one strict-JSON object
  /// with the health history, anomalies, drained trace spans (Chrome
  /// trace object, including dropped-span metadata), a registry
  /// snapshot, the health config, and MATSCI_* environment. Returns the
  /// resolved path.
  std::string dump(const std::string& path, const std::string& reason,
                   const std::vector<Anomaly>& anomalies = {},
                   const HealthOptions* config = nullptr) const;

  /// Register this recorder as the process crash dumper: on
  /// std::terminate or SIGABRT/SIGSEGV/SIGFPE/SIGILL a bundle with
  /// reason "terminate"/"signal" is written to `path` (best-effort —
  /// the signal path allocates, which is technically not async-safe but
  /// is standard flight-recorder practice). One recorder may be armed
  /// at a time; arming replaces the previous one. Disarmed
  /// automatically on destruction.
  void arm_crash_handler(const std::string& path,
                         const HealthOptions* config = nullptr);
  static void disarm_crash_handler();

 private:
  mutable std::mutex mu_;
  std::int64_t capacity_;
  std::vector<HealthSnapshot> ring_;
  std::size_t head_ = 0;
  std::size_t count_ = 0;
};

/// Per-step training health probe. Constructed over the live module and
/// optimizer (references must outlive the monitor); if the optimizer is
/// an Adam, an AdamInstabilityProbe is attached automatically and its
/// stats (frac_at_eps_floor, grad autocorrelation, max update) flow
/// into every snapshot. Call on_step() after backward and before
/// clip_grad_norm so spikes are measured on true gradients.
class HealthMonitor {
 public:
  HealthMonitor(HealthOptions opts, const nn::Module& model,
                const optim::Optimizer& opt);

  /// Record one step: compute per-layer stats, feed registry series,
  /// push the snapshot into the flight recorder, and run the detector.
  /// Returns every anomaly flagged this step (empty == healthy).
  std::vector<Anomaly> on_step(std::int64_t step, double loss);

  /// DDP-only: fold allreduced cross-rank stats into the last snapshot
  /// and run divergence detection. Call right after on_step().
  std::vector<Anomaly> on_cross_rank(const CrossRankHealth& cross,
                                     std::int64_t offender_rank);

  /// Dump a bundle now (used by the abort policy); returns the path.
  std::string dump_bundle(const std::string& reason,
                          const std::vector<Anomaly>& anomalies) const;

  const HealthSnapshot& last() const { return last_; }
  const HealthOptions& options() const { return opts_; }
  FlightRecorder& flight_recorder() { return recorder_; }
  void set_rank(std::int64_t rank) { rank_ = rank; }

 private:
  HealthOptions opts_;
  const nn::Module* model_;
  const optim::Optimizer* opt_;
  std::vector<std::pair<std::string, core::Tensor>> named_;
  std::optional<optim::AdamInstabilityProbe> probe_;
  AnomalyDetector detector_;
  FlightRecorder recorder_;
  HealthSnapshot last_;
  std::int64_t rank_ = 0;
};

}  // namespace matsci::obs::health
