#include "obs/metrics.hpp"

#include <algorithm>

#include "core/macros.hpp"

namespace matsci::obs {

namespace detail {

std::size_t thread_shard() {
  static std::atomic<std::size_t> next{0};
  thread_local const std::size_t slot =
      next.fetch_add(1, std::memory_order_relaxed) % kShards;
  return slot;
}

void atomic_add(std::atomic<double>& a, double v) {
  double cur = a.load(std::memory_order_relaxed);
  while (!a.compare_exchange_weak(cur, cur + v, std::memory_order_relaxed)) {
  }
}

void atomic_min(std::atomic<double>& a, double v) {
  double cur = a.load(std::memory_order_relaxed);
  while (v < cur &&
         !a.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

void atomic_max(std::atomic<double>& a, double v) {
  double cur = a.load(std::memory_order_relaxed);
  while (v > cur &&
         !a.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

}  // namespace detail

// --- Counter -----------------------------------------------------------------

std::int64_t Counter::value() const {
  std::int64_t total = 0;
  for (const detail::PaddedI64& s : shards_) {
    total += s.v.load(std::memory_order_relaxed);
  }
  return total;
}

void Counter::reset() {
  for (detail::PaddedI64& s : shards_) {
    s.v.store(0, std::memory_order_relaxed);
  }
}

// --- HistogramSnapshot -------------------------------------------------------

double HistogramSnapshot::percentile(double q) const {
  if (count == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const double rank = q * static_cast<double>(count);  // in (0, count]
  double cumulative = 0.0;
  for (std::size_t b = 0; b < counts.size(); ++b) {
    const double in_bucket = static_cast<double>(counts[b]);
    if (in_bucket <= 0.0) continue;
    if (cumulative + in_bucket >= rank) {
      const double lower = b == 0 ? 0.0 : bounds[b - 1];
      const double upper = b < bounds.size() ? bounds[b] : max;
      const double frac = std::clamp((rank - cumulative) / in_bucket, 0.0, 1.0);
      const double est = lower + frac * (upper - lower);
      return std::clamp(est, min, max);
    }
    cumulative += in_bucket;
  }
  return max;  // q == 1 with rounding slack
}

// --- Histogram ---------------------------------------------------------------

std::vector<double> Histogram::default_latency_bounds_us() {
  std::vector<double> bounds;
  for (double decade = 1.0; decade <= 1.0e6; decade *= 10.0) {
    bounds.push_back(decade);
    bounds.push_back(2.0 * decade);
    bounds.push_back(5.0 * decade);
  }
  bounds.push_back(1.0e7);
  return bounds;
}

Histogram::Histogram(std::vector<double> upper_bounds)
    : bounds_(std::move(upper_bounds)) {
  MATSCI_CHECK(!bounds_.empty(), "Histogram needs at least one bucket bound");
  for (std::size_t i = 1; i < bounds_.size(); ++i) {
    MATSCI_CHECK(bounds_[i] > bounds_[i - 1],
                 "Histogram bounds must be strictly increasing (bound "
                     << i << ": " << bounds_[i] << " <= " << bounds_[i - 1]
                     << ")");
  }
  num_buckets_ = bounds_.size() + 1;
  bucket_counts_ = std::make_unique<std::atomic<std::int64_t>[]>(
      kShards * num_buckets_);
  for (std::size_t i = 0; i < kShards * num_buckets_; ++i) {
    bucket_counts_[i].store(0, std::memory_order_relaxed);
  }
}

void Histogram::observe(double v, std::uint64_t exemplar_trace_id) {
  const std::size_t bucket = static_cast<std::size_t>(
      std::lower_bound(bounds_.begin(), bounds_.end(), v) - bounds_.begin());
  const std::size_t shard = detail::thread_shard();
  bucket_counts_[shard * num_buckets_ + bucket].fetch_add(
      1, std::memory_order_relaxed);
  ShardStats& s = stats_[shard];
  s.count.fetch_add(1, std::memory_order_relaxed);
  detail::atomic_add(s.sum, v);
  detail::atomic_min(s.min, v);
  detail::atomic_max(s.max, v);
  if (exemplar_trace_id != 0) {
    // Two independent relaxed stores: concurrent traced writers may
    // interleave id and value from different observations, which the
    // exemplar contract tolerates (HistogramSnapshot doc).
    exemplar_value_.store(v, std::memory_order_relaxed);
    exemplar_trace_id_.store(exemplar_trace_id, std::memory_order_relaxed);
  }
}

HistogramSnapshot Histogram::snapshot() const {
  HistogramSnapshot snap;
  snap.bounds = bounds_;
  snap.counts.assign(num_buckets_, 0);
  double min = std::numeric_limits<double>::infinity();
  double max = -std::numeric_limits<double>::infinity();
  for (std::size_t shard = 0; shard < kShards; ++shard) {
    for (std::size_t b = 0; b < num_buckets_; ++b) {
      snap.counts[b] += bucket_counts_[shard * num_buckets_ + b].load(
          std::memory_order_relaxed);
    }
    const ShardStats& s = stats_[shard];
    snap.count += s.count.load(std::memory_order_relaxed);
    snap.sum += s.sum.load(std::memory_order_relaxed);
    min = std::min(min, s.min.load(std::memory_order_relaxed));
    max = std::max(max, s.max.load(std::memory_order_relaxed));
  }
  if (snap.count > 0) {
    snap.min = min;
    snap.max = max;
  }
  snap.exemplar_trace_id =
      exemplar_trace_id_.load(std::memory_order_relaxed);
  snap.exemplar_value = exemplar_value_.load(std::memory_order_relaxed);
  return snap;
}

void Histogram::reset() {
  for (std::size_t i = 0; i < kShards * num_buckets_; ++i) {
    bucket_counts_[i].store(0, std::memory_order_relaxed);
  }
  for (ShardStats& s : stats_) {
    s.sum.store(0.0, std::memory_order_relaxed);
    s.count.store(0, std::memory_order_relaxed);
    s.min.store(std::numeric_limits<double>::infinity(),
                std::memory_order_relaxed);
    s.max.store(-std::numeric_limits<double>::infinity(),
                std::memory_order_relaxed);
  }
  exemplar_trace_id_.store(0, std::memory_order_relaxed);
  exemplar_value_.store(0.0, std::memory_order_relaxed);
}

// --- Series ------------------------------------------------------------------

void Series::record(std::int64_t step, double value) {
  std::lock_guard<std::mutex> lock(mu_);
  points_.emplace_back(step, value);
}

std::vector<std::pair<std::int64_t, double>> Series::points() const {
  std::lock_guard<std::mutex> lock(mu_);
  return points_;
}

std::size_t Series::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return points_.size();
}

double Series::last_value() const {
  std::lock_guard<std::mutex> lock(mu_);
  return points_.empty() ? 0.0 : points_.back().second;
}

void Series::reset() {
  std::lock_guard<std::mutex> lock(mu_);
  points_.clear();
}

// --- MetricsRegistry ---------------------------------------------------------

MetricsRegistry& MetricsRegistry::global() {
  // Leaked on purpose: pool workers and serve dispatch jobs may emit
  // metrics during static destruction; a never-destroyed registry makes
  // that safe regardless of destruction order.
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

Counter& MetricsRegistry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& MetricsRegistry::histogram(const std::string& name,
                                      std::vector<double> bounds) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = histograms_[name];
  if (!slot) {
    if (bounds.empty()) bounds = Histogram::default_latency_bounds_us();
    slot = std::make_unique<Histogram>(std::move(bounds));
  }
  return *slot;
}

Series& MetricsRegistry::series(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = series_[name];
  if (!slot) slot = std::make_unique<Series>();
  return *slot;
}

MetricsRegistry::Snapshot MetricsRegistry::snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  Snapshot snap;
  for (const auto& [name, c] : counters_) snap.counters[name] = c->value();
  for (const auto& [name, g] : gauges_) snap.gauges[name] = g->value();
  for (const auto& [name, h] : histograms_) {
    snap.histograms[name] = h->snapshot();
  }
  for (const auto& [name, s] : series_) snap.series[name] = s->points();
  return snap;
}

void MetricsRegistry::reset_values() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, c] : counters_) c->reset();
  for (auto& [name, g] : gauges_) g->reset();
  for (auto& [name, h] : histograms_) h->reset();
  for (auto& [name, s] : series_) s->reset();
}

}  // namespace matsci::obs
