#include "obs/export.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <ctime>
#include <fstream>
#include <map>
#include <sstream>

#include "core/macros.hpp"
#include "obs/context.hpp"

namespace matsci::obs {

// --- JSON rendering helpers --------------------------------------------------

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string json_number(double v) {
  if (!std::isfinite(v)) return "null";  // JSON has no inf/nan
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.10g", v);
  return buf;
}

JsonRecord& JsonRecord::set(const std::string& key, double value) {
  fields_.emplace_back(key, json_number(value));
  return *this;
}

JsonRecord& JsonRecord::set(const std::string& key, std::int64_t value) {
  fields_.emplace_back(key, std::to_string(value));
  return *this;
}

JsonRecord& JsonRecord::set(const std::string& key, const std::string& value) {
  fields_.emplace_back(key, "\"" + json_escape(value) + "\"");
  return *this;
}

JsonRecord& JsonRecord::set(const std::string& key, bool value) {
  fields_.emplace_back(key, value ? "true" : "false");
  return *this;
}

JsonRecord& JsonRecord::set_raw(const std::string& key,
                                const std::string& json) {
  fields_.emplace_back(key, json);
  return *this;
}

std::string JsonRecord::str() const {
  std::string out = "{";
  for (std::size_t i = 0; i < fields_.size(); ++i) {
    if (i > 0) out += ",";
    out += "\"" + json_escape(fields_[i].first) + "\":" + fields_[i].second;
  }
  out += "}";
  return out;
}

// --- Chrome trace ------------------------------------------------------------

std::string chrome_trace_json(const std::vector<TraceEvent>& events,
                              std::int64_t dropped_events) {
  std::uint64_t epoch_ns = 0;
  for (const TraceEvent& ev : events) {
    if (epoch_ns == 0 || ev.start_ns < epoch_ns) epoch_ns = ev.start_ns;
  }
  std::ostringstream os;
  os << "{\"displayTimeUnit\":\"ms\",";
  if (dropped_events >= 0) {
    // Chrome/Perfetto pass unknown root keys through; "otherData" is
    // the conventional metadata slot. Ring overflow is no longer
    // silent: consumers can see how many spans the window lost.
    os << "\"otherData\":{\"droppedEvents\":" << dropped_events
       << ",\"ringCapacityPerThread\":" << Tracer::kRingCapacity << "},";
  }
  os << "\"traceEvents\":[";
  for (std::size_t i = 0; i < events.size(); ++i) {
    const TraceEvent& ev = events[i];
    if (i > 0) os << ",";
    os << "\n{\"name\":\"" << json_escape(ev.name ? ev.name : "?")
       << "\",\"cat\":\"matsci\",\"ph\":\"X\",\"ts\":"
       << json_number(static_cast<double>(ev.start_ns - epoch_ns) / 1.0e3)
       << ",\"dur\":" << json_number(static_cast<double>(ev.dur_ns) / 1.0e3)
       << ",\"pid\":1,\"tid\":" << ev.tid;
    if (ev.trace_id != 0) {
      // Request-tracing ids ride in "args" (Chrome/Perfetto show them in
      // the span detail pane; the validator ignores extra fields).
      os << ",\"args\":{\"trace_id\":\"" << trace_id_hex(ev.trace_id)
         << "\",\"span_id\":\"" << trace_id_hex(ev.span_id)
         << "\",\"parent_span_id\":\"" << trace_id_hex(ev.parent_span_id)
         << "\"}";
    }
    os << "}";
  }
  os << "\n]}\n";
  return os.str();
}

void write_chrome_trace(const std::string& path,
                        const std::vector<TraceEvent>& events,
                        std::int64_t dropped_events) {
  std::ofstream os(path);
  MATSCI_CHECK(os.is_open(), "cannot open '" << path << "' for writing");
  os << chrome_trace_json(events, dropped_events);
}

// --- Minimal strict JSON parser (validation only) ----------------------------

namespace {

/// Recursive-descent JSON reader over a string. Parses (without
/// building a document) and lets the Chrome validator inspect the
/// pieces it cares about via callbacks on "traceEvents" elements.
class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : text_(text) {}

  bool parse_value() {
    skip_ws();
    if (pos_ >= text_.size()) return fail("unexpected end of input");
    switch (text_[pos_]) {
      case '{': return parse_object(nullptr);
      case '[': return parse_array();
      case '"': return parse_string(nullptr);
      case 't': return parse_literal("true");
      case 'f': return parse_literal("false");
      case 'n': return parse_literal("null");
      default: return parse_number(nullptr);
    }
  }

  /// Parse an object, recording keys (and scalar values as raw text)
  /// into *fields when non-null.
  bool parse_object(std::vector<std::pair<std::string, std::string>>* fields) {
    if (!consume('{')) return false;
    skip_ws();
    if (peek() == '}') { ++pos_; return true; }
    for (;;) {
      skip_ws();
      std::string key;
      if (!parse_string(&key)) return false;
      skip_ws();
      if (!consume(':')) return false;
      skip_ws();
      const std::size_t value_start = pos_;
      if (!parse_value()) return false;
      if (fields != nullptr) {
        fields->emplace_back(key,
                             text_.substr(value_start, pos_ - value_start));
      }
      skip_ws();
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == '}') { ++pos_; return true; }
      return fail("expected ',' or '}' in object");
    }
  }

  bool parse_array() {
    if (!consume('[')) return false;
    skip_ws();
    if (peek() == ']') { ++pos_; return true; }
    for (;;) {
      if (!parse_value()) return false;
      skip_ws();
      if (peek() == ',') { ++pos_; skip_ws(); continue; }
      if (peek() == ']') { ++pos_; return true; }
      return fail("expected ',' or ']' in array");
    }
  }

  bool at_end() {
    skip_ws();
    return pos_ >= text_.size();
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }
  char peek() const { return pos_ < text_.size() ? text_[pos_] : '\0'; }
  std::size_t pos() const { return pos_; }
  void seek(std::size_t pos) { pos_ = pos; }
  const std::string& error() const { return error_; }

  bool parse_string(std::string* out) {
    if (!consume('"')) return false;
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return true;
      if (c == '\\') {
        if (pos_ >= text_.size()) return fail("dangling escape");
        const char esc = text_[pos_++];
        switch (esc) {
          case '"': case '\\': case '/': case 'b': case 'f':
          case 'n': case 'r': case 't':
            if (out != nullptr) *out += esc;  // decoded form irrelevant here
            break;
          case 'u':
            for (int i = 0; i < 4; ++i) {
              if (pos_ >= text_.size() ||
                  !std::isxdigit(static_cast<unsigned char>(text_[pos_]))) {
                return fail("bad \\u escape");
              }
              ++pos_;
            }
            break;
          default: return fail("bad escape character");
        }
      } else if (static_cast<unsigned char>(c) < 0x20) {
        return fail("raw control character in string");
      } else if (out != nullptr) {
        *out += c;
      }
    }
    return fail("unterminated string");
  }

  bool parse_number(double* out) {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    if (!std::isdigit(static_cast<unsigned char>(peek()))) {
      return fail("expected a number");
    }
    while (std::isdigit(static_cast<unsigned char>(peek()))) ++pos_;
    if (peek() == '.') {
      ++pos_;
      if (!std::isdigit(static_cast<unsigned char>(peek()))) {
        return fail("digit required after decimal point");
      }
      while (std::isdigit(static_cast<unsigned char>(peek()))) ++pos_;
    }
    if (peek() == 'e' || peek() == 'E') {
      ++pos_;
      if (peek() == '+' || peek() == '-') ++pos_;
      if (!std::isdigit(static_cast<unsigned char>(peek()))) {
        return fail("digit required in exponent");
      }
      while (std::isdigit(static_cast<unsigned char>(peek()))) ++pos_;
    }
    if (out != nullptr) *out = std::stod(text_.substr(start, pos_ - start));
    return true;
  }

  bool fail(const std::string& why) {
    if (error_.empty()) {
      error_ = why + " (at offset " + std::to_string(pos_) + ")";
    }
    return false;
  }

 private:
  bool parse_literal(const char* lit) {
    for (const char* p = lit; *p != '\0'; ++p) {
      if (pos_ >= text_.size() || text_[pos_] != *p) {
        return fail(std::string("bad literal, expected '") + lit + "'");
      }
      ++pos_;
    }
    return true;
  }
  bool consume(char c) {
    if (peek() != c) return fail(std::string("expected '") + c + "'");
    ++pos_;
    return true;
  }

  const std::string& text_;
  std::size_t pos_ = 0;
  std::string error_;
};

bool set_error(std::string* error, const std::string& why) {
  if (error != nullptr) *error = why;
  return false;
}

bool looks_numeric(const std::string& raw) {
  return !raw.empty() && (raw[0] == '-' ||
                          std::isdigit(static_cast<unsigned char>(raw[0])));
}

bool looks_string(const std::string& raw) {
  return raw.size() >= 2 && raw.front() == '"' && raw.back() == '"';
}

}  // namespace

bool validate_json(const std::string& text, std::string* error) {
  JsonParser parser(text);
  if (!parser.parse_value() || !parser.at_end()) {
    return set_error(error, parser.error().empty() ? "trailing garbage"
                                                   : parser.error());
  }
  return true;
}

bool validate_chrome_trace_json(const std::string& json, std::string* error) {
  if (!validate_json(json, error)) return false;

  // Re-walk the (now known valid) document structurally.
  JsonParser parser(json);
  std::vector<std::pair<std::string, std::string>> root;
  parser.skip_ws();
  if (parser.peek() != '{' || !parser.parse_object(&root)) {
    return set_error(error, "root is not an object");
  }
  std::string events_raw;
  for (const auto& [key, raw] : root) {
    if (key == "traceEvents") events_raw = raw;
  }
  if (events_raw.empty() || events_raw[0] != '[') {
    return set_error(error, "missing \"traceEvents\" array");
  }

  JsonParser events(events_raw);
  events.skip_ws();
  events.seek(events.pos() + 1);  // past '['
  events.skip_ws();
  std::size_t index = 0;
  if (events.peek() != ']') {
    for (;; ++index) {
      events.skip_ws();
      std::vector<std::pair<std::string, std::string>> fields;
      if (events.peek() != '{' || !events.parse_object(&fields)) {
        return set_error(error, "traceEvents[" + std::to_string(index) +
                                    "] is not an object");
      }
      std::string name, ph, ts, dur, pid, tid;
      for (const auto& [key, raw] : fields) {
        if (key == "name") name = raw;
        else if (key == "ph") ph = raw;
        else if (key == "ts") ts = raw;
        else if (key == "dur") dur = raw;
        else if (key == "pid") pid = raw;
        else if (key == "tid") tid = raw;
      }
      const std::string at = "traceEvents[" + std::to_string(index) + "]";
      if (!looks_string(name)) return set_error(error, at + ": bad \"name\"");
      if (!looks_string(ph)) return set_error(error, at + ": bad \"ph\"");
      if (!looks_numeric(ts)) return set_error(error, at + ": bad \"ts\"");
      if (!looks_numeric(pid)) return set_error(error, at + ": bad \"pid\"");
      if (!looks_numeric(tid)) return set_error(error, at + ": bad \"tid\"");
      if (ph == "\"X\"" && !looks_numeric(dur)) {
        return set_error(error, at + ": complete event without \"dur\"");
      }
      events.skip_ws();
      if (events.peek() == ',') { events.seek(events.pos() + 1); continue; }
      break;
    }
  }
  return true;
}

// --- Prometheus text ---------------------------------------------------------

namespace {

std::string prom_name(const std::string& name) {
  std::string out = "matsci_";
  for (const char c : name) {
    out += (std::isalnum(static_cast<unsigned char>(c)) || c == '_' ||
            c == ':')
               ? c
               : '_';
  }
  return out;
}

}  // namespace

std::string prometheus_escape_label_value(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      default: out += c;
    }
  }
  return out;
}

std::string prometheus_escape_help(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      default: out += c;
    }
  }
  return out;
}

std::string prometheus_text(const MetricsRegistry::Snapshot& snapshot) {
  std::ostringstream os;
  for (const auto& [name, value] : snapshot.counters) {
    const std::string n = prom_name(name);
    os << "# TYPE " << n << " counter\n" << n << " " << value << "\n";
  }
  for (const auto& [name, value] : snapshot.gauges) {
    const std::string n = prom_name(name);
    os << "# TYPE " << n << " gauge\n" << n << " " << json_number(value)
       << "\n";
  }
  for (const auto& [name, points] : snapshot.series) {
    const std::string n = prom_name(name);
    os << "# TYPE " << n << " gauge\n"
       << "# HELP " << n << " "
       << prometheus_escape_help("last value of step-keyed series '" + name +
                                 "' (" + std::to_string(points.size()) +
                                 " points recorded)")
       << "\n"
       << n << " " << json_number(points.empty() ? 0.0 : points.back().second)
       << "\n";
  }
  for (const auto& [name, hist] : snapshot.histograms) {
    const std::string n = prom_name(name);
    os << "# TYPE " << n << " histogram\n";
    std::int64_t cumulative = 0;
    for (std::size_t b = 0; b < hist.bounds.size() && b < hist.counts.size();
         ++b) {
      cumulative += hist.counts[b];
      os << n << "_bucket{le=\""
         << prometheus_escape_label_value(json_number(hist.bounds[b]))
         << "\"} " << cumulative << "\n";
    }
    // The +Inf bucket is mandatory and must equal _count, even for
    // hand-built snapshots whose counts lack an overflow slot.
    os << n << "_bucket{le=\"+Inf\"} " << hist.count;
    if (hist.exemplar_trace_id != 0) {
      // OpenMetrics-style exemplar: the last traced observation, keyed
      // by its trace id so a dashboard can jump from a latency series
      // straight to the offending request's spans in /tracez.
      os << " # {trace_id=\"" << trace_id_hex(hist.exemplar_trace_id)
         << "\"} " << json_number(hist.exemplar_value);
    }
    os << "\n";
    os << n << "_sum " << json_number(hist.sum) << "\n"
       << n << "_count " << hist.count << "\n";
  }
  return os.str();
}

namespace {

bool prom_fail(std::string* error, std::size_t line_no,
               const std::string& why) {
  if (error != nullptr) {
    *error = "line " + std::to_string(line_no) + ": " + why;
  }
  return false;
}

bool prom_valid_name(const std::string& name) {
  if (name.empty()) return false;
  for (const char c : name) {
    if (!(std::isalnum(static_cast<unsigned char>(c)) || c == '_' ||
          c == ':')) {
      return false;
    }
  }
  return !std::isdigit(static_cast<unsigned char>(name[0]));
}

bool prom_valid_value(const std::string& value) {
  if (value.empty()) return false;
  if (value == "+Inf" || value == "-Inf" || value == "NaN") return true;
  char* end = nullptr;
  std::strtod(value.c_str(), &end);
  return end != nullptr && *end == '\0';
}

/// Parse a `key="escaped value"` comma-separated label body (the text
/// between '{' and '}'); used for both a sample's label set and an
/// exemplar's. Fills *le_value (when non-null) with the decoded value
/// of the "le" label.
bool parse_prom_labels(const std::string& labels, std::string* le_value,
                       std::size_t line_no, std::string* error) {
  std::size_t pos = 0;
  while (pos < labels.size()) {
    const std::size_t eq = labels.find('=', pos);
    if (eq == std::string::npos) {
      return prom_fail(error, line_no, "label without '='");
    }
    const std::string key = labels.substr(pos, eq - pos);
    if (!prom_valid_name(key)) {
      return prom_fail(error, line_no, "bad label name '" + key + "'");
    }
    if (eq + 1 >= labels.size() || labels[eq + 1] != '"') {
      return prom_fail(error, line_no, "label value must be quoted");
    }
    std::string decoded;
    std::size_t i = eq + 2;
    bool closed = false;
    for (; i < labels.size(); ++i) {
      const char c = labels[i];
      if (c == '\\') {
        if (i + 1 >= labels.size()) {
          return prom_fail(error, line_no, "dangling escape in label");
        }
        const char esc = labels[++i];
        if (esc == '\\') decoded += '\\';
        else if (esc == '"') decoded += '"';
        else if (esc == 'n') decoded += '\n';
        else return prom_fail(error, line_no, "bad label escape");
      } else if (c == '"') {
        closed = true;
        ++i;
        break;
      } else if (c == '\n') {
        return prom_fail(error, line_no, "raw newline in label value");
      } else {
        decoded += c;
      }
    }
    if (!closed) {
      return prom_fail(error, line_no, "unterminated label value");
    }
    if (key == "le" && le_value != nullptr) *le_value = decoded;
    if (i < labels.size()) {
      if (labels[i] != ',') {
        return prom_fail(error, line_no, "expected ',' between labels");
      }
      ++i;
    }
    pos = i;
  }
  return true;
}

}  // namespace

bool validate_prometheus_text(const std::string& text, std::string* error) {
  std::istringstream lines(text);
  std::string line;
  std::size_t line_no = 0;
  // Histogram bookkeeping keyed by base metric name.
  std::map<std::string, std::int64_t> last_bucket;      // last cumulative
  std::map<std::string, std::int64_t> inf_bucket;       // le="+Inf" value
  std::map<std::string, std::int64_t> histogram_count;  // _count value
  while (std::getline(lines, line)) {
    ++line_no;
    if (line.empty()) continue;
    if (line[0] == '#') {
      std::istringstream comment(line);
      std::string hash, kind, name;
      comment >> hash >> kind >> name;
      if (kind != "TYPE" && kind != "HELP") {
        return prom_fail(error, line_no, "comment must be # TYPE or # HELP");
      }
      if (!prom_valid_name(name)) {
        return prom_fail(error, line_no, "bad metric name '" + name + "'");
      }
      continue;
    }
    // Sample line: name[{labels}] value
    std::string name, labels, value;
    const std::size_t brace = line.find('{');
    const std::size_t space = line.find(' ');
    if (brace != std::string::npos && (space == std::string::npos ||
                                       brace < space)) {
      name = line.substr(0, brace);
      const std::size_t close = line.find('}', brace);
      if (close == std::string::npos) {
        return prom_fail(error, line_no, "unterminated label set");
      }
      labels = line.substr(brace + 1, close - brace - 1);
      if (close + 2 > line.size() || line[close + 1] != ' ') {
        return prom_fail(error, line_no, "expected ' ' after labels");
      }
      value = line.substr(close + 2);
    } else {
      if (space == std::string::npos) {
        return prom_fail(error, line_no, "expected 'name value'");
      }
      name = line.substr(0, space);
      value = line.substr(space + 1);
    }
    if (!prom_valid_name(name)) {
      return prom_fail(error, line_no, "bad metric name '" + name + "'");
    }
    // Optional OpenMetrics-style exemplar after the sample value:
    //   name{labels} value # {exemplar_labels} exemplar_value
    const std::size_t exm = value.find(" # ");
    if (exm != std::string::npos) {
      const std::string exemplar = value.substr(exm + 3);
      value = value.substr(0, exm);
      if (exemplar.empty() || exemplar[0] != '{') {
        return prom_fail(error, line_no, "exemplar must start with '{'");
      }
      const std::size_t close = exemplar.find('}');
      if (close == std::string::npos) {
        return prom_fail(error, line_no, "unterminated exemplar label set");
      }
      if (!parse_prom_labels(exemplar.substr(1, close - 1), nullptr, line_no,
                             error)) {
        return false;
      }
      if (close + 2 > exemplar.size() || exemplar[close + 1] != ' ' ||
          !prom_valid_value(exemplar.substr(close + 2))) {
        return prom_fail(error, line_no, "bad exemplar value");
      }
    }
    if (!prom_valid_value(value)) {
      return prom_fail(error, line_no, "bad sample value '" + value + "'");
    }
    // Label pairs: key="escaped value", comma separated.
    std::string le_value;
    if (!parse_prom_labels(labels, &le_value, line_no, error)) {
      return false;
    }
    // Histogram structure: cumulative buckets ending at le="+Inf".
    constexpr const char* kBucket = "_bucket";
    if (name.size() > 7 && name.compare(name.size() - 7, 7, kBucket) == 0 &&
        !le_value.empty()) {
      const std::string base = name.substr(0, name.size() - 7);
      const std::int64_t count = static_cast<std::int64_t>(
          std::strtod(value.c_str(), nullptr));
      auto it = last_bucket.find(base);
      if (it != last_bucket.end() && count < it->second) {
        return prom_fail(error, line_no,
                         "histogram '" + base + "' buckets not cumulative");
      }
      last_bucket[base] = count;
      if (le_value == "+Inf") inf_bucket[base] = count;
    } else if (name.size() > 6 &&
               name.compare(name.size() - 6, 6, "_count") == 0) {
      histogram_count[name.substr(0, name.size() - 6)] =
          static_cast<std::int64_t>(std::strtod(value.c_str(), nullptr));
    }
  }
  for (const auto& [base, count] : histogram_count) {
    if (last_bucket.count(base) == 0) continue;  // plain *_count counter
    auto inf = inf_bucket.find(base);
    if (inf == inf_bucket.end()) {
      return prom_fail(error, 0, "histogram '" + base +
                                     "' missing le=\"+Inf\" bucket");
    }
    if (inf->second != count) {
      return prom_fail(error, 0, "histogram '" + base +
                                     "' +Inf bucket != _count");
    }
  }
  return true;
}

void write_prometheus(const std::string& path,
                      const MetricsRegistry::Snapshot& snapshot) {
  std::ofstream os(path);
  MATSCI_CHECK(os.is_open(), "cannot open '" << path << "' for writing");
  os << prometheus_text(snapshot);
}

// --- BENCH_*.json snapshots --------------------------------------------------

std::vector<JsonRecord> snapshot_records(
    const MetricsRegistry::Snapshot& snapshot) {
  std::vector<JsonRecord> records;
  for (const auto& [name, value] : snapshot.counters) {
    records.push_back(
        JsonRecord().set("record", "counter").set("name", name).set("value",
                                                                    value));
  }
  for (const auto& [name, value] : snapshot.gauges) {
    records.push_back(
        JsonRecord().set("record", "gauge").set("name", name).set("value",
                                                                  value));
  }
  for (const auto& [name, hist] : snapshot.histograms) {
    JsonRecord rec;
    rec.set("record", "histogram")
        .set("name", name)
        .set("count", hist.count)
        .set("sum", hist.sum)
        .set("min", hist.min)
        .set("max", hist.max)
        .set("mean", hist.mean())
        .set("p50", hist.percentile(0.50))
        .set("p95", hist.percentile(0.95))
        .set("p99", hist.percentile(0.99));
    if (hist.exemplar_trace_id != 0) {
      rec.set("exemplar_trace_id", trace_id_hex(hist.exemplar_trace_id))
          .set("exemplar_value", hist.exemplar_value);
    }
    records.push_back(std::move(rec));
  }
  for (const auto& [name, points] : snapshot.series) {
    std::string arr = "[";
    for (std::size_t i = 0; i < points.size(); ++i) {
      if (i > 0) arr += ",";
      arr += "[" + std::to_string(points[i].first) + "," +
             json_number(points[i].second) + "]";
    }
    arr += "]";
    records.push_back(JsonRecord()
                          .set("record", "series")
                          .set("name", name)
                          .set_raw("points", arr));
  }
  return records;
}

BenchReporter::BenchReporter(std::string name, std::string out_dir)
    : name_(std::move(name)), out_dir_(std::move(out_dir)) {
  Tracer::global().clear();
  Tracer::global().set_enabled(true);
}

void BenchReporter::add(const JsonRecord& record) {
  std::string line = record.str();
  if (line.find("\"bench\"") == std::string::npos) {
    const std::string prefix = "{\"bench\":\"" + json_escape(name_) + "\"";
    line = line == "{}" ? prefix + "}" : prefix + "," + line.substr(1);
  }
  std::printf("%s\n", line.c_str());
  records_.push_back(std::move(line));
}

std::string BenchReporter::bench_json_path() const {
  return out_dir_ + "/BENCH_" + name_ + ".json";
}

std::string BenchReporter::trace_json_path() const {
  return out_dir_ + "/TRACE_" + name_ + ".json";
}

void BenchReporter::finish() {
  if (finished_) return;
  finished_ = true;

  // Surface ring wrap-around in the registry snapshot before draining
  // it: exporting partial traces silently was the original sin here.
  const std::int64_t dropped = Tracer::global().dropped();
  MetricsRegistry::global()
      .gauge("obs.trace.dropped_events")
      .set(static_cast<double>(dropped));

  {
    std::ofstream os(bench_json_path());
    MATSCI_CHECK(os.is_open(),
                 "cannot open '" << bench_json_path() << "' for writing");
    os << JsonRecord()
              .set("record", "meta")
              .set("bench", name_)
              .set("schema", "matsci.bench.v1")
              .set("emitted_unix_s",
                   static_cast<std::int64_t>(std::time(nullptr)))
              .str()
       << "\n";
    for (const std::string& line : records_) os << line << "\n";
    for (const JsonRecord& rec :
         snapshot_records(MetricsRegistry::global().snapshot())) {
      os << rec.str() << "\n";
    }
  }

  const std::vector<TraceEvent> events = Tracer::global().collect();
  write_chrome_trace(trace_json_path(), events, dropped);

  std::printf("obs: wrote %s (%zu records) and %s (%zu spans%s)\n",
              bench_json_path().c_str(), records_.size(),
              trace_json_path().c_str(), events.size(),
              Tracer::global().dropped() > 0 ? ", ring wrapped" : "");
}

BenchReporter::~BenchReporter() {
  try {
    finish();
  } catch (...) {
    // Destructor must not throw; finish() failures surface when called
    // explicitly.
  }
}

}  // namespace matsci::obs
