#include "obs/context.hpp"

#include <algorithm>
#include <atomic>
#include <cstdio>

namespace matsci::obs {

std::string trace_id_hex(std::uint64_t id) {
  char buf[17];
  std::snprintf(buf, sizeof buf, "%016llx",
                static_cast<unsigned long long>(id));
  return buf;
}

InflightSet& InflightSet::global() {
  // Leaked on purpose, same rationale as MetricsRegistry::global():
  // dispatch jobs may erase entries during static destruction.
  static InflightSet* set = new InflightSet();
  return *set;
}

#if defined(MATSCI_OBS_ENABLED)

namespace {

/// Unique non-zero 64-bit id: a relaxed counter pushed through the
/// splitmix64 finalizer so consecutive mints land far apart (ids double
/// as exemplar keys and hex strings, where visible structure misleads).
std::uint64_t next_id() {
  static std::atomic<std::uint64_t> counter{0};
  std::uint64_t x = counter.fetch_add(1, std::memory_order_relaxed) +
                    0x9e3779b97f4a7c15ull;
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ull;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebull;
  x ^= x >> 31;
  return x != 0 ? x : 1;
}

}  // namespace

TraceContext TraceContext::mint() {
  TraceContext ctx;
  ctx.trace = next_id();
  ctx.span = next_id();
  ctx.parent = 0;
  return ctx;
}

TraceContext TraceContext::child() const {
  TraceContext ctx;
  ctx.trace = trace;
  ctx.span = next_id();
  ctx.parent = span;
  return ctx;
}

void record_span(const char* name, std::uint64_t start_ns,
                 std::uint64_t dur_ns, const TraceContext& ctx) {
  record_span(name, start_ns, dur_ns, ctx, ctx.parent);
}

void record_span(const char* name, std::uint64_t start_ns,
                 std::uint64_t dur_ns, const TraceContext& ctx,
                 std::uint64_t parent_span_id) {
  Tracer& tracer = Tracer::global();
  if (!tracer.enabled()) return;
  tracer.record(name, start_ns, dur_ns, ctx.trace, ctx.span, parent_span_id);
}

void InflightSet::insert(const TraceContext& ctx) {
  if (!ctx.valid()) return;
  std::lock_guard<std::mutex> lock(mu_);
  if (entries_.size() >= kMaxTracked) return;  // best-effort bound
  entries_.push_back(ctx);
}

void InflightSet::erase(const TraceContext& ctx) {
  if (!ctx.valid()) return;
  std::lock_guard<std::mutex> lock(mu_);
  auto it = std::find_if(entries_.begin(), entries_.end(),
                         [&](const TraceContext& e) {
                           return e.span == ctx.span && e.trace == ctx.trace;
                         });
  if (it != entries_.end()) {
    *it = entries_.back();
    entries_.pop_back();
  }
}

std::vector<TraceContext> InflightSet::snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_;
}

std::size_t InflightSet::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.size();
}

#endif  // MATSCI_OBS_ENABLED

}  // namespace matsci::obs
