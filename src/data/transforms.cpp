#include "data/transforms.hpp"

#include <cmath>

#include "core/macros.hpp"
#include "sym/symop.hpp"

namespace matsci::data {

CoordinateJitter::CoordinateJitter(double sigma) : sigma_(sigma) {
  MATSCI_CHECK(sigma >= 0.0, "jitter sigma must be non-negative");
}

void CoordinateJitter::apply(StructureSample& sample,
                             core::RngEngine& rng) const {
  for (core::Vec3& p : sample.positions) {
    p += core::Vec3{rng.normal(0.0, sigma_), rng.normal(0.0, sigma_),
                    rng.normal(0.0, sigma_)};
  }
}

void RandomRotation::apply(StructureSample& sample,
                           core::RngEngine& rng) const {
  if (sample.lattice.has_value()) return;  // would break the cell frame
  core::Vec3 axis;
  double n = 0.0;
  do {
    axis = {rng.normal(), rng.normal(), rng.normal()};
    n = core::norm(axis);
  } while (n < 1e-9);
  const core::Mat3 rot =
      sym::rotation(axis * (1.0 / n), rng.uniform(0.0, 2.0 * M_PI));
  for (core::Vec3& p : sample.positions) {
    p = core::matvec(rot, p);
  }
}

void CenterPositions::apply(StructureSample& sample,
                            core::RngEngine& /*rng*/) const {
  if (sample.lattice.has_value() || sample.positions.empty()) return;
  core::Vec3 c{};
  for (const core::Vec3& p : sample.positions) c += p;
  c = c * (1.0 / static_cast<double>(sample.positions.size()));
  for (core::Vec3& p : sample.positions) p -= c;
}

SupercellTransform::SupercellTransform(std::int64_t nx, std::int64_t ny,
                                       std::int64_t nz)
    : nx_(nx), ny_(ny), nz_(nz) {
  MATSCI_CHECK(nx >= 1 && ny >= 1 && nz >= 1,
               "supercell multipliers must be >= 1");
}

void SupercellTransform::apply(StructureSample& sample,
                               core::RngEngine& /*rng*/) const {
  if (!sample.lattice.has_value() || (nx_ == 1 && ny_ == 1 && nz_ == 1)) {
    return;
  }
  const core::Mat3& cell = *sample.lattice;
  const std::size_t base_atoms = sample.positions.size();
  std::vector<core::Vec3> positions;
  std::vector<std::int64_t> species;
  std::vector<core::Vec3> forces;
  positions.reserve(base_atoms * static_cast<std::size_t>(nx_ * ny_ * nz_));
  for (std::int64_t ix = 0; ix < nx_; ++ix) {
    for (std::int64_t iy = 0; iy < ny_; ++iy) {
      for (std::int64_t iz = 0; iz < nz_; ++iz) {
        const core::Vec3 shift = cell[0] * static_cast<double>(ix) +
                                 cell[1] * static_cast<double>(iy) +
                                 cell[2] * static_cast<double>(iz);
        for (std::size_t a = 0; a < base_atoms; ++a) {
          positions.push_back(sample.positions[a] + shift);
          species.push_back(sample.species[a]);
          if (!sample.forces.empty()) {
            forces.push_back(sample.forces[a]);
          }
        }
      }
    }
  }
  sample.positions = std::move(positions);
  sample.species = std::move(species);
  sample.forces = std::move(forces);
  core::Mat3 expanded = cell;
  expanded[0] = cell[0] * static_cast<double>(nx_);
  expanded[1] = cell[1] * static_cast<double>(ny_);
  expanded[2] = cell[2] * static_cast<double>(nz_);
  sample.lattice = expanded;
}

NormalizeTarget::NormalizeTarget(std::string key, float mean, float stddev)
    : key_(std::move(key)), mean_(mean), std_(stddev) {
  MATSCI_CHECK(stddev > 0.0f, "NormalizeTarget: stddev must be positive");
}

void NormalizeTarget::apply(StructureSample& sample,
                            core::RngEngine& /*rng*/) const {
  auto it = sample.scalar_targets.find(key_);
  if (it != sample.scalar_targets.end()) {
    it->second = (it->second - mean_) / std_;
  }
}

void TransformChain::apply(StructureSample& sample,
                           core::RngEngine& rng) const {
  for (const auto& t : transforms_) {
    t->apply(sample, rng);
  }
}

TargetStats compute_target_stats(const StructureDataset& ds,
                                 const std::string& key,
                                 std::int64_t max_samples) {
  const std::int64_t n = std::min(ds.size(), max_samples);
  MATSCI_CHECK(n > 0, "compute_target_stats on empty dataset");
  double sum = 0.0, sum_sq = 0.0;
  for (std::int64_t i = 0; i < n; ++i) {
    const StructureSample s = ds.get(i);
    auto it = s.scalar_targets.find(key);
    MATSCI_CHECK(it != s.scalar_targets.end(),
                 "dataset " << ds.name() << " has no target '" << key << "'");
    sum += it->second;
    sum_sq += static_cast<double>(it->second) * it->second;
  }
  TargetStats stats;
  stats.mean = static_cast<float>(sum / static_cast<double>(n));
  const double var =
      sum_sq / static_cast<double>(n) - static_cast<double>(stats.mean) * stats.mean;
  stats.stddev = static_cast<float>(std::sqrt(std::max(var, 1e-8)));
  return stats;
}

}  // namespace matsci::data
