#include "data/dataloader.hpp"

#include <algorithm>

#include "core/macros.hpp"

namespace matsci::data {

SubsetDataset::SubsetDataset(const StructureDataset& parent,
                             std::vector<std::int64_t> indices)
    : parent_(&parent), indices_(std::move(indices)) {
  for (const std::int64_t i : indices_) {
    MATSCI_CHECK(i >= 0 && i < parent.size(),
                 "subset index " << i << " out of range for parent of size "
                                 << parent.size());
  }
}

StructureSample SubsetDataset::get(std::int64_t index) const {
  MATSCI_CHECK(index >= 0 && index < size(),
               "subset index " << index << " out of range");
  return parent_->get(indices_[static_cast<std::size_t>(index)]);
}

std::pair<SubsetDataset, SubsetDataset> train_val_split(
    const StructureDataset& ds, double val_fraction, std::uint64_t seed) {
  MATSCI_CHECK(val_fraction > 0.0 && val_fraction < 1.0,
               "val_fraction must be in (0, 1), got " << val_fraction);
  const std::int64_t n = ds.size();
  MATSCI_CHECK(n >= 2, "cannot split a dataset with " << n << " samples");
  std::vector<std::int64_t> idx(static_cast<std::size_t>(n));
  for (std::int64_t i = 0; i < n; ++i) idx[static_cast<std::size_t>(i)] = i;
  core::RngEngine rng(seed ^ 0x5B117ull);
  rng.shuffle(idx);
  std::int64_t n_val = std::max<std::int64_t>(
      1, static_cast<std::int64_t>(static_cast<double>(n) * val_fraction));
  n_val = std::min(n_val, n - 1);
  std::vector<std::int64_t> val_idx(idx.begin(), idx.begin() + n_val);
  std::vector<std::int64_t> train_idx(idx.begin() + n_val, idx.end());
  return {SubsetDataset(ds, std::move(train_idx)),
          SubsetDataset(ds, std::move(val_idx))};
}

DataLoader::DataLoader(const StructureDataset& dataset, DataLoaderOptions opts)
    : dataset_(&dataset), opts_(std::move(opts)) {
  MATSCI_CHECK(opts_.batch_size >= 1, "batch_size must be >= 1");
  MATSCI_CHECK(opts_.world_size >= 1 && opts_.rank >= 0 &&
                   opts_.rank < opts_.world_size,
               "bad rank/world_size: " << opts_.rank << "/"
                                       << opts_.world_size);
  rebuild_order();
}

void DataLoader::set_epoch(std::int64_t epoch) {
  epoch_ = epoch;
  rebuild_order();
}

void DataLoader::rebuild_order() {
  const std::int64_t n = dataset_->size();
  std::vector<std::int64_t> global(static_cast<std::size_t>(n));
  for (std::int64_t i = 0; i < n; ++i) {
    global[static_cast<std::size_t>(i)] = i;
  }
  if (opts_.shuffle) {
    core::RngEngine rng =
        core::RngEngine(opts_.seed).fork(static_cast<std::uint64_t>(epoch_));
    rng.shuffle(global);
  }
  // Strided sharding on the common shuffled order.
  order_.clear();
  for (std::int64_t i = opts_.rank; i < n; i += opts_.world_size) {
    order_.push_back(global[static_cast<std::size_t>(i)]);
  }
}

std::int64_t DataLoader::samples_per_shard() const {
  return static_cast<std::int64_t>(order_.size());
}

std::int64_t DataLoader::num_batches() const {
  const std::int64_t n = samples_per_shard();
  if (opts_.drop_last) return n / opts_.batch_size;
  return (n + opts_.batch_size - 1) / opts_.batch_size;
}

Batch DataLoader::batch(std::int64_t i) const {
  MATSCI_CHECK(i >= 0 && i < num_batches(),
               "batch index " << i << " out of range [0, " << num_batches()
                              << ")");
  const std::int64_t start = i * opts_.batch_size;
  const std::int64_t end = std::min<std::int64_t>(
      start + opts_.batch_size, samples_per_shard());
  std::vector<StructureSample> samples;
  samples.reserve(static_cast<std::size_t>(end - start));
  for (std::int64_t k = start; k < end; ++k) {
    const std::int64_t ds_index = order_[static_cast<std::size_t>(k)];
    StructureSample s = dataset_->get(ds_index);
    if (opts_.transforms) {
      // Transform randomness keyed by (seed, epoch, sample) so any rank
      // computing the same sample applies the same augmentation.
      core::RngEngine rng =
          core::RngEngine(opts_.seed ^ 0x7A4Full)
              .fork(static_cast<std::uint64_t>(epoch_) * 0x10001ull +
                    static_cast<std::uint64_t>(ds_index));
      opts_.transforms->apply(s, rng);
    }
    samples.push_back(std::move(s));
  }
  return collate(samples, opts_.collate);
}

}  // namespace matsci::data
