#pragma once

#include <map>
#include <string>
#include <vector>

#include "core/tensor.hpp"
#include "graph/graph.hpp"

namespace matsci::data {

/// A collated minibatch ready for the encoder: batched topology, node
/// species/coordinates, and per-graph targets. One Batch always comes
/// from a single dataset (`dataset_id`), which is how the multi-task
/// module routes it to the right output heads.
struct Batch {
  graph::BatchedGraph topology;
  std::vector<std::int64_t> species;  ///< [num_nodes] atomic numbers
  core::Tensor coords;                ///< [num_nodes, 3] fp32 cartesian
  std::map<std::string, core::Tensor> scalar_targets;        ///< [G, 1]
  std::map<std::string, std::vector<std::int64_t>> class_targets;  ///< [G]
  /// Per-atom force labels [num_nodes, 3]; undefined when the samples
  /// carry no forces.
  core::Tensor forces;
  std::int64_t dataset_id = 0;

  std::int64_t num_graphs() const { return topology.num_graphs; }
  std::int64_t num_nodes() const { return topology.num_nodes; }
};

}  // namespace matsci::data
