#pragma once

#include <memory>

#include "core/macros.hpp"
#include "data/sample.hpp"

namespace matsci::data {

/// Wraps a dataset so every emitted sample carries a chosen dataset id —
/// the routing key used by MultiTaskModule and collate. Owns the inner
/// dataset via shared_ptr so composition sites need no lifetime care.
class TaggedDataset : public StructureDataset {
 public:
  TaggedDataset(std::shared_ptr<const StructureDataset> inner,
                std::int64_t dataset_id)
      : inner_(std::move(inner)), id_(dataset_id) {
    MATSCI_CHECK(inner_ != nullptr, "TaggedDataset: null inner dataset");
  }

  std::int64_t size() const override { return inner_->size(); }
  StructureSample get(std::int64_t index) const override {
    StructureSample s = inner_->get(index);
    s.dataset_id = id_;
    return s;
  }
  std::string name() const override { return inner_->name(); }
  std::int64_t dataset_id() const { return id_; }

 private:
  std::shared_ptr<const StructureDataset> inner_;
  std::int64_t id_;
};

}  // namespace matsci::data
