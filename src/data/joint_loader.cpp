#include "data/joint_loader.hpp"

#include "core/macros.hpp"

namespace matsci::data {

JointDataLoader::JointDataLoader(std::vector<DataLoader*> loaders,
                                 SchedulePolicy policy, std::uint64_t seed)
    : loaders_(std::move(loaders)), policy_(policy), seed_(seed) {
  MATSCI_CHECK(!loaders_.empty(), "JointDataLoader needs >= 1 loader");
  for (const DataLoader* l : loaders_) {
    MATSCI_CHECK(l != nullptr, "JointDataLoader: null loader");
  }
  rebuild_schedule();
}

void JointDataLoader::set_epoch(std::int64_t epoch) {
  epoch_ = epoch;
  for (DataLoader* l : loaders_) {
    l->set_epoch(epoch);
  }
  rebuild_schedule();
}

void JointDataLoader::rebuild_schedule() {
  schedule_.clear();
  switch (policy_) {
    case SchedulePolicy::kRoundRobin: {
      std::int64_t max_batches = 0;
      for (const DataLoader* l : loaders_) {
        max_batches = std::max(max_batches, l->num_batches());
      }
      for (std::int64_t b = 0; b < max_batches; ++b) {
        for (std::size_t li = 0; li < loaders_.size(); ++li) {
          if (b < loaders_[li]->num_batches()) {
            schedule_.emplace_back(static_cast<std::int64_t>(li), b);
          }
        }
      }
      break;
    }
    case SchedulePolicy::kProportionalShuffle: {
      for (std::size_t li = 0; li < loaders_.size(); ++li) {
        for (std::int64_t b = 0; b < loaders_[li]->num_batches(); ++b) {
          schedule_.emplace_back(static_cast<std::int64_t>(li), b);
        }
      }
      // Deterministic shuffle keyed by (seed, epoch).
      core::RngEngine rng =
          core::RngEngine(seed_ ^ 0x101A7ull)
              .fork(static_cast<std::uint64_t>(epoch_));
      for (std::int64_t i =
               static_cast<std::int64_t>(schedule_.size()) - 1;
           i > 0; --i) {
        const std::int64_t j = rng.next_int(i + 1);
        std::swap(schedule_[static_cast<std::size_t>(i)],
                  schedule_[static_cast<std::size_t>(j)]);
      }
      break;
    }
  }
}

Batch JointDataLoader::batch(std::int64_t i) const {
  MATSCI_CHECK(i >= 0 && i < num_batches(),
               "joint batch index " << i << " out of range [0, "
                                    << num_batches() << ")");
  const auto& [li, b] = schedule_[static_cast<std::size_t>(i)];
  return loaders_[static_cast<std::size_t>(li)]->batch(b);
}

std::int64_t JointDataLoader::loader_index(std::int64_t i) const {
  MATSCI_CHECK(i >= 0 && i < num_batches(), "index out of range");
  return schedule_[static_cast<std::size_t>(i)].first;
}

}  // namespace matsci::data
