#pragma once

#include <vector>

#include "data/batch.hpp"
#include "data/sample.hpp"
#include "graph/radius_graph.hpp"

namespace matsci::data {

/// How structures are converted to message-passing topology — the
/// "transformation between representations" axis of the paper's Fig. 1.
enum class Representation {
  kRadiusGraph,  ///< edges within a cutoff (PBC-aware when lattice set)
  kPointCloud,   ///< fully connected: no imposed structure
};

struct CollateOptions {
  Representation representation = Representation::kRadiusGraph;
  graph::RadiusGraphOptions radius;
};

/// Build the topology for one sample under the chosen representation.
graph::Graph sample_topology(const StructureSample& sample,
                             const CollateOptions& opts);

/// Collate samples into one Batch. All samples must come from the same
/// dataset (same dataset_id) and carry identical target key sets; scalar
/// targets become [G, 1] tensors, class targets become label vectors.
Batch collate(const std::vector<StructureSample>& samples,
              const CollateOptions& opts);

}  // namespace matsci::data
