#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "core/vec3.hpp"

namespace matsci::data {

/// The universal exchange format between datasets, transforms, and
/// collation: one material structure (or synthetic point cloud) with its
/// learning targets. Mirrors Fig. 1 of the paper — every dataset emits
/// these, every transform maps sample -> sample, and collate turns a
/// vector of them into a model-ready Batch.
struct StructureSample {
  /// Atomic numbers (or 0 for synthetic, species-less particles).
  std::vector<std::int64_t> species;
  /// Cartesian coordinates, Å.
  std::vector<core::Vec3> positions;
  /// Periodic cell (rows = lattice vectors); nullopt for molecules /
  /// point clouds.
  std::optional<core::Mat3> lattice;
  /// Regression targets by name, e.g. "band_gap", "efermi",
  /// "formation_energy".
  std::map<std::string, float> scalar_targets;
  /// Classification targets by name, e.g. "stability", "point_group".
  std::map<std::string, std::int64_t> class_targets;
  /// Per-atom force labels (eV/Å), one per position when present —
  /// trajectory datasets (LiPS) carry these for force-error evaluation.
  std::vector<core::Vec3> forces;
  /// Which dataset produced this sample (index into a DatasetRegistry).
  std::int64_t dataset_id = 0;

  std::int64_t num_atoms() const {
    return static_cast<std::int64_t>(positions.size());
  }
};

/// Abstract map-style dataset. Samples are generated (or loaded) lazily
/// by index; generated datasets must be deterministic in (seed, index) so
/// DDP shards and re-runs agree.
class StructureDataset {
 public:
  virtual ~StructureDataset() = default;
  virtual std::int64_t size() const = 0;
  virtual StructureSample get(std::int64_t index) const = 0;
  virtual std::string name() const = 0;
};

}  // namespace matsci::data
