#pragma once

#include <vector>

#include "data/dataloader.hpp"

namespace matsci::data {

/// How a JointDataLoader interleaves its member loaders per epoch.
enum class SchedulePolicy {
  /// Cycle through loaders in order, skipping exhausted ones — every
  /// dataset appears at a steady cadence (the paper's multi-dataset
  /// joint-training pattern, where the encoder must not see long
  /// single-dataset stretches).
  kRoundRobin,
  /// Shuffle all (loader, batch) pairs uniformly: datasets appear in
  /// proportion to their batch counts.
  kProportionalShuffle,
};

/// Composes several DataLoaders (typically one per dataset, each with a
/// distinct dataset_id via TaggedDataset) into a single epoch-level batch
/// stream for multi-task multi-dataset training. Deterministic in
/// (seed, epoch). Non-owning: the member loaders must outlive it.
class JointDataLoader {
 public:
  JointDataLoader(std::vector<DataLoader*> loaders, SchedulePolicy policy,
                  std::uint64_t seed = 0);

  /// Forwards to every member loader and rebuilds the schedule.
  void set_epoch(std::int64_t epoch);

  std::int64_t num_batches() const {
    return static_cast<std::int64_t>(schedule_.size());
  }

  /// The i-th batch of this epoch's interleaved schedule.
  Batch batch(std::int64_t i) const;

  /// Which member loader serves the i-th slot (for tests/diagnostics).
  std::int64_t loader_index(std::int64_t i) const;

 private:
  void rebuild_schedule();

  std::vector<DataLoader*> loaders_;
  SchedulePolicy policy_;
  std::uint64_t seed_;
  std::int64_t epoch_ = 0;
  std::vector<std::pair<std::int64_t, std::int64_t>> schedule_;
};

}  // namespace matsci::data
