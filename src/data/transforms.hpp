#pragma once

#include <memory>
#include <vector>

#include "core/random.hpp"
#include "data/sample.hpp"

namespace matsci::data {

/// Sample-to-sample transformation — the middle stage of the paper's
/// Fig. 1 pipeline ("a chain of transformations can be applied to freely
/// convert between representations and/or modified to introduce inductive
/// biases"). Transforms are applied by the DataLoader after the dataset
/// produces a sample and before collation. They must be deterministic in
/// (sample index, epoch) — stochastic transforms receive a forked RNG.
class Transform {
 public:
  virtual ~Transform() = default;
  virtual void apply(StructureSample& sample, core::RngEngine& rng) const = 0;
  virtual std::string name() const = 0;
};

/// Gaussian positional noise (data augmentation / denoising bias).
class CoordinateJitter : public Transform {
 public:
  explicit CoordinateJitter(double sigma);
  void apply(StructureSample& sample, core::RngEngine& rng) const override;
  std::string name() const override { return "CoordinateJitter"; }

 private:
  double sigma_;
};

/// Random global rotation (only valid for non-periodic samples; periodic
/// samples are left untouched since rotating breaks the lattice frame).
class RandomRotation : public Transform {
 public:
  void apply(StructureSample& sample, core::RngEngine& rng) const override;
  std::string name() const override { return "RandomRotation"; }
};

/// Shift the centroid to the origin (translation-invariance aid for
/// point clouds; periodic samples are left untouched).
class CenterPositions : public Transform {
 public:
  void apply(StructureSample& sample, core::RngEngine& rng) const override;
  std::string name() const override { return "CenterPositions"; }
};

/// Replicate a periodic sample into an (nx, ny, nz) supercell — the
/// "unit cell manipulation" slot of the paper's Fig. 1 transform chain.
/// Per-structure scalar targets are intensive (band gap, E_form/atom)
/// and carried over unchanged; force labels are tiled with the atoms.
/// Non-periodic samples pass through untouched.
class SupercellTransform : public Transform {
 public:
  SupercellTransform(std::int64_t nx, std::int64_t ny, std::int64_t nz);
  void apply(StructureSample& sample, core::RngEngine& rng) const override;
  std::string name() const override { return "SupercellTransform"; }

 private:
  std::int64_t nx_, ny_, nz_;
};

/// Affine-normalize one scalar target: y' = (y - mean) / std.
class NormalizeTarget : public Transform {
 public:
  NormalizeTarget(std::string key, float mean, float stddev);
  void apply(StructureSample& sample, core::RngEngine& rng) const override;
  std::string name() const override { return "NormalizeTarget"; }

  float mean() const { return mean_; }
  float stddev() const { return std_; }
  /// Map a normalized prediction back to physical units.
  float denormalize(float value) const { return value * std_ + mean_; }

 private:
  std::string key_;
  float mean_;
  float std_;
};

/// Ordered list of transforms applied in sequence.
class TransformChain {
 public:
  TransformChain() = default;
  explicit TransformChain(std::vector<std::shared_ptr<const Transform>> ts)
      : transforms_(std::move(ts)) {}

  void add(std::shared_ptr<const Transform> t) {
    transforms_.push_back(std::move(t));
  }
  void apply(StructureSample& sample, core::RngEngine& rng) const;
  std::size_t size() const { return transforms_.size(); }

 private:
  std::vector<std::shared_ptr<const Transform>> transforms_;
};

struct TargetStats {
  float mean = 0.0f;
  float stddev = 1.0f;
};

/// Estimate mean/std of a scalar target over (up to) `max_samples`
/// samples of a dataset — used to build NormalizeTarget transforms.
TargetStats compute_target_stats(const StructureDataset& ds,
                                 const std::string& key,
                                 std::int64_t max_samples = 512);

}  // namespace matsci::data
