#include "data/collate.hpp"

#include "core/macros.hpp"
#include "core/parallel/parallel_for.hpp"

namespace matsci::data {

graph::Graph sample_topology(const StructureSample& sample,
                             const CollateOptions& opts) {
  switch (opts.representation) {
    case Representation::kRadiusGraph: {
      std::optional<core::Mat3> lattice = sample.lattice;
      return graph::build_radius_graph(sample.positions, opts.radius,
                                       lattice);
    }
    case Representation::kPointCloud:
      return graph::build_complete_graph(sample.num_atoms());
  }
  MATSCI_CHECK(false, "unknown representation");
  return {};  // unreachable
}

Batch collate(const std::vector<StructureSample>& samples,
              const CollateOptions& opts) {
  MATSCI_CHECK(!samples.empty(), "collate: empty sample list");

  Batch batch;
  batch.dataset_id = samples.front().dataset_id;

  // Per-sample topology construction is the expensive part of
  // collation (an O(n²) neighbor search each); samples are independent
  // so they build in parallel on the shared pool, one slot per sample.
  // Inside a serve batch job this runs inline (nesting guard). The
  // graphs land in per-sample slots and everything order-dependent
  // below stays serial, so batches are bit-identical at any
  // thread count.
  std::vector<graph::Graph> graphs(samples.size());
  core::parallel::parallel_for(
      0, static_cast<std::int64_t>(samples.size()), 1,
      [&](std::int64_t b, std::int64_t e) {
        for (std::int64_t i = b; i < e; ++i) {
          const StructureSample& s = samples[static_cast<std::size_t>(i)];
          MATSCI_CHECK(s.dataset_id == batch.dataset_id,
                       "collate: mixed dataset ids in one batch ("
                           << s.dataset_id << " vs " << batch.dataset_id
                           << ")");
          MATSCI_CHECK(s.num_atoms() > 0, "collate: sample with no atoms");
          graphs[static_cast<std::size_t>(i)] = sample_topology(s, opts);
        }
      });

  std::int64_t total_atoms = 0;
  for (const StructureSample& s : samples) total_atoms += s.num_atoms();

  // Write coordinates straight into pooled tensor storage — no staging
  // vector, and repeated same-size batches reuse the same pool buffer.
  batch.topology = graph::batch_graphs(graphs);
  batch.coords = core::Tensor::empty({total_atoms, 3});
  {
    float* pc = batch.coords.data();
    std::size_t w = 0;
    for (const StructureSample& s : samples) {
      for (const core::Vec3& p : s.positions) {
        pc[w++] = static_cast<float>(p.x);
        pc[w++] = static_cast<float>(p.y);
        pc[w++] = static_cast<float>(p.z);
      }
      batch.species.insert(batch.species.end(), s.species.begin(),
                           s.species.end());
    }
  }

  // Forces: all-or-nothing across the batch.
  const bool has_forces = !samples.front().forces.empty();
  if (has_forces) {
    batch.forces = core::Tensor::empty({batch.topology.num_nodes, 3});
    float* pf = batch.forces.data();
    std::size_t w = 0;
    for (const StructureSample& s : samples) {
      MATSCI_CHECK(static_cast<std::int64_t>(s.forces.size()) ==
                       s.num_atoms(),
                   "collate: sample forces/atoms mismatch");
      for (const core::Vec3& f : s.forces) {
        pf[w++] = static_cast<float>(f.x);
        pf[w++] = static_cast<float>(f.y);
        pf[w++] = static_cast<float>(f.z);
      }
    }
  } else {
    for (const StructureSample& s : samples) {
      MATSCI_CHECK(s.forces.empty(),
                   "collate: mixed force-labeled and unlabeled samples");
    }
  }

  // Targets: every sample must provide the same keys as the first.
  const auto& first = samples.front();
  for (const auto& [key, _] : first.scalar_targets) {
    std::vector<float> values;
    values.reserve(samples.size());
    for (const StructureSample& s : samples) {
      auto it = s.scalar_targets.find(key);
      MATSCI_CHECK(it != s.scalar_targets.end(),
                   "collate: sample missing scalar target '" << key << "'");
      values.push_back(it->second);
    }
    batch.scalar_targets[key] = core::Tensor::from_vector(
        std::move(values), {static_cast<std::int64_t>(samples.size()), 1});
  }
  for (const auto& [key, _] : first.class_targets) {
    std::vector<std::int64_t> values;
    values.reserve(samples.size());
    for (const StructureSample& s : samples) {
      auto it = s.class_targets.find(key);
      MATSCI_CHECK(it != s.class_targets.end(),
                   "collate: sample missing class target '" << key << "'");
      values.push_back(it->second);
    }
    batch.class_targets[key] = std::move(values);
  }
  return batch;
}

}  // namespace matsci::data
