#pragma once

#include <memory>

#include "data/collate.hpp"
#include "data/transforms.hpp"

namespace matsci::data {

/// View over a subset of a dataset's indices (non-owning: the parent must
/// outlive the subset). Used for train/val splits.
class SubsetDataset : public StructureDataset {
 public:
  SubsetDataset(const StructureDataset& parent,
                std::vector<std::int64_t> indices);

  std::int64_t size() const override {
    return static_cast<std::int64_t>(indices_.size());
  }
  StructureSample get(std::int64_t index) const override;
  std::string name() const override { return parent_->name() + "/subset"; }

 private:
  const StructureDataset* parent_;
  std::vector<std::int64_t> indices_;
};

/// Deterministic shuffled train/val split of [0, ds.size()).
std::pair<SubsetDataset, SubsetDataset> train_val_split(
    const StructureDataset& ds, double val_fraction, std::uint64_t seed);

struct DataLoaderOptions {
  std::int64_t batch_size = 32;
  bool shuffle = true;
  std::uint64_t seed = 0;
  /// DDP sharding: this loader yields the rank-th of world_size shards,
  /// every rank seeing the same shuffled order (so shards are disjoint
  /// and exhaustive, mirroring torch's DistributedSampler).
  std::int64_t rank = 0;
  std::int64_t world_size = 1;
  bool drop_last = false;
  CollateOptions collate;
  std::shared_ptr<const TransformChain> transforms;  ///< optional
};

/// Map-style loader: shuffles per epoch (deterministically in
/// (seed, epoch)), shards across DDP ranks, applies transforms, collates.
class DataLoader {
 public:
  DataLoader(const StructureDataset& dataset, DataLoaderOptions opts);

  /// Re-shuffle for a new epoch (no-op when shuffle = false).
  void set_epoch(std::int64_t epoch);

  std::int64_t num_batches() const;
  std::int64_t samples_per_shard() const;

  /// Materialize the i-th batch of the current epoch.
  Batch batch(std::int64_t i) const;

  const DataLoaderOptions& options() const { return opts_; }
  const StructureDataset& dataset() const { return *dataset_; }

 private:
  const StructureDataset* dataset_;
  DataLoaderOptions opts_;
  std::int64_t epoch_ = 0;
  std::vector<std::int64_t> order_;  ///< this shard's sample indices
  void rebuild_order();
};

}  // namespace matsci::data
