#pragma once

#include "data/transforms.hpp"
#include "models/output_head.hpp"
#include "tasks/task.hpp"

namespace matsci::tasks {

enum class RegressionLoss { kMSE, kL1, kHuber };

/// Single-target scalar regression (e.g. Materials Project band gap,
/// Fig. 5). The target is z-normalized with `stats` before the loss;
/// the reported "mae" metric is denormalized back to physical units so
/// it is comparable to the paper's eV numbers.
class ScalarRegressionTask : public Task {
 public:
  ScalarRegressionTask(std::shared_ptr<models::Encoder> encoder,
                       std::string target_key,
                       models::OutputHeadConfig head_cfg,
                       core::RngEngine& rng,
                       data::TargetStats stats = {},
                       RegressionLoss loss = RegressionLoss::kMSE);

  TaskOutput step(const data::Batch& batch) const override;
  std::shared_ptr<models::Encoder> encoder() const override {
    return encoder_;
  }

  /// Denormalized predictions for a batch (inference helper).
  core::Tensor predict(const data::Batch& batch) const;

  /// Serving hook: `target_key` must be this task's target; `value` is
  /// the denormalized prediction, `scores` the normalized head output.
  std::vector<Prediction> predict_batch(
      const data::Batch& batch, const std::string& target_key) const override;

  const std::string& target_key() const { return target_key_; }
  const data::TargetStats& stats() const { return stats_; }

 private:
  std::shared_ptr<models::Encoder> encoder_;
  std::string target_key_;
  std::shared_ptr<models::OutputHead> head_;
  data::TargetStats stats_;
  RegressionLoss loss_;
};

}  // namespace matsci::tasks
