#pragma once

#include <map>
#include <memory>
#include <string>

#include "data/batch.hpp"
#include "models/encoder.hpp"

namespace matsci::tasks {

/// Result of one task step: the differentiable loss plus scalar metrics
/// (already detached) for logging. `count` is the number of graphs the
/// metrics average over, so epoch aggregation can weight correctly.
struct TaskOutput {
  core::Tensor loss;  ///< scalar, connected to the autograd tape
  std::map<std::string, double> metrics;
  std::int64_t count = 0;
};

/// One per-graph inference answer, the unit the serving subsystem fans
/// back out to clients. Regression predictions carry the denormalized
/// physical value; classification predictions carry the argmax label and
/// the raw head outputs.
struct Prediction {
  float value = 0.0f;        ///< scalar prediction / winning-class score
  std::int64_t label = -1;   ///< argmax class; -1 for regression
  std::vector<float> scores; ///< raw head outputs (logits, norm. scalar)
};

/// A learning objective bound to an encoder (paper §3.2): the encoder
/// ingests a graph/point-cloud batch and emits embeddings; one or more
/// output heads map embeddings to targets. Tasks are nn::Modules so the
/// optimizer sees encoder + head parameters through one tree.
class Task : public nn::Module {
 public:
  /// Forward + loss on one batch. Training/eval behaviour (dropout)
  /// follows the module train/eval mode.
  virtual TaskOutput step(const data::Batch& batch) const = 0;

  /// The shared encoder (used for checkpoint surgery in fine-tuning).
  virtual std::shared_ptr<models::Encoder> encoder() const = 0;

  /// Forward-only predictions for `target_key`, one per graph in the
  /// batch — the head-selection hook the serving subsystem routes
  /// requests through. Runs under NoGradGuard (no tape is built) and is
  /// safe to call concurrently from multiple threads as long as nobody
  /// mutates parameters at the same time. The base implementation
  /// rejects unknown targets; tasks override it for the targets they own.
  virtual std::vector<Prediction> predict_batch(
      const data::Batch& batch, const std::string& target_key) const;
};

/// Accumulates TaskOutputs into per-metric weighted means.
class MetricAccumulator {
 public:
  void add(const TaskOutput& out);
  /// Weighted mean of a metric (throws if never observed).
  double mean(const std::string& key) const;
  bool has(const std::string& key) const;
  std::map<std::string, double> means() const;
  void reset();

 private:
  std::map<std::string, std::pair<double, double>> sums_;  // sum, weight
};

}  // namespace matsci::tasks
