#include "tasks/metrics.hpp"

#include <cmath>

#include "core/macros.hpp"

namespace matsci::tasks {

namespace {
void check_lengths(std::size_t a, std::size_t b, const char* name) {
  MATSCI_CHECK(a == b, name << ": length mismatch " << a << " vs " << b);
  MATSCI_CHECK(a > 0, name << ": empty input");
}
}  // namespace

double mean_absolute_error(std::span<const float> pred,
                           std::span<const float> target) {
  check_lengths(pred.size(), target.size(), "mean_absolute_error");
  double acc = 0.0;
  for (std::size_t i = 0; i < pred.size(); ++i) {
    acc += std::fabs(static_cast<double>(pred[i]) - target[i]);
  }
  return acc / static_cast<double>(pred.size());
}

double root_mean_squared_error(std::span<const float> pred,
                               std::span<const float> target) {
  check_lengths(pred.size(), target.size(), "root_mean_squared_error");
  double acc = 0.0;
  for (std::size_t i = 0; i < pred.size(); ++i) {
    const double d = static_cast<double>(pred[i]) - target[i];
    acc += d * d;
  }
  return std::sqrt(acc / static_cast<double>(pred.size()));
}

double r2_score(std::span<const float> pred, std::span<const float> target) {
  check_lengths(pred.size(), target.size(), "r2_score");
  double mean = 0.0;
  for (const float t : target) mean += t;
  mean /= static_cast<double>(target.size());
  double ss_res = 0.0, ss_tot = 0.0;
  for (std::size_t i = 0; i < pred.size(); ++i) {
    const double r = static_cast<double>(target[i]) - pred[i];
    const double d = static_cast<double>(target[i]) - mean;
    ss_res += r * r;
    ss_tot += d * d;
  }
  MATSCI_CHECK(ss_tot > 1e-12, "r2_score: constant target");
  return 1.0 - ss_res / ss_tot;
}

double pearson_correlation(std::span<const float> pred,
                           std::span<const float> target) {
  check_lengths(pred.size(), target.size(), "pearson_correlation");
  const double n = static_cast<double>(pred.size());
  double mp = 0.0, mt = 0.0;
  for (std::size_t i = 0; i < pred.size(); ++i) {
    mp += pred[i];
    mt += target[i];
  }
  mp /= n;
  mt /= n;
  double cov = 0.0, vp = 0.0, vt = 0.0;
  for (std::size_t i = 0; i < pred.size(); ++i) {
    const double dp = pred[i] - mp;
    const double dt = target[i] - mt;
    cov += dp * dt;
    vp += dp * dp;
    vt += dt * dt;
  }
  MATSCI_CHECK(vp > 1e-12 && vt > 1e-12,
               "pearson_correlation: constant input");
  return cov / std::sqrt(vp * vt);
}

double ConfusionCounts::accuracy() const {
  MATSCI_CHECK(total() > 0, "confusion counts are empty");
  return static_cast<double>(true_positive + true_negative) /
         static_cast<double>(total());
}

double ConfusionCounts::precision() const {
  const std::int64_t denom = true_positive + false_positive;
  return denom > 0 ? static_cast<double>(true_positive) / denom : 0.0;
}

double ConfusionCounts::recall() const {
  const std::int64_t denom = true_positive + false_negative;
  return denom > 0 ? static_cast<double>(true_positive) / denom : 0.0;
}

double ConfusionCounts::f1() const {
  const double p = precision();
  const double r = recall();
  return p + r > 0.0 ? 2.0 * p * r / (p + r) : 0.0;
}

ConfusionCounts confusion_counts(std::span<const std::int64_t> pred,
                                 std::span<const std::int64_t> target) {
  check_lengths(pred.size(), target.size(), "confusion_counts");
  ConfusionCounts c;
  for (std::size_t i = 0; i < pred.size(); ++i) {
    MATSCI_CHECK((pred[i] == 0 || pred[i] == 1) &&
                     (target[i] == 0 || target[i] == 1),
                 "confusion_counts expects {0,1} labels");
    if (pred[i] == 1 && target[i] == 1) ++c.true_positive;
    if (pred[i] == 0 && target[i] == 0) ++c.true_negative;
    if (pred[i] == 1 && target[i] == 0) ++c.false_positive;
    if (pred[i] == 0 && target[i] == 1) ++c.false_negative;
  }
  return c;
}

}  // namespace matsci::tasks
