#pragma once

#include <mutex>

#include "data/transforms.hpp"
#include "models/output_head.hpp"
#include "tasks/task.hpp"

namespace matsci::tasks {

/// Learned interatomic potential over trajectory data (the LiPS-style
/// "time-dependent dynamics with energy/force labels" workload, §3.1):
/// the head regresses per-structure energy; predicted forces are the
/// negative gradient of the summed energy with respect to atomic
/// coordinates, obtained by running the autograd tape back to the
/// coordinate input.
///
/// Training optimizes the energy loss only (force-matching would need
/// gradients *of* gradients — second-order autodiff — which the tape
/// does not implement; documented in DESIGN.md). Force MAE against the
/// labels is reported as an evaluation metric whenever the batch carries
/// forces and the module is in eval mode.
class EnergyForceTask : public Task {
 public:
  /// Serving target that returns energy *and* forces per structure (used
  /// by src/sim's ML-potential MD): Prediction.value carries the total
  /// energy in eV and Prediction.scores the 3·n_atoms force components
  /// (eV/Å, atom-major xyz).
  static constexpr const char* kForcesTarget = "forces";

  EnergyForceTask(std::shared_ptr<models::Encoder> encoder,
                  std::string energy_key, models::OutputHeadConfig head_cfg,
                  core::RngEngine& rng, data::TargetStats stats = {});

  TaskOutput step(const data::Batch& batch) const override;
  std::shared_ptr<models::Encoder> encoder() const override {
    return encoder_;
  }

  /// Predicted forces [num_nodes, 3] in physical units (eV/Å):
  /// F = −∂E_total/∂x via autograd. Leaves no gradients behind on the
  /// module parameters.
  core::Tensor predict_forces(const data::Batch& batch) const;

  /// Denormalized energy predictions [G, 1].
  core::Tensor predict_energy(const data::Batch& batch) const;

  /// Serving hook. For the energy target, Prediction.value is the
  /// denormalized per-atom energy (eV). For kForcesTarget, see above.
  std::vector<Prediction> predict_batch(
      const data::Batch& batch, const std::string& target_key) const override;

 private:
  /// Coordinate-gradient pass shared by predict_forces and the forces
  /// serving target: returns forces [N, 3] and fills `energy_norm`
  /// [G, 1] from the same forward. The parameter-grad snapshot/restore
  /// dance touches state shared across threads, so the whole pass is
  /// serialized by grad_mutex_.
  core::Tensor forces_impl(const data::Batch& batch,
                           core::Tensor& energy_norm) const;

  std::shared_ptr<models::Encoder> encoder_;
  std::string energy_key_;
  std::shared_ptr<models::OutputHead> head_;
  data::TargetStats stats_;
  mutable std::mutex grad_mutex_;
};

}  // namespace matsci::tasks
