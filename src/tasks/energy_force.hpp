#pragma once

#include "data/transforms.hpp"
#include "models/output_head.hpp"
#include "tasks/task.hpp"

namespace matsci::tasks {

/// Learned interatomic potential over trajectory data (the LiPS-style
/// "time-dependent dynamics with energy/force labels" workload, §3.1):
/// the head regresses per-structure energy; predicted forces are the
/// negative gradient of the summed energy with respect to atomic
/// coordinates, obtained by running the autograd tape back to the
/// coordinate input.
///
/// Training optimizes the energy loss only (force-matching would need
/// gradients *of* gradients — second-order autodiff — which the tape
/// does not implement; documented in DESIGN.md). Force MAE against the
/// labels is reported as an evaluation metric whenever the batch carries
/// forces and the module is in eval mode.
class EnergyForceTask : public Task {
 public:
  EnergyForceTask(std::shared_ptr<models::Encoder> encoder,
                  std::string energy_key, models::OutputHeadConfig head_cfg,
                  core::RngEngine& rng, data::TargetStats stats = {});

  TaskOutput step(const data::Batch& batch) const override;
  std::shared_ptr<models::Encoder> encoder() const override {
    return encoder_;
  }

  /// Predicted forces [num_nodes, 3] in physical units (eV/Å):
  /// F = −∂E_total/∂x via autograd. Leaves no gradients behind on the
  /// module parameters.
  core::Tensor predict_forces(const data::Batch& batch) const;

  /// Denormalized energy predictions [G, 1].
  core::Tensor predict_energy(const data::Batch& batch) const;

  /// Serving hook for the energy target (denormalized eV values).
  std::vector<Prediction> predict_batch(
      const data::Batch& batch, const std::string& target_key) const override;

 private:
  std::shared_ptr<models::Encoder> encoder_;
  std::string energy_key_;
  std::shared_ptr<models::OutputHead> head_;
  data::TargetStats stats_;
};

}  // namespace matsci::tasks
