#include "tasks/task.hpp"

#include "core/macros.hpp"

namespace matsci::tasks {

std::vector<Prediction> Task::predict_batch(
    const data::Batch& batch, const std::string& target_key) const {
  (void)batch;
  MATSCI_CHECK(false, "task does not serve predictions for target '"
                          << target_key << "'");
  return {};  // unreachable
}

void MetricAccumulator::add(const TaskOutput& out) {
  const double w = static_cast<double>(out.count);
  for (const auto& [key, value] : out.metrics) {
    auto& [sum, weight] = sums_[key];
    sum += value * w;
    weight += w;
  }
}

double MetricAccumulator::mean(const std::string& key) const {
  auto it = sums_.find(key);
  MATSCI_CHECK(it != sums_.end() && it->second.second > 0.0,
               "metric '" << key << "' was never recorded");
  return it->second.first / it->second.second;
}

bool MetricAccumulator::has(const std::string& key) const {
  auto it = sums_.find(key);
  return it != sums_.end() && it->second.second > 0.0;
}

std::map<std::string, double> MetricAccumulator::means() const {
  std::map<std::string, double> out;
  for (const auto& [key, sw] : sums_) {
    if (sw.second > 0.0) out[key] = sw.first / sw.second;
  }
  return out;
}

void MetricAccumulator::reset() { sums_.clear(); }

}  // namespace matsci::tasks
