#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace matsci::tasks {

/// Standalone evaluation metrics over prediction/target arrays —
/// the quantities MatBench-style leaderboards report alongside MAE.
/// All functions validate matching lengths and throw on empty input.

double mean_absolute_error(std::span<const float> pred,
                           std::span<const float> target);
double root_mean_squared_error(std::span<const float> pred,
                               std::span<const float> target);
/// Coefficient of determination; 1 = perfect, 0 = predicting the mean,
/// negative = worse than the mean.
double r2_score(std::span<const float> pred, std::span<const float> target);
/// Pearson correlation coefficient.
double pearson_correlation(std::span<const float> pred,
                           std::span<const float> target);

/// Binary classification counts from {0,1} labels.
struct ConfusionCounts {
  std::int64_t true_positive = 0;
  std::int64_t true_negative = 0;
  std::int64_t false_positive = 0;
  std::int64_t false_negative = 0;

  std::int64_t total() const {
    return true_positive + true_negative + false_positive + false_negative;
  }
  double accuracy() const;
  double precision() const;  ///< 0 when undefined (no positive predictions)
  double recall() const;     ///< 0 when undefined (no positive labels)
  double f1() const;         ///< harmonic mean; 0 when undefined
};

ConfusionCounts confusion_counts(std::span<const std::int64_t> pred,
                                 std::span<const std::int64_t> target);

}  // namespace matsci::tasks
