#include "tasks/regression.hpp"

#include <cmath>

#include "core/macros.hpp"
#include "core/ops.hpp"

namespace matsci::tasks {

ScalarRegressionTask::ScalarRegressionTask(
    std::shared_ptr<models::Encoder> encoder, std::string target_key,
    models::OutputHeadConfig head_cfg, core::RngEngine& rng,
    data::TargetStats stats, RegressionLoss loss)
    : target_key_(std::move(target_key)), stats_(stats), loss_(loss) {
  MATSCI_CHECK(encoder != nullptr, "regression task needs an encoder");
  MATSCI_CHECK(stats.stddev > 0.0f, "target stddev must be positive");
  head_cfg.out_dim = 1;
  encoder_ = register_module("encoder", std::move(encoder));
  head_ = register_module(
      "head", std::make_shared<models::OutputHead>(encoder_->embedding_dim(),
                                                   head_cfg, rng));
}

TaskOutput ScalarRegressionTask::step(const data::Batch& batch) const {
  auto it = batch.scalar_targets.find(target_key_);
  MATSCI_CHECK(it != batch.scalar_targets.end(),
               "batch has no scalar target '" << target_key_ << "'");
  const core::Tensor& target_raw = it->second;

  core::Tensor emb = encoder_->encode(batch);
  core::Tensor pred = head_->forward(emb);  // [G, 1], normalized units

  // Normalize the target instead of denormalizing the prediction so the
  // loss scale is O(1) regardless of the physical unit.
  core::Tensor target_norm = core::mul_scalar(
      core::add_scalar(target_raw, -stats_.mean), 1.0f / stats_.stddev);

  TaskOutput out;
  switch (loss_) {
    case RegressionLoss::kMSE:
      out.loss = core::mse_loss(pred, target_norm);
      break;
    case RegressionLoss::kL1:
      out.loss = core::l1_loss(pred, target_norm);
      break;
    case RegressionLoss::kHuber:
      out.loss = core::huber_loss(pred, target_norm);
      break;
  }

  // MAE in physical units.
  const std::int64_t g = pred.size(0);
  double mae = 0.0;
  for (std::int64_t i = 0; i < g; ++i) {
    const double denorm = static_cast<double>(pred.at(i, 0)) * stats_.stddev +
                          stats_.mean;
    mae += std::fabs(denorm - target_raw.at(i, 0));
  }
  out.metrics["mae"] = mae / static_cast<double>(g);
  out.metrics["loss"] = out.loss.item();
  out.count = g;
  return out;
}

core::Tensor ScalarRegressionTask::predict(const data::Batch& batch) const {
  core::NoGradGuard no_grad;
  core::Tensor pred = head_->forward(encoder_->encode(batch));
  return core::add_scalar(core::mul_scalar(pred, stats_.stddev), stats_.mean);
}

std::vector<Prediction> ScalarRegressionTask::predict_batch(
    const data::Batch& batch, const std::string& target_key) const {
  MATSCI_CHECK(target_key == target_key_,
               "regression task serves '" << target_key_ << "', not '"
                                          << target_key << "'");
  core::NoGradGuard no_grad;
  core::Tensor norm = head_->forward(encoder_->encode(batch));
  std::vector<Prediction> out(static_cast<std::size_t>(norm.size(0)));
  for (std::int64_t i = 0; i < norm.size(0); ++i) {
    Prediction& p = out[static_cast<std::size_t>(i)];
    p.scores = {norm.at(i, 0)};
    p.value = norm.at(i, 0) * stats_.stddev + stats_.mean;
  }
  return out;
}

}  // namespace matsci::tasks
