#include "tasks/energy_force.hpp"

#include <cmath>

#include "core/graph_ops.hpp"
#include "core/macros.hpp"
#include "core/ops.hpp"

namespace matsci::tasks {

EnergyForceTask::EnergyForceTask(std::shared_ptr<models::Encoder> encoder,
                                 std::string energy_key,
                                 models::OutputHeadConfig head_cfg,
                                 core::RngEngine& rng,
                                 data::TargetStats stats)
    : energy_key_(std::move(energy_key)), stats_(stats) {
  MATSCI_CHECK(encoder != nullptr, "energy/force task needs an encoder");
  MATSCI_CHECK(stats.stddev > 0.0f, "target stddev must be positive");
  head_cfg.out_dim = 1;
  encoder_ = register_module("encoder", std::move(encoder));
  head_ = register_module(
      "head", std::make_shared<models::OutputHead>(encoder_->embedding_dim(),
                                                   head_cfg, rng));
}

core::Tensor EnergyForceTask::predict_forces(const data::Batch& batch) const {
  core::Tensor energy_norm;
  return forces_impl(batch, energy_norm);
}

core::Tensor EnergyForceTask::forces_impl(const data::Batch& batch,
                                          core::Tensor& energy_norm) const {
  // Force evaluation runs its own tape (also from inside NoGradGuard
  // scopes) and must not disturb any gradients accumulated by training:
  // snapshot parameter grads, run the coordinate backward, restore.
  // Concurrent serving threads would race on those shared grads, so the
  // whole pass holds grad_mutex_.
  std::lock_guard<std::mutex> lock(grad_mutex_);
  core::GradModeGuard grad_on(true);
  const auto params = parameters();
  std::vector<core::memory::FloatStorage> saved;
  saved.reserve(params.size());
  for (const core::Tensor& p : params) {
    saved.push_back(p.impl()->grad);
  }

  data::Batch differentiable = batch;
  core::Tensor coords = batch.coords.clone();
  coords.set_requires_grad(true);
  differentiable.coords = coords;

  // Physical total energy: the "energy" label is per-atom, so the graph
  // total is (ŷ·σ + μ)·n_atoms; its coordinate gradient is σ·∂(ŷ·n)/∂x.
  energy_norm = head_->forward(encoder_->encode(differentiable));  // [G, 1]
  core::Tensor atom_counts = core::segment_counts(
      batch.topology.node_graph, batch.topology.num_graphs);  // [G, 1]
  core::sum(core::mul(energy_norm, atom_counts)).backward();

  MATSCI_CHECK(coords.has_grad(),
               "no coordinate gradient — encoder does not consume coords?");
  core::Tensor forces =
      core::mul_scalar(coords.grad(), -stats_.stddev);  // F = −∂E/∂x

  for (std::size_t i = 0; i < params.size(); ++i) {
    params[i].impl()->grad = std::move(saved[i]);
  }
  return forces;
}

core::Tensor EnergyForceTask::predict_energy(const data::Batch& batch) const {
  core::NoGradGuard no_grad;
  core::Tensor pred = head_->forward(encoder_->encode(batch));
  return core::add_scalar(core::mul_scalar(pred, stats_.stddev), stats_.mean);
}

std::vector<Prediction> EnergyForceTask::predict_batch(
    const data::Batch& batch, const std::string& target_key) const {
  if (target_key == kForcesTarget) {
    // Energy + forces from one differentiable forward; sliced back to
    // per-structure predictions via the node→graph segment map.
    core::Tensor energy_norm;
    const core::Tensor forces = forces_impl(batch, energy_norm);
    const auto& topo = batch.topology;
    std::vector<Prediction> out(static_cast<std::size_t>(topo.num_graphs));
    for (std::int64_t g = 0; g < topo.num_graphs; ++g) {
      Prediction& p = out[static_cast<std::size_t>(g)];
      const double n_atoms =
          static_cast<double>(topo.graph_sizes[static_cast<std::size_t>(g)]);
      p.value = static_cast<float>(
          (energy_norm.at(g, 0) * stats_.stddev + stats_.mean) * n_atoms);
      p.scores.reserve(static_cast<std::size_t>(
          3 * topo.graph_sizes[static_cast<std::size_t>(g)]));
    }
    for (std::int64_t i = 0; i < topo.num_nodes; ++i) {
      auto& scores =
          out[static_cast<std::size_t>(
                  topo.node_graph[static_cast<std::size_t>(i)])]
              .scores;
      scores.push_back(forces.at(i, 0));
      scores.push_back(forces.at(i, 1));
      scores.push_back(forces.at(i, 2));
    }
    return out;
  }
  MATSCI_CHECK(target_key == energy_key_,
               "energy-force task serves '" << energy_key_ << "' or '"
                                            << kForcesTarget << "', not '"
                                            << target_key << "'");
  core::NoGradGuard no_grad;
  core::Tensor norm = head_->forward(encoder_->encode(batch));
  std::vector<Prediction> out(static_cast<std::size_t>(norm.size(0)));
  for (std::int64_t i = 0; i < norm.size(0); ++i) {
    Prediction& p = out[static_cast<std::size_t>(i)];
    p.scores = {norm.at(i, 0)};
    p.value = norm.at(i, 0) * stats_.stddev + stats_.mean;
  }
  return out;
}

TaskOutput EnergyForceTask::step(const data::Batch& batch) const {
  auto it = batch.scalar_targets.find(energy_key_);
  MATSCI_CHECK(it != batch.scalar_targets.end(),
               "batch has no scalar target '" << energy_key_ << "'");
  const core::Tensor& target_raw = it->second;

  core::Tensor pred = head_->forward(encoder_->encode(batch));
  core::Tensor target_norm = core::mul_scalar(
      core::add_scalar(target_raw, -stats_.mean), 1.0f / stats_.stddev);

  TaskOutput out;
  out.loss = core::mse_loss(pred, target_norm);
  out.count = pred.size(0);
  out.metrics["loss"] = out.loss.item();

  double mae = 0.0;
  for (std::int64_t g = 0; g < pred.size(0); ++g) {
    const double denorm =
        static_cast<double>(pred.at(g, 0)) * stats_.stddev + stats_.mean;
    mae += std::fabs(denorm - target_raw.at(g, 0));
  }
  out.metrics["energy_mae"] = mae / static_cast<double>(pred.size(0));

  // Force error: evaluation-mode only (the backward below builds its own
  // tape; during training it would waste a full extra backward per step).
  if (!is_training() && batch.forces.defined()) {
    const core::Tensor forces = predict_forces(batch);
    double fmae = 0.0;
    const std::int64_t n = forces.size(0);
    for (std::int64_t i = 0; i < n; ++i) {
      for (std::int64_t c = 0; c < 3; ++c) {
        fmae += std::fabs(forces.at(i, c) - batch.forces.at(i, c));
      }
    }
    out.metrics["force_mae"] = fmae / static_cast<double>(3 * n);
  }
  return out;
}

}  // namespace matsci::tasks
