#include "tasks/multitask.hpp"

#include <cmath>

#include "core/macros.hpp"
#include "core/ops.hpp"

namespace matsci::tasks {

MultiTaskModule::MultiTaskModule(std::shared_ptr<models::Encoder> encoder,
                                 models::OutputHeadConfig head_cfg,
                                 std::uint64_t seed)
    : head_cfg_(head_cfg), rng_(seed) {
  MATSCI_CHECK(encoder != nullptr, "multitask module needs an encoder");
  encoder_ = register_module("encoder", std::move(encoder));
}

void MultiTaskModule::add_spec(std::int64_t dataset_id, Kind kind,
                               const std::string& target_key,
                               data::TargetStats stats, std::int64_t out_dim,
                               const std::string& label) {
  for (const Spec& s : specs_) {
    MATSCI_CHECK(s.label != label, "duplicate task label '" << label << "'");
  }
  models::OutputHeadConfig cfg = head_cfg_;
  cfg.out_dim = out_dim;
  Spec spec;
  spec.dataset_id = dataset_id;
  spec.kind = kind;
  spec.target_key = target_key;
  spec.label = label;
  spec.stats = stats;
  spec.head = register_module(
      "head_" + label,
      std::make_shared<models::OutputHead>(encoder_->embedding_dim(), cfg,
                                           rng_));
  specs_.push_back(std::move(spec));
}

void MultiTaskModule::add_regression(std::int64_t dataset_id,
                                     const std::string& target_key,
                                     data::TargetStats stats,
                                     const std::string& label) {
  MATSCI_CHECK(stats.stddev > 0.0f, "target stddev must be positive");
  add_spec(dataset_id, Kind::kRegression, target_key, stats, 1, label);
}

void MultiTaskModule::add_binary_classification(std::int64_t dataset_id,
                                                const std::string& target_key,
                                                const std::string& label) {
  add_spec(dataset_id, Kind::kBinary, target_key, {}, 1, label);
}

void MultiTaskModule::add_classification(std::int64_t dataset_id,
                                         const std::string& target_key,
                                         std::int64_t num_classes,
                                         const std::string& label) {
  MATSCI_CHECK(num_classes >= 2, "need at least two classes");
  add_spec(dataset_id, Kind::kMulticlass, target_key, {}, num_classes, label);
}

TaskOutput MultiTaskModule::step(const data::Batch& batch) const {
  // Encode once; every matching head consumes the same embedding, which
  // is precisely how the encoder pools gradients across targets.
  core::Tensor emb;
  TaskOutput out;
  out.count = batch.num_graphs();
  const std::int64_t g = batch.num_graphs();

  for (const Spec& spec : specs_) {
    if (spec.dataset_id != batch.dataset_id) continue;
    if (!emb.defined()) {
      emb = encoder_->encode(batch);
    }
    core::Tensor pred = spec.head->forward(emb);
    core::Tensor task_loss;
    switch (spec.kind) {
      case Kind::kRegression: {
        auto it = batch.scalar_targets.find(spec.target_key);
        MATSCI_CHECK(it != batch.scalar_targets.end(),
                     "batch lacks scalar target '" << spec.target_key << "'");
        core::Tensor target_norm = core::mul_scalar(
            core::add_scalar(it->second, -spec.stats.mean),
            1.0f / spec.stats.stddev);
        task_loss = core::mse_loss(pred, target_norm);
        double mae = 0.0;
        for (std::int64_t i = 0; i < g; ++i) {
          const double denorm =
              static_cast<double>(pred.at(i, 0)) * spec.stats.stddev +
              spec.stats.mean;
          mae += std::fabs(denorm - it->second.at(i, 0));
        }
        out.metrics[spec.label + "/mae"] = mae / static_cast<double>(g);
        break;
      }
      case Kind::kBinary: {
        auto it = batch.class_targets.find(spec.target_key);
        MATSCI_CHECK(it != batch.class_targets.end(),
                     "batch lacks class target '" << spec.target_key << "'");
        std::vector<float> targets(static_cast<std::size_t>(g));
        std::int64_t correct = 0;
        for (std::int64_t i = 0; i < g; ++i) {
          const std::int64_t y = it->second[static_cast<std::size_t>(i)];
          targets[static_cast<std::size_t>(i)] = static_cast<float>(y);
          if ((pred.at(i, 0) > 0.0f) == (y == 1)) ++correct;
        }
        task_loss = core::bce_with_logits(
            pred, core::Tensor::from_vector(std::move(targets), {g, 1}));
        out.metrics[spec.label + "/bce"] = task_loss.item();
        out.metrics[spec.label + "/accuracy"] =
            static_cast<double>(correct) / static_cast<double>(g);
        break;
      }
      case Kind::kMulticlass: {
        auto it = batch.class_targets.find(spec.target_key);
        MATSCI_CHECK(it != batch.class_targets.end(),
                     "batch lacks class target '" << spec.target_key << "'");
        task_loss = core::cross_entropy(pred, it->second);
        const auto hard = core::argmax_rows(pred);
        std::int64_t correct = 0;
        for (std::int64_t i = 0; i < g; ++i) {
          if (hard[static_cast<std::size_t>(i)] ==
              it->second[static_cast<std::size_t>(i)]) {
            ++correct;
          }
        }
        out.metrics[spec.label + "/ce"] = task_loss.item();
        out.metrics[spec.label + "/accuracy"] =
            static_cast<double>(correct) / static_cast<double>(g);
        break;
      }
    }
    out.loss = out.loss.defined() ? core::add(out.loss, task_loss)
                                  : task_loss;
  }
  MATSCI_CHECK(out.loss.defined(),
               "no task head registered for dataset id " << batch.dataset_id);
  out.metrics["loss"] = out.loss.item();
  return out;
}

std::vector<Prediction> MultiTaskModule::predict_batch(
    const data::Batch& batch, const std::string& target_key) const {
  // Head selection: label match wins over raw-target-key match so that
  // two datasets sharing a target name stay unambiguous.
  const Spec* selected = nullptr;
  for (const Spec& spec : specs_) {
    if (spec.dataset_id == batch.dataset_id && spec.label == target_key) {
      selected = &spec;
      break;
    }
  }
  if (selected == nullptr) {
    for (const Spec& spec : specs_) {
      if (spec.dataset_id == batch.dataset_id &&
          spec.target_key == target_key) {
        selected = &spec;
        break;
      }
    }
  }
  MATSCI_CHECK(selected != nullptr, "no head for target '"
                                        << target_key << "' on dataset id "
                                        << batch.dataset_id);

  core::NoGradGuard no_grad;
  core::Tensor pred = selected->head->forward(encoder_->encode(batch));
  const std::int64_t g = pred.size(0), c = pred.size(1);
  std::vector<Prediction> out(static_cast<std::size_t>(g));
  for (std::int64_t i = 0; i < g; ++i) {
    Prediction& p = out[static_cast<std::size_t>(i)];
    p.scores.resize(static_cast<std::size_t>(c));
    for (std::int64_t j = 0; j < c; ++j) {
      p.scores[static_cast<std::size_t>(j)] = pred.at(i, j);
    }
    switch (selected->kind) {
      case Kind::kRegression:
        p.value = pred.at(i, 0) * selected->stats.stddev +
                  selected->stats.mean;
        break;
      case Kind::kBinary:
        p.label = pred.at(i, 0) > 0.0f ? 1 : 0;
        p.value = pred.at(i, 0);
        break;
      case Kind::kMulticlass:
        p.label = 0;
        for (std::int64_t j = 1; j < c; ++j) {
          if (pred.at(i, j) > pred.at(i, p.label)) p.label = j;
        }
        p.value = pred.at(i, p.label);
        break;
    }
  }
  return out;
}

}  // namespace matsci::tasks
