#include "tasks/classification.hpp"

#include "core/macros.hpp"
#include "core/ops.hpp"

namespace matsci::tasks {

ClassificationTask::ClassificationTask(
    std::shared_ptr<models::Encoder> encoder, std::string target_key,
    std::int64_t num_classes, models::OutputHeadConfig head_cfg,
    core::RngEngine& rng, bool binary)
    : target_key_(std::move(target_key)),
      num_classes_(num_classes),
      binary_(binary) {
  MATSCI_CHECK(encoder != nullptr, "classification task needs an encoder");
  MATSCI_CHECK(num_classes >= 2, "need at least two classes");
  MATSCI_CHECK(!binary || num_classes == 2,
               "binary mode requires num_classes == 2");
  head_cfg.out_dim = binary ? 1 : num_classes;
  encoder_ = register_module("encoder", std::move(encoder));
  head_ = register_module(
      "head", std::make_shared<models::OutputHead>(encoder_->embedding_dim(),
                                                   head_cfg, rng));
}

TaskOutput ClassificationTask::step(const data::Batch& batch) const {
  auto it = batch.class_targets.find(target_key_);
  MATSCI_CHECK(it != batch.class_targets.end(),
               "batch has no class target '" << target_key_ << "'");
  const std::vector<std::int64_t>& labels = it->second;

  core::Tensor emb = encoder_->encode(batch);
  core::Tensor logits = head_->forward(emb);
  const std::int64_t g = logits.size(0);

  TaskOutput out;
  std::int64_t correct = 0;
  if (binary_) {
    std::vector<float> targets(static_cast<std::size_t>(g));
    for (std::int64_t i = 0; i < g; ++i) {
      const std::int64_t y = labels[static_cast<std::size_t>(i)];
      MATSCI_CHECK(y == 0 || y == 1, "binary label " << y);
      targets[static_cast<std::size_t>(i)] = static_cast<float>(y);
      if ((logits.at(i, 0) > 0.0f) == (y == 1)) ++correct;
    }
    out.loss = core::bce_with_logits(
        logits, core::Tensor::from_vector(std::move(targets), {g, 1}));
    out.metrics["bce"] = out.loss.item();
  } else {
    out.loss = core::cross_entropy(logits, labels);
    const auto pred = core::argmax_rows(logits);
    for (std::int64_t i = 0; i < g; ++i) {
      if (pred[static_cast<std::size_t>(i)] ==
          labels[static_cast<std::size_t>(i)]) {
        ++correct;
      }
    }
    out.metrics["ce"] = out.loss.item();
  }
  out.metrics["loss"] = out.loss.item();
  out.metrics["accuracy"] =
      static_cast<double>(correct) / static_cast<double>(g);
  out.count = g;
  return out;
}

std::vector<std::int64_t> ClassificationTask::predict(
    const data::Batch& batch) const {
  core::NoGradGuard no_grad;
  core::Tensor logits = head_->forward(encoder_->encode(batch));
  if (binary_) {
    std::vector<std::int64_t> pred(static_cast<std::size_t>(logits.size(0)));
    for (std::int64_t i = 0; i < logits.size(0); ++i) {
      pred[static_cast<std::size_t>(i)] = logits.at(i, 0) > 0.0f ? 1 : 0;
    }
    return pred;
  }
  return core::argmax_rows(logits);
}

std::vector<Prediction> ClassificationTask::predict_batch(
    const data::Batch& batch, const std::string& target_key) const {
  MATSCI_CHECK(target_key == target_key_,
               "classification task serves '" << target_key_ << "', not '"
                                              << target_key << "'");
  core::NoGradGuard no_grad;
  core::Tensor logits = head_->forward(encoder_->encode(batch));
  const std::int64_t g = logits.size(0), c = logits.size(1);
  std::vector<Prediction> out(static_cast<std::size_t>(g));
  for (std::int64_t i = 0; i < g; ++i) {
    Prediction& p = out[static_cast<std::size_t>(i)];
    p.scores.resize(static_cast<std::size_t>(c));
    for (std::int64_t j = 0; j < c; ++j) {
      p.scores[static_cast<std::size_t>(j)] = logits.at(i, j);
    }
    if (binary_) {
      p.label = logits.at(i, 0) > 0.0f ? 1 : 0;
      p.value = logits.at(i, 0);
    } else {
      p.label = 0;
      for (std::int64_t j = 1; j < c; ++j) {
        if (logits.at(i, j) > logits.at(i, p.label)) p.label = j;
      }
      p.value = logits.at(i, p.label);
    }
  }
  return out;
}

}  // namespace matsci::tasks
