#pragma once

#include "models/output_head.hpp"
#include "tasks/task.hpp"

namespace matsci::tasks {

/// Multi-class classification over graph embeddings. Used for the
/// symmetry-group pretraining objective (32 classes) and — in its binary
/// form — the Materials Project stability label.
///
/// With num_classes == 2 and `binary = true` the head emits a single
/// logit trained with binary cross-entropy, matching the paper's
/// "stability corresponds to the binary cross-entropy error".
class ClassificationTask : public Task {
 public:
  ClassificationTask(std::shared_ptr<models::Encoder> encoder,
                     std::string target_key, std::int64_t num_classes,
                     models::OutputHeadConfig head_cfg, core::RngEngine& rng,
                     bool binary = false);

  TaskOutput step(const data::Batch& batch) const override;
  std::shared_ptr<models::Encoder> encoder() const override {
    return encoder_;
  }

  /// Predicted class per graph (argmax / thresholded logit).
  std::vector<std::int64_t> predict(const data::Batch& batch) const;

  /// Serving hook: `label` is the predicted class, `scores` the raw
  /// logits, `value` the winning logit.
  std::vector<Prediction> predict_batch(
      const data::Batch& batch, const std::string& target_key) const override;

  std::int64_t num_classes() const { return num_classes_; }
  const std::string& target_key() const { return target_key_; }

 private:
  std::shared_ptr<models::Encoder> encoder_;
  std::string target_key_;
  std::int64_t num_classes_;
  bool binary_;
  std::shared_ptr<models::OutputHead> head_;
};

}  // namespace matsci::tasks
