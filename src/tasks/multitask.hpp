#pragma once

#include <vector>

#include "data/transforms.hpp"
#include "models/output_head.hpp"
#include "tasks/task.hpp"

namespace matsci::tasks {

/// Multi-task, multi-dataset learner (paper §3.2 and Table 1): one joint
/// encoder shared across every registered target, one output head per
/// (dataset, target). A batch — always single-dataset — is routed to all
/// heads registered for its dataset id; their losses are summed, so the
/// encoder receives gradients from every target type while each head
/// only ever sees its own dataset.
class MultiTaskModule : public Task {
 public:
  MultiTaskModule(std::shared_ptr<models::Encoder> encoder,
                  models::OutputHeadConfig head_cfg, std::uint64_t seed);

  /// Register a scalar-regression target; `label` prefixes metric names
  /// (e.g. "mp/band_gap" → metric "mp/band_gap/mae").
  void add_regression(std::int64_t dataset_id, const std::string& target_key,
                      data::TargetStats stats, const std::string& label);

  /// Register a binary (BCE) classification target.
  void add_binary_classification(std::int64_t dataset_id,
                                 const std::string& target_key,
                                 const std::string& label);

  /// Register a multi-class (CE) classification target.
  void add_classification(std::int64_t dataset_id,
                          const std::string& target_key,
                          std::int64_t num_classes, const std::string& label);

  TaskOutput step(const data::Batch& batch) const override;
  std::shared_ptr<models::Encoder> encoder() const override {
    return encoder_;
  }

  /// Serving hook with per-request head selection: `target_key` names a
  /// registered head by label ("mp/band_gap") or, as a fallback, by raw
  /// target key — in both cases restricted to heads registered for the
  /// batch's dataset id. Regression heads report denormalized values.
  std::vector<Prediction> predict_batch(
      const data::Batch& batch, const std::string& target_key) const override;

  std::int64_t num_heads() const {
    return static_cast<std::int64_t>(specs_.size());
  }

 private:
  enum class Kind { kRegression, kBinary, kMulticlass };
  struct Spec {
    std::int64_t dataset_id;
    Kind kind;
    std::string target_key;
    std::string label;
    data::TargetStats stats;
    std::shared_ptr<models::OutputHead> head;
  };

  void add_spec(std::int64_t dataset_id, Kind kind,
                const std::string& target_key, data::TargetStats stats,
                std::int64_t out_dim, const std::string& label);

  std::shared_ptr<models::Encoder> encoder_;
  models::OutputHeadConfig head_cfg_;
  core::RngEngine rng_;
  std::vector<Spec> specs_;
};

}  // namespace matsci::tasks
