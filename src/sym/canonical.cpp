#include "sym/canonical.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <cstring>

#include "core/macros.hpp"

namespace matsci::sym {

namespace {

/// One atom in canonical form: species plus grid-quantized coordinates.
struct CanonicalAtom {
  std::int64_t species = 0;
  std::array<std::int64_t, 3> q{};

  bool operator<(const CanonicalAtom& o) const {
    if (species != o.species) return species < o.species;
    return q < o.q;
  }
};

std::int64_t quantize(double v, double grid) {
  return static_cast<std::int64_t>(std::llround(v / grid));
}

/// Principal axes of the covariance-like tensor via Jacobi sweeps
/// (3x3), columns ordered by descending eigenvalue with a sign fix
/// (largest-magnitude projection sum made positive) so the frame is
/// deterministic up to inertia degeneracies.
core::Mat3 principal_frame(const std::vector<core::Vec3>& pts) {
  double m[3][3] = {};
  for (const core::Vec3& p : pts) {
    const double v[3] = {p.x, p.y, p.z};
    for (int i = 0; i < 3; ++i) {
      for (int j = 0; j < 3; ++j) m[i][j] += v[i] * v[j];
    }
  }
  double a[3][3];
  std::memcpy(a, m, sizeof(a));
  double vmat[3][3] = {{1, 0, 0}, {0, 1, 0}, {0, 0, 1}};
  for (int sweep = 0; sweep < 48; ++sweep) {
    double off = 0.0;
    for (int i = 0; i < 3; ++i) {
      for (int j = i + 1; j < 3; ++j) off += a[i][j] * a[i][j];
    }
    if (off < 1e-20) break;
    for (int p = 0; p < 3; ++p) {
      for (int q = p + 1; q < 3; ++q) {
        if (std::fabs(a[p][q]) < 1e-22) continue;
        const double theta = 0.5 * std::atan2(2.0 * a[p][q], a[q][q] - a[p][p]);
        const double c = std::cos(theta), s = std::sin(theta);
        for (int k = 0; k < 3; ++k) {
          const double akp = a[k][p], akq = a[k][q];
          a[k][p] = c * akp - s * akq;
          a[k][q] = s * akp + c * akq;
        }
        for (int k = 0; k < 3; ++k) {
          const double apk = a[p][k], aqk = a[q][k];
          a[p][k] = c * apk - s * aqk;
          a[q][k] = s * apk + c * aqk;
          const double vkp = vmat[k][p], vkq = vmat[k][q];
          vmat[k][p] = c * vkp - s * vkq;
          vmat[k][q] = s * vkp + c * vkq;
        }
      }
    }
  }
  // Order eigenvectors by descending eigenvalue.
  std::array<int, 3> order = {0, 1, 2};
  std::sort(order.begin(), order.end(),
            [&](int i, int j) { return a[i][i] > a[j][j]; });
  core::Mat3 frame{};  // rows = principal axes
  for (int r = 0; r < 3; ++r) {
    core::Vec3 axis{vmat[0][order[static_cast<std::size_t>(r)]],
                    vmat[1][order[static_cast<std::size_t>(r)]],
                    vmat[2][order[static_cast<std::size_t>(r)]]};
    // Sign fix: make the skewness of projections non-negative.
    double skew = 0.0;
    for (const core::Vec3& p : pts) {
      const double d = dot(axis, p);
      skew += d * d * d;
    }
    if (skew < 0.0) axis = -axis;
    frame[r] = axis;
  }
  return frame;
}

void hash_i64(std::uint64_t& h, std::int64_t v) {
  h = fnv1a64(&v, sizeof(v), h);
}

}  // namespace

std::uint64_t fnv1a64(const void* data, std::size_t bytes,
                      std::uint64_t seed) {
  const unsigned char* p = static_cast<const unsigned char*>(data);
  std::uint64_t h = seed;
  for (std::size_t i = 0; i < bytes; ++i) {
    h ^= static_cast<std::uint64_t>(p[i]);
    h *= 0x100000001b3ull;
  }
  return h;
}

std::uint64_t fnv1a64(const std::string& s, std::uint64_t seed) {
  return fnv1a64(s.data(), s.size(), seed);
}

std::uint64_t canonical_structure_hash(const data::StructureSample& sample,
                                       const CanonicalOptions& opts) {
  MATSCI_CHECK(opts.grid > 0.0, "canonical_structure_hash: grid=" << opts.grid);
  const std::size_t n = sample.positions.size();
  MATSCI_CHECK(sample.species.size() == n,
               "canonical_structure_hash: " << sample.species.size()
                                            << " species for " << n
                                            << " positions");

  std::vector<core::Vec3> pts = sample.positions;
  if (opts.center && n > 0) {
    core::Vec3 c{};
    for (const core::Vec3& p : pts) c += p;
    c = c * (1.0 / static_cast<double>(n));
    for (core::Vec3& p : pts) p -= c;
  }
  if (opts.align_principal_axes && n > 1) {
    const core::Mat3 frame = principal_frame(pts);
    for (core::Vec3& p : pts) p = matvec(frame, p);
  }

  std::vector<CanonicalAtom> atoms(n);
  for (std::size_t i = 0; i < n; ++i) {
    atoms[i].species = sample.species[i];
    atoms[i].q = {quantize(pts[i].x, opts.grid), quantize(pts[i].y, opts.grid),
                  quantize(pts[i].z, opts.grid)};
  }
  std::sort(atoms.begin(), atoms.end());

  std::uint64_t h = 0xcbf29ce484222325ull;
  hash_i64(h, static_cast<std::int64_t>(n));
  hash_i64(h, sample.dataset_id);
  for (const CanonicalAtom& a : atoms) {
    hash_i64(h, a.species);
    hash_i64(h, a.q[0]);
    hash_i64(h, a.q[1]);
    hash_i64(h, a.q[2]);
  }
  if (sample.lattice.has_value()) {
    hash_i64(h, 1);
    for (int r = 0; r < 3; ++r) {
      for (int c = 0; c < 3; ++c) {
        hash_i64(h, quantize((*sample.lattice)[r][c], opts.grid));
      }
    }
  } else {
    hash_i64(h, 0);
  }
  return h;
}

}  // namespace matsci::sym
