#include "sym/symop.hpp"

#include <cmath>

#include "core/macros.hpp"

namespace matsci::sym {

core::Mat3 rotation(const core::Vec3& axis, double angle) {
  const double n = core::norm(axis);
  MATSCI_CHECK(n > 1e-12, "rotation axis must be nonzero");
  const core::Vec3 u = axis * (1.0 / n);
  const double c = std::cos(angle);
  const double s = std::sin(angle);
  const double omc = 1.0 - c;
  core::Mat3 m;
  m[0] = {c + u[0] * u[0] * omc, u[0] * u[1] * omc - u[2] * s,
          u[0] * u[2] * omc + u[1] * s};
  m[1] = {u[1] * u[0] * omc + u[2] * s, c + u[1] * u[1] * omc,
          u[1] * u[2] * omc - u[0] * s};
  m[2] = {u[2] * u[0] * omc - u[1] * s, u[2] * u[1] * omc + u[0] * s,
          c + u[2] * u[2] * omc};
  return m;
}

core::Mat3 rotation_z(std::int64_t n) {
  MATSCI_CHECK(n >= 1, "C_n requires n >= 1");
  return rotation({0.0, 0.0, 1.0}, 2.0 * M_PI / static_cast<double>(n));
}

core::Mat3 reflection(const core::Vec3& normal) {
  const double n = core::norm(normal);
  MATSCI_CHECK(n > 1e-12, "reflection normal must be nonzero");
  const core::Vec3 u = normal * (1.0 / n);
  core::Mat3 m = core::identity3();
  for (int i = 0; i < 3; ++i) {
    for (int j = 0; j < 3; ++j) {
      m[i][j] -= 2.0 * u[i] * u[j];
    }
  }
  return m;
}

core::Mat3 improper_rotation_z(std::int64_t n) {
  // S_n = σ_h · C_n (commuting for the z axis).
  return core::matmul3(reflection({0.0, 0.0, 1.0}), rotation_z(n));
}

core::Mat3 inversion() {
  return core::mat3_rows({-1.0, 0.0, 0.0}, {0.0, -1.0, 0.0},
                         {0.0, 0.0, -1.0});
}

core::Mat3 identity_op() { return core::identity3(); }

bool ops_equal(const core::Mat3& a, const core::Mat3& b, double tol) {
  for (int i = 0; i < 3; ++i) {
    for (int j = 0; j < 3; ++j) {
      if (std::fabs(a[i][j] - b[i][j]) >= tol) return false;
    }
  }
  return true;
}

bool is_orthogonal(const core::Mat3& m, double tol) {
  return ops_equal(core::matmul3(core::transpose3(m), m), core::identity3(),
                   tol);
}

std::vector<core::Mat3> close_group(const std::vector<core::Mat3>& generators,
                                    std::size_t max_order) {
  for (const core::Mat3& g : generators) {
    MATSCI_CHECK(is_orthogonal(g, 1e-6), "group generator is not orthogonal");
  }
  std::vector<core::Mat3> ops = {core::identity3()};
  auto contains = [&ops](const core::Mat3& m) {
    for (const core::Mat3& o : ops) {
      if (ops_equal(o, m, 1e-6)) return true;
    }
    return false;
  };
  for (const core::Mat3& g : generators) {
    if (!contains(g)) ops.push_back(g);
  }
  // Fixed-point iteration: multiply all pairs until no new element appears.
  bool grew = true;
  while (grew) {
    grew = false;
    const std::size_t n = ops.size();
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = 0; j < n; ++j) {
        const core::Mat3 p = core::matmul3(ops[i], ops[j]);
        if (!contains(p)) {
          ops.push_back(p);
          grew = true;
          MATSCI_CHECK(ops.size() <= max_order,
                       "group closure exceeded max_order=" << max_order
                                                           << " elements");
        }
      }
    }
  }
  return ops;
}

}  // namespace matsci::sym
