#pragma once

#include <vector>

#include "core/vec3.hpp"

namespace matsci::sym {

/// Orthogonal 3x3 symmetry operations (proper/improper rotations,
/// reflections, inversion) and a closure algorithm for finite groups.
/// These are the algebraic backbone of the paper's synthetic pretraining
/// pipeline (§3.1): point clouds are built by replicating seed particles
/// under every operation of a randomly chosen point group.

/// Proper rotation by `angle` (radians) about unit `axis`
/// (Rodrigues formula).
core::Mat3 rotation(const core::Vec3& axis, double angle);

/// Rotation about z by 2π/n (the C_n generator).
core::Mat3 rotation_z(std::int64_t n);

/// Reflection through the plane with unit normal `normal`.
core::Mat3 reflection(const core::Vec3& normal);

/// Improper rotation S_n about z: rotation by 2π/n followed by σ_h.
core::Mat3 improper_rotation_z(std::int64_t n);

/// Point inversion -I.
core::Mat3 inversion();

/// Identity.
core::Mat3 identity_op();

/// True when |a - b| < tol elementwise.
bool ops_equal(const core::Mat3& a, const core::Mat3& b, double tol = 1e-8);

/// True when m is orthogonal within tol (mᵀm = I).
bool is_orthogonal(const core::Mat3& m, double tol = 1e-8);

/// Generate the finite group closed under multiplication of `generators`
/// (the identity is always included). Throws if the closure exceeds
/// `max_order` — a guard against non-closing (irrational-angle) inputs.
std::vector<core::Mat3> close_group(const std::vector<core::Mat3>& generators,
                                    std::size_t max_order = 192);

}  // namespace matsci::sym
