#include "sym/detect.hpp"

#include <algorithm>
#include <cmath>

#include "core/macros.hpp"
#include "sym/symop.hpp"

namespace matsci::sym {

namespace {

std::vector<core::Vec3> center(const std::vector<core::Vec3>& points) {
  core::Vec3 c{};
  for (const core::Vec3& p : points) c += p;
  c = c * (1.0 / static_cast<double>(points.size()));
  std::vector<core::Vec3> out;
  out.reserve(points.size());
  for (const core::Vec3& p : points) out.push_back(p - c);
  return out;
}

/// Principal axes of the inertia-like tensor (eigenvectors by Jacobi
/// rotations — 3x3, so a handful of sweeps suffices).
core::Mat3 principal_axes(const std::vector<core::Vec3>& pts) {
  double m[3][3] = {};
  for (const core::Vec3& p : pts) {
    const double v[3] = {p.x, p.y, p.z};
    for (int i = 0; i < 3; ++i) {
      for (int j = 0; j < 3; ++j) m[i][j] += v[i] * v[j];
    }
  }
  // Jacobi eigenvalue iteration.
  double vmat[3][3] = {{1, 0, 0}, {0, 1, 0}, {0, 0, 1}};
  for (int sweep = 0; sweep < 32; ++sweep) {
    double off = 0.0;
    for (int i = 0; i < 3; ++i) {
      for (int j = i + 1; j < 3; ++j) off += m[i][j] * m[i][j];
    }
    if (off < 1e-18) break;
    for (int p = 0; p < 3; ++p) {
      for (int q = p + 1; q < 3; ++q) {
        if (std::fabs(m[p][q]) < 1e-15) continue;
        const double theta = 0.5 * std::atan2(2.0 * m[p][q], m[q][q] - m[p][p]);
        const double c = std::cos(theta), s = std::sin(theta);
        for (int k = 0; k < 3; ++k) {
          const double mkp = m[k][p], mkq = m[k][q];
          m[k][p] = c * mkp - s * mkq;
          m[k][q] = s * mkp + c * mkq;
        }
        for (int k = 0; k < 3; ++k) {
          const double mpk = m[p][k], mqk = m[q][k];
          m[p][k] = c * mpk - s * mqk;
          m[q][k] = s * mpk + c * mqk;
          const double vkp = vmat[k][p], vkq = vmat[k][q];
          vmat[k][p] = c * vkp - s * vkq;
          vmat[k][q] = s * vkp + c * vkq;
        }
      }
    }
  }
  // Columns of vmat are eigenvectors; sort by eigenvalue descending so
  // the dominant axis maps to z (the catalog's principal axis).
  double eig[3] = {m[0][0], m[1][1], m[2][2]};
  int order[3] = {0, 1, 2};
  std::sort(order, order + 3, [&](int a, int b) { return eig[a] < eig[b]; });
  // Rows of the returned frame are the new basis: z = largest eigenvalue.
  core::Mat3 frame;
  for (int row = 0; row < 3; ++row) {
    const int col = order[row];  // ascending -> z gets the largest
    frame[2 - row] = {vmat[0][col], vmat[1][col], vmat[2][col]};
  }
  return frame;
}

std::vector<core::Vec3> apply_frame(const std::vector<core::Vec3>& pts,
                                    const core::Mat3& frame) {
  std::vector<core::Vec3> out;
  out.reserve(pts.size());
  for (const core::Vec3& p : pts) out.push_back(core::matvec(frame, p));
  return out;
}

/// Rotate about z so the point with the largest in-plane radius lies on
/// the +x axis — fixes the azimuthal freedom left by principal-axis
/// alignment (secondary C2 axes / mirror planes pass through points).
std::vector<core::Vec3> align_azimuth(const std::vector<core::Vec3>& pts) {
  double best_r2 = 0.0;
  double angle = 0.0;
  for (const core::Vec3& p : pts) {
    const double r2 = p.x * p.x + p.y * p.y;
    if (r2 > best_r2) {
      best_r2 = r2;
      angle = std::atan2(p.y, p.x);
    }
  }
  if (best_r2 < 1e-12) return pts;  // collinear with z
  return apply_frame(pts, rotation({0.0, 0.0, 1.0}, -angle));
}

}  // namespace

bool is_invariant_under(const std::vector<core::Vec3>& pts,
                        const core::Mat3& op, double tolerance) {
  for (const core::Vec3& p : pts) {
    const core::Vec3 image = core::matvec(op, p);
    bool matched = false;
    for (const core::Vec3& q : pts) {
      if (core::norm(image - q) <= tolerance) {
        matched = true;
        break;
      }
    }
    if (!matched) return false;
  }
  return true;
}

DetectionResult detect_point_group(const std::vector<core::Vec3>& points,
                                   const DetectionOptions& opts) {
  MATSCI_CHECK(!points.empty(), "detect_point_group: empty cloud");
  MATSCI_CHECK(opts.tolerance > 0.0, "tolerance must be positive");

  const std::vector<core::Vec3> centered = center(points);
  std::vector<std::vector<core::Vec3>> frames;
  frames.push_back(centered);
  if (opts.align_frame) {
    // Principal-axis frame plus axis permutations that keep handedness —
    // degenerate spectra (cubic groups) can put the C4 axis anywhere.
    const core::Mat3 pa = principal_axes(centered);
    const std::vector<core::Vec3> aligned = apply_frame(centered, pa);
    const core::Mat3 swap_xz = core::mat3_rows({0, 0, 1}, {0, 1, 0},
                                               {-1, 0, 0});
    const core::Mat3 swap_yz = core::mat3_rows({1, 0, 0}, {0, 0, 1},
                                               {0, -1, 0});
    for (const auto& candidate :
         {aligned, apply_frame(aligned, swap_xz),
          apply_frame(aligned, swap_yz)}) {
      frames.push_back(candidate);
      frames.push_back(align_azimuth(candidate));
    }
  }

  DetectionResult best;
  const auto& catalog = point_group_catalog();
  for (std::size_t gi = 0; gi < catalog.size(); ++gi) {
    const PointGroup& g = catalog[gi];
    if (g.order() <= best.matched_operations) continue;  // cannot improve
    for (const auto& frame_pts : frames) {
      bool all = true;
      for (const core::Mat3& op : g.ops) {
        if (!is_invariant_under(frame_pts, op, opts.tolerance)) {
          all = false;
          break;
        }
      }
      if (all) {
        best.label = static_cast<std::int64_t>(gi);
        best.name = g.name;
        best.matched_operations = g.order();
        break;
      }
    }
  }
  MATSCI_CHECK(best.label >= 0,
               "detection failed even for C1 — internal error");
  return best;
}

}  // namespace matsci::sym
