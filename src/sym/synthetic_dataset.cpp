#include "sym/synthetic_dataset.hpp"

#include <cmath>

#include "core/macros.hpp"
#include "sym/symop.hpp"

namespace matsci::sym {

namespace {

/// Uniform random unit vector.
core::Vec3 random_unit(core::RngEngine& rng) {
  // Marsaglia: uniform on the sphere via normalized Gaussians.
  core::Vec3 v;
  double n = 0.0;
  do {
    v = {rng.normal(), rng.normal(), rng.normal()};
    n = core::norm(v);
  } while (n < 1e-9);
  return v * (1.0 / n);
}

}  // namespace

SyntheticPointGroupDataset::SyntheticPointGroupDataset(
    std::int64_t size, std::uint64_t seed, SyntheticPointGroupOptions opts)
    : size_(size), seed_(seed), opts_(opts) {
  MATSCI_CHECK(size >= 0, "dataset size must be non-negative");
  MATSCI_CHECK(opts.min_seed_points >= 1 &&
                   opts.max_seed_points >= opts.min_seed_points,
               "invalid seed point range");
  MATSCI_CHECK(opts.min_radius > 0.0 && opts.max_radius > opts.min_radius,
               "invalid radial shell");
}

std::int64_t SyntheticPointGroupDataset::num_classes() const {
  return num_point_groups();
}

data::StructureSample SyntheticPointGroupDataset::generate(
    const PointGroup& group, std::int64_t label, core::RngEngine& rng,
    const SyntheticPointGroupOptions& opts) {
  data::StructureSample sample;
  sample.class_targets["point_group"] = label;

  const std::int64_t order = static_cast<std::int64_t>(group.ops.size());
  // Keep the replicated cloud under the cap: fewer seeds for big groups.
  std::int64_t max_seeds_for_group =
      std::max<std::int64_t>(1, opts.max_points / std::max<std::int64_t>(order, 1));
  const std::int64_t lo = std::min(opts.min_seed_points, max_seeds_for_group);
  const std::int64_t hi = std::min(opts.max_seed_points, max_seeds_for_group);
  const std::int64_t num_seeds = lo + rng.next_int(hi - lo + 1);

  std::vector<core::Vec3> points;
  points.reserve(static_cast<std::size_t>(num_seeds * order));
  for (std::int64_t s = 0; s < num_seeds; ++s) {
    const double r = rng.uniform(opts.min_radius, opts.max_radius);
    const core::Vec3 seed = random_unit(rng) * r;
    for (const core::Mat3& op : group.ops) {
      const core::Vec3 image = core::matvec(op, seed);
      bool duplicate = false;
      // Merge images that coincide (seed sat on a symmetry element).
      for (const core::Vec3& p : points) {
        if (core::norm(p - image) < opts.merge_tolerance) {
          duplicate = true;
          break;
        }
      }
      if (!duplicate) points.push_back(image);
    }
  }

  core::Mat3 frame = core::identity3();
  if (opts.random_orientation) {
    frame = rotation(random_unit(rng), rng.uniform(0.0, 2.0 * M_PI));
  }
  sample.positions.reserve(points.size());
  for (const core::Vec3& p : points) {
    core::Vec3 q = core::matvec(frame, p);
    q += core::Vec3{rng.normal(0.0, opts.jitter_sigma),
                    rng.normal(0.0, opts.jitter_sigma),
                    rng.normal(0.0, opts.jitter_sigma)};
    sample.positions.push_back(q);
  }
  // Synthetic particles carry no chemistry: single species id 0.
  sample.species.assign(sample.positions.size(), 0);
  return sample;
}

data::StructureSample SyntheticPointGroupDataset::get(
    std::int64_t index) const {
  MATSCI_CHECK(index >= 0 && index < size_,
               "index " << index << " out of range [0, " << size_ << ")");
  core::RngEngine rng =
      core::RngEngine(seed_).fork(static_cast<std::uint64_t>(index));
  // Uniform over classes — the designed advantage over real materials
  // datasets, which are selection-biased toward particular symmetries.
  const auto& catalog = point_group_catalog();
  const std::int64_t label =
      rng.next_int(static_cast<std::int64_t>(catalog.size()));
  return generate(catalog[static_cast<std::size_t>(label)], label, rng, opts_);
}

}  // namespace matsci::sym
