#pragma once

#include <cstdint>
#include <string>

#include "data/sample.hpp"

namespace matsci::sym {

/// How a structure is canonicalized before hashing (the response-cache
/// key path in serve/frontend). The canonical form is invariant under
/// atom permutation and (by default) rigid translation, and quantizes
/// coordinates so float noise below `grid` does not split keys.
struct CanonicalOptions {
  /// Coordinate quantization in Å: positions are snapped to this grid
  /// before hashing. Two structures closer than ~grid/2 per coordinate
  /// hash identically.
  double grid = 1e-4;
  /// Subtract the centroid first (translation invariance). Disable for
  /// workloads where absolute placement is meaningful.
  bool center = true;
  /// Also rotate into the principal-axes frame before quantizing,
  /// making the key invariant under rigid rotation. Off by default:
  /// model outputs are rotation-invariant only mathematically, not
  /// bit-for-bit, so a rotation-folded cache returns answers computed
  /// for a rotated copy of the query (semantic caching). Degenerate
  /// inertia spectra (spheres, linear molecules) fold imperfectly.
  bool align_principal_axes = false;
};

/// 64-bit FNV-1a hash of the canonical form of `sample`: sorted
/// (species, quantized position) records plus the quantized lattice and
/// the dataset id. Everything that feeds a forward pass is hashed;
/// labels (scalar/class targets, forces) are not. Deterministic across
/// runs and platforms for identical inputs.
std::uint64_t canonical_structure_hash(const data::StructureSample& sample,
                                       const CanonicalOptions& opts = {});

/// FNV-1a over a byte string (seed chaining: pass a previous hash as
/// `seed` to combine).
std::uint64_t fnv1a64(const void* data, std::size_t bytes,
                      std::uint64_t seed = 0xcbf29ce484222325ull);

/// Convenience: hash a std::string with FNV-1a (seed-chainable).
std::uint64_t fnv1a64(const std::string& s,
                      std::uint64_t seed = 0xcbf29ce484222325ull);

}  // namespace matsci::sym
