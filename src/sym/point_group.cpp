#include "sym/point_group.hpp"

#include <mutex>

#include "core/macros.hpp"
#include "sym/symop.hpp"

namespace matsci::sym {

namespace {

PointGroup make_group(std::string name,
                      const std::vector<core::Mat3>& generators,
                      std::size_t expected_order) {
  PointGroup g;
  g.name = std::move(name);
  g.ops = close_group(generators);
  MATSCI_CHECK(g.ops.size() == expected_order,
               "point group " << g.name << " closed to " << g.ops.size()
                              << " ops, expected " << expected_order);
  return g;
}

std::vector<PointGroup> build_catalog() {
  using core::Mat3;
  using core::Vec3;

  const Mat3 sigma_h = reflection({0.0, 0.0, 1.0});   // xy plane
  const Mat3 sigma_v = reflection({0.0, 1.0, 0.0});   // xz plane
  const Mat3 c2x = rotation({1.0, 0.0, 0.0}, M_PI);
  const Mat3 inv = inversion();
  // Cubic generators: threefold about the body diagonal is the cyclic
  // coordinate permutation (x,y,z) -> (z,x,y).
  const Mat3 c3_111 = core::mat3_rows({0.0, 0.0, 1.0}, {1.0, 0.0, 0.0},
                                      {0.0, 1.0, 0.0});
  const Mat3 c4z = rotation_z(4);
  const Mat3 c2z = rotation_z(2);
  const Mat3 s4z = improper_rotation_z(4);

  std::vector<PointGroup> catalog;
  catalog.reserve(32);

  // Triclinic / monoclinic low-symmetry groups.
  catalog.push_back(make_group("C1", {}, 1));
  catalog.push_back(make_group("Ci", {inv}, 2));
  catalog.push_back(make_group("Cs", {sigma_h}, 2));

  // Cyclic Cn.
  for (const std::int64_t n : {2, 3, 4, 6}) {
    catalog.push_back(make_group("C" + std::to_string(n), {rotation_z(n)},
                                 static_cast<std::size_t>(n)));
  }
  // Pyramidal Cnv.
  for (const std::int64_t n : {2, 3, 4, 6}) {
    catalog.push_back(make_group("C" + std::to_string(n) + "v",
                                 {rotation_z(n), sigma_v},
                                 static_cast<std::size_t>(2 * n)));
  }
  // Cnh (rotation + horizontal mirror).
  for (const std::int64_t n : {2, 3, 4, 6}) {
    catalog.push_back(make_group("C" + std::to_string(n) + "h",
                                 {rotation_z(n), sigma_h},
                                 static_cast<std::size_t>(2 * n)));
  }
  // Dihedral Dn.
  for (const std::int64_t n : {2, 3, 4, 6}) {
    catalog.push_back(make_group("D" + std::to_string(n),
                                 {rotation_z(n), c2x},
                                 static_cast<std::size_t>(2 * n)));
  }
  // Prismatic Dnh.
  for (const std::int64_t n : {2, 3, 4, 6}) {
    catalog.push_back(make_group("D" + std::to_string(n) + "h",
                                 {rotation_z(n), c2x, sigma_h},
                                 static_cast<std::size_t>(4 * n)));
  }
  // Antiprismatic Dnd (S_2n axis + perpendicular C2).
  for (const std::int64_t n : {2, 3}) {
    catalog.push_back(make_group("D" + std::to_string(n) + "d",
                                 {improper_rotation_z(2 * n), c2x},
                                 static_cast<std::size_t>(4 * n)));
  }
  // Improper cyclic.
  catalog.push_back(make_group("S4", {s4z}, 4));
  catalog.push_back(make_group("S6", {improper_rotation_z(6)}, 6));

  // Cubic groups.
  catalog.push_back(make_group("T", {c3_111, c2z}, 12));
  catalog.push_back(make_group("Th", {c3_111, c2z, inv}, 24));
  catalog.push_back(make_group("Td", {c3_111, s4z}, 24));
  catalog.push_back(make_group("O", {c3_111, c4z}, 24));
  catalog.push_back(make_group("Oh", {c3_111, c4z, inv}, 48));

  MATSCI_CHECK(catalog.size() == 32, "expected the 32 crystallographic "
                                     "point groups, built "
                                         << catalog.size());
  return catalog;
}

}  // namespace

const std::vector<PointGroup>& point_group_catalog() {
  static const std::vector<PointGroup> catalog = build_catalog();
  return catalog;
}

std::int64_t num_point_groups() {
  return static_cast<std::int64_t>(point_group_catalog().size());
}

const PointGroup& point_group_by_name(const std::string& name) {
  for (const PointGroup& g : point_group_catalog()) {
    if (g.name == name) return g;
  }
  MATSCI_CHECK(false, "unknown point group '" << name << "'");
  // Unreachable; silences the compiler.
  return point_group_catalog().front();
}

}  // namespace matsci::sym
