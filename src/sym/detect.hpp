#pragma once

#include <string>
#include <vector>

#include "core/vec3.hpp"
#include "sym/point_group.hpp"

namespace matsci::sym {

struct DetectionOptions {
  /// A candidate operation is accepted when every point's image lies
  /// within this distance of some point of the cloud (Å).
  double tolerance = 0.1;
  /// Try this many candidate reference frames (principal-axis
  /// permutations/flips) when the cloud is not axis-aligned.
  bool align_frame = true;
};

struct DetectionResult {
  std::int64_t label = -1;          ///< index into point_group_catalog()
  std::string name = "none";
  std::size_t matched_operations = 0;
};

/// Classical exact-ish point-group detector: centers the cloud, optionally
/// aligns its principal axes to the coordinate frame, then tests every
/// catalog group's operations for set-invariance within `tolerance` and
/// returns the largest fully matching group. The algorithmic baseline the
/// learned classifier is compared against (see the pretraining ablation):
/// exact on clean clouds, brittle under jitter, O(|G|·n²) per candidate.
DetectionResult detect_point_group(const std::vector<core::Vec3>& points,
                                   const DetectionOptions& opts = {});

/// True when `op` maps the centered cloud onto itself within tolerance.
bool is_invariant_under(const std::vector<core::Vec3>& centered_points,
                        const core::Mat3& op, double tolerance);

}  // namespace matsci::sym
