#pragma once

#include "core/random.hpp"
#include "data/sample.hpp"
#include "sym/point_group.hpp"

namespace matsci::sym {

struct SyntheticPointGroupOptions {
  /// Seed particles placed in the asymmetric wedge before replication.
  std::int64_t min_seed_points = 2;
  std::int64_t max_seed_points = 5;
  /// Radial shell the seed points are sampled in (avoids the origin,
  /// where every operation is degenerate).
  double min_radius = 0.8;
  double max_radius = 3.0;
  /// Gaussian positional jitter applied after replication (Å). Small
  /// enough to keep the symmetry recognizable, large enough to prevent
  /// exact-coincidence shortcuts.
  double jitter_sigma = 0.02;
  /// Merge replicated points closer than this (seed points on a symmetry
  /// element map onto themselves).
  double merge_tolerance = 1e-6;
  /// Apply a random global rotation so the symmetry axes are not aligned
  /// with the coordinate frame (forces equivariant treatment).
  bool random_orientation = true;
  /// Cap on the final point count; groups whose replication exceeds this
  /// are resampled with fewer seeds.
  std::int64_t max_points = 96;
};

/// The paper's synthetic pretraining task (§3.1): each sample is a point
/// cloud built by replicating randomly placed particles under every
/// operation of a randomly chosen point group; the label is the group.
/// Samples are generated deterministically from (seed, index), so the
/// dataset supports arbitrary sizes (the paper uses 2M samples) with no
/// storage, and every class is uniformly represented.
class SyntheticPointGroupDataset : public data::StructureDataset {
 public:
  SyntheticPointGroupDataset(std::int64_t size, std::uint64_t seed,
                             SyntheticPointGroupOptions opts = {});

  std::int64_t size() const override { return size_; }
  data::StructureSample get(std::int64_t index) const override;
  std::string name() const override { return "SyntheticPointGroups"; }

  std::int64_t num_classes() const;
  const SyntheticPointGroupOptions& options() const { return opts_; }

  /// Build one labeled cloud from an explicit group + RNG (exposed for
  /// tests and for the dataset-cartography example).
  static data::StructureSample generate(const PointGroup& group,
                                        std::int64_t label,
                                        core::RngEngine& rng,
                                        const SyntheticPointGroupOptions& opts);

 private:
  std::int64_t size_;
  std::uint64_t seed_;
  SyntheticPointGroupOptions opts_;
};

}  // namespace matsci::sym
