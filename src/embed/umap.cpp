#include "embed/umap.hpp"

#include <algorithm>
#include <cmath>
#include <unordered_map>

#include "core/macros.hpp"
#include "core/random.hpp"
#include "embed/kdtree.hpp"
#include "embed/pca.hpp"

namespace matsci::embed {

namespace {

constexpr double kSmoothTolerance = 1e-5;
constexpr int kSmoothIterations = 64;
constexpr double kClip = 4.0;

/// Solve for sigma_i such that sum_j exp(-(d_ij - rho_i)/sigma) = log2(k).
double smooth_knn_sigma(const std::vector<double>& dists, double rho,
                        double target) {
  double lo = 0.0, hi = 1e30, mid = 1.0;
  for (int it = 0; it < kSmoothIterations; ++it) {
    double sum = 0.0;
    for (const double d : dists) {
      const double shifted = d - rho;
      sum += shifted > 0.0 ? std::exp(-shifted / mid) : 1.0;
    }
    if (std::fabs(sum - target) < kSmoothTolerance) break;
    if (sum > target) {
      hi = mid;
      mid = (lo + hi) / 2.0;
    } else {
      lo = mid;
      mid = hi >= 1e30 ? mid * 2.0 : (lo + hi) / 2.0;
    }
  }
  return std::max(mid, 1e-10);
}

struct WeightedEdge {
  std::int64_t i, j;
  double weight;
};

}  // namespace

std::pair<double, double> fit_ab(double min_dist) {
  MATSCI_CHECK(min_dist >= 0.0, "min_dist must be non-negative");
  // Least squares on a dense grid via gradient descent — 2 parameters,
  // smooth objective, converges quickly from the canonical (1.0, 1.0).
  const int grid = 300;
  const double span = 3.0;
  std::vector<double> xs(grid), ys(grid);
  for (int g = 0; g < grid; ++g) {
    const double d = span * (g + 1) / grid;
    xs[g] = d;
    ys[g] = d <= min_dist ? 1.0 : std::exp(-(d - min_dist));
  }
  auto loss_at = [&](double a, double b) {
    double loss = 0.0;
    for (int g = 0; g < grid; ++g) {
      const double f = 1.0 / (1.0 + a * std::pow(xs[g] * xs[g], b));
      loss += (f - ys[g]) * (f - ys[g]);
    }
    return loss;
  };
  // Coarse grid search followed by iterated local refinement — robust and
  // deterministic for a 2-parameter smooth objective.
  double best_a = 1.0, best_b = 1.0;
  double best = loss_at(best_a, best_b);
  for (double a = 0.05; a <= 10.0; a *= 1.15) {
    for (double b = 0.2; b <= 3.0; b += 0.05) {
      const double l = loss_at(a, b);
      if (l < best) {
        best = l;
        best_a = a;
        best_b = b;
      }
    }
  }
  double step_a = best_a * 0.1, step_b = 0.02;
  for (int round = 0; round < 60; ++round) {
    bool improved = false;
    for (const auto& [da, db] :
         {std::pair{step_a, 0.0}, std::pair{-step_a, 0.0},
          std::pair{0.0, step_b}, std::pair{0.0, -step_b}}) {
      const double ca = std::clamp(best_a + da, 1e-3, 20.0);
      const double cb = std::clamp(best_b + db, 0.05, 4.0);
      const double l = loss_at(ca, cb);
      if (l < best) {
        best = l;
        best_a = ca;
        best_b = cb;
        improved = true;
      }
    }
    if (!improved) {
      step_a *= 0.5;
      step_b *= 0.5;
    }
  }
  return {best_a, best_b};
}

UMAPResult umap(const core::Tensor& x, const UMAPOptions& opts) {
  MATSCI_CHECK(x.defined() && x.dim() == 2, "umap requires [N, D] input");
  const std::int64_t n = x.size(0);
  MATSCI_CHECK(n >= 4, "umap needs at least 4 points");
  const std::int64_t k = std::min<std::int64_t>(opts.n_neighbors, n - 1);
  MATSCI_CHECK(k >= 2, "n_neighbors too small");
  MATSCI_CHECK(opts.n_components >= 1, "n_components must be >= 1");

  // 1. Exact kNN graph.
  KDTree tree(x);
  std::vector<KnnResult> knn(static_cast<std::size_t>(n));
  for (std::int64_t i = 0; i < n; ++i) {
    knn[static_cast<std::size_t>(i)] = tree.knn_of_point(i, k);
  }

  // 2. Smooth-kNN calibration (rho = nearest distance, sigma from binary
  //    search) and directed membership strengths.
  const double target = std::log2(static_cast<double>(k));
  std::unordered_map<std::int64_t, double> directed;
  directed.reserve(static_cast<std::size_t>(n * k));
  auto key = [n](std::int64_t i, std::int64_t j) { return i * n + j; };
  for (std::int64_t i = 0; i < n; ++i) {
    const auto& res = knn[static_cast<std::size_t>(i)];
    const double rho = res.distances.front();
    const double sigma = smooth_knn_sigma(res.distances, rho, target);
    for (std::size_t nb = 0; nb < res.indices.size(); ++nb) {
      const double shifted = res.distances[nb] - rho;
      const double w = shifted > 0.0 ? std::exp(-shifted / sigma) : 1.0;
      directed[key(i, res.indices[nb])] = w;
    }
  }

  // 3. Fuzzy-union symmetrization: w = w_ij + w_ji − w_ij w_ji.
  std::vector<WeightedEdge> edges;
  edges.reserve(directed.size());
  for (const auto& [ij, w] : directed) {
    const std::int64_t i = ij / n, j = ij % n;
    if (j < i && directed.count(key(j, i))) continue;  // handled symmetric
    const auto rev = directed.find(key(j, i));
    const double wr = rev != directed.end() ? rev->second : 0.0;
    edges.push_back({i, j, w + wr - w * wr});
  }

  // 4. Curve fit.
  auto [a, b] = fit_ab(opts.min_dist);

  // 5. Layout init.
  const std::int64_t dim = opts.n_components;
  std::vector<float> y(static_cast<std::size_t>(n * dim));
  core::RngEngine rng(opts.seed);
  if (opts.pca_init && x.size(1) >= dim) {
    PCAResult p = pca(x, dim, 96, opts.seed);
    // Rescale init to a ~10-unit box (standard UMAP practice).
    float max_abs = 1e-9f;
    for (const float v : p.projected.span()) {
      max_abs = std::max(max_abs, std::fabs(v));
    }
    const float scale = 10.0f / max_abs;
    const float* pp = p.projected.data();
    for (std::int64_t i = 0; i < n * dim; ++i) y[static_cast<std::size_t>(i)] = pp[i] * scale;
  } else {
    for (float& v : y) v = static_cast<float>(rng.uniform(-10.0, 10.0));
  }

  // 6. Negative-sampling SGD with per-edge sampling schedules.
  double max_w = 0.0;
  for (const auto& e : edges) max_w = std::max(max_w, e.weight);
  MATSCI_CHECK(max_w > 0.0, "degenerate fuzzy graph");
  std::vector<double> epochs_per_sample(edges.size());
  for (std::size_t e = 0; e < edges.size(); ++e) {
    epochs_per_sample[e] = max_w / edges[e].weight;  // sample ∝ weight
  }
  std::vector<double> next_sample(epochs_per_sample.begin(),
                                  epochs_per_sample.end());

  auto attract_grad = [a, b](double d2) {
    // dψ/d(d²) coefficient for the attractive term.
    const double pd = std::pow(d2, b - 1.0);
    return (-2.0 * a * b * pd) / (1.0 + a * pd * d2);
  };
  auto repel_grad = [a, b](double d2) {
    const double pd = std::pow(d2, b);
    return (2.0 * b) / ((0.001 + d2) * (1.0 + a * pd));
  };

  for (std::int64_t epoch = 0; epoch < opts.n_epochs; ++epoch) {
    const double alpha =
        opts.learning_rate *
        (1.0 - static_cast<double>(epoch) / static_cast<double>(opts.n_epochs));
    for (std::size_t e = 0; e < edges.size(); ++e) {
      if (next_sample[e] > static_cast<double>(epoch + 1)) continue;
      next_sample[e] += epochs_per_sample[e];
      const std::int64_t i = edges[e].i, j = edges[e].j;
      float* yi = y.data() + i * dim;
      float* yj = y.data() + j * dim;

      double d2 = 0.0;
      for (std::int64_t c = 0; c < dim; ++c) {
        const double diff = static_cast<double>(yi[c]) - yj[c];
        d2 += diff * diff;
      }
      if (d2 > 1e-12) {
        const double g = attract_grad(d2);
        for (std::int64_t c = 0; c < dim; ++c) {
          const double diff = static_cast<double>(yi[c]) - yj[c];
          const double step =
              std::clamp(g * diff, -kClip, kClip) * alpha;
          yi[c] += static_cast<float>(step);
          yj[c] -= static_cast<float>(step);
        }
      }

      const std::int64_t negs =
          static_cast<std::int64_t>(opts.negative_sample_rate);
      for (std::int64_t s = 0; s < negs; ++s) {
        const std::int64_t r = rng.next_int(n);
        if (r == i) continue;
        float* yr = y.data() + r * dim;
        double rd2 = 0.0;
        for (std::int64_t c = 0; c < dim; ++c) {
          const double diff = static_cast<double>(yi[c]) - yr[c];
          rd2 += diff * diff;
        }
        const double g = rd2 > 1e-12 ? repel_grad(rd2) : kClip;
        for (std::int64_t c = 0; c < dim; ++c) {
          const double diff = static_cast<double>(yi[c]) - yr[c];
          const double step = std::clamp(g * diff, -kClip, kClip) * alpha;
          yi[c] += static_cast<float>(step);
        }
      }
    }
  }

  UMAPResult result;
  result.embedding = core::Tensor::from_vector(std::move(y), {n, dim});
  result.fitted_a = a;
  result.fitted_b = b;
  return result;
}

double knn_preservation(const core::Tensor& high, const core::Tensor& low,
                        std::int64_t k) {
  MATSCI_CHECK(high.size(0) == low.size(0),
               "knn_preservation: row count mismatch");
  const std::int64_t n = high.size(0);
  MATSCI_CHECK(k >= 1 && k < n, "bad k for knn_preservation");
  KDTree th(high), tl(low);
  double total = 0.0;
  for (std::int64_t i = 0; i < n; ++i) {
    const auto hi = th.knn_of_point(i, k);
    const auto lo = tl.knn_of_point(i, k);
    std::int64_t shared = 0;
    for (const std::int64_t a : lo.indices) {
      if (std::find(hi.indices.begin(), hi.indices.end(), a) !=
          hi.indices.end()) {
        ++shared;
      }
    }
    total += static_cast<double>(shared) / static_cast<double>(k);
  }
  return total / static_cast<double>(n);
}

}  // namespace matsci::embed
