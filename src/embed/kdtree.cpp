#include "embed/kdtree.hpp"

#include <algorithm>
#include <cmath>

#include "core/macros.hpp"

namespace matsci::embed {

KDTree::KDTree(const core::Tensor& points, std::int64_t leaf_size)
    : leaf_size_(leaf_size) {
  MATSCI_CHECK(points.defined() && points.dim() == 2,
               "KDTree requires an [N, D] tensor");
  MATSCI_CHECK(leaf_size >= 1, "leaf_size must be >= 1");
  n_ = points.size(0);
  d_ = points.size(1);
  data_.assign(points.data(), points.data() + n_ * d_);
  order_.resize(static_cast<std::size_t>(n_));
  for (std::int64_t i = 0; i < n_; ++i) order_[static_cast<std::size_t>(i)] = i;
  if (n_ > 0) root_ = build(0, n_);
}

std::int64_t KDTree::build(std::int64_t begin, std::int64_t end) {
  Node node;
  node.begin = begin;
  node.end = end;
  const std::int64_t count = end - begin;
  if (count <= leaf_size_) {
    nodes_.push_back(node);
    return static_cast<std::int64_t>(nodes_.size()) - 1;
  }

  // Split on the axis with the largest spread over this range.
  std::int64_t best_axis = 0;
  float best_spread = -1.0f;
  for (std::int64_t a = 0; a < d_; ++a) {
    float lo = 1e30f, hi = -1e30f;
    for (std::int64_t i = begin; i < end; ++i) {
      const float v =
          data_[static_cast<std::size_t>(order_[static_cast<std::size_t>(i)] * d_ + a)];
      lo = std::min(lo, v);
      hi = std::max(hi, v);
    }
    if (hi - lo > best_spread) {
      best_spread = hi - lo;
      best_axis = a;
    }
  }
  node.axis = best_axis;

  const std::int64_t mid = begin + count / 2;
  std::nth_element(order_.begin() + begin, order_.begin() + mid,
                   order_.begin() + end,
                   [&](std::int64_t x, std::int64_t y) {
                     return data_[static_cast<std::size_t>(x * d_ + best_axis)] <
                            data_[static_cast<std::size_t>(y * d_ + best_axis)];
                   });
  node.split = data_[static_cast<std::size_t>(
      order_[static_cast<std::size_t>(mid)] * d_ + best_axis)];

  // Reserve our slot before recursing.
  nodes_.push_back(node);
  const std::int64_t self = static_cast<std::int64_t>(nodes_.size()) - 1;
  const std::int64_t left = build(begin, mid);
  const std::int64_t right = build(mid, end);
  nodes_[static_cast<std::size_t>(self)].left = left;
  nodes_[static_cast<std::size_t>(self)].right = right;
  return self;
}

void KDTree::search(std::int64_t node_id, std::span<const float> query,
                    std::int64_t k, std::int64_t exclude,
                    std::vector<std::pair<double, std::int64_t>>& heap) const {
  const Node& node = nodes_[static_cast<std::size_t>(node_id)];
  if (node.left < 0) {  // leaf
    for (std::int64_t i = node.begin; i < node.end; ++i) {
      const std::int64_t row = order_[static_cast<std::size_t>(i)];
      if (row == exclude) continue;
      double d2 = 0.0;
      const float* p = data_.data() + row * d_;
      for (std::int64_t a = 0; a < d_; ++a) {
        const double diff = static_cast<double>(query[static_cast<std::size_t>(a)]) - p[a];
        d2 += diff * diff;
      }
      if (static_cast<std::int64_t>(heap.size()) < k) {
        heap.emplace_back(d2, row);
        std::push_heap(heap.begin(), heap.end());
      } else if (d2 < heap.front().first) {
        std::pop_heap(heap.begin(), heap.end());
        heap.back() = {d2, row};
        std::push_heap(heap.begin(), heap.end());
      }
    }
    return;
  }
  const float qv = query[static_cast<std::size_t>(node.axis)];
  const std::int64_t near = qv < node.split ? node.left : node.right;
  const std::int64_t far = qv < node.split ? node.right : node.left;
  search(near, query, k, exclude, heap);
  const double margin = static_cast<double>(qv) - node.split;
  if (static_cast<std::int64_t>(heap.size()) < k ||
      margin * margin < heap.front().first) {
    search(far, query, k, exclude, heap);
  }
}

KnnResult KDTree::knn(std::span<const float> query, std::int64_t k,
                      std::int64_t exclude) const {
  MATSCI_CHECK(static_cast<std::int64_t>(query.size()) == d_,
               "query dimension " << query.size() << " != " << d_);
  MATSCI_CHECK(k >= 1, "k must be >= 1");
  const std::int64_t available = n_ - (exclude >= 0 ? 1 : 0);
  MATSCI_CHECK(k <= available,
               "k=" << k << " exceeds available points " << available);
  std::vector<std::pair<double, std::int64_t>> heap;
  heap.reserve(static_cast<std::size_t>(k) + 1);
  search(root_, query, k, exclude, heap);
  std::sort_heap(heap.begin(), heap.end());
  KnnResult out;
  out.indices.reserve(heap.size());
  out.distances.reserve(heap.size());
  for (const auto& [d2, idx] : heap) {
    out.indices.push_back(idx);
    out.distances.push_back(std::sqrt(d2));
  }
  return out;
}

KnnResult KDTree::knn_of_point(std::int64_t i, std::int64_t k) const {
  MATSCI_CHECK(i >= 0 && i < n_, "point index out of range");
  return knn(std::span<const float>(data_.data() + i * d_,
                                    static_cast<std::size_t>(d_)),
             k, /*exclude=*/i);
}

}  // namespace matsci::embed
