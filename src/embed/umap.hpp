#pragma once

#include "core/tensor.hpp"

namespace matsci::embed {

/// UMAP (McInnes et al. 2018) — the structure-preserving projection the
/// paper uses for dataset cartography (Fig. 4). Full from-scratch
/// implementation: exact kNN (kd-tree), smooth-kNN bandwidth calibration,
/// fuzzy simplicial-set symmetrization, differentiable-curve (a, b) fit
/// from min_dist, and negative-sampling SGD layout.
struct UMAPOptions {
  std::int64_t n_neighbors = 15;   ///< paper Fig. 4 uses 200 at 50k points
  double min_dist = 0.1;           ///< paper Fig. 4 uses 0.05
  std::int64_t n_components = 2;
  std::int64_t n_epochs = 200;
  double learning_rate = 1.0;
  double negative_sample_rate = 5.0;
  std::uint64_t seed = 42;
  bool pca_init = true;            ///< PCA layout init (else random)
};

struct UMAPResult {
  core::Tensor embedding;  ///< [N, n_components]
  double fitted_a = 0.0;   ///< low-dim curve parameters
  double fitted_b = 0.0;
};

UMAPResult umap(const core::Tensor& x, const UMAPOptions& opts = {});

/// Fit the (a, b) parameters of the low-dimensional similarity curve
/// 1/(1 + a d^{2b}) to the target psi(d) = exp(-(d - min_dist)) for
/// d > min_dist, 1 otherwise. Exposed for tests.
std::pair<double, double> fit_ab(double min_dist);

/// Embedding quality proxy: trustworthiness-style fraction of each
/// point's low-dim kNN that are also high-dim kNN (mean over points).
double knn_preservation(const core::Tensor& high, const core::Tensor& low,
                        std::int64_t k);

}  // namespace matsci::embed
