#include "embed/pca.hpp"

#include <cmath>

#include "core/macros.hpp"
#include "core/random.hpp"

namespace matsci::embed {

PCAResult pca(const core::Tensor& x, std::int64_t k,
              std::int64_t power_iterations, std::uint64_t seed) {
  MATSCI_CHECK(x.defined() && x.dim() == 2, "pca requires [N, D] input");
  const std::int64_t n = x.size(0), d = x.size(1);
  MATSCI_CHECK(k >= 1 && k <= d, "pca: k=" << k << " for D=" << d);
  MATSCI_CHECK(n >= 2, "pca needs at least two rows");

  PCAResult result;
  result.mean.assign(static_cast<std::size_t>(d), 0.0f);
  const float* px = x.data();
  for (std::int64_t i = 0; i < n; ++i) {
    for (std::int64_t j = 0; j < d; ++j) {
      result.mean[static_cast<std::size_t>(j)] += px[i * d + j];
    }
  }
  for (float& m : result.mean) m /= static_cast<float>(n);

  // Covariance C = Xcᵀ Xc / N (double accumulation).
  std::vector<double> cov(static_cast<std::size_t>(d * d), 0.0);
  for (std::int64_t i = 0; i < n; ++i) {
    for (std::int64_t a = 0; a < d; ++a) {
      const double va = px[i * d + a] - result.mean[static_cast<std::size_t>(a)];
      if (va == 0.0) continue;
      for (std::int64_t b = a; b < d; ++b) {
        cov[static_cast<std::size_t>(a * d + b)] +=
            va * (px[i * d + b] - result.mean[static_cast<std::size_t>(b)]);
      }
    }
  }
  for (std::int64_t a = 0; a < d; ++a) {
    for (std::int64_t b = a; b < d; ++b) {
      cov[static_cast<std::size_t>(a * d + b)] /= static_cast<double>(n);
      cov[static_cast<std::size_t>(b * d + a)] =
          cov[static_cast<std::size_t>(a * d + b)];
    }
  }

  core::RngEngine rng(seed);
  std::vector<std::vector<double>> comps;
  for (std::int64_t c = 0; c < k; ++c) {
    std::vector<double> v(static_cast<std::size_t>(d));
    for (double& e : v) e = rng.normal();
    double lambda = 0.0;
    for (std::int64_t it = 0; it < power_iterations; ++it) {
      // w = C v, then deflate against found components.
      std::vector<double> w(static_cast<std::size_t>(d), 0.0);
      for (std::int64_t a = 0; a < d; ++a) {
        double acc = 0.0;
        for (std::int64_t b = 0; b < d; ++b) {
          acc += cov[static_cast<std::size_t>(a * d + b)] *
                 v[static_cast<std::size_t>(b)];
        }
        w[static_cast<std::size_t>(a)] = acc;
      }
      for (const auto& prev : comps) {
        double proj = 0.0;
        for (std::int64_t a = 0; a < d; ++a) {
          proj += w[static_cast<std::size_t>(a)] * prev[static_cast<std::size_t>(a)];
        }
        for (std::int64_t a = 0; a < d; ++a) {
          w[static_cast<std::size_t>(a)] -= proj * prev[static_cast<std::size_t>(a)];
        }
      }
      double norm = 0.0;
      for (const double e : w) norm += e * e;
      norm = std::sqrt(norm);
      if (norm < 1e-14) break;  // exhausted variance
      lambda = norm;
      for (std::int64_t a = 0; a < d; ++a) {
        v[static_cast<std::size_t>(a)] = w[static_cast<std::size_t>(a)] / norm;
      }
    }
    result.explained_variance.push_back(lambda);
    comps.push_back(std::move(v));
  }

  std::vector<float> comp_data;
  comp_data.reserve(static_cast<std::size_t>(k * d));
  for (const auto& c : comps) {
    for (const double e : c) comp_data.push_back(static_cast<float>(e));
  }
  result.components = core::Tensor::from_vector(std::move(comp_data), {k, d});

  std::vector<float> proj(static_cast<std::size_t>(n * k), 0.0f);
  for (std::int64_t i = 0; i < n; ++i) {
    for (std::int64_t c = 0; c < k; ++c) {
      double acc = 0.0;
      for (std::int64_t j = 0; j < d; ++j) {
        acc += (px[i * d + j] - result.mean[static_cast<std::size_t>(j)]) *
               comps[static_cast<std::size_t>(c)][static_cast<std::size_t>(j)];
      }
      proj[static_cast<std::size_t>(i * k + c)] = static_cast<float>(acc);
    }
  }
  result.projected = core::Tensor::from_vector(std::move(proj), {n, k});
  return result;
}

}  // namespace matsci::embed
