#pragma once

#include <cstdint>
#include <vector>

#include "core/tensor.hpp"

namespace matsci::embed {

/// k-nearest-neighbor result: parallel index/distance arrays sorted by
/// ascending distance.
struct KnnResult {
  std::vector<std::int64_t> indices;
  std::vector<double> distances;
};

/// Static kd-tree over the rows of an [N, D] matrix (Euclidean metric).
/// Exact search with branch-and-bound pruning; degrades gracefully to
/// near-linear scans in high dimension, which is acceptable at the
/// Fig. 4 scale (a few thousand embeddings).
class KDTree {
 public:
  explicit KDTree(const core::Tensor& points, std::int64_t leaf_size = 16);

  std::int64_t size() const { return n_; }
  std::int64_t dim() const { return d_; }

  /// k nearest rows to `query` (k <= size()). `exclude` removes one index
  /// from consideration (pass the query's own index for self-exclusion).
  KnnResult knn(std::span<const float> query, std::int64_t k,
                std::int64_t exclude = -1) const;

  /// Convenience: kNN of the i-th stored point, excluding itself.
  KnnResult knn_of_point(std::int64_t i, std::int64_t k) const;

 private:
  struct Node {
    std::int64_t left = -1, right = -1;  ///< children; -1 = leaf
    std::int64_t begin = 0, end = 0;     ///< index range (leaves)
    std::int64_t axis = 0;
    float split = 0.0f;
  };

  std::int64_t build(std::int64_t begin, std::int64_t end);
  void search(std::int64_t node, std::span<const float> query, std::int64_t k,
              std::int64_t exclude,
              std::vector<std::pair<double, std::int64_t>>& heap) const;

  std::int64_t n_ = 0, d_ = 0, leaf_size_ = 16;
  std::vector<float> data_;            ///< row-major copy
  std::vector<std::int64_t> order_;    ///< permutation into data rows
  std::vector<Node> nodes_;
  std::int64_t root_ = -1;
};

}  // namespace matsci::embed
