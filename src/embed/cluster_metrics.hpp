#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/tensor.hpp"

namespace matsci::embed {

/// Quantitative versions of the qualitative claims the paper draws from
/// the Fig. 4 UMAP — cluster compactness, pairwise dataset separation,
/// and neighborhood overlap between dataset pairs.
struct ClusterStats {
  std::int64_t label = 0;
  std::int64_t count = 0;
  std::vector<double> centroid;
  double mean_radius = 0.0;  ///< mean distance to own centroid ("spread")
};

/// Per-label statistics over an [N, D] point set.
std::vector<ClusterStats> cluster_stats(
    const core::Tensor& points, const std::vector<std::int64_t>& labels);

/// Pairwise centroid distance matrix indexed by label rank.
std::vector<std::vector<double>> centroid_distances(
    const std::vector<ClusterStats>& stats);

/// Mean silhouette coefficient (O(N²); use modest N).
double silhouette_score(const core::Tensor& points,
                        const std::vector<std::int64_t>& labels);

/// Fraction of label-a points whose k nearest neighbors contain at least
/// one label-b point — the "OC20/OC22 overlap significantly" measurement.
double neighbor_overlap(const core::Tensor& points,
                        const std::vector<std::int64_t>& labels,
                        std::int64_t label_a, std::int64_t label_b,
                        std::int64_t k);

/// Isolation score of one label: min over other labels of
/// (centroid distance / (radius_a + radius_other)). > 1 means the cluster
/// stands clear of every other — the LiPS calibration check.
double isolation_score(const std::vector<ClusterStats>& stats,
                       std::int64_t label);

}  // namespace matsci::embed
