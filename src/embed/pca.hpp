#pragma once

#include "core/tensor.hpp"

namespace matsci::embed {

/// Principal component analysis by power iteration with deflation.
/// Small-D friendly (covariance is formed explicitly, D×D) — used to
/// initialize UMAP layouts and as a baseline projection.
struct PCAResult {
  core::Tensor components;   ///< [k, D] row-wise principal axes
  core::Tensor projected;    ///< [N, k] centered data times componentsᵀ
  std::vector<double> explained_variance;  ///< eigenvalues, descending
  std::vector<float> mean;   ///< feature means used for centering
};

PCAResult pca(const core::Tensor& x, std::int64_t k,
              std::int64_t power_iterations = 128, std::uint64_t seed = 17);

}  // namespace matsci::embed
