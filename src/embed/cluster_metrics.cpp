#include "embed/cluster_metrics.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>

#include "core/macros.hpp"
#include "embed/kdtree.hpp"

namespace matsci::embed {

namespace {
double row_distance(const float* a, const float* b, std::int64_t d) {
  double acc = 0.0;
  for (std::int64_t c = 0; c < d; ++c) {
    const double diff = static_cast<double>(a[c]) - b[c];
    acc += diff * diff;
  }
  return std::sqrt(acc);
}
}  // namespace

std::vector<ClusterStats> cluster_stats(
    const core::Tensor& points, const std::vector<std::int64_t>& labels) {
  MATSCI_CHECK(points.defined() && points.dim() == 2,
               "cluster_stats requires [N, D] points");
  const std::int64_t n = points.size(0), d = points.size(1);
  MATSCI_CHECK(static_cast<std::int64_t>(labels.size()) == n,
               "labels size mismatch");
  std::map<std::int64_t, ClusterStats> by_label;
  const float* p = points.data();
  for (std::int64_t i = 0; i < n; ++i) {
    ClusterStats& cs = by_label[labels[static_cast<std::size_t>(i)]];
    if (cs.centroid.empty()) {
      cs.label = labels[static_cast<std::size_t>(i)];
      cs.centroid.assign(static_cast<std::size_t>(d), 0.0);
    }
    ++cs.count;
    for (std::int64_t c = 0; c < d; ++c) {
      cs.centroid[static_cast<std::size_t>(c)] += p[i * d + c];
    }
  }
  for (auto& [_, cs] : by_label) {
    for (double& v : cs.centroid) v /= static_cast<double>(cs.count);
  }
  for (std::int64_t i = 0; i < n; ++i) {
    ClusterStats& cs = by_label[labels[static_cast<std::size_t>(i)]];
    double acc = 0.0;
    for (std::int64_t c = 0; c < d; ++c) {
      const double diff =
          static_cast<double>(p[i * d + c]) - cs.centroid[static_cast<std::size_t>(c)];
      acc += diff * diff;
    }
    cs.mean_radius += std::sqrt(acc);
  }
  std::vector<ClusterStats> out;
  for (auto& [_, cs] : by_label) {
    cs.mean_radius /= static_cast<double>(cs.count);
    out.push_back(std::move(cs));
  }
  return out;
}

std::vector<std::vector<double>> centroid_distances(
    const std::vector<ClusterStats>& stats) {
  const std::size_t m = stats.size();
  std::vector<std::vector<double>> dist(m, std::vector<double>(m, 0.0));
  for (std::size_t a = 0; a < m; ++a) {
    for (std::size_t b = a + 1; b < m; ++b) {
      double acc = 0.0;
      for (std::size_t c = 0; c < stats[a].centroid.size(); ++c) {
        const double diff = stats[a].centroid[c] - stats[b].centroid[c];
        acc += diff * diff;
      }
      dist[a][b] = dist[b][a] = std::sqrt(acc);
    }
  }
  return dist;
}

double silhouette_score(const core::Tensor& points,
                        const std::vector<std::int64_t>& labels) {
  const std::int64_t n = points.size(0), d = points.size(1);
  MATSCI_CHECK(static_cast<std::int64_t>(labels.size()) == n,
               "labels size mismatch");
  const float* p = points.data();

  std::map<std::int64_t, std::int64_t> counts;
  for (const std::int64_t l : labels) ++counts[l];
  MATSCI_CHECK(counts.size() >= 2, "silhouette needs at least two clusters");

  double total = 0.0;
  std::int64_t used = 0;
  for (std::int64_t i = 0; i < n; ++i) {
    const std::int64_t li = labels[static_cast<std::size_t>(i)];
    if (counts[li] < 2) continue;  // silhouette undefined for singletons
    std::map<std::int64_t, double> sum_d;
    for (std::int64_t j = 0; j < n; ++j) {
      if (j == i) continue;
      sum_d[labels[static_cast<std::size_t>(j)]] +=
          row_distance(p + i * d, p + j * d, d);
    }
    const double a = sum_d[li] / static_cast<double>(counts[li] - 1);
    double b = std::numeric_limits<double>::infinity();
    for (const auto& [l, s] : sum_d) {
      if (l == li) continue;
      b = std::min(b, s / static_cast<double>(counts[l]));
    }
    total += (b - a) / std::max(a, b);
    ++used;
  }
  MATSCI_CHECK(used > 0, "no valid silhouette points");
  return total / static_cast<double>(used);
}

double neighbor_overlap(const core::Tensor& points,
                        const std::vector<std::int64_t>& labels,
                        std::int64_t label_a, std::int64_t label_b,
                        std::int64_t k) {
  const std::int64_t n = points.size(0);
  MATSCI_CHECK(static_cast<std::int64_t>(labels.size()) == n,
               "labels size mismatch");
  KDTree tree(points);
  std::int64_t count_a = 0, overlapping = 0;
  for (std::int64_t i = 0; i < n; ++i) {
    if (labels[static_cast<std::size_t>(i)] != label_a) continue;
    ++count_a;
    const auto res = tree.knn_of_point(i, std::min<std::int64_t>(k, n - 1));
    for (const std::int64_t j : res.indices) {
      if (labels[static_cast<std::size_t>(j)] == label_b) {
        ++overlapping;
        break;
      }
    }
  }
  MATSCI_CHECK(count_a > 0, "no points with label " << label_a);
  return static_cast<double>(overlapping) / static_cast<double>(count_a);
}

double isolation_score(const std::vector<ClusterStats>& stats,
                       std::int64_t label) {
  const ClusterStats* self = nullptr;
  for (const ClusterStats& cs : stats) {
    if (cs.label == label) self = &cs;
  }
  MATSCI_CHECK(self != nullptr, "label " << label << " not in stats");
  const auto dist = centroid_distances(stats);
  double best = std::numeric_limits<double>::infinity();
  for (std::size_t a = 0; a < stats.size(); ++a) {
    if (stats[a].label == label) {
      for (std::size_t b = 0; b < stats.size(); ++b) {
        if (a == b) continue;
        const double denom =
            std::max(self->mean_radius + stats[b].mean_radius, 1e-12);
        best = std::min(best, dist[a][b] / denom);
      }
    }
  }
  return best;
}

}  // namespace matsci::embed
