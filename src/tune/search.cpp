#include "tune/search.hpp"

#include <cmath>
#include <iomanip>
#include <sstream>

#include "core/macros.hpp"

namespace matsci::tune {

std::vector<ParamSet> cartesian_grid(
    const std::map<std::string, std::vector<double>>& axes) {
  MATSCI_CHECK(!axes.empty(), "cartesian_grid: no axes");
  std::vector<ParamSet> grid = {{}};
  for (const auto& [name, values] : axes) {
    MATSCI_CHECK(!values.empty(), "cartesian_grid: axis '" << name
                                                           << "' is empty");
    std::vector<ParamSet> expanded;
    expanded.reserve(grid.size() * values.size());
    for (const ParamSet& base : grid) {
      for (const double v : values) {
        ParamSet p = base;
        p[name] = v;
        expanded.push_back(std::move(p));
      }
    }
    grid = std::move(expanded);
  }
  return grid;
}

std::vector<TrialResult> grid_search(const std::vector<ParamSet>& grid,
                                     const Objective& objective) {
  MATSCI_CHECK(!grid.empty(), "grid_search: empty grid");
  MATSCI_CHECK(static_cast<bool>(objective), "grid_search: null objective");
  std::vector<TrialResult> results;
  results.reserve(grid.size());
  for (const ParamSet& params : grid) {
    results.push_back({params, objective(params)});
  }
  return results;
}

std::vector<TrialResult> random_search(
    const std::map<std::string, ParamRange>& space, std::int64_t num_trials,
    std::uint64_t seed, const Objective& objective) {
  MATSCI_CHECK(!space.empty(), "random_search: empty space");
  MATSCI_CHECK(num_trials >= 1, "random_search: need >= 1 trial");
  MATSCI_CHECK(static_cast<bool>(objective), "random_search: null objective");
  for (const auto& [name, range] : space) {
    MATSCI_CHECK(range.hi > range.lo,
                 "random_search: bad range for '" << name << "'");
    MATSCI_CHECK(!range.log_scale || range.lo > 0.0,
                 "random_search: log-scale range must be positive for '"
                     << name << "'");
  }
  core::RngEngine rng(seed);
  std::vector<TrialResult> results;
  results.reserve(static_cast<std::size_t>(num_trials));
  for (std::int64_t t = 0; t < num_trials; ++t) {
    ParamSet params;
    for (const auto& [name, range] : space) {
      if (range.log_scale) {
        params[name] = std::exp(
            rng.uniform(std::log(range.lo), std::log(range.hi)));
      } else {
        params[name] = rng.uniform(range.lo, range.hi);
      }
    }
    results.push_back({params, objective(params)});
  }
  return results;
}

const TrialResult& best_trial(const std::vector<TrialResult>& results) {
  MATSCI_CHECK(!results.empty(), "best_trial: no results");
  const TrialResult* best = &results.front();
  for (const TrialResult& r : results) {
    if (r.objective < best->objective) best = &r;
  }
  return *best;
}

std::string format_results(const std::vector<TrialResult>& results) {
  MATSCI_CHECK(!results.empty(), "format_results: no results");
  std::ostringstream os;
  for (const auto& [name, _] : results.front().params) {
    os << std::setw(14) << name;
  }
  os << std::setw(14) << "objective" << "\n";
  for (const TrialResult& r : results) {
    for (const auto& [_, value] : r.params) {
      os << std::setw(14) << std::setprecision(5) << value;
    }
    os << std::setw(14) << std::setprecision(5) << r.objective << "\n";
  }
  return os.str();
}

}  // namespace matsci::tune
