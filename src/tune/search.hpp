#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "core/random.hpp"

namespace matsci::tune {

/// One hyperparameter assignment, by name.
using ParamSet = std::map<std::string, double>;

/// Objective: lower is better (e.g. validation MAE). Called once per
/// configuration; expected to be deterministic for reproducible sweeps.
using Objective = std::function<double(const ParamSet&)>;

struct TrialResult {
  ParamSet params;
  double objective = 0.0;
};

/// Cartesian product of per-parameter value lists, in lexicographic
/// order of the (sorted) parameter names.
std::vector<ParamSet> cartesian_grid(
    const std::map<std::string, std::vector<double>>& axes);

/// Evaluate every configuration; results in input order.
std::vector<TrialResult> grid_search(const std::vector<ParamSet>& grid,
                                     const Objective& objective);

/// Uniform random sampling within per-parameter [lo, hi] ranges.
/// `log_scale` parameters are sampled log-uniformly (learning rates).
struct ParamRange {
  double lo = 0.0;
  double hi = 1.0;
  bool log_scale = false;
};

std::vector<TrialResult> random_search(
    const std::map<std::string, ParamRange>& space, std::int64_t num_trials,
    std::uint64_t seed, const Objective& objective);

/// Best (lowest-objective) trial; throws on empty input.
const TrialResult& best_trial(const std::vector<TrialResult>& results);

/// Fixed-width table of a sweep's results for bench/report output.
std::string format_results(const std::vector<TrialResult>& results);

}  // namespace matsci::tune
