#include "optim/lr_scheduler.hpp"

#include <cmath>

#include "core/macros.hpp"

namespace matsci::optim {

void LRScheduler::epoch_step() {
  ++epoch_;
  opt_->set_lr(lr_for_epoch(epoch_));
}

void LRScheduler::apply() { opt_->set_lr(lr_for_epoch(epoch_)); }

double LRScheduler::current_lr() const { return opt_->lr(); }

LinearWarmup::LinearWarmup(Optimizer& opt, double peak_lr,
                           std::int64_t warmup_epochs)
    : LRScheduler(opt), peak_lr_(peak_lr), warmup_epochs_(warmup_epochs) {
  MATSCI_CHECK(warmup_epochs >= 1, "warmup_epochs must be >= 1");
  apply();
}

double LinearWarmup::lr_for_epoch(std::int64_t epoch) const {
  if (epoch >= warmup_epochs_) return peak_lr_;
  // Epoch 0 trains at the first ramp value, not zero.
  return peak_lr_ * static_cast<double>(epoch + 1) /
         static_cast<double>(warmup_epochs_);
}

ExponentialDecay::ExponentialDecay(Optimizer& opt, double base_lr,
                                   double gamma)
    : LRScheduler(opt), base_lr_(base_lr), gamma_(gamma) {
  MATSCI_CHECK(gamma > 0.0 && gamma <= 1.0, "gamma=" << gamma);
  apply();
}

double ExponentialDecay::lr_for_epoch(std::int64_t epoch) const {
  return base_lr_ * std::pow(gamma_, static_cast<double>(epoch));
}

WarmupExponential::WarmupExponential(Optimizer& opt, double peak_lr,
                                     std::int64_t warmup_epochs, double gamma)
    : LRScheduler(opt),
      peak_lr_(peak_lr),
      warmup_epochs_(warmup_epochs),
      gamma_(gamma) {
  MATSCI_CHECK(warmup_epochs >= 1, "warmup_epochs must be >= 1");
  MATSCI_CHECK(gamma > 0.0 && gamma <= 1.0, "gamma=" << gamma);
  apply();
}

double WarmupExponential::lr_for_epoch(std::int64_t epoch) const {
  if (epoch < warmup_epochs_) {
    return peak_lr_ * static_cast<double>(epoch + 1) /
           static_cast<double>(warmup_epochs_);
  }
  return peak_lr_ *
         std::pow(gamma_, static_cast<double>(epoch - warmup_epochs_ + 1));
}

CosineAnnealing::CosineAnnealing(Optimizer& opt, double base_lr,
                                 std::int64_t total_epochs, double min_lr)
    : LRScheduler(opt),
      base_lr_(base_lr),
      total_epochs_(total_epochs),
      min_lr_(min_lr) {
  MATSCI_CHECK(total_epochs >= 1, "total_epochs must be >= 1");
  MATSCI_CHECK(min_lr >= 0.0 && min_lr <= base_lr, "min_lr out of range");
  apply();
}

double CosineAnnealing::lr_for_epoch(std::int64_t epoch) const {
  if (epoch >= total_epochs_) return min_lr_;
  const double progress =
      static_cast<double>(epoch) / static_cast<double>(total_epochs_);
  return min_lr_ +
         0.5 * (base_lr_ - min_lr_) * (1.0 + std::cos(M_PI * progress));
}

double scale_lr_for_world_size(double base_lr, std::int64_t world_size) {
  MATSCI_CHECK(world_size >= 1, "world_size must be >= 1");
  return base_lr * static_cast<double>(world_size);
}

}  // namespace matsci::optim
