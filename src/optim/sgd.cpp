#include "optim/sgd.hpp"

#include "core/macros.hpp"

namespace matsci::optim {

SGD::SGD(std::vector<core::Tensor> params, SGDOptions opts)
    : Optimizer(std::move(params), opts.lr), opts_(opts) {
  MATSCI_CHECK(opts.momentum >= 0.0 && opts.momentum < 1.0,
               "SGD momentum=" << opts.momentum);
  MATSCI_CHECK(!opts.nesterov || opts.momentum > 0.0,
               "Nesterov requires momentum > 0");
  momentum_buf_.resize(params_.size());
}

OptimizerState SGD::export_state() const {
  OptimizerState state = Optimizer::export_state();
  for (std::size_t pi = 0; pi < params_.size(); ++pi) {
    state["momentum." + std::to_string(pi)] = momentum_buf_[pi];
  }
  return state;
}

void SGD::import_state(const OptimizerState& state) {
  Optimizer::import_state(state);
  for (std::size_t pi = 0; pi < params_.size(); ++pi) {
    const auto it = state.find("momentum." + std::to_string(pi));
    MATSCI_CHECK(it != state.end(),
                 "SGD state missing momentum for parameter " << pi);
    const std::size_t n = params_[pi].impl()->data.size();
    MATSCI_CHECK(it->second.empty() || it->second.size() == n,
                 "SGD state size mismatch for parameter " << pi);
    momentum_buf_[pi] = it->second;
  }
}

void SGD::step() {
  ++step_count_;
  for (std::size_t pi = 0; pi < params_.size(); ++pi) {
    core::Tensor& p = params_[pi];
    if (!p.has_grad()) continue;
    auto impl = p.impl();
    const std::size_t n = impl->data.size();
    const float mu = static_cast<float>(opts_.momentum);
    const float wd = static_cast<float>(opts_.weight_decay);
    const float eta = static_cast<float>(lr_);

    std::vector<float>& buf = momentum_buf_[pi];
    if (mu > 0.0f && buf.empty()) buf.assign(n, 0.0f);

    for (std::size_t i = 0; i < n; ++i) {
      float g = impl->grad[i] + wd * impl->data[i];
      if (mu > 0.0f) {
        buf[i] = mu * buf[i] + g;
        g = opts_.nesterov ? g + mu * buf[i] : buf[i];
      }
      impl->data[i] -= eta * g;
    }
  }
}

}  // namespace matsci::optim
