#include "optim/adam.hpp"

#include <cmath>

#include "core/macros.hpp"

namespace matsci::optim {

Adam::Adam(std::vector<core::Tensor> params, AdamOptions opts)
    : Optimizer(std::move(params), opts.lr), opts_(opts) {
  MATSCI_CHECK(opts.beta1 >= 0.0 && opts.beta1 < 1.0, "beta1=" << opts.beta1);
  MATSCI_CHECK(opts.beta2 >= 0.0 && opts.beta2 < 1.0, "beta2=" << opts.beta2);
  MATSCI_CHECK(opts.eps > 0.0, "eps must be positive");
  m_.resize(params_.size());
  v_.resize(params_.size());
}

void Adam::step() {
  ++step_count_;
  const double b1 = opts_.beta1;
  const double b2 = opts_.beta2;
  const double bc1 = 1.0 - std::pow(b1, static_cast<double>(step_count_));
  const double bc2 = 1.0 - std::pow(b2, static_cast<double>(step_count_));

  for (std::size_t pi = 0; pi < params_.size(); ++pi) {
    core::Tensor& p = params_[pi];
    if (!p.has_grad()) continue;
    auto impl = p.impl();
    const std::size_t n = impl->data.size();
    if (m_[pi].empty()) {
      m_[pi].assign(n, 0.0f);
      v_[pi].assign(n, 0.0f);
    }
    float* m = m_[pi].data();
    float* v = v_[pi].data();
    const float wd = static_cast<float>(opts_.weight_decay);
    const float eta = static_cast<float>(lr_);

    for (std::size_t i = 0; i < n; ++i) {
      float g = impl->grad[i];
      if (wd != 0.0f && !opts_.decoupled_weight_decay) {
        g += wd * impl->data[i];
      }
      m[i] = static_cast<float>(b1 * m[i] + (1.0 - b1) * g);
      v[i] = static_cast<float>(b2 * v[i] + (1.0 - b2) * g * g);
      const double mhat = m[i] / bc1;
      const double vhat = v[i] / bc2;
      double update = mhat / (std::sqrt(vhat) + opts_.eps);
      if (wd != 0.0f && opts_.decoupled_weight_decay) {
        update += wd * impl->data[i];
      }
      impl->data[i] -= static_cast<float>(eta * update);
    }
  }
}

OptimizerState Adam::export_state() const {
  OptimizerState state = Optimizer::export_state();
  for (std::size_t pi = 0; pi < params_.size(); ++pi) {
    state["m." + std::to_string(pi)] = m_[pi];
    state["v." + std::to_string(pi)] = v_[pi];
  }
  return state;
}

void Adam::import_state(const OptimizerState& state) {
  Optimizer::import_state(state);
  for (std::size_t pi = 0; pi < params_.size(); ++pi) {
    const auto m = state.find("m." + std::to_string(pi));
    const auto v = state.find("v." + std::to_string(pi));
    MATSCI_CHECK(m != state.end() && v != state.end(),
                 "Adam state missing moments for parameter " << pi);
    const std::size_t n = params_[pi].impl()->data.size();
    MATSCI_CHECK(m->second.empty() || m->second.size() == n,
                 "Adam state size mismatch for parameter " << pi);
    m_[pi] = m->second;
    v_[pi] = v->second;
  }
}

Adam make_adamw(std::vector<core::Tensor> params, double lr,
                double weight_decay) {
  AdamOptions opts;
  opts.lr = lr;
  opts.weight_decay = weight_decay;
  opts.decoupled_weight_decay = true;
  return Adam(std::move(params), opts);
}

}  // namespace matsci::optim
