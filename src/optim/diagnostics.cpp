#include "optim/diagnostics.hpp"

#include <cmath>

namespace matsci::optim {

AdamInstabilityProbe::AdamInstabilityProbe(const Adam& opt) : opt_(&opt) {}

AdamStepStats AdamInstabilityProbe::observe() {
  AdamStepStats stats;
  stats.step = opt_->step_count() + 1;

  // Flatten current gradients.
  std::vector<float> grads;
  for (const core::Tensor& p : opt_->params()) {
    if (!p.has_grad()) continue;
    const auto& g = p.impl()->grad;
    grads.insert(grads.end(), g.begin(), g.end());
  }

  double sq = 0.0;
  for (const float v : grads) sq += static_cast<double>(v) * v;
  stats.grad_norm = std::sqrt(sq);

  if (prev_grads_.size() == grads.size() && !grads.empty()) {
    double dot = 0.0, prev_sq = 0.0;
    for (std::size_t i = 0; i < grads.size(); ++i) {
      dot += static_cast<double>(grads[i]) * prev_grads_[i];
      prev_sq += static_cast<double>(prev_grads_[i]) * prev_grads_[i];
    }
    const double denom = std::sqrt(sq) * std::sqrt(prev_sq);
    stats.grad_autocorrelation = denom > 0.0 ? dot / denom : 0.0;
  }
  prev_grads_ = grads;

  // Inspect second moments: how much of the model is at the ε floor, and
  // how large the next update would be.
  const auto& opts = opt_->options();
  const double bc1 =
      1.0 - std::pow(opts.beta1, static_cast<double>(stats.step));
  const double bc2 =
      1.0 - std::pow(opts.beta2, static_cast<double>(stats.step));
  std::int64_t floor_count = 0, total = 0;
  double max_update = 0.0;
  const auto& ms = opt_->exp_avg();
  const auto& vs = opt_->exp_avg_sq();
  for (std::size_t pi = 0; pi < vs.size(); ++pi) {
    for (std::size_t i = 0; i < vs[pi].size(); ++i) {
      const double vhat = vs[pi][i] / bc2;
      const double mhat = ms[pi][i] / bc1;
      if (std::sqrt(vhat) < opts.eps) ++floor_count;
      const double u =
          std::fabs(opt_->lr() * mhat / (std::sqrt(vhat) + opts.eps));
      if (u > max_update) max_update = u;
      ++total;
    }
  }
  stats.frac_at_eps_floor =
      total > 0 ? static_cast<double>(floor_count) / total : 0.0;
  stats.max_update_magnitude = max_update;

  history_.push_back(stats);
  trim_history();
  return stats;
}

void AdamInstabilityProbe::trim_history() {
  if (history_limit_ == 0 || history_.size() <= history_limit_) return;
  history_.erase(history_.begin(),
                 history_.end() - static_cast<std::ptrdiff_t>(history_limit_));
}

}  // namespace matsci::optim
