#pragma once

#include "optim/optimizer.hpp"

namespace matsci::optim {

struct SGDOptions {
  double lr = 1e-2;
  double momentum = 0.0;
  double weight_decay = 0.0;  ///< classic L2 (added to gradient)
  bool nesterov = false;
};

/// Stochastic gradient descent with optional (Nesterov) momentum.
/// Serves as the stable baseline in the Adam-instability ablation.
class SGD : public Optimizer {
 public:
  SGD(std::vector<core::Tensor> params, SGDOptions opts);
  void step() override;
  const SGDOptions& options() const { return opts_; }
  OptimizerState export_state() const override;
  void import_state(const OptimizerState& state) override;

 private:
  SGDOptions opts_;
  std::vector<std::vector<float>> momentum_buf_;
};

}  // namespace matsci::optim
