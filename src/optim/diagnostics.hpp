#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "optim/adam.hpp"

namespace matsci::optim {

/// Per-step probe of the quantities Molybog et al. (2023) tie to Adam
/// divergence in large-batch training. The paper (§5.2) attributes the
/// validation-loss spikes at 256–512 DDP ranks to this mechanism:
/// gradient components decaying to the order of ε break the Markovian
/// (time-uncorrelated) update assumption, and a sudden large gradient
/// then produces an outsized, correlated update across layers.
struct AdamStepStats {
  std::int64_t step = 0;
  double grad_norm = 0.0;
  /// Cosine similarity between this step's and the previous step's
  /// gradient (flattened). Near zero = Markovian; persistent high values
  /// signal the time-correlation that precedes divergence.
  double grad_autocorrelation = 0.0;
  /// Fraction of second-moment entries with sqrt(v̂) below ε — updates in
  /// this regime are dominated by the ε floor (the instability precursor).
  double frac_at_eps_floor = 0.0;
  /// Max |update| ratio lr·m̂/(sqrt(v̂)+ε) over all coordinates.
  double max_update_magnitude = 0.0;
};

/// Observes an Adam optimizer across steps. Call `observe()` after each
/// backward pass and *before* opt.step() consumes the gradients — and
/// before any clip_grad_norm, so the recorded grad_norm is the true
/// (pre-clip) norm even on clipped steps.
class AdamInstabilityProbe {
 public:
  explicit AdamInstabilityProbe(const Adam& opt);

  AdamStepStats observe();
  const std::vector<AdamStepStats>& history() const { return history_; }
  /// Most recent stats (nullptr before the first observe()).
  const AdamStepStats* last() const {
    return history_.empty() ? nullptr : &history_.back();
  }
  /// Bound the retained history (0 = unbounded, the default); the
  /// oldest entries are discarded first. Long-running supervisors
  /// (obs::health::HealthMonitor) cap this at their flight-recorder
  /// window so memory stays constant over arbitrarily long runs.
  void set_history_limit(std::size_t limit) {
    history_limit_ = limit;
    trim_history();
  }

 private:
  void trim_history();

  const Adam* opt_;
  std::vector<float> prev_grads_;
  std::vector<AdamStepStats> history_;
  std::size_t history_limit_ = 0;
};

}  // namespace matsci::optim
