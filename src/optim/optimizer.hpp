#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "core/tensor.hpp"

namespace matsci::optim {

/// Serializable optimizer state: named float buffers (moment estimates,
/// momentum) plus scalar entries like the step counter. The layout is
/// optimizer-specific; `import_state` validates shape agreement.
using OptimizerState = std::map<std::string, std::vector<float>>;

/// Base class for gradient-descent optimizers over a fixed parameter list.
/// Parameters are shared tensor payloads — the same objects registered in
/// the module tree — so `step()` updates the live model in place.
class Optimizer {
 public:
  explicit Optimizer(std::vector<core::Tensor> params, double lr);
  virtual ~Optimizer() = default;
  Optimizer(const Optimizer&) = delete;
  Optimizer& operator=(const Optimizer&) = delete;

  /// Apply one update from the current gradients.
  virtual void step() = 0;

  void zero_grad();
  double lr() const { return lr_; }
  void set_lr(double lr) { lr_ = lr; }
  const std::vector<core::Tensor>& params() const { return params_; }
  std::int64_t step_count() const { return step_count_; }

  /// Global L2 gradient-norm clipping. Returns the pre-clip norm.
  /// No-op (but still returns the norm) when norm <= max_norm.
  double clip_grad_norm(double max_norm);

  /// Global L2 norm of all gradients (0 for absent grads).
  double grad_norm() const;

  /// Snapshot internal state for exact training resume. The base
  /// implementation exports the step counter and learning rate;
  /// stateful optimizers extend it with their buffers.
  virtual OptimizerState export_state() const;
  /// Restore a snapshot produced by the same optimizer configuration.
  virtual void import_state(const OptimizerState& state);

 protected:
  std::vector<core::Tensor> params_;
  double lr_;
  std::int64_t step_count_ = 0;
};

}  // namespace matsci::optim
