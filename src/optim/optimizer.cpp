#include "optim/optimizer.hpp"

#include <cmath>

#include "core/macros.hpp"

namespace matsci::optim {

Optimizer::Optimizer(std::vector<core::Tensor> params, double lr)
    : params_(std::move(params)), lr_(lr) {
  MATSCI_CHECK(!params_.empty(), "optimizer needs at least one parameter");
  MATSCI_CHECK(lr > 0.0, "learning rate must be positive, got " << lr);
  for (const core::Tensor& p : params_) {
    MATSCI_CHECK(p.defined(), "optimizer given an undefined parameter");
  }
}

void Optimizer::zero_grad() {
  for (core::Tensor& p : params_) p.zero_grad();
}

double Optimizer::grad_norm() const {
  double sq = 0.0;
  for (const core::Tensor& p : params_) {
    if (!p.has_grad()) continue;
    const auto& g = p.impl()->grad;
    for (const float v : g) sq += static_cast<double>(v) * v;
  }
  return std::sqrt(sq);
}

OptimizerState Optimizer::export_state() const {
  OptimizerState state;
  state["step"] = {static_cast<float>(step_count_)};
  state["lr"] = {static_cast<float>(lr_)};
  return state;
}

void Optimizer::import_state(const OptimizerState& state) {
  auto step = state.find("step");
  MATSCI_CHECK(step != state.end() && step->second.size() == 1,
               "optimizer state missing 'step'");
  step_count_ = static_cast<std::int64_t>(step->second[0]);
  auto lr = state.find("lr");
  MATSCI_CHECK(lr != state.end() && lr->second.size() == 1,
               "optimizer state missing 'lr'");
  lr_ = static_cast<double>(lr->second[0]);
}

double Optimizer::clip_grad_norm(double max_norm) {
  MATSCI_CHECK(max_norm > 0.0, "clip_grad_norm: max_norm must be positive");
  const double norm = grad_norm();
  if (norm > max_norm) {
    const float scale = static_cast<float>(max_norm / (norm + 1e-12));
    for (core::Tensor& p : params_) {
      if (!p.has_grad()) continue;
      for (float& v : p.impl()->grad) v *= scale;
    }
  }
  return norm;
}

}  // namespace matsci::optim
