#pragma once

#include <cstdint>
#include <memory>

#include "optim/optimizer.hpp"

namespace matsci::optim {

/// Learning-rate schedulers with the paper's semantics: the schedule is
/// advanced once per *epoch* (`epoch_step()`), matching §4.2 — an
/// eight-epoch linear warmup to the nominal rate followed by exponential
/// decay with γ = 0.8.
class LRScheduler {
 public:
  explicit LRScheduler(Optimizer& opt) : opt_(&opt) {}
  virtual ~LRScheduler() = default;

  /// Advance one epoch and write the new lr into the optimizer.
  void epoch_step();
  /// Apply the schedule value for the current epoch without advancing
  /// (used at epoch 0 so warmup starts from the ramp, not base lr).
  void apply();
  std::int64_t epoch() const { return epoch_; }
  double current_lr() const;

 protected:
  virtual double lr_for_epoch(std::int64_t epoch) const = 0;
  Optimizer* opt_;
  std::int64_t epoch_ = 0;
};

/// Linear ramp from ~0 to `peak_lr` over `warmup_epochs`, constant after.
class LinearWarmup : public LRScheduler {
 public:
  LinearWarmup(Optimizer& opt, double peak_lr, std::int64_t warmup_epochs);

 protected:
  double lr_for_epoch(std::int64_t epoch) const override;

 private:
  double peak_lr_;
  std::int64_t warmup_epochs_;
};

/// lr = base_lr * gamma^epoch.
class ExponentialDecay : public LRScheduler {
 public:
  ExponentialDecay(Optimizer& opt, double base_lr, double gamma);

 protected:
  double lr_for_epoch(std::int64_t epoch) const override;

 private:
  double base_lr_;
  double gamma_;
};

/// The paper's composite: linear warmup to `peak_lr` for `warmup_epochs`,
/// then exponential decay with `gamma` starting from the peak.
class WarmupExponential : public LRScheduler {
 public:
  WarmupExponential(Optimizer& opt, double peak_lr, std::int64_t warmup_epochs,
                    double gamma);

 protected:
  double lr_for_epoch(std::int64_t epoch) const override;

 private:
  double peak_lr_;
  std::int64_t warmup_epochs_;
  double gamma_;
};

/// Half-cosine anneal from base_lr down to min_lr over total_epochs
/// (constant at min_lr afterwards).
class CosineAnnealing : public LRScheduler {
 public:
  CosineAnnealing(Optimizer& opt, double base_lr, std::int64_t total_epochs,
                  double min_lr = 0.0);

 protected:
  double lr_for_epoch(std::int64_t epoch) const override;

 private:
  double base_lr_;
  std::int64_t total_epochs_;
  double min_lr_;
};

/// Goyal et al. linear-scaling rule used for DDP training (§4.2):
/// the effective peak lr is base_lr × world_size.
double scale_lr_for_world_size(double base_lr, std::int64_t world_size);

}  // namespace matsci::optim
