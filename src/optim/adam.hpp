#pragma once

#include "optim/optimizer.hpp"

namespace matsci::optim {

struct AdamOptions {
  double lr = 1e-3;
  double beta1 = 0.9;
  double beta2 = 0.999;
  double eps = 1e-8;
  double weight_decay = 0.0;
  /// false: classic Adam (L2 added to the gradient);
  /// true: AdamW (Loshchilov & Hutter) — decay applied directly to weights.
  bool decoupled_weight_decay = false;
};

/// Adam / AdamW. The paper trains everything with AdamW at default
/// momenta (β1=0.9, β2=0.999); `exp_avg_sq` is exposed so the Molybog-
/// style instability probe can measure how much of the update is running
/// at the ε-floor (the divergence mechanism discussed in §5.2).
class Adam : public Optimizer {
 public:
  Adam(std::vector<core::Tensor> params, AdamOptions opts);
  void step() override;

  const AdamOptions& options() const { return opts_; }
  OptimizerState export_state() const override;
  void import_state(const OptimizerState& state) override;
  /// Per-parameter second-moment buffers (empty until first step()).
  const std::vector<std::vector<float>>& exp_avg_sq() const { return v_; }
  const std::vector<std::vector<float>>& exp_avg() const { return m_; }

 private:
  AdamOptions opts_;
  std::vector<std::vector<float>> m_;
  std::vector<std::vector<float>> v_;
};

/// Convenience factory for AdamW (decoupled weight decay).
Adam make_adamw(std::vector<core::Tensor> params, double lr,
                double weight_decay = 1e-2);

}  // namespace matsci::optim
