#include "core/random.hpp"

#include <cmath>

#include "core/macros.hpp"

namespace matsci::core {

namespace {
constexpr std::uint64_t kGamma = 0x9E3779B97F4A7C15ull;

std::uint64_t mix(std::uint64_t z) {
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}
}  // namespace

RngEngine::RngEngine(std::uint64_t seed) : state_(mix(seed + kGamma)) {}

std::uint64_t RngEngine::next_u64() {
  state_ += kGamma;
  return mix(state_);
}

double RngEngine::uniform() {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double RngEngine::uniform(double lo, double hi) {
  return lo + (hi - lo) * uniform();
}

double RngEngine::normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  // Box–Muller; reject u1 == 0 to avoid log(0).
  double u1 = 0.0;
  do {
    u1 = uniform();
  } while (u1 <= 0.0);
  const double u2 = uniform();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * M_PI * u2;
  cached_normal_ = r * std::sin(theta);
  has_cached_normal_ = true;
  return r * std::cos(theta);
}

double RngEngine::normal(double mean, double stddev) {
  return mean + stddev * normal();
}

std::int64_t RngEngine::next_int(std::int64_t n) {
  MATSCI_CHECK(n > 0, "next_int requires n > 0, got " << n);
  // Rejection sampling for an unbiased draw.
  const std::uint64_t un = static_cast<std::uint64_t>(n);
  const std::uint64_t limit = UINT64_MAX - UINT64_MAX % un;
  std::uint64_t x = 0;
  do {
    x = next_u64();
  } while (x >= limit);
  return static_cast<std::int64_t>(x % un);
}

bool RngEngine::bernoulli(double p) { return uniform() < p; }

RngEngine RngEngine::fork(std::uint64_t id) const {
  RngEngine child(0);
  child.state_ = mix(state_ ^ mix(id + kGamma));
  return child;
}

void RngEngine::shuffle(std::vector<std::int64_t>& v) {
  for (std::int64_t i = static_cast<std::int64_t>(v.size()) - 1; i > 0; --i) {
    const std::int64_t j = next_int(i + 1);
    std::swap(v[static_cast<std::size_t>(i)], v[static_cast<std::size_t>(j)]);
  }
}

std::vector<std::int64_t> RngEngine::sample_without_replacement(
    std::int64_t n, std::int64_t k) {
  MATSCI_CHECK(k >= 0 && k <= n,
               "sample_without_replacement: k=" << k << " out of range for n=" << n);
  std::vector<std::int64_t> idx(static_cast<std::size_t>(n));
  for (std::int64_t i = 0; i < n; ++i) {
    idx[static_cast<std::size_t>(i)] = i;
  }
  // Partial Fisher–Yates: the first k entries are the sample.
  for (std::int64_t i = 0; i < k; ++i) {
    const std::int64_t j = i + next_int(n - i);
    std::swap(idx[static_cast<std::size_t>(i)], idx[static_cast<std::size_t>(j)]);
  }
  idx.resize(static_cast<std::size_t>(k));
  return idx;
}

}  // namespace matsci::core
