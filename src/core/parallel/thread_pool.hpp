#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace matsci::core::parallel {

/// A unit of work handed to the pool. The owner can reclaim it with
/// run_now_or_wait(): if no worker has started the task yet it runs
/// inline on the calling thread, otherwise the call blocks until the
/// worker finishes. Either way the task's exception (if any) is
/// rethrown there. This makes teardown paths (e.g. serve shutdown)
/// independent of pool availability: a queued task can always be
/// driven to completion by the thread that needs it done.
class TaskHandle {
 public:
  TaskHandle() = default;
  bool valid() const { return state_ != nullptr; }
  void run_now_or_wait();

 private:
  friend class ThreadPool;
  struct State {
    std::function<void()> fn;
    std::mutex mu;
    std::condition_variable cv;
    enum Status { kPending, kRunning, kDone } status = kPending;
    std::exception_ptr error;
    /// Steady-clock submit time, ns; 0 for run_chunks helper tasks
    /// (those are not independent work items, so their queue wait is
    /// not observed into pool.task_wait_us).
    std::uint64_t enqueued_ns = 0;
  };
  explicit TaskHandle(std::shared_ptr<State> state)
      : state_(std::move(state)) {}
  std::shared_ptr<State> state_;
};

/// Process-wide work pool: the single threading entry point for every
/// parallel kernel (core ops, graph construction, collation) and for
/// the serve scheduler's batch jobs. `global()` is sized by the
/// MATSCI_NUM_THREADS environment variable, falling back to
/// hardware_concurrency().
///
/// Determinism contract: run_chunks() executes a fixed set of chunk
/// indices whose boundaries depend only on the problem shape — never
/// on the pool size or on which thread claims which chunk — so any
/// kernel that writes disjoint outputs per chunk (or merges per-chunk
/// partials in fixed chunk order) is bit-exact for every thread count.
///
/// Nesting guard: a pool worker that reaches run_chunks() (a kernel's
/// parallel_for inside a serve batch job, or a nested kernel) executes
/// every chunk inline instead of re-enqueueing — no deadlock and no
/// oversubscription, parallelism stays at the outermost level.
class ThreadPool {
 public:
  /// The shared process-wide pool. Created on first use; sized by
  /// default_size().
  static ThreadPool& global();

  /// MATSCI_NUM_THREADS if set to a positive integer, else
  /// hardware_concurrency(), else 1.
  static std::int64_t default_size();

  /// True on a pool worker thread (inside a submitted task or a
  /// helper executing kernel chunks).
  static bool on_worker_thread();

  explicit ThreadPool(std::int64_t threads);
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Worker-thread count (>= 1). Kernels use at most `size()` compute
  /// streams: the calling thread plus size()-1 helpers.
  std::int64_t size() const { return size_; }

  /// Join all workers and restart with `threads` workers. Callers
  /// must ensure no kernels or submitted tasks are in flight (queued
  /// tasks are drained first). Intended for tests, benchmarks, and
  /// process setup — not for concurrent use.
  void resize(std::int64_t threads);

  /// Enqueue an independent task (e.g. one serve batch job). Tasks
  /// may block and may live as long as the pool; completion and
  /// exceptions are observed through the returned handle.
  TaskHandle submit(std::function<void()> fn);

  /// Execute chunk_fn(0..num_chunks-1), caller participating, up to
  /// size()-1 workers helping. Blocks until every chunk completed;
  /// rethrows the first chunk exception (remaining chunks are
  /// skipped). On a worker thread, or when num_chunks <= 1, or for a
  /// single-thread pool, runs every chunk inline in ascending order.
  void run_chunks(std::int64_t num_chunks,
                  const std::function<void(std::int64_t)>& chunk_fn);

 private:
  struct Region;
  void start(std::int64_t threads);
  void stop_and_join();
  void worker_loop();

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::shared_ptr<TaskHandle::State>> tasks_;
  std::vector<std::thread> threads_;
  std::int64_t size_ = 1;
  bool stop_ = false;
};

/// Current size of the global pool.
inline std::int64_t num_threads() { return ThreadPool::global().size(); }

/// Resize the global pool (see ThreadPool::resize caveats).
inline void set_num_threads(std::int64_t threads) {
  ThreadPool::global().resize(threads);
}

}  // namespace matsci::core::parallel
