#pragma once

#include <algorithm>
#include <cstdint>
#include <utility>
#include <vector>

#include "core/parallel/thread_pool.hpp"

namespace matsci::core::parallel {

/// Number of chunks a [begin, end) range splits into at the given
/// grain. Depends only on the range and the grain — never on the pool
/// size — which is what keeps every parallel kernel bit-exact across
/// thread counts. grain <= 0 means "one chunk".
inline std::int64_t chunk_count(std::int64_t begin, std::int64_t end,
                                std::int64_t grain) {
  if (end <= begin) return 0;
  const std::int64_t n = end - begin;
  const std::int64_t g = grain > 0 ? grain : n;
  return (n + g - 1) / g;
}

/// Run fn(chunk_begin, chunk_end) over [begin, end) split into
/// fixed-grain chunks. fn must write disjoint outputs per index; with
/// that, results are identical to the serial loop for any thread
/// count. Exceptions from fn propagate (first one wins, remaining
/// chunks are skipped).
template <typename Fn>
void parallel_for(std::int64_t begin, std::int64_t end, std::int64_t grain,
                  Fn&& fn) {
  const std::int64_t chunks = chunk_count(begin, end, grain);
  if (chunks == 0) return;
  if (chunks == 1) {
    fn(begin, end);
    return;
  }
  const std::int64_t g = grain > 0 ? grain : (end - begin);
  ThreadPool::global().run_chunks(chunks, [&](std::int64_t c) {
    const std::int64_t b = begin + c * g;
    fn(b, std::min(end, b + g));
  });
}

/// Like parallel_for but also hands fn the chunk index:
/// fn(chunk, chunk_begin, chunk_end). For kernels that stage
/// per-chunk partial results (indexed by chunk, merged afterwards in
/// ascending chunk order) instead of writing disjoint outputs.
template <typename Fn>
void parallel_for_chunks(std::int64_t begin, std::int64_t end,
                         std::int64_t grain, Fn&& fn) {
  const std::int64_t chunks = chunk_count(begin, end, grain);
  if (chunks == 0) return;
  const std::int64_t g = grain > 0 ? grain : (end - begin);
  if (chunks == 1) {
    fn(std::int64_t{0}, begin, end);
    return;
  }
  ThreadPool::global().run_chunks(chunks, [&](std::int64_t c) {
    const std::int64_t b = begin + c * g;
    fn(c, b, std::min(end, b + g));
  });
}

/// Deterministic fixed-shape tree reduction. map(chunk_begin,
/// chunk_end) -> T reduces one fixed-grain chunk serially; the chunk
/// results are then combined pairwise level by level — combine(x[0],
/// x[1]), combine(x[2], x[3]), ... with an odd tail carried through —
/// until one value remains. The tree's shape depends only on the
/// chunk count (i.e. on the range and grain), so the result is
/// bit-exact for every thread count. `empty` is returned for an empty
/// range; a single chunk returns map(begin, end) directly.
template <typename T, typename Map, typename Combine>
T parallel_reduce(std::int64_t begin, std::int64_t end, std::int64_t grain,
                  T empty, Map&& map, Combine&& combine) {
  const std::int64_t chunks = chunk_count(begin, end, grain);
  if (chunks == 0) return empty;
  if (chunks == 1) return map(begin, end);
  const std::int64_t g = grain > 0 ? grain : (end - begin);
  std::vector<T> parts(static_cast<std::size_t>(chunks), empty);
  ThreadPool::global().run_chunks(chunks, [&](std::int64_t c) {
    const std::int64_t b = begin + c * g;
    parts[static_cast<std::size_t>(c)] = map(b, std::min(end, b + g));
  });
  // Fixed-shape pairwise tree, folded in place on the calling thread.
  std::size_t width = parts.size();
  while (width > 1) {
    std::size_t out = 0;
    for (std::size_t i = 0; i + 1 < width; i += 2) {
      parts[out++] = combine(std::move(parts[i]), std::move(parts[i + 1]));
    }
    if (width % 2 == 1) parts[out++] = std::move(parts[width - 1]);
    width = out;
  }
  return std::move(parts[0]);
}

}  // namespace matsci::core::parallel
