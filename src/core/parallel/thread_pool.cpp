#include "core/parallel/thread_pool.hpp"

#include <atomic>
#include <cstdlib>
#include <string>

#include "core/macros.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace matsci::core::parallel {

namespace {
thread_local bool tls_on_worker = false;

/// Pool metrics, resolved once (registry lookup takes a lock). Queue
/// depth is a gauge updated under the pool mutex; task wait is the
/// submit-to-claim latency of independent tasks (serve dispatch jobs),
/// not of run_chunks helpers.
struct PoolMetrics {
  obs::Counter& tasks_submitted;
  obs::Counter& chunks_executed;
  obs::Counter& regions;
  obs::Gauge& queue_depth;
  obs::Histogram& task_wait_us;

  static PoolMetrics& get() {
    static PoolMetrics* m = new PoolMetrics{
        obs::MetricsRegistry::global().counter("pool.tasks_submitted"),
        obs::MetricsRegistry::global().counter("pool.chunks_executed"),
        obs::MetricsRegistry::global().counter("pool.regions"),
        obs::MetricsRegistry::global().gauge("pool.queue_depth"),
        obs::MetricsRegistry::global().histogram("pool.task_wait_us"),
    };
    return *m;
  }
};
}  // namespace

// --- TaskHandle --------------------------------------------------------------

void TaskHandle::run_now_or_wait() {
  MATSCI_CHECK(state_ != nullptr, "run_now_or_wait on an empty TaskHandle");
  State& s = *state_;
  bool claimed = false;
  {
    std::lock_guard<std::mutex> lock(s.mu);
    if (s.status == State::kPending) {
      s.status = State::kRunning;
      claimed = true;
    }
  }
  if (claimed) {
    std::exception_ptr error;
    try {
      s.fn();
    } catch (...) {
      error = std::current_exception();
    }
    {
      std::lock_guard<std::mutex> lock(s.mu);
      s.error = error;
      s.status = State::kDone;
    }
    s.cv.notify_all();
  } else {
    std::unique_lock<std::mutex> lock(s.mu);
    s.cv.wait(lock, [&s] { return s.status == State::kDone; });
  }
  if (state_->error) std::rethrow_exception(state_->error);
}

// --- ThreadPool --------------------------------------------------------------

ThreadPool& ThreadPool::global() {
  static ThreadPool pool(default_size());
  return pool;
}

std::int64_t ThreadPool::default_size() {
  if (const char* env = std::getenv("MATSCI_NUM_THREADS")) {
    char* end = nullptr;
    const long v = std::strtol(env, &end, 10);
    if (end != env && *end == '\0' && v > 0) return static_cast<std::int64_t>(v);
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? static_cast<std::int64_t>(hw) : 1;
}

bool ThreadPool::on_worker_thread() { return tls_on_worker; }

ThreadPool::ThreadPool(std::int64_t threads) { start(threads); }

ThreadPool::~ThreadPool() { stop_and_join(); }

void ThreadPool::start(std::int64_t threads) {
  size_ = threads > 0 ? threads : 1;
  stop_ = false;
  threads_.reserve(static_cast<std::size_t>(size_));
  for (std::int64_t i = 0; i < size_; ++i) {
    threads_.emplace_back([this] { worker_loop(); });
  }
}

void ThreadPool::stop_and_join() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (std::thread& t : threads_) {
    if (t.joinable()) t.join();
  }
  threads_.clear();
}

void ThreadPool::resize(std::int64_t threads) {
  MATSCI_CHECK(!on_worker_thread(),
               "ThreadPool::resize must not be called from a pool worker");
  stop_and_join();
  start(threads);
}

TaskHandle ThreadPool::submit(std::function<void()> fn) {
  PoolMetrics& metrics = PoolMetrics::get();
  auto state = std::make_shared<TaskHandle::State>();
  state->fn = std::move(fn);
  state->enqueued_ns = obs::Tracer::now_ns();
  {
    std::lock_guard<std::mutex> lock(mu_);
    MATSCI_CHECK(!stop_, "ThreadPool::submit after shutdown");
    tasks_.push_back(state);
    metrics.queue_depth.set(static_cast<double>(tasks_.size()));
  }
  metrics.tasks_submitted.add(1);
  cv_.notify_one();
  return TaskHandle(std::move(state));
}

void ThreadPool::worker_loop() {
  tls_on_worker = true;
  for (;;) {
    std::shared_ptr<TaskHandle::State> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stop_ || !tasks_.empty(); });
      if (tasks_.empty()) {
        // stop_ is set and the queue is drained.
        return;
      }
      task = std::move(tasks_.front());
      tasks_.pop_front();
      PoolMetrics::get().queue_depth.set(static_cast<double>(tasks_.size()));
    }
    if (task->enqueued_ns != 0) {
      PoolMetrics::get().task_wait_us.observe(
          static_cast<double>(obs::Tracer::now_ns() - task->enqueued_ns) /
          1.0e3);
    }
    bool claimed = false;
    {
      std::lock_guard<std::mutex> lock(task->mu);
      if (task->status == TaskHandle::State::kPending) {
        task->status = TaskHandle::State::kRunning;
        claimed = true;
      }
    }
    if (!claimed) continue;  // reclaimed via run_now_or_wait
    std::exception_ptr error;
    try {
      task->fn();
    } catch (...) {
      error = std::current_exception();
    }
    {
      std::lock_guard<std::mutex> lock(task->mu);
      task->error = error;
      task->status = TaskHandle::State::kDone;
    }
    task->cv.notify_all();
  }
}

// --- run_chunks --------------------------------------------------------------

/// Shared state of one parallel region. Chunks are claimed through an
/// atomic cursor — claim order is racy, but every chunk's index (and
/// therefore its slice of the problem) is fixed up front, which is
/// what the determinism contract rests on.
struct ThreadPool::Region {
  std::function<void(std::int64_t)> fn;
  std::int64_t num_chunks = 0;
  std::atomic<std::int64_t> next{0};
  std::atomic<std::int64_t> completed{0};
  std::atomic<bool> failed{false};
  std::mutex mu;
  std::condition_variable cv;
  std::exception_ptr error;  // first recorded chunk exception

  void work() {
    for (;;) {
      const std::int64_t c = next.fetch_add(1, std::memory_order_relaxed);
      if (c >= num_chunks) return;
      if (!failed.load(std::memory_order_relaxed)) {
        try {
          fn(c);
        } catch (...) {
          std::lock_guard<std::mutex> lock(mu);
          if (!error) error = std::current_exception();
          failed.store(true, std::memory_order_relaxed);
        }
      }
      if (completed.fetch_add(1, std::memory_order_acq_rel) + 1 ==
          num_chunks) {
        {
          std::lock_guard<std::mutex> lock(mu);
        }
        cv.notify_all();
      }
    }
  }
};

void ThreadPool::run_chunks(
    std::int64_t num_chunks,
    const std::function<void(std::int64_t)>& chunk_fn) {
  if (num_chunks <= 0) return;
  PoolMetrics& metrics = PoolMetrics::get();
  metrics.chunks_executed.add(num_chunks);
  if (num_chunks == 1 || size_ <= 1 || on_worker_thread()) {
    for (std::int64_t c = 0; c < num_chunks; ++c) chunk_fn(c);
    return;
  }
  MATSCI_TRACE_SCOPE("pool/run_chunks");
  metrics.regions.add(1);

  auto region = std::make_shared<Region>();
  region->fn = chunk_fn;
  region->num_chunks = num_chunks;

  const std::int64_t helpers = std::min(size_ - 1, num_chunks - 1);
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (std::int64_t h = 0; h < helpers && !stop_; ++h) {
      auto state = std::make_shared<TaskHandle::State>();
      state->fn = [region] { region->work(); };
      tasks_.push_back(std::move(state));
    }
  }
  cv_.notify_all();

  region->work();  // the caller claims chunks too
  {
    std::unique_lock<std::mutex> lock(region->mu);
    region->cv.wait(lock, [&] {
      return region->completed.load(std::memory_order_acquire) == num_chunks;
    });
    if (region->error) std::rethrow_exception(region->error);
  }
}

}  // namespace matsci::core::parallel
