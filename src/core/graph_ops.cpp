#include "core/graph_ops.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "core/autograd.hpp"
#include "core/backend/backend.hpp"
#include "core/macros.hpp"
#include "core/memory/storage.hpp"
#include "core/ops.hpp"
#include "core/parallel/parallel_for.hpp"
#include "obs/trace.hpp"

namespace matsci::core {

namespace {

using memory::FloatStorage;

constexpr std::int64_t kRowGrainWork = 1 << 16;  // scalars per row-chunk

/// Rows per chunk targeting ~kRowGrainWork scalars of work.
std::int64_t rows_grain(std::int64_t per_row) {
  return std::max<std::int64_t>(1,
                                kRowGrainWork / std::max<std::int64_t>(1, per_row));
}

void check_segments(const std::vector<std::int64_t>& segment,
                    std::int64_t num_rows, std::int64_t num_segments,
                    const char* op) {
  MATSCI_CHECK(static_cast<std::int64_t>(segment.size()) == num_rows,
               op << ": segment ids (" << segment.size()
                  << ") must match rows (" << num_rows << ")");
  for (const std::int64_t s : segment) {
    MATSCI_CHECK(s >= 0 && s < num_segments,
                 op << ": segment id " << s << " out of range [0, "
                    << num_segments << ")");
  }
}

/// Parallelizing a scatter means different threads would race on the
/// same destination row, and atomics would make the addition order —
/// and therefore the float rounding — nondeterministic. Instead we
/// invert the index once (a stable counting sort: bucket b holds the
/// source rows scattering into destination b, in ascending order) and
/// parallelize over destination buckets, which are disjoint. Each
/// destination element accumulates its sources in ascending row order
/// — exactly the order the serial loop uses — so the result is
/// bit-identical to serial for any thread count. (The row addition
/// itself runs through the backend add_rows kernel: pointwise IEEE
/// adds, bit-identical across backends too.)
struct RowBucketPlan {
  std::vector<std::int64_t> order;    ///< source rows grouped by destination
  std::vector<std::int64_t> offsets;  ///< bucket b spans order[offsets[b]..offsets[b+1])
};

RowBucketPlan bucket_rows(const std::vector<std::int64_t>& index,
                          std::int64_t num_buckets) {
  RowBucketPlan plan;
  plan.offsets.assign(static_cast<std::size_t>(num_buckets) + 1, 0);
  for (const std::int64_t b : index) {
    ++plan.offsets[static_cast<std::size_t>(b) + 1];
  }
  for (std::size_t b = 1; b < plan.offsets.size(); ++b) {
    plan.offsets[b] += plan.offsets[b - 1];
  }
  plan.order.resize(index.size());
  std::vector<std::int64_t> cursor(plan.offsets.begin(),
                                   plan.offsets.end() - 1);
  for (std::size_t r = 0; r < index.size(); ++r) {
    plan.order[static_cast<std::size_t>(
        cursor[static_cast<std::size_t>(index[r])]++)] =
        static_cast<std::int64_t>(r);
  }
  return plan;
}

/// dst[index[r], :] += src[r, :] for all rows, deterministically.
/// Serial below kScatterParallelCutoff scalars of work (the bucket
/// plan would cost more than it saves); both paths produce identical
/// bits (same per-element accumulation order).
constexpr std::int64_t kScatterParallelCutoff = 1 << 15;

void scatter_add_kernel(const float* src, std::int64_t num_src,
                        std::int64_t d,
                        const std::vector<std::int64_t>& index,
                        std::int64_t num_dst, float* dst) {
  const backend::KernelTable& kt = backend::kernels();
  if (num_src * d < kScatterParallelCutoff || num_dst > num_src) {
    for (std::int64_t r = 0; r < num_src; ++r) {
      kt.add_rows(dst + index[static_cast<std::size_t>(r)] * d, src + r * d,
                  d);
    }
    return;
  }
  const RowBucketPlan plan = bucket_rows(index, num_dst);
  const std::int64_t avg_rows =
      std::max<std::int64_t>(1, num_src / std::max<std::int64_t>(1, num_dst));
  parallel::parallel_for(
      0, num_dst, rows_grain(avg_rows * d),
      [&](std::int64_t bb, std::int64_t be) {
        for (std::int64_t b = bb; b < be; ++b) {
          float* out = dst + b * d;
          for (std::int64_t k = plan.offsets[static_cast<std::size_t>(b)];
               k < plan.offsets[static_cast<std::size_t>(b) + 1]; ++k) {
            kt.add_rows(out,
                        src + plan.order[static_cast<std::size_t>(k)] * d, d);
          }
        }
      });
}

}  // namespace

Tensor gather_rows(const Tensor& x, const std::vector<std::int64_t>& index) {
  MATSCI_TRACE_SCOPE("core/gather_rows");
  MATSCI_CHECK(x.defined() && x.dim() == 2, "gather_rows requires 2-D input");
  const std::int64_t n = x.size(0), d = x.size(1);
  const std::int64_t m = static_cast<std::int64_t>(index.size());
  const float* px = x.data();
  for (const std::int64_t src : index) {
    MATSCI_CHECK(src >= 0 && src < n,
                 "gather_rows: index " << src << " out of range [0, " << n << ")");
  }
  const backend::KernelTable& kt = backend::kernels();
  FloatStorage out =
      FloatStorage::uninitialized(static_cast<std::size_t>(m * d));
  parallel::parallel_for(
      0, m, rows_grain(d), [&](std::int64_t rb, std::int64_t re) {
        kt.gather_rows(px, index.data(), out.data(), rb, re, d);
      });
  auto ix = x.impl();
  return make_op_result(
      {m, d}, std::move(out), "gather_rows", {ix},
      [ix, index, n, d, m](TensorImpl& o) {
        if (!ix->needs_grad()) return;
        FloatStorage gx = FloatStorage::zeros(static_cast<std::size_t>(n * d));
        scatter_add_kernel(o.grad.data(), m, d, index, n, gx.data());
        ix->accumulate_grad(gx.data());
      });
}

Tensor scatter_add_rows(const Tensor& x,
                        const std::vector<std::int64_t>& index,
                        std::int64_t num_rows) {
  MATSCI_TRACE_SCOPE("core/scatter_add_rows");
  MATSCI_CHECK(x.defined() && x.dim() == 2,
               "scatter_add_rows requires 2-D input");
  MATSCI_CHECK(num_rows >= 0, "scatter_add_rows: negative num_rows");
  const std::int64_t m = x.size(0), d = x.size(1);
  MATSCI_CHECK(static_cast<std::int64_t>(index.size()) == m,
               "scatter_add_rows: " << index.size() << " indices for " << m
                                    << " rows");
  for (const std::int64_t dst : index) {
    MATSCI_CHECK(dst >= 0 && dst < num_rows,
                 "scatter_add_rows: index " << dst << " out of range [0, "
                                            << num_rows << ")");
  }
  // Scatter targets keep the zero-fill: rows with no incoming source
  // must read as zero.
  FloatStorage out =
      FloatStorage::zeros(static_cast<std::size_t>(num_rows * d));
  scatter_add_kernel(x.data(), m, d, index, num_rows, out.data());
  auto ix = x.impl();
  return make_op_result(
      {num_rows, d}, std::move(out), "scatter_add_rows", {ix},
      [ix, index, d, m](TensorImpl& o) {
        if (!ix->needs_grad()) return;
        const float* go = o.grad.data();
        const backend::KernelTable& kt = backend::kernels();
        FloatStorage gx =
            FloatStorage::uninitialized(static_cast<std::size_t>(m * d));
        parallel::parallel_for(
            0, m, rows_grain(d), [&](std::int64_t rb, std::int64_t re) {
              kt.gather_rows(go, index.data(), gx.data(), rb, re, d);
            });
        ix->accumulate_grad(gx.data());
      });
}

Tensor segment_sum(const Tensor& x, const std::vector<std::int64_t>& segment,
                   std::int64_t num_segments) {
  MATSCI_TRACE_SCOPE("core/segment_sum");
  MATSCI_CHECK(x.defined() && x.dim() == 2, "segment_sum requires 2-D input");
  const std::int64_t n = x.size(0), d = x.size(1);
  check_segments(segment, n, num_segments, "segment_sum");
  const float* px = x.data();
  FloatStorage out =
      FloatStorage::zeros(static_cast<std::size_t>(num_segments * d));
  scatter_add_kernel(px, n, d, segment, num_segments, out.data());
  auto ix = x.impl();
  return make_op_result(
      {num_segments, d}, std::move(out), "segment_sum", {ix},
      [ix, segment, n, d](TensorImpl& o) {
        if (!ix->needs_grad()) return;
        const float* go = o.grad.data();
        const backend::KernelTable& kt = backend::kernels();
        FloatStorage gx =
            FloatStorage::uninitialized(static_cast<std::size_t>(n * d));
        parallel::parallel_for(
            0, n, rows_grain(d), [&](std::int64_t rb, std::int64_t re) {
              kt.gather_rows(go, segment.data(), gx.data(), rb, re, d);
            });
        ix->accumulate_grad(gx.data());
      });
}

Tensor segment_counts(const std::vector<std::int64_t>& segment,
                      std::int64_t num_segments) {
  FloatStorage counts =
      FloatStorage::zeros(static_cast<std::size_t>(num_segments));
  for (const std::int64_t s : segment) {
    MATSCI_CHECK(s >= 0 && s < num_segments,
                 "segment_counts: id " << s << " out of range");
    counts[static_cast<std::size_t>(s)] += 1.0f;
  }
  return Tensor::from_storage(std::move(counts), {num_segments, 1});
}

Tensor segment_mean(const Tensor& x, const std::vector<std::int64_t>& segment,
                    std::int64_t num_segments) {
  Tensor sums = segment_sum(x, segment, num_segments);
  Tensor counts = segment_counts(segment, num_segments);
  // Guard empty segments: dividing by max(count, 1) leaves their zero rows.
  float* pc = counts.data();
  for (std::int64_t s = 0; s < num_segments; ++s) {
    if (pc[s] == 0.0f) pc[s] = 1.0f;
  }
  return div(sums, counts);
}

Tensor segment_max(const Tensor& x, const std::vector<std::int64_t>& segment,
                   std::int64_t num_segments, float empty_value) {
  MATSCI_CHECK(x.defined() && x.dim() == 2, "segment_max requires 2-D input");
  const std::int64_t n = x.size(0), d = x.size(1);
  check_segments(segment, n, num_segments, "segment_max");
  const float* px = x.data();
  constexpr float kNegInf = -std::numeric_limits<float>::infinity();
  FloatStorage out =
      FloatStorage::full(static_cast<std::size_t>(num_segments * d), kNegInf);
  std::vector<std::int64_t> arg(static_cast<std::size_t>(num_segments * d), -1);
  for (std::int64_t r = 0; r < n; ++r) {
    const std::int64_t s = segment[static_cast<std::size_t>(r)];
    for (std::int64_t j = 0; j < d; ++j) {
      const float v = px[r * d + j];
      if (v > out[s * d + j]) {
        out[s * d + j] = v;
        arg[s * d + j] = r;
      }
    }
  }
  for (std::size_t i = 0; i < out.size(); ++i) {
    if (arg[i] < 0) out[i] = empty_value;
  }
  auto ix = x.impl();
  return make_op_result(
      {num_segments, d}, std::move(out), "segment_max", {ix},
      [ix, arg = std::move(arg), n, d](TensorImpl& o) {
        if (!ix->needs_grad()) return;
        const float* go = o.grad.data();
        FloatStorage gx = FloatStorage::zeros(static_cast<std::size_t>(n * d));
        for (std::size_t i = 0; i < arg.size(); ++i) {
          if (arg[i] >= 0) {
            gx[static_cast<std::size_t>(arg[i]) * d +
               static_cast<std::int64_t>(i) % d] += go[i];
          }
        }
        ix->accumulate_grad(gx.data());
      });
}

Tensor row_sq_norm(const Tensor& x) {
  return sum_dim(square(x), /*dim=*/1, /*keepdim=*/true);
}

Tensor segment_softmax(const Tensor& x,
                       const std::vector<std::int64_t>& segment,
                       std::int64_t num_segments) {
  MATSCI_CHECK(x.defined() && x.dim() == 2 && x.size(1) == 1,
               "segment_softmax expects an [E, 1] score column");
  const std::int64_t n = x.size(0);
  check_segments(segment, n, num_segments, "segment_softmax");
  const float* px = x.data();

  // Per-segment max shift (serial: index-driven running max), then the
  // shifted exponentials through the backend kernel, then the
  // order-dependent per-segment double sum — kept serial in ascending
  // row order so the normalization is bit-stable at any thread count.
  constexpr float kNegInf = -std::numeric_limits<float>::infinity();
  std::vector<float> seg_max(static_cast<std::size_t>(num_segments), kNegInf);
  for (std::int64_t r = 0; r < n; ++r) {
    float& m = seg_max[static_cast<std::size_t>(segment[static_cast<std::size_t>(r)])];
    m = std::max(m, px[r]);
  }
  const backend::KernelTable& kt = backend::kernels();
  FloatStorage out = FloatStorage::uninitialized(static_cast<std::size_t>(n));
  parallel::parallel_for(
      0, n, rows_grain(4), [&](std::int64_t rb, std::int64_t re) {
        kt.seg_shift_exp(px, segment.data(), seg_max.data(), out.data(), rb,
                         re);
      });
  std::vector<double> seg_sum(static_cast<std::size_t>(num_segments), 0.0);
  for (std::int64_t r = 0; r < n; ++r) {
    seg_sum[static_cast<std::size_t>(segment[static_cast<std::size_t>(r)])] +=
        out[static_cast<std::size_t>(r)];
  }
  for (std::int64_t r = 0; r < n; ++r) {
    out[static_cast<std::size_t>(r)] /= static_cast<float>(
        seg_sum[static_cast<std::size_t>(segment[static_cast<std::size_t>(r)])]);
  }

  auto ix = x.impl();
  FloatStorage probs;
  if (grad_mode_enabled() && ix->needs_grad()) probs = out;
  return make_op_result(
      {n, 1}, std::move(out), "segment_softmax", {ix},
      [ix, segment, n, num_segments, probs = std::move(probs)](TensorImpl& o) {
        if (!ix->needs_grad()) return;
        const float* go = o.grad.data();
        // d/dx softmax within each segment: p_r (g_r − Σ_s p_s g_s).
        // The per-segment dot stays serial (order-dependent double sum);
        // the Jacobian application runs through the backend kernel.
        std::vector<double> dot(static_cast<std::size_t>(num_segments), 0.0);
        for (std::int64_t r = 0; r < n; ++r) {
          dot[static_cast<std::size_t>(segment[static_cast<std::size_t>(r)])] +=
              static_cast<double>(go[r]) * probs[static_cast<std::size_t>(r)];
        }
        const backend::KernelTable& kt = backend::kernels();
        FloatStorage gx =
            FloatStorage::uninitialized(static_cast<std::size_t>(n));
        parallel::parallel_for(
            0, n, rows_grain(4), [&](std::int64_t rb, std::int64_t re) {
              kt.seg_softmax_grad(probs.data(), go, segment.data(), dot.data(),
                                  gx.data(), rb, re);
            });
        ix->accumulate_grad(gx.data());
      });
}

Tensor gaussian_rbf(const Tensor& d, const std::vector<float>& centers,
                    float gamma) {
  MATSCI_CHECK(d.defined() && d.dim() == 2 && d.size(1) == 1,
               "gaussian_rbf expects an [E, 1] distance column");
  MATSCI_CHECK(!centers.empty() && gamma > 0.0f,
               "gaussian_rbf needs centers and positive gamma");
  const std::int64_t n = d.size(0);
  const std::int64_t k = static_cast<std::int64_t>(centers.size());
  const float* pd = d.data();
  const backend::KernelTable& kt = backend::kernels();
  FloatStorage out =
      FloatStorage::uninitialized(static_cast<std::size_t>(n * k));
  parallel::parallel_for(
      0, n, rows_grain(4 * k), [&](std::int64_t rb, std::int64_t re) {
        kt.gaussian_rbf_rows(pd, centers.data(), k, gamma, rb, re, out.data());
      });
  auto id = d.impl();
  FloatStorage saved;
  if (grad_mode_enabled() && id->needs_grad()) saved = out;
  return make_op_result(
      {n, k}, std::move(out), "gaussian_rbf", {id},
      [id, centers, gamma, n, k, saved = std::move(saved)](TensorImpl& o) {
        if (!id->needs_grad()) return;
        const float* go = o.grad.data();
        const float* pd2 = id->data.data();
        FloatStorage gd =
            FloatStorage::uninitialized(static_cast<std::size_t>(n));
        parallel::parallel_for(
            0, n, rows_grain(4 * k), [&](std::int64_t rb, std::int64_t re) {
              for (std::int64_t r = rb; r < re; ++r) {
                double acc = 0.0;
                for (std::int64_t c = 0; c < k; ++c) {
                  const float diff =
                      pd2[r] - centers[static_cast<std::size_t>(c)];
                  acc += static_cast<double>(go[r * k + c]) *
                         (-2.0 * gamma * diff) *
                         saved[static_cast<std::size_t>(r * k + c)];
                }
                gd[static_cast<std::size_t>(r)] = static_cast<float>(acc);
              }
            });
        id->accumulate_grad(gd.data());
      });
}

std::vector<float> linspace_centers(float lo, float hi, std::int64_t count) {
  MATSCI_CHECK(count >= 2 && hi > lo, "linspace_centers: bad range");
  std::vector<float> centers(static_cast<std::size_t>(count));
  for (std::int64_t i = 0; i < count; ++i) {
    centers[static_cast<std::size_t>(i)] =
        lo + (hi - lo) * static_cast<float>(i) / static_cast<float>(count - 1);
  }
  return centers;
}

}  // namespace matsci::core
