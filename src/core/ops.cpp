#include "core/ops.hpp"

#include <algorithm>
#include <cmath>

#include "core/autograd.hpp"
#include "core/backend/backend.hpp"
#include "core/macros.hpp"
#include "core/memory/storage.hpp"
#include "core/parallel/parallel_for.hpp"
#include "obs/trace.hpp"

namespace matsci::core {

namespace {

using backend::Bcast;
using backend::BinaryOp;
using backend::UnaryOp;
using memory::FloatStorage;

// Fixed work-per-chunk targets (in scalar operations). Chunk layout
// depends only on tensor shape, so every kernel is bit-exact across
// thread counts within a backend; problems below one grain collapse to
// a single chunk and execute exactly like the previous serial code.
constexpr std::int64_t kElemGrain = 1 << 15;        // elementwise loops
constexpr std::int64_t kRowGrainWork = 1 << 16;     // row-sliced loops
constexpr std::int64_t kMatmulGrainWork = 1 << 18;  // flops per matmul chunk
constexpr std::int64_t kReduceGrain = 1 << 16;      // scalar reductions

/// Rows per chunk so that each chunk holds ~`work_target` scalar ops.
std::int64_t rows_grain(std::int64_t work_target, std::int64_t per_row) {
  return std::max<std::int64_t>(
      1, work_target / std::max<std::int64_t>(1, per_row));
}

struct BcastInfo {
  Bcast kind;
  std::int64_t rows;  // of a (or numel when 1-D)
  std::int64_t cols;
};

BcastInfo classify_broadcast(const Tensor& a, const Tensor& b,
                             const char* opname) {
  const Shape& sa = a.shape();
  const Shape& sb = b.shape();
  if (same_shape(sa, sb)) {
    const std::int64_t c = sa.size() == 2 ? sa[1] : a.numel();
    return {Bcast::kSame, sa.size() == 2 ? sa[0] : 1, c};
  }
  if (b.numel() == 1) {
    return {Bcast::kScalar, 1, a.numel()};
  }
  MATSCI_CHECK(sa.size() == 2,
               opname << ": broadcasting requires a 2-D lhs, got "
                      << shape_to_string(sa) << " vs " << shape_to_string(sb));
  const std::int64_t n = sa[0];
  const std::int64_t d = sa[1];
  const bool row = (sb.size() == 1 && sb[0] == d) ||
                   (sb.size() == 2 && sb[0] == 1 && sb[1] == d);
  const bool col = sb.size() == 2 && sb[0] == n && sb[1] == 1;
  MATSCI_CHECK(row || col, opname << ": cannot broadcast "
                                  << shape_to_string(sb) << " over "
                                  << shape_to_string(sa));
  return {row ? Bcast::kRow : Bcast::kCol, n, d};
}

/// ∂out/∂b at (x, y) for the table-routed binary ops — only used by the
/// serial reduced-broadcast gradient loops (the kSame path runs through
/// the vectorized binary_grad_b_same kernel instead).
float dfb_reduced(BinaryOp op, float x, float y) {
  switch (op) {
    case BinaryOp::kAdd:
      return 1.0f;
    case BinaryOp::kSub:
      return -1.0f;
    case BinaryOp::kMul:
      return x;
    case BinaryOp::kDiv:
      return -x / (y * y);
  }
  return 0.0f;  // unreachable
}

/// Differentiable binary elementwise op, routed through the backend
/// kernel table (b-side broadcasting).
Tensor binary_op(const Tensor& a, const Tensor& b, const char* name,
                 BinaryOp op) {
  MATSCI_CHECK(a.defined() && b.defined(), name << ": undefined operand");
  const BcastInfo info = classify_broadcast(a, b, name);
  const std::int64_t n = a.numel();
  const std::int64_t d = info.cols;
  const float* pa = a.data();
  const float* pb = b.data();

  const backend::KernelTable& kt = backend::kernels();
  FloatStorage out = FloatStorage::uninitialized(static_cast<std::size_t>(n));
  parallel::parallel_for(
      0, n, kElemGrain, [&](std::int64_t bb, std::int64_t e) {
        kt.binary_ew(op, info.kind, pa, pb, out.data(), bb, e, d);
      });

  auto ia = a.impl();
  auto ib = b.impl();
  return make_op_result(
      a.shape(), std::move(out), name, {ia, ib},
      [ia, ib, info, n, d, op](TensorImpl& o) {
        const backend::KernelTable& kt2 = backend::kernels();
        const float* go = o.grad.data();
        const float* pa2 = ia->data.data();
        const float* pb2 = ib->data.data();
        if (ia->needs_grad()) {
          // dL/da is elementwise in i for every broadcast kind.
          FloatStorage ga =
              FloatStorage::uninitialized(static_cast<std::size_t>(n));
          parallel::parallel_for(
              0, n, kElemGrain, [&](std::int64_t bb, std::int64_t e) {
                kt2.binary_grad_a(op, info.kind, go, pa2, pb2, ga.data(), bb,
                                  e, d);
              });
          ia->accumulate_grad(ga.data());
        }
        if (ib->needs_grad()) {
          if (info.kind == Bcast::kSame) {
            FloatStorage gb =
                FloatStorage::uninitialized(static_cast<std::size_t>(n));
            parallel::parallel_for(
                0, n, kElemGrain, [&](std::int64_t bb, std::int64_t e) {
                  kt2.binary_grad_b_same(op, go, pa2, pb2, gb.data(), bb, e);
                });
            ib->accumulate_grad(gb.data());
          } else {
            // The broadcast kinds reduce over a, which stays serial
            // (b is small there).
            FloatStorage gb = FloatStorage::zeros(ib->data.size());
            switch (info.kind) {
              case Bcast::kScalar:
                for (std::int64_t i = 0; i < n; ++i)
                  gb[0] += go[i] * dfb_reduced(op, pa2[i], pb2[0]);
                break;
              case Bcast::kRow:
                for (std::int64_t i = 0; i < n; ++i)
                  gb[i % d] += go[i] * dfb_reduced(op, pa2[i], pb2[i % d]);
                break;
              case Bcast::kCol:
                for (std::int64_t i = 0; i < n; ++i)
                  gb[i / d] += go[i] * dfb_reduced(op, pa2[i], pb2[i / d]);
                break;
              case Bcast::kSame:
                break;  // handled above
            }
            ib->accumulate_grad(gb.data());
          }
        }
      });
}

/// Differentiable unary elementwise op routed through the backend
/// kernel table. arg0/arg1 carry op parameters (scalar, clamp bounds).
Tensor routed_unary(const Tensor& a, const char* name, UnaryOp op,
                    float arg0 = 0.0f, float arg1 = 0.0f) {
  MATSCI_CHECK(a.defined(), name << ": undefined operand");
  const std::int64_t n = a.numel();
  const float* pa = a.data();
  const backend::KernelTable& kt = backend::kernels();
  FloatStorage out = FloatStorage::uninitialized(static_cast<std::size_t>(n));
  parallel::parallel_for(
      0, n, kElemGrain, [&](std::int64_t bb, std::int64_t e) {
        kt.unary_map(op, pa, out.data(), bb, e, arg0, arg1);
      });

  auto ia = a.impl();
  // Keep output values for the backward pass — only when a tape will
  // actually be recorded (inference skips the copy entirely).
  FloatStorage saved;
  if (grad_mode_enabled() && ia->needs_grad()) saved = out;
  return make_op_result(
      a.shape(), std::move(out), name, {ia},
      [ia, n, op, arg0, arg1, saved = std::move(saved)](TensorImpl& o) {
        if (!ia->needs_grad()) return;
        const backend::KernelTable& kt2 = backend::kernels();
        const float* go = o.grad.data();
        const float* pa2 = ia->data.data();
        FloatStorage ga =
            FloatStorage::uninitialized(static_cast<std::size_t>(n));
        parallel::parallel_for(
            0, n, kElemGrain, [&](std::int64_t bb, std::int64_t e) {
              kt2.unary_grad(op, pa2, saved.data(), go, ga.data(), bb, e,
                             arg0, arg1);
            });
        ia->accumulate_grad(ga.data());
      });
}

/// Generic differentiable unary elementwise op for the long tail of
/// activations without a table entry (log/selu/gelu/softplus). df
/// receives (x, y).
template <typename F, typename DF>
Tensor unary_op(const Tensor& a, const char* name, F f, DF df) {
  MATSCI_CHECK(a.defined(), name << ": undefined operand");
  const std::int64_t n = a.numel();
  const float* pa = a.data();
  FloatStorage out = FloatStorage::uninitialized(static_cast<std::size_t>(n));
  parallel::parallel_for(0, n, kElemGrain, [&](std::int64_t b, std::int64_t e) {
    for (std::int64_t i = b; i < e; ++i) out[i] = f(pa[i]);
  });

  auto ia = a.impl();
  FloatStorage saved;
  if (grad_mode_enabled() && ia->needs_grad()) saved = out;
  return make_op_result(
      a.shape(), std::move(out), name, {ia},
      [ia, n, df, saved = std::move(saved)](TensorImpl& o) {
        if (!ia->needs_grad()) return;
        const float* go = o.grad.data();
        const float* pa2 = ia->data.data();
        FloatStorage ga =
            FloatStorage::uninitialized(static_cast<std::size_t>(n));
        parallel::parallel_for(
            0, n, kElemGrain, [&](std::int64_t b, std::int64_t e) {
              for (std::int64_t i = b; i < e; ++i)
                ga[i] = go[i] * df(pa2[i], saved[i]);
            });
        ia->accumulate_grad(ga.data());
      });
}

constexpr float kSeluLambda = 1.0507009873554805f;
constexpr float kSeluAlpha = 1.6732632423543772f;

float sigmoid_scalar(float x) { return 1.0f / (1.0f + std::exp(-x)); }

}  // namespace

// --- binary ----------------------------------------------------------------

Tensor add(const Tensor& a, const Tensor& b) {
  return binary_op(a, b, "add", BinaryOp::kAdd);
}

Tensor sub(const Tensor& a, const Tensor& b) {
  return binary_op(a, b, "sub", BinaryOp::kSub);
}

Tensor mul(const Tensor& a, const Tensor& b) {
  return binary_op(a, b, "mul", BinaryOp::kMul);
}

Tensor div(const Tensor& a, const Tensor& b) {
  return binary_op(a, b, "div", BinaryOp::kDiv);
}

Tensor add_scalar(const Tensor& a, float s) {
  return routed_unary(a, "add_scalar", UnaryOp::kAddScalar, s);
}

Tensor mul_scalar(const Tensor& a, float s) {
  return routed_unary(a, "mul_scalar", UnaryOp::kMulScalar, s);
}

// --- unary -------------------------------------------------------------------

Tensor neg(const Tensor& a) { return mul_scalar(a, -1.0f); }

Tensor abs(const Tensor& a) { return routed_unary(a, "abs", UnaryOp::kAbs); }

Tensor square(const Tensor& a) {
  return routed_unary(a, "square", UnaryOp::kSquare);
}

Tensor sqrt(const Tensor& a) {
  return routed_unary(a, "sqrt", UnaryOp::kSqrt);
}

Tensor rsqrt(const Tensor& a) {
  return routed_unary(a, "rsqrt", UnaryOp::kRsqrt);
}

Tensor exp(const Tensor& a) { return routed_unary(a, "exp", UnaryOp::kExp); }

Tensor log(const Tensor& a) {
  return unary_op(
      a, "log", [](float x) { return std::log(x); },
      [](float x, float) { return 1.0f / x; });
}

Tensor sigmoid(const Tensor& a) {
  return routed_unary(a, "sigmoid", UnaryOp::kSigmoid);
}

Tensor tanh(const Tensor& a) {
  return routed_unary(a, "tanh", UnaryOp::kTanh);
}

Tensor relu(const Tensor& a) {
  return routed_unary(a, "relu", UnaryOp::kRelu);
}

Tensor silu(const Tensor& a) {
  return routed_unary(a, "silu", UnaryOp::kSilu);
}

Tensor selu(const Tensor& a) {
  return unary_op(
      a, "selu",
      [](float x) {
        return x > 0.0f ? kSeluLambda * x
                        : kSeluLambda * kSeluAlpha * (std::exp(x) - 1.0f);
      },
      [](float x, float y) {
        return x > 0.0f ? kSeluLambda : y + kSeluLambda * kSeluAlpha;
      });
}

Tensor gelu(const Tensor& a) {
  constexpr float kC = 0.7978845608028654f;  // sqrt(2/pi)
  return unary_op(
      a, "gelu",
      [](float x) {
        const float inner = kC * (x + 0.044715f * x * x * x);
        return 0.5f * x * (1.0f + std::tanh(inner));
      },
      [](float x, float) {
        const float inner = kC * (x + 0.044715f * x * x * x);
        const float t = std::tanh(inner);
        const float dinner = kC * (1.0f + 3.0f * 0.044715f * x * x);
        return 0.5f * (1.0f + t) + 0.5f * x * (1.0f - t * t) * dinner;
      });
}

Tensor softplus(const Tensor& a) {
  return unary_op(
      a, "softplus",
      [](float x) {
        // Numerically stable: log(1+e^x) = max(x,0) + log1p(e^{-|x|}).
        return std::max(x, 0.0f) + std::log1p(std::exp(-std::fabs(x)));
      },
      [](float x, float) { return sigmoid_scalar(x); });
}

Tensor clamp(const Tensor& a, float lo, float hi) {
  MATSCI_CHECK(lo <= hi, "clamp: lo=" << lo << " > hi=" << hi);
  return routed_unary(a, "clamp", UnaryOp::kClamp, lo, hi);
}

// --- reductions --------------------------------------------------------------

Tensor sum(const Tensor& a) {
  MATSCI_CHECK(a.defined(), "sum: undefined operand");
  const std::int64_t n = a.numel();
  const float* pa = a.data();
  const backend::KernelTable& kt = backend::kernels();
  // Deterministic tree reduction: fixed-grain chunk partials combined
  // in a shape that depends only on n, never on the thread count.
  const double acc = parallel::parallel_reduce(
      0, n, kReduceGrain, 0.0,
      [pa, &kt](std::int64_t b, std::int64_t e) {
        return kt.reduce_sum(pa, b, e);
      },
      [](double x, double y) { return x + y; });
  auto ia = a.impl();
  return make_op_result(
      {1}, FloatStorage{static_cast<float>(acc)}, "sum", {ia},
      [ia, n](TensorImpl& o) {
        if (!ia->needs_grad()) return;
        const float g = o.grad[0];
        FloatStorage ga = FloatStorage::full(static_cast<std::size_t>(n), g);
        ia->accumulate_grad(ga.data());
      });
}

Tensor mean(const Tensor& a) {
  const std::int64_t n = a.numel();
  MATSCI_CHECK(n > 0, "mean of empty tensor");
  return mul_scalar(sum(a), 1.0f / static_cast<float>(n));
}

Tensor sum_dim(const Tensor& a, std::int64_t dim, bool keepdim) {
  MATSCI_CHECK(a.defined() && a.dim() == 2,
               "sum_dim requires a 2-D tensor, got rank "
                   << (a.defined() ? a.dim() : -1));
  MATSCI_CHECK(dim == 0 || dim == 1, "sum_dim: dim must be 0 or 1");
  const std::int64_t n = a.size(0);
  const std::int64_t d = a.size(1);
  const float* pa = a.data();
  const backend::KernelTable& kt = backend::kernels();

  Shape out_shape;
  FloatStorage out;
  if (dim == 0) {
    out = FloatStorage::zeros(static_cast<std::size_t>(d));
    // Column slices are independent outputs; each column accumulates
    // over rows in ascending order, exactly like the serial loop.
    parallel::parallel_for(
        0, d, rows_grain(kRowGrainWork, n),
        [&](std::int64_t jb, std::int64_t je) {
          for (std::int64_t i = 0; i < n; ++i)
            kt.add_rows(out.data() + jb, pa + i * d + jb, je - jb);
        });
    out_shape = keepdim ? Shape{1, d} : Shape{d};
  } else {
    out = FloatStorage::uninitialized(static_cast<std::size_t>(n));
    parallel::parallel_for(
        0, n, rows_grain(kRowGrainWork, d),
        [&](std::int64_t ib, std::int64_t ie) {
          kt.row_sums(pa, out.data(), ib, ie, d);
        });
    out_shape = keepdim ? Shape{n, 1} : Shape{n};
  }

  auto ia = a.impl();
  return make_op_result(
      std::move(out_shape), std::move(out), "sum_dim", {ia},
      [ia, n, d, dim](TensorImpl& o) {
        if (!ia->needs_grad()) return;
        const float* go = o.grad.data();
        FloatStorage ga =
            FloatStorage::uninitialized(static_cast<std::size_t>(n * d));
        parallel::parallel_for(
            0, n, rows_grain(kRowGrainWork, d),
            [&](std::int64_t ib, std::int64_t ie) {
              for (std::int64_t i = ib; i < ie; ++i)
                for (std::int64_t j = 0; j < d; ++j)
                  ga[i * d + j] = go[dim == 0 ? j : i];
            });
        ia->accumulate_grad(ga.data());
      });
}

Tensor mean_dim(const Tensor& a, std::int64_t dim, bool keepdim) {
  const std::int64_t m = dim == 0 ? a.size(0) : a.size(1);
  MATSCI_CHECK(m > 0, "mean_dim over empty dimension");
  return mul_scalar(sum_dim(a, dim, keepdim), 1.0f / static_cast<float>(m));
}

// --- linear algebra ----------------------------------------------------------

Tensor matmul(const Tensor& a, const Tensor& b) {
  MATSCI_TRACE_SCOPE("core/matmul");
  MATSCI_CHECK(a.defined() && b.defined() && a.dim() == 2 && b.dim() == 2,
               "matmul requires two 2-D tensors");
  const std::int64_t n = a.size(0), k = a.size(1), m = b.size(1);
  MATSCI_CHECK(b.size(0) == k, "matmul shape mismatch: "
                                   << shape_to_string(a.shape()) << " x "
                                   << shape_to_string(b.shape()));
  const float* pa = a.data();
  const float* pb = b.data();
  const backend::KernelTable& kt = backend::kernels();
  // Row-sliced over i; the kernel fully overwrites its rows, so the
  // output starts uninitialized. Within a backend, results are
  // bit-identical at any thread count (chunk bounds only affect which
  // rows a thread owns, never the per-row arithmetic).
  FloatStorage out =
      FloatStorage::uninitialized(static_cast<std::size_t>(n * m));
  parallel::parallel_for(
      0, n, rows_grain(kMatmulGrainWork, 2 * k * m),
      [&](std::int64_t ib, std::int64_t ie) {
        kt.matmul_nn(pa, pb, out.data(), ib, ie, k, m);
      });

  auto ia = a.impl();
  auto ib = b.impl();
  return make_op_result(
      {n, m}, std::move(out), "matmul", {ia, ib},
      [ia, ib, n, k, m](TensorImpl& o) {
        const backend::KernelTable& kt2 = backend::kernels();
        const float* go = o.grad.data();
        if (ia->needs_grad()) {
          // dA = dC * B^T — row-sliced over i, disjoint ga rows.
          FloatStorage ga =
              FloatStorage::uninitialized(static_cast<std::size_t>(n * k));
          const float* pb2 = ib->data.data();
          parallel::parallel_for(
              0, n, rows_grain(kMatmulGrainWork, 2 * k * m),
              [&](std::int64_t ib2, std::int64_t ie) {
                kt2.matmul_nt(go, pb2, ga.data(), ib2, ie, k, m);
              });
          ia->accumulate_grad(ga.data());
        }
        if (ib->needs_grad()) {
          // dB = A^T * dC — sliced over kk so each gb row accumulates
          // over i in ascending order regardless of the chunking.
          FloatStorage gb =
              FloatStorage::uninitialized(static_cast<std::size_t>(k * m));
          const float* pa2 = ia->data.data();
          parallel::parallel_for(
              0, k, rows_grain(kMatmulGrainWork, 2 * n * m),
              [&](std::int64_t kb, std::int64_t ke) {
                kt2.matmul_tn(pa2, go, gb.data(), kb, ke, n, k, m);
              });
          ib->accumulate_grad(gb.data());
        }
      });
}

Tensor transpose2d(const Tensor& a) {
  MATSCI_CHECK(a.defined() && a.dim() == 2, "transpose2d requires 2-D");
  const std::int64_t n = a.size(0), d = a.size(1);
  const float* pa = a.data();
  FloatStorage out =
      FloatStorage::uninitialized(static_cast<std::size_t>(n * d));
  parallel::parallel_for(
      0, n, rows_grain(kRowGrainWork, d),
      [&](std::int64_t ib, std::int64_t ie) {
        for (std::int64_t i = ib; i < ie; ++i)
          for (std::int64_t j = 0; j < d; ++j) out[j * n + i] = pa[i * d + j];
      });
  auto ia = a.impl();
  return make_op_result(
      {d, n}, std::move(out), "transpose2d", {ia}, [ia, n, d](TensorImpl& o) {
        if (!ia->needs_grad()) return;
        const float* go = o.grad.data();
        FloatStorage ga =
            FloatStorage::uninitialized(static_cast<std::size_t>(n * d));
        for (std::int64_t j = 0; j < d; ++j)
          for (std::int64_t i = 0; i < n; ++i) ga[i * d + j] = go[j * n + i];
        ia->accumulate_grad(ga.data());
      });
}

// --- shape ---------------------------------------------------------------

Tensor reshape(const Tensor& a, Shape shape) {
  MATSCI_CHECK(a.defined(), "reshape: undefined operand");
  MATSCI_CHECK(shape_numel(shape) == a.numel(),
               "reshape: numel mismatch " << a.numel() << " -> "
                                          << shape_to_string(shape));
  FloatStorage out =
      FloatStorage::copy_of(a.data(), static_cast<std::size_t>(a.numel()));
  auto ia = a.impl();
  return make_op_result(std::move(shape), std::move(out), "reshape", {ia},
                        [ia](TensorImpl& o) {
                          if (!ia->needs_grad()) return;
                          ia->accumulate_grad(o.grad.data());
                        });
}

Tensor concat_cols(const std::vector<Tensor>& parts) {
  MATSCI_CHECK(!parts.empty(), "concat_cols of zero tensors");
  const std::int64_t n = parts[0].size(0);
  std::int64_t total = 0;
  for (const Tensor& p : parts) {
    MATSCI_CHECK(p.dim() == 2 && p.size(0) == n,
                 "concat_cols: inconsistent shapes");
    total += p.size(1);
  }
  FloatStorage out =
      FloatStorage::uninitialized(static_cast<std::size_t>(n * total));
  std::int64_t off = 0;
  for (const Tensor& p : parts) {
    const std::int64_t d = p.size(1);
    const float* pp = p.data();
    parallel::parallel_for(
        0, n, rows_grain(kRowGrainWork, d),
        [&](std::int64_t ib, std::int64_t ie) {
          for (std::int64_t i = ib; i < ie; ++i)
            std::copy(pp + i * d, pp + (i + 1) * d,
                      out.data() + i * total + off);
        });
    off += d;
  }
  std::vector<std::shared_ptr<TensorImpl>> inputs;
  std::vector<std::int64_t> widths;
  inputs.reserve(parts.size());
  for (const Tensor& p : parts) {
    inputs.push_back(p.impl());
    widths.push_back(p.size(1));
  }
  auto inputs_copy = inputs;
  return make_op_result(
      {n, total}, std::move(out), "concat_cols", std::move(inputs),
      [inputs = std::move(inputs_copy), widths, n, total](TensorImpl& o) {
        const float* go = o.grad.data();
        std::int64_t off2 = 0;
        for (std::size_t pi = 0; pi < inputs.size(); ++pi) {
          const std::int64_t d = widths[pi];
          if (inputs[pi]->needs_grad()) {
            FloatStorage g =
                FloatStorage::uninitialized(static_cast<std::size_t>(n * d));
            for (std::int64_t i = 0; i < n; ++i)
              std::copy(go + i * total + off2, go + i * total + off2 + d,
                        g.data() + i * d);
            inputs[pi]->accumulate_grad(g.data());
          }
          off2 += d;
        }
      });
}

Tensor concat_rows(const std::vector<Tensor>& parts) {
  MATSCI_CHECK(!parts.empty(), "concat_rows of zero tensors");
  const std::int64_t d = parts[0].size(1);
  std::int64_t total = 0;
  for (const Tensor& p : parts) {
    MATSCI_CHECK(p.dim() == 2 && p.size(1) == d,
                 "concat_rows: inconsistent shapes");
    total += p.size(0);
  }
  FloatStorage out =
      FloatStorage::uninitialized(static_cast<std::size_t>(total * d));
  std::int64_t woff = 0;
  for (const Tensor& p : parts) {
    std::copy(p.data(), p.data() + p.numel(), out.data() + woff);
    woff += p.numel();
  }
  std::vector<std::shared_ptr<TensorImpl>> inputs;
  std::vector<std::int64_t> heights;
  for (const Tensor& p : parts) {
    inputs.push_back(p.impl());
    heights.push_back(p.size(0));
  }
  auto inputs_copy = inputs;
  return make_op_result(
      {total, d}, std::move(out), "concat_rows", std::move(inputs),
      [inputs = std::move(inputs_copy), heights, d](TensorImpl& o) {
        const float* go = o.grad.data();
        std::int64_t off = 0;
        for (std::size_t pi = 0; pi < inputs.size(); ++pi) {
          const std::int64_t h = heights[pi];
          if (inputs[pi]->needs_grad()) {
            inputs[pi]->accumulate_grad(go + off * d);
          }
          off += h;
        }
      });
}

Tensor slice_cols(const Tensor& a, std::int64_t start, std::int64_t len) {
  MATSCI_CHECK(a.defined() && a.dim() == 2, "slice_cols requires 2-D");
  const std::int64_t n = a.size(0), d = a.size(1);
  MATSCI_CHECK(start >= 0 && len >= 0 && start + len <= d,
               "slice_cols [" << start << ", " << start + len
                              << ") out of range for width " << d);
  const float* pa = a.data();
  FloatStorage out =
      FloatStorage::uninitialized(static_cast<std::size_t>(n * len));
  parallel::parallel_for(
      0, n, rows_grain(kRowGrainWork, len),
      [&](std::int64_t ib, std::int64_t ie) {
        for (std::int64_t i = ib; i < ie; ++i)
          std::copy(pa + i * d + start, pa + i * d + start + len,
                    out.data() + i * len);
      });
  auto ia = a.impl();
  return make_op_result(
      {n, len}, std::move(out), "slice_cols", {ia},
      [ia, n, d, start, len](TensorImpl& o) {
        if (!ia->needs_grad()) return;
        const float* go = o.grad.data();
        FloatStorage ga = FloatStorage::zeros(static_cast<std::size_t>(n * d));
        for (std::int64_t i = 0; i < n; ++i)
          std::copy(go + i * len, go + (i + 1) * len,
                    ga.data() + i * d + start);
        ia->accumulate_grad(ga.data());
      });
}

Tensor slice_rows(const Tensor& a, std::int64_t start, std::int64_t len) {
  MATSCI_CHECK(a.defined() && a.dim() == 2, "slice_rows requires 2-D");
  const std::int64_t n = a.size(0), d = a.size(1);
  MATSCI_CHECK(start >= 0 && len >= 0 && start + len <= n,
               "slice_rows [" << start << ", " << start + len
                              << ") out of range for height " << n);
  const float* pa = a.data();
  FloatStorage out =
      FloatStorage::copy_of(pa + start * d, static_cast<std::size_t>(len * d));
  auto ia = a.impl();
  return make_op_result(
      {len, d}, std::move(out), "slice_rows", {ia},
      [ia, n, d, start, len](TensorImpl& o) {
        if (!ia->needs_grad()) return;
        const float* go = o.grad.data();
        FloatStorage ga = FloatStorage::zeros(static_cast<std::size_t>(n * d));
        std::copy(go, go + len * d, ga.data() + start * d);
        ia->accumulate_grad(ga.data());
      });
}

// --- regularization ------------------------------------------------------

Tensor dropout(const Tensor& a, float p, bool training, RngEngine& rng) {
  MATSCI_CHECK(p >= 0.0f && p < 1.0f, "dropout probability p=" << p);
  if (!training || p == 0.0f) {
    // Identity that still participates in the graph.
    return add_scalar(a, 0.0f);
  }
  const std::int64_t n = a.numel();
  const float scale = 1.0f / (1.0f - p);
  // Mask draws stay serial: the RNG stream is sequential by contract.
  FloatStorage mask = FloatStorage::uninitialized(static_cast<std::size_t>(n));
  for (float& m : mask) m = rng.bernoulli(p) ? 0.0f : scale;
  const float* pa = a.data();
  FloatStorage out = FloatStorage::uninitialized(static_cast<std::size_t>(n));
  for (std::int64_t i = 0; i < n; ++i) out[i] = pa[i] * mask[i];
  auto ia = a.impl();
  return make_op_result(
      a.shape(), std::move(out), "dropout", {ia},
      [ia, n, mask = std::move(mask)](TensorImpl& o) {
        if (!ia->needs_grad()) return;
        const float* go = o.grad.data();
        FloatStorage ga =
            FloatStorage::uninitialized(static_cast<std::size_t>(n));
        for (std::int64_t i = 0; i < n; ++i) ga[i] = go[i] * mask[i];
        ia->accumulate_grad(ga.data());
      });
}

// --- losses ----------------------------------------------------------------

Tensor softmax_rows(const Tensor& logits) {
  MATSCI_CHECK(logits.defined() && logits.dim() == 2,
               "softmax_rows requires 2-D logits");
  const std::int64_t n = logits.size(0), c = logits.size(1);
  const float* pl = logits.data();
  const backend::KernelTable& kt = backend::kernels();
  FloatStorage out =
      FloatStorage::uninitialized(static_cast<std::size_t>(n * c));
  parallel::parallel_for(
      0, n, rows_grain(kRowGrainWork, 4 * c),
      [&](std::int64_t ib, std::int64_t ie) {
        kt.softmax_rows(pl, out.data(), ib, ie, c);
      });
  auto il = logits.impl();
  FloatStorage probs;
  if (grad_mode_enabled() && il->needs_grad()) probs = out;
  return make_op_result(
      logits.shape(), std::move(out), "softmax_rows", {il},
      [il, n, c, probs = std::move(probs)](TensorImpl& o) {
        if (!il->needs_grad()) return;
        const float* go = o.grad.data();
        FloatStorage ga =
            FloatStorage::uninitialized(static_cast<std::size_t>(n * c));
        parallel::parallel_for(
            0, n, rows_grain(kRowGrainWork, 4 * c),
            [&](std::int64_t ib, std::int64_t ie) {
              for (std::int64_t i = ib; i < ie; ++i) {
                double dot = 0.0;
                for (std::int64_t j = 0; j < c; ++j)
                  dot += go[i * c + j] * probs[i * c + j];
                for (std::int64_t j = 0; j < c; ++j)
                  ga[i * c + j] = probs[i * c + j] *
                                  (go[i * c + j] - static_cast<float>(dot));
              }
            });
        il->accumulate_grad(ga.data());
      });
}

Tensor cross_entropy(const Tensor& logits,
                     const std::vector<std::int64_t>& labels) {
  MATSCI_CHECK(logits.defined() && logits.dim() == 2,
               "cross_entropy requires 2-D logits");
  const std::int64_t n = logits.size(0), c = logits.size(1);
  MATSCI_CHECK(static_cast<std::int64_t>(labels.size()) == n,
               "cross_entropy: " << labels.size() << " labels for " << n
                                 << " rows");
  // Labels are validated up front so the kernel-table entry can stay a
  // check-free inner loop.
  for (std::size_t i = 0; i < labels.size(); ++i) {
    const std::int64_t y = labels[i];
    MATSCI_CHECK(y >= 0 && y < c,
                 "label " << y << " out of range [0, " << c << ")");
  }
  const float* pl = logits.data();
  const backend::KernelTable& kt = backend::kernels();
  FloatStorage probs =
      FloatStorage::uninitialized(static_cast<std::size_t>(n * c));
  double loss = parallel::parallel_reduce(
      0, n, rows_grain(kRowGrainWork, 4 * c), 0.0,
      [&](std::int64_t ib, std::int64_t ie) {
        return kt.ce_loss_rows(pl, labels.data(), probs.data(), ib, ie, c);
      },
      [](double x, double y) { return x + y; });
  loss /= static_cast<double>(n);

  auto il = logits.impl();
  return make_op_result(
      {1}, FloatStorage{static_cast<float>(loss)}, "cross_entropy", {il},
      [il, n, c, labels, probs = std::move(probs)](TensorImpl& o) {
        if (!il->needs_grad()) return;
        const float g = o.grad[0] / static_cast<float>(n);
        const backend::KernelTable& kt = backend::kernels();
        FloatStorage ga =
            FloatStorage::uninitialized(static_cast<std::size_t>(n * c));
        parallel::parallel_for(
            0, n, rows_grain(kRowGrainWork, c),
            [&](std::int64_t ib, std::int64_t ie) {
              kt.ce_grad_rows(probs.data(), labels.data(), g, ga.data(), ib,
                              ie, c);
            });
        il->accumulate_grad(ga.data());
      });
}

Tensor bce_with_logits(const Tensor& logits, const Tensor& targets) {
  MATSCI_CHECK(logits.defined() && targets.defined(),
               "bce_with_logits: undefined operand");
  MATSCI_CHECK(logits.numel() == targets.numel(),
               "bce_with_logits numel mismatch: " << logits.numel() << " vs "
                                                  << targets.numel());
  const std::int64_t n = logits.numel();
  const float* pz = logits.data();
  const float* pt = targets.data();
  const backend::KernelTable& kt = backend::kernels();
  double loss = parallel::parallel_reduce(
      0, n, kReduceGrain, 0.0,
      [&](std::int64_t ib, std::int64_t ie) { return kt.bce_sum(pz, pt, ib, ie); },
      [](double x, double y) { return x + y; });
  loss /= static_cast<double>(n);
  auto il = logits.impl();
  auto it = targets.impl();
  return make_op_result(
      {1}, FloatStorage{static_cast<float>(loss)}, "bce_with_logits",
      {il, it}, [il, it, n](TensorImpl& o) {
        const float g = o.grad[0] / static_cast<float>(n);
        const float* pz2 = il->data.data();
        const float* pt2 = it->data.data();
        const backend::KernelTable& kt = backend::kernels();
        if (il->needs_grad()) {
          FloatStorage ga =
              FloatStorage::uninitialized(static_cast<std::size_t>(n));
          parallel::parallel_for(
              0, n, kElemGrain, [&](std::int64_t ib, std::int64_t ie) {
                kt.bce_grad(pz2, pt2, g, ga.data(), nullptr, ib, ie);
              });
          il->accumulate_grad(ga.data());
        }
        if (it->needs_grad()) {
          FloatStorage gt =
              FloatStorage::uninitialized(static_cast<std::size_t>(n));
          parallel::parallel_for(
              0, n, kElemGrain, [&](std::int64_t ib, std::int64_t ie) {
                kt.bce_grad(pz2, pt2, g, nullptr, gt.data(), ib, ie);
              });
          it->accumulate_grad(gt.data());
        }
      });
}

Tensor mse_loss(const Tensor& pred, const Tensor& target) {
  MATSCI_CHECK(pred.numel() == target.numel(),
               "mse_loss numel mismatch: " << pred.numel() << " vs "
                                           << target.numel());
  Tensor diff = sub(pred, reshape(target, pred.shape()));
  return mean(square(diff));
}

Tensor l1_loss(const Tensor& pred, const Tensor& target) {
  MATSCI_CHECK(pred.numel() == target.numel(),
               "l1_loss numel mismatch: " << pred.numel() << " vs "
                                          << target.numel());
  Tensor diff = sub(pred, reshape(target, pred.shape()));
  return mean(abs(diff));
}

Tensor huber_loss(const Tensor& pred, const Tensor& target, float beta) {
  MATSCI_CHECK(beta > 0.0f, "huber_loss beta must be positive");
  MATSCI_CHECK(pred.numel() == target.numel(),
               "huber_loss numel mismatch: " << pred.numel() << " vs "
                                             << target.numel());
  const std::int64_t n = pred.numel();
  const float* pp = pred.data();
  const float* pt = target.data();
  const backend::KernelTable& kt = backend::kernels();
  double loss = parallel::parallel_reduce(
      0, n, kReduceGrain, 0.0,
      [&](std::int64_t ib, std::int64_t ie) {
        return kt.huber_sum(pp, pt, beta, ib, ie);
      },
      [](double x, double y) { return x + y; });
  loss /= static_cast<double>(n);
  auto ip = pred.impl();
  auto it = target.impl();
  return make_op_result(
      {1}, FloatStorage{static_cast<float>(loss)}, "huber_loss", {ip, it},
      [ip, it, n, beta](TensorImpl& o) {
        const float g = o.grad[0] / static_cast<float>(n);
        const float* pp2 = ip->data.data();
        const float* pt2 = it->data.data();
        const backend::KernelTable& kt = backend::kernels();
        if (ip->needs_grad()) {
          FloatStorage ga =
              FloatStorage::uninitialized(static_cast<std::size_t>(n));
          parallel::parallel_for(
              0, n, kElemGrain, [&](std::int64_t ib, std::int64_t ie) {
                kt.huber_grad(pp2, pt2, g, beta, ga.data(), ib, ie);
              });
          ip->accumulate_grad(ga.data());
        }
        if (it->needs_grad()) {
          FloatStorage gt =
              FloatStorage::uninitialized(static_cast<std::size_t>(n));
          parallel::parallel_for(
              0, n, kElemGrain, [&](std::int64_t ib, std::int64_t ie) {
                kt.huber_grad(pp2, pt2, -g, beta, gt.data(), ib, ie);
              });
          it->accumulate_grad(gt.data());
        }
      });
}

std::vector<std::int64_t> argmax_rows(const Tensor& a) {
  MATSCI_CHECK(a.defined() && a.dim() == 2, "argmax_rows requires 2-D");
  const std::int64_t n = a.size(0), c = a.size(1);
  const float* pa = a.data();
  std::vector<std::int64_t> out(static_cast<std::size_t>(n));
  for (std::int64_t i = 0; i < n; ++i) {
    const float* row = pa + i * c;
    out[static_cast<std::size_t>(i)] =
        std::max_element(row, row + c) - row;
  }
  return out;
}

}  // namespace matsci::core
