#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace matsci::core::memory {

/// Caching bump allocator for per-step transient metadata (the autograd
/// traversal's topo-order and visited containers, per-call scratch that
/// isn't a flat float buffer). allocate() bumps a pointer inside the
/// current chunk; reset() rewinds every chunk without freeing it, so a
/// steady-state loop of identical steps touches malloc only during the
/// very first step.
///
/// Not thread-safe — use one arena per thread (see thread_local_arena).
/// Destructors are NOT run for arena-allocated objects' memory; pair it
/// with containers via ArenaStlAllocator, whose element destructors run
/// normally while the raw memory is simply abandoned until reset().
class Arena {
 public:
  explicit Arena(std::size_t chunk_bytes = 64 * 1024)
      : chunk_bytes_(chunk_bytes) {}
  ~Arena();
  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  void* allocate(std::size_t bytes, std::size_t align);

  /// Rewind all chunks; cached memory stays for the next step.
  void reset();

  /// Fresh chunk allocations since construction (the warmup hook:
  /// steady-state loops must keep this constant).
  std::uint64_t chunks_allocated() const { return chunks_allocated_; }
  std::size_t bytes_reserved() const { return bytes_reserved_; }

  /// Per-thread arena for tape-walk scratch. Thread-local so serve
  /// workers backprop (force prediction) without sharing state.
  static Arena& thread_local_arena();

 private:
  struct Chunk {
    char* base;
    std::size_t capacity;
    std::size_t used;
  };
  std::size_t chunk_bytes_;
  std::vector<Chunk> chunks_;
  std::size_t active_ = 0;  ///< chunks_[active_..] have free space
  std::uint64_t chunks_allocated_ = 0;
  std::size_t bytes_reserved_ = 0;
};

/// Minimal C++17 allocator over an Arena: allocation bumps, deallocation
/// is a no-op (memory is reclaimed wholesale by Arena::reset()).
template <typename T>
class ArenaStlAllocator {
 public:
  using value_type = T;

  explicit ArenaStlAllocator(Arena& arena) : arena_(&arena) {}
  template <typename U>
  ArenaStlAllocator(const ArenaStlAllocator<U>& other)
      : arena_(other.arena()) {}

  T* allocate(std::size_t n) {
    return static_cast<T*>(arena_->allocate(n * sizeof(T), alignof(T)));
  }
  void deallocate(T*, std::size_t) {}  // reclaimed by Arena::reset()

  Arena* arena() const { return arena_; }

  template <typename U>
  bool operator==(const ArenaStlAllocator<U>& other) const {
    return arena_ == other.arena();
  }
  template <typename U>
  bool operator!=(const ArenaStlAllocator<U>& other) const {
    return arena_ != other.arena();
  }

 private:
  Arena* arena_;
};

}  // namespace matsci::core::memory
