#include "core/memory/pool.hpp"

#include <bit>
#include <cstdlib>
#include <new>

#include "core/macros.hpp"

namespace matsci::core::memory {

namespace {

constexpr std::size_t kMinClass = 64;  // one cache line

void* aligned_new(std::size_t bytes) {
  return ::operator new(bytes, std::align_val_t{kBufferAlignment});
}

void aligned_delete(void* p, std::size_t bytes) {
  ::operator delete(p, bytes, std::align_val_t{kBufferAlignment});
}

}  // namespace

std::size_t round_up_to_class(std::size_t bytes) {
  if (bytes <= kMinClass) return kMinClass;
  // Next power of two, and the 3/4 midpoint below it: the class ladder
  // is ..., 2^p * 3/4, 2^p, 2^(p+1) * 3/4, 2^(p+1), ...
  const std::size_t pow2 = std::bit_ceil(bytes);
  const std::size_t mid = pow2 / 4 * 3;
  return bytes <= mid ? mid : pow2;
}

std::size_t BufferPool::class_index(std::size_t class_bytes) {
  // class_bytes is either 2^p or 3*2^(p-2); map to 2 slots per octave.
  const unsigned p = std::bit_width(class_bytes) - 1;  // floor(log2)
  const bool is_pow2 = std::has_single_bit(class_bytes);
  // Octaves start at kMinClass (2^6): index 0 -> 64, 1 -> 96, 2 -> 128...
  const std::size_t idx = (static_cast<std::size_t>(p) - 6) * 2 +
                          (is_pow2 ? 0 : 1);
  MATSCI_CHECK(idx < kNumClasses,
               "buffer pool: size class too large (" << class_bytes << " bytes)");
  return idx;
}

BufferPool& BufferPool::global() {
  // Intentionally leaked: see class comment (teardown-order safety).
  static BufferPool* pool = new BufferPool();
  return *pool;
}

BufferPool::BufferPool() : max_cached_bytes_(256ull << 20), enabled_(true) {
  if (const char* env = std::getenv("MATSCI_TENSOR_POOL")) {
    if (env[0] == '0' && env[1] == '\0') enabled_ = false;
  }
  if (const char* env = std::getenv("MATSCI_POOL_MAX_BYTES")) {
    char* end = nullptr;
    const unsigned long long v = std::strtoull(env, &end, 10);
    if (end != env && *end == '\0') max_cached_bytes_ = v;
  }
}

BufferPool::Block BufferPool::acquire(std::size_t bytes) {
  const std::size_t cap = round_up_to_class(bytes);
  std::lock_guard<std::mutex> lock(mu_);
  ++stats_.acquires;
  stats_.bytes_outstanding += cap;
  if (enabled_) {
    auto& list = free_lists_[class_index(cap)];
    if (!list.empty()) {
      void* p = list.back();
      list.pop_back();
      stats_.bytes_cached -= cap;
      ++stats_.hits;
      return {p, cap};
    }
  }
  ++stats_.fresh_allocs;
  return {aligned_new(cap), cap};
}

void BufferPool::release(void* ptr, std::size_t capacity) {
  if (ptr == nullptr) return;
  std::lock_guard<std::mutex> lock(mu_);
  ++stats_.releases;
  stats_.bytes_outstanding -= capacity;
  if (enabled_ && stats_.bytes_cached + capacity <= max_cached_bytes_) {
    free_lists_[class_index(capacity)].push_back(ptr);
    stats_.bytes_cached += capacity;
    return;
  }
  ++stats_.direct_frees;
  aligned_delete(ptr, capacity);
}

PoolStats BufferPool::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

void BufferPool::trim() {
  std::lock_guard<std::mutex> lock(mu_);
  ++stats_.trims;
  // Reconstruct each class's byte size from its index: idx 2k -> 2^(6+k),
  // idx 2k+1 -> 3 * 2^(4+k+1) = 2^(6+k) * 3/2.
  for (std::size_t idx = 0; idx < kNumClasses; ++idx) {
    auto& list = free_lists_[idx];
    const std::size_t pow2 = std::size_t{1} << (6 + idx / 2);
    const std::size_t bytes = (idx % 2 == 0) ? pow2 : pow2 / 2 * 3;
    for (void* p : list) {
      aligned_delete(p, bytes);
      stats_.bytes_cached -= bytes;
    }
    list.clear();
  }
}

void BufferPool::set_max_cached_bytes(std::size_t bytes) {
  std::lock_guard<std::mutex> lock(mu_);
  max_cached_bytes_ = bytes;
}

}  // namespace matsci::core::memory
