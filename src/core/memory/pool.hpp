#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <vector>

namespace matsci::core::memory {

/// Cache-line / AVX-512 friendly alignment every pooled buffer honors.
/// Kernels may assume tensor payloads start on a 64-byte boundary.
inline constexpr std::size_t kBufferAlignment = 64;

/// Counters describing pool behaviour since process start. The
/// `fresh_allocs` counter is the allocation hook the steady-state tests
/// assert on: after warmup, a fixed-shape train/serve step must acquire
/// every tensor buffer from the cache (zero fresh heap allocations from
/// the tensor memory runtime).
struct PoolStats {
  std::uint64_t acquires = 0;      ///< total acquire() calls
  std::uint64_t hits = 0;          ///< served from the free lists
  std::uint64_t fresh_allocs = 0;  ///< served by a new heap allocation
  std::uint64_t releases = 0;      ///< buffers returned to the pool
  std::uint64_t direct_frees = 0;  ///< returned buffers freed (cache full)
  std::uint64_t trims = 0;         ///< trim() calls
  std::uint64_t bytes_cached = 0;  ///< currently idle in the free lists
  std::uint64_t bytes_outstanding = 0;  ///< currently lent to live buffers
};

/// Round a byte count up to its size class (the capacity acquire()
/// actually hands out). Classes are powers of two plus 1.5x midpoints
/// (64, 96, 128, 192, 256, ...), so shape-compatible tensors that
/// differ slightly still share buffers and internal waste stays <= 33%.
std::size_t round_up_to_class(std::size_t bytes);

/// Process-wide cache of 64-byte-aligned heap buffers, keyed by size
/// class. All tensor payloads (data, grad, and op scratch) allocate
/// through here, so a fixed-shape training or serving step reuses the
/// same buffers every iteration instead of hitting malloc.
///
/// Thread safety: acquire/release/stats/trim are safe from any thread
/// (serve workers collate and run forwards concurrently); a single
/// mutex guards the free lists — contention is negligible next to the
/// kernel work done per buffer.
///
/// Lifetime: the singleton is intentionally leaked (never destroyed),
/// so tensors living in static storage can release their buffers during
/// process teardown in any order. Cached blocks stay reachable through
/// the singleton pointer, which keeps LeakSanitizer quiet.
class BufferPool {
 public:
  static BufferPool& global();

  /// A buffer of at least `bytes` capacity, 64-byte aligned. The
  /// returned capacity is the size class actually reserved and must be
  /// passed back to release(). Contents are UNINITIALIZED (possibly a
  /// previous tensor's bits) — callers that need zeros memset
  /// explicitly; kernels that fully overwrite their output skip that
  /// second write entirely.
  struct Block {
    void* ptr = nullptr;
    std::size_t capacity = 0;  ///< size-class bytes actually reserved
  };
  Block acquire(std::size_t bytes);

  /// Return a buffer obtained from acquire(). `capacity` must be the
  /// capacity acquire() reported. Null ptr is a no-op.
  void release(void* ptr, std::size_t capacity);

  PoolStats stats() const;

  /// Free every cached (idle) block. Outstanding buffers are untouched.
  void trim();

  /// Cap on idle cached bytes; beyond it released buffers are freed
  /// immediately. Default 256 MiB, overridable via MATSCI_POOL_MAX_BYTES.
  void set_max_cached_bytes(std::size_t bytes);

  /// False when MATSCI_TENSOR_POOL=0: every acquire is a fresh heap
  /// allocation and every release frees (debugging aid — ASan sees
  /// each buffer's exact lifetime instead of pooled reuse).
  bool enabled() const { return enabled_; }

  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

 private:
  BufferPool();
  ~BufferPool() = default;

  static constexpr std::size_t kNumClasses = 96;
  static std::size_t class_index(std::size_t class_bytes);

  mutable std::mutex mu_;
  std::array<std::vector<void*>, kNumClasses> free_lists_;
  PoolStats stats_;
  std::size_t max_cached_bytes_;
  bool enabled_;
};

}  // namespace matsci::core::memory
