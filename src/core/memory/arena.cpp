#include "core/memory/arena.hpp"

#include <algorithm>
#include <new>

namespace matsci::core::memory {

namespace {
constexpr std::size_t kChunkAlign = 64;

std::size_t align_up(std::size_t v, std::size_t align) {
  return (v + align - 1) & ~(align - 1);
}
}  // namespace

Arena::~Arena() {
  for (const Chunk& c : chunks_) {
    ::operator delete(c.base, c.capacity, std::align_val_t{kChunkAlign});
  }
}

void* Arena::allocate(std::size_t bytes, std::size_t align) {
  if (bytes == 0) bytes = 1;
  align = std::max<std::size_t>(align, 1);
  for (; active_ < chunks_.size(); ++active_) {
    Chunk& c = chunks_[active_];
    const std::size_t start = align_up(c.used, align);
    if (start + bytes <= c.capacity) {
      c.used = start + bytes;
      return c.base + start;
    }
    // Chunk full for this request; later requests could still be
    // smaller, but advancing keeps allocation O(1) amortized and the
    // stranded tail is bounded by one request per chunk.
  }
  const std::size_t capacity =
      std::max(chunk_bytes_, align_up(bytes, kChunkAlign));
  char* base = static_cast<char*>(
      ::operator new(capacity, std::align_val_t{kChunkAlign}));
  chunks_.push_back({base, capacity, bytes});
  ++chunks_allocated_;
  bytes_reserved_ += capacity;
  active_ = chunks_.size() - 1;
  return base;
}

void Arena::reset() {
  for (Chunk& c : chunks_) c.used = 0;
  active_ = 0;
}

Arena& Arena::thread_local_arena() {
  thread_local Arena arena;
  return arena;
}

}  // namespace matsci::core::memory
