#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <initializer_list>
#include <type_traits>
#include <utility>
#include <vector>

#include "core/memory/pool.hpp"

namespace matsci::core::memory {

/// Pooled, 64-byte-aligned, trivially-copyable element buffer — the
/// storage handle behind TensorImpl (and the scratch buffers inside op
/// backward passes). Replaces bare std::vector<T> in the hot path:
///
///  - memory comes from BufferPool::global(), so fixed-shape steps
///    reuse buffers instead of hitting malloc;
///  - `uninitialized(n)` skips the value-initialization write entirely
///    for outputs the kernel fully overwrites (std::vector::resize
///    cannot);
///  - data() is always 64-byte aligned, which the SIMD backends assume
///    for their aligned fast paths.
///
/// The API deliberately mirrors the std::vector subset the rest of the
/// codebase uses (size/data/operator[]/begin/end/empty/assign), so the
/// optimizer and test helpers compile unchanged. Copying is a deep
/// copy through the pool; moves are pointer swaps.
template <typename T>
class Storage {
  static_assert(std::is_trivially_copyable_v<T>,
                "Storage is for trivially copyable payloads");

 public:
  Storage() = default;

  /// n elements of UNDEFINED content — only for outputs that are fully
  /// overwritten before being read (the kernel contract).
  static Storage uninitialized(std::size_t n) {
    Storage s;
    s.allocate(n);
    return s;
  }

  static Storage zeros(std::size_t n) {
    Storage s;
    s.allocate(n);
    if (n > 0) std::memset(s.ptr_, 0, n * sizeof(T));
    return s;
  }

  static Storage full(std::size_t n, T value) {
    Storage s;
    s.allocate(n);
    s.fill(value);
    return s;
  }

  static Storage from_vector(const std::vector<T>& v) {
    return copy_of(v.data(), v.size());
  }

  static Storage copy_of(const T* src, std::size_t n) {
    Storage s;
    s.allocate(n);
    if (n > 0) std::memcpy(s.ptr_, src, n * sizeof(T));
    return s;
  }

  Storage(std::initializer_list<T> init) {
    allocate(init.size());
    std::size_t i = 0;
    for (const T& v : init) ptr_[i++] = v;
  }

  Storage(const Storage& other) {
    allocate(other.size_);
    if (size_ > 0) std::memcpy(ptr_, other.ptr_, size_ * sizeof(T));
  }

  Storage& operator=(const Storage& other) {
    if (this != &other) {
      Storage copy(other);
      swap(copy);
    }
    return *this;
  }

  Storage(Storage&& other) noexcept { swap(other); }

  Storage& operator=(Storage&& other) noexcept {
    if (this != &other) {
      clear();
      swap(other);
    }
    return *this;
  }

  ~Storage() { clear(); }

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  T* data() { return ptr_; }
  const T* data() const { return ptr_; }
  T& operator[](std::size_t i) { return ptr_[i]; }
  const T& operator[](std::size_t i) const { return ptr_[i]; }
  T* begin() { return ptr_; }
  T* end() { return ptr_ + size_; }
  const T* begin() const { return ptr_; }
  const T* end() const { return ptr_ + size_; }

  void fill(T value) {
    for (std::size_t i = 0; i < size_; ++i) ptr_[i] = value;
  }

  /// vector::assign compatible: size to n, every element = value.
  /// Reuses the existing buffer when its capacity already fits.
  void assign(std::size_t n, T value) {
    resize_uninitialized(n);
    fill(value);
  }

  /// Resize WITHOUT preserving or initializing contents (callers
  /// overwrite). Keeps the current buffer when it is large enough.
  void resize_uninitialized(std::size_t n) {
    if (n * sizeof(T) > cap_bytes_) {
      clear();
      allocate(n);
    } else {
      size_ = n;
    }
  }

  /// Release the buffer back to the pool.
  void clear() {
    if (ptr_ != nullptr) {
      BufferPool::global().release(ptr_, cap_bytes_);
      ptr_ = nullptr;
    }
    size_ = 0;
    cap_bytes_ = 0;
  }

  void swap(Storage& other) noexcept {
    std::swap(ptr_, other.ptr_);
    std::swap(size_, other.size_);
    std::swap(cap_bytes_, other.cap_bytes_);
  }

 private:
  void allocate(std::size_t n) {
    size_ = n;
    if (n == 0) return;
    const BufferPool::Block block = BufferPool::global().acquire(n * sizeof(T));
    ptr_ = static_cast<T*>(block.ptr);
    cap_bytes_ = block.capacity;
  }

  T* ptr_ = nullptr;
  std::size_t size_ = 0;
  std::size_t cap_bytes_ = 0;
};

using FloatStorage = Storage<float>;
using DoubleStorage = Storage<double>;
using IndexStorage = Storage<std::int64_t>;

}  // namespace matsci::core::memory
