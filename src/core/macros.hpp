#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace matsci {

/// Error type thrown by all MATSCI_CHECK failures. Deriving from
/// std::runtime_error keeps the library usable from generic catch sites.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

namespace detail {
[[noreturn]] inline void throw_check_failure(const char* cond, const char* file,
                                             int line, const std::string& msg) {
  std::ostringstream os;
  os << "MATSCI_CHECK failed: (" << cond << ") at " << file << ":" << line;
  if (!msg.empty()) {
    os << " — " << msg;
  }
  throw Error(os.str());
}
}  // namespace detail

}  // namespace matsci

/// Runtime invariant check. Always active (these guard user-facing API
/// contracts, not hot inner loops); throws matsci::Error on failure.
/// `msg` may use stream syntax: MATSCI_CHECK(n > 0, "got n=" << n).
#define MATSCI_CHECK(cond, msg)                                              \
  do {                                                                       \
    if (!(cond)) {                                                           \
      std::ostringstream matsci_check_os_;                                   \
      matsci_check_os_ << msg;                                               \
      ::matsci::detail::throw_check_failure(#cond, __FILE__, __LINE__,       \
                                            matsci_check_os_.str());         \
    }                                                                        \
  } while (false)
