#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "core/tensor.hpp"

namespace matsci::core {

/// Node in the reverse-mode autodiff tape.
///
/// Each differentiable op attaches one GradFn to its output. `inputs`
/// are the op's argument payloads (used for topological ordering);
/// `backward` reads the output's grad buffer and accumulates into each
/// input payload that `needs_grad()`.
struct GradFn {
  const char* name = "unknown";
  std::vector<std::shared_ptr<TensorImpl>> inputs;
  std::function<void(TensorImpl& output)> backward;
};

/// Run reverse-mode autodiff from `root` (must be a defined scalar).
/// Seeds d(root)/d(root) = 1 and walks the tape in reverse topological
/// order, accumulating into leaf `.grad` buffers.
void run_backward(const Tensor& root);

/// Leaf-gradient readiness callback (DESIGN.md §12): invoked by
/// run_backward the moment a leaf's gradient can no longer change —
/// i.e. once every tape node consuming that leaf has been processed —
/// while the rest of the backward pass is still running. This is the
/// trigger that lets bucketed DDP launch a bucket's allreduce
/// overlapped with the remaining backward work.
///
/// Leaves that the tape never touches (unused parameters) get no
/// callback; callers must flush them when backward returns. The hook is
/// per-thread (like grad mode) and may throw — the error propagates out
/// of run_backward after the arena unwinds.
using GradReadyHook = std::function<void(const std::shared_ptr<TensorImpl>&)>;

/// RAII install/restore of the per-thread GradReadyHook.
class GradReadyHookGuard {
 public:
  explicit GradReadyHookGuard(GradReadyHook hook);
  ~GradReadyHookGuard();
  GradReadyHookGuard(const GradReadyHookGuard&) = delete;
  GradReadyHookGuard& operator=(const GradReadyHookGuard&) = delete;

 private:
  GradReadyHook previous_;
};

/// Construct an op result: wraps `data` with `shape`, and if grad mode is
/// on and any input needs grad, attaches a GradFn with the given backward.
/// `backward` may be empty when no input needs grad (it is then dropped).
/// The pooled-storage overload is the hot path (no copy); the vector
/// overload copies into the pool and remains for cold call sites.
Tensor make_op_result(Shape shape, memory::FloatStorage data, const char* name,
                      std::vector<std::shared_ptr<TensorImpl>> inputs,
                      std::function<void(TensorImpl&)> backward);
Tensor make_op_result(Shape shape, std::vector<float> data, const char* name,
                      std::vector<std::shared_ptr<TensorImpl>> inputs,
                      std::function<void(TensorImpl&)> backward);

}  // namespace matsci::core
