#pragma once

#include <array>
#include <cmath>

#include "core/macros.hpp"

/// Minimal 3-vector / 3x3-matrix helpers shared by the geometry-heavy
/// modules (symmetry ops, crystal lattices, radius graphs, MD). Kept
/// header-only and double precision; tensors remain fp32.
namespace matsci::core {

/// Plain 3-vector. A distinct struct (not std::array) so that arithmetic
/// operators are found via ADL from any namespace.
struct Vec3 {
  double x = 0.0, y = 0.0, z = 0.0;

  double& operator[](int i) { return i == 0 ? x : (i == 1 ? y : z); }
  double operator[](int i) const { return i == 0 ? x : (i == 1 ? y : z); }
};

/// Row-major 3x3 matrix; rows are lattice vectors when used as a cell.
struct Mat3 {
  std::array<Vec3, 3> rows{};

  Vec3& operator[](int i) { return rows[static_cast<std::size_t>(i)]; }
  const Vec3& operator[](int i) const {
    return rows[static_cast<std::size_t>(i)];
  }
};

inline Vec3 operator+(const Vec3& a, const Vec3& b) {
  return {a.x + b.x, a.y + b.y, a.z + b.z};
}
inline Vec3 operator-(const Vec3& a, const Vec3& b) {
  return {a.x - b.x, a.y - b.y, a.z - b.z};
}
inline Vec3 operator*(const Vec3& a, double s) {
  return {a.x * s, a.y * s, a.z * s};
}
inline Vec3 operator*(double s, const Vec3& a) { return a * s; }
inline Vec3 operator-(const Vec3& a) { return {-a.x, -a.y, -a.z}; }
inline Vec3& operator+=(Vec3& a, const Vec3& b) {
  a.x += b.x; a.y += b.y; a.z += b.z;
  return a;
}
inline Vec3& operator-=(Vec3& a, const Vec3& b) {
  a.x -= b.x; a.y -= b.y; a.z -= b.z;
  return a;
}

inline double dot(const Vec3& a, const Vec3& b) {
  return a.x * b.x + a.y * b.y + a.z * b.z;
}
inline Vec3 cross(const Vec3& a, const Vec3& b) {
  return {a.y * b.z - a.z * b.y, a.z * b.x - a.x * b.z,
          a.x * b.y - a.y * b.x};
}
inline double norm(const Vec3& a) { return std::sqrt(dot(a, a)); }
inline double sq_norm(const Vec3& a) { return dot(a, a); }

/// y = M x (rows of M dotted with x).
inline Vec3 matvec(const Mat3& m, const Vec3& x) {
  return {dot(m[0], x), dot(m[1], x), dot(m[2], x)};
}

/// y = x M — used to map fractional coords through row-vector lattices.
inline Vec3 vecmat(const Vec3& x, const Mat3& m) {
  return {x.x * m[0].x + x.y * m[1].x + x.z * m[2].x,
          x.x * m[0].y + x.y * m[1].y + x.z * m[2].y,
          x.x * m[0].z + x.y * m[1].z + x.z * m[2].z};
}

inline Mat3 matmul3(const Mat3& a, const Mat3& b) {
  Mat3 c{};
  for (int i = 0; i < 3; ++i)
    for (int k = 0; k < 3; ++k)
      for (int j = 0; j < 3; ++j) c[i][j] += a[i][k] * b[k][j];
  return c;
}

inline double det3(const Mat3& m) {
  return m[0][0] * (m[1][1] * m[2][2] - m[1][2] * m[2][1]) -
         m[0][1] * (m[1][0] * m[2][2] - m[1][2] * m[2][0]) +
         m[0][2] * (m[1][0] * m[2][1] - m[1][1] * m[2][0]);
}

inline Mat3 inverse3(const Mat3& m) {
  const double d = det3(m);
  MATSCI_CHECK(std::fabs(d) > 1e-14,
               "inverse3: singular matrix (det=" << d << ")");
  const double inv = 1.0 / d;
  Mat3 r;
  r[0] = {(m[1][1] * m[2][2] - m[1][2] * m[2][1]) * inv,
          (m[0][2] * m[2][1] - m[0][1] * m[2][2]) * inv,
          (m[0][1] * m[1][2] - m[0][2] * m[1][1]) * inv};
  r[1] = {(m[1][2] * m[2][0] - m[1][0] * m[2][2]) * inv,
          (m[0][0] * m[2][2] - m[0][2] * m[2][0]) * inv,
          (m[0][2] * m[1][0] - m[0][0] * m[1][2]) * inv};
  r[2] = {(m[1][0] * m[2][1] - m[1][1] * m[2][0]) * inv,
          (m[0][1] * m[2][0] - m[0][0] * m[2][1]) * inv,
          (m[0][0] * m[1][1] - m[0][1] * m[1][0]) * inv};
  return r;
}

inline Mat3 mat3_rows(const Vec3& r0, const Vec3& r1, const Vec3& r2) {
  Mat3 m;
  m[0] = r0;
  m[1] = r1;
  m[2] = r2;
  return m;
}

inline Mat3 identity3() {
  return {{{{1.0, 0.0, 0.0}, {0.0, 1.0, 0.0}, {0.0, 0.0, 1.0}}}};
}

inline Mat3 transpose3(const Mat3& m) {
  Mat3 r;
  for (int i = 0; i < 3; ++i)
    for (int j = 0; j < 3; ++j) r[i][j] = m[j][i];
  return r;
}

}  // namespace matsci::core
