#pragma once

#include <cstdint>
#include <vector>

#include "core/tensor.hpp"

/// Differentiable op library. All ops are pure (no aliasing of inputs)
/// and record autograd metadata when grad mode is enabled.
///
/// Broadcasting for binary elementwise ops supports, for a = [N, D]:
///   b of identical shape, b scalar ([1]), b row vector ([D] or [1, D]),
///   and b column vector ([N, 1]).
namespace matsci::core {

// --- binary elementwise --------------------------------------------------
Tensor add(const Tensor& a, const Tensor& b);
Tensor sub(const Tensor& a, const Tensor& b);
Tensor mul(const Tensor& a, const Tensor& b);
Tensor div(const Tensor& a, const Tensor& b);

Tensor add_scalar(const Tensor& a, float s);
Tensor mul_scalar(const Tensor& a, float s);

// --- unary elementwise ---------------------------------------------------
Tensor neg(const Tensor& a);
Tensor abs(const Tensor& a);
Tensor square(const Tensor& a);
Tensor sqrt(const Tensor& a);
Tensor rsqrt(const Tensor& a);  ///< 1/sqrt(x)
Tensor exp(const Tensor& a);
Tensor log(const Tensor& a);
Tensor sigmoid(const Tensor& a);
Tensor tanh(const Tensor& a);
Tensor relu(const Tensor& a);
Tensor silu(const Tensor& a);  ///< x * sigmoid(x)
Tensor selu(const Tensor& a);  ///< Klambauer et al. 2017 constants
Tensor gelu(const Tensor& a);  ///< tanh approximation
Tensor softplus(const Tensor& a);
Tensor clamp(const Tensor& a, float lo, float hi);

// --- reductions ----------------------------------------------------------
Tensor sum(const Tensor& a);   ///< -> [1]
Tensor mean(const Tensor& a);  ///< -> [1]
/// Reduce a 2-D tensor along `dim` (0 or 1). keepdim keeps a size-1 axis.
Tensor sum_dim(const Tensor& a, std::int64_t dim, bool keepdim = true);
Tensor mean_dim(const Tensor& a, std::int64_t dim, bool keepdim = true);

// --- linear algebra ------------------------------------------------------
Tensor matmul(const Tensor& a, const Tensor& b);  ///< [N,K] x [K,M]
Tensor transpose2d(const Tensor& a);

// --- shape ---------------------------------------------------------------
Tensor reshape(const Tensor& a, Shape shape);
Tensor concat_cols(const std::vector<Tensor>& parts);  ///< all [N, Di]
Tensor concat_rows(const std::vector<Tensor>& parts);  ///< all [Ni, D]
Tensor slice_cols(const Tensor& a, std::int64_t start, std::int64_t len);
Tensor slice_rows(const Tensor& a, std::int64_t start, std::int64_t len);

// --- regularization ------------------------------------------------------
/// Inverted dropout: scales kept activations by 1/(1-p) during training;
/// identity when `training` is false or p == 0.
Tensor dropout(const Tensor& a, float p, bool training, RngEngine& rng);

// --- losses & classification helpers -------------------------------------
Tensor softmax_rows(const Tensor& logits);
/// Mean cross-entropy over rows with integer class labels.
Tensor cross_entropy(const Tensor& logits, const std::vector<std::int64_t>& labels);
/// Mean binary cross-entropy on logits ([N] or [N,1]) vs targets in {0,1}.
Tensor bce_with_logits(const Tensor& logits, const Tensor& targets);
Tensor mse_loss(const Tensor& pred, const Tensor& target);
Tensor l1_loss(const Tensor& pred, const Tensor& target);
/// Huber/smooth-L1 with threshold beta.
Tensor huber_loss(const Tensor& pred, const Tensor& target, float beta = 1.0f);

/// Row-wise argmax of a 2-D tensor (no autograd).
std::vector<std::int64_t> argmax_rows(const Tensor& a);

// --- operators -----------------------------------------------------------
inline Tensor operator+(const Tensor& a, const Tensor& b) { return add(a, b); }
inline Tensor operator-(const Tensor& a, const Tensor& b) { return sub(a, b); }
inline Tensor operator*(const Tensor& a, const Tensor& b) { return mul(a, b); }
inline Tensor operator/(const Tensor& a, const Tensor& b) { return div(a, b); }
inline Tensor operator+(const Tensor& a, float s) { return add_scalar(a, s); }
inline Tensor operator-(const Tensor& a, float s) { return add_scalar(a, -s); }
inline Tensor operator*(const Tensor& a, float s) { return mul_scalar(a, s); }
inline Tensor operator/(const Tensor& a, float s) { return mul_scalar(a, 1.0f / s); }
inline Tensor operator-(const Tensor& a) { return neg(a); }

}  // namespace matsci::core
