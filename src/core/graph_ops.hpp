#pragma once

#include <cstdint>
#include <vector>

#include "core/tensor.hpp"

/// Sparse gather/scatter kernels for message passing. These are the
/// C++ analogue of DGL's edge-wise primitives: gather node rows onto
/// edges, run dense MLPs on edge tensors, then segment-reduce back to
/// nodes. All ops are differentiable.
namespace matsci::core {

/// out[r, :] = x[index[r], :]  (x is [N, D], index has M entries < N).
Tensor gather_rows(const Tensor& x, const std::vector<std::int64_t>& index);

/// Scatter-accumulate: out[index[r], :] += x[r, :] into a fresh
/// [num_rows, D] zero tensor (x is [M, D], index has M entries
/// < num_rows). The transpose of gather_rows — its backward is a
/// gather — and the deterministic scatter-add primitive underneath
/// segment_sum: rows mapping to the same output accumulate in
/// ascending row order regardless of thread count.
Tensor scatter_add_rows(const Tensor& x,
                        const std::vector<std::int64_t>& index,
                        std::int64_t num_rows);

/// out[s, :] = sum over rows r with segment[r] == s of x[r, :].
/// `segment` need not be sorted. num_segments > max(segment).
Tensor segment_sum(const Tensor& x, const std::vector<std::int64_t>& segment,
                   std::int64_t num_segments);

/// Mean-reduced variant; empty segments yield zero rows.
Tensor segment_mean(const Tensor& x, const std::vector<std::int64_t>& segment,
                    std::int64_t num_segments);

/// Max-reduced variant (subgradient routed to a single argmax row);
/// empty segments yield rows of `empty_value`.
Tensor segment_max(const Tensor& x, const std::vector<std::int64_t>& segment,
                   std::int64_t num_segments, float empty_value = 0.0f);

/// Per-segment row counts as a float column tensor [S, 1] (no autograd).
Tensor segment_counts(const std::vector<std::int64_t>& segment,
                      std::int64_t num_segments);

/// Row-wise squared L2 norm of a 2-D tensor: out is [N, 1].
Tensor row_sq_norm(const Tensor& x);

/// Softmax over the rows of each segment: for a column of edge scores
/// [E, 1], out[r] = exp(x[r]) / Σ_{s: seg[s]==seg[r]} exp(x[s]), with a
/// per-segment max shift for stability. The attention-normalization
/// primitive over incoming edges.
Tensor segment_softmax(const Tensor& x, const std::vector<std::int64_t>& segment,
                       std::int64_t num_segments);

/// Gaussian radial-basis expansion: d [E, 1] -> [E, K] with
/// out[e, k] = exp(-gamma (d[e] - centers[k])²). Centers are constants;
/// gradients flow through d (SchNet's continuous-filter input).
Tensor gaussian_rbf(const Tensor& d, const std::vector<float>& centers,
                    float gamma);

/// Evenly spaced RBF centers on [lo, hi].
std::vector<float> linspace_centers(float lo, float hi, std::int64_t count);

}  // namespace matsci::core
