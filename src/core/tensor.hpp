#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "core/memory/storage.hpp"
#include "core/random.hpp"

namespace matsci::core {

using Shape = std::vector<std::int64_t>;

struct GradFn;

/// Reference-counted tensor payload. Users interact through `Tensor`;
/// optimizers and autograd touch the impl directly (data / grad buffers).
///
/// Both buffers live in pooled, 64-byte-aligned Storage (see
/// core/memory): a steady-state loop of fixed-shape steps recycles
/// buffers through the pool instead of touching malloc.
struct TensorImpl {
  Shape shape;
  memory::FloatStorage data;
  bool requires_grad = false;
  /// Gradient buffer; empty until materialized by the autograd engine
  /// (or `ensure_grad`). When non-empty, always `data.size()` long.
  memory::FloatStorage grad;
  /// Backward node that produced this tensor; null for leaves.
  std::shared_ptr<GradFn> grad_fn;

  std::int64_t numel() const { return static_cast<std::int64_t>(data.size()); }
  bool needs_grad() const { return requires_grad || grad_fn != nullptr; }
  /// Materialize a zero gradient buffer if absent.
  void ensure_grad();
  /// grad += g (materializing first). `g` must have numel() entries.
  void accumulate_grad(const float* g);
};

/// Dense, row-major, fp32 tensor with reverse-mode autodiff.
///
/// Copying a Tensor is cheap (shared payload); use `clone()` for a deep
/// copy. Rank is arbitrary but the op library is 2-D centric ([N, D]
/// matrices plus [1] scalars), which covers GNN workloads.
class Tensor {
 public:
  Tensor() = default;  ///< Undefined tensor; `defined()` is false.
  explicit Tensor(std::shared_ptr<TensorImpl> impl) : impl_(std::move(impl)) {}

  // --- factories ---------------------------------------------------------
  /// UNINITIALIZED contents — callers must fully overwrite before any
  /// read (every kernel producing into empty() does).
  static Tensor empty(Shape shape);
  static Tensor zeros(Shape shape);
  static Tensor ones(Shape shape);
  static Tensor full(Shape shape, float value);
  static Tensor scalar(float value);  ///< shape [1]
  static Tensor from_vector(std::vector<float> values, Shape shape);
  /// Wrap an already-pooled buffer without copying (the op hot path).
  static Tensor from_storage(memory::FloatStorage values, Shape shape);
  static Tensor randn(Shape shape, RngEngine& rng, float mean = 0.0f,
                      float stddev = 1.0f);
  static Tensor rand_uniform(Shape shape, RngEngine& rng, float lo = 0.0f,
                             float hi = 1.0f);

  // --- structure ---------------------------------------------------------
  bool defined() const { return impl_ != nullptr; }
  const Shape& shape() const;
  std::int64_t dim() const;
  std::int64_t size(std::int64_t d) const;
  std::int64_t numel() const;
  std::int64_t rows() const { return size(0); }  ///< 2-D convenience
  std::int64_t cols() const { return size(1); }  ///< 2-D convenience

  // --- element access ----------------------------------------------------
  float* data();
  const float* data() const;
  /// Views into the payload. Deleted on rvalues: a span outliving its
  /// (temporary) handle dangles unless something else owns the payload,
  /// so callers must bind the tensor to a name first.
  std::span<float> span() &;
  std::span<const float> span() const&;
  std::span<float> span() && = delete;
  std::span<const float> span() const&& = delete;
  float item() const;                       ///< numel() == 1
  float at(std::int64_t i) const;           ///< flat index
  float at(std::int64_t i, std::int64_t j) const;  ///< 2-D index
  void set(std::int64_t i, float v);
  void set(std::int64_t i, std::int64_t j, float v);

  // --- autograd ----------------------------------------------------------
  Tensor& set_requires_grad(bool value);
  bool requires_grad() const;
  bool has_grad() const;
  /// Snapshot of the gradient as a fresh tensor (throws if absent).
  Tensor grad() const;
  std::span<float> grad_span() &;  ///< direct view (materializes zeros)
  std::span<float> grad_span() && = delete;
  void zero_grad();
  /// Reverse-mode backprop from this scalar tensor (numel() must be 1).
  /// Const on the handle: mutates gradient buffers in the shared payload.
  void backward() const;
  /// Same data, detached from the graph (no grad_fn, requires_grad=false).
  Tensor detach() const;
  /// Deep copy of the data (leaf tensor).
  Tensor clone() const;
  /// Overwrite this tensor's values from another of identical numel.
  void copy_(const Tensor& src);

  std::shared_ptr<TensorImpl> impl() const { return impl_; }
  std::string to_string(std::int64_t max_items = 16) const;

 private:
  std::shared_ptr<TensorImpl> impl_;
};

std::int64_t shape_numel(const Shape& shape);
std::string shape_to_string(const Shape& shape);
bool same_shape(const Shape& a, const Shape& b);

/// RAII guard disabling gradient tracking on this thread (inference mode).
///
/// Thread-safety contract: the grad-mode flag is `thread_local`, so a
/// guard only ever affects the thread that constructed it. Concurrent
/// inference workers each installing their own NoGradGuard cannot
/// re-enable (or disable) taping in a sibling thread, and a training
/// thread's tape keeps recording regardless of how many serving threads
/// run grad-free next to it. New threads start with grad mode ENABLED —
/// a worker pool that intends to run forward-only must install its own
/// guard per thread (see serve::InferenceSession, which guards every
/// predict call instead of relying on ambient state).
class NoGradGuard {
 public:
  NoGradGuard();
  ~NoGradGuard();
  NoGradGuard(const NoGradGuard&) = delete;
  NoGradGuard& operator=(const NoGradGuard&) = delete;

 private:
  bool previous_;
};

/// RAII guard forcing gradient mode to a chosen state — used to re-enable
/// the tape inside an outer NoGradGuard (e.g. force prediction during
/// evaluation needs ∂E/∂x even though evaluation runs grad-free).
class GradModeGuard {
 public:
  explicit GradModeGuard(bool enabled);
  ~GradModeGuard();
  GradModeGuard(const GradModeGuard&) = delete;
  GradModeGuard& operator=(const GradModeGuard&) = delete;

 private:
  bool previous_;
};

/// True when ops should record autograd metadata on this thread.
/// Per-thread state (see NoGradGuard); defaults to true on every thread.
bool grad_mode_enabled();

}  // namespace matsci::core
