#include "core/backend/backend.hpp"

#include <atomic>
#include <cstdlib>
#include <mutex>

#include "core/backend/tables.hpp"
#include "core/macros.hpp"

namespace matsci::core::backend {

namespace {

const KernelTable* table_for(Backend b) {
  switch (b) {
    case Backend::kScalar:
      return scalar_impl::table();
    case Backend::kAvx2:
#if MATSCI_BACKEND_HAS_AVX2
      return avx2_impl::table();
#else
      return nullptr;
#endif
    case Backend::kAvx512:
#if MATSCI_BACKEND_HAS_AVX512
      return avx512_impl::table();
#else
      return nullptr;
#endif
  }
  return nullptr;
}

bool cpu_supports(Backend b) {
#if defined(__x86_64__) || defined(_M_X64)
  switch (b) {
    case Backend::kScalar:
      return true;
    case Backend::kAvx2:
      return __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
    case Backend::kAvx512:
      return __builtin_cpu_supports("avx512f") &&
             __builtin_cpu_supports("avx512dq") &&
             __builtin_cpu_supports("avx512bw") &&
             __builtin_cpu_supports("avx512vl");
  }
  return false;
#else
  return b == Backend::kScalar;
#endif
}

/// Resolve the initial backend once: MATSCI_KERNEL_BACKEND, else the
/// widest supported tier. An unknown or unsupported env value fails
/// loudly — silently running scalar when the user asked for avx512
/// would invalidate benchmark numbers.
Backend resolve_initial() {
  if (const char* env = std::getenv("MATSCI_KERNEL_BACKEND")) {
    const std::string_view v(env);
    if (!v.empty() && v != "auto") {
      const std::optional<Backend> parsed = parse_backend(v);
      MATSCI_CHECK(parsed.has_value(),
                   "MATSCI_KERNEL_BACKEND: unknown backend '"
                       << env << "' (expected auto|scalar|avx2|avx512)");
      MATSCI_CHECK(backend_supported(*parsed),
                   "MATSCI_KERNEL_BACKEND=" << env
                                            << " is not supported here ("
                                            << (backend_compiled(*parsed)
                                                    ? "CPU lacks the ISA"
                                                    : "not compiled in")
                                            << ")");
      return *parsed;
    }
  }
  return best_supported();
}

std::atomic<const KernelTable*> g_table{nullptr};
std::atomic<int> g_backend{-1};
std::once_flag g_init_once;

void init_once() {
  std::call_once(g_init_once, [] {
    const Backend b = resolve_initial();
    g_table.store(table_for(b), std::memory_order_release);
    g_backend.store(static_cast<int>(b), std::memory_order_release);
  });
}

}  // namespace

const KernelTable& kernels() {
  const KernelTable* t = g_table.load(std::memory_order_acquire);
  if (t == nullptr) {
    init_once();
    t = g_table.load(std::memory_order_acquire);
  }
  return *t;
}

Backend active_backend() {
  init_once();
  return static_cast<Backend>(g_backend.load(std::memory_order_acquire));
}

bool backend_compiled(Backend b) { return table_for(b) != nullptr; }

bool backend_supported(Backend b) {
  return backend_compiled(b) && cpu_supports(b);
}

Backend best_supported() {
  if (backend_supported(Backend::kAvx512)) return Backend::kAvx512;
  if (backend_supported(Backend::kAvx2)) return Backend::kAvx2;
  return Backend::kScalar;
}

void set_backend(Backend b) {
  MATSCI_CHECK(backend_supported(b),
               "set_backend(" << backend_name(b) << "): "
                              << (backend_compiled(b)
                                      ? "CPU does not support this ISA"
                                      : "backend not compiled into this binary"));
  init_once();
  g_table.store(table_for(b), std::memory_order_release);
  g_backend.store(static_cast<int>(b), std::memory_order_release);
}

std::optional<Backend> parse_backend(std::string_view name) {
  if (name == "scalar") return Backend::kScalar;
  if (name == "avx2") return Backend::kAvx2;
  if (name == "avx512") return Backend::kAvx512;
  return std::nullopt;
}

const char* backend_name(Backend b) {
  switch (b) {
    case Backend::kScalar:
      return "scalar";
    case Backend::kAvx2:
      return "avx2";
    case Backend::kAvx512:
      return "avx512";
  }
  return "unknown";
}

}  // namespace matsci::core::backend
