// Portable reference backend: plain C++ loops, no intrinsics, compiled
// with the project's baseline flags. Bit-for-bit identical to the
// pre-backend serial kernels.
#define MATSCI_BK_NS scalar_impl
#define MATSCI_BK_LEVEL 0
#define MATSCI_BK_NAME "scalar"
#include "core/backend/kernels_body.inc"
