#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace matsci::core::backend {

/// Instruction-set tiers the kernel layer can dispatch to. kScalar is
/// the portable reference: plain C++ loops, always compiled, and the
/// numerical baseline every SIMD backend is tolerance-checked against.
/// kAvx2/kAvx512 are compiled only when the toolchain supports the
/// flags (x86-64) and selected only when cpuid reports support.
enum class Backend : int { kScalar = 0, kAvx2 = 1, kAvx512 = 2 };

inline constexpr int kNumBackends = 3;

/// Binary elementwise ops with a vectorized table entry.
enum class BinaryOp : int { kAdd, kSub, kMul, kDiv };

/// Unary elementwise ops with a vectorized table entry. arg0/arg1 carry
/// op parameters (the scalar for kAddScalar/kMulScalar, lo/hi for
/// kClamp); unused otherwise.
enum class UnaryOp : int {
  kAddScalar,
  kMulScalar,
  kAbs,
  kSquare,
  kSqrt,
  kRsqrt,
  kRelu,
  kClamp,
  kExp,
  kSigmoid,
  kSilu,
  kTanh,
};

/// How a binary op's second operand maps onto the first (shared with
/// core/ops.cpp broadcast classification). For kRow/kCol the flat index
/// range is interpreted against a row-major [rows, d] layout.
enum class Bcast : int { kSame, kScalar, kRow, kCol };

/// Function-pointer table of hot kernels, one instance per backend.
/// Every function operates on a sub-range of the problem so the
/// deterministic parallel runtime can hand chunks to the pool; range
/// semantics per entry are documented inline.
///
/// Determinism contract (DESIGN.md §11): within one backend, a kernel's
/// output for a given chunk depends only on the chunk bounds and
/// inputs — never on thread count or pointer alignment — so results
/// stay bit-identical at any thread count. Across backends, pointwise
/// IEEE ops (add/sub/mul/div/min/max/sqrt and the row-copy/row-add
/// kernels) are bit-identical to scalar by construction; kernels that
/// reassociate accumulation (matmul, reductions, softmax) or use
/// polynomial transcendentals (exp/sigmoid/tanh/silu) agree with the
/// scalar backend to tolerance only.
struct KernelTable {
  const char* name;

  // --- dense linear algebra ------------------------------------------------
  /// c rows [i0, i1) of C = A[n,k] * B[k,m]. Fully overwrites those rows
  /// (output may be uninitialized).
  void (*matmul_nn)(const float* a, const float* b, float* c, std::int64_t i0,
                    std::int64_t i1, std::int64_t k, std::int64_t m);
  /// ga rows [i0, i1) of dA = G[n,m] * B[k,m]^T (row-row dot products).
  /// Fully overwrites.
  void (*matmul_nt)(const float* g, const float* b, float* ga, std::int64_t i0,
                    std::int64_t i1, std::int64_t k, std::int64_t m);
  /// gb rows [k0, k1) of dB = A[n,k]^T * G[n,m], accumulating over i in
  /// ascending order. Fully overwrites those rows.
  void (*matmul_tn)(const float* a, const float* g, float* gb, std::int64_t k0,
                    std::int64_t k1, std::int64_t n, std::int64_t k,
                    std::int64_t m);

  // --- elementwise ---------------------------------------------------------
  /// out[i] = op(a[i], b[bcast(i)]) for flat i in [begin, end); d is the
  /// row width for kRow/kCol.
  void (*binary_ew)(BinaryOp op, Bcast kind, const float* a, const float* b,
                    float* out, std::int64_t begin, std::int64_t end,
                    std::int64_t d);
  /// ga[i] = go[i] * d(op)/da at (a[i], b[bcast(i)]).
  void (*binary_grad_a)(BinaryOp op, Bcast kind, const float* go,
                        const float* a, const float* b, float* ga,
                        std::int64_t begin, std::int64_t end, std::int64_t d);
  /// gb[i] = go[i] * d(op)/db at (a[i], b[i]) — kSame broadcasting only
  /// (the reduced broadcast kinds stay serial in ops.cpp).
  void (*binary_grad_b_same)(BinaryOp op, const float* go, const float* a,
                             const float* b, float* gb, std::int64_t begin,
                             std::int64_t end);
  /// y[i] = op(x[i]) for i in [begin, end).
  void (*unary_map)(UnaryOp op, const float* x, float* y, std::int64_t begin,
                    std::int64_t end, float arg0, float arg1);
  /// ga[i] = go[i] * dop/dx at x[i] (y[i] is the saved forward output).
  void (*unary_grad)(UnaryOp op, const float* x, const float* y,
                     const float* go, float* ga, std::int64_t begin,
                     std::int64_t end, float arg0, float arg1);

  // --- reductions / softmax ------------------------------------------------
  /// Sum of x[begin, end) accumulated in double (per-chunk partial for
  /// the deterministic tree reduction).
  double (*reduce_sum)(const float* x, std::int64_t begin, std::int64_t end);
  /// out[r] = (float)(sum of row r of x[., d] in double), rows [r0, r1).
  void (*row_sums)(const float* x, float* out, std::int64_t r0,
                   std::int64_t r1, std::int64_t d);
  /// Row-wise softmax of x[., c] into y for rows [r0, r1) (max-shifted).
  void (*softmax_rows)(const float* x, float* y, std::int64_t r0,
                       std::int64_t r1, std::int64_t c);

  // --- rows / message passing ---------------------------------------------
  /// dst[0, n) += src[0, n) (the scatter/segment inner accumulation and
  /// gradient accumulate; bit-identical across backends).
  void (*add_rows)(float* dst, const float* src, std::int64_t n);
  /// out rows [r0, r1) = src rows idx[r] (row gather; d floats per row).
  void (*gather_rows)(const float* src, const std::int64_t* idx, float* out,
                      std::int64_t r0, std::int64_t r1, std::int64_t d);
  /// out[r, c] = exp(-gamma * (d[r] - centers[c])^2) for rows [r0, r1).
  void (*gaussian_rbf_rows)(const float* d, const float* centers,
                            std::int64_t k, float gamma, std::int64_t r0,
                            std::int64_t r1, float* out);

  // --- geometry (double precision, radius-graph hot path) ------------------
  /// out[j] = |p_j - p_i|^2 for j in [j0, j1), free boundary.
  void (*sq_dists)(const double* xs, const double* ys, const double* zs,
                   std::int64_t j0, std::int64_t j1, double xi, double yi,
                   double zi, double* out);
  /// Same under periodic minimal-image convention; lat/inv are row-major
  /// 3x3 lattice and inverse-lattice matrices.
  void (*sq_dists_pbc)(const double* xs, const double* ys, const double* zs,
                       std::int64_t j0, std::int64_t j1, double xi, double yi,
                       double zi, const double* lat, const double* inv,
                       double* out);

  // --- losses / segment softmax --------------------------------------------
  /// Cross-entropy rows [r0, r1): writes row-wise softmax probabilities
  /// into `probs` and returns the chunk's double loss partial
  /// (sum of logsumexp(row) - row[label]). Labels must be pre-validated
  /// by the caller (the kernel does no range checks).
  double (*ce_loss_rows)(const float* logits, const std::int64_t* labels,
                         float* probs, std::int64_t r0, std::int64_t r1,
                         std::int64_t c);
  /// ga[i, j] = g * (probs[i, j] - onehot(labels[i], j)) for rows
  /// [r0, r1). Fully overwrites those rows.
  void (*ce_grad_rows)(const float* probs, const std::int64_t* labels, float g,
                       float* ga, std::int64_t r0, std::int64_t r1,
                       std::int64_t c);
  /// Stable binary-cross-entropy-with-logits partial over [begin, end):
  /// sum of max(z,0) - z*t + log1p(exp(-|z|)) accumulated in double.
  double (*bce_sum)(const float* z, const float* t, std::int64_t begin,
                    std::int64_t end);
  /// BCE gradients over [begin, end): ga[i] = g * (sigmoid(z[i]) - t[i])
  /// and gt[i] = -g * z[i]. Either output may be null to skip it.
  void (*bce_grad)(const float* z, const float* t, float g, float* ga,
                   float* gt, std::int64_t begin, std::int64_t end);
  /// Huber loss partial over [begin, end): sum of
  /// |d| < beta ? 0.5 d^2 / beta : |d| - 0.5 beta for d = p - t, double
  /// accumulated.
  double (*huber_sum)(const float* p, const float* t, float beta,
                      std::int64_t begin, std::int64_t end);
  /// out[i] = gscale * clamp((p[i]-t[i]) / beta, -1, 1) over
  /// [begin, end) — callers pass gscale = +g for d(loss)/dp and -g for
  /// d(loss)/dt.
  void (*huber_grad)(const float* p, const float* t, float gscale, float beta,
                     float* out, std::int64_t begin, std::int64_t end);
  /// out[r] = exp(x[r] - seg_max[seg[r]]) for r in [begin, end) (the
  /// shifted-exponential phase of segment softmax; the order-dependent
  /// per-segment sum stays with the caller).
  void (*seg_shift_exp)(const float* x, const std::int64_t* seg,
                        const float* seg_max, float* out, std::int64_t begin,
                        std::int64_t end);
  /// gx[r] = probs[r] * (go[r] - (float)dot[seg[r]]) for r in
  /// [begin, end) — the within-segment softmax Jacobian application,
  /// with `dot` the caller's per-segment double sum of go * probs.
  void (*seg_softmax_grad)(const float* probs, const float* go,
                           const std::int64_t* seg, const double* dot,
                           float* gx, std::int64_t begin, std::int64_t end);
};

/// The active backend's kernel table (atomic pointer load; safe to call
/// from pool workers). First call resolves MATSCI_KERNEL_BACKEND.
const KernelTable& kernels();

/// Currently active backend.
Backend active_backend();

/// True when this binary contains code for `b` (compile-time support).
bool backend_compiled(Backend b);

/// True when `b` is compiled in AND the running CPU supports it.
bool backend_supported(Backend b);

/// The widest supported backend (what "auto" resolves to).
Backend best_supported();

/// Switch the active backend (tests, benchmarks, forced-fallback CI).
/// Fails loudly on a backend that is not compiled in or not supported
/// by the CPU. Not intended to race in-flight kernels: callers switch
/// between steps, not during them.
void set_backend(Backend b);

/// Parse "scalar" | "avx2" | "avx512" (nullopt on anything else;
/// "auto" is handled by the dispatcher, not here).
std::optional<Backend> parse_backend(std::string_view name);

const char* backend_name(Backend b);

}  // namespace matsci::core::backend
