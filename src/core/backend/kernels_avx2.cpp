// AVX2 + FMA backend. This TU is compiled with -mavx2 -mfma (per-source
// flags set in src/CMakeLists.txt) and only ever executed after a
// runtime cpuid check in dispatch.cpp.
#define MATSCI_BK_NS avx2_impl
#define MATSCI_BK_LEVEL 1
#define MATSCI_BK_NAME "avx2"
#include "core/backend/kernels_body.inc"
