#pragma once

#include "core/backend/backend.hpp"

// Internal: per-backend table accessors defined by the kernels_*.cpp
// translation units. The AVX declarations exist unconditionally; their
// definitions are only linked when CMake compiled the matching TU
// (MATSCI_BACKEND_HAS_AVX2 / MATSCI_BACKEND_HAS_AVX512), and
// dispatch.cpp only references them under those same guards.

namespace matsci::core::backend {
namespace scalar_impl {
const KernelTable* table();
}
namespace avx2_impl {
const KernelTable* table();
}
namespace avx512_impl {
const KernelTable* table();
}
}  // namespace matsci::core::backend
