// AVX-512 backend (F/DQ/BW/VL subset via -mavx512f -mavx512dq
// -mavx512bw -mavx512vl; per-source flags in src/CMakeLists.txt).
// Only executed after a runtime cpuid check in dispatch.cpp.
#define MATSCI_BK_NS avx512_impl
#define MATSCI_BK_LEVEL 2
#define MATSCI_BK_NAME "avx512"
#include "core/backend/kernels_body.inc"
