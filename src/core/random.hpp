#pragma once

#include <cstdint>
#include <vector>

namespace matsci::core {

/// Deterministic, splittable pseudo-random engine (SplitMix64 core).
///
/// Every stochastic component in the toolkit (initializers, dropout,
/// dataset generators, samplers, UMAP layout) takes an explicit RngEngine
/// or seed so experiments are bitwise reproducible across runs. `fork`
/// derives an independent child stream — used to give every DDP rank,
/// dataloader worker, or dataset sample its own stream without
/// correlations.
class RngEngine {
 public:
  explicit RngEngine(std::uint64_t seed = 0x9E3779B97F4A7C15ull);

  /// Next raw 64-bit value.
  std::uint64_t next_u64();

  /// Uniform in [0, 1).
  double uniform();

  /// Uniform in [lo, hi).
  double uniform(double lo, double hi);

  /// Standard normal via Box–Muller (caches the second variate).
  double normal();

  /// Normal with given mean / stddev.
  double normal(double mean, double stddev);

  /// Uniform integer in [0, n). Requires n > 0.
  std::int64_t next_int(std::int64_t n);

  /// Bernoulli trial with probability p of returning true.
  bool bernoulli(double p);

  /// Derive an independent child stream. Deterministic in (state, id).
  RngEngine fork(std::uint64_t id) const;

  /// Fisher–Yates shuffle of an index vector.
  void shuffle(std::vector<std::int64_t>& v);

  /// Sample k distinct indices from [0, n) (k <= n), in random order.
  std::vector<std::int64_t> sample_without_replacement(std::int64_t n,
                                                       std::int64_t k);

 private:
  std::uint64_t state_;
  bool has_cached_normal_ = false;
  double cached_normal_ = 0.0;
};

}  // namespace matsci::core
