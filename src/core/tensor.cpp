#include "core/tensor.hpp"

#include <algorithm>
#include <cstring>
#include <sstream>

#include "core/autograd.hpp"
#include "core/backend/backend.hpp"
#include "core/macros.hpp"

namespace matsci::core {

namespace {
// Per-thread, not global: concurrent inference sessions toggle this via
// NoGradGuard without racing each other or a training thread. Every new
// thread starts in grad mode; forward-only workers must install their own
// guard (the serve subsystem does this inside InferenceSession::predict).
thread_local bool g_grad_mode = true;
}  // namespace

bool grad_mode_enabled() { return g_grad_mode; }

NoGradGuard::NoGradGuard() : previous_(g_grad_mode) { g_grad_mode = false; }
NoGradGuard::~NoGradGuard() { g_grad_mode = previous_; }

GradModeGuard::GradModeGuard(bool enabled) : previous_(g_grad_mode) {
  g_grad_mode = enabled;
}
GradModeGuard::~GradModeGuard() { g_grad_mode = previous_; }

std::int64_t shape_numel(const Shape& shape) {
  std::int64_t n = 1;
  for (const std::int64_t d : shape) {
    MATSCI_CHECK(d >= 0, "negative dimension in shape " << shape_to_string(shape));
    n *= d;
  }
  return n;
}

std::string shape_to_string(const Shape& shape) {
  std::ostringstream os;
  os << "[";
  for (std::size_t i = 0; i < shape.size(); ++i) {
    if (i > 0) os << ", ";
    os << shape[i];
  }
  os << "]";
  return os.str();
}

bool same_shape(const Shape& a, const Shape& b) { return a == b; }

void TensorImpl::ensure_grad() {
  if (grad.empty()) {
    grad.assign(data.size(), 0.0f);
  }
}

void TensorImpl::accumulate_grad(const float* g) {
  ensure_grad();
  backend::kernels().add_rows(grad.data(), g,
                              static_cast<std::int64_t>(data.size()));
}

Tensor Tensor::empty(Shape shape) {
  auto impl = std::make_shared<TensorImpl>();
  const std::int64_t n = shape_numel(shape);
  impl->shape = std::move(shape);
  impl->data =
      memory::FloatStorage::uninitialized(static_cast<std::size_t>(n));
  return Tensor(std::move(impl));
}

Tensor Tensor::zeros(Shape shape) { return full(std::move(shape), 0.0f); }

Tensor Tensor::ones(Shape shape) { return full(std::move(shape), 1.0f); }

Tensor Tensor::full(Shape shape, float value) {
  Tensor t = empty(std::move(shape));
  std::fill(t.impl_->data.begin(), t.impl_->data.end(), value);
  return t;
}

Tensor Tensor::scalar(float value) { return full({1}, value); }

Tensor Tensor::from_vector(std::vector<float> values, Shape shape) {
  const std::int64_t n = shape_numel(shape);
  MATSCI_CHECK(static_cast<std::int64_t>(values.size()) == n,
               "from_vector: " << values.size() << " values for shape "
                               << shape_to_string(shape));
  auto impl = std::make_shared<TensorImpl>();
  impl->shape = std::move(shape);
  impl->data = memory::FloatStorage::from_vector(values);
  return Tensor(std::move(impl));
}

Tensor Tensor::from_storage(memory::FloatStorage values, Shape shape) {
  const std::int64_t n = shape_numel(shape);
  MATSCI_CHECK(static_cast<std::int64_t>(values.size()) == n,
               "from_storage: " << values.size() << " values for shape "
                                << shape_to_string(shape));
  auto impl = std::make_shared<TensorImpl>();
  impl->shape = std::move(shape);
  impl->data = std::move(values);
  return Tensor(std::move(impl));
}

Tensor Tensor::randn(Shape shape, RngEngine& rng, float mean, float stddev) {
  Tensor t = empty(std::move(shape));
  for (float& v : t.impl_->data) {
    v = static_cast<float>(rng.normal(mean, stddev));
  }
  return t;
}

Tensor Tensor::rand_uniform(Shape shape, RngEngine& rng, float lo, float hi) {
  Tensor t = empty(std::move(shape));
  for (float& v : t.impl_->data) {
    v = static_cast<float>(rng.uniform(lo, hi));
  }
  return t;
}

const Shape& Tensor::shape() const {
  MATSCI_CHECK(defined(), "shape() on undefined tensor");
  return impl_->shape;
}

std::int64_t Tensor::dim() const {
  return static_cast<std::int64_t>(shape().size());
}

std::int64_t Tensor::size(std::int64_t d) const {
  const Shape& s = shape();
  MATSCI_CHECK(d >= 0 && d < static_cast<std::int64_t>(s.size()),
               "size(" << d << ") on shape " << shape_to_string(s));
  return s[static_cast<std::size_t>(d)];
}

std::int64_t Tensor::numel() const {
  MATSCI_CHECK(defined(), "numel() on undefined tensor");
  return impl_->numel();
}

float* Tensor::data() {
  MATSCI_CHECK(defined(), "data() on undefined tensor");
  return impl_->data.data();
}

const float* Tensor::data() const {
  MATSCI_CHECK(defined(), "data() on undefined tensor");
  return impl_->data.data();
}

std::span<float> Tensor::span() & {
  return {data(), static_cast<std::size_t>(numel())};
}

std::span<const float> Tensor::span() const& {
  return {data(), static_cast<std::size_t>(numel())};
}

float Tensor::item() const {
  MATSCI_CHECK(numel() == 1, "item() on tensor with numel=" << numel());
  return impl_->data[0];
}

float Tensor::at(std::int64_t i) const {
  MATSCI_CHECK(i >= 0 && i < numel(), "flat index " << i << " out of range");
  return impl_->data[static_cast<std::size_t>(i)];
}

float Tensor::at(std::int64_t i, std::int64_t j) const {
  MATSCI_CHECK(dim() == 2, "at(i,j) on tensor of rank " << dim());
  MATSCI_CHECK(i >= 0 && i < size(0) && j >= 0 && j < size(1),
               "index (" << i << ", " << j << ") out of range for "
                         << shape_to_string(shape()));
  return impl_->data[static_cast<std::size_t>(i * size(1) + j)];
}

void Tensor::set(std::int64_t i, float v) {
  MATSCI_CHECK(i >= 0 && i < numel(), "flat index " << i << " out of range");
  impl_->data[static_cast<std::size_t>(i)] = v;
}

void Tensor::set(std::int64_t i, std::int64_t j, float v) {
  MATSCI_CHECK(dim() == 2, "set(i,j) on tensor of rank " << dim());
  MATSCI_CHECK(i >= 0 && i < size(0) && j >= 0 && j < size(1),
               "index (" << i << ", " << j << ") out of range for "
                         << shape_to_string(shape()));
  impl_->data[static_cast<std::size_t>(i * size(1) + j)] = v;
}

Tensor& Tensor::set_requires_grad(bool value) {
  MATSCI_CHECK(defined(), "set_requires_grad on undefined tensor");
  MATSCI_CHECK(!value || impl_->grad_fn == nullptr,
               "requires_grad can only be set on leaf tensors");
  impl_->requires_grad = value;
  return *this;
}

bool Tensor::requires_grad() const {
  return defined() && impl_->requires_grad;
}

bool Tensor::has_grad() const { return defined() && !impl_->grad.empty(); }

Tensor Tensor::grad() const {
  MATSCI_CHECK(has_grad(), "grad() requested but no gradient is materialized");
  return Tensor::from_storage(impl_->grad, impl_->shape);
}

std::span<float> Tensor::grad_span() & {
  MATSCI_CHECK(defined(), "grad_span() on undefined tensor");
  impl_->ensure_grad();
  return {impl_->grad.data(), impl_->grad.size()};
}

void Tensor::zero_grad() {
  if (defined() && !impl_->grad.empty()) {
    std::fill(impl_->grad.begin(), impl_->grad.end(), 0.0f);
  }
}

void Tensor::backward() const { run_backward(*this); }

Tensor Tensor::detach() const {
  MATSCI_CHECK(defined(), "detach() on undefined tensor");
  auto impl = std::make_shared<TensorImpl>();
  impl->shape = impl_->shape;
  impl->data = impl_->data;  // value copy keeps detach() safe under later in-place edits
  return Tensor(std::move(impl));
}

Tensor Tensor::clone() const {
  Tensor t = detach();
  t.impl_->requires_grad = impl_->requires_grad;
  return t;
}

void Tensor::copy_(const Tensor& src) {
  MATSCI_CHECK(defined() && src.defined(), "copy_ on undefined tensor");
  MATSCI_CHECK(numel() == src.numel(),
               "copy_ numel mismatch: " << numel() << " vs " << src.numel());
  std::memcpy(impl_->data.data(), src.impl_->data.data(),
              impl_->data.size() * sizeof(float));
}

std::string Tensor::to_string(std::int64_t max_items) const {
  if (!defined()) return "Tensor(undefined)";
  std::ostringstream os;
  os << "Tensor" << shape_to_string(impl_->shape) << " {";
  const std::int64_t n = std::min<std::int64_t>(numel(), max_items);
  for (std::int64_t i = 0; i < n; ++i) {
    if (i > 0) os << ", ";
    os << impl_->data[static_cast<std::size_t>(i)];
  }
  if (numel() > n) os << ", ...";
  os << "}";
  return os.str();
}

}  // namespace matsci::core
