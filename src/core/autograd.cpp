#include "core/autograd.hpp"

#include <unordered_set>

#include "core/macros.hpp"

namespace matsci::core {

namespace {

/// Iterative post-order DFS over the grad_fn DAG rooted at `root`.
/// Returns payloads in topological order (inputs before outputs), so the
/// reverse walk visits each node only after all its consumers.
std::vector<std::shared_ptr<TensorImpl>> topo_order(
    const std::shared_ptr<TensorImpl>& root) {
  std::vector<std::shared_ptr<TensorImpl>> order;
  std::unordered_set<TensorImpl*> visited;

  struct Frame {
    std::shared_ptr<TensorImpl> node;
    std::size_t next_input = 0;
  };
  std::vector<Frame> stack;
  if (root->grad_fn != nullptr) {
    stack.push_back({root, 0});
    visited.insert(root.get());
  }
  while (!stack.empty()) {
    Frame& frame = stack.back();
    const auto& fn = frame.node->grad_fn;
    if (fn == nullptr || frame.next_input >= fn->inputs.size()) {
      order.push_back(frame.node);
      stack.pop_back();
      continue;
    }
    const auto& child = fn->inputs[frame.next_input++];
    if (child->grad_fn != nullptr && visited.insert(child.get()).second) {
      stack.push_back({child, 0});
    }
  }
  return order;
}

}  // namespace

void run_backward(const Tensor& root) {
  MATSCI_CHECK(root.defined(), "backward() on undefined tensor");
  MATSCI_CHECK(root.numel() == 1,
               "backward() requires a scalar root, got numel=" << root.numel());
  auto impl = root.impl();
  if (impl->grad_fn == nullptr) {
    // A leaf scalar: nothing to propagate; seed own grad if it wants one.
    if (impl->requires_grad) {
      impl->ensure_grad();
      impl->grad[0] += 1.0f;
    }
    return;
  }

  auto order = topo_order(impl);
  impl->ensure_grad();
  impl->grad[0] += 1.0f;

  // Reverse topological order: every node's grad is complete before its
  // backward runs.
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    TensorImpl& node = **it;
    if (node.grad.empty()) {
      // This node never received gradient (dead branch); skip.
      continue;
    }
    if (node.grad_fn->backward) {
      node.grad_fn->backward(node);
    }
  }

  // Release the tape below the root so intermediate buffers free eagerly
  // and repeated backward calls fail loudly instead of double-counting.
  for (const auto& node : order) {
    node->grad_fn.reset();
  }
}

Tensor make_op_result(Shape shape, std::vector<float> data, const char* name,
                      std::vector<std::shared_ptr<TensorImpl>> inputs,
                      std::function<void(TensorImpl&)> backward) {
  Tensor out = Tensor::from_vector(std::move(data), std::move(shape));
  if (!grad_mode_enabled()) {
    return out;
  }
  bool any = false;
  for (const auto& in : inputs) {
    if (in != nullptr && in->needs_grad()) {
      any = true;
      break;
    }
  }
  if (!any) {
    return out;
  }
  auto fn = std::make_shared<GradFn>();
  fn->name = name;
  fn->inputs = std::move(inputs);
  fn->backward = std::move(backward);
  out.impl()->grad_fn = std::move(fn);
  return out;
}

}  // namespace matsci::core
