#include "core/autograd.hpp"

#include <unordered_map>
#include <unordered_set>
#include <utility>

#include "core/macros.hpp"
#include "core/memory/arena.hpp"

namespace matsci::core {

namespace {

/// Tape-walk containers draw from the per-thread bump arena: a
/// steady-state training loop reuses the same chunks every step instead
/// of reallocating the topo vector / visited set each backward.
template <typename T>
using ArenaVector = std::vector<T, memory::ArenaStlAllocator<T>>;
using ArenaVisitedSet =
    std::unordered_set<TensorImpl*, std::hash<TensorImpl*>,
                       std::equal_to<TensorImpl*>,
                       memory::ArenaStlAllocator<TensorImpl*>>;

/// Iterative post-order DFS over the grad_fn DAG rooted at `root`.
/// Returns payloads in topological order (inputs before outputs), so the
/// reverse walk visits each node only after all its consumers.
ArenaVector<std::shared_ptr<TensorImpl>> topo_order(
    const std::shared_ptr<TensorImpl>& root, memory::Arena& arena) {
  ArenaVector<std::shared_ptr<TensorImpl>> order{
      memory::ArenaStlAllocator<std::shared_ptr<TensorImpl>>(arena)};
  ArenaVisitedSet visited{/*bucket_count=*/16, std::hash<TensorImpl*>(),
                          std::equal_to<TensorImpl*>(),
                          memory::ArenaStlAllocator<TensorImpl*>(arena)};

  struct Frame {
    std::shared_ptr<TensorImpl> node;
    std::size_t next_input = 0;
  };
  ArenaVector<Frame> stack{memory::ArenaStlAllocator<Frame>(arena)};
  if (root->grad_fn != nullptr) {
    stack.push_back({root, 0});
    visited.insert(root.get());
  }
  while (!stack.empty()) {
    Frame& frame = stack.back();
    const auto& fn = frame.node->grad_fn;
    if (fn == nullptr || frame.next_input >= fn->inputs.size()) {
      order.push_back(frame.node);
      stack.pop_back();
      continue;
    }
    const auto& child = fn->inputs[frame.next_input++];
    if (child->grad_fn != nullptr && visited.insert(child.get()).second) {
      stack.push_back({child, 0});
    }
  }
  return order;
}

/// Depth of nested run_backward calls on this thread: the arena only
/// rewinds when the outermost backward finishes, so a backward launched
/// from inside another one cannot clobber the outer walk's containers.
thread_local int g_backward_depth = 0;

/// Per-thread leaf-readiness hook (see GradReadyHookGuard). A plain
/// function pointer would not carry captures, and the guard keeps
/// installs balanced, so a thread_local std::function is safe here.
thread_local GradReadyHook g_grad_ready_hook;

/// Remaining unprocessed consumers per requires-grad leaf during one
/// backward walk; when a count hits zero the leaf's gradient is final.
using ArenaLeafCountMap = std::unordered_map<
    TensorImpl*, std::pair<std::shared_ptr<TensorImpl>, std::int64_t>,
    std::hash<TensorImpl*>, std::equal_to<TensorImpl*>,
    memory::ArenaStlAllocator<std::pair<
        TensorImpl* const,
        std::pair<std::shared_ptr<TensorImpl>, std::int64_t>>>>;

}  // namespace

GradReadyHookGuard::GradReadyHookGuard(GradReadyHook hook)
    : previous_(std::move(g_grad_ready_hook)) {
  g_grad_ready_hook = std::move(hook);
}

GradReadyHookGuard::~GradReadyHookGuard() {
  g_grad_ready_hook = std::move(previous_);
}

void run_backward(const Tensor& root) {
  MATSCI_CHECK(root.defined(), "backward() on undefined tensor");
  MATSCI_CHECK(root.numel() == 1,
               "backward() requires a scalar root, got numel=" << root.numel());
  auto impl = root.impl();
  if (impl->grad_fn == nullptr) {
    // A leaf scalar: nothing to propagate; seed own grad if it wants one.
    if (impl->requires_grad) {
      impl->ensure_grad();
      impl->grad[0] += 1.0f;
      if (g_grad_ready_hook) g_grad_ready_hook(impl);
    }
    return;
  }

  memory::Arena& arena = memory::Arena::thread_local_arena();
  // Exception-safe depth bookkeeping: a throwing backward must still
  // unwind the depth so later calls rewind the arena again.
  struct DepthGuard {
    memory::Arena& arena;
    ~DepthGuard() {
      if (--g_backward_depth == 0) arena.reset();
    }
  } depth_guard{arena};
  ++g_backward_depth;
  {
    auto order = topo_order(impl, arena);
    impl->ensure_grad();
    impl->grad[0] += 1.0f;

    // Leaf-readiness accounting (only when a hook is installed): count
    // how many tape nodes consume each requires-grad leaf. A leaf's
    // gradient is final once the reverse walk has processed its last
    // consumer — skipped dead-branch nodes count as processed, since a
    // node without gradient contributes nothing either way.
    ArenaLeafCountMap leaf_pending{
        /*bucket_count=*/16, std::hash<TensorImpl*>(),
        std::equal_to<TensorImpl*>(),
        memory::ArenaStlAllocator<std::pair<
            TensorImpl* const,
            std::pair<std::shared_ptr<TensorImpl>, std::int64_t>>>(arena)};
    if (g_grad_ready_hook) {
      for (const auto& node : order) {
        for (const auto& in : node->grad_fn->inputs) {
          if (in != nullptr && in->grad_fn == nullptr && in->requires_grad) {
            auto [it, inserted] =
                leaf_pending.try_emplace(in.get(), std::make_pair(in, 0));
            ++it->second.second;
          }
        }
      }
    }
    const auto retire_leaf_inputs = [&](const GradFn& fn) {
      if (!g_grad_ready_hook) return;
      for (const auto& in : fn.inputs) {
        if (in == nullptr || in->grad_fn != nullptr || !in->requires_grad) {
          continue;
        }
        auto it = leaf_pending.find(in.get());
        if (it != leaf_pending.end() && --it->second.second == 0) {
          g_grad_ready_hook(it->second.first);
        }
      }
    };

    // Reverse topological order: every node's grad is complete before
    // its backward runs.
    for (auto it = order.rbegin(); it != order.rend(); ++it) {
      TensorImpl& node = **it;
      if (!node.grad.empty() && node.grad_fn->backward) {
        node.grad_fn->backward(node);
      }
      retire_leaf_inputs(*node.grad_fn);
    }

    // Release the tape below the root so intermediate buffers free
    // eagerly and repeated backward calls fail loudly instead of
    // double-counting.
    for (const auto& node : order) {
      node->grad_fn.reset();
    }
  }  // containers die before DepthGuard rewinds the arena
}

Tensor make_op_result(Shape shape, std::vector<float> data, const char* name,
                      std::vector<std::shared_ptr<TensorImpl>> inputs,
                      std::function<void(TensorImpl&)> backward) {
  return make_op_result(std::move(shape),
                        memory::FloatStorage::from_vector(data), name,
                        std::move(inputs), std::move(backward));
}

Tensor make_op_result(Shape shape, memory::FloatStorage data, const char* name,
                      std::vector<std::shared_ptr<TensorImpl>> inputs,
                      std::function<void(TensorImpl&)> backward) {
  Tensor out = Tensor::from_storage(std::move(data), std::move(shape));
  if (!grad_mode_enabled()) {
    return out;
  }
  bool any = false;
  for (const auto& in : inputs) {
    if (in != nullptr && in->needs_grad()) {
      any = true;
      break;
    }
  }
  if (!any) {
    return out;
  }
  auto fn = std::make_shared<GradFn>();
  fn->name = name;
  fn->inputs = std::move(inputs);
  fn->backward = std::move(backward);
  out.impl()->grad_fn = std::move(fn);
  return out;
}

}  // namespace matsci::core
