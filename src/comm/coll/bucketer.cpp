#include "comm/coll/bucketer.hpp"

#include <algorithm>

#include "core/macros.hpp"

namespace matsci::comm::coll {

GradBucketer::GradBucketer(std::vector<core::Tensor> params,
                           std::int64_t bucket_bytes)
    : params_(std::move(params)) {
  MATSCI_CHECK(bucket_bytes >= 1, "bucket_bytes must be >= 1");
  const std::int64_t cap_elems = std::max<std::int64_t>(
      1, bucket_bytes / static_cast<std::int64_t>(sizeof(float)));

  Bucket current;
  const auto close_current = [&] {
    if (!current.param_indices.empty()) {
      current.flat =
          core::memory::FloatStorage::uninitialized(static_cast<std::size_t>(
              current.numel));
      buckets_.push_back(std::move(current));
      current = Bucket{};
    }
  };

  // Reverse registration order; a param that would overflow the cap
  // closes the current bucket first (so an oversized param always lands
  // alone in its own bucket).
  for (std::size_t k = params_.size(); k-- > 0;) {
    const core::Tensor& p = params_[k];
    MATSCI_CHECK(p.defined(), "GradBucketer: undefined parameter");
    const std::int64_t n = p.numel();
    if (current.numel > 0 && current.numel + n > cap_elems) {
      close_current();
    }
    const auto [it, inserted] = owner_.try_emplace(
        p.impl().get(), static_cast<std::int64_t>(buckets_.size()));
    MATSCI_CHECK(inserted, "GradBucketer: duplicate parameter payload");
    current.param_indices.push_back(k);
    current.offsets.push_back(static_cast<std::size_t>(current.numel));
    current.numel += n;
    total_numel_ += n;
  }
  close_current();
}

std::int64_t GradBucketer::bucket_of(const core::TensorImpl* impl) const {
  const auto it = owner_.find(impl);
  return it == owner_.end() ? -1 : it->second;
}

std::span<float> GradBucketer::flatten(std::size_t i) {
  Bucket& b = buckets_[i];
  for (std::size_t j = 0; j < b.param_indices.size(); ++j) {
    core::Tensor& p = params_[b.param_indices[j]];
    const std::span<float> g = p.grad_span();
    std::copy(g.begin(), g.end(), b.flat.data() + b.offsets[j]);
  }
  return {b.flat.data(), b.flat.size()};
}

void GradBucketer::unflatten(std::size_t i) {
  Bucket& b = buckets_[i];
  for (std::size_t j = 0; j < b.param_indices.size(); ++j) {
    core::Tensor& p = params_[b.param_indices[j]];
    const std::span<float> g = p.grad_span();
    const float* src = b.flat.data() + b.offsets[j];
    std::copy(src, src + g.size(), g.begin());
  }
}

}  // namespace matsci::comm::coll
