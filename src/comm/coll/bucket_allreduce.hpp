#pragma once

// Overlapped, optionally compressed gradient allreduce (DESIGN.md §12).
// One engine per rank per ProcessGroup incarnation: begin_step() arms
// the step, autograd's GradReadyHook feeds on_grad_ready() as leaf
// gradients finalize (launching each bucket's non-blocking allreduce
// the moment its last member is ready), and finish_step() flushes
// stragglers, waits out every bucket, scatters the averaged gradients
// back, and reports the step's comm accounting.

#include <chrono>
#include <cstdint>
#include <memory>
#include <vector>

#include "comm/coll/bucketer.hpp"
#include "comm/coll/compressor.hpp"
#include "comm/communicator.hpp"
#include "core/autograd.hpp"

namespace matsci::comm::coll {

/// Per-step communication accounting.
struct StepStats {
  std::int64_t buckets = 0;
  std::int64_t bytes = 0;             ///< fp32 payload posted (per rank)
  std::int64_t compressed_bytes = 0;  ///< simulated wire bytes (per rank)
  /// Fraction of bucket in-flight time hidden under the backward pass:
  /// sum over buckets of the in-flight interval clipped to backward,
  /// divided by total in-flight time. 0 when nothing overlapped (e.g.
  /// every bucket flushed at finish_step), > 0 whenever a bucket's
  /// reduction completed while backward was still running.
  double overlap_fraction = 0.0;
  double reduce_us = 0.0;        ///< summed pool-side reduction time
  double exposed_wait_us = 0.0;  ///< time blocked in wait after backward
};

/// Cumulative view across steps (what fig2_scaleout reports).
struct EngineTotals {
  std::int64_t steps = 0;
  std::int64_t bytes = 0;
  std::int64_t compressed_bytes = 0;
  double overlap_fraction_sum = 0.0;  ///< divide by steps for the mean
  double mean_overlap_fraction() const {
    return steps > 0 ? overlap_fraction_sum / static_cast<double>(steps) : 0.0;
  }
};

class BucketAllreduce {
 public:
  /// `params` is the model's registration-order parameter list; `comm`
  /// must outlive the engine. Slot ids are the engine's bucket indices,
  /// so at most one bucketed engine may be live per group at a time
  /// (slot sizes are sticky per group).
  BucketAllreduce(Communicator& comm, std::vector<core::Tensor> params,
                  const CollOptions& opts);

  /// Abandons any still-in-flight contributions (exception unwind) so
  /// no pool-side reduction can touch the freed bucket buffers.
  ~BucketAllreduce();

  BucketAllreduce(const BucketAllreduce&) = delete;
  BucketAllreduce& operator=(const BucketAllreduce&) = delete;

  /// Arm the next step. Call after zero_grad, before backward.
  void begin_step();

  /// Autograd readiness callback: when `leaf` is the last pending
  /// member of its bucket, the bucket is flattened, (error-feedback)
  /// compressed, and posted for reduction — all on the caller's thread,
  /// with the reduction itself running on the shared pool.
  void on_grad_ready(const std::shared_ptr<core::TensorImpl>& leaf);

  /// Convenience adapter for GradReadyHookGuard.
  core::GradReadyHook hook();

  /// Flush buckets whose params backward never reached, wait for every
  /// reduction, scatter averaged gradients back into param .grad
  /// buffers, and return the step's accounting.
  StepStats finish_step();

  const GradBucketer& bucketer() const { return bucketer_; }
  const EngineTotals& totals() const { return totals_; }

 private:
  void launch(std::size_t bucket);

  Communicator& comm_;
  GradBucketer bucketer_;
  CollOptions opts_;
  std::unique_ptr<Compressor> compressor_;

  struct BucketState {
    std::int64_t pending = 0;  ///< params not yet grad-ready this step
    bool launched = false;
    bool waited = false;
    std::chrono::steady_clock::time_point post_time{};
    core::memory::FloatStorage residual;  ///< error-feedback carry (lossy only)
  };
  std::vector<BucketState> state_;
  std::int64_t step_bytes_ = 0;
  std::int64_t step_compressed_bytes_ = 0;
  bool step_armed_ = false;
  EngineTotals totals_;
  std::int64_t step_index_ = 0;
};

}  // namespace matsci::comm::coll
