#include "comm/coll/bucket_allreduce.hpp"

#include <algorithm>

#include "comm/coll/group_state.hpp"
#include "core/macros.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace matsci::comm::coll {

namespace {

struct BucketMetrics {
  obs::Counter& bytes;
  obs::Counter& compressed_bytes;
  obs::Histogram& reduce_us;
  obs::Series& overlap_fraction;

  static BucketMetrics& get() {
    static BucketMetrics* m = new BucketMetrics{
        obs::MetricsRegistry::global().counter("comm.bucket.bytes"),
        obs::MetricsRegistry::global().counter("comm.bucket.compressed_bytes"),
        obs::MetricsRegistry::global().histogram("comm.bucket.reduce_us"),
        obs::MetricsRegistry::global().series("comm.overlap_fraction"),
    };
    return *m;
  }
};

double us_between(std::chrono::steady_clock::time_point a,
                  std::chrono::steady_clock::time_point b) {
  return std::chrono::duration<double, std::micro>(b - a).count();
}

}  // namespace

BucketAllreduce::BucketAllreduce(Communicator& comm,
                                 std::vector<core::Tensor> params,
                                 const CollOptions& opts)
    : comm_(comm),
      bucketer_(std::move(params), opts.bucket_bytes),
      opts_(opts),
      compressor_(make_compressor(opts)) {
  state_.resize(bucketer_.num_buckets());
}

BucketAllreduce::~BucketAllreduce() {
  bool in_flight = false;
  for (const BucketState& s : state_) {
    if (s.launched && !s.waited) {
      in_flight = true;
      break;
    }
  }
  if (in_flight) {
    // Exception unwind with posted buffers: withdraw / drain before the
    // bucketer (and its flat buffers) is destroyed.
    comm_.group()->coll_state().abandon(comm_.rank());
  }
}

void BucketAllreduce::begin_step() {
  for (std::size_t i = 0; i < state_.size(); ++i) {
    BucketState& s = state_[i];
    s.pending =
        static_cast<std::int64_t>(bucketer_.bucket(i).param_indices.size());
    s.launched = false;
    s.waited = false;
  }
  step_bytes_ = 0;
  step_compressed_bytes_ = 0;
  step_armed_ = true;
}

core::GradReadyHook BucketAllreduce::hook() {
  return [this](const std::shared_ptr<core::TensorImpl>& leaf) {
    on_grad_ready(leaf);
  };
}

void BucketAllreduce::on_grad_ready(
    const std::shared_ptr<core::TensorImpl>& leaf) {
  if (!step_armed_) return;
  const std::int64_t b = bucketer_.bucket_of(leaf.get());
  if (b < 0) return;  // grad-bearing non-parameter (e.g. force inputs)
  BucketState& s = state_[static_cast<std::size_t>(b)];
  MATSCI_CHECK(s.pending > 0,
               "bucket " << b << " over-notified (param fired twice?)");
  if (--s.pending == 0) {
    launch(static_cast<std::size_t>(b));
  }
}

void BucketAllreduce::launch(std::size_t bucket) {
  MATSCI_TRACE_SCOPE("coll/bucket_launch");
  BucketState& s = state_[bucket];
  const std::span<float> flat = bucketer_.flatten(bucket);
  const auto fp32_bytes =
      static_cast<std::int64_t>(flat.size() * sizeof(float));
  std::int64_t wire = fp32_bytes;
  if (!compressor_->lossless()) {
    if (opts_.error_feedback) {
      // Error feedback: e = g + r, transmit C(e), carry r' = e - C(e).
      if (s.residual.size() != flat.size()) {
        s.residual = core::memory::FloatStorage::zeros(flat.size());
      }
      float* r = s.residual.data();
      for (std::size_t i = 0; i < flat.size(); ++i) flat[i] += r[i];
      for (std::size_t i = 0; i < flat.size(); ++i) r[i] = flat[i];
      wire = compressor_->roundtrip(flat);
      for (std::size_t i = 0; i < flat.size(); ++i) r[i] -= flat[i];
    } else {
      wire = compressor_->roundtrip(flat);
    }
  }
  BucketMetrics& metrics = BucketMetrics::get();
  metrics.bytes.add(fp32_bytes);
  metrics.compressed_bytes.add(wire);
  totals_.bytes += fp32_bytes;
  totals_.compressed_bytes += wire;
  step_bytes_ += fp32_bytes;
  step_compressed_bytes_ += wire;
  comm_.allreduce_mean_nb(static_cast<std::int64_t>(bucket), flat);
  s.post_time = std::chrono::steady_clock::now();
  s.launched = true;
}

StepStats BucketAllreduce::finish_step() {
  MATSCI_CHECK(step_armed_, "finish_step without begin_step");
  MATSCI_TRACE_SCOPE("coll/finish_step");
  const auto backward_end = std::chrono::steady_clock::now();

  // Buckets holding params the tape never reached (unused heads,
  // frozen layers): their grads are zeros — they still reduce, keeping
  // every rank's collective schedule identical regardless of which
  // params its local graph happened to touch.
  for (std::size_t i = 0; i < state_.size(); ++i) {
    if (!state_[i].launched) launch(i);
  }

  StepStats stats;
  stats.buckets = static_cast<std::int64_t>(state_.size());
  double inflight_us = 0.0;
  double hidden_us = 0.0;
  BucketMetrics& metrics = BucketMetrics::get();
  for (std::size_t i = 0; i < state_.size(); ++i) {
    BucketState& s = state_[i];
    const auto wait_start = std::chrono::steady_clock::now();
    const WaitInfo info =
        comm_.wait_allreduce(static_cast<std::int64_t>(i));
    s.waited = true;
    stats.exposed_wait_us +=
        us_between(wait_start, std::chrono::steady_clock::now());
    stats.reduce_us += info.reduce_us;
    metrics.reduce_us.observe(info.reduce_us);
    const double total = us_between(s.post_time, info.done_at);
    if (total > 0.0) {
      inflight_us += total;
      const double hidden =
          std::min(us_between(s.post_time, backward_end), total);
      hidden_us += std::max(0.0, hidden);
    }
    bucketer_.unflatten(i);
  }
  stats.bytes = step_bytes_;
  stats.compressed_bytes = step_compressed_bytes_;
  stats.overlap_fraction = inflight_us > 0.0 ? hidden_us / inflight_us : 0.0;

  ++totals_.steps;
  totals_.overlap_fraction_sum += stats.overlap_fraction;
  metrics.overlap_fraction.record(step_index_, stats.overlap_fraction);
  ++step_index_;
  step_armed_ = false;
  return stats;
}

}  // namespace matsci::comm::coll
