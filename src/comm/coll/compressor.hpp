#pragma once

// Gradient compression strategies for the bucketed allreduce
// (DESIGN.md §12). The thread-backed transport never serializes bytes,
// so a compressor here is a lossy *roundtrip*: it replaces the bucket
// contents with the compress→decompress image (exactly what the peer
// would reconstruct) and reports how many bytes the compressed form
// would occupy on a real wire — which is what fig2_scaleout feeds the
// α-β PerfModel to compare predicted vs. measured savings.
//
// Convergence is protected by error feedback (1-bit SGD / deep gradient
// compression lineage): BucketAllreduce accumulates the residual
// e_t = g_t + r_{t-1} - C(g_t + r_{t-1}) locally and adds it back into
// the next step's bucket, so quantization error is delayed, not lost.

#include <cstdint>
#include <memory>
#include <span>
#include <string>

namespace matsci::comm::coll {

enum class CompressorKind : std::uint8_t {
  kIdentity = 0,  ///< no-op, full fp32 on the wire
  kInt8 = 1,      ///< per-bucket symmetric int8 quantization with scale
  kTopK = 2,      ///< magnitude top-k sparsification (value+index pairs)
};

std::string to_string(CompressorKind kind);

/// Options for the whole coll subsystem (bucketing + compression).
struct CollOptions {
  /// Bucket capacity in bytes of fp32 payload. 1 MiB mirrors the
  /// PyTorch DDP default order of magnitude, scaled to our model sizes.
  std::int64_t bucket_bytes = 1 << 20;
  CompressorKind compressor = CompressorKind::kIdentity;
  /// Fraction of elements kept by top-k (at least 1 element per bucket).
  double topk_fraction = 0.01;
  /// Accumulate compression residuals into the next step (error
  /// feedback). Disable only for ablation.
  bool error_feedback = true;
};

/// In-place lossy roundtrip over one flattened bucket.
class Compressor {
 public:
  virtual ~Compressor() = default;

  /// Replace `data` with its compress→decompress image and return the
  /// simulated wire size in bytes of the compressed form.
  virtual std::int64_t roundtrip(std::span<float> data) = 0;

  /// True when roundtrip never changes the data (identity): lets the
  /// engine skip residual bookkeeping entirely.
  virtual bool lossless() const = 0;

  virtual CompressorKind kind() const = 0;
};

std::unique_ptr<Compressor> make_compressor(const CollOptions& opts);

}  // namespace matsci::comm::coll
