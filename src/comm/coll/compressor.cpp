#include "comm/coll/compressor.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <vector>

#include "core/macros.hpp"

namespace matsci::comm::coll {

std::string to_string(CompressorKind kind) {
  switch (kind) {
    case CompressorKind::kIdentity:
      return "identity";
    case CompressorKind::kInt8:
      return "int8";
    case CompressorKind::kTopK:
      return "topk";
  }
  return "unknown";
}

namespace {

class IdentityCompressor final : public Compressor {
 public:
  std::int64_t roundtrip(std::span<float> data) override {
    return static_cast<std::int64_t>(data.size() * sizeof(float));
  }
  bool lossless() const override { return true; }
  CompressorKind kind() const override { return CompressorKind::kIdentity; }
};

/// Symmetric per-bucket quantization: scale = max|x| / 127, each value
/// becomes round(x/scale) clamped to [-127, 127], reconstructed as
/// q * scale. Wire form: one int8 per element plus the fp32 scale.
class Int8Compressor final : public Compressor {
 public:
  std::int64_t roundtrip(std::span<float> data) override {
    const std::int64_t wire =
        static_cast<std::int64_t>(data.size()) + sizeof(float);
    float amax = 0.0f;
    for (float v : data) amax = std::max(amax, std::fabs(v));
    if (amax == 0.0f) return wire;  // all-zero bucket: exact already
    const float scale = amax / 127.0f;
    const float inv_scale = 1.0f / scale;
    for (float& v : data) {
      float q = std::round(v * inv_scale);
      q = std::min(127.0f, std::max(-127.0f, q));
      v = q * scale;
    }
    return wire;
  }
  bool lossless() const override { return false; }
  CompressorKind kind() const override { return CompressorKind::kInt8; }
};

/// Magnitude top-k: keep the k = max(1, ceil(n * fraction)) largest
/// |x| (ties broken toward the lower index, so the selection is
/// deterministic), zero the rest. Wire form: fp32 value + int32 index
/// per kept element.
class TopKCompressor final : public Compressor {
 public:
  explicit TopKCompressor(double fraction) : fraction_(fraction) {
    MATSCI_CHECK(fraction > 0.0 && fraction <= 1.0,
                 "topk_fraction must be in (0, 1], got " << fraction);
  }

  std::int64_t roundtrip(std::span<float> data) override {
    const std::size_t n = data.size();
    if (n == 0) return 0;
    const auto k = static_cast<std::size_t>(std::min<double>(
        static_cast<double>(n),
        std::max(1.0, std::ceil(static_cast<double>(n) * fraction_))));
    const std::int64_t wire =
        static_cast<std::int64_t>(k * (sizeof(float) + sizeof(std::int32_t)));
    if (k == n) return wire;
    order_.resize(n);
    std::iota(order_.begin(), order_.end(), std::size_t{0});
    const auto larger = [&](std::size_t a, std::size_t b) {
      const float ma = std::fabs(data[a]);
      const float mb = std::fabs(data[b]);
      if (ma != mb) return ma > mb;
      return a < b;
    };
    std::nth_element(order_.begin(), order_.begin() + (k - 1), order_.end(),
                     larger);
    kept_.assign(order_.begin(), order_.begin() + k);
    std::sort(kept_.begin(), kept_.end());
    // Zero everything, then restore the survivors.
    saved_.resize(k);
    for (std::size_t i = 0; i < k; ++i) saved_[i] = data[kept_[i]];
    std::fill(data.begin(), data.end(), 0.0f);
    for (std::size_t i = 0; i < k; ++i) data[kept_[i]] = saved_[i];
    return wire;
  }
  bool lossless() const override { return false; }
  CompressorKind kind() const override { return CompressorKind::kTopK; }

 private:
  double fraction_;
  // Scratch reused across buckets to avoid per-step allocation churn.
  std::vector<std::size_t> order_;
  std::vector<std::size_t> kept_;
  std::vector<float> saved_;
};

}  // namespace

std::unique_ptr<Compressor> make_compressor(const CollOptions& opts) {
  switch (opts.compressor) {
    case CompressorKind::kIdentity:
      return std::make_unique<IdentityCompressor>();
    case CompressorKind::kInt8:
      return std::make_unique<Int8Compressor>();
    case CompressorKind::kTopK:
      return std::make_unique<TopKCompressor>(opts.topk_fraction);
  }
  MATSCI_CHECK(false, "unknown compressor kind");
  return nullptr;
}

}  // namespace matsci::comm::coll
