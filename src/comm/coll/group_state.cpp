#include "comm/coll/group_state.hpp"

#include <algorithm>

#include "comm/communicator.hpp"
#include "core/macros.hpp"
#include "obs/metrics.hpp"

namespace matsci::comm::coll {

GroupState::GroupState(std::int64_t world_size) : world_(world_size) {
  MATSCI_CHECK(world_size >= 1, "GroupState world_size must be >= 1");
}

GroupState::~GroupState() {
  std::vector<core::parallel::TaskHandle> pending;
  {
    std::lock_guard<std::mutex> map_lock(map_mu_);
    for (auto& [id, s] : slots_) {
      std::lock_guard<std::mutex> lock(s->mu);
      if (s->task.valid() && !s->done) pending.push_back(s->task);
    }
  }
  for (core::parallel::TaskHandle& t : pending) {
    t.run_now_or_wait();
  }
}

GroupState::Slot& GroupState::slot(std::int64_t id) {
  std::lock_guard<std::mutex> lock(map_mu_);
  std::unique_ptr<Slot>& s = slots_[id];
  if (s == nullptr) {
    s = std::make_unique<Slot>();
    s->bufs.assign(static_cast<std::size_t>(world_), nullptr);
  }
  return *s;
}

void GroupState::reduce(Slot& s) {
  // Inputs are frozen: every rank posted (under s.mu) before the task
  // was submitted, and none touches its buffer until wait() observes
  // done — so the hot loop runs lock-free. Accumulation is per element
  // in ascending rank order in double precision, then one float cast
  // and a float multiply by 1/world: the exact numerics of the
  // blocking allreduce_mean, so bucketed identity-compressed DDP is
  // bit-identical to the monolithic path.
  const obs::StopWatch watch;
  std::vector<float*> bufs;
  std::size_t size = 0;
  {
    std::lock_guard<std::mutex> lock(s.mu);
    bufs = s.bufs;
    size = s.size;
    s.scratch.assign(size, 0.0);
  }
  const float inv = 1.0f / static_cast<float>(world_);
  for (std::size_t i = 0; i < size; ++i) {
    double acc = 0.0;
    for (std::int64_t r = 0; r < world_; ++r) {
      acc += static_cast<double>(bufs[static_cast<std::size_t>(r)][i]);
    }
    float v = static_cast<float>(acc);
    v *= inv;
    for (std::int64_t r = 0; r < world_; ++r) {
      bufs[static_cast<std::size_t>(r)][i] = v;
    }
  }
  {
    std::lock_guard<std::mutex> lock(s.mu);
    s.reduce_us = watch.elapsed_us();
    s.done_at = std::chrono::steady_clock::now();
    s.done = true;
  }
  s.cv.notify_all();
}

void GroupState::post(std::int64_t slot_id, std::int64_t rank,
                      std::span<float> data) {
  Slot& s = slot(slot_id);
  std::unique_lock<std::mutex> lock(s.mu);
  // A rank can lap its peers by one full round (it waited, they have
  // not yet): block until the previous round fully drains.
  s.cv.wait(lock, [&] {
    return (s.arrived < world_ && !s.done) || s.poisoned ||
           failed_.load(std::memory_order_acquire);
  });
  if (s.poisoned) throw matsci::Error(s.poison_msg);
  if (failed_.load(std::memory_order_acquire)) {
    throw RankFailedError("allreduce post on failed group (rank " +
                          std::to_string(rank) + ")");
  }
  if (!s.size_set) {
    s.size = data.size();
    s.size_set = true;
  } else if (s.size != data.size()) {
    s.poisoned = true;
    s.poison_msg = "bucket allreduce size mismatch on slot " +
                   std::to_string(slot_id) + ": rank " + std::to_string(rank) +
                   " posted " + std::to_string(data.size()) +
                   " floats, peers posted " + std::to_string(s.size);
    lock.unlock();
    s.cv.notify_all();
    throw matsci::Error(s.poison_msg);
  }
  s.bufs[static_cast<std::size_t>(rank)] = data.data();
  ++s.arrived;
  if (s.arrived == world_ && !failed_.load(std::memory_order_acquire)) {
    s.task = core::parallel::ThreadPool::global().submit(
        [this, &s] { reduce(s); });
  }
}

WaitInfo GroupState::wait(std::int64_t slot_id, std::int64_t rank) {
  Slot& s = slot(slot_id);
  std::unique_lock<std::mutex> lock(s.mu);
  while (!s.done && !s.poisoned &&
         !failed_.load(std::memory_order_acquire)) {
    if (s.arrived == world_ && s.task.valid()) {
      // The reduction is queued but maybe not started: drive it to
      // completion inline so progress never depends on a free pool
      // worker (TaskHandle reclaim contract).
      core::parallel::TaskHandle task = s.task;
      lock.unlock();
      task.run_now_or_wait();
      lock.lock();
      continue;
    }
    s.cv.wait(lock);
  }
  if (s.poisoned) throw matsci::Error(s.poison_msg);
  if (!s.done) {
    throw RankFailedError("allreduce wait on failed group (rank " +
                          std::to_string(rank) + ", slot " +
                          std::to_string(slot_id) + ")");
  }
  WaitInfo info{s.reduce_us, s.done_at};
  if (++s.departed == world_) {
    // Last rank out resets the slot for the next round.
    s.arrived = 0;
    s.departed = 0;
    s.done = false;
    std::fill(s.bufs.begin(), s.bufs.end(), nullptr);
    s.task = core::parallel::TaskHandle();
    lock.unlock();
    s.cv.notify_all();
  }
  return info;
}

void GroupState::notify_failure() {
  failed_.store(true, std::memory_order_release);
  std::lock_guard<std::mutex> map_lock(map_mu_);
  for (auto& [id, s] : slots_) {
    {
      std::lock_guard<std::mutex> lock(s->mu);
    }
    s->cv.notify_all();
  }
}

void GroupState::abandon(std::int64_t rank) {
  // Collect launched tasks under the map lock, run them outside it:
  // run_now_or_wait may execute reduce(), which locks slot mutexes.
  std::vector<core::parallel::TaskHandle> pending;
  {
    std::lock_guard<std::mutex> map_lock(map_mu_);
    for (auto& [id, s] : slots_) {
      std::lock_guard<std::mutex> lock(s->mu);
      float*& buf = s->bufs[static_cast<std::size_t>(rank)];
      if (buf == nullptr) continue;
      if (s->task.valid() && !s->done) {
        // Reduction already launched: it reads our buffer, so finish it.
        pending.push_back(s->task);
      } else if (!s->done) {
        // Not launched yet: withdraw so no future arrival can launch a
        // reduce over our (soon freed) buffer. Withdrawal is atomic
        // with posts (slot lock), so arrived can never reach world_
        // without this rank re-posting.
        buf = nullptr;
        --s->arrived;
      }
    }
  }
  for (core::parallel::TaskHandle& t : pending) {
    t.run_now_or_wait();
  }
}

}  // namespace matsci::comm::coll
