#pragma once

// Parameter → bucket assignment for overlapped DDP (DESIGN.md §12).
// Buckets are formed in REVERSE registration order: autograd finishes
// the last-registered layers first (they sit closest to the loss), so
// reverse-order buckets fill early in the backward pass and their
// allreduce overlaps the gradient computation still running for the
// earlier layers — the same heuristic as PyTorch DDP.

#include <cstdint>
#include <span>
#include <unordered_map>
#include <vector>

#include "core/memory/storage.hpp"
#include "core/tensor.hpp"

namespace matsci::comm::coll {

/// One flat bucket: which params it covers (reverse registration
/// order), their offsets into the pooled flat buffer, and the buffer
/// itself — allocated once and reused every step.
struct Bucket {
  std::vector<std::size_t> param_indices;  ///< indices into the param list
  std::vector<std::size_t> offsets;        ///< per-param start in `flat`
  std::int64_t numel = 0;
  core::memory::FloatStorage flat;
};

/// Byte-capped partition of a parameter list into flat buckets.
class GradBucketer {
 public:
  /// `bucket_bytes` caps the fp32 payload per bucket; a single
  /// parameter larger than the cap gets a bucket of its own. Zero-size
  /// parameters are carried along (they occupy no payload but must
  /// still round-trip so unflatten covers every param exactly once).
  GradBucketer(std::vector<core::Tensor> params, std::int64_t bucket_bytes);

  std::size_t num_buckets() const { return buckets_.size(); }
  const Bucket& bucket(std::size_t i) const { return buckets_[i]; }
  std::int64_t total_numel() const { return total_numel_; }
  const std::vector<core::Tensor>& params() const { return params_; }

  /// Bucket index owning this parameter payload, or -1 if the payload
  /// is not a registered parameter (e.g. an input tensor that happens
  /// to require grad for force prediction).
  std::int64_t bucket_of(const core::TensorImpl* impl) const;

  /// Copy every member param's gradient into the bucket's flat buffer
  /// (materializing zero grads for params backward never touched) and
  /// return a span over it.
  std::span<float> flatten(std::size_t i);

  /// Scatter the flat buffer back into the member params' grad buffers.
  void unflatten(std::size_t i);

 private:
  std::vector<core::Tensor> params_;
  std::vector<Bucket> buckets_;
  std::unordered_map<const core::TensorImpl*, std::int64_t> owner_;
  std::int64_t total_numel_ = 0;
};

}  // namespace matsci::comm::coll
