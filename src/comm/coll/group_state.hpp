#pragma once

// Shared rendezvous state behind the non-blocking bucket collectives
// (DESIGN.md §12). One GroupState lives inside each ProcessGroup; rank
// threads post per-bucket contributions as their gradients become
// ready, the last-arriving rank launches the reduction on the shared
// thread pool, and every rank later waits for the averaged result —
// overlapping communication with whatever backward work remains.
//
// Unlike the blocking collectives (which are barrier-ordered, so every
// rank issues them in the same sequence), slots are matched by id:
// ranks may post bucket 3 before bucket 1 without deadlocking, which is
// exactly what happens when autograd readiness order differs per rank.

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <string>
#include <memory>
#include <mutex>
#include <span>
#include <unordered_map>
#include <vector>

#include "core/parallel/thread_pool.hpp"

namespace matsci::comm::coll {

/// Completion record returned by wait(): how long the pool task spent
/// reducing, and when it finished — the inputs to the per-step overlap
/// accounting in BucketAllreduce.
struct WaitInfo {
  double reduce_us = 0.0;
  std::chrono::steady_clock::time_point done_at{};
};

/// Match-based mean-allreduce slots for one rank group. Thread-safe;
/// every slot id must be used with the same buffer size by all ranks
/// (a mismatch poisons the slot and throws on every rank instead of
/// deadlocking), and each rank must pair every post() with exactly one
/// wait() before reusing the slot id.
class GroupState {
 public:
  explicit GroupState(std::int64_t world_size);
  /// Drives any still-launched reduction to completion so no pool task
  /// outlives the state it captures.
  ~GroupState();
  GroupState(const GroupState&) = delete;
  GroupState& operator=(const GroupState&) = delete;

  std::int64_t world_size() const { return world_; }

  /// Post this rank's contribution for `slot_id`. When the last rank
  /// arrives the mean-reduction is submitted to the shared thread
  /// pool. The buffer must stay alive and untouched until the matching
  /// wait() returns (or quiesce() is called during unwind).
  void post(std::int64_t slot_id, std::int64_t rank, std::span<float> data);

  /// Block until `slot_id`'s reduction completes; afterwards this
  /// rank's posted buffer holds the cross-rank mean. Helps execute the
  /// reduction inline when the pool has not picked it up yet.
  WaitInfo wait(std::int64_t slot_id, std::int64_t rank);

  /// Mark the group failed: wakes every waiter (they throw
  /// RankFailedError) and prevents new reductions from launching.
  void notify_failure();

  /// Unwind path for a rank abandoning its posted contributions (its
  /// engine is being destroyed mid-round, typically during exception
  /// unwind). Guarantees no reduction will ever read this rank's
  /// buffers again: launched reductions are driven to completion
  /// inline, unlaunched contributions are withdrawn (so a late-arriving
  /// peer cannot trigger a reduce over a freed buffer — it blocks until
  /// the group is marked failed and then throws). Must be called before
  /// the rank frees its bucket buffers.
  void abandon(std::int64_t rank);

 private:
  struct Slot {
    std::mutex mu;
    std::condition_variable cv;
    std::vector<float*> bufs;       ///< per-rank contribution, this round
    std::size_t size = 0;           ///< floats per contribution (sticky)
    bool size_set = false;
    std::int64_t arrived = 0;
    std::int64_t departed = 0;
    bool done = false;
    bool poisoned = false;          ///< contract violation (size mismatch)
    std::string poison_msg;
    double reduce_us = 0.0;
    std::chrono::steady_clock::time_point done_at{};
    core::parallel::TaskHandle task;
    std::vector<double> scratch;    ///< double-precision accumulator
  };

  Slot& slot(std::int64_t id);
  void reduce(Slot& s);

  std::int64_t world_;
  std::atomic<bool> failed_{false};
  mutable std::mutex map_mu_;
  std::unordered_map<std::int64_t, std::unique_ptr<Slot>> slots_;
};

}  // namespace matsci::comm::coll
