#pragma once

#include <cstdint>

namespace matsci::comm {

/// Analytic α-β (latency/bandwidth) model of the Endeavour-class cluster
/// the paper ran on: dual-socket Sapphire Rapids nodes (16 DDP ranks per
/// node, NUMA-pinned) linked by Mellanox HDR200. Used to extrapolate the
/// Fig. 2 throughput curve beyond what one laptop-class box can host
/// (see DESIGN.md §2, substitution 2): measured single-rank compute time
/// composes with modeled ring-allreduce time.
struct ClusterConfig {
  std::int64_t ranks_per_node = 16;
  /// Effective point-to-point bandwidth, bytes/s.
  double intra_node_bandwidth = 40.0e9;  ///< UPI/shared-memory transport
  double inter_node_bandwidth = 25.0e9;  ///< HDR200 ≈ 200 Gb/s
  /// Per-message latency, seconds.
  double intra_node_latency = 1.0e-6;
  double inter_node_latency = 2.5e-6;
};

class PerfModel {
 public:
  explicit PerfModel(ClusterConfig cfg = {});

  /// Ring-allreduce time for `bytes` across `ranks` (2(N−1) messages of
  /// bytes/N each; link parameters picked by whether the ring crosses
  /// node boundaries).
  double allreduce_seconds(std::int64_t ranks, std::int64_t bytes) const;

  /// Ring-allreduce time when the payload is compressed to
  /// `ratio` = wire_bytes / fp32_bytes before transmission (int8 ≈ 0.25,
  /// top-k ≈ 2k/n): same α term — message count is unchanged — with the
  /// β term scaled by the ratio. `ratio` must be in (0, 1].
  double compressed_allreduce_seconds(std::int64_t ranks, std::int64_t bytes,
                                      double ratio) const;

  /// One synchronous DDP step: max-rank compute + gradient allreduce.
  double step_seconds(std::int64_t ranks, double compute_seconds_per_rank,
                      std::int64_t gradient_bytes) const;

  /// Aggregate training throughput, samples/s.
  double throughput(std::int64_t ranks, std::int64_t batch_per_rank,
                    double compute_seconds_per_rank,
                    std::int64_t gradient_bytes) const;

  /// Wall-clock for one epoch of `dataset_size` samples.
  double epoch_seconds(std::int64_t ranks, std::int64_t batch_per_rank,
                       double compute_seconds_per_rank,
                       std::int64_t gradient_bytes,
                       std::int64_t dataset_size) const;

  /// Parallel efficiency vs the single-rank ideal (1.0 = perfectly linear).
  double scaling_efficiency(std::int64_t ranks, std::int64_t batch_per_rank,
                            double compute_seconds_per_rank,
                            std::int64_t gradient_bytes) const;

  const ClusterConfig& config() const { return cfg_; }

 private:
  ClusterConfig cfg_;
};

}  // namespace matsci::comm
