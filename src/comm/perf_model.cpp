#include "comm/perf_model.hpp"

#include "core/macros.hpp"

namespace matsci::comm {

PerfModel::PerfModel(ClusterConfig cfg) : cfg_(cfg) {
  MATSCI_CHECK(cfg.ranks_per_node >= 1, "ranks_per_node must be >= 1");
  MATSCI_CHECK(cfg.intra_node_bandwidth > 0 && cfg.inter_node_bandwidth > 0,
               "bandwidths must be positive");
}

double PerfModel::allreduce_seconds(std::int64_t ranks,
                                    std::int64_t bytes) const {
  MATSCI_CHECK(ranks >= 1 && bytes >= 0, "bad allreduce arguments");
  if (ranks == 1) return 0.0;
  const bool crosses_nodes = ranks > cfg_.ranks_per_node;
  const double alpha =
      crosses_nodes ? cfg_.inter_node_latency : cfg_.intra_node_latency;
  const double beta = 1.0 / (crosses_nodes ? cfg_.inter_node_bandwidth
                                           : cfg_.intra_node_bandwidth);
  // Ring allreduce: 2(N−1) steps, each moving bytes/N per link.
  const double n = static_cast<double>(ranks);
  const double per_step = alpha + (static_cast<double>(bytes) / n) * beta;
  return 2.0 * (n - 1.0) * per_step;
}

double PerfModel::compressed_allreduce_seconds(std::int64_t ranks,
                                               std::int64_t bytes,
                                               double ratio) const {
  MATSCI_CHECK(ratio > 0.0 && ratio <= 1.0,
               "compression ratio must be in (0, 1], got " << ratio);
  if (ranks == 1) return 0.0;
  const bool crosses_nodes = ranks > cfg_.ranks_per_node;
  const double alpha =
      crosses_nodes ? cfg_.inter_node_latency : cfg_.intra_node_latency;
  const double beta = 1.0 / (crosses_nodes ? cfg_.inter_node_bandwidth
                                           : cfg_.intra_node_bandwidth);
  // Same 2(N−1) message schedule as the uncompressed ring — compression
  // shrinks the payload (β term), never the message count (α term).
  const double n = static_cast<double>(ranks);
  const double per_step =
      alpha + (static_cast<double>(bytes) * ratio / n) * beta;
  return 2.0 * (n - 1.0) * per_step;
}

double PerfModel::step_seconds(std::int64_t ranks,
                               double compute_seconds_per_rank,
                               std::int64_t gradient_bytes) const {
  MATSCI_CHECK(compute_seconds_per_rank > 0.0, "compute time must be positive");
  return compute_seconds_per_rank + allreduce_seconds(ranks, gradient_bytes);
}

double PerfModel::throughput(std::int64_t ranks, std::int64_t batch_per_rank,
                             double compute_seconds_per_rank,
                             std::int64_t gradient_bytes) const {
  MATSCI_CHECK(batch_per_rank >= 1, "batch_per_rank must be >= 1");
  const double step =
      step_seconds(ranks, compute_seconds_per_rank, gradient_bytes);
  return static_cast<double>(ranks * batch_per_rank) / step;
}

double PerfModel::epoch_seconds(std::int64_t ranks,
                                std::int64_t batch_per_rank,
                                double compute_seconds_per_rank,
                                std::int64_t gradient_bytes,
                                std::int64_t dataset_size) const {
  MATSCI_CHECK(dataset_size >= 1, "dataset_size must be >= 1");
  return static_cast<double>(dataset_size) /
         throughput(ranks, batch_per_rank, compute_seconds_per_rank,
                    gradient_bytes);
}

double PerfModel::scaling_efficiency(std::int64_t ranks,
                                     std::int64_t batch_per_rank,
                                     double compute_seconds_per_rank,
                                     std::int64_t gradient_bytes) const {
  const double ideal =
      static_cast<double>(ranks) *
      throughput(1, batch_per_rank, compute_seconds_per_rank, 0);
  return throughput(ranks, batch_per_rank, compute_seconds_per_rank,
                    gradient_bytes) /
         ideal;
}

}  // namespace matsci::comm
