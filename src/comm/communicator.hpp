#pragma once

#include <barrier>
#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <vector>

namespace matsci::comm {

/// Shared state for a group of communicating ranks. The toolkit's DDP
/// substitutes threads for MPI processes (DESIGN.md §2): the collective
/// semantics — synchronous allreduce at the gradient-averaging step,
/// broadcast from a root, barriers — match MPI/oneCCL exactly, so the
/// training code is structured the same way as the paper's.
class ProcessGroup {
 public:
  explicit ProcessGroup(std::int64_t world_size);
  std::int64_t world_size() const { return world_size_; }

 private:
  friend class Communicator;
  std::int64_t world_size_;
  std::barrier<> barrier_;
  std::vector<float*> bufs_;
  std::vector<double> scratch_;
};

/// Per-rank handle onto a ProcessGroup. All ranks must call each
/// collective the same number of times with equally sized buffers
/// (standard MPI contract); violations throw or deadlock just as real
/// MPI would hang.
class Communicator {
 public:
  Communicator(std::shared_ptr<ProcessGroup> group, std::int64_t rank);

  std::int64_t rank() const { return rank_; }
  std::int64_t world_size() const { return group_->world_size(); }

  void barrier();

  /// In-place sum across ranks (all ranks end with the identical total,
  /// accumulated in double precision for rank-count independence).
  void allreduce_sum(std::span<float> data);

  /// In-place mean across ranks — the DDP gradient-averaging collective.
  void allreduce_mean(std::span<float> data);

  /// In-place broadcast of root's buffer to every rank.
  void broadcast(std::span<float> data, std::int64_t root);

  /// Scalar convenience forms. min is max over negated values. NaN
  /// caveat: sum propagates NaN to every rank, but max/min silently
  /// drop NaN contributions (std::max comparison semantics) — callers
  /// needing NaN detection must reduce an is-finite indicator with sum,
  /// which is what the health monitor does.
  double allreduce_scalar_sum(double value);
  double allreduce_scalar_max(double value);
  double allreduce_scalar_min(double value);

 private:
  std::shared_ptr<ProcessGroup> group_;
  std::int64_t rank_;
};

/// Launch `world_size` rank threads, each receiving its Communicator, and
/// join them. The first exception thrown by any rank is rethrown on the
/// caller after all threads have been joined.
void run_ranks(std::int64_t world_size,
               const std::function<void(Communicator&)>& rank_fn);

}  // namespace matsci::comm
