#pragma once

#include <cstdint>
#include <condition_variable>
#include <functional>
#include <memory>
#include <mutex>
#include <span>
#include <vector>

#include "core/macros.hpp"

namespace matsci::comm {

namespace coll {
class GroupState;
struct WaitInfo;
}  // namespace coll

/// Thrown by collectives on the *surviving* ranks when a peer has been
/// marked failed: the collective can never complete, so instead of
/// deadlocking at the barrier every waiter unblocks with this error.
/// Elastic DDP catches it and rebuilds a resized group; non-elastic
/// callers see it propagate out of run_ranks.
class RankFailedError : public matsci::Error {
 public:
  explicit RankFailedError(const std::string& what) : Error(what) {}
};

/// Thrown on the rank being killed by the fault-injection hook (the
/// simulated process death). run_ranks treats it as an expected death:
/// it is reported, not rethrown.
class RankKilledError : public matsci::Error {
 public:
  explicit RankKilledError(const std::string& what) : Error(what) {}
};

/// Shared state for a group of communicating ranks. The toolkit's DDP
/// substitutes threads for MPI processes (DESIGN.md §2): the collective
/// semantics — synchronous allreduce at the gradient-averaging step,
/// broadcast from a root, barriers — match MPI/oneCCL exactly, so the
/// training code is structured the same way as the paper's.
///
/// Failure model (DESIGN.md §12): any rank can be marked failed (fault
/// injection or an escaped exception); the barrier is a hand-rolled
/// generation barrier so the survivors wake and throw RankFailedError
/// instead of hanging, and rebuild_survivors() lets them agree on a
/// fresh, densely re-ranked group.
class ProcessGroup {
 public:
  /// Returns true to kill this rank at this collective entry (the
  /// rank's `collective_calls` counter starts at 1). Applies only to
  /// the group it is installed on — rebuilt survivor groups do not
  /// inherit it, so an injected fault fires at most one incarnation.
  using FaultHook =
      std::function<bool(std::int64_t rank, std::int64_t collective_calls)>;

  explicit ProcessGroup(std::int64_t world_size);
  ~ProcessGroup();
  std::int64_t world_size() const { return world_size_; }

  /// Install the fault-injection hook. Must happen before rank threads
  /// start issuing collectives (run_ranks does it before spawning).
  void set_fault_hook(FaultHook hook);

  /// Mark `rank` dead: wakes every blocked collective so survivors
  /// throw RankFailedError. Idempotent.
  void mark_failed(std::int64_t rank);
  bool has_failures() const;
  std::vector<std::int64_t> failed_ranks() const;

  /// Non-blocking collective rendezvous state (created eagerly).
  coll::GroupState& coll_state() { return *coll_; }

  struct Rebuilt {
    std::shared_ptr<ProcessGroup> group;
    std::int64_t rank = 0;  ///< dense new rank of the caller
  };
  /// Survivor rendezvous after a failure: blocks until every live rank
  /// arrives, then all agree on one fresh ProcessGroup of size
  /// world - failed, with new ranks assigned by ascending old rank.
  /// Call once per surviving rank per group.
  Rebuilt rebuild_survivors(std::int64_t old_rank);

 private:
  friend class Communicator;

  /// Failure-aware generation barrier; throws RankFailedError instead
  /// of blocking forever when any rank has been marked failed.
  void barrier_wait();
  void throw_failed_locked() const;

  std::int64_t world_size_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::int64_t barrier_arrived_ = 0;
  std::int64_t barrier_generation_ = 0;
  std::vector<bool> failed_;
  std::int64_t failed_count_ = 0;
  FaultHook fault_hook_;

  std::vector<float*> bufs_;
  std::vector<std::size_t> sizes_;
  std::vector<double> scratch_;

  // Survivor-rebuild rendezvous (guarded by mu_).
  std::vector<std::int64_t> rebuild_waiters_;
  std::shared_ptr<ProcessGroup> rebuilt_;
  std::vector<std::int64_t> rebuilt_members_;

  std::unique_ptr<coll::GroupState> coll_;
};

/// Per-rank handle onto a ProcessGroup. All ranks must call each
/// blocking collective the same number of times (standard MPI
/// contract); buffer sizes are exchanged and validated at every
/// collective, so a size mismatch throws on every rank instead of
/// deadlocking.
class Communicator {
 public:
  Communicator(std::shared_ptr<ProcessGroup> group, std::int64_t rank);

  std::int64_t rank() const { return rank_; }
  std::int64_t world_size() const { return group_->world_size(); }
  const std::shared_ptr<ProcessGroup>& group() const { return group_; }

  void barrier();

  /// In-place sum across ranks (all ranks end with the identical total,
  /// accumulated in double precision for rank-count independence).
  void allreduce_sum(std::span<float> data);

  /// In-place mean across ranks — the DDP gradient-averaging collective.
  void allreduce_mean(std::span<float> data);

  /// In-place broadcast of root's buffer to every rank.
  void broadcast(std::span<float> data, std::int64_t root);

  /// Scalar convenience forms. min is max over negated values. NaN
  /// caveat: sum propagates NaN to every rank, but max/min silently
  /// drop NaN contributions (std::max comparison semantics) — callers
  /// needing NaN detection must reduce an is-finite indicator with sum,
  /// which is what the health monitor does.
  double allreduce_scalar_sum(double value);
  double allreduce_scalar_max(double value);
  double allreduce_scalar_min(double value);

  /// Non-blocking entry points for the bucketed-collective subsystem
  /// (comm/coll): post this rank's contribution for logical slot
  /// `slot` and return immediately; the mean-reduction runs on the
  /// shared thread pool once the last rank posts. Slots are matched by
  /// id (not call order), so ranks may post buckets in different
  /// orders. The buffer must stay alive until wait_allreduce returns.
  void allreduce_mean_nb(std::int64_t slot, std::span<float> data);
  coll::WaitInfo wait_allreduce(std::int64_t slot);

  /// Collectives issued by this rank (fault-injection hook input).
  std::int64_t collective_calls() const { return collective_calls_; }

 private:
  /// Per-collective prologue: bumps the call counter, fires the fault
  /// hook, and fails fast when the group already has dead ranks.
  void collective_entry(const char* what);

  /// Publish this rank's buffer + size, barrier, then validate that
  /// every rank posted the same element count (throwing uniformly on
  /// all ranks when not).
  void post_and_validate(std::span<float> data, const char* what);

  std::shared_ptr<ProcessGroup> group_;
  std::int64_t rank_;
  std::int64_t collective_calls_ = 0;
};

struct RunRanksOptions {
  /// Fault-injection hook installed on the initial group (see
  /// ProcessGroup::FaultHook).
  ProcessGroup::FaultHook fault_hook;
};

struct RunRanksReport {
  /// Ranks that died to the injected fault (original-group numbering).
  std::vector<std::int64_t> killed_ranks;
};

/// Launch `world_size` rank threads, each receiving its Communicator,
/// and join them. A rank killed by fault injection (RankKilledError) is
/// recorded in the report, marked failed on the group, and NOT
/// rethrown; any other escaped exception also marks its rank failed (so
/// surviving ranks unblock instead of deadlocking) and is rethrown
/// after all threads joined — real errors first, secondary
/// RankFailedError fallout only when nothing else was thrown.
RunRanksReport run_ranks(std::int64_t world_size,
                         const std::function<void(Communicator&)>& rank_fn,
                         const RunRanksOptions& opts);
void run_ranks(std::int64_t world_size,
               const std::function<void(Communicator&)>& rank_fn);

}  // namespace matsci::comm
