#include "comm/communicator.hpp"

#include <algorithm>
#include <cstring>
#include <thread>

#include "comm/coll/group_state.hpp"
#include "core/macros.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace matsci::comm {

namespace {

/// Collective telemetry: call/byte counters per collective plus a
/// wall-clock histogram for the allreduce (the DDP-critical one, whose
/// measured time fig2_scaleout compares against the α-β PerfModel).
/// Bytes count each rank's buffer contribution, so the world-total for
/// one logical allreduce is world_size * buffer_bytes — matching how
/// the α-β ring model accounts traffic per rank. Non-blocking bucket
/// collectives are accounted separately (comm.bucket.*) by the
/// BucketAllreduce engine.
struct CommMetrics {
  obs::Counter& allreduce_calls;
  obs::Counter& allreduce_bytes;
  obs::Counter& broadcast_calls;
  obs::Counter& broadcast_bytes;
  obs::Histogram& allreduce_us;

  static CommMetrics& get() {
    static CommMetrics* m = new CommMetrics{
        obs::MetricsRegistry::global().counter("comm.allreduce.calls"),
        obs::MetricsRegistry::global().counter("comm.allreduce.bytes"),
        obs::MetricsRegistry::global().counter("comm.broadcast.calls"),
        obs::MetricsRegistry::global().counter("comm.broadcast.bytes"),
        obs::MetricsRegistry::global().histogram("comm.allreduce_us"),
    };
    return *m;
  }
};

std::string join_ranks(const std::vector<std::int64_t>& ranks) {
  std::string out;
  for (std::int64_t r : ranks) {
    if (!out.empty()) out += ",";
    out += std::to_string(r);
  }
  return out;
}

}  // namespace

ProcessGroup::ProcessGroup(std::int64_t world_size)
    : world_size_(world_size),
      failed_(static_cast<std::size_t>(world_size), false),
      bufs_(static_cast<std::size_t>(world_size), nullptr),
      sizes_(static_cast<std::size_t>(world_size), 0),
      coll_(std::make_unique<coll::GroupState>(world_size)) {
  MATSCI_CHECK(world_size >= 1, "world_size must be >= 1");
}

ProcessGroup::~ProcessGroup() = default;

void ProcessGroup::set_fault_hook(FaultHook hook) {
  std::lock_guard<std::mutex> lock(mu_);
  fault_hook_ = std::move(hook);
}

void ProcessGroup::mark_failed(std::int64_t rank) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    MATSCI_CHECK(rank >= 0 && rank < world_size_,
                 "mark_failed rank " << rank << " out of range");
    const auto idx = static_cast<std::size_t>(rank);
    if (!failed_[idx]) {
      failed_[idx] = true;
      ++failed_count_;
    }
  }
  cv_.notify_all();
  coll_->notify_failure();
}

bool ProcessGroup::has_failures() const {
  std::lock_guard<std::mutex> lock(mu_);
  return failed_count_ > 0;
}

std::vector<std::int64_t> ProcessGroup::failed_ranks() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::int64_t> out;
  for (std::int64_t r = 0; r < world_size_; ++r) {
    if (failed_[static_cast<std::size_t>(r)]) out.push_back(r);
  }
  return out;
}

void ProcessGroup::throw_failed_locked() const {
  if (failed_count_ == 0) return;
  std::vector<std::int64_t> dead;
  for (std::int64_t r = 0; r < world_size_; ++r) {
    if (failed_[static_cast<std::size_t>(r)]) dead.push_back(r);
  }
  throw RankFailedError("collective on group with failed rank(s) " +
                        join_ranks(dead));
}

void ProcessGroup::barrier_wait() {
  std::unique_lock<std::mutex> lock(mu_);
  throw_failed_locked();
  const std::int64_t gen = barrier_generation_;
  if (++barrier_arrived_ == world_size_) {
    barrier_arrived_ = 0;
    ++barrier_generation_;
    lock.unlock();
    cv_.notify_all();
    return;
  }
  cv_.wait(lock, [&] {
    return barrier_generation_ != gen || failed_count_ > 0;
  });
  if (barrier_generation_ == gen) {
    // Failure wake before the barrier released: withdraw this arrival
    // (the barrier can never complete) and report the dead ranks.
    --barrier_arrived_;
    throw_failed_locked();
  }
}

ProcessGroup::Rebuilt ProcessGroup::rebuild_survivors(std::int64_t old_rank) {
  std::unique_lock<std::mutex> lock(mu_);
  MATSCI_CHECK(failed_count_ > 0,
               "rebuild_survivors called on a group with no failed ranks");
  MATSCI_CHECK(old_rank >= 0 && old_rank < world_size_ &&
                   !failed_[static_cast<std::size_t>(old_rank)],
               "rebuild_survivors from dead or out-of-range rank "
                   << old_rank);
  rebuild_waiters_.push_back(old_rank);
  cv_.notify_all();
  // The live count can shrink while we wait (cascading failures), so
  // re-evaluate it inside the predicate; whichever waiter first
  // observes a full survivor set builds the group for everyone.
  cv_.wait(lock, [&] {
    return rebuilt_ != nullptr ||
           static_cast<std::int64_t>(rebuild_waiters_.size()) ==
               world_size_ - failed_count_;
  });
  if (rebuilt_ == nullptr) {
    rebuilt_members_ = rebuild_waiters_;
    std::sort(rebuilt_members_.begin(), rebuilt_members_.end());
    rebuilt_ = std::make_shared<ProcessGroup>(
        static_cast<std::int64_t>(rebuilt_members_.size()));
    cv_.notify_all();
  }
  const auto it = std::lower_bound(rebuilt_members_.begin(),
                                   rebuilt_members_.end(), old_rank);
  MATSCI_CHECK(it != rebuilt_members_.end() && *it == old_rank,
               "rank " << old_rank << " missing from rebuilt member set");
  return Rebuilt{rebuilt_,
                 static_cast<std::int64_t>(it - rebuilt_members_.begin())};
}

Communicator::Communicator(std::shared_ptr<ProcessGroup> group,
                           std::int64_t rank)
    : group_(std::move(group)), rank_(rank) {
  MATSCI_CHECK(group_ != nullptr, "null process group");
  MATSCI_CHECK(rank >= 0 && rank < group_->world_size(),
               "rank " << rank << " out of range for world size "
                       << group_->world_size());
}

void Communicator::collective_entry(const char* what) {
  ++collective_calls_;
  ProcessGroup& g = *group_;
  ProcessGroup::FaultHook hook;
  {
    std::lock_guard<std::mutex> lock(g.mu_);
    hook = g.fault_hook_;
  }
  if (hook && hook(rank_, collective_calls_)) {
    g.mark_failed(rank_);
    throw RankKilledError("rank " + std::to_string(rank_) +
                          " killed by fault injection at collective #" +
                          std::to_string(collective_calls_) + " (" + what +
                          ")");
  }
  std::lock_guard<std::mutex> lock(g.mu_);
  g.throw_failed_locked();
}

void Communicator::barrier() {
  collective_entry("barrier");
  if (world_size() == 1) return;
  group_->barrier_wait();
}

void Communicator::post_and_validate(std::span<float> data, const char* what) {
  // Per-rank cells: no lock needed, the barrier orders the writes.
  group_->bufs_[static_cast<std::size_t>(rank_)] = data.data();
  group_->sizes_[static_cast<std::size_t>(rank_)] = data.size();
  group_->barrier_wait();
  // Every rank sees the identical sizes_ snapshot here, so on a
  // mismatch every rank takes the same throw (skipping the remaining
  // barriers uniformly) instead of deadlocking with partial arrivals.
  const std::size_t expect = group_->sizes_[0];
  for (std::int64_t r = 1; r < world_size(); ++r) {
    const std::size_t got = group_->sizes_[static_cast<std::size_t>(r)];
    if (got != expect) {
      throw matsci::Error(std::string(what) +
                          " buffer size mismatch across ranks: rank 0 has " +
                          std::to_string(expect) + " floats, rank " +
                          std::to_string(r) + " has " + std::to_string(got));
    }
  }
}

void Communicator::allreduce_sum(std::span<float> data) {
  collective_entry("allreduce");
  if (world_size() == 1) return;
  MATSCI_TRACE_SCOPE("comm/allreduce");
  CommMetrics& metrics = CommMetrics::get();
  metrics.allreduce_calls.add(1);
  metrics.allreduce_bytes.add(
      static_cast<std::int64_t>(data.size() * sizeof(float)));
  const obs::StopWatch watch;
  post_and_validate(data, "allreduce");
  // Rank 0 reduces in double precision into the shared scratch buffer;
  // everyone copies back. (Single physical core: no benefit to a ring.)
  if (rank_ == 0) {
    group_->scratch_.assign(data.size(), 0.0);
    for (std::int64_t r = 0; r < world_size(); ++r) {
      const float* src = group_->bufs_[static_cast<std::size_t>(r)];
      for (std::size_t i = 0; i < data.size(); ++i) {
        group_->scratch_[i] += static_cast<double>(src[i]);
      }
    }
  }
  group_->barrier_wait();
  for (std::size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<float>(group_->scratch_[i]);
  }
  group_->barrier_wait();
  metrics.allreduce_us.observe(watch.elapsed_us());
}

void Communicator::allreduce_mean(std::span<float> data) {
  allreduce_sum(data);
  const float inv = 1.0f / static_cast<float>(world_size());
  for (float& v : data) v *= inv;
}

void Communicator::broadcast(std::span<float> data, std::int64_t root) {
  MATSCI_CHECK(root >= 0 && root < world_size(), "broadcast root " << root);
  collective_entry("broadcast");
  if (world_size() == 1) return;
  MATSCI_TRACE_SCOPE("comm/broadcast");
  CommMetrics& metrics = CommMetrics::get();
  metrics.broadcast_calls.add(1);
  metrics.broadcast_bytes.add(
      static_cast<std::int64_t>(data.size() * sizeof(float)));
  post_and_validate(data, "broadcast");
  if (rank_ != root) {
    const float* src = group_->bufs_[static_cast<std::size_t>(root)];
    std::memcpy(data.data(), src, data.size() * sizeof(float));
  }
  group_->barrier_wait();
}

double Communicator::allreduce_scalar_sum(double value) {
  if (world_size() == 1) {
    collective_entry("allreduce_scalar_sum");
    return value;
  }
  float v = static_cast<float>(value);
  allreduce_sum(std::span<float>(&v, 1));
  return static_cast<double>(v);
}

double Communicator::allreduce_scalar_max(double value) {
  collective_entry("allreduce_scalar_max");
  if (world_size() == 1) return value;
  static thread_local float slot;
  slot = static_cast<float>(value);
  post_and_validate(std::span<float>(&slot, 1), "allreduce_scalar_max");
  if (rank_ == 0) {
    double m = -1e300;
    for (std::int64_t r = 0; r < world_size(); ++r) {
      m = std::max(m, static_cast<double>(
                          *group_->bufs_[static_cast<std::size_t>(r)]));
    }
    group_->scratch_.assign(1, m);
  }
  group_->barrier_wait();
  const double result = group_->scratch_[0];
  group_->barrier_wait();
  return result;
}

double Communicator::allreduce_scalar_min(double value) {
  return -allreduce_scalar_max(-value);
}

void Communicator::allreduce_mean_nb(std::int64_t slot, std::span<float> data) {
  collective_entry("allreduce_mean_nb");
  group_->coll_->post(slot, rank_, data);
}

coll::WaitInfo Communicator::wait_allreduce(std::int64_t slot) {
  // Completion of an already-entered collective: no fault-hook check
  // here — the buffer is posted, and a kill between post and wait would
  // leave peers averaging a buffer whose owner is unwinding.
  return group_->coll_->wait(slot, rank_);
}

RunRanksReport run_ranks(std::int64_t world_size,
                         const std::function<void(Communicator&)>& rank_fn,
                         const RunRanksOptions& opts) {
  MATSCI_CHECK(world_size >= 1, "world_size must be >= 1");
  auto group = std::make_shared<ProcessGroup>(world_size);
  if (opts.fault_hook) group->set_fault_hook(opts.fault_hook);
  std::vector<std::thread> threads;
  std::vector<std::exception_ptr> errors(
      static_cast<std::size_t>(world_size));
  threads.reserve(static_cast<std::size_t>(world_size));
  for (std::int64_t r = 0; r < world_size; ++r) {
    threads.emplace_back([&, r]() {
      try {
        Communicator comm(group, r);
        rank_fn(comm);
      } catch (...) {
        errors[static_cast<std::size_t>(r)] = std::current_exception();
        // Unblock peers stuck in collectives with this rank: they see
        // RankFailedError instead of deadlocking.
        group->mark_failed(r);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  // Classify: injected kills are expected (reported, not thrown);
  // among real escapes prefer the primary error over the secondary
  // RankFailedError fallout it caused on the other ranks.
  RunRanksReport report;
  std::exception_ptr primary;
  std::exception_ptr fallout;
  for (std::int64_t r = 0; r < world_size; ++r) {
    const std::exception_ptr& e = errors[static_cast<std::size_t>(r)];
    if (!e) continue;
    try {
      std::rethrow_exception(e);
    } catch (const RankKilledError&) {
      report.killed_ranks.push_back(r);
    } catch (const RankFailedError&) {
      if (!fallout) fallout = e;
    } catch (...) {
      if (!primary) primary = e;
    }
  }
  if (primary) std::rethrow_exception(primary);
  if (fallout) std::rethrow_exception(fallout);
  return report;
}

void run_ranks(std::int64_t world_size,
               const std::function<void(Communicator&)>& rank_fn) {
  run_ranks(world_size, rank_fn, RunRanksOptions{});
}

}  // namespace matsci::comm
