#include "comm/communicator.hpp"

#include <algorithm>
#include <cstring>
#include <thread>

#include "core/macros.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace matsci::comm {

namespace {

/// Collective telemetry: call/byte counters per collective plus a
/// wall-clock histogram for the allreduce (the DDP-critical one, whose
/// measured time fig2_scaleout compares against the α-β PerfModel).
/// Bytes count each rank's buffer contribution, so the world-total for
/// one logical allreduce is world_size * buffer_bytes — matching how
/// the α-β ring model accounts traffic per rank.
struct CommMetrics {
  obs::Counter& allreduce_calls;
  obs::Counter& allreduce_bytes;
  obs::Counter& broadcast_calls;
  obs::Counter& broadcast_bytes;
  obs::Histogram& allreduce_us;

  static CommMetrics& get() {
    static CommMetrics* m = new CommMetrics{
        obs::MetricsRegistry::global().counter("comm.allreduce.calls"),
        obs::MetricsRegistry::global().counter("comm.allreduce.bytes"),
        obs::MetricsRegistry::global().counter("comm.broadcast.calls"),
        obs::MetricsRegistry::global().counter("comm.broadcast.bytes"),
        obs::MetricsRegistry::global().histogram("comm.allreduce_us"),
    };
    return *m;
  }
};

}  // namespace

ProcessGroup::ProcessGroup(std::int64_t world_size)
    : world_size_(world_size),
      barrier_(static_cast<std::ptrdiff_t>(world_size)),
      bufs_(static_cast<std::size_t>(world_size), nullptr) {
  MATSCI_CHECK(world_size >= 1, "world_size must be >= 1");
}

Communicator::Communicator(std::shared_ptr<ProcessGroup> group,
                           std::int64_t rank)
    : group_(std::move(group)), rank_(rank) {
  MATSCI_CHECK(group_ != nullptr, "null process group");
  MATSCI_CHECK(rank >= 0 && rank < group_->world_size(),
               "rank " << rank << " out of range for world size "
                       << group_->world_size());
}

void Communicator::barrier() {
  if (world_size() == 1) return;
  group_->barrier_.arrive_and_wait();
}

void Communicator::allreduce_sum(std::span<float> data) {
  if (world_size() == 1) return;
  MATSCI_TRACE_SCOPE("comm/allreduce");
  CommMetrics& metrics = CommMetrics::get();
  metrics.allreduce_calls.add(1);
  metrics.allreduce_bytes.add(
      static_cast<std::int64_t>(data.size() * sizeof(float)));
  const obs::StopWatch watch;
  group_->bufs_[static_cast<std::size_t>(rank_)] = data.data();
  barrier();
  // Rank 0 reduces in double precision into the shared scratch buffer;
  // everyone copies back. (Single physical core: no benefit to a ring.)
  if (rank_ == 0) {
    group_->scratch_.assign(data.size(), 0.0);
    for (std::int64_t r = 0; r < world_size(); ++r) {
      const float* src = group_->bufs_[static_cast<std::size_t>(r)];
      for (std::size_t i = 0; i < data.size(); ++i) {
        group_->scratch_[i] += static_cast<double>(src[i]);
      }
    }
  }
  barrier();
  for (std::size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<float>(group_->scratch_[i]);
  }
  barrier();
  metrics.allreduce_us.observe(watch.elapsed_us());
}

void Communicator::allreduce_mean(std::span<float> data) {
  allreduce_sum(data);
  const float inv = 1.0f / static_cast<float>(world_size());
  for (float& v : data) v *= inv;
}

void Communicator::broadcast(std::span<float> data, std::int64_t root) {
  MATSCI_CHECK(root >= 0 && root < world_size(), "broadcast root " << root);
  if (world_size() == 1) return;
  MATSCI_TRACE_SCOPE("comm/broadcast");
  CommMetrics& metrics = CommMetrics::get();
  metrics.broadcast_calls.add(1);
  metrics.broadcast_bytes.add(
      static_cast<std::int64_t>(data.size() * sizeof(float)));
  group_->bufs_[static_cast<std::size_t>(rank_)] = data.data();
  barrier();
  if (rank_ != root) {
    const float* src = group_->bufs_[static_cast<std::size_t>(root)];
    std::memcpy(data.data(), src, data.size() * sizeof(float));
  }
  barrier();
}

double Communicator::allreduce_scalar_sum(double value) {
  if (world_size() == 1) return value;
  float v = static_cast<float>(value);
  allreduce_sum(std::span<float>(&v, 1));
  return static_cast<double>(v);
}

double Communicator::allreduce_scalar_max(double value) {
  if (world_size() == 1) return value;
  static thread_local float slot;
  slot = static_cast<float>(value);
  group_->bufs_[static_cast<std::size_t>(rank_)] = &slot;
  barrier();
  if (rank_ == 0) {
    double m = -1e300;
    for (std::int64_t r = 0; r < world_size(); ++r) {
      m = std::max(m, static_cast<double>(
                          *group_->bufs_[static_cast<std::size_t>(r)]));
    }
    group_->scratch_.assign(1, m);
  }
  barrier();
  const double result = group_->scratch_[0];
  barrier();
  return result;
}

double Communicator::allreduce_scalar_min(double value) {
  return -allreduce_scalar_max(-value);
}

void run_ranks(std::int64_t world_size,
               const std::function<void(Communicator&)>& rank_fn) {
  MATSCI_CHECK(world_size >= 1, "world_size must be >= 1");
  auto group = std::make_shared<ProcessGroup>(world_size);
  std::vector<std::thread> threads;
  std::vector<std::exception_ptr> errors(
      static_cast<std::size_t>(world_size));
  threads.reserve(static_cast<std::size_t>(world_size));
  for (std::int64_t r = 0; r < world_size; ++r) {
    threads.emplace_back([&, r]() {
      try {
        Communicator comm(group, r);
        rank_fn(comm);
      } catch (...) {
        errors[static_cast<std::size_t>(r)] = std::current_exception();
      }
    });
  }
  for (std::thread& t : threads) t.join();
  for (const std::exception_ptr& e : errors) {
    if (e) std::rethrow_exception(e);
  }
}

}  // namespace matsci::comm
