#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <mutex>
#include <string>
#include <vector>

#include "core/macros.hpp"
#include "data/sample.hpp"
#include "obs/context.hpp"
#include "tasks/task.hpp"

namespace matsci::serve {

/// Scheduling class of a request. Lower value = more urgent: the
/// dispatch anchor is always chosen from the most urgent queued class,
/// and admission control sheds the less urgent classes first under
/// overload (see frontend/admission.hpp).
enum class Priority : std::uint8_t {
  kInteractive = 0,  ///< latency-sensitive online traffic
  kStandard = 1,     ///< default
  kBatch = 2,        ///< bulk / best-effort traffic, first to shed
};
inline constexpr std::size_t kNumPriorities = 3;

/// Thrown through a request's future (or from push) when the serving
/// stack sheds the request instead of serving it: queue at capacity at
/// submit time, or dispatch deadline exceeded while queued. Derives
/// from matsci::Error so generic catch sites keep working; catch it
/// specifically to implement client-side backoff.
class ShedError : public matsci::Error {
 public:
  using matsci::Error::Error;
};

/// One client prediction request: a single structure plus the target
/// (head) it wants evaluated, e.g. "band_gap".
struct PredictRequest {
  data::StructureSample structure;
  std::string target;
  Priority priority = Priority::kStandard;
  /// Absolute dispatch deadline: a request still queued (never handed
  /// to a batch) at this instant is shed with ShedError. max() = none.
  std::chrono::steady_clock::time_point deadline =
      std::chrono::steady_clock::time_point::max();
  /// Opaque annotation carried through to completion callbacks — the
  /// frontend stores its response-cache key here. Empty = uncached.
  std::string cache_key;
  /// Request-tracing context minted at frontend admission and carried
  /// through every serving stage (DESIGN.md §10). Zero-size under
  /// -DMATSCI_OBS=OFF.
  [[no_unique_address]] obs::TraceContext trace;
};

/// What the client's future resolves to.
struct PredictResult {
  tasks::Prediction prediction;
  std::int64_t batch_size = 0;  ///< micro-batch the request was served in
  double latency_us = 0.0;      ///< enqueue -> fulfillment
  double service_us = 0.0;      ///< forward-pass time of the batch alone
};

/// A queued request plus its fulfillment channel and arrival time.
struct PendingRequest {
  PredictRequest request;
  std::promise<PredictResult> promise;
  std::chrono::steady_clock::time_point enqueued;
};

/// Outcome of a non-throwing enqueue attempt.
enum class PushStatus : std::uint8_t {
  kAccepted,   ///< queued; `future` is valid
  kQueueFull,  ///< bounded queue at capacity — shed and retry later
  kShutdown,   ///< queue no longer accepts work
};

struct PushResult {
  PushStatus status = PushStatus::kShutdown;
  std::future<PredictResult> future;  ///< valid iff status == kAccepted
};

/// Thread-safe micro-batching queue. Producers push requests and get
/// futures; consumer workers pop *coalesced* micro-batches.
///
/// Flush policy (pop_batch): the *anchor* — the oldest request of the
/// most urgent queued priority class — fixes the batch key (target,
/// dataset_id; collate requires a homogeneous batch) and the flush
/// deadline: min(anchor.enqueued + max_wait_us, anchor.deadline), so a
/// request with a tight SLO flushes its batch early instead of waiting
/// out the coalescing window. The batch leaves as soon as it holds
/// `max_batch_size` matching requests or the flush deadline passes,
/// whichever comes first. Requests with a different key are left queued
/// for another pop; matching requests of any priority ride along.
///
/// Overload behavior: with a nonzero `capacity`, try_push reports
/// kQueueFull instead of growing without bound (push throws ShedError),
/// and pop_batch sheds requests whose dispatch deadline expired while
/// queued — their futures break with ShedError and deadline_drops()
/// counts them.
///
/// Shutdown semantics: push() throws after shutdown(); pop_batch keeps
/// returning queued work until the queue is drained (every accepted
/// request is served, never dropped) and only then returns an empty
/// batch, which is the worker's exit signal.
class RequestQueue {
 public:
  /// `capacity` bounds the number of queued-but-undispatched requests;
  /// 0 = unbounded (the seed behavior).
  explicit RequestQueue(std::size_t capacity = 0);

  /// Enqueue one request; the returned future resolves when a worker
  /// serves the micro-batch containing it (or breaks with an exception
  /// if the forward pass throws, or with ShedError if the request's
  /// deadline expires while queued). Throws matsci::Error after
  /// shutdown and ShedError when the bounded queue is full.
  std::future<PredictResult> push(PredictRequest request);

  /// Non-throwing enqueue: reports full/shutdown through the status
  /// instead (the admission-control entry point).
  PushResult try_push(PredictRequest request);

  /// Block for the next micro-batch (see class comment for the flush
  /// policy). Empty result == shut down and drained.
  std::vector<PendingRequest> pop_batch(std::int64_t max_batch_size,
                                        std::int64_t max_wait_us);

  /// Stop accepting new requests and wake every waiting worker.
  void shutdown();

  bool is_shutdown() const;
  std::size_t size() const;
  std::size_t capacity() const { return capacity_; }

  /// Requests shed because their deadline expired while queued.
  std::int64_t deadline_drops() const;
  /// try_push/push attempts rejected because the queue was full.
  std::int64_t rejected_full() const;

 private:
  /// Fail the promise of every queued request whose deadline has
  /// passed and remove it. Caller holds the lock.
  void drop_expired_locked(std::chrono::steady_clock::time_point now);

  /// Move every queued request matching `key` into `batch`, up to
  /// `max_batch_size` total. Caller holds the lock.
  void extract_matching_locked(const std::pair<std::string, std::int64_t>& key,
                               std::int64_t max_batch_size,
                               std::vector<PendingRequest>& batch);

  const std::size_t capacity_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<PendingRequest> pending_;
  bool shutdown_ = false;
  std::int64_t deadline_drops_ = 0;
  std::int64_t rejected_full_ = 0;
};

}  // namespace matsci::serve
