#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <mutex>
#include <string>
#include <vector>

#include "data/sample.hpp"
#include "tasks/task.hpp"

namespace matsci::serve {

/// One client prediction request: a single structure plus the target
/// (head) it wants evaluated, e.g. "band_gap".
struct PredictRequest {
  data::StructureSample structure;
  std::string target;
};

/// What the client's future resolves to.
struct PredictResult {
  tasks::Prediction prediction;
  std::int64_t batch_size = 0;  ///< micro-batch the request was served in
  double latency_us = 0.0;      ///< enqueue -> fulfillment
};

/// A queued request plus its fulfillment channel and arrival time.
struct PendingRequest {
  PredictRequest request;
  std::promise<PredictResult> promise;
  std::chrono::steady_clock::time_point enqueued;
};

/// Thread-safe micro-batching queue. Producers push requests and get
/// futures; consumer workers pop *coalesced* micro-batches.
///
/// Flush policy (pop_batch): the head request fixes the batch key
/// (target, dataset_id) — collate requires a homogeneous batch — then
/// the batch leaves as soon as it holds `max_batch_size` matching
/// requests OR the head request has waited `max_wait_us` since enqueue,
/// whichever comes first. Requests with a different key are left queued
/// for another pop.
///
/// Shutdown semantics: push() throws after shutdown(); pop_batch keeps
/// returning queued work until the queue is drained (in-flight requests
/// are served, never dropped) and only then returns an empty batch,
/// which is the worker's exit signal.
class RequestQueue {
 public:
  /// Enqueue one request; the returned future resolves when a worker
  /// serves the micro-batch containing it (or breaks with an exception
  /// if the forward pass throws). Throws matsci::Error after shutdown.
  std::future<PredictResult> push(PredictRequest request);

  /// Block for the next micro-batch (see class comment for the flush
  /// policy). Empty result == shut down and drained.
  std::vector<PendingRequest> pop_batch(std::int64_t max_batch_size,
                                        std::int64_t max_wait_us);

  /// Stop accepting new requests and wake every waiting worker.
  void shutdown();

  bool is_shutdown() const;
  std::size_t size() const;

 private:
  /// Move every queued request matching `key` into `batch`, up to
  /// `max_batch_size` total. Caller holds the lock.
  void extract_matching_locked(const std::pair<std::string, std::int64_t>& key,
                               std::int64_t max_batch_size,
                               std::vector<PendingRequest>& batch);

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<PendingRequest> pending_;
  bool shutdown_ = false;
};

}  // namespace matsci::serve
