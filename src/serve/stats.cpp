#include "serve/stats.hpp"

#include <sstream>

#include "core/macros.hpp"

namespace matsci::serve {

ServerStats::ServerStats()
    : latencies_us_(obs::Histogram::default_latency_bounds_us()) {}

void ServerStats::record_batch(
    std::int64_t batch_size, const std::vector<double>& request_latencies_us) {
  MATSCI_CHECK(batch_size > 0, "record_batch: batch_size=" << batch_size);
  const auto now = std::chrono::steady_clock::now();
  for (const double latency_us : request_latencies_us) {
    latencies_us_.observe(latency_us);  // sharded, lock-free
  }
  std::lock_guard<std::mutex> lock(mu_);
  ++batches_;
  requests_ += batch_size;
  ++histogram_[batch_size];
  if (!any_) {
    first_ = now;
    any_ = true;
  }
  last_ = now;
}

std::int64_t ServerStats::requests_served() const {
  std::lock_guard<std::mutex> lock(mu_);
  return requests_;
}

std::int64_t ServerStats::batches_executed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return batches_;
}

double ServerStats::mean_batch_size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return batches_ == 0 ? 0.0
                       : static_cast<double>(requests_) /
                             static_cast<double>(batches_);
}

std::map<std::int64_t, std::int64_t> ServerStats::batch_size_histogram()
    const {
  std::lock_guard<std::mutex> lock(mu_);
  return histogram_;
}

LatencySummary ServerStats::summary_locked() const {
  LatencySummary s;
  const obs::HistogramSnapshot snap = latencies_us_.snapshot();
  if (snap.count == 0) return s;
  s.p50_us = snap.percentile(0.50);
  s.p95_us = snap.percentile(0.95);
  s.p99_us = snap.percentile(0.99);
  s.mean_us = snap.mean();
  s.max_us = snap.max;
  return s;
}

LatencySummary ServerStats::latency_summary() const {
  std::lock_guard<std::mutex> lock(mu_);
  return summary_locked();
}

double ServerStats::throughput_locked() const {
  if (!any_) return 0.0;
  const double seconds =
      std::chrono::duration<double>(last_ - first_).count();
  if (seconds <= 0.0) return 0.0;
  return static_cast<double>(requests_) / seconds;
}

double ServerStats::throughput_per_s() const {
  std::lock_guard<std::mutex> lock(mu_);
  return throughput_locked();
}

std::string ServerStats::to_json() const {
  std::lock_guard<std::mutex> lock(mu_);
  const LatencySummary s = summary_locked();
  std::ostringstream os;
  os << "{\"requests\":" << requests_ << ",\"batches\":" << batches_
     << ",\"mean_batch_size\":"
     << (batches_ == 0 ? 0.0
                       : static_cast<double>(requests_) /
                             static_cast<double>(batches_))
     << ",\"throughput_structs_per_s\":" << throughput_locked()
     << ",\"p50_us\":" << s.p50_us << ",\"p95_us\":" << s.p95_us
     << ",\"p99_us\":" << s.p99_us << ",\"mean_us\":" << s.mean_us
     << ",\"max_us\":" << s.max_us << "}";
  return os.str();
}

void ServerStats::reset() {
  std::lock_guard<std::mutex> lock(mu_);
  latencies_us_.reset();
  histogram_.clear();
  requests_ = 0;
  batches_ = 0;
  any_ = false;
}

}  // namespace matsci::serve
