#pragma once

#include <memory>
#include <string>
#include <vector>

#include "data/collate.hpp"
#include "nn/serialize.hpp"
#include "tasks/task.hpp"

namespace matsci::serve {

struct InferenceSessionOptions {
  /// How request structures become message-passing topology — the same
  /// collate path training uses, so serving sees identical graphs.
  data::CollateOptions collate;
};

/// A loaded model held ready for forward-only prediction. Construction
/// puts the whole module tree in eval() mode (Dropout becomes a
/// deterministic no-op); every predict call runs under a per-thread
/// NoGradGuard, so no autograd tape is built no matter which worker
/// thread calls in.
///
/// Thread-safety: predict/predict_batch only read parameters, therefore
/// any number of threads may call them concurrently. load_checkpoint
/// writes parameters and must not race a predict — load before the
/// scheduler starts (or tear the scheduler down first).
class InferenceSession {
 public:
  explicit InferenceSession(std::shared_ptr<tasks::Task> task,
                            InferenceSessionOptions opts = {});

  /// Load model weights from a checkpoint file — either a plain state
  /// dict or a full training checkpoint (optimizer/meta entries are
  /// stripped via train::load_model_state).
  nn::LoadReport load_checkpoint(const std::string& path, bool strict = true);

  /// Collate `samples` through the session's collate options and predict
  /// `target` for each. Single-sample calls and micro-batched calls are
  /// bit-identical per structure (per-graph compute is independent).
  std::vector<tasks::Prediction> predict(
      const std::vector<data::StructureSample>& samples,
      const std::string& target) const;

  /// Predict on an already-collated batch.
  std::vector<tasks::Prediction> predict_batch(
      const data::Batch& batch, const std::string& target) const;

  const data::CollateOptions& collate_options() const {
    return opts_.collate;
  }
  const std::shared_ptr<tasks::Task>& task() const { return task_; }

 private:
  std::shared_ptr<tasks::Task> task_;
  InferenceSessionOptions opts_;
};

}  // namespace matsci::serve
