#pragma once

#include <cstdint>
#include <future>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "serve/queue.hpp"
#include "serve/session.hpp"
#include "serve/stats.hpp"

namespace matsci::serve {

struct SchedulerOptions {
  /// Flush a micro-batch once it holds this many requests...
  std::int64_t max_batch_size = 32;
  /// ...or once its oldest request has waited this long, whichever first.
  std::int64_t max_wait_us = 2000;
  /// Worker threads; 0 = std::thread::hardware_concurrency().
  std::int64_t num_workers = 0;
};

/// The serving engine: a worker pool that drains the RequestQueue in
/// micro-batches, runs them through a shared InferenceSession, and fans
/// each result back out to the client's future. Clients block only on
/// their own future; workers never block on clients.
///
/// Lifecycle: workers start in the constructor; shutdown() (or the
/// destructor) stops intake, drains every queued request, and joins the
/// pool — no request that got a future is ever dropped. If a forward
/// pass throws, every request in that micro-batch receives the exception
/// through its future and the worker keeps serving.
class BatchScheduler {
 public:
  explicit BatchScheduler(std::shared_ptr<InferenceSession> session,
                          SchedulerOptions opts = {});
  ~BatchScheduler();
  BatchScheduler(const BatchScheduler&) = delete;
  BatchScheduler& operator=(const BatchScheduler&) = delete;

  /// Enqueue one structure for prediction of `target`.
  std::future<PredictResult> submit(data::StructureSample structure,
                                    std::string target);

  /// Stop accepting requests, serve everything still queued, join the
  /// workers. Idempotent.
  void shutdown();

  const ServerStats& stats() const { return stats_; }
  std::int64_t num_workers() const {
    return static_cast<std::int64_t>(workers_.size());
  }
  const SchedulerOptions& options() const { return opts_; }

 private:
  void worker_loop();
  void serve_batch(std::vector<PendingRequest>& batch);

  std::shared_ptr<InferenceSession> session_;
  SchedulerOptions opts_;
  RequestQueue queue_;
  ServerStats stats_;
  std::vector<std::thread> workers_;
};

}  // namespace matsci::serve
