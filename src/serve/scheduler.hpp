#pragma once

#include <cstdint>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "core/parallel/thread_pool.hpp"
#include "serve/queue.hpp"
#include "serve/session.hpp"
#include "serve/stats.hpp"

namespace matsci::serve {

struct SchedulerOptions {
  /// Flush a micro-batch once it holds this many requests...
  std::int64_t max_batch_size = 32;
  /// ...or once its anchor request has waited this long (or its SLO
  /// deadline is up), whichever first.
  std::int64_t max_wait_us = 2000;
  /// Concurrent batch jobs on the shared pool;
  /// 0 = core::parallel::ThreadPool::global().size() (which honors
  /// MATSCI_NUM_THREADS).
  std::int64_t num_workers = 0;
  /// Bound on queued-but-undispatched requests: beyond it submit()
  /// throws ShedError and try_submit() reports kQueueFull, so overload
  /// turns into shed traffic instead of unbounded queue growth.
  /// 0 = unbounded (the seed behavior).
  std::int64_t queue_capacity = 0;
  /// Invoked on the dispatch job once per request right before its
  /// future resolves — the frontend populates its response cache and
  /// its service-time estimate here. Keep it cheap; exceptions are
  /// swallowed (a broken observer must not break serving).
  std::function<void(const PredictRequest&, const PredictResult&)> on_result;
};

/// Per-request scheduling knobs for try_submit.
struct SubmitOptions {
  Priority priority = Priority::kStandard;
  /// Dispatch-deadline budget from submit time, microseconds; a request
  /// still queued when it expires is shed with ShedError. 0 = none.
  std::int64_t deadline_us = 0;
  /// Opaque annotation passed through to on_result (cache key).
  std::string cache_key;
  /// Request-tracing context (minted by the frontend at admission);
  /// copied into the queued PredictRequest so queue-wait, batch, and
  /// forward spans all carry the request's trace id. Zero-size under
  /// -DMATSCI_OBS=OFF.
  [[no_unique_address]] obs::TraceContext trace;
};

/// The serving engine: batch jobs on the process-wide
/// core::parallel::ThreadPool that drain the RequestQueue in
/// micro-batches, run them through a shared InferenceSession, and fan
/// each result back out to the client's future. Clients block only on
/// their own future; batch jobs never block on clients.
///
/// The scheduler owns no threads of its own — it submits `num_workers`
/// long-running dispatch jobs to the shared pool, occupying that many
/// pool slots while live. Kernels inside a batch job's forward pass hit
/// the pool's nesting guard and run inline, so concurrency comes from
/// batch-level parallelism and total threading never exceeds the pool
/// size (no N×N oversubscription against parallel kernels).
///
/// Lifecycle: dispatch jobs start in the constructor; shutdown() (or
/// the destructor) stops intake, drains every queued request, and
/// reclaims the jobs — a dispatch job that never got a pool slot is run
/// inline by the shutting-down thread, so shutdown cannot deadlock on a
/// busy pool and no request that got a future is ever dropped. If a
/// forward pass throws, every request in that micro-batch receives the
/// exception through its future and the job keeps serving.
class BatchScheduler {
 public:
  explicit BatchScheduler(std::shared_ptr<InferenceSession> session,
                          SchedulerOptions opts = {});
  ~BatchScheduler();
  BatchScheduler(const BatchScheduler&) = delete;
  BatchScheduler& operator=(const BatchScheduler&) = delete;

  /// Enqueue one structure for prediction of `target` at standard
  /// priority with no deadline. Throws matsci::Error after shutdown and
  /// ShedError when the bounded queue is full.
  std::future<PredictResult> submit(data::StructureSample structure,
                                    std::string target);

  /// Non-throwing enqueue with per-request priority/deadline; overload
  /// and shutdown come back as statuses (the frontend's entry point —
  /// it sheds on kQueueFull and re-resolves the registry on kShutdown).
  PushResult try_submit(data::StructureSample structure, std::string target,
                        SubmitOptions sopts = {});

  /// Stop accepting requests, serve everything still queued, reclaim
  /// the dispatch jobs from the pool. Idempotent.
  void shutdown();

  const ServerStats& stats() const { return stats_; }
  /// Queued-but-undispatched requests right now (admission input).
  std::int64_t queue_depth() const {
    return static_cast<std::int64_t>(queue_.size());
  }
  /// Requests shed by the queue because their deadline expired.
  std::int64_t deadline_drops() const { return queue_.deadline_drops(); }
  /// Submit attempts rejected because the bounded queue was full.
  std::int64_t rejected_full() const { return queue_.rejected_full(); }
  std::int64_t num_workers() const {
    return static_cast<std::int64_t>(dispatchers_.size());
  }
  const SchedulerOptions& options() const { return opts_; }

 private:
  void dispatch_loop();
  void serve_batch(std::vector<PendingRequest>& batch);

  std::shared_ptr<InferenceSession> session_;
  SchedulerOptions opts_;
  RequestQueue queue_;
  ServerStats stats_;
  std::vector<core::parallel::TaskHandle> dispatchers_;
  std::mutex shutdown_mu_;
};

}  // namespace matsci::serve
