#pragma once

#include <atomic>
#include <cstdint>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "serve/frontend/admission.hpp"
#include "serve/frontend/cache.hpp"
#include "serve/frontend/registry.hpp"

namespace matsci::serve::frontend {

/// Outcome classes of ServeFrontend::submit. Accepted and cache-hit
/// outcomes carry a future; shed outcomes carry a retry-after hint.
enum class SubmitStatus : std::uint8_t {
  kAccepted,      ///< queued on the active version's scheduler
  kCacheHit,      ///< answered from the response cache (future is ready)
  kShedQueueFull, ///< admission rejected: class over its queue share
  kShedDeadline,  ///< admission rejected: SLO infeasible at current depth
  kNoSuchModel,   ///< model name not deployed
};

struct SubmitOutcome {
  SubmitStatus status = SubmitStatus::kNoSuchModel;
  /// Valid for kAccepted and kCacheHit.
  std::future<PredictResult> future;
  /// Backoff hint (µs) for the shed statuses — the graceful
  /// "retry-after" handed to clients instead of a bare rejection.
  double retry_after_us = 0.0;
  /// Version that handled (or rejected) the request; 0 for
  /// kNoSuchModel.
  std::uint64_t version = 0;
  /// The request's trace context, minted at admission — set on EVERY
  /// outcome, including sheds, so a rejected client can quote the
  /// trace id when it retries or files a report. Zero-size/invalid
  /// under -DMATSCI_OBS=OFF.
  [[no_unique_address]] obs::TraceContext trace;

  bool ok() const {
    return status == SubmitStatus::kAccepted ||
           status == SubmitStatus::kCacheHit;
  }
  bool shed() const {
    return status == SubmitStatus::kShedQueueFull ||
           status == SubmitStatus::kShedDeadline;
  }
};

/// Per-request options at the frontend boundary.
struct FrontendRequestOptions {
  Priority priority = Priority::kStandard;
  /// End-to-end dispatch budget (µs): admission sheds up front when the
  /// predicted queue wait already exceeds it, and the queue sheds it if
  /// it is still undispatched when it expires. 0 = no deadline.
  std::int64_t deadline_us = 0;
  /// Set false to bypass the response cache for this request (always
  /// recompute; the fresh answer still populates the cache).
  bool use_cache = true;
  /// Optional parent trace context: when valid, the request's context
  /// is minted as its child (same trace id) instead of starting a new
  /// trace — how a sim wave's trace spans its member requests.
  [[no_unique_address]] obs::TraceContext parent;
};

/// Monotonic counters for one frontend (also mirrored into the obs
/// registry as serve.frontend.*).
struct FrontendStats {
  std::int64_t admitted = 0;
  std::int64_t cache_hits = 0;
  std::int64_t shed_queue_full = 0;
  std::int64_t shed_deadline = 0;
  std::int64_t no_such_model = 0;
  std::int64_t total() const {
    return admitted + cache_hits + shed_queue_full + shed_deadline +
           no_such_model;
  }
  double shed_rate() const {
    const std::int64_t t = total();
    return t == 0 ? 0.0
                  : static_cast<double>(shed_queue_full + shed_deadline) / t;
  }
};

struct FrontendOptions {
  ResponseCacheOptions cache;
  AdmissionOptions admission;
};

/// The production serving frontend (DESIGN.md §8): one object facing
/// the clients of every deployed model. A submit walks
///   cache lookup -> admission decision -> bounded scheduler queue
/// and each stage turns overload into an explicit, bounded outcome
/// instead of queueing collapse: cache hits skip the queue entirely,
/// admission sheds the least urgent classes first with a retry-after
/// hint, and the queue itself is capacity-bounded with deadline drops.
/// Hot-swaps go through deploy(): the registry publishes the new
/// version atomically and drains the old one; a submit racing the swap
/// re-resolves and lands on the new version, so no request that got a
/// future is ever lost.
class ServeFrontend {
 public:
  explicit ServeFrontend(FrontendOptions opts = {});
  ~ServeFrontend();
  ServeFrontend(const ServeFrontend&) = delete;
  ServeFrontend& operator=(const ServeFrontend&) = delete;

  /// Deploy `version` of `name` (atomic hot-swap when a version is
  /// already live — see ModelRegistry::deploy). The scheduler's
  /// on_result hook is chained to populate the response cache and the
  /// model's admission service-time estimate; the admission controller
  /// persists across versions so its EWMA survives the swap.
  std::shared_ptr<ServingModel> deploy(const std::string& name,
                                       std::uint64_t version,
                                       std::shared_ptr<InferenceSession> session,
                                       SchedulerOptions opts = {});

  /// Submit one structure for prediction of `target` on model `name`.
  /// Never throws for overload — shed outcomes come back as statuses
  /// with a retry-after hint. The returned future (for ok() outcomes)
  /// can still break with ShedError if the request's deadline expires
  /// while queued, or with the forward pass's exception.
  SubmitOutcome submit(const std::string& name,
                       data::StructureSample structure, std::string target,
                       const FrontendRequestOptions& ropts = {});

  /// Retire a model: remove from the registry and drain.
  void retire(const std::string& name) { registry_.retire(name); }

  ModelRegistry& registry() { return registry_; }
  ResponseCache& cache() { return *cache_; }
  /// The admission controller guarding `name` (nullptr when never
  /// deployed).
  std::shared_ptr<AdmissionController> admission(
      const std::string& name) const;

  FrontendStats stats() const;

 private:
  FrontendOptions opts_;
  ModelRegistry registry_;
  std::shared_ptr<ResponseCache> cache_;
  mutable std::mutex admission_mu_;
  std::map<std::string, std::shared_ptr<AdmissionController>> admission_;

  std::atomic<std::int64_t> admitted_{0};
  std::atomic<std::int64_t> cache_hits_{0};
  std::atomic<std::int64_t> shed_queue_full_{0};
  std::atomic<std::int64_t> shed_deadline_{0};
  std::atomic<std::int64_t> no_such_model_{0};
};

}  // namespace matsci::serve::frontend
