#pragma once

#include <cstdint>
#include <list>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <utility>

#include "data/sample.hpp"
#include "sym/canonical.hpp"
#include "tasks/task.hpp"

namespace matsci::serve::frontend {

struct ResponseCacheOptions {
  /// Maximum cached entries; least-recently-used entries are evicted
  /// beyond it. 0 disables caching (every lookup misses, inserts are
  /// dropped).
  std::size_t capacity = 4096;
  /// How structures are canonicalized into keys (see sym/canonical.hpp).
  /// The default folds atom permutation and rigid translation and
  /// quantizes coordinates at 1e-4 Å, so a cache hit is bit-exact up to
  /// that key resolution.
  sym::CanonicalOptions canonical;
};

struct ResponseCacheStats {
  std::int64_t hits = 0;
  std::int64_t misses = 0;
  std::int64_t insertions = 0;
  std::int64_t evictions = 0;
  std::size_t size = 0;
  double hit_rate() const {
    const std::int64_t total = hits + misses;
    return total == 0 ? 0.0 : static_cast<double>(hits) / total;
  }
};

/// Thread-safe LRU cache from canonicalized-structure keys to served
/// predictions. Keys fold the structure's canonical hash with the
/// target head and the model version (see make_key), so a hot-swap
/// never serves stale answers: old-version entries stop being looked
/// up and age out through the LRU. Hits/misses/evictions are mirrored
/// into the obs registry as serve.cache.{hit,miss,evict}.
class ResponseCache {
 public:
  explicit ResponseCache(ResponseCacheOptions opts = {});

  /// Cache key for predicting `target` on `structure` under model
  /// `version`: hex of the canonical structure hash chained with the
  /// target bytes and the version. 64-bit, so collisions are
  /// possible-in-principle (~1e-10 at a million live entries) — the
  /// cache trades that for never storing full structures.
  std::string make_key(const data::StructureSample& structure,
                       const std::string& target,
                       std::uint64_t version) const;

  /// Returns the cached prediction and refreshes recency, or nullopt.
  std::optional<tasks::Prediction> lookup(const std::string& key);

  /// Insert (or refresh) an entry, evicting the LRU tail beyond
  /// capacity. No-op when the cache is disabled or `key` is empty.
  void insert(const std::string& key, const tasks::Prediction& prediction);

  ResponseCacheStats stats() const;
  void clear();
  const ResponseCacheOptions& options() const { return opts_; }

 private:
  using LruList = std::list<std::pair<std::string, tasks::Prediction>>;

  ResponseCacheOptions opts_;
  mutable std::mutex mu_;
  LruList lru_;  ///< front = most recent
  std::unordered_map<std::string, LruList::iterator> index_;
  std::int64_t hits_ = 0;
  std::int64_t misses_ = 0;
  std::int64_t insertions_ = 0;
  std::int64_t evictions_ = 0;
};

}  // namespace matsci::serve::frontend
