#include "serve/frontend/cache.hpp"

#include <cstdio>

#include "obs/metrics.hpp"

namespace matsci::serve::frontend {

namespace {

struct CacheMetrics {
  obs::Counter& hit;
  obs::Counter& miss;
  obs::Counter& evict;
  obs::Gauge& size;

  static CacheMetrics& get() {
    static CacheMetrics* m = new CacheMetrics{
        obs::MetricsRegistry::global().counter("serve.cache.hit"),
        obs::MetricsRegistry::global().counter("serve.cache.miss"),
        obs::MetricsRegistry::global().counter("serve.cache.evict"),
        obs::MetricsRegistry::global().gauge("serve.cache.size"),
    };
    return *m;
  }
};

}  // namespace

ResponseCache::ResponseCache(ResponseCacheOptions opts)
    : opts_(std::move(opts)) {}

std::string ResponseCache::make_key(const data::StructureSample& structure,
                                    const std::string& target,
                                    std::uint64_t version) const {
  std::uint64_t h = sym::canonical_structure_hash(structure, opts_.canonical);
  h = sym::fnv1a64(target, h);
  h = sym::fnv1a64(&version, sizeof(version), h);
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(h));
  return std::string(buf);
}

std::optional<tasks::Prediction> ResponseCache::lookup(
    const std::string& key) {
  CacheMetrics& metrics = CacheMetrics::get();
  std::lock_guard<std::mutex> lock(mu_);
  auto it = index_.find(key);
  if (it == index_.end()) {
    ++misses_;
    metrics.miss.add(1);
    return std::nullopt;
  }
  lru_.splice(lru_.begin(), lru_, it->second);  // refresh recency
  ++hits_;
  metrics.hit.add(1);
  return it->second->second;
}

void ResponseCache::insert(const std::string& key,
                           const tasks::Prediction& prediction) {
  if (opts_.capacity == 0 || key.empty()) return;
  CacheMetrics& metrics = CacheMetrics::get();
  std::lock_guard<std::mutex> lock(mu_);
  auto it = index_.find(key);
  if (it != index_.end()) {
    it->second->second = prediction;
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  lru_.emplace_front(key, prediction);
  index_[key] = lru_.begin();
  ++insertions_;
  while (index_.size() > opts_.capacity) {
    index_.erase(lru_.back().first);
    lru_.pop_back();
    ++evictions_;
    metrics.evict.add(1);
  }
  metrics.size.set(static_cast<double>(index_.size()));
}

ResponseCacheStats ResponseCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  ResponseCacheStats s;
  s.hits = hits_;
  s.misses = misses_;
  s.insertions = insertions_;
  s.evictions = evictions_;
  s.size = index_.size();
  return s;
}

void ResponseCache::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  lru_.clear();
  index_.clear();
  CacheMetrics::get().size.set(0.0);
}

}  // namespace matsci::serve::frontend
