#include "serve/frontend/frontend.hpp"

#include <utility>

#include "core/macros.hpp"
#include "obs/context.hpp"
#include "obs/metrics.hpp"

namespace matsci::serve::frontend {

namespace {

struct FrontendMetrics {
  obs::Counter& admitted;
  obs::Counter& shed_full;
  obs::Counter& shed_deadline;
  obs::Histogram& retry_after_us;
  obs::Gauge& queue_depth;
  /// Frontend-side stage attribution: time to answer from the cache,
  /// and time spent deciding to shed. Both carry the request's trace id
  /// as an exemplar (see serve.stage.* in scheduler.cpp for the queued
  /// stages).
  obs::Histogram& stage_cache_us;
  obs::Histogram& stage_shed_us;

  static FrontendMetrics& get() {
    static FrontendMetrics* m = new FrontendMetrics{
        obs::MetricsRegistry::global().counter("serve.frontend.admitted"),
        obs::MetricsRegistry::global().counter("serve.frontend.shed_full"),
        obs::MetricsRegistry::global().counter(
            "serve.frontend.shed_deadline"),
        obs::MetricsRegistry::global().histogram(
            "serve.frontend.retry_after_us"),
        obs::MetricsRegistry::global().gauge("serve.frontend.queue_depth"),
        obs::MetricsRegistry::global().histogram("serve.stage.cache_us"),
        obs::MetricsRegistry::global().histogram("serve.stage.shed_us"),
    };
    return *m;
  }
};

}  // namespace

ServeFrontend::ServeFrontend(FrontendOptions opts)
    : opts_(std::move(opts)),
      cache_(std::make_shared<ResponseCache>(opts_.cache)) {}

ServeFrontend::~ServeFrontend() {
  // Drain every model while the cache/admission state is still alive
  // (dispatch jobs run the on_result hooks during the drain).
  registry_.retire_all();
}

std::shared_ptr<ServingModel> ServeFrontend::deploy(
    const std::string& name, std::uint64_t version,
    std::shared_ptr<InferenceSession> session, SchedulerOptions opts) {
  // One admission controller per model *name*: it survives hot-swaps so
  // the service-time EWMA keeps guiding retry-after across versions.
  std::shared_ptr<AdmissionController> admission;
  {
    std::lock_guard<std::mutex> lock(admission_mu_);
    auto it = admission_.find(name);
    const std::int64_t workers =
        opts.num_workers > 0 ? opts.num_workers
                             : core::parallel::ThreadPool::global().size();
    AdmissionOptions aopts = opts_.admission;
    if (it != admission_.end()) {
      aopts.initial_service_us = it->second->service_estimate_us();
    }
    admission = std::make_shared<AdmissionController>(
        aopts, opts.queue_capacity, workers);
    admission_[name] = admission;
  }

  // Chain the scheduler's completion hook: user hook first, then cache
  // population and the admission EWMA. Captures shared_ptrs so the
  // hook outlives any frontend teardown race during the final drain.
  auto user_hook = std::move(opts.on_result);
  std::shared_ptr<ResponseCache> cache = cache_;
  opts.on_result = [user_hook, cache, admission](
                       const PredictRequest& request,
                       const PredictResult& result) {
    if (user_hook) user_hook(request, result);
    if (!request.cache_key.empty()) {
      cache->insert(request.cache_key, result.prediction);
    }
    if (result.batch_size > 0) {
      admission->observe_service(result.service_us /
                                 static_cast<double>(result.batch_size));
    }
  };
  return registry_.deploy(name, version, std::move(session),
                          std::move(opts));
}

SubmitOutcome ServeFrontend::submit(const std::string& name,
                                    data::StructureSample structure,
                                    std::string target,
                                    const FrontendRequestOptions& ropts) {
  FrontendMetrics& metrics = FrontendMetrics::get();
  SubmitOutcome out;
  // Mint the request's trace context here, at the serving boundary —
  // every stage span downstream (cache/shed/queue_wait/forward) carries
  // this id. A valid parent (e.g. a sim wave) keeps its trace id.
  const obs::TraceContext ctx = ropts.parent.valid()
                                    ? ropts.parent.child()
                                    : obs::TraceContext::mint();
  out.trace = ctx;
  const std::uint64_t t0 = obs::span_clock_ns();
  const obs::StopWatch watch;

  // A submit racing a hot-swap can catch the displaced version just as
  // its intake closes (kShutdown) — re-resolve and land on the new
  // version. Bounded only as a corruption guard; two iterations is the
  // practical maximum (the registry publishes the replacement before
  // closing the old intake).
  for (int attempt = 0; attempt < 64; ++attempt) {
    std::shared_ptr<ServingModel> model = registry_.resolve(name);
    if (model == nullptr) {
      no_such_model_.fetch_add(1, std::memory_order_relaxed);
      out.status = SubmitStatus::kNoSuchModel;
      return out;
    }
    out.version = model->version();
    BatchScheduler& scheduler = model->scheduler();

    std::string cache_key;
    const bool cache_enabled =
        ropts.use_cache && cache_->options().capacity > 0;
    if (cache_enabled) {
      cache_key = cache_->make_key(structure, target, model->version());
      if (std::optional<tasks::Prediction> hit = cache_->lookup(cache_key)) {
        cache_hits_.fetch_add(1, std::memory_order_relaxed);
        std::promise<PredictResult> ready;
        PredictResult result;
        result.prediction = std::move(*hit);
        result.batch_size = 0;  // 0 = answered from cache, no batch
        ready.set_value(std::move(result));
        out.status = SubmitStatus::kCacheHit;
        out.future = ready.get_future();
        metrics.stage_cache_us.observe(watch.elapsed_us(), ctx.trace_id());
        obs::record_span("serve/stage/cache", t0, obs::span_clock_ns() - t0,
                         ctx);
        return out;
      }
    }

    const std::int64_t depth = scheduler.queue_depth();
    metrics.queue_depth.set(static_cast<double>(depth));
    std::shared_ptr<AdmissionController> admission = this->admission(name);
    MATSCI_CHECK(admission != nullptr,
                 "frontend: no admission controller for deployed model '"
                     << name << "'");
    const AdmissionDecision decision = admission->decide(
        ropts.priority, depth, ropts.deadline_us, ctx.trace_id());
    if (!decision.admitted()) {
      out.retry_after_us = decision.retry_after_us;
      metrics.retry_after_us.observe(decision.retry_after_us,
                                     decision.trace_id);
      if (decision.outcome == AdmissionOutcome::kQueueFull) {
        shed_queue_full_.fetch_add(1, std::memory_order_relaxed);
        metrics.shed_full.add(1);
        out.status = SubmitStatus::kShedQueueFull;
      } else {
        shed_deadline_.fetch_add(1, std::memory_order_relaxed);
        metrics.shed_deadline.add(1);
        out.status = SubmitStatus::kShedDeadline;
      }
      metrics.stage_shed_us.observe(watch.elapsed_us(), ctx.trace_id());
      obs::record_span("serve/stage/shed", t0, obs::span_clock_ns() - t0,
                       ctx);
      return out;
    }

    SubmitOptions sopts;
    sopts.priority = ropts.priority;
    sopts.deadline_us = ropts.deadline_us;
    sopts.cache_key = cache_key;
    sopts.trace = ctx;
    PushResult push =
        scheduler.try_submit(structure, target, std::move(sopts));
    switch (push.status) {
      case PushStatus::kAccepted:
        admitted_.fetch_add(1, std::memory_order_relaxed);
        metrics.admitted.add(1);
        out.status = SubmitStatus::kAccepted;
        out.future = std::move(push.future);
        // Accepted: the request is now in flight until its promise
        // resolves (scheduler) or its deadline drops it (queue) —
        // either fulfillment path removes it from the set.
        obs::InflightSet::global().insert(ctx);
        obs::record_span("serve/stage/admission", t0,
                         obs::span_clock_ns() - t0, ctx);
        return out;
      case PushStatus::kQueueFull: {
        // Raced past admission into a just-filled queue: shed with the
        // same retry-after the controller would hand out at this depth.
        shed_queue_full_.fetch_add(1, std::memory_order_relaxed);
        metrics.shed_full.add(1);
        out.status = SubmitStatus::kShedQueueFull;
        out.retry_after_us = std::max(
            admission->options().min_retry_after_us,
            admission->estimated_wait_us(scheduler.queue_depth()));
        metrics.retry_after_us.observe(out.retry_after_us, ctx.trace_id());
        metrics.stage_shed_us.observe(watch.elapsed_us(), ctx.trace_id());
        obs::record_span("serve/stage/shed", t0, obs::span_clock_ns() - t0,
                         ctx);
        return out;
      }
      case PushStatus::kShutdown:
        continue;  // hot-swap race: re-resolve the registry
    }
  }
  MATSCI_CHECK(false, "frontend: submit livelocked on model '"
                          << name << "' (registry churn?)");
  return out;  // unreachable
}

std::shared_ptr<AdmissionController> ServeFrontend::admission(
    const std::string& name) const {
  std::lock_guard<std::mutex> lock(admission_mu_);
  auto it = admission_.find(name);
  return it == admission_.end() ? nullptr : it->second;
}

FrontendStats ServeFrontend::stats() const {
  FrontendStats s;
  s.admitted = admitted_.load(std::memory_order_relaxed);
  s.cache_hits = cache_hits_.load(std::memory_order_relaxed);
  s.shed_queue_full = shed_queue_full_.load(std::memory_order_relaxed);
  s.shed_deadline = shed_deadline_.load(std::memory_order_relaxed);
  s.no_such_model = no_such_model_.load(std::memory_order_relaxed);
  return s;
}

}  // namespace matsci::serve::frontend
