#include "serve/frontend/admission.hpp"

#include <algorithm>
#include <cmath>

#include "core/macros.hpp"

namespace matsci::serve::frontend {

AdmissionController::AdmissionController(AdmissionOptions opts,
                                         std::int64_t queue_capacity,
                                         std::int64_t num_workers)
    : opts_(opts),
      capacity_(queue_capacity),
      workers_(std::max<std::int64_t>(1, num_workers)),
      ewma_us_(opts.initial_service_us) {
  MATSCI_CHECK(queue_capacity >= 0, "queue_capacity=" << queue_capacity);
  MATSCI_CHECK(opts_.ewma_alpha > 0.0 && opts_.ewma_alpha <= 1.0,
               "ewma_alpha=" << opts_.ewma_alpha);
  for (double share : opts_.depth_share) {
    MATSCI_CHECK(share > 0.0 && share <= 1.0, "depth_share=" << share);
  }
}

AdmissionDecision AdmissionController::decide(Priority priority,
                                              std::int64_t queue_depth,
                                              std::int64_t deadline_us,
                                              std::uint64_t trace_id) const {
  AdmissionDecision d;
  d.trace_id = trace_id;
  const double per_request_us = service_estimate_us();
  const double wait_us = static_cast<double>(queue_depth) * per_request_us /
                         static_cast<double>(workers_);

  if (capacity_ > 0) {
    const double share =
        opts_.depth_share[static_cast<std::size_t>(priority)];
    const std::int64_t admit_below = std::max<std::int64_t>(
        1, static_cast<std::int64_t>(std::floor(share * static_cast<double>(
                                                            capacity_))));
    if (queue_depth >= admit_below) {
      d.outcome = AdmissionOutcome::kQueueFull;
      // Time for the queue to drain back to this class's threshold.
      const double excess =
          static_cast<double>(queue_depth - admit_below + 1);
      d.retry_after_us =
          std::clamp(excess * per_request_us / static_cast<double>(workers_),
                     opts_.min_retry_after_us, opts_.max_retry_after_us);
      return d;
    }
  }

  if (deadline_us > 0 && wait_us > static_cast<double>(deadline_us)) {
    d.outcome = AdmissionOutcome::kDeadlineInfeasible;
    d.retry_after_us = std::clamp(wait_us - static_cast<double>(deadline_us),
                                  opts_.min_retry_after_us,
                                  opts_.max_retry_after_us);
    return d;
  }
  return d;
}

void AdmissionController::observe_service(double us) {
  if (!(us > 0.0) || !std::isfinite(us)) return;
  std::lock_guard<std::mutex> lock(mu_);
  if (!seeded_) {
    ewma_us_ = us;
    seeded_ = true;
  } else {
    ewma_us_ += opts_.ewma_alpha * (us - ewma_us_);
  }
}

double AdmissionController::estimated_wait_us(std::int64_t queue_depth) const {
  return static_cast<double>(queue_depth) * service_estimate_us() /
         static_cast<double>(workers_);
}

double AdmissionController::service_estimate_us() const {
  std::lock_guard<std::mutex> lock(mu_);
  return ewma_us_;
}

}  // namespace matsci::serve::frontend
