#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "serve/scheduler.hpp"
#include "serve/session.hpp"

namespace matsci::serve::frontend {

/// One deployed (model name, version): a loaded InferenceSession plus
/// the BatchScheduler serving it. Constructed by ModelRegistry::deploy;
/// immutable apart from the scheduler's own lifecycle.
class ServingModel {
 public:
  ServingModel(std::string name, std::uint64_t version,
               std::shared_ptr<InferenceSession> session,
               SchedulerOptions opts)
      : name_(std::move(name)),
        version_(version),
        session_(std::move(session)),
        scheduler_(session_, std::move(opts)) {}

  const std::string& name() const { return name_; }
  std::uint64_t version() const { return version_; }
  const std::shared_ptr<InferenceSession>& session() const {
    return session_;
  }
  BatchScheduler& scheduler() { return scheduler_; }
  const BatchScheduler& scheduler() const { return scheduler_; }

 private:
  std::string name_;
  std::uint64_t version_;
  std::shared_ptr<InferenceSession> session_;
  BatchScheduler scheduler_;
};

/// Versioned model registry with atomic hot-swap.
///
/// deploy(name, v2) publishes v2 as the active version for `name` under
/// the registry lock — every resolve() after the swap routes to v2 —
/// then drains v1 *outside* the lock: v1's scheduler stops intake and
/// serves everything already queued before the entry is released, so a
/// hot-swap under load loses zero in-flight requests. Clients that
/// resolved v1 just before the swap and race its intake close observe
/// PushStatus::kShutdown from try_submit and re-resolve (the frontend
/// does this loop); requests v1 already accepted are always served.
///
/// Versions must be strictly increasing per model name — rollback is a
/// deploy of a higher version carrying the old weights.
class ModelRegistry {
 public:
  ~ModelRegistry() { retire_all(); }

  /// Deploy `version` of `name` and make it the active target for new
  /// requests. Returns the new entry. Blocks until the previous
  /// version (if any) has fully drained — by which point v2 has
  /// already been serving new traffic on the pool's dispatch jobs.
  std::shared_ptr<ServingModel> deploy(
      const std::string& name, std::uint64_t version,
      std::shared_ptr<InferenceSession> session, SchedulerOptions opts = {});

  /// The active entry for `name`, or nullptr when not deployed.
  std::shared_ptr<ServingModel> resolve(const std::string& name) const;

  /// Remove `name` from the registry and drain its scheduler. No-op
  /// when absent.
  void retire(const std::string& name);

  /// Retire every model (drains each in turn).
  void retire_all();

  /// Active version of `name`; 0 when not deployed.
  std::uint64_t active_version(const std::string& name) const;

  std::vector<std::string> models() const;
  /// Completed hot-swaps (deploys that replaced a live version).
  std::int64_t swaps() const;

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::shared_ptr<ServingModel>> active_;
  std::int64_t swaps_ = 0;
};

}  // namespace matsci::serve::frontend
