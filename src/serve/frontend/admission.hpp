#pragma once

#include <array>
#include <cstdint>
#include <mutex>

#include "serve/queue.hpp"

namespace matsci::serve::frontend {

struct AdmissionOptions {
  /// Fraction of the scheduler's queue capacity each priority class may
  /// fill before it is shed: interactive traffic may use the whole
  /// queue, standard stops at 85%, batch at 60% — under overload the
  /// least urgent classes are rejected first, reserving headroom for
  /// latency-sensitive requests. Indexed by Priority.
  std::array<double, kNumPriorities> depth_share{1.0, 0.85, 0.6};
  /// EWMA smoothing factor for the per-request service-time estimate
  /// fed by observe_service (higher = faster adaptation).
  double ewma_alpha = 0.05;
  /// Service-time estimate before any completion has been observed.
  double initial_service_us = 2000.0;
  /// Clamp on the retry-after backoff hint handed to shed clients.
  double min_retry_after_us = 1000.0;
  double max_retry_after_us = 5'000'000.0;
};

/// Why a request was (not) admitted.
enum class AdmissionOutcome : std::uint8_t {
  kAdmit,
  kQueueFull,            ///< class over its depth share — shed, back off
  kDeadlineInfeasible,   ///< predicted queue wait already exceeds the SLO
};

struct AdmissionDecision {
  AdmissionOutcome outcome = AdmissionOutcome::kAdmit;
  /// Backoff hint for shed requests: the predicted time for the queue
  /// to drain to this class's admit threshold (clamped). A graceful
  /// "retry-after" instead of a bare rejection.
  double retry_after_us = 0.0;
  /// Trace id of the request being decided (echoed from decide()'s
  /// argument). Shed responses hand it back to the client so a rejected
  /// request is still correlatable with the server's shed span and the
  /// retry-after histogram exemplar. 0 when tracing is off.
  std::uint64_t trace_id = 0;
  bool admitted() const { return outcome == AdmissionOutcome::kAdmit; }
};

/// Per-model admission control: decides, from the current queue depth
/// and a running service-rate estimate, whether a request may enter the
/// bounded queue. Stateless per decision apart from the service-time
/// EWMA, so one controller serves every version of a model across
/// hot-swaps (the estimate survives the swap).
///
/// State machine per request (see DESIGN.md §8):
///   decide() — depth < share[priority]·capacity and the deadline is
///   feasible -> kAdmit; depth at/over the class share -> kQueueFull
///   with retry-after; predicted wait over the deadline budget ->
///   kDeadlineInfeasible (shed now rather than queue work that is
///   already dead).
class AdmissionController {
 public:
  /// `queue_capacity`/`num_workers` describe the scheduler being
  /// guarded; capacity 0 (unbounded queue) disables depth shedding but
  /// keeps deadline-feasibility shedding.
  AdmissionController(AdmissionOptions opts, std::int64_t queue_capacity,
                      std::int64_t num_workers);

  /// Decide for one request. `deadline_us` is the request's dispatch
  /// budget (0 = none); `queue_depth` the scheduler's current depth;
  /// `trace_id` (0 = untraced) is echoed into the decision so shed
  /// outcomes stay correlatable with the request's trace.
  AdmissionDecision decide(Priority priority, std::int64_t queue_depth,
                           std::int64_t deadline_us,
                           std::uint64_t trace_id = 0) const;

  /// Feed one observed per-request service time (forward-pass cost per
  /// structure, queue wait excluded) into the EWMA.
  void observe_service(double us);

  /// Predicted wait for a request entering behind `queue_depth` others:
  /// depth × EWMA service per request / workers.
  double estimated_wait_us(std::int64_t queue_depth) const;

  double service_estimate_us() const;
  const AdmissionOptions& options() const { return opts_; }

 private:
  AdmissionOptions opts_;
  std::int64_t capacity_;
  std::int64_t workers_;
  mutable std::mutex mu_;
  double ewma_us_;
  bool seeded_ = false;
};

}  // namespace matsci::serve::frontend
