#include "serve/frontend/registry.hpp"

#include <utility>

#include "core/macros.hpp"
#include "obs/metrics.hpp"

namespace matsci::serve::frontend {

namespace {

struct RegistryMetrics {
  obs::Counter& swaps;
  obs::Counter& deploys;

  static RegistryMetrics& get() {
    static RegistryMetrics* m = new RegistryMetrics{
        obs::MetricsRegistry::global().counter("serve.registry.swaps"),
        obs::MetricsRegistry::global().counter("serve.registry.deploys"),
    };
    return *m;
  }
};

}  // namespace

std::shared_ptr<ServingModel> ModelRegistry::deploy(
    const std::string& name, std::uint64_t version,
    std::shared_ptr<InferenceSession> session, SchedulerOptions opts) {
  MATSCI_CHECK(!name.empty(), "ModelRegistry::deploy: empty model name");
  MATSCI_CHECK(version > 0, "ModelRegistry::deploy: version must be > 0");
  // Construct (and start) the new scheduler before taking the lock —
  // the swap itself is a pointer exchange.
  auto entry = std::make_shared<ServingModel>(name, version,
                                              std::move(session),
                                              std::move(opts));
  std::shared_ptr<ServingModel> previous;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = active_.find(name);
    if (it != active_.end()) {
      MATSCI_CHECK(version > it->second->version(),
                   "ModelRegistry::deploy: version "
                       << version << " of '" << name
                       << "' must exceed the active version "
                       << it->second->version());
      previous = it->second;
      it->second = entry;
      ++swaps_;
    } else {
      active_.emplace(name, entry);
    }
  }
  RegistryMetrics::get().deploys.add(1);
  if (previous) {
    // Drain the displaced version outside the lock: intake closes, every
    // request it already accepted is served, dispatch jobs are
    // reclaimed. New traffic is meanwhile flowing to `entry`.
    previous->scheduler().shutdown();
    RegistryMetrics::get().swaps.add(1);
  }
  return entry;
}

std::shared_ptr<ServingModel> ModelRegistry::resolve(
    const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = active_.find(name);
  return it == active_.end() ? nullptr : it->second;
}

void ModelRegistry::retire(const std::string& name) {
  std::shared_ptr<ServingModel> entry;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = active_.find(name);
    if (it == active_.end()) return;
    entry = std::move(it->second);
    active_.erase(it);
  }
  entry->scheduler().shutdown();  // drain outside the lock
}

void ModelRegistry::retire_all() {
  std::vector<std::shared_ptr<ServingModel>> entries;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (auto& [name, entry] : active_) entries.push_back(std::move(entry));
    active_.clear();
  }
  for (auto& entry : entries) entry->scheduler().shutdown();
}

std::uint64_t ModelRegistry::active_version(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = active_.find(name);
  return it == active_.end() ? 0 : it->second->version();
}

std::vector<std::string> ModelRegistry::models() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> out;
  out.reserve(active_.size());
  for (const auto& [name, entry] : active_) out.push_back(name);
  return out;
}

std::int64_t ModelRegistry::swaps() const {
  std::lock_guard<std::mutex> lock(mu_);
  return swaps_;
}

}  // namespace matsci::serve::frontend
