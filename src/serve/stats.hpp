#pragma once

#include <chrono>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "obs/metrics.hpp"

namespace matsci::serve {

/// Latency percentiles over everything recorded so far, microseconds.
struct LatencySummary {
  double p50_us = 0.0;
  double p95_us = 0.0;
  double p99_us = 0.0;
  double mean_us = 0.0;
  double max_us = 0.0;
};

/// Thread-safe counter block shared by every scheduler worker: requests
/// served, executed micro-batches, a batch-size histogram, per-request
/// latency percentiles, and the serving wall-clock window (first to last
/// recorded batch) from which throughput is derived.
///
/// Latencies go into a fixed-bucket obs::Histogram instead of a sample
/// vector: percentile queries are an O(buckets) merge — no full sort
/// under the mutex, no per-request memory growth. Percentiles are
/// bucket-interpolated (exact min/max/mean/counts; p50/p95/p99 accurate
/// to the 1-2-5 bucket resolution); request and batch counts are exact
/// and bit-identical to the pre-histogram implementation.
class ServerStats {
 public:
  ServerStats();

  /// Record one executed micro-batch and the enqueue-to-reply latency of
  /// each request it carried.
  void record_batch(std::int64_t batch_size,
                    const std::vector<double>& request_latencies_us);

  std::int64_t requests_served() const;
  std::int64_t batches_executed() const;
  /// Mean number of structures per executed micro-batch.
  double mean_batch_size() const;
  /// batch size -> number of micro-batches executed at that size.
  std::map<std::int64_t, std::int64_t> batch_size_histogram() const;
  LatencySummary latency_summary() const;
  /// Structures served per second over the observed serving window;
  /// 0 until at least two batches with measurable separation landed.
  double throughput_per_s() const;

  /// One-line JSON rendering (bench output / log scraping).
  std::string to_json() const;

  void reset();

 private:
  LatencySummary summary_locked() const;
  double throughput_locked() const;

  mutable std::mutex mu_;
  obs::Histogram latencies_us_;
  std::map<std::int64_t, std::int64_t> histogram_;
  std::int64_t requests_ = 0;
  std::int64_t batches_ = 0;
  bool any_ = false;
  std::chrono::steady_clock::time_point first_;
  std::chrono::steady_clock::time_point last_;
};

}  // namespace matsci::serve
