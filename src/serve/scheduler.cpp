#include "serve/scheduler.hpp"

#include <exception>

#include "core/macros.hpp"
#include "data/collate.hpp"
#include "obs/context.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace matsci::serve {

namespace {

/// Scheduler telemetry: queue wait is enqueue-to-pop (how long a
/// request sat before a dispatch job picked it up — the micro-batching
/// coalescing cost), distinct from the end-to-end latency ServerStats
/// records. Queue depth is sampled after every pop; deadline drops are
/// exported as a counter delta per pop (the queue owns the count).
struct ServeMetrics {
  obs::Counter& requests;
  obs::Counter& batches;
  obs::Counter& deadline_drops;
  obs::Histogram& queue_wait_us;
  obs::Histogram& batch_size;
  obs::Gauge& queue_depth;
  /// Per-stage latency attribution (DESIGN.md §10): where a request's
  /// time goes inside the scheduler. Each carries the request's trace
  /// id as a Prometheus exemplar, linking the histogram to /tracez.
  obs::Histogram& stage_queue_wait_us;
  obs::Histogram& stage_batch_assembly_us;
  obs::Histogram& stage_forward_us;

  static ServeMetrics& get() {
    static ServeMetrics* m = new ServeMetrics{
        obs::MetricsRegistry::global().counter("serve.requests"),
        obs::MetricsRegistry::global().counter("serve.batches"),
        obs::MetricsRegistry::global().counter("serve.deadline_drops"),
        obs::MetricsRegistry::global().histogram("serve.queue_wait_us"),
        obs::MetricsRegistry::global().histogram(
            "serve.batch_size", {1, 2, 4, 8, 16, 32, 64, 128, 256}),
        obs::MetricsRegistry::global().gauge("serve.queue_depth"),
        obs::MetricsRegistry::global().histogram("serve.stage.queue_wait_us"),
        obs::MetricsRegistry::global().histogram(
            "serve.stage.batch_assembly_us"),
        obs::MetricsRegistry::global().histogram("serve.stage.forward_us"),
    };
    return *m;
  }
};

/// steady_clock time_point -> the Tracer's span clock (nanoseconds on
/// the same steady epoch), for spans whose start predates this call
/// site (e.g. queue wait starts at enqueue time).
std::uint64_t to_span_ns(std::chrono::steady_clock::time_point tp) {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          tp.time_since_epoch())
          .count());
}

}  // namespace

BatchScheduler::BatchScheduler(std::shared_ptr<InferenceSession> session,
                               SchedulerOptions opts)
    : session_(std::move(session)),
      opts_(std::move(opts)),
      queue_(opts_.queue_capacity > 0
                 ? static_cast<std::size_t>(opts_.queue_capacity)
                 : 0) {
  MATSCI_CHECK(session_ != nullptr, "BatchScheduler needs a session");
  MATSCI_CHECK(opts_.max_batch_size > 0,
               "max_batch_size=" << opts_.max_batch_size);
  MATSCI_CHECK(opts_.max_wait_us >= 0, "max_wait_us=" << opts_.max_wait_us);
  MATSCI_CHECK(opts_.queue_capacity >= 0,
               "queue_capacity=" << opts_.queue_capacity);
  core::parallel::ThreadPool& pool = core::parallel::ThreadPool::global();
  std::int64_t n = opts_.num_workers;
  if (n <= 0) {
    n = pool.size();  // honors MATSCI_NUM_THREADS
  }
  dispatchers_.reserve(static_cast<std::size_t>(n));
  for (std::int64_t i = 0; i < n; ++i) {
    dispatchers_.push_back(pool.submit([this] { dispatch_loop(); }));
  }
}

BatchScheduler::~BatchScheduler() { shutdown(); }

std::future<PredictResult> BatchScheduler::submit(
    data::StructureSample structure, std::string target) {
  PredictRequest request;
  request.structure = std::move(structure);
  request.target = std::move(target);
  return queue_.push(std::move(request));
}

PushResult BatchScheduler::try_submit(data::StructureSample structure,
                                      std::string target,
                                      SubmitOptions sopts) {
  MATSCI_CHECK(sopts.deadline_us >= 0, "deadline_us=" << sopts.deadline_us);
  PredictRequest request;
  request.structure = std::move(structure);
  request.target = std::move(target);
  request.priority = sopts.priority;
  if (sopts.deadline_us > 0) {
    request.deadline = std::chrono::steady_clock::now() +
                       std::chrono::microseconds(sopts.deadline_us);
  }
  request.cache_key = std::move(sopts.cache_key);
  request.trace = sopts.trace;
  return queue_.try_push(std::move(request));
}

void BatchScheduler::shutdown() {
  std::lock_guard<std::mutex> lock(shutdown_mu_);
  queue_.shutdown();
  // Reclaim every dispatch job: jobs running on pool workers are
  // awaited, jobs still queued behind a busy pool are executed inline
  // here (they drain whatever is left and exit once the queue is
  // empty), so shutdown never depends on pool availability.
  for (core::parallel::TaskHandle& d : dispatchers_) {
    d.run_now_or_wait();
  }
  dispatchers_.clear();
}

void BatchScheduler::dispatch_loop() {
  ServeMetrics& metrics = ServeMetrics::get();
  std::int64_t seen_deadline_drops = 0;
  for (;;) {
    std::vector<PendingRequest> batch =
        queue_.pop_batch(opts_.max_batch_size, opts_.max_wait_us);
    if (batch.empty()) {
      return;  // shut down and drained
    }
    const auto popped = std::chrono::steady_clock::now();
    for (const PendingRequest& p : batch) {
      const double wait_us =
          std::chrono::duration<double, std::micro>(popped - p.enqueued)
              .count();
      metrics.queue_wait_us.observe(wait_us);
      metrics.stage_queue_wait_us.observe(wait_us, p.request.trace.trace_id());
      // Span start is the enqueue instant: queue wait began before this
      // code ran, so the span is back-dated onto the tracer's clock.
      obs::record_span("serve/stage/queue_wait", to_span_ns(p.enqueued),
                       to_span_ns(popped) - to_span_ns(p.enqueued),
                       p.request.trace);
    }
    metrics.queue_depth.set(static_cast<double>(queue_.size()));
    const std::int64_t drops = queue_.deadline_drops();
    if (drops > seen_deadline_drops) {
      metrics.deadline_drops.add(drops - seen_deadline_drops);
      seen_deadline_drops = drops;
    }
    serve_batch(batch);
  }
}

void BatchScheduler::serve_batch(std::vector<PendingRequest>& batch) {
  MATSCI_TRACE_SCOPE("serve/batch");
  ServeMetrics& metrics = ServeMetrics::get();
  metrics.batches.add(1);
  metrics.requests.add(static_cast<std::int64_t>(batch.size()));
  metrics.batch_size.observe(static_cast<double>(batch.size()));

  // The micro-batch gets its own span, a child of the anchor request's
  // context (pop_batch puts the anchor first). Member forward spans
  // parent onto it, so /tracez shows which requests shared a batch.
  const obs::TraceContext batch_ctx = batch.front().request.trace.valid()
                                          ? batch.front().request.trace.child()
                                          : obs::TraceContext{};
  const auto assembly_start = std::chrono::steady_clock::now();
  std::vector<data::StructureSample> samples;
  samples.reserve(batch.size());
  for (const PendingRequest& p : batch) {
    samples.push_back(p.request.structure);
  }
  const auto forward_start = std::chrono::steady_clock::now();
  const double assembly_us = std::chrono::duration<double, std::micro>(
                                 forward_start - assembly_start)
                                 .count();
  metrics.stage_batch_assembly_us.observe(assembly_us,
                                          batch_ctx.trace_id());
  obs::record_span("serve/stage/batch_assembly", to_span_ns(assembly_start),
                   to_span_ns(forward_start) - to_span_ns(assembly_start),
                   batch_ctx);

  std::vector<tasks::Prediction> predictions;
  try {
    MATSCI_TRACE_SCOPE("serve/predict");
    predictions = session_->predict(samples, batch.front().request.target);
    MATSCI_CHECK(predictions.size() == batch.size(),
                 "session returned " << predictions.size()
                                     << " predictions for " << batch.size()
                                     << " requests");
  } catch (...) {
    const std::exception_ptr error = std::current_exception();
    for (PendingRequest& p : batch) {
      p.promise.set_exception(error);
      obs::InflightSet::global().erase(p.request.trace);
    }
    return;
  }

  const auto now = std::chrono::steady_clock::now();
  const double service_us =
      std::chrono::duration<double, std::micro>(now - forward_start).count();
  const std::uint64_t forward_start_ns = to_span_ns(forward_start);
  const std::uint64_t forward_dur_ns = to_span_ns(now) - forward_start_ns;
  obs::record_span("serve/batch", to_span_ns(assembly_start),
                   to_span_ns(now) - to_span_ns(assembly_start), batch_ctx);
  std::vector<double> latencies_us;
  latencies_us.reserve(batch.size());
  for (std::size_t i = 0; i < batch.size(); ++i) {
    PredictResult result;
    result.prediction = std::move(predictions[i]);
    result.batch_size = static_cast<std::int64_t>(batch.size());
    result.latency_us =
        std::chrono::duration<double, std::micro>(now - batch[i].enqueued)
            .count();
    result.service_us = service_us;
    latencies_us.push_back(result.latency_us);
    metrics.stage_forward_us.observe(service_us,
                                     batch[i].request.trace.trace_id());
    // The member's forward span parents onto the batch span, not the
    // member's own previous stage — that is the batch linkage.
    obs::record_span("serve/stage/forward", forward_start_ns, forward_dur_ns,
                     batch[i].request.trace, batch_ctx.span_id());
    if (opts_.on_result) {
      try {
        opts_.on_result(batch[i].request, result);
      } catch (...) {
        // Observers must not break serving.
      }
    }
    batch[i].promise.set_value(std::move(result));
    obs::InflightSet::global().erase(batch[i].request.trace);
  }
  stats_.record_batch(static_cast<std::int64_t>(batch.size()), latencies_us);
}

}  // namespace matsci::serve
