#include "serve/session.hpp"

#include "core/macros.hpp"
#include "train/checkpoint.hpp"

namespace matsci::serve {

InferenceSession::InferenceSession(std::shared_ptr<tasks::Task> task,
                                   InferenceSessionOptions opts)
    : task_(std::move(task)), opts_(std::move(opts)) {
  MATSCI_CHECK(task_ != nullptr, "InferenceSession needs a task");
  task_->eval();
}

nn::LoadReport InferenceSession::load_checkpoint(const std::string& path,
                                                 bool strict) {
  const nn::StateDict sd = train::load_model_state(path);
  return nn::load_into_module(*task_, sd, strict);
}

std::vector<tasks::Prediction> InferenceSession::predict(
    const std::vector<data::StructureSample>& samples,
    const std::string& target) const {
  return predict_batch(data::collate(samples, opts_.collate), target);
}

std::vector<tasks::Prediction> InferenceSession::predict_batch(
    const data::Batch& batch, const std::string& target) const {
  // Per-thread guard: worker threads start with grad mode on, and a tape
  // built here would both leak memory and race sibling forwards through
  // shared parameter grad_fn slots.
  core::NoGradGuard no_grad;
  return task_->predict_batch(batch, target);
}

}  // namespace matsci::serve
