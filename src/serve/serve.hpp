#pragma once

/// Umbrella header for the inference-serving subsystem: checkpoint ->
/// InferenceSession (eval-mode, grad-free forward) -> BatchScheduler
/// (thread-safe RequestQueue, dynamic micro-batching, worker pool) ->
/// per-request futures, with a ServerStats counter block. See the
/// "Serving" sections of README.md / DESIGN.md for the flush policy and
/// the tensor-core thread-safety contract this stack relies on.

#include "serve/queue.hpp"      // IWYU pragma: export
#include "serve/scheduler.hpp"  // IWYU pragma: export
#include "serve/session.hpp"    // IWYU pragma: export
#include "serve/stats.hpp"      // IWYU pragma: export
