#pragma once

/// Umbrella header for the inference-serving subsystem: checkpoint ->
/// InferenceSession (eval-mode, grad-free forward) -> BatchScheduler
/// (bounded thread-safe RequestQueue with priority classes and SLO
/// deadlines, dynamic micro-batching, worker pool) -> per-request
/// futures, with a ServerStats counter block — and, layered on top,
/// the production frontend (serve/frontend/): versioned model registry
/// with atomic hot-swap, admission control with load shedding and
/// retry-after, and a canonicalized-structure response cache. See the
/// "Serving" sections of README.md / DESIGN.md §8 for the flush
/// policy, the admission state machine, and the tensor-core
/// thread-safety contract this stack relies on.

#include "serve/frontend/admission.hpp"  // IWYU pragma: export
#include "serve/frontend/cache.hpp"      // IWYU pragma: export
#include "serve/frontend/frontend.hpp"   // IWYU pragma: export
#include "serve/frontend/registry.hpp"   // IWYU pragma: export
#include "serve/queue.hpp"               // IWYU pragma: export
#include "serve/scheduler.hpp"           // IWYU pragma: export
#include "serve/session.hpp"             // IWYU pragma: export
#include "serve/stats.hpp"               // IWYU pragma: export
