#include "serve/queue.hpp"

#include "core/macros.hpp"

namespace matsci::serve {

std::future<PredictResult> RequestQueue::push(PredictRequest request) {
  PendingRequest pending;
  pending.request = std::move(request);
  pending.enqueued = std::chrono::steady_clock::now();
  std::future<PredictResult> future = pending.promise.get_future();
  {
    std::lock_guard<std::mutex> lock(mu_);
    MATSCI_CHECK(!shutdown_, "RequestQueue: push after shutdown");
    pending_.push_back(std::move(pending));
  }
  cv_.notify_all();
  return future;
}

void RequestQueue::extract_matching_locked(
    const std::pair<std::string, std::int64_t>& key,
    std::int64_t max_batch_size, std::vector<PendingRequest>& batch) {
  for (auto it = pending_.begin();
       it != pending_.end() &&
       static_cast<std::int64_t>(batch.size()) < max_batch_size;) {
    if (it->request.target == key.first &&
        it->request.structure.dataset_id == key.second) {
      batch.push_back(std::move(*it));
      it = pending_.erase(it);
    } else {
      ++it;
    }
  }
}

std::vector<PendingRequest> RequestQueue::pop_batch(
    std::int64_t max_batch_size, std::int64_t max_wait_us) {
  MATSCI_CHECK(max_batch_size > 0,
               "pop_batch: max_batch_size=" << max_batch_size);
  MATSCI_CHECK(max_wait_us >= 0, "pop_batch: max_wait_us=" << max_wait_us);

  std::unique_lock<std::mutex> lock(mu_);
  cv_.wait(lock, [&] { return shutdown_ || !pending_.empty(); });
  if (pending_.empty()) {
    return {};  // shut down and drained
  }

  // The oldest request anchors both the batch key and the flush deadline.
  const std::pair<std::string, std::int64_t> key = {
      pending_.front().request.target,
      pending_.front().request.structure.dataset_id};
  const auto deadline =
      pending_.front().enqueued + std::chrono::microseconds(max_wait_us);

  std::vector<PendingRequest> batch;
  batch.reserve(static_cast<std::size_t>(max_batch_size));
  for (;;) {
    extract_matching_locked(key, max_batch_size, batch);
    if (static_cast<std::int64_t>(batch.size()) >= max_batch_size ||
        shutdown_) {
      break;
    }
    if (cv_.wait_until(lock, deadline) == std::cv_status::timeout) {
      // Deadline hit: take whatever matching requests raced in last.
      extract_matching_locked(key, max_batch_size, batch);
      break;
    }
  }
  return batch;
}

void RequestQueue::shutdown() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  cv_.notify_all();
}

bool RequestQueue::is_shutdown() const {
  std::lock_guard<std::mutex> lock(mu_);
  return shutdown_;
}

std::size_t RequestQueue::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return pending_.size();
}

}  // namespace matsci::serve
