#include "serve/queue.hpp"

#include <algorithm>

namespace matsci::serve {

RequestQueue::RequestQueue(std::size_t capacity) : capacity_(capacity) {}

std::future<PredictResult> RequestQueue::push(PredictRequest request) {
  PushResult r = try_push(std::move(request));
  MATSCI_CHECK(r.status != PushStatus::kShutdown,
               "RequestQueue: push after shutdown");
  if (r.status == PushStatus::kQueueFull) {
    throw ShedError("RequestQueue: queue full (capacity " +
                    std::to_string(capacity_) + ")");
  }
  return std::move(r.future);
}

PushResult RequestQueue::try_push(PredictRequest request) {
  PendingRequest pending;
  pending.request = std::move(request);
  pending.enqueued = std::chrono::steady_clock::now();
  std::future<PredictResult> future = pending.promise.get_future();
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (shutdown_) {
      return {PushStatus::kShutdown, {}};
    }
    if (capacity_ != 0 && pending_.size() >= capacity_) {
      ++rejected_full_;
      return {PushStatus::kQueueFull, {}};
    }
    pending_.push_back(std::move(pending));
  }
  cv_.notify_all();
  return {PushStatus::kAccepted, std::move(future)};
}

void RequestQueue::drop_expired_locked(
    std::chrono::steady_clock::time_point now) {
  for (auto it = pending_.begin(); it != pending_.end();) {
    if (it->request.deadline <= now) {
      it->promise.set_exception(std::make_exception_ptr(
          ShedError("request shed: dispatch deadline exceeded while queued")));
      // The scheduler's fulfillment path never sees a dropped request,
      // so it must leave the in-flight trace set here.
      obs::InflightSet::global().erase(it->request.trace);
      it = pending_.erase(it);
      ++deadline_drops_;
    } else {
      ++it;
    }
  }
}

void RequestQueue::extract_matching_locked(
    const std::pair<std::string, std::int64_t>& key,
    std::int64_t max_batch_size, std::vector<PendingRequest>& batch) {
  for (auto it = pending_.begin();
       it != pending_.end() &&
       static_cast<std::int64_t>(batch.size()) < max_batch_size;) {
    if (it->request.target == key.first &&
        it->request.structure.dataset_id == key.second) {
      batch.push_back(std::move(*it));
      it = pending_.erase(it);
    } else {
      ++it;
    }
  }
}

std::vector<PendingRequest> RequestQueue::pop_batch(
    std::int64_t max_batch_size, std::int64_t max_wait_us) {
  MATSCI_CHECK(max_batch_size > 0,
               "pop_batch: max_batch_size=" << max_batch_size);
  MATSCI_CHECK(max_wait_us >= 0, "pop_batch: max_wait_us=" << max_wait_us);

  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    cv_.wait(lock, [&] { return shutdown_ || !pending_.empty(); });
    // Shed whatever expired while waiting for a dispatcher; during
    // drain (shutdown) everything already accepted is served instead.
    if (!shutdown_) {
      drop_expired_locked(std::chrono::steady_clock::now());
    }
    if (!pending_.empty()) break;
    if (shutdown_) return {};  // shut down and drained
  }

  // The anchor — the oldest request of the most urgent queued class —
  // fixes the batch key and the flush deadline. min(SLO deadline,
  // coalescing window): a tight deadline flushes early.
  auto anchor = pending_.begin();
  for (auto it = std::next(pending_.begin()); it != pending_.end(); ++it) {
    if (it->request.priority < anchor->request.priority) anchor = it;
  }
  const std::pair<std::string, std::int64_t> key = {
      anchor->request.target, anchor->request.structure.dataset_id};
  auto deadline = anchor->enqueued + std::chrono::microseconds(max_wait_us);
  if (anchor->request.deadline < deadline) deadline = anchor->request.deadline;

  std::vector<PendingRequest> batch;
  batch.reserve(static_cast<std::size_t>(max_batch_size));
  // The anchor joins first — FIFO extraction alone could fill the batch
  // with older lower-priority requests of the same key and leave the
  // anchor queued (priority inversion).
  batch.push_back(std::move(*anchor));
  pending_.erase(anchor);
  for (;;) {
    extract_matching_locked(key, max_batch_size, batch);
    if (static_cast<std::int64_t>(batch.size()) >= max_batch_size ||
        shutdown_) {
      break;
    }
    if (cv_.wait_until(lock, deadline) == std::cv_status::timeout) {
      // Deadline hit: take whatever matching requests raced in last.
      extract_matching_locked(key, max_batch_size, batch);
      break;
    }
  }
  return batch;
}

void RequestQueue::shutdown() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  cv_.notify_all();
}

bool RequestQueue::is_shutdown() const {
  std::lock_guard<std::mutex> lock(mu_);
  return shutdown_;
}

std::size_t RequestQueue::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return pending_.size();
}

std::int64_t RequestQueue::deadline_drops() const {
  std::lock_guard<std::mutex> lock(mu_);
  return deadline_drops_;
}

std::int64_t RequestQueue::rejected_full() const {
  std::lock_guard<std::mutex> lock(mu_);
  return rejected_full_;
}

}  // namespace matsci::serve
