#pragma once

#include <cstdint>
#include <vector>

namespace matsci::graph {

/// Directed edge list for a single molecular/crystal graph. Undirected
/// chemical bonds are stored as two directed edges (i→j and j→i), the
/// convention message-passing kernels expect. `src`/`dst` are parallel
/// arrays; message m_ij flows from src j into dst i via segment reduction
/// on `dst`.
struct Graph {
  std::int64_t num_nodes = 0;
  std::vector<std::int64_t> src;
  std::vector<std::int64_t> dst;

  std::int64_t num_edges() const {
    return static_cast<std::int64_t>(src.size());
  }

  /// Throws if any endpoint is out of range or arrays disagree.
  void validate() const;

  /// In-degree per node (number of incoming edges).
  std::vector<std::int64_t> in_degrees() const;
};

/// Several graphs packed into one node/edge space (DGL-style batching):
/// node indices of graph g are offset by the total size of graphs < g,
/// `node_graph[i]` gives the owning graph (the segment id for pooling).
struct BatchedGraph {
  std::int64_t num_nodes = 0;
  std::int64_t num_graphs = 0;
  std::vector<std::int64_t> src;
  std::vector<std::int64_t> dst;
  std::vector<std::int64_t> node_graph;
  std::vector<std::int64_t> graph_sizes;

  std::int64_t num_edges() const {
    return static_cast<std::int64_t>(src.size());
  }
  void validate() const;
};

/// Pack graphs into a batch, offsetting node indices.
BatchedGraph batch_graphs(const std::vector<Graph>& graphs);

}  // namespace matsci::graph
