#pragma once

#include <optional>
#include <vector>

#include "core/vec3.hpp"
#include "graph/graph.hpp"

namespace matsci::graph {

struct RadiusGraphOptions {
  double cutoff = 5.0;          ///< Å, edge if distance < cutoff
  std::int64_t max_neighbors = 0;  ///< 0 = unlimited; else keep nearest K
  bool self_loops = false;
  /// Guarantee connectivity for isolated nodes by linking each node with
  /// no neighbor inside the cutoff to its single nearest node.
  bool connect_isolated = true;
};

/// Build a directed radius graph over `positions` (both edge directions
/// emitted). With `lattice` set, distances use the periodic
/// minimal-image convention in that cell (fractional wrap to [-1/2, 1/2)).
Graph build_radius_graph(const std::vector<core::Vec3>& positions,
                         const RadiusGraphOptions& opts,
                         const std::optional<core::Mat3>& lattice = {});

/// Minimal-image displacement r_j - r_i in the given cell.
core::Vec3 minimal_image_delta(const core::Vec3& ri, const core::Vec3& rj,
                               const core::Mat3& lattice,
                               const core::Mat3& inv_lattice);

/// Fully connected (dense) graph over n points — the point-cloud
/// representation path (§2.1's alternative to imposed graph structure).
Graph build_complete_graph(std::int64_t num_nodes, bool self_loops = false);

}  // namespace matsci::graph
