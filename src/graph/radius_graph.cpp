#include "graph/radius_graph.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "core/backend/backend.hpp"
#include "core/macros.hpp"
#include "core/memory/storage.hpp"
#include "core/parallel/parallel_for.hpp"

namespace matsci::graph {

core::Vec3 minimal_image_delta(const core::Vec3& ri, const core::Vec3& rj,
                               const core::Mat3& lattice,
                               const core::Mat3& inv_lattice) {
  // Convert the cartesian displacement to fractional, wrap each component
  // to [-1/2, 1/2), and convert back. Exact for orthogonal-ish cells and
  // the standard approximation for modest skews.
  const core::Vec3 d = rj - ri;
  core::Vec3 f = core::vecmat(d, inv_lattice);
  f.x -= std::round(f.x);
  f.y -= std::round(f.y);
  f.z -= std::round(f.z);
  return core::vecmat(f, lattice);
}

Graph build_radius_graph(const std::vector<core::Vec3>& positions,
                         const RadiusGraphOptions& opts,
                         const std::optional<core::Mat3>& lattice) {
  MATSCI_CHECK(opts.cutoff > 0.0, "radius graph cutoff must be positive");
  const std::int64_t n = static_cast<std::int64_t>(positions.size());
  Graph g;
  g.num_nodes = n;
  if (n == 0) return g;

  core::Mat3 inv{};
  if (lattice) inv = core::inverse3(*lattice);
  // Flatten the matrices row-major for the kernels (lat[r*3+c] == m[r][c]).
  double lat9[9], inv9[9];
  if (lattice) {
    for (int r = 0; r < 3; ++r) {
      for (int c = 0; c < 3; ++c) {
        lat9[r * 3 + c] = (*lattice)[r][c];
        inv9[r * 3 + c] = inv[r][c];
      }
    }
  }

  // Structure-of-arrays coordinates: the distance kernels stream
  // contiguous x/y/z lanes instead of strided Vec3 loads.
  core::memory::DoubleStorage xs =
      core::memory::DoubleStorage::uninitialized(static_cast<std::size_t>(n));
  core::memory::DoubleStorage ys =
      core::memory::DoubleStorage::uninitialized(static_cast<std::size_t>(n));
  core::memory::DoubleStorage zs =
      core::memory::DoubleStorage::uninitialized(static_cast<std::size_t>(n));
  for (std::int64_t i = 0; i < n; ++i) {
    const core::Vec3& p = positions[static_cast<std::size_t>(i)];
    xs[static_cast<std::size_t>(i)] = p.x;
    ys[static_cast<std::size_t>(i)] = p.y;
    zs[static_cast<std::size_t>(i)] = p.z;
  }

  const double cut2 = opts.cutoff * opts.cutoff;
  struct Neighbor {
    std::int64_t j;
    double d2;
  };

  // The O(n²) scan is sliced into fixed chunks of source nodes; each
  // chunk collects its edges into a private buffer and the buffers are
  // concatenated in ascending chunk order afterwards, so the edge list
  // (and every per-node nth_element tie-break) is identical to the
  // serial scan at any thread count. Distances come from the backend
  // geometry kernels, which are bit-identical across backends (the
  // PBC variant agrees to tolerance; see DESIGN.md §11).
  const std::int64_t grain =
      std::max<std::int64_t>(1, 16384 / std::max<std::int64_t>(1, n));
  const std::int64_t num_chunks = core::parallel::chunk_count(0, n, grain);
  std::vector<std::vector<std::int64_t>> chunk_src(
      static_cast<std::size_t>(num_chunks));
  std::vector<std::vector<std::int64_t>> chunk_dst(
      static_cast<std::size_t>(num_chunks));

  const core::backend::KernelTable& kt = core::backend::kernels();
  core::parallel::parallel_for_chunks(
      0, n, grain, [&](std::int64_t c, std::int64_t ib, std::int64_t ie) {
        std::vector<Neighbor> nbrs;
        core::memory::DoubleStorage d2s =
            core::memory::DoubleStorage::uninitialized(
                static_cast<std::size_t>(n));
        std::vector<std::int64_t>& src = chunk_src[static_cast<std::size_t>(c)];
        std::vector<std::int64_t>& dst = chunk_dst[static_cast<std::size_t>(c)];
        for (std::int64_t i = ib; i < ie; ++i) {
          const std::size_t si = static_cast<std::size_t>(i);
          if (lattice) {
            kt.sq_dists_pbc(xs.data(), ys.data(), zs.data(), 0, n, xs[si],
                            ys[si], zs[si], lat9, inv9, d2s.data());
          } else {
            kt.sq_dists(xs.data(), ys.data(), zs.data(), 0, n, xs[si], ys[si],
                        zs[si], d2s.data());
          }
          nbrs.clear();
          double best_d2 = std::numeric_limits<double>::infinity();
          std::int64_t best_j = -1;
          for (std::int64_t j = 0; j < n; ++j) {
            if (i == j && !opts.self_loops) continue;
            const double d2 = d2s[static_cast<std::size_t>(j)];
            if (i != j && d2 < best_d2) {
              best_d2 = d2;
              best_j = j;
            }
            if (d2 < cut2) {
              nbrs.push_back({j, d2});
            }
          }
          if (nbrs.empty() && opts.connect_isolated && best_j >= 0) {
            nbrs.push_back({best_j, best_d2});
          }
          if (opts.max_neighbors > 0 &&
              static_cast<std::int64_t>(nbrs.size()) > opts.max_neighbors) {
            std::nth_element(nbrs.begin(),
                             nbrs.begin() + opts.max_neighbors - 1, nbrs.end(),
                             [](const Neighbor& a, const Neighbor& b) {
                               return a.d2 < b.d2;
                             });
            nbrs.resize(static_cast<std::size_t>(opts.max_neighbors));
          }
          for (const Neighbor& nb : nbrs) {
            // Message from j (src) into i (dst).
            src.push_back(nb.j);
            dst.push_back(i);
          }
        }
      });

  std::size_t total = 0;
  for (const auto& c : chunk_src) total += c.size();
  g.src.reserve(total);
  g.dst.reserve(total);
  for (std::size_t c = 0; c < chunk_src.size(); ++c) {
    g.src.insert(g.src.end(), chunk_src[c].begin(), chunk_src[c].end());
    g.dst.insert(g.dst.end(), chunk_dst[c].begin(), chunk_dst[c].end());
  }
  return g;
}

Graph build_complete_graph(std::int64_t num_nodes, bool self_loops) {
  MATSCI_CHECK(num_nodes >= 0, "negative node count");
  Graph g;
  g.num_nodes = num_nodes;
  g.src.reserve(static_cast<std::size_t>(num_nodes * num_nodes));
  for (std::int64_t i = 0; i < num_nodes; ++i) {
    for (std::int64_t j = 0; j < num_nodes; ++j) {
      if (i == j && !self_loops) continue;
      g.src.push_back(j);
      g.dst.push_back(i);
    }
  }
  return g;
}

}  // namespace matsci::graph
