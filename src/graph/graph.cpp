#include "graph/graph.hpp"

#include "core/macros.hpp"

namespace matsci::graph {

void Graph::validate() const {
  MATSCI_CHECK(src.size() == dst.size(),
               "graph: src/dst length mismatch " << src.size() << " vs "
                                                 << dst.size());
  for (std::size_t e = 0; e < src.size(); ++e) {
    MATSCI_CHECK(src[e] >= 0 && src[e] < num_nodes && dst[e] >= 0 &&
                     dst[e] < num_nodes,
                 "graph: edge " << e << " (" << src[e] << " -> " << dst[e]
                                << ") out of range for " << num_nodes
                                << " nodes");
  }
}

std::vector<std::int64_t> Graph::in_degrees() const {
  std::vector<std::int64_t> deg(static_cast<std::size_t>(num_nodes), 0);
  for (const std::int64_t d : dst) ++deg[static_cast<std::size_t>(d)];
  return deg;
}

void BatchedGraph::validate() const {
  MATSCI_CHECK(src.size() == dst.size(), "batched graph: edge array mismatch");
  MATSCI_CHECK(static_cast<std::int64_t>(node_graph.size()) == num_nodes,
               "batched graph: node_graph size mismatch");
  MATSCI_CHECK(static_cast<std::int64_t>(graph_sizes.size()) == num_graphs,
               "batched graph: graph_sizes size mismatch");
  for (const std::int64_t g : node_graph) {
    MATSCI_CHECK(g >= 0 && g < num_graphs, "batched graph: bad segment id " << g);
  }
}

BatchedGraph batch_graphs(const std::vector<Graph>& graphs) {
  BatchedGraph out;
  out.num_graphs = static_cast<std::int64_t>(graphs.size());
  std::int64_t node_offset = 0;
  for (std::int64_t g = 0; g < out.num_graphs; ++g) {
    const Graph& gr = graphs[static_cast<std::size_t>(g)];
    for (std::size_t e = 0; e < gr.src.size(); ++e) {
      out.src.push_back(gr.src[e] + node_offset);
      out.dst.push_back(gr.dst[e] + node_offset);
    }
    for (std::int64_t i = 0; i < gr.num_nodes; ++i) {
      out.node_graph.push_back(g);
    }
    out.graph_sizes.push_back(gr.num_nodes);
    node_offset += gr.num_nodes;
  }
  out.num_nodes = node_offset;
  return out;
}

}  // namespace matsci::graph
