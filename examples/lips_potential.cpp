// Learned interatomic potential on the LiPS trajectory — the paper's
// "time-dependent dynamics with energy/force labels" workload: train an
// E(n)-GNN to regress per-atom potential energy along an MD trajectory,
// then evaluate force errors against the simulator's analytic forces
// using autograd (F = −∂E/∂x through the encoder).
//
// Usage: lips_potential [frames] [epochs]   (defaults 96, 12)
#include <cstdio>
#include <cstdlib>

#include "data/dataloader.hpp"
#include "materials/lips.hpp"
#include "models/egnn.hpp"
#include "optim/adam.hpp"
#include "tasks/energy_force.hpp"
#include "train/trainer.hpp"

int main(int argc, char** argv) {
  using namespace matsci;
  const std::int64_t frames = argc > 1 ? std::atoll(argv[1]) : 96;
  const std::int64_t epochs = argc > 2 ? std::atoll(argv[2]) : 12;

  // The trajectory is integrated once (velocity Verlet, LJ mixture) and
  // every frame carries energy + analytic forces.
  materials::LiPSDataset dataset(frames, /*seed=*/3);
  auto [train_ds, val_ds] = data::train_val_split(dataset, 0.25, 1);
  const data::TargetStats stats =
      data::compute_target_stats(train_ds, "energy");
  std::printf("LiPS trajectory: %lld frames of %lld atoms, E/atom mean "
              "%.3f eV (std %.3f)\n",
              static_cast<long long>(dataset.size()),
              static_cast<long long>(dataset.get(0).num_atoms()), stats.mean,
              stats.stddev);

  data::DataLoaderOptions lo;
  lo.batch_size = 8;
  lo.seed = 3;
  lo.collate.radius.cutoff = 4.5;
  data::DataLoader train_loader(train_ds, lo);
  data::DataLoaderOptions vo = lo;
  vo.shuffle = false;
  data::DataLoader val_loader(val_ds, vo);

  core::RngEngine rng(13);
  models::EGNNConfig ecfg;
  ecfg.hidden_dim = 48;
  ecfg.pos_hidden = 16;
  ecfg.num_layers = 3;
  auto encoder = std::make_shared<models::EGNN>(ecfg, rng);
  models::OutputHeadConfig hcfg;
  hcfg.hidden_dim = 48;
  hcfg.num_blocks = 2;
  hcfg.dropout = 0.0f;
  tasks::EnergyForceTask task(encoder, "energy", hcfg, rng, stats);

  optim::Adam opt = optim::make_adamw(task.parameters(), 2e-3, 1e-4);
  train::TrainerOptions topts;
  topts.max_epochs = epochs;
  topts.early_stopping_patience = 4;  // stop when the potential converges
  const train::FitResult result =
      train::Trainer(topts).fit(task, train_loader, &val_loader, opt);

  std::printf("\n%8s %16s %16s\n", "epoch", "energy MAE (eV)",
              "force MAE (eV/A)");
  for (const auto& e : result.epochs) {
    std::printf("%8lld %16.4f %16.4f\n", static_cast<long long>(e.epoch),
                e.val.at("energy_mae"), e.val.at("force_mae"));
  }

  // Show a few predicted-vs-true force components on a validation frame.
  data::Batch batch = val_loader.batch(0);
  const core::Tensor forces = task.predict_forces(batch);
  std::printf("\nsample force components (validation frame, eV/A):\n");
  std::printf("%6s %12s %12s\n", "atom", "predicted Fx", "true Fx");
  for (std::int64_t i = 0; i < std::min<std::int64_t>(6, forces.size(0));
       ++i) {
    std::printf("%6lld %12.4f %12.4f\n", static_cast<long long>(i),
                forces.at(i, 0), batch.forces.at(i, 0));
  }
  std::printf(
      "\nForces come from the autograd tape (−∂E/∂x through the encoder);\n"
      "training optimizes the energy objective only, so predicted force\n"
      "magnitudes underestimate the truth — the classic argument for\n"
      "force-matching losses (Batzner et al.), which would need\n"
      "second-order autodiff (see DESIGN.md).\n");
  return 0;
}
