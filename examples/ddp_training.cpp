// Distributed data parallelism — the paper's §4.2 training strategy on
// the thread-backed communicator: model replicas per rank, disjoint data
// shards, gradient averaging every step, Goyal lr scaling, and the α-β
// performance model projecting the measured compute to cluster scale.
//
// Usage: ddp_training [world_size] [epochs]   (defaults 4, 2)
#include <cstdio>
#include <cstdlib>

#include "comm/perf_model.hpp"
#include "data/dataloader.hpp"
#include "models/egnn.hpp"
#include "optim/adam.hpp"
#include "optim/lr_scheduler.hpp"
#include "sym/synthetic_dataset.hpp"
#include "tasks/classification.hpp"
#include "train/ddp.hpp"

int main(int argc, char** argv) {
  using namespace matsci;
  const std::int64_t world = argc > 1 ? std::atoll(argv[1]) : 4;
  const std::int64_t epochs = argc > 2 ? std::atoll(argv[2]) : 2;

  sym::SyntheticPointGroupOptions sym_opts;
  sym_opts.max_points = 20;
  sym::SyntheticPointGroupDataset dataset(512, 11, sym_opts);
  sym::SyntheticPointGroupDataset val_ds(96, 12, sym_opts);

  std::printf("DDP training: %lld thread ranks, %lld samples, %lld epochs\n",
              static_cast<long long>(world),
              static_cast<long long>(dataset.size()),
              static_cast<long long>(epochs));

  const double base_lr = 3e-4;
  auto factory = [&](std::int64_t rank, std::int64_t ws) {
    train::RankContext ctx;
    core::RngEngine rng(7);  // same init on all ranks (broadcast confirms)
    models::EGNNConfig ecfg;
    ecfg.hidden_dim = 32;
    ecfg.pos_hidden = 16;
    ecfg.num_layers = 3;
    auto encoder = std::make_shared<models::EGNN>(ecfg, rng);
    models::OutputHeadConfig hcfg;
    hcfg.hidden_dim = 32;
    hcfg.num_blocks = 2;
    hcfg.dropout = 0.0f;
    auto task = std::make_unique<tasks::ClassificationTask>(
        encoder, "point_group", sym::num_point_groups(), hcfg, rng);

    data::DataLoaderOptions lo;
    lo.batch_size = 8;
    lo.seed = 3;
    lo.rank = rank;
    lo.world_size = ws;
    lo.collate.representation = data::Representation::kPointCloud;
    ctx.train_loader = std::make_unique<data::DataLoader>(dataset, lo);
    if (rank == 0) {
      data::DataLoaderOptions vo = lo;
      vo.rank = 0;
      vo.world_size = 1;
      vo.shuffle = false;
      ctx.val_loader = std::make_unique<data::DataLoader>(val_ds, vo);
    }
    // Goyal scaling: lr grows with the world size.
    optim::AdamOptions ao;
    ao.lr = optim::scale_lr_for_world_size(base_lr, ws);
    ao.decoupled_weight_decay = true;
    ctx.optimizer =
        std::make_unique<optim::Adam>(task->parameters(), ao);
    ctx.task = std::move(task);
    return ctx;
  };

  train::DDPTrainer trainer;
  train::DDPOptions opts;
  opts.world_size = world;
  opts.max_epochs = epochs;
  opts.verbose = true;
  const train::DDPResult result = trainer.fit(factory, opts);

  std::printf("\nprocessed %.0f samples in %.2f s (%.0f samples/s "
              "aggregate on ONE physical core — thread ranks validate\n"
              "semantics, not speedup)\n",
              result.total_samples, result.wall_seconds,
              result.samples_per_second());
  if (!result.epochs.empty() && result.epochs.back().val.count("accuracy")) {
    std::printf("rank-0 validation accuracy: %.3f\n",
                result.epochs.back().val.at("accuracy"));
  }

  // Project to cluster scale with the α-β model.
  const double per_rank_step =
      result.wall_seconds /
      static_cast<double>(std::max<std::int64_t>(result.total_steps, 1));
  comm::PerfModel model;
  std::printf("\nprojected cluster throughput (measured %.3f s/step, "
              "HDR200 α-β model):\n",
              per_rank_step);
  for (const std::int64_t ranks : {16, 128, 512}) {
    std::printf("  %4lld ranks -> %10.0f samples/s\n",
                static_cast<long long>(ranks),
                model.throughput(ranks, 8, per_rank_step, 4 << 20));
  }
  return 0;
}
