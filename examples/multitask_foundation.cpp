// Multi-task, multi-dataset "foundation model" training — the paper's
// §3.2 composition: one shared E(n)-GNN encoder, five output heads
// across two datasets (Materials Project: band gap, Fermi energy,
// formation energy, stability; Carolina: formation energy), trained
// jointly with round-robin batches.
//
// Usage: multitask_foundation [epochs]   (default 6)
#include <cstdio>
#include <cstdlib>

#include "data/dataloader.hpp"
#include "data/joint_loader.hpp"
#include "data/tagged.hpp"
#include "materials/carolina.hpp"
#include "materials/materials_project.hpp"
#include "models/egnn.hpp"
#include "optim/adam.hpp"
#include "tasks/multitask.hpp"
#include "train/trainer.hpp"

int main(int argc, char** argv) {
  using namespace matsci;
  const std::int64_t epochs = argc > 1 ? std::atoll(argv[1]) : 6;
  constexpr std::int64_t kMP = 0, kCMD = 1;

  auto mp = std::make_shared<data::TaggedDataset>(
      std::make_shared<materials::MaterialsProjectDataset>(240, 41), kMP);
  auto cmd = std::make_shared<data::TaggedDataset>(
      std::make_shared<materials::CarolinaMaterialsDataset>(240, 42), kCMD);
  auto [mp_train, mp_val] = data::train_val_split(*mp, 0.2, 7);
  auto [cmd_train, cmd_val] = data::train_val_split(*cmd, 0.2, 8);

  core::RngEngine rng(61);
  models::EGNNConfig ecfg;
  ecfg.hidden_dim = 48;
  ecfg.pos_hidden = 16;
  ecfg.num_layers = 3;
  auto encoder = std::make_shared<models::EGNN>(ecfg, rng);

  models::OutputHeadConfig hcfg;
  hcfg.hidden_dim = 48;
  hcfg.num_blocks = 2;  // paper uses 6 blocks per head at full scale
  tasks::MultiTaskModule model(encoder, hcfg, 71);
  model.add_regression(kMP, "band_gap",
                       data::compute_target_stats(mp_train, "band_gap"),
                       "mp/band_gap");
  model.add_regression(kMP, "efermi",
                       data::compute_target_stats(mp_train, "efermi"),
                       "mp/efermi");
  model.add_regression(
      kMP, "formation_energy",
      data::compute_target_stats(mp_train, "formation_energy"), "mp/eform");
  model.add_binary_classification(kMP, "stability", "mp/stability");
  model.add_regression(
      kCMD, "formation_energy",
      data::compute_target_stats(cmd_train, "formation_energy"),
      "cmd/eform");
  std::printf("joint model: %lld heads, %lld parameters (shared encoder "
              "%lld)\n",
              static_cast<long long>(model.num_heads()),
              static_cast<long long>(model.num_parameters()),
              static_cast<long long>(encoder->num_parameters()));

  data::DataLoaderOptions lo;
  lo.batch_size = 16;
  lo.seed = 3;
  lo.collate.radius.cutoff = 4.5;
  data::DataLoader mp_loader(mp_train, lo), cmd_loader(cmd_train, lo);
  data::DataLoaderOptions vo = lo;
  vo.shuffle = false;
  data::DataLoader mp_val_loader(mp_val, vo), cmd_val_loader(cmd_val, vo);

  optim::Adam opt = optim::make_adamw(model.parameters(), 3e-3, 1e-4);

  data::JointDataLoader joint({&mp_loader, &cmd_loader},
                              data::SchedulePolicy::kRoundRobin);
  for (std::int64_t epoch = 0; epoch < epochs; ++epoch) {
    model.train(true);
    joint.set_epoch(epoch);
    for (std::int64_t b = 0; b < joint.num_batches(); ++b) {
      opt.zero_grad();
      model.step(joint.batch(b)).loss.backward();
      opt.step();
    }
    // Joint validation.
    tasks::MetricAccumulator acc;
    {
      core::NoGradGuard no_grad;
      model.train(false);
      for (data::DataLoader* loader : {&mp_val_loader, &cmd_val_loader}) {
        for (std::int64_t b = 0; b < loader->num_batches(); ++b) {
          acc.add(model.step(loader->batch(b)));
        }
      }
    }
    std::printf("epoch %2lld | gap %.3f eV | zeta %.3f eV | Eform(MP) %.3f "
                "| stab BCE %.3f | Eform(CMD) %.3f\n",
                static_cast<long long>(epoch), acc.mean("mp/band_gap/mae"),
                acc.mean("mp/efermi/mae"), acc.mean("mp/eform/mae"),
                acc.mean("mp/stability/bce"), acc.mean("cmd/eform/mae"));
  }
  std::printf("\nall five targets are served by one encoder — the paper's\n"
              "composition path toward materials foundation models.\n");
  return 0;
}
