// Serving — stand up the inference subsystem end to end: briefly train a
// band-gap regressor, checkpoint it, load the checkpoint into an
// InferenceSession, and drive a BatchScheduler with a closed-loop load
// generator (several concurrent client threads, each firing its next
// request as soon as the previous future resolves). Every response is
// checked bit-exactly against a single-structure reference prediction.
//
// Usage: serve_bandgap [clients] [requests_per_client]
//   defaults: 6 clients x 200 requests = 1200 requests total.
//
// raw-threads-ok: the closed-loop clients block on scheduler futures;
// running them on the shared pool would starve the serve dispatch jobs
// they are waiting for.
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "data/dataloader.hpp"
#include "materials/materials_project.hpp"
#include "models/egnn.hpp"
#include "optim/adam.hpp"
#include "serve/serve.hpp"
#include "tasks/regression.hpp"
#include "train/checkpoint.hpp"
#include "train/trainer.hpp"

namespace {

using namespace matsci;

models::EGNNConfig encoder_config() {
  models::EGNNConfig cfg;
  cfg.hidden_dim = 32;
  cfg.pos_hidden = 16;
  cfg.num_layers = 3;
  return cfg;
}

models::OutputHeadConfig head_config() {
  models::OutputHeadConfig cfg;
  cfg.hidden_dim = 32;
  cfg.num_blocks = 2;
  cfg.dropout = 0.2f;  // eval mode silences it — serving is deterministic
  return cfg;
}

std::shared_ptr<tasks::ScalarRegressionTask> make_task(
    std::uint64_t seed, const data::TargetStats& stats) {
  core::RngEngine rng(seed);
  auto encoder = std::make_shared<models::EGNN>(encoder_config(), rng);
  return std::make_shared<tasks::ScalarRegressionTask>(
      encoder, "band_gap", head_config(), rng, stats);
}

}  // namespace

int main(int argc, char** argv) {
  const int clients = argc > 1 ? std::atoi(argv[1]) : 6;
  const int per_client = argc > 2 ? std::atoi(argv[2]) : 200;
  if (clients < 1 || per_client < 1) {
    std::fprintf(stderr,
                 "usage: serve_bandgap [clients >= 1] [requests_per_client "
                 ">= 1]\n");
    return 2;
  }

  // --- 1. train briefly and write a checkpoint ------------------------------
  materials::MaterialsProjectDataset dataset(256, 47);
  const data::TargetStats stats =
      data::compute_target_stats(dataset, "band_gap");
  auto trained = make_task(5, stats);
  {
    data::DataLoaderOptions lo;
    lo.batch_size = 16;
    lo.collate.radius.cutoff = 4.5;
    data::DataLoader loader(dataset, lo);
    optim::Adam opt = optim::make_adamw(trained->parameters(), 3e-3);
    train::TrainerOptions topts;
    topts.max_epochs = 2;
    train::Trainer(topts).fit(*trained, loader, nullptr, opt);
  }
  const std::string ckpt = "served_bandgap.msck";
  {
    optim::Adam opt = optim::make_adamw(trained->parameters(), 3e-3);
    train::save_training_checkpoint(ckpt, *trained, opt, 2);
  }
  std::printf("trained 2 epochs, checkpoint written to %s\n", ckpt.c_str());

  // --- 2. serving session from the checkpoint -------------------------------
  // A *fresh* task (different init) proves the weights really come from
  // the checkpoint file, exactly as a standalone server process would.
  serve::InferenceSessionOptions sopts;
  sopts.collate.radius.cutoff = 4.5;
  auto session = std::make_shared<serve::InferenceSession>(
      make_task(9999, stats), sopts);
  const nn::LoadReport report = session->load_checkpoint(ckpt);
  std::printf("session loaded %lld parameters from checkpoint\n",
              static_cast<long long>(report.loaded));

  // --- 3. reference answers (single-structure forwards) ---------------------
  constexpr std::int64_t kPoolSize = 48;
  std::vector<data::StructureSample> pool;
  std::vector<float> reference;
  for (std::int64_t i = 0; i < kPoolSize; ++i) {
    pool.push_back(dataset.get(i));
    reference.push_back(session->predict({pool.back()}, "band_gap")[0].value);
  }

  // --- 4. closed-loop load through the scheduler ----------------------------
  serve::SchedulerOptions opts;
  opts.max_batch_size = 32;
  opts.max_wait_us = 2000;
  opts.num_workers = 0;  // shared pool size (honors MATSCI_NUM_THREADS)
  serve::BatchScheduler scheduler(session, opts);
  std::printf("scheduler up: %lld workers, max_batch_size=%lld, "
              "max_wait_us=%lld\n",
              static_cast<long long>(scheduler.num_workers()),
              static_cast<long long>(opts.max_batch_size),
              static_cast<long long>(opts.max_wait_us));

  std::atomic<long long> correct{0}, incorrect{0}, dropped{0};
  const auto t0 = std::chrono::steady_clock::now();
  std::vector<std::thread> threads;
  for (int c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      for (int i = 0; i < per_client; ++i) {
        const std::size_t idx = static_cast<std::size_t>(
            (c * per_client + i) % kPoolSize);
        try {
          serve::PredictResult r =
              scheduler.submit(pool[idx], "band_gap").get();
          if (r.prediction.value == reference[idx]) {
            ++correct;
          } else {
            ++incorrect;
          }
        } catch (...) {
          ++dropped;
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  const double wall_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  scheduler.shutdown();

  // --- 5. report ------------------------------------------------------------
  const serve::ServerStats& stats_block = scheduler.stats();
  const serve::LatencySummary lat = stats_block.latency_summary();
  const long long total = static_cast<long long>(clients) * per_client;
  std::printf("\n=== closed-loop load: %d clients x %d requests ===\n",
              clients, per_client);
  std::printf("%-28s %lld / %lld\n", "correct responses",
              correct.load(), total);
  std::printf("%-28s %lld\n", "incorrect responses", incorrect.load());
  std::printf("%-28s %lld\n", "dropped requests", dropped.load());
  std::printf("%-28s %.0f structs/s (wall) / %.0f structs/s (serving "
              "window)\n",
              "throughput", static_cast<double>(total) / wall_s,
              stats_block.throughput_per_s());
  std::printf("%-28s p50=%.0f p95=%.0f p99=%.0f max=%.0f\n",
              "latency (us)", lat.p50_us, lat.p95_us, lat.p99_us, lat.max_us);
  std::printf("%-28s %.2f (over %lld micro-batches)\n", "mean batch size",
              stats_block.mean_batch_size(),
              static_cast<long long>(stats_block.batches_executed()));
  std::printf("batch-size histogram:\n");
  for (const auto& [size, count] : stats_block.batch_size_histogram()) {
    std::printf("  %3lld: %lld\n", static_cast<long long>(size),
                static_cast<long long>(count));
  }
  std::printf("\nstats json: %s\n", stats_block.to_json().c_str());

  if (incorrect.load() != 0 || dropped.load() != 0) {
    std::printf("SERVING FAILED: responses dropped or incorrect\n");
    return 1;
  }
  std::printf("all %lld responses bit-exact against single-structure "
              "references\n",
              total);
  return 0;
}
